package area

import (
	"strings"
	"testing"
)

func TestL1SRAMMatchesTableIII(t *testing.T) {
	e := L1SRAM()
	want := map[string]int{
		"data array":      1572864,
		"tag array":       32256,
		"sense amplifier": 66880,
		"write driver":    58520,
		"comparator":      976,
		"decoder":         1124,
	}
	for name, count := range want {
		got, ok := e.Lookup(name)
		if !ok {
			t.Errorf("missing component %q", name)
			continue
		}
		if got != count {
			t.Errorf("%s = %d transistors, Table III says %d", name, got, count)
		}
	}
	if e.Total() < 1_700_000 || e.Total() > 1_800_000 {
		t.Errorf("L1-SRAM total %d out of the expected range", e.Total())
	}
}

func TestDyFUSEMatchesTableIII(t *testing.T) {
	e := DyFUSE()
	want := map[string]int{
		"data array":           1572864,
		"tag array":            43776,
		"sense amplifier":      48070,
		"write driver":         45980,
		"comparator":           1458,
		"decoder":              1686,
		"NVM-CBF":              10944,
		"swap buffer":          3072,
		"request queue":        15360,
		"read-level predictor": 2320,
	}
	for name, count := range want {
		got, ok := e.Lookup(name)
		if !ok {
			t.Errorf("missing component %q", name)
			continue
		}
		if got != count {
			t.Errorf("%s = %d transistors, Table III says %d", name, got, count)
		}
	}
}

func TestOverheadUnderOnePercent(t *testing.T) {
	o := OverheadPercent()
	if o <= 0 {
		t.Errorf("Dy-FUSE adds structures, overhead should be positive, got %v", o)
	}
	if o > 1.0 {
		t.Errorf("paper reports <0.7%% overhead; our estimate is %.2f%%", o)
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := L1SRAM()
	if _, ok := e.Lookup("flux capacitor"); ok {
		t.Errorf("unknown component should not resolve")
	}
	s := e.String()
	if !strings.Contains(s, "L1-SRAM") || !strings.Contains(s, "data array") {
		t.Errorf("String should include the name and components:\n%s", s)
	}
	var empty Estimate
	if empty.Total() != 0 {
		t.Errorf("empty estimate should have zero total")
	}
}

func TestDataArraysOccupySameArea(t *testing.T) {
	// The premise of the whole design: 16KB SRAM + 64KB STT-MRAM fit in the
	// same area as the original 32KB SRAM data array.
	base, _ := L1SRAM().Lookup("data array")
	fuse, _ := DyFUSE().Lookup("data array")
	if base != fuse {
		t.Errorf("hybrid data array (%d) should match the SRAM data array (%d)", fuse, base)
	}
}
