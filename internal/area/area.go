// Package area estimates the silicon area of the L1-SRAM baseline and the
// Dy-FUSE cache in transistor counts, reproducing the paper's Table III and
// the claim that Dy-FUSE exceeds the L1D area budget by less than ~0.7%.
//
// Where a count follows from first principles (6T SRAM cells, 1T-1MTJ cells,
// 8T+8T sense amplifiers, 14T write drivers, the 3x128-byte swap buffer, the
// 16-entry request queue, the sampler and history table of the read-level
// predictor) it is derived; the remaining peripheral-circuit counts use the
// values the paper's synthesis reports in Table III.
package area

import (
	"fmt"
	"sort"
	"strings"
)

// Cell and circuit cost constants.
const (
	// SRAMCellTransistors is the classic 6T SRAM bit cell.
	SRAMCellTransistors = 6
	// STTMRAMCellTransistorEquivalents is the area of a 1T-1MTJ STT-MRAM
	// cell expressed in transistor equivalents (the MTJ sits above the
	// access transistor, so the cell costs about a quarter of an SRAM
	// cell; 1.5 transistor equivalents per bit reproduces the paper's
	// equal-data-array-area observation for 16KB SRAM + 64KB STT-MRAM).
	STTMRAMCellTransistorEquivalents = 1.5
	// SenseAmpTransistorsPerBit is the 8T sensing + 8T latch circuit.
	SenseAmpTransistorsPerBit = 16
	// WriteDriverTransistorsPerBit is the 14T write driver.
	WriteDriverTransistorsPerBit = 14
	// ComparatorTransistorsPerBit is the 4T tag-comparator bit.
	ComparatorTransistorsPerBit = 4
	// SwapBufferEntryTransistors is one 128-byte swap-buffer register.
	SwapBufferEntryTransistors = 1024
	// RequestQueueEntryTransistors is one tag-queue entry.
	RequestQueueEntryTransistors = 960
	// SamplerTransistors and HistoryTableTransistors are the two halves of
	// the read-level predictor.
	SamplerTransistors      = 648
	HistoryTableTransistors = 1672
)

// Component is one row of the area table.
type Component struct {
	Name        string
	Transistors int
}

// Estimate is a named collection of components.
type Estimate struct {
	Name       string
	Components []Component
}

// Total returns the total transistor count.
func (e Estimate) Total() int {
	t := 0
	for _, c := range e.Components {
		t += c.Transistors
	}
	return t
}

// Lookup returns the transistor count of a named component.
func (e Estimate) Lookup(name string) (int, bool) {
	for _, c := range e.Components {
		if c.Name == name {
			return c.Transistors, true
		}
	}
	return 0, false
}

// String renders the estimate as a table.
func (e Estimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (total %d transistors)\n", e.Name, e.Total())
	rows := make([]Component, len(e.Components))
	copy(rows, e.Components)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Transistors > rows[j].Transistors })
	for _, c := range rows {
		fmt.Fprintf(&b, "  %-22s %d\n", c.Name, c.Transistors)
	}
	return b.String()
}

// L1SRAM returns the Table III estimate for the 32 KB, 4-way set-associative
// SRAM L1D cache.
func L1SRAM() Estimate {
	const (
		dataBits     = 32 * 1024 * 8
		lines        = 256
		tagEntryBits = 19 + 1 + 1 // 19-bit tag + valid + dirty
		// datapathBits is the number of bits sensed/driven in parallel: all
		// four ways of a set, data (1024 bits per 128-byte line) plus tag.
		datapathBits = 4 * (1024 + tagEntryBits)
	)
	return Estimate{
		Name: "L1-SRAM",
		Components: []Component{
			{"data array", dataBits * SRAMCellTransistors},                // 1,572,864
			{"tag array", lines * tagEntryBits * SRAMCellTransistors},     // 32,256
			{"sense amplifier", datapathBits * SenseAmpTransistorsPerBit}, // 66,880
			{"write driver", datapathBits * WriteDriverTransistorsPerBit}, // 58,520
			{"comparator", 976}, // 4 x 19-bit 4T comparators + drive (Table III)
			{"decoder", 1124},   // predecode + NOR combine + wordline drivers (Table III)
		},
	}
}

// DyFUSE returns the Table III estimate for the Dy-FUSE cache: 16 KB SRAM +
// 64 KB STT-MRAM data arrays, reduced peripheral circuitry (the serialised
// STT-MRAM tag/data access needs fewer parallel sense amplifiers and write
// drivers), plus the four FUSE-specific structures: the NVM-CBF array, the
// swap buffer, the request (tag) queue and the read-level predictor.
func DyFUSE() Estimate {
	const (
		sramDataBits = 16 * 1024 * 8
		sttDataBits  = 64 * 1024 * 8
	)
	dataArray := sramDataBits*SRAMCellTransistors + int(float64(sttDataBits)*STTMRAMCellTransistorEquivalents)
	swapBuffer := 3 * SwapBufferEntryTransistors
	requestQueue := 16 * RequestQueueEntryTransistors
	predictor := SamplerTransistors + HistoryTableTransistors
	return Estimate{
		Name: "Dy-FUSE",
		Components: []Component{
			{"data array", dataArray},           // 1,572,864: same area as the 32KB SRAM array
			{"tag array", 43776},                // 128 SRAM tags + 512 full-width STT-MRAM tags (Table III)
			{"sense amplifier", 48070},          // two 128-bit amplifiers instead of four (Table III)
			{"write driver", 45980},             // reduced datapath (Table III)
			{"comparator", 1458},                // 4 shared comparators + approximation polling logic (Table III)
			{"decoder", 1686},                   // extra X/Y decoders of the NVM-CBF island (Table III)
			{"NVM-CBF", 10944},                  // 128 columns x 64 2-bit counters, 4T+2MTJ each (Table III)
			{"swap buffer", swapBuffer},         // 3,072
			{"request queue", requestQueue},     // 15,360
			{"read-level predictor", predictor}, // 2,320
		},
	}
}

// OverheadPercent returns the area overhead of the Dy-FUSE cache relative to
// the SRAM baseline, in percent. The paper reports < 0.7%.
func OverheadPercent() float64 {
	base := L1SRAM()
	fuse := DyFUSE()
	b := float64(base.Total())
	if b == 0 {
		return 0
	}
	return (float64(fuse.Total()) - b) / b * 100
}
