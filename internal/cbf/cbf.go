// Package cbf implements the counting Bloom filters (CBFs) that FUSE's
// associativity-approximation logic uses to narrow tag searches, including
// the paper's NVM-CBF variant: the CBF counter arrays are laid out in a 2-D
// STT-MRAM (MTJ) island so that a membership test completes within a single
// STT-MRAM read cycle.
package cbf

import (
	"fmt"

	"fuse/internal/stats"
)

// hashSeed values give each hash function an independent mixing constant.
// They only need to be distinct odd 64-bit constants.
var hashSeeds = [8]uint64{
	0x9e3779b97f4a7c15,
	0xc2b2ae3d27d4eb4f,
	0x165667b19e3779f9,
	0x27d4eb2f165667c5,
	0x85ebca77c2b2ae63,
	0xff51afd7ed558ccd,
	0xc4ceb9fe1a85ec53,
	0x2545f4914f6cdd1d,
}

// MaxHashFunctions is the maximum number of hash functions supported.
const MaxHashFunctions = len(hashSeeds)

// mix64 is a Murmur3-style 64-bit finaliser used as the hash core.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// CountingBloomFilter is a single counting Bloom filter: k hash functions
// over an array of small saturating counters.
//
//fuselint:smowned one filter per SM-owned L1D, tracking only that cache's lines
type CountingBloomFilter struct {
	counters   []uint8
	hashes     int
	counterMax uint8

	// Accuracy bookkeeping (used for the Figure 20 analysis): the filter
	// optionally tracks the true membership multiset to label test results
	// as true/false positives/negatives.
	truth map[uint64]int

	tests stats.Counter
	//fuselint:internalstat only the false-positive and test counts reach FalsePositiveRate; raw positives stay a filter-local diagnostic
	positives     stats.Counter
	falsePositive stats.Counter
	saturations   stats.Counter
}

// New creates a counting Bloom filter with the given number of counter slots,
// hash functions and counter width in bits. Arguments are clamped to sane
// minima; more than MaxHashFunctions hash functions are truncated.
func New(slots, hashes, counterBits int) *CountingBloomFilter {
	if slots <= 0 {
		slots = 1
	}
	if hashes <= 0 {
		hashes = 1
	}
	if hashes > MaxHashFunctions {
		hashes = MaxHashFunctions
	}
	if counterBits <= 0 {
		counterBits = 2
	}
	if counterBits > 8 {
		counterBits = 8
	}
	return &CountingBloomFilter{
		counters:   make([]uint8, slots),
		hashes:     hashes,
		counterMax: uint8(1<<counterBits - 1),
		truth:      make(map[uint64]int),
	}
}

// Slots returns the number of counters.
func (f *CountingBloomFilter) Slots() int { return len(f.counters) }

// Hashes returns the number of hash functions.
func (f *CountingBloomFilter) Hashes() int { return f.hashes }

// key returns the counter index selected by hash function i for x. The hash
// functions are evaluated one at a time so the membership operations — the
// single hottest path of the whole simulator — never materialise an index
// slice on the heap.
func (f *CountingBloomFilter) key(i int, x uint64) int {
	return int(mix64(x^hashSeeds[i]) % uint64(len(f.counters)))
}

// Insert increments the counters for x ("increment" operation in the paper).
func (f *CountingBloomFilter) Insert(x uint64) {
	for i := 0; i < f.hashes; i++ {
		k := f.key(i, x)
		if f.counters[k] < f.counterMax {
			f.counters[k]++
		} else {
			f.saturations.Inc()
		}
	}
	f.truth[x]++
}

// Remove decrements the counters for x ("decrement"). Removing an element
// that was never inserted is a caller bug and is ignored: in the FUSE design
// a decrement is only ever issued when a block that was registered in the
// CBF is evicted from the STT-MRAM bank, so a spurious decrement would
// corrupt shared counters and create false negatives.
func (f *CountingBloomFilter) Remove(x uint64) {
	if f.truth[x] == 0 {
		return
	}
	for i := 0; i < f.hashes; i++ {
		if k := f.key(i, x); f.counters[k] > 0 {
			f.counters[k]--
		}
	}
	if n := f.truth[x]; n > 1 {
		f.truth[x] = n - 1
	} else {
		delete(f.truth, x)
	}
}

// Test reports whether x is (probably) present: it returns false only when x
// is definitely absent ("negative"), true when all counters are non-zero
// ("positive", possibly false).
func (f *CountingBloomFilter) Test(x uint64) bool {
	f.tests.Inc()
	for i := 0; i < f.hashes; i++ {
		if f.counters[f.key(i, x)] == 0 {
			return false
		}
	}
	f.positives.Inc()
	if f.truth[x] == 0 {
		f.falsePositive.Inc()
	}
	return true
}

// Contains reports ground-truth membership (for testing and accuracy
// accounting; real hardware does not have this).
func (f *CountingBloomFilter) Contains(x uint64) bool { return f.truth[x] > 0 }

// Tests returns the number of membership tests performed.
func (f *CountingBloomFilter) Tests() uint64 { return f.tests.Value() }

// FalsePositives returns the number of positive answers for absent elements.
func (f *CountingBloomFilter) FalsePositives() uint64 { return f.falsePositive.Value() }

// FalsePositiveRate returns false positives / tests.
func (f *CountingBloomFilter) FalsePositiveRate() float64 {
	if f.tests.Value() == 0 {
		return 0
	}
	return float64(f.falsePositive.Value()) / float64(f.tests.Value())
}

// Saturations returns how many counter increments hit the counter maximum
// (each is a potential future false negative; with 2-bit counters and 16-slot
// data sets the paper finds this negligible).
func (f *CountingBloomFilter) Saturations() uint64 { return f.saturations.Value() }

// Reset clears all counters and statistics.
func (f *CountingBloomFilter) Reset() {
	for i := range f.counters {
		f.counters[i] = 0
	}
	f.truth = make(map[uint64]int)
	f.tests.Reset()
	f.positives.Reset()
	f.falsePositive.Reset()
	f.saturations.Reset()
}

// NVMCBF models the paper's STT-MRAM-based CBF array: `count` independent
// CBFs share one 2-D MTJ structure and peripheral circuitry. Elements are
// partitioned across CBFs by a partition function supplied by the caller
// (FUSE partitions the STT-MRAM tag array into `count` regions). A test
// completes within a single STT-MRAM read; increments and decrements overlap
// with the corresponding data-array write.
type NVMCBF struct {
	filters []*CountingBloomFilter
	// TestLatency is the membership-test latency in cycles (one STT-MRAM
	// read; the paper's Cadence/CACTI analysis reports 591 ps, under one
	// cache cycle).
	TestLatency int
	// UpdateLatency is the increment/decrement latency in cycles; it is
	// hidden behind the data-array write in FUSE.
	UpdateLatency int
}

// NewNVMCBF builds an NVM-CBF array of `count` filters, each with the given
// slots and hash functions and 2-bit counters (the paper's configuration is
// 128 CBFs x 16 2-bit counters with 3 hash functions; the Figure 20
// sensitivity study also explores 32-128 slots and 1-5 hash functions).
func NewNVMCBF(count, slots, hashes int) *NVMCBF {
	if count <= 0 {
		count = 1
	}
	n := &NVMCBF{
		filters:       make([]*CountingBloomFilter, count),
		TestLatency:   1,
		UpdateLatency: 1,
	}
	for i := range n.filters {
		n.filters[i] = New(slots, hashes, 2)
	}
	return n
}

// Count returns the number of CBFs in the array.
func (n *NVMCBF) Count() int { return len(n.filters) }

// Filter returns the i-th CBF (for region i of the partitioned tag array).
func (n *NVMCBF) Filter(i int) *CountingBloomFilter {
	return n.filters[i%len(n.filters)]
}

// PartitionFor maps a block address to its CBF region.
func (n *NVMCBF) PartitionFor(block uint64) int {
	return int(mix64(block) % uint64(len(n.filters)))
}

// Insert registers a block in its region's CBF.
func (n *NVMCBF) Insert(block uint64) { n.Filter(n.PartitionFor(block)).Insert(block) }

// Remove unregisters a block from its region's CBF.
func (n *NVMCBF) Remove(block uint64) { n.Filter(n.PartitionFor(block)).Remove(block) }

// Test reports whether the block is probably present in its region, and the
// region index that would need to be searched.
func (n *NVMCBF) Test(block uint64) (bool, int) {
	region := n.PartitionFor(block)
	return n.Filter(region).Test(block), region
}

// FalsePositiveRate aggregates the false-positive rate across all CBFs.
func (n *NVMCBF) FalsePositiveRate() float64 {
	var fp, tests uint64
	for _, f := range n.filters {
		fp += f.FalsePositives()
		tests += f.Tests()
	}
	if tests == 0 {
		return 0
	}
	return float64(fp) / float64(tests)
}

// Tests returns the total number of membership tests across all CBFs.
func (n *NVMCBF) Tests() uint64 {
	var t uint64
	for _, f := range n.filters {
		t += f.Tests()
	}
	return t
}

// Reset clears every CBF in the array.
func (n *NVMCBF) Reset() {
	for _, f := range n.filters {
		f.Reset()
	}
}

// AreaBytes returns the storage the CBF array occupies, in bytes (the paper's
// configuration of 128 CBFs x 16 2-bit counters is 512 B).
func (n *NVMCBF) AreaBytes() int {
	if len(n.filters) == 0 {
		return 0
	}
	bitsPerFilter := n.filters[0].Slots() * 2
	return len(n.filters) * bitsPerFilter / 8
}

// String summarises the array configuration.
func (n *NVMCBF) String() string {
	return fmt.Sprintf("NVM-CBF{%d filters x %d slots, %d hashes}",
		len(n.filters), n.filters[0].Slots(), n.filters[0].Hashes())
}
