package cbf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertTestRemove(t *testing.T) {
	f := New(64, 3, 2)
	if f.Slots() != 64 || f.Hashes() != 3 {
		t.Fatalf("config mismatch: %d slots %d hashes", f.Slots(), f.Hashes())
	}
	if f.Test(42) {
		t.Errorf("empty filter should report absent")
	}
	f.Insert(42)
	if !f.Test(42) {
		t.Errorf("inserted element should test positive")
	}
	if !f.Contains(42) {
		t.Errorf("ground truth should contain 42")
	}
	f.Remove(42)
	if f.Test(42) {
		t.Errorf("removed element should test negative (no other elements present)")
	}
	if f.Contains(42) {
		t.Errorf("ground truth should no longer contain 42")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	// Property: an element that is currently inserted always tests positive,
	// regardless of what else was inserted or removed.
	prop := func(inserted []uint64, removed []uint64) bool {
		f := New(128, 3, 4)
		present := map[uint64]int{}
		for _, x := range inserted {
			f.Insert(x)
			present[x]++
		}
		for _, x := range removed {
			if present[x] > 0 { // only remove what is actually present
				f.Remove(x)
				present[x]--
			}
		}
		for x, n := range present {
			if n > 0 && !f.Test(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCounterSaturationTracked(t *testing.T) {
	f := New(4, 1, 2) // tiny: 4 slots, 2-bit counters saturate at 3
	for i := 0; i < 40; i++ {
		f.Insert(7) // same element over and over
	}
	if f.Saturations() == 0 {
		t.Errorf("expected counter saturations to be recorded")
	}
}

func TestRemoveAbsentIsSafe(t *testing.T) {
	f := New(16, 2, 2)
	f.Remove(99) // must not underflow
	if f.Test(99) {
		t.Errorf("absent element should still be absent")
	}
	f.Insert(5)
	f.Remove(99)
	if !f.Test(5) {
		t.Errorf("unrelated removal must not disturb present elements")
	}
}

func TestFalsePositiveAccounting(t *testing.T) {
	f := New(8, 1, 2) // deliberately tiny so collisions are likely
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		f.Insert(rng.Uint64())
	}
	fpBefore := f.FalsePositives()
	found := false
	for i := 0; i < 1000; i++ {
		x := rng.Uint64()
		if f.Contains(x) {
			continue
		}
		if f.Test(x) {
			found = true
			break
		}
	}
	if !found {
		t.Skip("no false positive produced; extremely unlikely with 8 slots")
	}
	if f.FalsePositives() <= fpBefore {
		t.Errorf("false positive should have been counted")
	}
	if f.FalsePositiveRate() <= 0 || f.FalsePositiveRate() > 1 {
		t.Errorf("false positive rate out of range: %v", f.FalsePositiveRate())
	}
}

func TestMoreHashesReduceFalsePositives(t *testing.T) {
	// Reproduces the Figure 20a trend: with a fixed population, more hash
	// functions reduce the false-positive rate (until saturation).
	rate := func(hashes int) float64 {
		f := New(128, hashes, 2)
		rng := rand.New(rand.NewSource(7))
		members := make([]uint64, 12)
		for i := range members {
			members[i] = rng.Uint64()
			f.Insert(members[i])
		}
		for i := 0; i < 20000; i++ {
			f.Test(rng.Uint64())
		}
		return f.FalsePositiveRate()
	}
	r1 := rate(1)
	r3 := rate(3)
	if r3 >= r1 {
		t.Errorf("3 hash functions should have fewer false positives than 1: %v vs %v", r3, r1)
	}
}

func TestMoreSlotsReduceFalsePositives(t *testing.T) {
	// Figure 20b trend: larger counter arrays reduce false positives.
	rate := func(slots int) float64 {
		f := New(slots, 3, 2)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 12; i++ {
			f.Insert(rng.Uint64())
		}
		for i := 0; i < 20000; i++ {
			f.Test(rng.Uint64())
		}
		return f.FalsePositiveRate()
	}
	r32 := rate(32)
	r128 := rate(128)
	if r128 >= r32 && r32 != 0 {
		t.Errorf("128 slots should have fewer false positives than 32: %v vs %v", r128, r32)
	}
}

func TestReset(t *testing.T) {
	f := New(32, 3, 2)
	f.Insert(1)
	f.Test(1)
	f.Test(2)
	f.Reset()
	if f.Test(1) {
		t.Errorf("reset filter should be empty")
	}
	// Reset clears stats too (the Test(1) above counts as 1 test post-reset).
	if f.Tests() != 1 || f.FalsePositives() != 0 {
		t.Errorf("reset should clear statistics: tests=%d fp=%d", f.Tests(), f.FalsePositives())
	}
}

func TestClampedConstruction(t *testing.T) {
	f := New(0, 0, 0)
	if f.Slots() != 1 || f.Hashes() != 1 {
		t.Errorf("constructor should clamp to minimum sizes: %d slots %d hashes", f.Slots(), f.Hashes())
	}
	f2 := New(16, 100, 99)
	if f2.Hashes() != MaxHashFunctions {
		t.Errorf("hashes should clamp to %d, got %d", MaxHashFunctions, f2.Hashes())
	}
	f2.Insert(3)
	if !f2.Test(3) {
		t.Errorf("clamped filter should still work")
	}
}

func TestNVMCBFPartitioning(t *testing.T) {
	n := NewNVMCBF(128, 16, 3)
	if n.Count() != 128 {
		t.Fatalf("Count = %d", n.Count())
	}
	if n.AreaBytes() != 512 {
		t.Errorf("paper configuration should occupy 512 bytes, got %d", n.AreaBytes())
	}
	// The same block always maps to the same partition.
	for i := 0; i < 100; i++ {
		b := uint64(i * 128)
		p1 := n.PartitionFor(b)
		p2 := n.PartitionFor(b)
		if p1 != p2 {
			t.Fatalf("partition function not deterministic")
		}
		if p1 < 0 || p1 >= n.Count() {
			t.Fatalf("partition out of range: %d", p1)
		}
	}
	n.Insert(0x1000)
	ok, region := n.Test(0x1000)
	if !ok {
		t.Errorf("inserted block should test positive")
	}
	if region != n.PartitionFor(0x1000) {
		t.Errorf("Test should report the block's own region")
	}
	n.Remove(0x1000)
	if ok, _ := n.Test(0x1000); ok {
		t.Errorf("removed block should test negative")
	}
	if n.Tests() != 2 {
		t.Errorf("Tests() = %d, want 2", n.Tests())
	}
	if n.FalsePositiveRate() < 0 || n.FalsePositiveRate() > 1 {
		t.Errorf("aggregate false positive rate out of range")
	}
	n.Reset()
	if n.Tests() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if n.String() == "" {
		t.Errorf("String should describe the configuration")
	}
	if NewNVMCBF(0, 16, 3).Count() != 1 {
		t.Errorf("count should clamp to 1")
	}
	if n.TestLatency < 1 {
		t.Errorf("membership test should cost at least one cycle")
	}
}

func TestNVMCBFDistributesAcrossFilters(t *testing.T) {
	n := NewNVMCBF(16, 16, 3)
	seen := map[int]bool{}
	for i := 0; i < 512; i++ {
		seen[n.PartitionFor(uint64(i)*128)] = true
	}
	if len(seen) < 12 {
		t.Errorf("partition function should spread blocks over most filters, hit %d/16", len(seen))
	}
}
