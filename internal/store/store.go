// Package store persists simulation results in a content-addressed on-disk
// store so that an identical (GPU configuration, workload profile, simulation
// options) point is computed once, ever — across processes, figures, CLI runs
// and the fuseserve front door.
//
// Key scheme: the SHA-256 hex digest of the canonical JSON encoding of the
// key material — a schema version plus config.GPUConfig, the workload's own
// canonical key material (trace.Workload.KeyMaterial; exactly the Profile
// encoding for synthetic workloads) and sim.Options (defaults applied).
// Canonical means object keys are sorted and numbers are preserved verbatim,
// so the key does not depend on the order in which fields were encoded.
//
// Disk layout: one versioned JSON envelope per result at
// <dir>/<key[:2]>/<key>.json, written atomically (temp file + rename).
// Corrupt, truncated or wrong-schema entries are treated as cache misses,
// never as errors; on read they are quarantined (renamed to <key>.corrupt)
// so the key becomes writable again instead of silently re-missing forever.
//
// The Cache interface composes: Memory is the in-process tier (optionally
// bounded, with LRU eviction), Disk the persistent one, and Tiered layers
// memory over disk with read-through backfill. The engine consults a Cache
// before executing a job and writes results through after execution. Each
// tier exports a Health snapshot for the serving layer's health endpoints.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

// SchemaVersion versions both the key material and the result envelope. Bump
// it whenever the encoding of either changes incompatibly — or when a
// timing-affecting simulator fix invalidates previously computed results:
// old entries then read as misses and are recomputed, never misdecoded.
//
// v2: the L2 miss path became MSHR-based and event-driven (fills land in the
// tag store at DRAM completion time, FR-FCFS scheduling, pluggable memory
// backends); every v1 result carries the old optimistic off-chip timing.
const SchemaVersion = 2

// keyMaterial is everything that determines a simulation's outcome. The
// workload slot holds the workload's own canonical key material verbatim
// (trace.Workload.KeyMaterial): for synthetic workloads that is exactly the
// Profile's JSON encoding, so every key minted before the workload API
// existed — when this struct embedded trace.Profile directly — is unchanged.
type keyMaterial struct {
	Schema  int              `json:"schema"`
	GPU     config.GPUConfig `json:"gpu"`
	Profile json.RawMessage  `json:"profile"`
	Options sim.Options      `json:"options"`
}

// Key returns the content-addressed store key of a simulation point: the
// SHA-256 hex digest of the canonical JSON of the key material. Options are
// canonicalised with their defaults applied first, and the GPU's off-chip
// memory fields are resolved the way the controller resolves them, so two
// configs describing the same simulation address the same stored result.
func Key(gpu config.GPUConfig, workload trace.Workload, opts sim.Options) (string, error) {
	if workload == nil {
		return "", fmt.Errorf("store: nil workload")
	}
	material, err := workload.KeyMaterial()
	if err != nil {
		return "", fmt.Errorf("store: encoding workload key material: %w", err)
	}
	raw, err := json.Marshal(keyMaterial{
		Schema:  SchemaVersion,
		GPU:     gpu.WithMemDefaults(),
		Profile: material,
		Options: opts.WithDefaults(),
	})
	if err != nil {
		return "", fmt.Errorf("store: encoding key material: %w", err)
	}
	canon, err := canonicalJSON(raw)
	if err != nil {
		return "", fmt.Errorf("store: canonicalising key material: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalJSON re-encodes a JSON document with sorted object keys and
// verbatim numbers, so that two encodings of the same value — differing only
// in field order — produce identical bytes.
func canonicalJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep numbers textual: a uint64 must not detour through float64
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return json.Marshal(v) // maps marshal with sorted keys
}

// ValidKey reports whether the string has the shape of a store key (64
// lowercase hex digits). Serving layers use it to reject malformed keys
// before they reach the filesystem.
func ValidKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// envelope is the versioned on-disk encoding of one result.
type envelope struct {
	Schema int        `json:"schema"`
	Result sim.Result `json:"result"`
}

// Encode serialises a result as a versioned JSON envelope. The encoding is
// deterministic: encoding the decoded value again yields identical bytes.
func Encode(res sim.Result) ([]byte, error) {
	b, err := json.Marshal(envelope{Schema: SchemaVersion, Result: res})
	if err != nil {
		return nil, fmt.Errorf("store: encoding result: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses a versioned envelope. Any defect — malformed JSON, a
// truncated document, a schema mismatch — is an error; callers on the cache
// path translate errors into misses.
func Decode(data []byte) (sim.Result, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return sim.Result{}, fmt.Errorf("store: decoding result: %w", err)
	}
	if env.Schema != SchemaVersion {
		return sim.Result{}, fmt.Errorf("store: schema %d, want %d", env.Schema, SchemaVersion)
	}
	return env.Result, nil
}

// Cache is a result cache tier: Get reports a hit or a miss (never an
// error — a broken tier behaves as empty), Put stores best-effort.
type Cache interface {
	Get(key string) (sim.Result, bool)
	Put(key string, res sim.Result)
}

// Health is a point-in-time snapshot of one cache tier's condition, served
// by the fuseserve health endpoints.
type Health struct {
	// Tier names the tier ("memory" or "disk").
	Tier string `json:"tier"`
	// Entries is the resident entry count (memory tier only: the disk tier
	// would have to walk its directory to count).
	Entries int `json:"entries,omitempty"`
	// Capacity is the memory tier's entry bound (0 = unbounded).
	Capacity int `json:"capacity,omitempty"`
	// Evictions counts entries the memory tier evicted to stay within its
	// capacity.
	Evictions int64 `json:"evictions,omitempty"`
	// Quarantined counts corrupt disk entries renamed aside on read.
	Quarantined int64 `json:"quarantined,omitempty"`
	// IOFailures is the current run of consecutive disk I/O failures; any
	// successful read or write resets it.
	IOFailures int64 `json:"ioFailures,omitempty"`
	// Hits and Misses count lookups answered and not answered by the tier
	// (remote tier only: it is the one tier whose traffic crosses a network
	// and is therefore worth metering per node).
	Hits   int64 `json:"hits,omitempty"`
	Misses int64 `json:"misses,omitempty"`
	// Degraded reports whether the tier has tripped its degraded state
	// (the disk tier trips after DegradedThreshold consecutive I/O
	// failures and recovers on the next success).
	Degraded bool `json:"degraded"`
}

// HealthReporter is implemented by cache tiers that can snapshot their
// condition.
type HealthReporter interface {
	Health() Health
}

// Memory is the in-process cache tier: a mutex-guarded map with an optional
// entry bound. When bounded, the least-recently-used entry is evicted on
// overflow, so sweep traffic degrades gracefully to a working set instead of
// growing without limit.
type Memory struct {
	mu         sync.Mutex
	m          map[string]*memEntry
	head, tail *memEntry // recency list: head = most recently used
	capacity   int       // 0 = unbounded
	evictions  int64
}

// memEntry is one resident result on the recency list.
type memEntry struct {
	key        string
	res        sim.Result
	prev, next *memEntry
}

// NewMemory creates an empty, unbounded in-memory tier.
func NewMemory() *Memory {
	return &Memory{m: make(map[string]*memEntry)}
}

// NewMemoryLRU creates an in-memory tier bounded to capacity entries with
// least-recently-used eviction. A capacity of zero or less is unbounded.
func NewMemoryLRU(capacity int) *Memory {
	c := NewMemory()
	if capacity > 0 {
		c.capacity = capacity
	}
	return c
}

// unlink removes e from the recency list.
func (c *Memory) unlink(e *memEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *Memory) pushFront(e *memEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get implements Cache, freshening the entry's recency.
func (c *Memory) Get(key string) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return sim.Result{}, false
	}
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.res, true
}

// Put implements Cache, evicting the least-recently-used entry when a bound
// is set and exceeded.
func (c *Memory) Put(key string, res sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.res = res
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	e := &memEntry{key: key, res: res}
	c.m[key] = e
	c.pushFront(e)
	if c.capacity > 0 && len(c.m) > c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.m, victim.key)
		c.evictions++
	}
}

// Len returns the number of cached results.
func (c *Memory) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Health implements HealthReporter. The memory tier never degrades:
// eviction is its designed response to pressure.
func (c *Memory) Health() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Health{
		Tier:      "memory",
		Entries:   len(c.m),
		Capacity:  c.capacity,
		Evictions: c.evictions,
	}
}

// DegradedThreshold is the number of consecutive disk I/O failures after
// which the disk tier reports itself degraded. The tier keeps serving (every
// failure is still just a miss or a dropped write); the flag only feeds the
// health endpoints so operators and load balancers can react.
const DegradedThreshold = 3

// Disk is the persistent, content-addressed cache tier.
type Disk struct {
	dir string

	// quarantined counts corrupt entries renamed aside on read.
	quarantined atomic.Int64
	// ioFailures is the current run of consecutive I/O failures (reads or
	// writes that error for reasons other than the entry not existing); a
	// successful read or write resets it.
	ioFailures atomic.Int64
}

// Open creates (if necessary) and opens a disk store rooted at dir, sweeping
// any stale .tmp-* files a crashed writer may have left behind.
func Open(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sweepTempFiles(dir)
	return &Disk{dir: dir}, nil
}

// sweepTempFiles removes .tmp-* files from the store's fan-out directories.
// Writers create them with os.CreateTemp and rename them into place; a
// writer killed between the two leaves an orphan that would otherwise
// accumulate forever. Removal is best-effort — a sweep failure never blocks
// opening the store.
func sweepTempFiles(dir string) {
	stale, err := filepath.Glob(filepath.Join(dir, "*", ".tmp-*"))
	if err != nil {
		return
	}
	for _, path := range stale {
		_ = os.Remove(path)
	}
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a key to its entry file: a two-character fan-out directory keeps
// any single directory small even for very large stores.
func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, key[:2], key+".json")
}

// EntryPath returns the on-disk path of a key's entry file. Exposed for
// tooling and fault injection that needs to manipulate entries at the byte
// level; returns "" for an invalid key.
func (d *Disk) EntryPath(key string) string {
	if !ValidKey(key) {
		return ""
	}
	return d.path(key)
}

// quarantinePath is where a corrupt entry is renamed: same fan-out
// directory, .corrupt extension.
func (d *Disk) quarantinePath(key string) string {
	return filepath.Join(d.dir, key[:2], key+".corrupt")
}

// ioFailed records one I/O failure; ioOK ends the failure run.
func (d *Disk) ioFailed() { d.ioFailures.Add(1) }
func (d *Disk) ioOK()     { d.ioFailures.Store(0) }

// Get implements Cache. Unreadable entries are misses; corrupt entries
// (truncated, malformed, wrong schema) are quarantined — renamed to
// <key>.corrupt — so the key reads as a genuine miss and the next Put
// repopulates it, instead of the store re-missing on the same bad bytes
// forever.
//
//fuselint:blocking reads the entry from disk
func (d *Disk) Get(key string) (sim.Result, bool) {
	if !ValidKey(key) {
		return sim.Result{}, false
	}
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			d.ioFailed()
		}
		return sim.Result{}, false
	}
	res, err := Decode(data)
	if err != nil {
		if os.Rename(path, d.quarantinePath(key)) == nil {
			d.quarantined.Add(1)
		}
		return sim.Result{}, false
	}
	d.ioOK()
	return res, true
}

// Quarantined returns the number of corrupt entries quarantined on read.
func (d *Disk) Quarantined() int64 { return d.quarantined.Load() }

// Health implements HealthReporter.
func (d *Disk) Health() Health {
	fails := d.ioFailures.Load()
	return Health{
		Tier:        "disk",
		Quarantined: d.quarantined.Load(),
		IOFailures:  fails,
		Degraded:    fails >= DegradedThreshold,
	}
}

// Put implements Cache, swallowing write errors (a read-only or full store
// degrades to a pass-through cache, it does not fail the simulation).
func (d *Disk) Put(key string, res sim.Result) { _ = d.Write(key, res) }

// Write stores one result, reporting errors. The entry is written to a
// temporary file in the destination directory and renamed into place, so
// concurrent writers and crashed processes can never leave a torn entry
// behind — only a complete one or none.
//
//fuselint:blocking writes and renames the entry on disk
func (d *Disk) Write(key string, res sim.Result) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	data, err := Encode(res)
	if err != nil {
		return err
	}
	if err := d.writeEntry(d.path(key), data); err != nil {
		d.ioFailed()
		return err
	}
	d.ioOK()
	return nil
}

// writeEntry performs the atomic temp-file + rename write of one entry.
func (d *Disk) writeEntry(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len walks the store and returns the number of valid-looking entries.
func (d *Disk) Len() int {
	n := 0
	_ = filepath.WalkDir(d.dir, func(path string, entry os.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return nil
		}
		if filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}

// OpenTiered opens (creating if necessary) a disk store at dir and composes
// a fresh memory tier over it — the standard wiring of every CLI tool and
// server that takes a -store flag.
func OpenTiered(dir string) (*Tiered, error) {
	disk, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return NewTiered(NewMemory(), disk), nil
}

// OpenTieredResilient opens a tiered store at dir; if the disk tier cannot
// be opened it degrades to a memory-only cache instead of failing, returning
// the open error as a warning. The returned Tiered is always usable:
//
//	cache, warn := store.OpenTieredResilient(dir)
//	if warn != nil { log.Printf("warning: %v; continuing memory-only", warn) }
func OpenTieredResilient(dir string) (*Tiered, error) {
	t, err := OpenTiered(dir)
	if err != nil {
		return NewTiered(NewMemory()), err
	}
	return t, nil
}

// Tiered layers cache tiers fastest-first: Get probes in order and backfills
// every faster tier on a hit; Put writes through to all tiers.
type Tiered struct {
	tiers []Cache
}

// NewTiered composes tiers, fastest first (e.g. NewTiered(mem, disk)).
func NewTiered(tiers ...Cache) *Tiered {
	return &Tiered{tiers: tiers}
}

// Get implements Cache.
func (t *Tiered) Get(key string) (sim.Result, bool) {
	for i, c := range t.tiers {
		if res, ok := c.Get(key); ok {
			for j := 0; j < i; j++ {
				t.tiers[j].Put(key, res)
			}
			return res, true
		}
	}
	return sim.Result{}, false
}

// Put implements Cache.
func (t *Tiered) Put(key string, res sim.Result) {
	for _, c := range t.tiers {
		c.Put(key, res)
	}
}

// Health snapshots every tier that can report one, fastest-first.
func (t *Tiered) Health() []Health {
	var out []Health
	for _, c := range t.tiers {
		if hr, ok := c.(HealthReporter); ok {
			out = append(out, hr.Health())
		}
	}
	return out
}

// Degraded reports whether any tier is degraded.
func (t *Tiered) Degraded() bool {
	for _, h := range t.Health() {
		if h.Degraded {
			return true
		}
	}
	return false
}
