// Package store persists simulation results in a content-addressed on-disk
// store so that an identical (GPU configuration, workload profile, simulation
// options) point is computed once, ever — across processes, figures, CLI runs
// and the fuseserve front door.
//
// Key scheme: the SHA-256 hex digest of the canonical JSON encoding of the
// key material — a schema version plus config.GPUConfig, the workload's own
// canonical key material (trace.Workload.KeyMaterial; exactly the Profile
// encoding for synthetic workloads) and sim.Options (defaults applied).
// Canonical means object keys are sorted and numbers are preserved verbatim,
// so the key does not depend on the order in which fields were encoded.
//
// Disk layout: one versioned JSON envelope per result at
// <dir>/<key[:2]>/<key>.json, written atomically (temp file + rename).
// Corrupt, truncated or wrong-schema entries are treated as cache misses,
// never as errors.
//
// The Cache interface composes: Memory is the in-process tier, Disk the
// persistent one, and Tiered layers memory over disk with read-through
// backfill. The engine consults a Cache before executing a job and writes
// results through after execution.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

// SchemaVersion versions both the key material and the result envelope. Bump
// it whenever the encoding of either changes incompatibly — or when a
// timing-affecting simulator fix invalidates previously computed results:
// old entries then read as misses and are recomputed, never misdecoded.
//
// v2: the L2 miss path became MSHR-based and event-driven (fills land in the
// tag store at DRAM completion time, FR-FCFS scheduling, pluggable memory
// backends); every v1 result carries the old optimistic off-chip timing.
const SchemaVersion = 2

// keyMaterial is everything that determines a simulation's outcome. The
// workload slot holds the workload's own canonical key material verbatim
// (trace.Workload.KeyMaterial): for synthetic workloads that is exactly the
// Profile's JSON encoding, so every key minted before the workload API
// existed — when this struct embedded trace.Profile directly — is unchanged.
type keyMaterial struct {
	Schema  int              `json:"schema"`
	GPU     config.GPUConfig `json:"gpu"`
	Profile json.RawMessage  `json:"profile"`
	Options sim.Options      `json:"options"`
}

// Key returns the content-addressed store key of a simulation point: the
// SHA-256 hex digest of the canonical JSON of the key material. Options are
// canonicalised with their defaults applied first, and the GPU's off-chip
// memory fields are resolved the way the controller resolves them, so two
// configs describing the same simulation address the same stored result.
func Key(gpu config.GPUConfig, workload trace.Workload, opts sim.Options) (string, error) {
	if workload == nil {
		return "", fmt.Errorf("store: nil workload")
	}
	material, err := workload.KeyMaterial()
	if err != nil {
		return "", fmt.Errorf("store: encoding workload key material: %w", err)
	}
	raw, err := json.Marshal(keyMaterial{
		Schema:  SchemaVersion,
		GPU:     gpu.WithMemDefaults(),
		Profile: material,
		Options: opts.WithDefaults(),
	})
	if err != nil {
		return "", fmt.Errorf("store: encoding key material: %w", err)
	}
	canon, err := canonicalJSON(raw)
	if err != nil {
		return "", fmt.Errorf("store: canonicalising key material: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalJSON re-encodes a JSON document with sorted object keys and
// verbatim numbers, so that two encodings of the same value — differing only
// in field order — produce identical bytes.
func canonicalJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep numbers textual: a uint64 must not detour through float64
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return json.Marshal(v) // maps marshal with sorted keys
}

// ValidKey reports whether the string has the shape of a store key (64
// lowercase hex digits). Serving layers use it to reject malformed keys
// before they reach the filesystem.
func ValidKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// envelope is the versioned on-disk encoding of one result.
type envelope struct {
	Schema int        `json:"schema"`
	Result sim.Result `json:"result"`
}

// Encode serialises a result as a versioned JSON envelope. The encoding is
// deterministic: encoding the decoded value again yields identical bytes.
func Encode(res sim.Result) ([]byte, error) {
	b, err := json.Marshal(envelope{Schema: SchemaVersion, Result: res})
	if err != nil {
		return nil, fmt.Errorf("store: encoding result: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses a versioned envelope. Any defect — malformed JSON, a
// truncated document, a schema mismatch — is an error; callers on the cache
// path translate errors into misses.
func Decode(data []byte) (sim.Result, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return sim.Result{}, fmt.Errorf("store: decoding result: %w", err)
	}
	if env.Schema != SchemaVersion {
		return sim.Result{}, fmt.Errorf("store: schema %d, want %d", env.Schema, SchemaVersion)
	}
	return env.Result, nil
}

// Cache is a result cache tier: Get reports a hit or a miss (never an
// error — a broken tier behaves as empty), Put stores best-effort.
type Cache interface {
	Get(key string) (sim.Result, bool)
	Put(key string, res sim.Result)
}

// Memory is the in-process cache tier: a mutex-guarded map.
type Memory struct {
	mu sync.RWMutex
	m  map[string]sim.Result
}

// NewMemory creates an empty in-memory tier.
func NewMemory() *Memory {
	return &Memory{m: make(map[string]sim.Result)}
}

// Get implements Cache.
func (c *Memory) Get(key string) (sim.Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	res, ok := c.m[key]
	return res, ok
}

// Put implements Cache.
func (c *Memory) Put(key string, res sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = res
}

// Len returns the number of cached results.
func (c *Memory) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Disk is the persistent, content-addressed cache tier.
type Disk struct {
	dir string
}

// Open creates (if necessary) and opens a disk store rooted at dir.
func Open(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a key to its entry file: a two-character fan-out directory keeps
// any single directory small even for very large stores.
func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, key[:2], key+".json")
}

// Get implements Cache. Unreadable or corrupt entries are misses.
//
//fuselint:blocking reads the entry from disk
func (d *Disk) Get(key string) (sim.Result, bool) {
	if !ValidKey(key) {
		return sim.Result{}, false
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return sim.Result{}, false
	}
	res, err := Decode(data)
	if err != nil {
		return sim.Result{}, false
	}
	return res, true
}

// Put implements Cache, swallowing write errors (a read-only or full store
// degrades to a pass-through cache, it does not fail the simulation).
func (d *Disk) Put(key string, res sim.Result) { _ = d.Write(key, res) }

// Write stores one result, reporting errors. The entry is written to a
// temporary file in the destination directory and renamed into place, so
// concurrent writers and crashed processes can never leave a torn entry
// behind — only a complete one or none.
//
//fuselint:blocking writes and renames the entry on disk
func (d *Disk) Write(key string, res sim.Result) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	data, err := Encode(res)
	if err != nil {
		return err
	}
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len walks the store and returns the number of valid-looking entries.
func (d *Disk) Len() int {
	n := 0
	_ = filepath.WalkDir(d.dir, func(path string, entry os.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return nil
		}
		if filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}

// OpenTiered opens (creating if necessary) a disk store at dir and composes
// a fresh memory tier over it — the standard wiring of every CLI tool and
// server that takes a -store flag.
func OpenTiered(dir string) (*Tiered, error) {
	disk, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return NewTiered(NewMemory(), disk), nil
}

// Tiered layers cache tiers fastest-first: Get probes in order and backfills
// every faster tier on a hit; Put writes through to all tiers.
type Tiered struct {
	tiers []Cache
}

// NewTiered composes tiers, fastest first (e.g. NewTiered(mem, disk)).
func NewTiered(tiers ...Cache) *Tiered {
	return &Tiered{tiers: tiers}
}

// Get implements Cache.
func (t *Tiered) Get(key string) (sim.Result, bool) {
	for i, c := range t.tiers {
		if res, ok := c.Get(key); ok {
			for j := 0; j < i; j++ {
				t.tiers[j].Put(key, res)
			}
			return res, true
		}
	}
	return sim.Result{}, false
}

// Put implements Cache.
func (t *Tiered) Put(key string, res sim.Result) {
	for _, c := range t.tiers {
		c.Put(key, res)
	}
}
