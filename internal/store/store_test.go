package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fuse/internal/config"
	"fuse/internal/core"
	"fuse/internal/predictor"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

// sampleResult builds a result with every field populated, including the
// nested accuracy counters, so round-trip defects cannot hide in zero values.
func sampleResult(rng *rand.Rand) sim.Result {
	var acc predictor.AccuracyTracker
	acc.True.Add(rng.Uint64() % 1e6)
	acc.False.Add(rng.Uint64() % 1e6)
	acc.Neutral.Add(rng.Uint64() % 1e6)
	return sim.Result{
		GPUName:      "Fermi-like",
		L1DKind:      config.DyFUSE,
		Workload:     "ATAX",
		Cycles:       int64(rng.Uint64() >> 1),
		Instructions: rng.Uint64(),
		IPC:          rng.Float64() * 4,
		L1D: core.Stats{
			Accesses:            rng.Uint64(),
			Reads:               rng.Uint64(),
			Writes:              rng.Uint64(),
			Hits:                rng.Uint64(),
			QueueHits:           rng.Uint64(),
			SwapHits:            rng.Uint64(),
			STTWriteStallCycles: rng.Uint64(),
			Accuracy:            acc,
		},
		L1DMissRate:     rng.Float64(),
		OutgoingPerSM:   rng.Float64() * 100,
		STTWriteStalls:  rng.Uint64(),
		TagSearchStalls: rng.Uint64(),
		PredTrue:        rng.Float64(),
		PredNeutral:     rng.Float64(),
		PredFalse:       rng.Float64(),
		OffChipFraction: rng.Float64(),
		NetworkFraction: rng.Float64(),
		DRAMFraction:    rng.Float64(),
		L2MissRate:      rng.Float64(),
		L2Accesses:      rng.Uint64(),
		DRAMAccesses:    rng.Uint64(),
		NoCRequests:     rng.Uint64(),
		NoCResponses:    rng.Uint64(),
		AvgFillNoC:      rng.Float64() * 300,
		AvgFillMemory:   rng.Float64() * 300,
		SRAMReads:       rng.Uint64(),
		SRAMWrites:      rng.Uint64(),
		STTReads:        rng.Uint64(),
		STTWrites:       rng.Uint64(),
		SimulatedSMs:    15,
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	// Property: encode -> decode -> re-encode is byte-identical and the
	// decoded value equals the original, for arbitrary results — including
	// extreme uint64 values beyond float64's integer range and subnormal
	// floats.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		res := sampleResult(rng)
		if i == 0 {
			res.Instructions = math.MaxUint64
			res.L1D.Accesses = 1<<53 + 1 // not representable as float64
			res.IPC = math.SmallestNonzeroFloat64
		}
		enc, err := Encode(res)
		if err != nil {
			t.Fatalf("iteration %d: Encode: %v", i, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("iteration %d: Decode: %v", i, err)
		}
		if !reflect.DeepEqual(dec, res) {
			t.Fatalf("iteration %d: decode mismatch:\n got %+v\nwant %+v", i, dec, res)
		}
		enc2, err := Encode(dec)
		if err != nil {
			t.Fatalf("iteration %d: re-Encode: %v", i, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("iteration %d: re-encoding differs:\n%s\n%s", i, enc, enc2)
		}
	}
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	gpu := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	prof, _ := trace.ProfileByName("ATAX")
	opts := sim.Options{InstructionsPerWarp: 200, SMOverride: 2, Seed: 42}

	k1, err := Key(gpu, trace.Synthetic(prof), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidKey(k1) {
		t.Fatalf("key %q is not 64 lowercase hex digits", k1)
	}
	k2, _ := Key(gpu, trace.Synthetic(prof), opts)
	if k1 != k2 {
		t.Errorf("key not deterministic: %s vs %s", k1, k2)
	}
	// Defaults applied: a zero field and its explicit default are the same
	// simulation and must share a key.
	kDefaulted, _ := Key(gpu, trace.Synthetic(prof), sim.Options{InstructionsPerWarp: 200, SMOverride: 2, Seed: 42, MaxCycles: 4_000_000, RequestBytes: 32})
	if kDefaulted != k1 {
		t.Errorf("explicitly defaulted options should hash identically")
	}
	// Any material change must change the key.
	kSeed, _ := Key(gpu, trace.Synthetic(prof), sim.Options{InstructionsPerWarp: 200, SMOverride: 2, Seed: 43})
	if kSeed == k1 {
		t.Errorf("seed change should change the key")
	}
	prof2, _ := trace.ProfileByName("GEMM")
	kProf, _ := Key(gpu, trace.Synthetic(prof2), opts)
	if kProf == k1 {
		t.Errorf("profile change should change the key")
	}
	gpu2 := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
	kGPU, _ := Key(gpu2, trace.Synthetic(prof), opts)
	if kGPU == k1 {
		t.Errorf("GPU configuration change should change the key")
	}
}

func TestCanonicalJSONStableAcrossFieldOrdering(t *testing.T) {
	a := []byte(`{"b": 2, "a": {"y": 1e3, "x": 18446744073709551615}, "c": [1, 2.5]}`)
	b := []byte(`{"c": [1, 2.5], "a": {"x": 18446744073709551615, "y": 1e3}, "b": 2}`)
	ca, err := canonicalJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := canonicalJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical forms differ:\n%s\n%s", ca, cb)
	}
	// Numbers must be preserved verbatim: a detour through float64 would
	// round 2^64-1 and fold 1e3 to 1000.
	if !strings.Contains(string(ca), "18446744073709551615") {
		t.Errorf("uint64 value was not preserved verbatim: %s", ca)
	}
}

func TestDecodeRejectsCorruptAndWrongSchema(t *testing.T) {
	res := sampleResult(rand.New(rand.NewSource(2)))
	enc, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"garbage":      []byte("not json at all"),
		"truncated":    enc[:len(enc)/2],
		"wrong schema": []byte(`{"schema": 999, "result": {}}` + "\n"),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode should fail", name)
		}
	}
}

func TestDiskPutGetAndCorruptEntriesAreMisses(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(rand.New(rand.NewSource(3)))
	gpu := config.FermiGPU(config.NewL1DConfig(config.BaseFUSE))
	prof, _ := trace.ProfileByName("GEMM")
	key, err := Key(gpu, trace.Synthetic(prof), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get(key); ok {
		t.Fatalf("empty store should miss")
	}
	if err := d.Write(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok {
		t.Fatalf("stored entry should hit")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("disk round-trip mismatch")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}

	// Corrupt the entry in place: the next Get must be a miss, not an error
	// or a garbage result.
	path := d.path(key)
	if err := os.WriteFile(path, []byte(`{"schema":1,"result":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key); ok {
		t.Errorf("truncated entry should read as a miss")
	}

	// Malformed keys never touch the filesystem.
	if _, ok := d.Get("../../etc/passwd"); ok {
		t.Errorf("invalid key should miss")
	}
	if err := d.Write("short", res); err == nil {
		t.Errorf("invalid key should not be writable")
	}
}

func TestDiskWriteIsAtomicRename(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(rand.New(rand.NewSource(4)))
	key := strings.Repeat("ab", 32)
	if err := d.Write(key, res); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(d.path(key)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestTieredBackfillsFasterTiers(t *testing.T) {
	mem := NewMemory()
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)
	res := sampleResult(rand.New(rand.NewSource(5)))
	key := strings.Repeat("cd", 32)

	// Seed only the disk tier, as a previous process would have.
	if err := disk.Write(key, res); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 0 {
		t.Fatalf("memory tier should start cold")
	}
	got, ok := tiered.Get(key)
	if !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("tiered read through disk failed")
	}
	if mem.Len() != 1 {
		t.Errorf("hit should backfill the memory tier")
	}
	if _, ok := mem.Get(key); !ok {
		t.Errorf("backfilled entry missing from memory")
	}

	// Put writes through to every tier.
	key2 := strings.Repeat("ef", 32)
	tiered.Put(key2, res)
	if _, ok := mem.Get(key2); !ok {
		t.Errorf("Put should reach the memory tier")
	}
	if _, ok := disk.Get(key2); !ok {
		t.Errorf("Put should reach the disk tier")
	}
	if _, ok := tiered.Get(strings.Repeat("00", 32)); ok {
		t.Errorf("unknown key should miss every tier")
	}
}

func TestKeyCanonicalisesMemoryConfig(t *testing.T) {
	prof, _ := trace.ProfileByName("ATAX")
	opts := sim.Options{}

	// MemBackend "" resolves to the GDDR5 default; zero DRAM geometry
	// resolves to the controller defaults — both must address the same
	// stored result as the fully explicit Fermi config.
	explicit := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	implicit := explicit
	implicit.MemBackend = ""
	implicit.DRAMBanksPerChannel = 0
	implicit.DRAMRowBytes = 0
	implicit.DRAMBurstCycles = 0
	implicit.DRAMQueueDepth = 0

	ke, err := Key(explicit, trace.Synthetic(prof), opts)
	if err != nil {
		t.Fatal(err)
	}
	ki, err := Key(implicit, trace.Synthetic(prof), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ke != ki {
		t.Errorf("implicit and explicit memory defaults must share a key:\n%s\n%s", ke, ki)
	}

	// Timing fields a non-baseline backend ignores must not split keys.
	hbmA := explicit
	hbmA.MemBackend = "HBM2"
	hbmB := hbmA
	hbmB.TCL = 99
	ka, _ := Key(hbmA, trace.Synthetic(prof), opts)
	kb, _ := Key(hbmB, trace.Synthetic(prof), opts)
	if ka != kb {
		t.Errorf("backend-ignored timing fields must not change the key")
	}

	// A different backend is a different simulation.
	if ka == ke {
		t.Errorf("backend must be part of the key")
	}
}

// legacyKeyMaterial replicates, field for field, the key material this
// package hashed before the workload API existed, when the Profile struct
// was embedded directly. TestBuiltinKeysPinned re-derives every builtin key
// through it: if the workload redesign (or any later change) alters the
// canonical bytes of a builtin profile's key, existing v2 store entries
// would silently become misses — this test fails first.
type legacyKeyMaterial struct {
	Schema  int              `json:"schema"`
	GPU     config.GPUConfig `json:"gpu"`
	Profile trace.Profile    `json:"profile"`
	Options sim.Options      `json:"options"`
}

func legacyKey(t *testing.T, gpu config.GPUConfig, prof trace.Profile, opts sim.Options) string {
	t.Helper()
	raw, err := json.Marshal(legacyKeyMaterial{
		Schema:  SchemaVersion,
		GPU:     gpu.WithMemDefaults(),
		Profile: prof,
		Options: opts.WithDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := canonicalJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}

// goldenATAXKey is the store key of (Fermi Dy-FUSE, ATAX, default options)
// as minted by the pre-workload-API implementation. A literal constant, not
// a derived value: it catches changes that would slip through if both sides
// of a comparison were recomputed (e.g. renaming a Profile field).
const goldenATAXKey = "e9078ad3450d6ce0e67b9d4749630b77cf7f754cce13a3e916f3fc2153dfef36"

func TestBuiltinKeysPinned(t *testing.T) {
	if SchemaVersion != 2 {
		t.Fatalf("SchemaVersion = %d; the workload redesign must not bump it", SchemaVersion)
	}
	for _, kind := range []config.L1DKind{config.L1SRAM, config.DyFUSE} {
		gpu := config.FermiGPU(config.NewL1DConfig(kind))
		for _, prof := range trace.Profiles() {
			if !trace.IsBuiltin(prof.Name) {
				continue // other tests may have registered custom profiles
			}
			want := legacyKey(t, gpu, prof, sim.Options{})
			got, err := Key(gpu, trace.Synthetic(prof), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s/%s: key changed: %s != legacy %s", kind, prof.Name, got, want)
			}
		}
	}
	prof, _ := trace.ProfileByName("ATAX")
	got, err := Key(config.FermiGPU(config.NewL1DConfig(config.DyFUSE)), trace.Synthetic(prof), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenATAXKey {
		t.Errorf("golden ATAX key changed:\n got %s\nwant %s", got, goldenATAXKey)
	}
}

func TestCustomWorkloadKeysDistinctAndStable(t *testing.T) {
	gpu := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	custom := trace.Profile{
		Name: "store-custom", Suite: "Custom", Description: "high-APKI write-heavy",
		APKI: 120, Mix: trace.ReadLevelMix{WM: 0.35, ReadIntensive: 0.25, WORM: 0.3, WORO: 0.1},
		WorkingSetBlocks: 420, Irregular: 0.4, WORMReuse: 3,
	}
	k1, err := Key(gpu, trace.Synthetic(custom), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(gpu, trace.Synthetic(custom), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("custom workload key must be stable: %s != %s", k1, k2)
	}
	builtin := map[string]bool{}
	for _, prof := range trace.Profiles() {
		k, err := Key(gpu, trace.Synthetic(prof), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		builtin[k] = true
	}
	if builtin[k1] {
		t.Errorf("custom workload key collides with a builtin key")
	}

	// A phased workload over a builtin keys differently from the builtin
	// itself (the kind discriminator keeps the material disjoint).
	atax, _ := trace.ProfileByName("ATAX")
	phased := trace.NewPhased("store-phased", []trace.Phase{{Profile: atax}})
	pk, err := Key(gpu, phased, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if builtin[pk] || pk == k1 {
		t.Errorf("phased workload key must be distinct")
	}
	pk2, _ := Key(gpu, trace.NewPhased("store-phased", []trace.Phase{{Profile: atax}}), sim.Options{})
	if pk != pk2 {
		t.Errorf("phased workload key must be stable")
	}
}

// hexKey mints a syntactically valid store key from a one-byte seed.
func hexKey(b byte) string {
	return strings.Repeat(hex.EncodeToString([]byte{b}), 32)
}

func TestMemoryLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewMemoryLRU(3)
	rng := rand.New(rand.NewSource(6))
	res := sampleResult(rng)
	k1, k2, k3, k4 := hexKey(0x10), hexKey(0x11), hexKey(0x12), hexKey(0x13)

	c.Put(k1, res)
	c.Put(k2, res)
	c.Put(k3, res)
	// Freshen k1: k2 becomes the least recently used.
	if _, ok := c.Get(k1); !ok {
		t.Fatalf("k1 should hit")
	}
	c.Put(k4, res)
	if _, ok := c.Get(k2); ok {
		t.Errorf("k2 should have been evicted as least recently used")
	}
	for _, k := range []string{k1, k3, k4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("key %s should survive eviction", k[:4])
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
	h := c.Health()
	if h.Tier != "memory" || h.Entries != 3 || h.Capacity != 3 || h.Evictions != 1 {
		t.Errorf("Health = %+v, want memory/3/3/1", h)
	}
	if h.Degraded {
		t.Errorf("memory tier must never report degraded")
	}

	// Re-Put of a resident key freshens instead of growing.
	c.Put(k3, res)
	if c.Len() != 3 {
		t.Errorf("re-Put grew the cache to %d entries", c.Len())
	}

	// Unbounded memory never evicts.
	u := NewMemory()
	for i := 0; i < 64; i++ {
		u.Put(hexKey(byte(i)), res)
	}
	if u.Len() != 64 || u.Health().Evictions != 0 {
		t.Errorf("unbounded tier evicted: len=%d evictions=%d", u.Len(), u.Health().Evictions)
	}
}

func TestDiskQuarantinesCorruptEntries(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(rand.New(rand.NewSource(7)))
	key := hexKey(0x20)
	if err := d.Write(key, res); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(key), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get(key); ok {
		t.Fatalf("corrupt entry should miss")
	}
	if _, err := os.Stat(d.path(key)); !os.IsNotExist(err) {
		t.Errorf("corrupt entry should have been renamed away, stat err = %v", err)
	}
	if _, err := os.Stat(d.quarantinePath(key)); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if d.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", d.Quarantined())
	}
	if d.Len() != 0 {
		t.Errorf("quarantined entry still counted: Len = %d", d.Len())
	}

	// The key is writable and readable again.
	if err := d.Write(key, res); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get(key); !ok || !reflect.DeepEqual(got, res) {
		t.Errorf("rewritten key should hit with the fresh result")
	}
}

func TestDiskDegradedAfterConsecutiveIOFailures(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey(0x30)
	// A directory at the entry path makes os.ReadFile fail with a non-ENOENT
	// error even when running as root (chmod tricks do not).
	if err := os.MkdirAll(d.path(key), 0o755); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < DegradedThreshold; i++ {
		if h := d.Health(); h.Degraded {
			t.Fatalf("degraded after only %d failures", i)
		}
		if _, ok := d.Get(key); ok {
			t.Fatalf("unreadable entry should miss")
		}
	}
	h := d.Health()
	if !h.Degraded || h.IOFailures != DegradedThreshold {
		t.Errorf("Health = %+v, want degraded with %d failures", h, DegradedThreshold)
	}
	if h.Tier != "disk" {
		t.Errorf("Tier = %q, want disk", h.Tier)
	}

	// A plain miss (ENOENT) is not an I/O failure and must not extend the run.
	if _, ok := d.Get(hexKey(0x31)); ok {
		t.Fatalf("unknown key should miss")
	}
	if got := d.Health().IOFailures; got != DegradedThreshold {
		t.Errorf("plain miss counted as I/O failure: %d", got)
	}

	// One successful write recovers the tier.
	res := sampleResult(rand.New(rand.NewSource(8)))
	if err := d.Write(hexKey(0x32), res); err != nil {
		t.Fatal(err)
	}
	if h := d.Health(); h.Degraded || h.IOFailures != 0 {
		t.Errorf("successful write should reset the failure run: %+v", h)
	}
}

func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(rand.New(rand.NewSource(9)))
	key := hexKey(0x40)
	if err := d.Write(key, res); err != nil {
		t.Fatal(err)
	}
	// Plant a stale temp file beside the entry, as a crashed writer would.
	stale := filepath.Join(filepath.Dir(d.path(key)), ".tmp-12345")
	if err := os.WriteFile(stale, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Open, stat err = %v", err)
	}
	// The real entry is untouched.
	if got, ok := d.Get(key); !ok || !reflect.DeepEqual(got, res) {
		t.Errorf("sweep must not touch committed entries")
	}
}

func TestOpenTieredResilientFallsBackToMemory(t *testing.T) {
	// A FILE as the parent path makes MkdirAll fail with ENOTDIR even as
	// root, so the disk tier cannot be created.
	parent := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cache, warn := OpenTieredResilient(filepath.Join(parent, "store"))
	if warn == nil {
		t.Fatalf("expected a warning for an unopenable store dir")
	}
	if cache == nil {
		t.Fatalf("resilient open must still return a usable cache")
	}
	res := sampleResult(rand.New(rand.NewSource(10)))
	key := hexKey(0x50)
	cache.Put(key, res)
	if got, ok := cache.Get(key); !ok || !reflect.DeepEqual(got, res) {
		t.Errorf("memory-only fallback should round-trip results")
	}

	// The happy path still opens both tiers and reports both healths.
	ok, warn := OpenTieredResilient(t.TempDir())
	if warn != nil {
		t.Fatalf("unexpected warning: %v", warn)
	}
	tiers := ok.Health()
	if len(tiers) != 2 || tiers[0].Tier != "memory" || tiers[1].Tier != "disk" {
		t.Errorf("Health tiers = %+v, want [memory disk]", tiers)
	}
	if ok.Degraded() {
		t.Errorf("fresh tiered store should not be degraded")
	}
}

func TestDiskDefectMatrix(t *testing.T) {
	res := sampleResult(rand.New(rand.NewSource(11)))
	valid, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	wrongSchema := bytes.Replace(valid, []byte(`"schema":2`), []byte(`"schema":1`), 1)

	cases := []struct {
		name       string
		data       []byte // nil = plant a directory instead of a file
		quarantine bool
	}{
		{"truncated envelope", valid[:len(valid)/2], true},
		{"wrong schema", wrongSchema, true},
		{"malformed JSON", []byte("{]"), true},
		{"empty file", nil, true},
		{"unreadable file", []byte("DIR"), false},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := hexKey(byte(0x60 + i))
			path := d.path(key)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if string(tc.data) == "DIR" {
				if err := os.Mkdir(path, 0o755); err != nil {
					t.Fatal(err)
				}
			} else if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.Get(key); ok {
				t.Fatalf("defective entry should read as a miss")
			}
			if tc.quarantine {
				if d.Quarantined() != 1 {
					t.Errorf("Quarantined = %d, want 1", d.Quarantined())
				}
				if _, err := os.Stat(d.quarantinePath(key)); err != nil {
					t.Errorf("quarantine file missing: %v", err)
				}
			} else if d.Quarantined() != 0 {
				t.Errorf("unreadable (not corrupt) entry must not quarantine")
			}
		})
	}

	// Short and invalid keys miss without touching the filesystem.
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", strings.Repeat("g", 64), strings.Repeat("A", 64)} {
		if _, ok := d.Get(key); ok {
			t.Errorf("invalid key %q should miss", key)
		}
	}
	if got := d.Health().IOFailures; got != 0 {
		t.Errorf("invalid keys counted as I/O failures: %d", got)
	}
}
