package store

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fuse/internal/sim"
)

// fakePeer is a minimal in-memory store endpoint: the coordinator's
// /cluster/v1/store/{key} contract (GET envelope or 404, PUT envelope).
type fakePeer struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    atomic.Int64
	puts    atomic.Int64
	// corrupt serves garbage bytes for every GET hit; broken answers 500
	// to everything.
	corrupt bool
	broken  atomic.Bool
	// block, when non-nil, is closed to release GET handlers (for racing
	// singleflight tests).
	block chan struct{}
}

func newFakePeer() *fakePeer { return &fakePeer{entries: map[string][]byte{}} }

func (p *fakePeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.broken.Load() {
		http.Error(w, "injected outage", http.StatusInternalServerError)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/")
	switch r.Method {
	case http.MethodGet:
		p.gets.Add(1)
		if p.block != nil {
			<-p.block
		}
		p.mu.Lock()
		data, ok := p.entries[key]
		p.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		if p.corrupt {
			data = []byte("{ this is not an envelope")
		}
		_, _ = w.Write(data)
	case http.MethodPut:
		p.puts.Add(1)
		buf, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.entries[key] = buf
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method", http.StatusMethodNotAllowed)
	}
}

func testResult(workload string) sim.Result {
	return sim.Result{GPUName: "test-gpu", Workload: workload, Cycles: 12345, Instructions: 67890, IPC: 5.5}
}

func testKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

// TestRemoteReadThroughBackfill: a Tiered(memory, remote) composition that
// misses locally fetches from the peer and backfills the memory tier, so
// the second Get never touches the network.
func TestRemoteReadThroughBackfill(t *testing.T) {
	peer := newFakePeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	key, res := testKey(1), testResult("ATAX")
	data, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	peer.entries[key] = data

	remote := NewRemote(srv.URL, nil)
	mem := NewMemory()
	tiered := NewTiered(mem, remote)

	got, ok := tiered.Get(key)
	if !ok || got != res {
		t.Fatalf("tiered Get through remote: ok=%v res=%+v", ok, got)
	}
	if n := peer.gets.Load(); n != 1 {
		t.Fatalf("peer GETs = %d, want 1", n)
	}
	// Backfilled: the repeat hit is served by the memory tier.
	if got, ok := tiered.Get(key); !ok || got != res {
		t.Fatalf("repeat Get: ok=%v", ok)
	}
	if n := peer.gets.Load(); n != 1 {
		t.Errorf("peer GETs after backfill = %d, want still 1 (memory tier should have served)", n)
	}
	if h := remote.Health(); h.Hits != 1 || h.Misses != 0 {
		t.Errorf("remote health hits/misses = %d/%d, want 1/0", h.Hits, h.Misses)
	}
}

// TestRemoteCorruptEnvelopeIsMiss: garbage bytes from a peer decode-fail
// into a miss (never a wrong result, never a panic) and count toward the
// degraded meter.
func TestRemoteCorruptEnvelopeIsMiss(t *testing.T) {
	peer := newFakePeer()
	peer.corrupt = true
	srv := httptest.NewServer(peer)
	defer srv.Close()

	key := testKey(2)
	data, _ := Encode(testResult("GEMM"))
	peer.entries[key] = data

	remote := NewRemote(srv.URL, nil)
	if _, ok := remote.Get(key); ok {
		t.Fatalf("corrupt envelope reported as a hit")
	}
	h := remote.Health()
	if h.Misses != 1 {
		t.Errorf("Misses = %d, want 1", h.Misses)
	}
	if h.IOFailures == 0 {
		t.Errorf("IOFailures = 0, want ≥ 1 (a corrupting peer is a degraded peer)")
	}
}

// TestRemoteDegradedFallback: a dead peer makes every remote Get a miss and
// trips Degraded after DegradedThreshold consecutive failures — while the
// Tiered composition keeps serving from its local tiers, and a recovered
// peer clears the flag.
func TestRemoteDegradedFallback(t *testing.T) {
	peer := newFakePeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	key, res := testKey(3), testResult("BICG")
	remote := NewRemote(srv.URL, nil)
	mem := NewMemory()
	tiered := NewTiered(mem, remote)
	mem.Put(key, res)

	peer.broken.Store(true)
	missKey := testKey(4)
	for i := 0; i < DegradedThreshold; i++ {
		if _, ok := remote.Get(missKey); ok {
			t.Fatalf("broken peer reported a hit")
		}
	}
	if h := remote.Health(); !h.Degraded {
		t.Fatalf("remote not degraded after %d consecutive failures: %+v", DegradedThreshold, h)
	}
	if !tiered.Degraded() {
		t.Errorf("tiered composition does not surface the degraded remote tier")
	}
	// Local tiers still serve.
	if got, ok := tiered.Get(key); !ok || got != res {
		t.Errorf("local tier stopped serving while the remote is down: ok=%v", ok)
	}

	// Peer recovery clears the meter on the next successful exchange.
	peer.broken.Store(false)
	data, _ := Encode(res)
	peer.entries[key] = data
	if _, ok := remote.Get(key); !ok {
		t.Fatalf("recovered peer still missing")
	}
	if h := remote.Health(); h.Degraded || h.IOFailures != 0 {
		t.Errorf("remote still degraded after recovery: %+v", h)
	}
}

// TestRemoteSingleflight: concurrent Gets of the same key share one HTTP
// request.
func TestRemoteSingleflight(t *testing.T) {
	peer := newFakePeer()
	peer.block = make(chan struct{})
	srv := httptest.NewServer(peer)
	defer srv.Close()

	key, res := testKey(5), testResult("MVT")
	data, _ := Encode(res)
	peer.entries[key] = data

	remote := NewRemote(srv.URL, nil)
	const racers = 8
	var wg sync.WaitGroup
	results := make([]sim.Result, racers)
	oks := make([]bool, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], oks[i] = remote.Get(key)
		}(i)
	}
	// Wait until the one real fetch is in the handler, give every racer
	// ample time to join the in-flight call, then release it.
	for peer.gets.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(peer.block)
	wg.Wait()

	for i := 0; i < racers; i++ {
		if !oks[i] || results[i] != res {
			t.Fatalf("racer %d: ok=%v", i, oks[i])
		}
	}
	if n := peer.gets.Load(); n != 1 {
		t.Errorf("peer GETs = %d, want 1 (singleflight should dedup)", n)
	}
	if h := remote.Health(); h.Hits != racers {
		t.Errorf("Hits = %d, want %d (every caller counts)", h.Hits, racers)
	}
}

// TestRemotePutWriteThrough: Put ships the envelope to the peer, and a
// second Remote (another node) reads it back.
func TestRemotePutWriteThrough(t *testing.T) {
	peer := newFakePeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	key, res := testKey(6), testResult("GEMM")
	nodeA := NewRemote(srv.URL, nil)
	nodeA.Put(key, res)
	if n := peer.puts.Load(); n != 1 {
		t.Fatalf("peer PUTs = %d, want 1", n)
	}

	nodeB := NewRemote(srv.URL, nil)
	got, ok := nodeB.Get(key)
	if !ok || got != res {
		t.Fatalf("node B Get after node A Put: ok=%v res=%+v", ok, got)
	}
}
