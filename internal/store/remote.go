package store

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"time"

	"fuse/internal/sim"
)

// Remote is the network cache tier: a read-through client for a peer's (in
// practice, the cluster coordinator's) result-store endpoint. Slotted as the
// slowest tier of a Tiered composition it turns every node's disk into a
// shared global cache — a worker that has never simulated a design point
// still serves it warm if any node has.
//
// Remote follows the Cache contract that a broken tier behaves as empty:
// transport errors, non-200 answers and corrupt envelopes are all misses.
// Like the disk tier it meters consecutive failures and reports itself
// Degraded at DegradedThreshold, so health endpoints (and the Tiered
// composition's Degraded flag) surface a dead peer while the local tiers
// keep serving.
type Remote struct {
	base   string // endpoint base, e.g. "http://coordinator" + cluster.PathStore
	client *http.Client

	mu         sync.Mutex
	calls      map[string]*remoteCall // in-flight fetches, singleflighted per key
	hits       int64
	misses     int64
	ioFailures int64 // consecutive; any successful exchange resets
}

// remoteCall is one in-flight fetch; concurrent Gets for the same key wait
// on done instead of issuing duplicate requests.
type remoteCall struct {
	done chan struct{}
	res  sim.Result
	ok   bool
}

// NewRemote builds a remote tier fetching from base (the store endpoint URL
// without the trailing "/{key}"). A nil client gets a default with a 5s
// timeout — a remote tier must fail fast and fall through, never stall a
// simulation pipeline behind a dead peer.
func NewRemote(base string, client *http.Client) *Remote {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Remote{base: base, client: client, calls: make(map[string]*remoteCall)}
}

// Get implements Cache. Concurrent lookups of the same key share one HTTP
// request (in-process singleflight); across processes the coordinator's
// engine-level dedup plays the same role.
func (r *Remote) Get(key string) (sim.Result, bool) {
	r.mu.Lock()
	if c := r.calls[key]; c != nil {
		r.mu.Unlock()
		<-c.done
		r.note(c.ok)
		return c.res, c.ok
	}
	c := &remoteCall{done: make(chan struct{})}
	r.calls[key] = c
	r.mu.Unlock()

	c.res, c.ok = r.fetch(key)

	r.mu.Lock()
	delete(r.calls, key)
	r.mu.Unlock()
	close(c.done)
	r.note(c.ok)
	return c.res, c.ok
}

// note counts one Get outcome (every caller counts, shared fetch or not).
func (r *Remote) note(hit bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if hit {
		r.hits++
	} else {
		r.misses++
	}
}

// fetch performs one GET. Every failure mode is a miss; only transport-level
// trouble (unreachable peer, 5xx, corrupt envelope) counts toward the
// degraded meter — a clean 404 is the peer working as designed.
func (r *Remote) fetch(key string) (sim.Result, bool) {
	resp, err := r.client.Get(r.base + "/" + key)
	if err != nil {
		r.fail()
		return sim.Result{}, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEnvelope))
		if err != nil {
			r.fail()
			return sim.Result{}, false
		}
		res, err := Decode(data)
		if err != nil {
			// A peer handed us bytes it should never have stored: treat as
			// a miss (the local pipeline recomputes) and as a failure (a
			// corrupting peer is a degraded peer).
			r.fail()
			return sim.Result{}, false
		}
		r.succeed()
		return res, true
	case resp.StatusCode == http.StatusNotFound:
		_, _ = io.Copy(io.Discard, resp.Body)
		r.succeed()
		return sim.Result{}, false
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		r.fail()
		return sim.Result{}, false
	}
}

// Put implements Cache: best-effort write-through to the peer, so a result
// computed here is visible fleet-wide. Failures only feed the meter.
func (r *Remote) Put(key string, res sim.Result) {
	data, err := Encode(res)
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPut, r.base+"/"+key, bytes.NewReader(data))
	if err != nil {
		r.fail()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		r.fail()
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		r.succeed()
	} else {
		r.fail()
	}
}

func (r *Remote) fail() {
	r.mu.Lock()
	r.ioFailures++
	r.mu.Unlock()
}

func (r *Remote) succeed() {
	r.mu.Lock()
	r.ioFailures = 0
	r.mu.Unlock()
}

// Health implements HealthReporter.
func (r *Remote) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Health{
		Tier:       "remote",
		Hits:       r.hits,
		Misses:     r.misses,
		IOFailures: r.ioFailures,
		Degraded:   r.ioFailures >= DegradedThreshold,
	}
}

// maxRemoteEnvelope bounds a fetched envelope; result envelopes are a few KB.
const maxRemoteEnvelope = 32 << 20
