package l2

import (
	"strings"
	"testing"

	"fuse/internal/dram"
	"fuse/internal/mem"
)

func newL2() *L2 {
	return New(Config{}, dram.New(dram.Config{}))
}

func read(addr uint64) mem.Request {
	return mem.Request{Addr: addr, Kind: mem.Read, Size: mem.BlockSize}
}
func write(addr uint64) mem.Request {
	return mem.Request{Addr: addr, Kind: mem.Write, Size: mem.BlockSize}
}

func TestDefaultsMatchTableI(t *testing.T) {
	l := newL2()
	cfg := l.Config()
	if cfg.Banks != 12 || cfg.TotalKB != 786 || cfg.Ways != 8 {
		t.Errorf("L2 defaults should match Table I: %+v", cfg)
	}
	if l.Banks() != 12 {
		t.Errorf("Banks() = %d", l.Banks())
	}
	if !strings.Contains(l.String(), "L2") {
		t.Errorf("String should describe the cache")
	}
}

func TestMissThenHit(t *testing.T) {
	l := newL2()
	r1 := l.Access(read(0x10000), 0)
	if r1.Hit {
		t.Fatalf("cold access should miss")
	}
	if r1.Done <= int64(l.Config().LatencyCycles) {
		t.Errorf("miss should include DRAM latency, done at %d", r1.Done)
	}
	r2 := l.Access(read(0x10000), r1.Done+1)
	if !r2.Hit {
		t.Fatalf("second access should hit")
	}
	hitLat := r2.Done - (r1.Done + 1)
	missLat := r1.Done
	if hitLat >= missLat {
		t.Errorf("L2 hit (%d) should be much faster than miss (%d)", hitLat, missLat)
	}
	if l.Hits() != 1 || l.Misses() != 1 || l.Accesses() != 2 {
		t.Errorf("counters wrong: hits=%d misses=%d accesses=%d", l.Hits(), l.Misses(), l.Accesses())
	}
	if l.MissRate() != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", l.MissRate())
	}
}

func TestInFlightMissesMerge(t *testing.T) {
	l := newL2()
	r1 := l.Access(read(0x20000), 0)
	// A second read of the same block before the DRAM fill returns must not
	// trigger a second DRAM access.
	dramBefore := l.DRAM().Accesses()
	r2 := l.Access(read(0x20000), 5)
	if l.DRAM().Accesses() != dramBefore {
		t.Errorf("merged miss must not access DRAM again")
	}
	if r2.Done < r1.Done-int64(l.Config().LatencyCycles) {
		t.Errorf("merged request cannot complete before the fill it merged with")
	}
}

func TestWritebackMissAllocatesWithoutDRAMRead(t *testing.T) {
	l := newL2()
	before := l.DRAM().Accesses()
	res := l.Access(write(0x30000), 0)
	if res.Hit {
		t.Fatalf("cold write-back should miss")
	}
	if l.DRAM().Accesses() != before {
		t.Errorf("full-block write-back should not read DRAM")
	}
	// The block is now present.
	if res := l.Access(read(0x30000), 100); !res.Hit {
		t.Errorf("written-back block should hit on the next read")
	}
}

func TestBankMapping(t *testing.T) {
	l := newL2()
	if l.BankFor(0) == l.BankFor(mem.BlockSize) {
		t.Errorf("consecutive blocks should map to different banks")
	}
	if l.BankFor(0x8000) != l.BankFor(0x8000) {
		t.Errorf("bank mapping must be deterministic")
	}
	// 12 banks over 6 channels: 2 banks per channel, channels in range.
	seen := map[int]bool{}
	for b := 0; b < l.Banks(); b++ {
		ch := l.ChannelForBank(b)
		if ch < 0 || ch >= l.DRAM().Channels() {
			t.Errorf("channel out of range for bank %d: %d", b, ch)
		}
		seen[ch] = true
	}
	if len(seen) != l.DRAM().Channels() {
		t.Errorf("banks should cover all channels, covered %d", len(seen))
	}
}

func TestBankPortSerialises(t *testing.T) {
	l := newL2()
	// Two requests to the same bank at the same cycle serialise on the port.
	addr := uint64(0x40000)
	l.Access(read(addr), 0)
	warm := l.Access(read(addr), 0)
	fresh := newL2()
	fresh.Access(read(addr), 0)
	single := fresh.Access(read(addr), 1000) // hit on an idle port
	if warm.Done-0 <= single.Done-1000 {
		t.Errorf("port contention should delay the second request: %d vs %d", warm.Done, single.Done-1000)
	}
}

func TestDirtyEvictionWritesBackToDRAM(t *testing.T) {
	cfg := Config{Banks: 1, TotalKB: 1, Ways: 2, LatencyCycles: 10}
	l := New(cfg, dram.New(dram.Config{}))
	// Dirty a block, then displace it by filling the (tiny) bank.
	l.Access(write(0), 0)
	now := int64(100)
	for i := 1; i < 64; i++ {
		l.Access(read(uint64(i)*mem.BlockSize), now)
		now += 50
	}
	if l.WritebacksToDRAM() == 0 {
		t.Errorf("displacing dirty blocks should write back to DRAM")
	}
	if l.DRAM().Writes() == 0 {
		t.Errorf("DRAM should have received write traffic")
	}
}

func TestResetClearsState(t *testing.T) {
	l := newL2()
	l.Access(read(0x1000), 0)
	l.Access(write(0x2000), 10)
	l.Reset()
	if l.Accesses() != 0 || l.Hits() != 0 || l.Misses() != 0 || l.MissRate() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if res := l.Access(read(0x1000), 0); res.Hit {
		t.Errorf("cache should be cold after Reset")
	}
}

func TestConfigClamping(t *testing.T) {
	l := New(Config{Banks: -1, TotalKB: 0, Ways: 0, LatencyCycles: 0, PendingLimit: 0}, dram.New(dram.Config{}))
	cfg := l.Config()
	if cfg.Banks <= 0 || cfg.TotalKB <= 0 || cfg.Ways <= 0 || cfg.LatencyCycles <= 0 {
		t.Errorf("invalid configuration should clamp: %+v", cfg)
	}
	if res := l.Access(read(0), 0); res.Done <= 0 {
		t.Errorf("clamped L2 should still serve requests")
	}
}

func TestNilDRAMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for nil DRAM")
		}
	}()
	New(Config{}, nil)
}
