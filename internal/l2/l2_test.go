package l2

import (
	"strings"
	"testing"

	"fuse/internal/dram"
	"fuse/internal/mem"
)

func newL2() *L2 {
	return New(Config{}, dram.New(dram.Config{}))
}

func read(addr uint64) mem.Request {
	return mem.Request{Addr: addr, Kind: mem.Read, Size: mem.BlockSize}
}
func write(addr uint64) mem.Request {
	return mem.Request{Addr: addr, Kind: mem.Write, Size: mem.BlockSize}
}

// drainFills drives the event loop until the memory side is idle or the
// horizon is reached, returning every completed fill. Advance's results (and
// the waiter slices they carry) are only valid until the next Advance call,
// so the fills are deep-copied before accumulating.
func drainFills(t *testing.T, l *L2, horizon int64) []Fill {
	t.Helper()
	var fills []Fill
	for {
		next := l.NextEventAt()
		if next < 0 {
			return fills
		}
		if next > horizon {
			t.Fatalf("memory side did not settle before cycle %d (next event at %d)", horizon, next)
		}
		for _, f := range l.Advance(next) {
			f.Waiters = append([]Waiter(nil), f.Waiters...)
			fills = append(fills, f)
		}
	}
}

// fillFor returns the unique fill of the given block.
func fillFor(t *testing.T, fills []Fill, block uint64) Fill {
	t.Helper()
	for _, f := range fills {
		if f.Block == block {
			return f
		}
	}
	t.Fatalf("no fill completed for block %#x (got %d fills)", block, len(fills))
	return Fill{}
}

func TestDefaultsMatchTableI(t *testing.T) {
	l := newL2()
	cfg := l.Config()
	if cfg.Banks != 12 || cfg.TotalKB != 786 || cfg.Ways != 8 {
		t.Errorf("L2 defaults should match Table I: %+v", cfg)
	}
	if cfg.PendingLimit != 64 || cfg.MergeWidth != 16 {
		t.Errorf("MSHR defaults missing: %+v", cfg)
	}
	if l.Banks() != 12 {
		t.Errorf("Banks() = %d", l.Banks())
	}
	if !strings.Contains(l.String(), "L2") || !strings.Contains(l.String(), "MSHR") {
		t.Errorf("String should describe the cache: %s", l.String())
	}
}

// TestFillNotVisibleBeforeDRAMCompletes is the regression test for the
// early-hit timing leak: the old L2 inserted a missing block into the tag
// store at Access time, so a second read of a cold block "hit" at the bank
// latency while the DRAM fill was still in flight (and the in-flight merge
// path was dead code). Now both back-to-back reads must observe the DRAM
// completion time, and the merge counter must actually increment.
func TestFillNotVisibleBeforeDRAMCompletes(t *testing.T) {
	l := newL2()
	block := uint64(0x10000)

	r1 := l.Access(read(block), 0)
	if r1.Outcome != OutcomeMiss {
		t.Fatalf("cold read should be a primary miss, got %v", r1.Outcome)
	}
	// Second read of the same cold block, well before any DRAM fill can
	// complete: it must merge with the in-flight fill, not hit.
	r2 := l.Access(read(block), 5)
	if r2.Outcome != OutcomeMerged {
		t.Fatalf("second read of an in-flight block must merge, got %v", r2.Outcome)
	}
	if l.MergedInFlight() != 1 {
		t.Fatalf("mergedFly must increment on an in-flight merge, got %d", l.MergedInFlight())
	}
	if l.DRAM().Accesses() != 1 {
		t.Fatalf("merged miss must not access DRAM again: %d accesses", l.DRAM().Accesses())
	}

	fills := drainFills(t, l, 10_000)
	f := fillFor(t, fills, block)
	if len(f.Waiters) != 2 {
		t.Fatalf("fill should deliver both waiters, got %d", len(f.Waiters))
	}
	// The fill cannot beat the DRAM's intrinsic latency: L2 lookup, then at
	// least tRCD+tCL+burst on a cold bank.
	cfg := l.DRAM().Config()
	dramMin := int64(l.Config().LatencyCycles) + int64(cfg.TRCD+cfg.TCL+cfg.BurstCycles)
	if f.Done < dramMin {
		t.Errorf("fill completed at %d, before the minimum DRAM latency %d", f.Done, dramMin)
	}
	// Both requestors observe Done >= the DRAM completion of the fill.
	for i, w := range f.Waiters {
		if f.Done < w.Arrive {
			t.Errorf("waiter %d completes before it arrived: done=%d arrive=%d", i, f.Done, w.Arrive)
		}
	}
	// Only after the fill does the block hit.
	if r := l.Access(read(block), f.Done+1); r.Outcome != OutcomeHit {
		t.Errorf("block should hit after its fill completed, got %v", r.Outcome)
	}
}

func TestMissThenHit(t *testing.T) {
	l := newL2()
	r1 := l.Access(read(0x10000), 0)
	if r1.Outcome != OutcomeMiss {
		t.Fatalf("cold access should miss")
	}
	fills := drainFills(t, l, 10_000)
	f := fillFor(t, fills, 0x10000)
	if f.Done <= int64(l.Config().LatencyCycles) {
		t.Errorf("miss should include DRAM latency, done at %d", f.Done)
	}
	r2 := l.Access(read(0x10000), f.Done+1)
	if r2.Outcome != OutcomeHit {
		t.Fatalf("second access should hit")
	}
	hitLat := r2.Done - (f.Done + 1)
	if hitLat >= f.Done {
		t.Errorf("L2 hit (%d) should be much faster than miss (%d)", hitLat, f.Done)
	}
	if l.Hits() != 1 || l.Misses() != 1 || l.Accesses() != 2 {
		t.Errorf("counters wrong: hits=%d misses=%d accesses=%d", l.Hits(), l.Misses(), l.Accesses())
	}
	if l.MissRate() != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", l.MissRate())
	}
	if l.FillsCompleted() != 1 || l.PendingFills() != 0 {
		t.Errorf("fill accounting wrong: done=%d pending=%d", l.FillsCompleted(), l.PendingFills())
	}
}

func TestWriteMergesIntoInFlightFill(t *testing.T) {
	l := newL2()
	block := uint64(0x20000)
	l.Access(read(block), 0)
	res := l.Access(write(block), 3)
	if res.Outcome != OutcomeMerged {
		t.Fatalf("write to an in-flight block should merge, got %v", res.Outcome)
	}
	fills := drainFills(t, l, 10_000)
	fillFor(t, fills, block)
	// The merged write dirtied the line: displacing it must write back.
	wbBefore := l.WritebacksToDRAM()
	displaceBlock(t, l, block)
	if l.WritebacksToDRAM() == wbBefore {
		t.Errorf("a write merged into a fill must install the line dirty")
	}
}

// TestWriteHitMarksLineDirty pins the write-back contract: a write that hits
// in the L2 must mark the line dirty so its eventual eviction reaches
// WritebacksToDRAM.
func TestWriteHitMarksLineDirty(t *testing.T) {
	l := newL2()
	block := uint64(0x30000)
	// Install the block clean via a read fill.
	l.Access(read(block), 0)
	fills := drainFills(t, l, 10_000)
	f := fillFor(t, fills, block)
	// Write-hit it.
	if r := l.Access(write(block), f.Done+1); r.Outcome != OutcomeHit {
		t.Fatalf("write after fill should hit, got %v", r.Outcome)
	}
	wbBefore := l.WritebacksToDRAM()
	displaceBlock(t, l, block)
	if l.WritebacksToDRAM() == wbBefore {
		t.Errorf("evicting a write-hit line must write back to DRAM")
	}
}

// displaceBlock evicts the given block from its set by filling the set with
// conflicting blocks (same bank, same set), driving fills as it goes.
func displaceBlock(t *testing.T, l *L2, block uint64) {
	t.Helper()
	b := l.banks[l.BankFor(block)]
	sets := int64(b.store.Sets())
	stride := uint64(sets) * uint64(l.cfg.Banks) * mem.BlockSize
	now := l.NextEventAt()
	if now < 0 {
		now = 1
	}
	for i := 1; i <= l.cfg.Ways+1; i++ {
		l.Access(read(block+uint64(i)*stride), now)
		fills := drainFills(t, l, now+1_000_000)
		for _, f := range fills {
			if f.Done > now {
				now = f.Done
			}
		}
		now++
		if !b.store.Probe(block) {
			return
		}
	}
	t.Fatalf("block %#x was not displaced", block)
}

func TestWritebackMissAllocatesWithoutDRAMRead(t *testing.T) {
	l := newL2()
	before := l.DRAM().Accesses()
	res := l.Access(write(0x30000), 0)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("cold write-back should miss")
	}
	if l.DRAM().Accesses() != before {
		t.Errorf("full-block write-back should not read DRAM")
	}
	// The block is now present.
	if res := l.Access(read(0x30000), 100); res.Outcome != OutcomeHit {
		t.Errorf("written-back block should hit on the next read")
	}
}

func TestMSHRBackPressure(t *testing.T) {
	cfg := Config{Banks: 1, TotalKB: 64, Ways: 8, PendingLimit: 2, MergeWidth: 2}
	l := New(cfg, dram.New(dram.Config{Channels: 1}))
	stride := uint64(l.cfg.Banks) * mem.BlockSize
	// Two primary misses fill the MSHR file.
	for i := 0; i < 2; i++ {
		if r := l.Access(read(uint64(i)*stride*1000), 0); r.Outcome != OutcomeMiss {
			t.Fatalf("miss %d rejected: %v", i, r.Outcome)
		}
	}
	// A third distinct block must be back-pressured.
	r := l.Access(read(7777*stride), 1)
	if r.Outcome != OutcomeBlocked {
		t.Fatalf("third primary miss should block on a 2-entry MSHR, got %v", r.Outcome)
	}
	if r.RetryAt <= 1 {
		t.Errorf("blocked result should carry a future retry time, got %d", r.RetryAt)
	}
	if l.MSHRStalls() == 0 {
		t.Errorf("MSHR stalls should be counted")
	}
	// The merge list is bounded too: entry 0 has 1 waiter, merge width 2
	// allows one more, then blocks.
	if r := l.Access(read(0), 2); r.Outcome != OutcomeMerged {
		t.Fatalf("first merge should succeed, got %v", r.Outcome)
	}
	if r := l.Access(read(0), 3); r.Outcome != OutcomeBlocked {
		t.Fatalf("merge beyond the width should block, got %v", r.Outcome)
	}
	// After the fills complete, the blocked block goes through.
	fills := drainFills(t, l, 100_000)
	if len(fills) != 2 {
		t.Fatalf("expected 2 fills, got %d", len(fills))
	}
	if r := l.Access(read(7777*stride), l.banks[0].portAt+100); r.Outcome != OutcomeMiss {
		t.Errorf("retry after drain should be accepted, got %v", r.Outcome)
	}
}

func TestBankMapping(t *testing.T) {
	l := newL2()
	if l.BankFor(0) == l.BankFor(mem.BlockSize) {
		t.Errorf("consecutive blocks should map to different banks")
	}
	if l.BankFor(0x8000) != l.BankFor(0x8000) {
		t.Errorf("bank mapping must be deterministic")
	}
	// 12 banks over 6 channels: 2 banks per channel, channels in range.
	seen := map[int]bool{}
	for b := 0; b < l.Banks(); b++ {
		ch := l.ChannelForBank(b)
		if ch < 0 || ch >= l.DRAM().Channels() {
			t.Errorf("channel out of range for bank %d: %d", b, ch)
		}
		seen[ch] = true
	}
	if len(seen) != l.DRAM().Channels() {
		t.Errorf("banks should cover all channels, covered %d", len(seen))
	}
}

func TestBankPortSerialises(t *testing.T) {
	l := newL2()
	addr := uint64(0x40000)
	// Install the block, then issue two same-cycle hits: the second must be
	// delayed by the port occupancy.
	l.Access(read(addr), 0)
	fills := drainFills(t, l, 10_000)
	f := fillFor(t, fills, addr)
	at := f.Done + 100
	first := l.Access(read(addr), at)
	second := l.Access(read(addr), at)
	if first.Outcome != OutcomeHit || second.Outcome != OutcomeHit {
		t.Fatalf("both accesses should hit")
	}
	if second.Done <= first.Done {
		t.Errorf("port contention should delay the second request: %d vs %d", second.Done, first.Done)
	}
}

func TestDirtyEvictionWritesBackToDRAM(t *testing.T) {
	cfg := Config{Banks: 1, TotalKB: 1, Ways: 2, LatencyCycles: 10}
	l := New(cfg, dram.New(dram.Config{}))
	// Dirty a block, then displace it by filling the (tiny) bank.
	l.Access(write(0), 0)
	now := int64(100)
	for i := 1; i < 64; i++ {
		l.Access(write(uint64(i)*mem.BlockSize), now)
		now += 50
	}
	drainFills(t, l, 1_000_000)
	if l.WritebacksToDRAM() == 0 {
		t.Errorf("displacing dirty blocks should write back to DRAM")
	}
	if l.DRAM().Writes() == 0 {
		t.Errorf("DRAM should have received write traffic")
	}
}

func TestResetClearsState(t *testing.T) {
	l := newL2()
	l.Access(read(0x1000), 0)
	l.Access(write(0x2000), 10)
	l.Reset()
	if l.Accesses() != 0 || l.Hits() != 0 || l.Misses() != 0 || l.MissRate() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if l.PendingFills() != 0 {
		t.Errorf("Reset should clear MSHRs")
	}
	if res := l.Access(read(0x1000), 0); res.Outcome == OutcomeHit {
		t.Errorf("cache should be cold after Reset")
	}
}

func TestConfigClamping(t *testing.T) {
	l := New(Config{Banks: -1, TotalKB: 0, Ways: 0, LatencyCycles: 0, PendingLimit: 0}, dram.New(dram.Config{}))
	cfg := l.Config()
	if cfg.Banks <= 0 || cfg.TotalKB <= 0 || cfg.Ways <= 0 || cfg.LatencyCycles <= 0 || cfg.PendingLimit <= 0 {
		t.Errorf("invalid configuration should clamp: %+v", cfg)
	}
	if res := l.Access(read(0), 0); res.Outcome != OutcomeMiss {
		t.Errorf("clamped L2 should still serve requests")
	}
}

func TestNilDRAMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for nil DRAM")
		}
	}()
	New(Config{}, nil)
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []Outcome{OutcomeHit, OutcomeMiss, OutcomeMerged, OutcomeBlocked} {
		if strings.HasPrefix(o.String(), "Outcome(") {
			t.Errorf("missing name for outcome %d", o)
		}
	}
}

// TestLateMergeCannotBeatL2Latency pins the secondary-miss floor: a read
// that merges into a fill just before (or after) the data returns still pays
// its own tag/ECC pipeline latency — a merged miss can never complete faster
// than an L2 hit.
func TestLateMergeCannotBeatL2Latency(t *testing.T) {
	l := newL2()
	block := uint64(0x50000)
	l.Access(read(block), 0)
	// Merge long after the DRAM completion time but before the fill has
	// been delivered (the L2 is externally driven; nothing advanced yet).
	late := int64(10_000)
	if r := l.Access(read(block), late); r.Outcome != OutcomeMerged {
		t.Fatalf("undelivered fill should still merge, got %v", r.Outcome)
	}
	fills := drainFills(t, l, 20_000)
	f := fillFor(t, fills, block)
	if len(f.Waiters) != 2 {
		t.Fatalf("expected 2 waiters, got %d", len(f.Waiters))
	}
	w := f.Waiters[1]
	floor := w.Arrive + int64(l.Config().LatencyCycles)
	if got := w.DoneAt(f.Done); got < floor {
		t.Errorf("late merge completes at %d, before its own pipeline latency %d", got, floor)
	}
	if w.DoneAt(f.Done) <= f.Done {
		t.Errorf("a waiter arriving after the fill must complete after Done=%d, got %d", f.Done, w.DoneAt(f.Done))
	}
}
