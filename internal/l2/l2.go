// Package l2 models the shared, banked L2 cache that sits between the
// interconnection network and the GDDR5 DRAM. Every bank is a set-associative
// write-back cache with its own access port; an L2 miss is serviced by the
// DRAM channel the bank is attached to (two L2 banks per channel in the
// paper's baseline). The L2 access latency includes the ECC overhead that
// makes it far slower than the L1D (Section II-A2).
package l2

import (
	"fmt"

	"fuse/internal/cache"
	"fuse/internal/dram"
	"fuse/internal/mem"
	"fuse/internal/stats"
)

// Config describes the shared L2 cache.
type Config struct {
	// Banks is the number of independently addressed banks.
	Banks int
	// TotalKB is the aggregate capacity across banks.
	TotalKB int
	// Ways is the associativity of each bank.
	Ways int
	// LatencyCycles is the bank access latency (tag + data + ECC).
	LatencyCycles int
	// PortOccupancy is the number of cycles an access occupies the bank
	// port; the bank is pipelined, so this is much smaller than the access
	// latency and determines the bank's throughput.
	PortOccupancy int
	// PendingLimit is the number of outstanding misses a bank can track.
	PendingLimit int
}

// withDefaults fills zero fields with the paper's Table I values: 786 KB
// across 12 banks, 8-way.
func (c Config) withDefaults() Config {
	if c.Banks <= 0 {
		c.Banks = 12
	}
	if c.TotalKB <= 0 {
		c.TotalKB = 786
	}
	if c.Ways <= 0 {
		c.Ways = 8
	}
	if c.LatencyCycles <= 0 {
		c.LatencyCycles = 30
	}
	if c.PortOccupancy <= 0 {
		c.PortOccupancy = 2
	}
	if c.PendingLimit <= 0 {
		c.PendingLimit = 64
	}
	return c
}

// bank is one L2 cache bank.
type bank struct {
	store   *cache.TagStore
	portAt  int64
	pending map[uint64]int64 // block -> completion time of the in-flight DRAM fill
}

// L2 is the shared cache; it owns a reference to the DRAM model so that a
// miss can be charged the full off-chip latency.
type L2 struct {
	cfg   Config
	banks []*bank
	dram  *dram.DRAM

	accesses  stats.Counter
	hits      stats.Counter
	misses    stats.Counter
	writes    stats.Counter
	wbToDRAM  stats.Counter
	mergedFly stats.Counter
}

// New builds an L2 cache backed by the given DRAM model. The DRAM model must
// not be nil.
func New(cfg Config, d *dram.DRAM) *L2 {
	cfg = cfg.withDefaults()
	if d == nil {
		panic("l2: nil DRAM")
	}
	l := &L2{cfg: cfg, dram: d}
	blocksPerBank := cfg.TotalKB * 1024 / mem.BlockSize / cfg.Banks
	if blocksPerBank < cfg.Ways {
		blocksPerBank = cfg.Ways
	}
	sets := blocksPerBank / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	l.banks = make([]*bank, cfg.Banks)
	for i := range l.banks {
		l.banks[i] = &bank{
			store:   cache.NewTagStore(sets, cfg.Ways, cache.LRU),
			pending: make(map[uint64]int64),
		}
	}
	return l
}

// Config returns the effective configuration.
func (l *L2) Config() Config { return l.cfg }

// Banks returns the number of banks.
func (l *L2) Banks() int { return l.cfg.Banks }

// BankFor maps a block address to its bank.
func (l *L2) BankFor(addr uint64) int {
	return int(mem.BlockIndex(addr)) % l.cfg.Banks
}

// ChannelForBank maps an L2 bank to its DRAM channel (banks are distributed
// evenly across channels: 12 banks / 6 channels = 2 banks per channel).
func (l *L2) ChannelForBank(bankIdx int) int {
	perChannel := l.cfg.Banks / l.dram.Channels()
	if perChannel <= 0 {
		perChannel = 1
	}
	return (bankIdx / perChannel) % l.dram.Channels()
}

// Result describes how the L2 handled a request.
type Result struct {
	// Hit reports whether the block was present in the bank.
	Hit bool
	// Done is the cycle at which the requested data is available at the
	// bank's port (ready to be sent back across the NoC).
	Done int64
}

// Access presents a request arriving at the L2 at cycle `now`. Reads return
// the availability time of the data; writes (write-backs from the L1D) are
// absorbed by the bank and, on a miss, allocate the line without fetching
// from DRAM (the entire block is being overwritten).
func (l *L2) Access(req mem.Request, now int64) Result {
	l.accesses.Inc()
	block := req.BlockAddr()
	b := l.banks[l.BankFor(block)]

	// Serialise on the bank port: the bank is pipelined, so an access only
	// occupies the port for PortOccupancy cycles even though its latency is
	// LatencyCycles.
	start := now
	if b.portAt > start {
		start = b.portAt
	}
	ready := start + int64(l.cfg.LatencyCycles)
	b.portAt = start + int64(l.cfg.PortOccupancy)

	write := req.Kind == mem.Write
	if write {
		l.writes.Inc()
	}

	if _, hit := b.store.Touch(block, now, write); hit {
		l.hits.Inc()
		return Result{Hit: true, Done: ready}
	}

	// A miss that is already being fetched from DRAM merges with the
	// in-flight fill.
	if doneAt, ok := b.pending[block]; ok && doneAt > now {
		l.mergedFly.Inc()
		l.hits.Inc() // counts as a hit for miss-rate purposes: no new DRAM access
		if doneAt > ready {
			ready = doneAt
		}
		return Result{Hit: true, Done: ready}
	}

	l.misses.Inc()
	if write {
		// Write-back miss: allocate without fetching (full-block write).
		l.insert(b, block, req.PC, now, true)
		return Result{Hit: false, Done: ready}
	}

	// Read miss: fetch from DRAM, then insert.
	dramDone := l.dram.Access(block, false, ready)
	l.insert(b, block, req.PC, dramDone, false)
	b.pending[block] = dramDone
	// Garbage-collect stale pending entries opportunistically.
	if len(b.pending) > l.cfg.PendingLimit {
		for k, v := range b.pending {
			if v <= now {
				delete(b.pending, k)
			}
		}
	}
	return Result{Hit: false, Done: dramDone}
}

// insert allocates a block in the bank and writes back any dirty victim to
// DRAM.
func (l *L2) insert(b *bank, block, pc uint64, now int64, dirty bool) {
	evicted, line := b.store.Insert(block, pc, now, dirty, mem.WORM)
	line.Dirty = dirty
	if evicted.Valid && evicted.Dirty {
		l.wbToDRAM.Inc()
		l.dram.Access(evicted.Block, true, now)
	}
}

// Accesses returns the number of requests handled.
func (l *L2) Accesses() uint64 { return l.accesses.Value() }

// Hits returns the number of L2 hits (including merges with in-flight fills).
func (l *L2) Hits() uint64 { return l.hits.Value() }

// Misses returns the number of L2 misses that went to DRAM.
func (l *L2) Misses() uint64 { return l.misses.Value() }

// MissRate returns misses / accesses.
func (l *L2) MissRate() float64 {
	if l.accesses.Value() == 0 {
		return 0
	}
	return float64(l.misses.Value()) / float64(l.accesses.Value())
}

// WritebacksToDRAM returns the number of dirty L2 victims written to DRAM.
func (l *L2) WritebacksToDRAM() uint64 { return l.wbToDRAM.Value() }

// DRAM exposes the backing DRAM model.
func (l *L2) DRAM() *dram.DRAM { return l.dram }

// Reset clears every bank and statistic (the DRAM model is reset separately).
func (l *L2) Reset() {
	for _, b := range l.banks {
		b.store.Reset()
		b.portAt = 0
		b.pending = make(map[uint64]int64)
	}
	l.accesses.Reset()
	l.hits.Reset()
	l.misses.Reset()
	l.writes.Reset()
	l.wbToDRAM.Reset()
	l.mergedFly.Reset()
}

// String describes the configuration.
func (l *L2) String() string {
	return fmt.Sprintf("L2{%d KB, %d banks, %d-way, %d-cycle}", l.cfg.TotalKB, l.cfg.Banks, l.cfg.Ways, l.cfg.LatencyCycles)
}
