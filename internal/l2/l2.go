// Package l2 models the shared, banked L2 cache that sits between the
// interconnection network and the off-chip memory controller. Every bank is a
// set-associative write-back cache with its own access port and its own MSHR
// file: a read miss allocates an MSHR entry (back-pressuring the requester
// when PendingLimit entries are outstanding), secondary misses merge into the
// in-flight entry, and the block is inserted into the tag store only when the
// DRAM fill completes — an access can therefore never observe a block earlier
// than the memory controller delivered it. The L2 access latency includes the
// ECC overhead that makes it far slower than the L1D (Section II-A2).
//
// The miss path is event-driven: Access classifies the request and (on a
// primary miss) submits the fill to the controller; the owner's event loop
// calls Advance at NextEventAt times, and Advance returns the completed fills
// with every waiter that merged into them.
package l2

import (
	"fmt"
	"slices"

	"fuse/internal/cache"
	"fuse/internal/dram"
	"fuse/internal/mem"
	"fuse/internal/stats"
)

// Config describes the shared L2 cache.
type Config struct {
	// Banks is the number of independently addressed banks.
	Banks int
	// TotalKB is the aggregate capacity across banks.
	TotalKB int
	// Ways is the associativity of each bank.
	Ways int
	// LatencyCycles is the bank access latency (tag + data + ECC).
	LatencyCycles int
	// PortOccupancy is the number of cycles an access occupies the bank
	// port; the bank is pipelined, so this is much smaller than the access
	// latency and determines the bank's throughput.
	PortOccupancy int
	// PendingLimit is the number of MSHR entries per bank: the number of
	// outstanding primary misses a bank can track before it back-pressures.
	PendingLimit int
	// MergeWidth is the maximum number of read requests merged into one
	// MSHR entry (the primary plus secondaries).
	MergeWidth int
}

// withDefaults fills zero fields with the paper's Table I values: 786 KB
// across 12 banks, 8-way.
func (c Config) withDefaults() Config {
	if c.Banks <= 0 {
		c.Banks = 12
	}
	if c.TotalKB <= 0 {
		c.TotalKB = 786
	}
	if c.Ways <= 0 {
		c.Ways = 8
	}
	if c.LatencyCycles <= 0 {
		c.LatencyCycles = 30
	}
	if c.PortOccupancy <= 0 {
		c.PortOccupancy = 2
	}
	if c.PendingLimit <= 0 {
		c.PendingLimit = 64
	}
	if c.MergeWidth <= 0 {
		c.MergeWidth = 16
	}
	return c
}

// Waiter is one request merged into an in-flight fill, with its arrival time
// at the L2 (per-requestor latency accounting needs it) and the earliest
// cycle its own bank pipeline could deliver data.
type Waiter struct {
	Req    mem.Request
	Arrive int64
	// Ready is the cycle the waiter's tag/ECC pipeline completes (port
	// serialisation included): its data cannot be returned before
	// max(Ready, the fill's completion), even when the fill lands first.
	Ready int64
}

// DoneAt returns the cycle the waiter's data is available given its fill's
// completion time: the fill delivery, floored at the waiter's own bank
// pipeline latency — a secondary miss can never beat an L2 hit.
func (w Waiter) DoneAt(fillDone int64) int64 {
	if w.Ready > fillDone {
		return w.Ready
	}
	return fillDone
}

// fillEntry is one MSHR entry: an outstanding primary miss and the requests
// merged into it.
type fillEntry struct {
	block   uint64
	pc      uint64
	dirty   bool // a full-block write merged into the fill: insert dirty
	issued  bool // handed to the memory controller (false under back-pressure)
	readyAt int64
	waiters []Waiter
}

// bank is one L2 cache bank.
type bank struct {
	store  *cache.TagStore
	portAt int64
	mshr   map[uint64]*fillEntry
	order  []uint64 // allocation order, for deterministic retry of unissued entries
	// wbq is the bank's write buffer: dirty victims the channel queue
	// rejected. It is deliberately unbounded — evictions happen at fill
	// completion and cannot be NACKed — but growth is self-limiting (each
	// entry stems from one insert, and inserts are paced by the same
	// bounded fill path), and pump drains it ahead of new fills so write
	// traffic still contends for the bounded channel queue.
	wbq []uint64
}

// L2 is the shared cache; it owns the memory controller so that a miss can
// be charged the full off-chip latency.
type L2 struct {
	cfg   Config
	banks []*bank
	dram  *dram.DRAM

	// fillBuf is the reusable backing array of Advance's result slice.
	fillBuf []Fill
	// entryPool recycles released MSHR entries (with their waiter slices),
	// so a long memory-bound run stops allocating per miss. Entries retire
	// through `retired` first: a delivered entry's waiters alias the Fill
	// handed to the caller, so it only becomes reusable at the next Advance.
	entryPool []*fillEntry
	retired   []*fillEntry

	accesses stats.Counter
	hits     stats.Counter
	misses   stats.Counter
	//fuselint:internalstat L2 write volume is a sizing diagnostic; Result reports L2 misses/accesses and DRAM traffic instead
	writes     stats.Counter
	wbToDRAM   stats.Counter
	mergedFly  stats.Counter
	mshrStalls stats.Counter
	fillsDone  stats.Counter
}

// New builds an L2 cache backed by the given memory controller. The
// controller must not be nil.
func New(cfg Config, d *dram.DRAM) *L2 {
	cfg = cfg.withDefaults()
	if d == nil {
		panic("l2: nil DRAM")
	}
	l := &L2{cfg: cfg, dram: d}
	blocksPerBank := cfg.TotalKB * 1024 / mem.BlockSize / cfg.Banks
	if blocksPerBank < cfg.Ways {
		blocksPerBank = cfg.Ways
	}
	sets := blocksPerBank / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	l.banks = make([]*bank, cfg.Banks)
	for i := range l.banks {
		l.banks[i] = &bank{
			store: cache.NewTagStore(sets, cfg.Ways, cache.LRU),
			mshr:  make(map[uint64]*fillEntry),
		}
	}
	return l
}

// Config returns the effective configuration.
func (l *L2) Config() Config { return l.cfg }

// Banks returns the number of banks.
func (l *L2) Banks() int { return l.cfg.Banks }

// BankFor maps a block address to its bank.
func (l *L2) BankFor(addr uint64) int {
	return int(mem.BlockIndex(addr)) % l.cfg.Banks
}

// ChannelForBank maps an L2 bank to its DRAM channel (banks are distributed
// evenly across channels: 12 banks / 6 channels = 2 banks per channel in the
// paper's baseline).
func (l *L2) ChannelForBank(bankIdx int) int {
	perChannel := l.cfg.Banks / l.dram.Channels()
	if perChannel <= 0 {
		perChannel = 1
	}
	return (bankIdx / perChannel) % l.dram.Channels()
}

// Outcome classifies how the L2 handled a request.
type Outcome uint8

const (
	// OutcomeHit: the block was present; Done is the data availability time.
	OutcomeHit Outcome = iota
	// OutcomeMiss: a primary miss; an MSHR entry was allocated and the fill
	// submitted (reads) or the line allocated in place (full-block writes,
	// for which Done is the absorption time). Read data arrives via a Fill.
	OutcomeMiss
	// OutcomeMerged: the block is already being fetched; the request merged
	// into the in-flight MSHR entry and completes with its Fill.
	OutcomeMerged
	// OutcomeBlocked: the bank's MSHR file (or the entry's merge list) is
	// full; the requester must retry at RetryAt.
	OutcomeBlocked
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeMerged:
		return "merged"
	case OutcomeBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Result describes how the L2 handled a request.
type Result struct {
	// Outcome classifies the access.
	Outcome Outcome
	// Done is the cycle at which the requested data is available at the
	// bank's port. It is only meaningful for OutcomeHit (and, for writes,
	// the cycle the write-back was absorbed).
	Done int64
	// RetryAt is the cycle at which a blocked request should be retried.
	RetryAt int64
}

// Fill reports one completed DRAM fill: the block became visible in the tag
// store at cycle Done, and every waiter's data is available at the bank port
// at Done.
type Fill struct {
	Bank    int
	Block   uint64
	Done    int64
	Waiters []Waiter
}

// Access presents a request arriving at the L2 at cycle `now`. Hits return
// the availability time of the data; read misses allocate or merge into an
// MSHR entry and complete via a later Fill; writes (write-backs from the
// L1D) are absorbed by the bank and, on a miss, allocate the line without
// fetching from DRAM (the entire block is being overwritten).
func (l *L2) Access(req mem.Request, now int64) Result {
	block := req.BlockAddr()
	b := l.banks[l.BankFor(block)]
	write := req.Kind == mem.Write

	// Structural hazards are discovered at the bank's input arbitration,
	// before the request wins the port: a NACKed request costs no port
	// bandwidth (otherwise retry traffic under a saturated MSHR file would
	// starve the very fills that resolve it). A read is NACKed when its
	// merge list is full, or when it needs a fresh MSHR entry and the file
	// is full.
	if !write && !b.store.Probe(block) {
		blocked := false
		if e, ok := b.mshr[block]; ok {
			blocked = len(e.waiters) >= l.cfg.MergeWidth
		} else {
			blocked = len(b.mshr) >= l.cfg.PendingLimit
		}
		if blocked {
			l.mshrStalls.Inc()
			return Result{Outcome: OutcomeBlocked, RetryAt: l.retryAt(now)}
		}
	}

	// Serialise on the bank port: the bank is pipelined, so an access only
	// occupies the port for PortOccupancy cycles even though its latency is
	// LatencyCycles.
	start := now
	if b.portAt > start {
		start = b.portAt
	}
	ready := start + int64(l.cfg.LatencyCycles)
	b.portAt = start + int64(l.cfg.PortOccupancy)

	l.accesses.Inc()
	if write {
		l.writes.Inc()
	}

	if _, hit := b.store.Touch(block, now, write); hit {
		l.hits.Inc()
		return Result{Outcome: OutcomeHit, Done: ready}
	}

	// A miss on a block that is already being fetched merges with the
	// in-flight fill.
	if e, ok := b.mshr[block]; ok {
		l.mergedFly.Inc()
		l.hits.Inc() // counts as a hit for miss-rate purposes: no new DRAM access
		if write {
			// The full-block write overwrites the data in flight: the fill
			// installs the line dirty and the store needs no response.
			e.dirty = true
			return Result{Outcome: OutcomeMerged}
		}
		e.waiters = append(e.waiters, Waiter{Req: req, Arrive: now, Ready: ready})
		return Result{Outcome: OutcomeMerged}
	}

	l.misses.Inc()
	if write {
		// Write-back miss: allocate without fetching (full-block write).
		l.insert(b, block, req.PC, now, true)
		return Result{Outcome: OutcomeMiss, Done: ready}
	}

	// Primary read miss: allocate an MSHR entry (recycled when possible).
	var e *fillEntry
	if n := len(l.entryPool); n > 0 {
		e = l.entryPool[n-1]
		l.entryPool = l.entryPool[:n-1]
		*e = fillEntry{waiters: e.waiters[:0]}
	} else {
		e = &fillEntry{}
	}
	e.block = block
	e.pc = req.PC
	e.readyAt = ready // the fill leaves for DRAM once the tag lookup completes
	e.waiters = append(e.waiters, Waiter{Req: req, Arrive: now, Ready: ready})
	b.mshr[block] = e
	b.order = append(b.order, block)
	if _, ok := l.dram.Submit(block, false, ready); ok {
		e.issued = true
	}
	return Result{Outcome: OutcomeMiss}
}

// retryAt picks the retry time of a NACKed request: just after the memory
// controller's next event (the earliest moment a fill can retire and free
// the MSHR slot the request is waiting for), or one bank latency out when
// the controller reports nothing sooner. Always strictly later than now, so
// retries cannot live-lock the event loop.
func (l *L2) retryAt(now int64) int64 {
	if next := l.dram.NextEventAt(); next > now {
		return next + 1
	}
	return now + int64(l.cfg.LatencyCycles)
}

// insert allocates a block in the bank at cycle `at` and hands any dirty
// victim to the memory controller (buffering it when the channel queue is
// full).
func (l *L2) insert(b *bank, block, pc uint64, at int64, dirty bool) {
	evicted, line := b.store.Insert(block, pc, at, dirty, mem.WORM)
	line.Dirty = dirty
	if evicted.Valid && evicted.Dirty {
		l.wbToDRAM.Inc()
		if _, ok := l.dram.Submit(evicted.Block, true, at); !ok {
			b.wbq = append(b.wbq, evicted.Block)
		}
	}
}

// pump retries work held back by controller back-pressure: buffered dirty
// write-backs first, then unissued MSHR fills, in allocation order. It
// reports whether anything new was handed to the controller.
func (l *L2) pump(now int64) bool {
	submitted := false
	for _, b := range l.banks {
		for len(b.wbq) > 0 {
			if _, ok := l.dram.Resubmit(b.wbq[0], true, now); !ok {
				break
			}
			b.wbq = slices.Delete(b.wbq, 0, 1)
			submitted = true
		}
		for _, block := range b.order {
			e := b.mshr[block]
			if e == nil || e.issued {
				continue
			}
			at := e.readyAt
			if now > at {
				at = now
			}
			if _, ok := l.dram.Resubmit(block, false, at); !ok {
				break
			}
			e.issued = true
			submitted = true
		}
	}
	return submitted
}

// NextEventAt returns the earliest cycle at which the memory side can make
// progress (-1 when fully idle). Work held back by back-pressure never
// idles the controller: the queue that rejected it is by definition full.
func (l *L2) NextEventAt() int64 { return l.dram.NextEventAt() }

// MinResponseLatency returns a conservative lower bound on the cycles between
// a request arriving at a bank and its response leaving it. Every access is
// port-serialised and pays at least the bank latency (a Waiter's Ready is its
// port start plus LatencyCycles, and DoneAt is never earlier than Ready), so
// no response can leave sooner than this after arrival — hits, misses, merges
// and retries alike. The parallel engine's conservative lookahead horizon is
// built from this bound; weakening it breaks that engine's determinism.
func (l *L2) MinResponseLatency() int64 { return int64(l.cfg.LatencyCycles) }

// Advance runs the memory controller up to cycle now and returns the fills
// that completed: each block is inserted into its bank's tag store at its
// completion time (never earlier — this is the ordering the whole off-chip
// accounting rests on) and its MSHR entry is released with all merged
// waiters. Back-pressured fills and write-backs are resubmitted as queue
// slots free up. The returned slice (and the waiter slices it carries) is
// valid only until the next Advance call.
func (l *L2) Advance(now int64) []Fill {
	// Entries delivered by the previous Advance are no longer referenced by
	// the caller: recycle them.
	for _, e := range l.retired {
		l.entryPool = append(l.entryPool, e)
	}
	l.retired = l.retired[:0]
	fills := l.fillBuf[:0]
	defer func() { l.fillBuf = fills[:0] }()
	for {
		comps := l.dram.Advance(now)
		for _, c := range comps {
			if c.Write {
				continue // write-backs need no upstream action
			}
			bankIdx := l.BankFor(c.Addr)
			b := l.banks[bankIdx]
			e := b.mshr[c.Addr]
			if e == nil {
				continue // a fill raced a Reset; nothing to deliver
			}
			delete(b.mshr, c.Addr)
			if i := slices.Index(b.order, c.Addr); i >= 0 {
				b.order = slices.Delete(b.order, i, i+1)
			}
			l.insert(b, c.Addr, e.pc, c.Done, e.dirty)
			l.fillsDone.Inc()
			fills = append(fills, Fill{Bank: bankIdx, Block: c.Addr, Done: c.Done, Waiters: e.waiters})
			l.retired = append(l.retired, e)
		}
		// Draining completions freed queue slots: resubmit held-back work,
		// and loop so the controller can issue it at this same event time.
		if !l.pump(now) {
			return fills
		}
	}
}

// Accesses returns the number of requests handled (blocked retries count
// once, when they finally succeed).
func (l *L2) Accesses() uint64 { return l.accesses.Value() }

// Hits returns the number of L2 hits (including merges with in-flight fills).
func (l *L2) Hits() uint64 { return l.hits.Value() }

// Misses returns the number of L2 misses that went to DRAM.
func (l *L2) Misses() uint64 { return l.misses.Value() }

// MissRate returns misses / accesses.
func (l *L2) MissRate() float64 {
	if l.accesses.Value() == 0 {
		return 0
	}
	return float64(l.misses.Value()) / float64(l.accesses.Value())
}

// WritebacksToDRAM returns the number of dirty L2 victims written to DRAM.
func (l *L2) WritebacksToDRAM() uint64 { return l.wbToDRAM.Value() }

// MergedInFlight returns the number of requests that merged into an
// in-flight fill instead of going to DRAM.
func (l *L2) MergedInFlight() uint64 { return l.mergedFly.Value() }

// MSHRStalls returns the number of accesses rejected because a bank's MSHR
// file or an entry's merge list was full.
func (l *L2) MSHRStalls() uint64 { return l.mshrStalls.Value() }

// FillsCompleted returns the number of DRAM fills delivered.
func (l *L2) FillsCompleted() uint64 { return l.fillsDone.Value() }

// PendingFills returns the number of outstanding MSHR entries across banks.
func (l *L2) PendingFills() int {
	n := 0
	for _, b := range l.banks {
		n += len(b.mshr)
	}
	return n
}

// DRAM exposes the backing memory controller.
func (l *L2) DRAM() *dram.DRAM { return l.dram }

// Reset clears every bank and statistic (the DRAM model is reset separately).
func (l *L2) Reset() {
	for _, b := range l.banks {
		b.store.Reset()
		b.portAt = 0
		b.mshr = make(map[uint64]*fillEntry)
		b.order = nil
		b.wbq = nil
	}
	l.fillBuf = nil
	l.entryPool = nil
	l.retired = nil
	l.accesses.Reset()
	l.hits.Reset()
	l.misses.Reset()
	l.writes.Reset()
	l.wbToDRAM.Reset()
	l.mergedFly.Reset()
	l.mshrStalls.Reset()
	l.fillsDone.Reset()
}

// String describes the configuration.
func (l *L2) String() string {
	return fmt.Sprintf("L2{%d KB, %d banks, %d-way, %d-cycle, %d MSHRs/bank}",
		l.cfg.TotalKB, l.cfg.Banks, l.cfg.Ways, l.cfg.LatencyCycles, l.cfg.PendingLimit)
}
