package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/sim"
	"fuse/internal/store"
)

// testWorkloads is the figure-matrix subset the cluster tests render: small
// enough to keep `go test` fast, two workloads so sharding has something to
// spread.
var testWorkloads = []string{"ATAX", "GEMM"}

// refFig13 renders the single-process reference table for Fig 13 at quick
// scale — the bytes every cluster execution must reproduce.
func refFig13(t *testing.T) string {
	t.Helper()
	runner := engine.New(engine.Config{})
	matrix := experiments.NewMatrixRunner(experiments.QuickScale, runner)
	table, err := experiments.RunContext(context.Background(), matrix, experiments.ExpFig13, testWorkloads)
	if err != nil {
		t.Fatalf("reference fig13: %v", err)
	}
	return table.String()
}

// fleetFig13 renders the same table through a coordinator + n loopback
// workers and returns the bytes plus the coordinator stats.
func fleetFig13(t *testing.T, n int) (string, Stats) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	coord := New(Config{})
	defer coord.Close()
	fleet, err := StartFleet(ctx, coord, n, engine.Execute)
	if err != nil {
		t.Fatalf("starting fleet: %v", err)
	}
	defer fleet.Stop()

	runner := engine.New(engine.Config{Exec: coord.Execute})
	matrix := experiments.NewMatrixRunner(experiments.QuickScale, runner)
	table, err := experiments.RunContext(ctx, matrix, experiments.ExpFig13, testWorkloads)
	if err != nil {
		t.Fatalf("fleet fig13 (%d workers): %v", n, err)
	}
	return table.String(), coord.Stats()
}

// TestFleetMatrixByteIdentical is the tentpole acceptance test: the Fig 13
// matrix executed via coordinator + N in-process workers renders exactly the
// single-process bytes for N ∈ {1, 2, 4}, and the jobs really did travel
// through the fleet.
func TestFleetMatrixByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick-scale simulations")
	}
	ref := refFig13(t)
	for _, n := range []int{1, 2, 4} {
		got, stats := fleetFig13(t, n)
		if got != ref {
			t.Errorf("%d workers: table differs from single-process run\nref:\n%s\ngot:\n%s", n, ref, got)
		}
		if stats.Dispatched == 0 {
			t.Errorf("%d workers: no dispatches recorded — jobs did not go through the fleet", n)
		}
		if stats.LocalRuns != 0 {
			t.Errorf("%d workers: %d jobs fell back to local execution", n, stats.LocalRuns)
		}
		if stats.Completed == 0 {
			t.Errorf("%d workers: no completions recorded", n)
		}
	}
}

// countingExec wraps engine.Execute and counts real simulations.
func countingExec(n *atomic.Int64) engine.ExecFunc {
	return func(ctx context.Context, job engine.Job) (sim.Result, error) {
		n.Add(1)
		return engine.Execute(ctx, job)
	}
}

// workerExec builds a worker-side executor the way cmd/fuseworker does: a
// full engine.Runner over a local memory tier plus the coordinator's remote
// store tier, executing through exec.
func workerExec(coord *Coordinator, exec engine.ExecFunc) engine.ExecFunc {
	remote := store.NewRemote(LoopbackBase+PathStore, LoopbackClient(coord.Handler()))
	cache := store.NewTiered(store.NewMemory(), remote)
	runner := engine.New(engine.Config{Workers: 1, Cache: cache, Exec: exec})
	return runner.Get
}

// TestFleetWarmRerunExecutesNothing proves the remote store tier closes the
// loop: after a cold fleet run populates the coordinator's cache, a
// completely fresh fleet (fresh coordinator, fresh workers, fresh front-end
// runner, empty local caches) sharing only that cache serves the same matrix
// with zero simulations — every job resolves through the workers' remote
// tier.
func TestFleetWarmRerunExecutesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick-scale simulations")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	shared := store.NewMemory() // the coordinator-side store both phases share

	run := func(phase string) (string, int64, Stats) {
		var sims atomic.Int64
		coord := New(Config{Cache: shared})
		defer coord.Close()
		fleet, err := StartFleet(ctx, coord, 2, workerExec(coord, countingExec(&sims)))
		if err != nil {
			t.Fatalf("%s: starting fleet: %v", phase, err)
		}
		defer fleet.Stop()
		runner := engine.New(engine.Config{Exec: coord.Execute})
		matrix := experiments.NewMatrixRunner(experiments.QuickScale, runner)
		table, err := experiments.RunContext(ctx, matrix, experiments.ExpFig13, testWorkloads)
		if err != nil {
			t.Fatalf("%s: fig13: %v", phase, err)
		}
		return table.String(), sims.Load(), coord.Stats()
	}

	cold, coldSims, coldStats := run("cold")
	if coldSims == 0 {
		t.Fatalf("cold run executed no simulations")
	}
	if coldStats.StorePuts == 0 {
		t.Fatalf("cold run wrote nothing through the remote store endpoint")
	}

	warm, warmSims, warmStats := run("warm")
	if warm != cold {
		t.Errorf("warm table differs from cold table")
	}
	if warmSims != 0 {
		t.Errorf("warm rerun executed %d simulations, want 0 (remote tier should have served them all)", warmSims)
	}
	if warmStats.StoreHits == 0 {
		t.Errorf("warm rerun recorded no remote-store hits")
	}
}

// testJob is a small job for protocol-level tests.
func testJob(workload string) engine.Job {
	opts := experiments.QuickScale.Options()
	return engine.Job{Kind: 0, Workload: workload, Opts: opts}
}

// TestLocalFallback: with no workers registered and a LocalExec configured,
// Execute runs the job in-process and the result matches direct execution.
func TestLocalFallback(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	coord := New(Config{LocalExec: engine.Execute})
	defer coord.Close()

	job := testJob("ATAX")
	got, err := coord.Execute(ctx, job)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want, err := engine.Execute(ctx, job)
	if err != nil {
		t.Fatalf("direct Execute: %v", err)
	}
	if got != want {
		t.Errorf("local fallback result differs from direct execution")
	}
	if s := coord.Stats(); s.LocalRuns != 1 {
		t.Errorf("LocalRuns = %d, want 1", s.LocalRuns)
	}
}

// TestUnassignedDrainsOnRegister: a job submitted while no worker is alive
// (and no local fallback exists) parks, then completes as soon as the first
// worker registers.
func TestUnassignedDrainsOnRegister(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	coord := New(Config{})
	defer coord.Close()

	type outcome struct {
		res sim.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := coord.Execute(ctx, testJob("ATAX"))
		done <- outcome{res, err}
	}()

	// Give the submission time to park unassigned, then bring up a worker.
	time.Sleep(50 * time.Millisecond)
	if s := coord.Stats(); s.Queued != 1 {
		t.Fatalf("Queued = %d before any worker, want 1", s.Queued)
	}
	fleet, err := StartFleet(ctx, coord, 1, engine.Execute)
	if err != nil {
		t.Fatalf("starting fleet: %v", err)
	}
	defer fleet.Stop()

	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("Execute: %v", out.err)
		}
	case <-ctx.Done():
		t.Fatalf("job never completed after worker registration")
	}
}

// TestExecuteCancellation: cancelling the submitting context unblocks
// Execute with ctx.Err() even when no worker will ever serve the job.
func TestExecuteCancellation(t *testing.T) {
	coord := New(Config{})
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, testJob("ATAX"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Execute returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Execute did not unblock on cancellation")
	}
}

// TestClosedCoordinator: Close fails pending submissions with ErrClosed and
// rejects new ones.
func TestClosedCoordinator(t *testing.T) {
	coord := New(Config{})
	ctx := context.Background()
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, testJob("ATAX"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	coord.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending Execute returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pending Execute did not unblock on Close")
	}
	if _, err := coord.Execute(ctx, testJob("GEMM")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Execute after Close returned %v, want ErrClosed", err)
	}
}

// TestLeaseExpiryRedispatch: a worker that pulls a job and goes silent (no
// heartbeat, no result) loses its lease, and the job is re-dispatched to a
// live worker that completes it.
func TestLeaseExpiryRedispatch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	coord := New(Config{Lease: 150 * time.Millisecond, PollTimeout: 100 * time.Millisecond})
	defer coord.Close()
	client := LoopbackClient(coord.Handler())

	// The silent worker registers and pulls by hand, then never acks.
	dead, err := NewWorker(WorkerConfig{Coordinator: LoopbackBase, Client: client, ID: "dead", Exec: engine.Execute})
	if err != nil {
		t.Fatal(err)
	}
	if err := dead.register(ctx); err != nil {
		t.Fatalf("registering dead worker: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, testJob("ATAX"))
		done <- err
	}()

	// Pull until the task lands on the silent worker, then sit on it.
	var got *Task
	for got == nil {
		if ctx.Err() != nil {
			t.Fatalf("task never dispatched to the silent worker")
		}
		got, _, err = dead.pull(ctx)
		if err != nil {
			t.Fatalf("pull: %v", err)
		}
	}

	// Now bring up a live worker; the lease expires and the job re-lands.
	fleet, err := StartFleet(ctx, coord, 1, engine.Execute)
	if err != nil {
		t.Fatalf("starting live worker: %v", err)
	}
	defer fleet.Stop()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
	case <-ctx.Done():
		t.Fatalf("job never completed after lease expiry")
	}
	if s := coord.Stats(); s.Redispatched == 0 {
		t.Errorf("Redispatched = 0, want ≥ 1 (lease-expiry path not exercised)")
	}
}

// TestWorkStealing: with one worker wedged on a long job and a backlog in
// its queue, an idle second worker steals the queued jobs instead of
// letting the straggler serialise the batch.
func TestWorkStealing(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	coord := New(Config{})
	defer coord.Close()
	client := LoopbackClient(coord.Handler())

	gate := make(chan struct{})
	var gated atomic.Int64
	slowExec := func(ctx context.Context, job engine.Job) (sim.Result, error) {
		if gated.Add(1) == 1 {
			<-gate // wedge the first job until the test releases it
		}
		return engine.Execute(ctx, job)
	}
	w1, err := NewWorker(WorkerConfig{Coordinator: LoopbackBase, Client: client, ID: "w1", Exec: slowExec})
	if err != nil {
		t.Fatal(err)
	}
	w1done := make(chan struct{})
	w1ctx, w1cancel := context.WithCancel(ctx)
	defer w1cancel()
	go func() { defer close(w1done); _ = w1.Run(w1ctx) }()

	// Submit several distinct jobs; all shard to w1 (the only worker), which
	// wedges on the first and queues the rest.
	workloads := []string{"ATAX", "GEMM", "BICG", "MVT"}
	done := make(chan error, len(workloads))
	for _, wl := range workloads {
		job := testJob(wl)
		go func() {
			_, err := coord.Execute(ctx, job)
			done <- err
		}()
	}
	for coord.Stats().InFlight == 0 {
		if ctx.Err() != nil {
			t.Fatalf("w1 never picked up a job")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An idle second worker must steal the backlog.
	fleet, err := StartFleet(ctx, coord, 1, engine.Execute)
	if err != nil {
		t.Fatalf("starting stealing worker: %v", err)
	}
	defer fleet.Stop()

	for i := 0; i < len(workloads)-1; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("stolen job failed: %v", err)
			}
		case <-ctx.Done():
			t.Fatalf("stolen jobs never completed while w1 was wedged")
		}
	}
	if s := coord.Stats(); s.Stolen == 0 {
		t.Errorf("Stolen = 0, want ≥ 1 (idle worker did not steal)")
	}

	close(gate) // release the wedged job
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wedged job failed: %v", err)
		}
	case <-ctx.Done():
		t.Fatalf("wedged job never completed after release")
	}
	w1cancel()
	<-w1done
}

// TestHRWSharding: the same key always picks the same owner for a fixed
// worker set, and keys spread across workers.
func TestHRWSharding(t *testing.T) {
	coord := New(Config{})
	defer coord.Close()
	coord.mu.Lock()
	for _, id := range []string{"w1", "w2", "w3"} {
		coord.workers[id] = &workerState{id: id, inflight: map[uint64]*task{}}
	}
	owners := map[string]int{}
	keys := []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9", "k10"}
	for _, k := range keys {
		o1 := coord.ownerForLocked(k, "")
		o2 := coord.ownerForLocked(k, "")
		if o1 != o2 {
			t.Errorf("key %s: owner not stable (%s then %s)", k, o1, o2)
		}
		owners[o1]++
	}
	coord.mu.Unlock()
	if len(owners) < 2 {
		t.Errorf("10 keys all landed on one worker: %v (degenerate sharding)", owners)
	}
}
