// Package cluster is the distributed simulation fleet: a coordinator that
// shards simulation jobs across registered workers, and the worker loop that
// pulls, executes and acknowledges them.
//
// The design reuses the repository's existing primitives instead of invent-
// ing new ones: jobs are engine.Job values, job identity on the wire is the
// content-addressed store key (store.Key over config + workload + options),
// execution on a worker goes through the same fault-wrapped engine path a
// single process uses, and results flow back into the same store.Cache tiers.
// Determinism therefore comes for free — a simulation result is a pure
// function of the job, so any assignment of jobs to workers (including
// re-dispatch after a worker crash) renders byte-identical figure tables.
//
// Topology:
//
//	client ── POST /v1/batch ──▶ fuseserve (-coordinator)
//	                               │  engine.Runner (dedup, retry, store)
//	                               ▼  Exec = Coordinator.Execute
//	                            Coordinator ── shard by store key (HRW)
//	                               ▲▼ /cluster/v1/{register,pull,heartbeat,result}
//	                            fuseworker × N (each with its own store tiers,
//	                               plus a read-through remote tier back to the
//	                               coordinator's /cluster/v1/store/{key})
//
// Sharding is highest-random-weight (rendezvous) hashing by store key, so
// the same design point always lands on the same worker's warm disk store
// while workers join and leave; an idle worker steals queued jobs from busy
// peers so stragglers cannot serialise a batch. Every dispatched job carries
// a lease: the worker renews it by heartbeat while executing, and a job whose
// lease expires — or whose worker misses its liveness window — is
// re-dispatched to the next owner. Duplicate executions are harmless (first
// result wins; results are identical by construction).
//
// Everything speaks plain HTTP+JSON, and the Loopback transport dispatches
// the same protocol in-process (no sockets), so the whole fleet — including
// chaos tests that kill workers mid-batch — runs inside `go test ./...`.
package cluster

import (
	"time"

	"fuse/internal/engine"
	"fuse/internal/sim"
)

// Protocol paths, all mounted under the coordinator's handler. fuseserve
// serves them next to its /v1 API when -coordinator is set.
const (
	pathRegister  = "/cluster/v1/register"
	pathPull      = "/cluster/v1/pull"
	pathHeartbeat = "/cluster/v1/heartbeat"
	pathResult    = "/cluster/v1/result"
	// PathStore is the coordinator's result-store endpoint: GET serves the
	// envelope of a stored result, PUT accepts one. store.NewRemote pointed
	// here turns the coordinator's cache into every worker's shared tier.
	PathStore = "/cluster/v1/store"
)

// Task is one dispatched job on the wire. ID is the coordinator's dispatch
// identity (unique per submission); Key is the job's content-addressed store
// key, which is also its shard identity.
type Task struct {
	ID  uint64     `json:"id"`
	Key string     `json:"key"`
	Job engine.Job `json:"job"`
}

// registerRequest announces a worker. Re-registering an existing ID resets
// its liveness and abandons any earlier incarnation's queue.
type registerRequest struct {
	Worker string `json:"worker"`
}

// registerResponse hands the worker its operating intervals: how long a
// pull long-polls before returning empty, how often to heartbeat while
// executing, and the lease the coordinator holds per dispatched task.
type registerResponse struct {
	LeaseMillis     int64 `json:"leaseMillis"`
	PollMillis      int64 `json:"pollMillis"`
	HeartbeatMillis int64 `json:"heartbeatMillis"`
}

// pullRequest asks for one task; the coordinator long-polls up to its poll
// timeout before answering 204 No Content.
type pullRequest struct {
	Worker string `json:"worker"`
}

// heartbeatRequest renews the worker's liveness and the leases of the tasks
// it is still executing.
type heartbeatRequest struct {
	Worker string   `json:"worker"`
	Tasks  []uint64 `json:"tasks"`
}

// resultRequest reports one finished task — result or error — and doubles as
// the acknowledgement that retires its lease.
type resultRequest struct {
	Worker string      `json:"worker"`
	Task   uint64      `json:"task"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// Default coordinator intervals (see Config).
const (
	DefaultLease       = 15 * time.Second
	DefaultPollTimeout = 2 * time.Second
	DefaultMaxAttempts = 3
)
