package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/store"
)

// Config configures a Coordinator. The zero value is valid: default
// intervals, no store endpoint, no local fallback.
type Config struct {
	// Lease is how long a dispatched task may go without a heartbeat or a
	// result before it is re-dispatched. Zero means DefaultLease.
	Lease time.Duration
	// PollTimeout is how long a pull long-polls for a task before answering
	// 204. Zero means DefaultPollTimeout.
	PollTimeout time.Duration
	// Heartbeat is the interval advertised to workers for renewing leases
	// while executing. Zero means Lease/3.
	Heartbeat time.Duration
	// Liveness is how long a worker may go without any contact (pull,
	// heartbeat, result) before it is declared lost and its jobs are
	// re-dispatched. Zero means 2×Lease.
	Liveness time.Duration
	// MaxAttempts bounds the dispatch attempts per task (first dispatch
	// plus re-dispatches); a task exceeding it fails with an error instead
	// of cycling forever. Zero means DefaultMaxAttempts.
	MaxAttempts int
	// Cache, when non-nil, backs the /cluster/v1/store/{key} endpoint that
	// workers mount as their remote read-through tier. Point it at the same
	// tiered cache the serving Runner writes through, and every result any
	// node computes becomes visible to every other node.
	Cache store.Cache
	// LocalExec, when non-nil, executes jobs in-process while no worker is
	// registered, so a lone coordinator still serves traffic. When nil,
	// submissions wait (context-cancellably) for a worker to arrive.
	LocalExec engine.ExecFunc
}

// withDefaults resolves the zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = DefaultPollTimeout
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.Lease / 3
	}
	if cfg.Liveness <= 0 {
		cfg.Liveness = 2 * cfg.Lease
	}
	// An idle worker parks inside a long poll for a full PollTimeout between
	// liveness resets; the horizon must clear that park (plus a round trip)
	// or idle workers flap between lost and re-registered.
	if floor := 2 * cfg.PollTimeout; cfg.Liveness < floor {
		cfg.Liveness = floor
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	return cfg
}

// ErrClosed is returned by Execute when the coordinator has been closed.
var ErrClosed = errors.New("cluster: coordinator closed")

// taskState is the lifecycle of a dispatched job.
type taskState int

const (
	taskQueued   taskState = iota // in a worker's queue or unassigned
	taskInflight                  // pulled by a worker, lease armed
	taskDone                      // outcome delivered (or abandoned)
)

// taskOutcome is a completed task's result or error.
type taskOutcome struct {
	res sim.Result
	err error
}

// task is one submitted job and its dispatch state. The guarded fields are
// protected by the coordinator's mutex.
type task struct {
	id   uint64
	key  string
	job  engine.Job
	done chan taskOutcome // buffered 1; receives exactly one outcome
	// submittedCtx is the submitting request's context (set once at submit,
	// read-only after); the local fallback executes under it so cancelling
	// the batch cancels the simulation.
	submittedCtx context.Context

	state    taskState
	owner    string // worker currently holding the lease ("" if queued)
	attempts int    // dispatch attempts so far
	seq      uint64 // bumped per dispatch/renewal; guards stale lease expiry
	lease    *time.Timer
}

// workerState is one registered worker.
type workerState struct {
	id         string
	generation uint64 // bumped per (re)register; guards stale liveness timers
	queue      []*task
	inflight   map[uint64]*task
	waiters    []chan struct{} // parked pulls awaiting work, each buffered 1
	liveness   *time.Timer
	gone       bool
}

// Coordinator accepts jobs, shards them across registered workers by store
// key, re-dispatches on worker loss or lease expiry, and serves the shared
// store endpoint. It is an engine executor: plug Execute into
// engine.Config.Exec and the Runner's dedup, retry and store write-through
// machinery front a whole fleet instead of a local simulator.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu         sync.Mutex
	closed     bool
	workers    map[string]*workerState
	tasks      map[uint64]*task
	unassigned []*task // submitted while no worker was alive
	nextID     uint64

	// Counters (guarded by mu), snapshotted by Stats.
	dispatched   int64
	redispatched int64
	stolen       int64
	completed    int64
	failed       int64
	localRuns    int64
	workersEver  int64
	workersLost  int64
	storeGetHits int64
	storeGetMiss int64
	storePuts    int64
}

// New creates a Coordinator.
func New(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:     cfg.withDefaults(),
		workers: make(map[string]*workerState),
		tasks:   make(map[uint64]*task),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathRegister, c.handleRegister)
	mux.HandleFunc("POST "+pathPull, c.handlePull)
	mux.HandleFunc("POST "+pathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("POST "+pathResult, c.handleResult)
	mux.HandleFunc("GET "+PathStore+"/{key}", c.handleStoreGet)
	mux.HandleFunc("PUT "+PathStore+"/{key}", c.handleStorePut)
	c.mux = mux
	return c
}

// Handler returns the coordinator's HTTP handler (the /cluster/v1/* routes).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Stats is a point-in-time snapshot of the fleet, surfaced by fuseserve's
// /healthz in coordinator mode.
type Stats struct {
	// Workers is the number of currently registered (live) workers.
	Workers int `json:"workers"`
	// WorkersEver and WorkersLost count registrations and liveness losses.
	WorkersEver int64 `json:"workersEver"`
	WorkersLost int64 `json:"workersLost"`
	// Queued and InFlight are the jobs currently waiting and leased.
	Queued   int `json:"queued"`
	InFlight int `json:"inFlight"`
	// Dispatched counts task handoffs to workers; Redispatched counts the
	// subset re-dispatched after a lease expiry or worker loss; Stolen
	// counts pulls served from another worker's queue.
	Dispatched   int64 `json:"dispatched"`
	Redispatched int64 `json:"redispatched"`
	Stolen       int64 `json:"stolen"`
	// Completed and Failed count delivered outcomes; LocalRuns counts jobs
	// executed by the local fallback because no worker was registered.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	LocalRuns int64 `json:"localRuns"`
	// Remote-store endpoint traffic (the workers' shared tier).
	StoreHits   int64 `json:"remoteStoreHits"`
	StoreMisses int64 `json:"remoteStoreMisses"`
	StorePuts   int64 `json:"remoteStorePuts"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Workers:      len(c.workers),
		WorkersEver:  c.workersEver,
		WorkersLost:  c.workersLost,
		Dispatched:   c.dispatched,
		Redispatched: c.redispatched,
		Stolen:       c.stolen,
		Completed:    c.completed,
		Failed:       c.failed,
		LocalRuns:    c.localRuns,
		StoreHits:    c.storeGetHits,
		StoreMisses:  c.storeGetMiss,
		StorePuts:    c.storePuts,
	}
	queued, inflight := 0, 0
	//fuselint:ordered order-insensitive count of task states
	for _, t := range c.tasks {
		switch t.state {
		case taskQueued:
			queued++
		case taskInflight:
			inflight++
		}
	}
	s.Queued, s.InFlight = queued, inflight
	return s
}

// action is deferred work a locked section hands back to its caller: channel
// sends and goroutine spawns happen strictly after the mutex is released.
type action struct {
	wake    chan struct{} // signal one parked pull
	deliver *task         // send out on deliver.done
	out     taskOutcome
	local   *task // execute via the LocalExec fallback
}

// perform runs deferred actions. Sends never block: wake channels and done
// channels are buffered size 1 and signalled at most once.
func (c *Coordinator) perform(acts []action) {
	for _, a := range acts {
		if a.wake != nil {
			a.wake <- struct{}{}
		}
		if a.deliver != nil {
			a.deliver.done <- a.out
		}
		if a.local != nil {
			go c.runLocal(a.local)
		}
	}
}

// runLocal executes a task through the LocalExec fallback and completes it.
func (c *Coordinator) runLocal(t *task) {
	res, err := c.cfg.LocalExec(t.submittedCtx, t.job)
	c.mu.Lock()
	acts := c.completeLocked(t, taskOutcome{res: res, err: err})
	c.mu.Unlock()
	c.perform(acts)
}

// Execute runs one job on the fleet: sharded to its owner worker, stolen by
// an idle one, or executed by the LocalExec fallback when no worker is
// registered. It blocks until the job completes, fails its attempt budget,
// or ctx is cancelled. It is an engine.ExecFunc.
//
//fuselint:blocking waits for a worker (or the local fallback) to finish the job
func (c *Coordinator) Execute(ctx context.Context, job engine.Job) (sim.Result, error) {
	key, err := engine.StoreKey(job)
	if err != nil {
		return sim.Result{}, err
	}
	t, local, err := c.submit(ctx, key, job)
	if err != nil {
		return sim.Result{}, err
	}
	if local {
		return c.cfg.LocalExec(ctx, job)
	}
	select {
	case out := <-t.done:
		return out.res, out.err
	case <-ctx.Done():
		c.abandon(t)
		return sim.Result{}, ctx.Err()
	}
}

// submit registers a new task. It reports local=true when the caller should
// run the job itself via LocalExec (no worker registered).
func (c *Coordinator) submit(ctx context.Context, key string, job engine.Job) (t *task, local bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if len(c.workers) == 0 && c.cfg.LocalExec != nil {
		c.localRuns++
		c.mu.Unlock()
		return nil, true, nil
	}
	c.nextID++
	t = &task{
		id:           c.nextID,
		key:          key,
		job:          job,
		done:         make(chan taskOutcome, 1),
		submittedCtx: ctx,
	}
	c.tasks[t.id] = t
	var acts []action
	if len(c.workers) == 0 {
		c.unassigned = append(c.unassigned, t)
	} else {
		acts = c.enqueueLocked(t, "")
	}
	c.mu.Unlock()
	c.perform(acts)
	return t, false, nil
}

// abandon retires a task whose submitter gave up (context cancelled). A
// worker may still be executing it; its eventual result is ignored.
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.state == taskDone {
		return
	}
	t.state = taskDone
	stopLease(t)
	delete(c.tasks, t.id)
}

// stopLease stops and clears a task's lease timer (mu held).
func stopLease(t *task) {
	if t.lease != nil {
		t.lease.Stop()
		t.lease = nil
	}
}

// aliveIDs returns the registered worker IDs in sorted order (mu held).
func (c *Coordinator) aliveIDs() []string {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// hrwScore is the rendezvous-hashing weight of (worker, key): the worker
// with the highest score owns the key. FNV-64a over both strings, mixed
// through a splitmix64 finaliser for uniformity.
func hrwScore(workerID, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(workerID))
	h.Write([]byte{0})
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ownerForLocked picks the key's shard owner among live workers, skipping
// exclude when an alternative exists (mu held; requires ≥1 worker).
func (c *Coordinator) ownerForLocked(key, exclude string) string {
	best, bestScore := "", uint64(0)
	for _, id := range c.aliveIDs() {
		if id == exclude && len(c.workers) > 1 {
			continue
		}
		if s := hrwScore(id, key); best == "" || s > bestScore {
			best, bestScore = id, s
		}
	}
	return best
}

// enqueueLocked queues a task on its shard owner (skipping exclude) and
// picks one parked pull to wake: the owner's own, or — so an idle worker
// picks up work for a busy peer immediately — any other worker's (mu held).
func (c *Coordinator) enqueueLocked(t *task, exclude string) []action {
	owner := c.ownerForLocked(t.key, exclude)
	w := c.workers[owner]
	t.state = taskQueued
	t.owner = ""
	w.queue = append(w.queue, t)
	if len(w.waiters) > 0 {
		wake := w.waiters[0]
		w.waiters = w.waiters[1:]
		return []action{{wake: wake}}
	}
	for _, id := range c.aliveIDs() {
		other := c.workers[id]
		if len(other.waiters) > 0 {
			wake := other.waiters[0]
			other.waiters = other.waiters[1:]
			return []action{{wake: wake}}
		}
	}
	return nil
}

// completeLocked delivers a task's outcome exactly once (mu held).
func (c *Coordinator) completeLocked(t *task, out taskOutcome) []action {
	if t.state == taskDone {
		return nil
	}
	if w := c.workers[t.owner]; w != nil {
		delete(w.inflight, t.id)
	}
	t.state = taskDone
	stopLease(t)
	delete(c.tasks, t.id)
	if out.err != nil {
		c.failed++
	} else {
		c.completed++
	}
	return []action{{deliver: t, out: out}}
}

// requeueLocked puts a task back in play after a lease expiry or worker
// loss: back on a (preferably different) owner's queue, to the local
// fallback when the fleet is empty, or failed outright once its dispatch
// attempts are spent (mu held).
func (c *Coordinator) requeueLocked(t *task, lastOwner string) []action {
	if t.state == taskDone {
		return nil
	}
	if t.attempts >= c.cfg.MaxAttempts {
		err := fmt.Errorf("cluster: job %s (task %d) failed after %d dispatch attempts", t.job, t.id, t.attempts)
		return c.completeLocked(t, taskOutcome{err: err})
	}
	if len(c.workers) == 0 {
		if c.cfg.LocalExec != nil {
			c.localRuns++
			t.state = taskInflight
			t.owner = ""
			return []action{{local: t}}
		}
		t.state = taskQueued
		t.owner = ""
		c.unassigned = append(c.unassigned, t)
		return nil
	}
	return c.enqueueLocked(t, lastOwner)
}

// dispatchLocked hands a queued task to a worker: leased, counted, and
// guarded against stale expiry by the dispatch sequence number (mu held).
func (c *Coordinator) dispatchLocked(t *task, w *workerState) {
	t.state = taskInflight
	t.owner = w.id
	t.attempts++
	t.seq++
	seq := t.seq
	id := t.id
	w.inflight[t.id] = t
	stopLease(t)
	t.lease = time.AfterFunc(c.cfg.Lease, func() { c.expireLease(id, seq) })
	c.dispatched++
}

// expireLease re-dispatches a task whose lease ran out without a heartbeat
// or a result. The sequence number ignores stale timers from earlier
// dispatches of the same task.
func (c *Coordinator) expireLease(id, seq uint64) {
	c.mu.Lock()
	t := c.tasks[id]
	if t == nil || t.state != taskInflight || t.seq != seq {
		c.mu.Unlock()
		return
	}
	lastOwner := t.owner
	if w := c.workers[lastOwner]; w != nil {
		delete(w.inflight, t.id)
	}
	c.redispatched++
	acts := c.requeueLocked(t, lastOwner)
	c.mu.Unlock()
	c.perform(acts)
}

// renewLeaseLocked restarts a task's lease under a fresh sequence number,
// so an already-fired (but not yet run) expiry is ignored (mu held).
func (c *Coordinator) renewLeaseLocked(t *task) {
	t.seq++
	seq := t.seq
	id := t.id
	stopLease(t)
	t.lease = time.AfterFunc(c.cfg.Lease, func() { c.expireLease(id, seq) })
}

// resetLivenessLocked pushes the worker's liveness horizon out (mu held).
func (c *Coordinator) resetLivenessLocked(w *workerState) {
	if w.liveness != nil {
		w.liveness.Stop()
	}
	gen := w.generation
	id := w.id
	w.liveness = time.AfterFunc(c.cfg.Liveness, func() { c.workerLost(id, gen) })
}

// workerLost removes a worker that missed its liveness window and puts every
// job it held back in play.
func (c *Coordinator) workerLost(id string, gen uint64) {
	c.mu.Lock()
	w := c.workers[id]
	if w == nil || w.generation != gen || w.gone {
		c.mu.Unlock()
		return
	}
	w.gone = true
	if w.liveness != nil {
		w.liveness.Stop()
	}
	delete(c.workers, id)
	c.workersLost++
	var acts []action
	// Queued jobs re-shard silently; leased ones count as re-dispatches.
	for _, t := range w.queue {
		if t.state == taskQueued {
			acts = append(acts, c.requeueLocked(t, id)...)
		}
	}
	ids := make([]uint64, 0, len(w.inflight))
	for tid := range w.inflight {
		ids = append(ids, tid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, tid := range ids {
		t := w.inflight[tid]
		if t.state != taskInflight || t.owner != id {
			continue
		}
		c.redispatched++
		acts = append(acts, c.requeueLocked(t, id)...)
	}
	c.mu.Unlock()
	c.perform(acts)
}

// Close shuts the coordinator down: pending tasks fail with ErrClosed,
// timers stop, and every endpoint answers 503. Safe to call more than once.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var acts []action
	ids := make([]uint64, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		acts = append(acts, c.completeLocked(c.tasks[id], taskOutcome{err: ErrClosed})...)
	}
	//fuselint:ordered order-insensitive timer teardown
	for _, w := range c.workers {
		if w.liveness != nil {
			w.liveness.Stop()
		}
	}
	c.mu.Unlock()
	c.perform(acts)
}

// --- HTTP handlers -------------------------------------------------------

// handleRegister admits (or refreshes) a worker and drains any jobs that
// were submitted while the fleet was empty.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "empty worker id")
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "coordinator closed")
		return
	}
	ws := c.workers[req.Worker]
	if ws == nil {
		ws = &workerState{id: req.Worker, inflight: make(map[uint64]*task)}
		c.workers[req.Worker] = ws
		c.workersEver++
	}
	ws.generation++
	ws.gone = false
	c.resetLivenessLocked(ws)
	var acts []action
	pending := c.unassigned
	c.unassigned = nil
	for _, t := range pending {
		if t.state == taskQueued {
			acts = append(acts, c.enqueueLocked(t, "")...)
		}
	}
	c.mu.Unlock()
	c.perform(acts)
	writeJSON(w, http.StatusOK, registerResponse{
		LeaseMillis:     c.cfg.Lease.Milliseconds(),
		PollMillis:      c.cfg.PollTimeout.Milliseconds(),
		HeartbeatMillis: c.cfg.Heartbeat.Milliseconds(),
	})
}

// takeOrPark serves one pull attempt: a task from the worker's own queue, a
// stolen one from the most backlogged peer, or a parked waiter channel to
// wait on. unknown=true means the worker must re-register.
func (c *Coordinator) takeOrPark(workerID string) (wire *Task, wait chan struct{}, unknown bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil || w.gone || c.closed {
		return nil, nil, true
	}
	c.resetLivenessLocked(w)
	t := popQueueLocked(w)
	if t == nil {
		if victim := c.longestQueueLocked(workerID); victim != nil {
			if t = popQueueLocked(victim); t != nil {
				c.stolen++
			}
		}
	}
	if t != nil {
		c.dispatchLocked(t, w)
		return &Task{ID: t.id, Key: t.key, Job: t.job}, nil, false
	}
	ch := make(chan struct{}, 1)
	w.waiters = append(w.waiters, ch)
	return nil, ch, false
}

// popQueueLocked pops the oldest still-queued task, dropping entries that
// completed or were abandoned while waiting (mu held).
func popQueueLocked(w *workerState) *task {
	for len(w.queue) > 0 {
		t := w.queue[0]
		w.queue = w.queue[1:]
		if t.state == taskQueued {
			return t
		}
	}
	return nil
}

// longestQueueLocked finds the steal victim: the worker with the deepest
// queue of still-queued tasks, ties broken by smallest ID (mu held).
func (c *Coordinator) longestQueueLocked(except string) *workerState {
	var victim *workerState
	depth := 0
	for _, id := range c.aliveIDs() {
		if id == except {
			continue
		}
		w := c.workers[id]
		n := 0
		for _, t := range w.queue {
			if t.state == taskQueued {
				n++
			}
		}
		if n > depth {
			victim, depth = w, n
		}
	}
	return victim
}

// dropWaiter removes a parked pull's wake channel after a timeout or a
// client disconnect; a signal that already consumed the waiter is harmless
// (the task stays queued for the worker's next pull).
func (c *Coordinator) dropWaiter(workerID string, ch chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return
	}
	for i, have := range w.waiters {
		if have == ch {
			w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
			return
		}
	}
}

// handlePull long-polls for a task: 200 with a Task, or 204 after the poll
// timeout. 410 tells an unknown (or declared-lost) worker to re-register.
func (c *Coordinator) handlePull(w http.ResponseWriter, r *http.Request) {
	var req pullRequest
	if !decodeInto(w, r, &req) {
		return
	}
	ctx := r.Context()
	deadline := time.NewTimer(c.cfg.PollTimeout)
	defer deadline.Stop()
	for {
		wire, wait, unknown := c.takeOrPark(req.Worker)
		if unknown {
			httpError(w, http.StatusGone, "unknown worker %q: re-register", req.Worker)
			return
		}
		if wire != nil {
			writeJSON(w, http.StatusOK, wire)
			return
		}
		select {
		case <-wait:
			continue // work may be available; take again
		case <-deadline.C:
			c.dropWaiter(req.Worker, wait)
			w.WriteHeader(http.StatusNoContent)
			return
		case <-ctx.Done():
			c.dropWaiter(req.Worker, wait)
			return
		}
	}
}

// handleHeartbeat renews the worker's liveness and the leases of the listed
// in-flight tasks.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.mu.Lock()
	ws := c.workers[req.Worker]
	if ws == nil || ws.gone {
		c.mu.Unlock()
		httpError(w, http.StatusGone, "unknown worker %q: re-register", req.Worker)
		return
	}
	c.resetLivenessLocked(ws)
	for _, id := range req.Tasks {
		if t := c.tasks[id]; t != nil && t.state == taskInflight && t.owner == req.Worker {
			c.renewLeaseLocked(t)
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleResult acknowledges a finished task. Late or duplicate results (the
// task completed elsewhere after a re-dispatch, or was abandoned) answer 200
// and are dropped: outcomes are deterministic, so the first one delivered is
// as good as any.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !decodeInto(w, r, &req) {
		return
	}
	var out taskOutcome
	if req.Error != "" {
		out.err = fmt.Errorf("cluster: worker %s: %s", req.Worker, req.Error)
	} else if req.Result != nil {
		out.res = *req.Result
	} else {
		httpError(w, http.StatusBadRequest, "result or error required")
		return
	}
	c.mu.Lock()
	if ws := c.workers[req.Worker]; ws != nil && !ws.gone {
		c.resetLivenessLocked(ws)
	}
	var acts []action
	if t := c.tasks[req.Task]; t != nil {
		acts = c.completeLocked(t, out)
	}
	c.mu.Unlock()
	c.perform(acts)
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleStoreGet serves one stored result envelope to a worker's remote
// tier. Misses are 404s; an unconfigured store endpoint always misses.
func (c *Coordinator) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		httpError(w, http.StatusBadRequest, "malformed key %q", key)
		return
	}
	if c.cfg.Cache == nil {
		httpError(w, http.StatusNotFound, "no store configured")
		return
	}
	res, ok := c.cfg.Cache.Get(key)
	c.mu.Lock()
	if ok {
		c.storeGetHits++
	} else {
		c.storeGetMiss++
	}
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no result for key %s", key)
		return
	}
	data, err := store.Encode(res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleStorePut accepts one result envelope from a worker, validating it
// before it touches the cache: a corrupt envelope is the sender's bug and is
// rejected, never stored.
func (c *Coordinator) handleStorePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		httpError(w, http.StatusBadRequest, "malformed key %q", key)
		return
	}
	if c.cfg.Cache == nil {
		httpError(w, http.StatusNotFound, "no store configured")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	res, err := store.Decode(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.cfg.Cache.Put(key, res)
	c.mu.Lock()
	c.storePuts++
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// maxEnvelopeBytes bounds a PUT body; result envelopes are a few KB.
const maxEnvelopeBytes = 32 << 20

// decodeInto parses a JSON request body, answering 400 on malformed input.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return false
	}
	return true
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
