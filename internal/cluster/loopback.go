package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"

	"fuse/internal/engine"
)

// loopback is an http.RoundTripper that dispatches requests straight into an
// http.Handler — no sockets, no ports. It exists so a whole
// coordinator+workers fleet can run inside one process (tests, `fuseserve
// -localworkers`) speaking the exact same HTTP+JSON protocol as a real
// deployment: the wire format is exercised, only the wire is elided.
type loopback struct {
	handler http.Handler
}

// loopbackWriter is a minimal in-memory http.ResponseWriter. (httptest has a
// nicer one, but this is non-test code and must not import it.)
type loopbackWriter struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (w *loopbackWriter) Header() http.Header { return w.header }

func (w *loopbackWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
}

func (w *loopbackWriter) Write(p []byte) (int, error) {
	w.WriteHeader(http.StatusOK)
	return w.body.Write(p)
}

// RoundTrip implements http.RoundTripper. The handler runs synchronously on
// the calling goroutine; the request context (long-poll cancellation,
// per-request timeouts) flows through unchanged.
func (l *loopback) RoundTrip(req *http.Request) (*http.Response, error) {
	w := &loopbackWriter{header: make(http.Header)}
	l.handler.ServeHTTP(w, req)
	if req.Body != nil {
		req.Body.Close()
	}
	if err := req.Context().Err(); err != nil {
		// The handler bailed because the caller's context died; surface it
		// as a transport error like a real client would.
		return nil, fmt.Errorf("cluster: loopback request: %w", err)
	}
	if w.status == 0 {
		w.status = http.StatusOK
	}
	body := w.body // copy so the recorder can be GC'd independently
	return &http.Response{
		StatusCode:    w.status,
		Status:        fmt.Sprintf("%d %s", w.status, http.StatusText(w.status)),
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        w.header,
		Body:          &readCloser{Reader: &body},
		ContentLength: int64(body.Len()),
		Request:       req,
	}, nil
}

// readCloser adapts a bytes.Buffer to io.ReadCloser.
type readCloser struct{ Reader *bytes.Buffer }

func (r *readCloser) Read(p []byte) (int, error) { return r.Reader.Read(p) }
func (r *readCloser) Close() error               { return nil }

// LoopbackClient returns an *http.Client whose requests dispatch directly
// into h. Point workers (and store.NewRemote) at a coordinator's Handler
// with base URL LoopbackBase to run a fleet in-process.
func LoopbackClient(h http.Handler) *http.Client {
	return &http.Client{Transport: &loopback{handler: h}}
}

// LoopbackBase is the base URL loopback clients use; the host is never
// resolved (the transport short-circuits), it only has to parse.
const LoopbackBase = "http://loopback"

// Fleet is a set of in-process workers driving one coordinator over the
// loopback transport.
type Fleet struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// StartFleet launches n in-process workers (IDs "w01".."wNN", one puller
// each) against the coordinator's handler, each executing jobs with exec.
// Stop the fleet with Stop; the workers also exit when ctx is cancelled.
func StartFleet(ctx context.Context, coord *Coordinator, n int, exec engine.ExecFunc) (*Fleet, error) {
	fleetCtx, cancel := context.WithCancel(ctx)
	f := &Fleet{cancel: cancel}
	client := LoopbackClient(coord.Handler())
	for i := 1; i <= n; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator: LoopbackBase,
			Client:      client,
			ID:          fmt.Sprintf("w%02d", i),
			Exec:        exec,
		})
		if err != nil {
			cancel()
			return nil, err
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			_ = w.Run(fleetCtx)
		}()
	}
	return f, nil
}

// Stop cancels the fleet's workers and waits for their loops to exit.
//
//fuselint:blocking waits for worker goroutines to drain
func (f *Fleet) Stop() {
	f.cancel()
	f.wg.Wait()
}
