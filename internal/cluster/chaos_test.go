package cluster

import (
	"context"
	"testing"
	"time"

	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/fault"
)

// TestChaosWorkerKillByteIdentical is the cluster half of the chaos suite:
// a seeded fault.Plan kills one of two workers at a deterministic point
// mid-batch (its KillAfter hook cancels the worker's own context, dropping
// its in-flight job and its queue on the floor), and the figure matrix must
// still render the exact bytes of the fault-free single-process run — via
// lease expiry, worker-loss re-dispatch and work stealing.
func TestChaosWorkerKillByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick-scale simulations")
	}
	ref := refFig13(t)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Short lease/poll so the re-dispatch machinery runs inside test time.
	coord := New(Config{
		Lease:       200 * time.Millisecond,
		PollTimeout: 50 * time.Millisecond,
	})
	defer coord.Close()
	client := LoopbackClient(coord.Handler())

	// Worker 1 dies after its second execution: the injector's kill hook
	// cancels the worker's context.
	inj := fault.NewInjector(fault.Plan{Seed: 42, KillAfter: 2}, engine.ExecFunc(engine.Execute))
	w1ctx, w1kill := context.WithCancel(ctx)
	defer w1kill()
	inj.SetKill(w1kill)
	w1, err := NewWorker(WorkerConfig{Coordinator: LoopbackBase, Client: client, ID: "w1", Exec: inj.Exec})
	if err != nil {
		t.Fatal(err)
	}
	w1done := make(chan struct{})
	go func() { defer close(w1done); _ = w1.Run(w1ctx) }()

	// Worker 2 is healthy and must absorb the whole batch.
	w2, err := NewWorker(WorkerConfig{Coordinator: LoopbackBase, Client: client, ID: "w2", Exec: engine.Execute})
	if err != nil {
		t.Fatal(err)
	}
	w2ctx, w2stop := context.WithCancel(ctx)
	defer w2stop()
	w2done := make(chan struct{})
	go func() { defer close(w2done); _ = w2.Run(w2ctx) }()

	runner := engine.New(engine.Config{Exec: coord.Execute})
	matrix := experiments.NewMatrixRunner(experiments.QuickScale, runner)
	table, err := experiments.RunContext(ctx, matrix, experiments.ExpFig13, testWorkloads)
	if err != nil {
		t.Fatalf("fig13 under worker kill: %v", err)
	}
	if got := table.String(); got != ref {
		t.Errorf("table under worker kill differs from fault-free single-process run\nref:\n%s\ngot:\n%s", ref, got)
	}

	if s := inj.Stats(); s.Kills != 1 {
		t.Errorf("injected kills = %d, want 1", s.Kills)
	}
	if s := coord.Stats(); s.Redispatched == 0 {
		t.Errorf("Redispatched = 0, want ≥ 1 (the killed worker's job was never re-dispatched)")
	}

	w2stop()
	<-w1done
	<-w2done
}
