package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"fuse/internal/engine"
)

// WorkerConfig configures one worker process (or one in-process worker in a
// loopback fleet).
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Client is the HTTP client used for all coordinator traffic. Nil means
	// a default client; loopback fleets pass LoopbackClient. Long-polls rely
	// on per-request context timeouts, so the client should not set a global
	// Timeout.
	Client *http.Client
	// ID is the worker's registration identity. Required; must be unique in
	// the fleet (a restarted worker reuses its ID to reclaim its leases).
	ID string
	// Exec executes one pulled job. Required. cmd/fuseworker plugs in an
	// engine.Runner's Get so pulled jobs get the full dedup + store +
	// retry + panic-containment treatment.
	Exec engine.ExecFunc
	// Pullers is the number of concurrent pull→execute→ack loops, i.e. how
	// many jobs the worker runs at once. Zero means 1.
	Pullers int
}

// Worker is the pull loop: register, long-poll for tasks, execute, heartbeat
// while executing, report the result. Create with NewWorker, drive with Run.
type Worker struct {
	cfg WorkerConfig

	mu        sync.Mutex
	lease     time.Duration // intervals learned from the register response
	poll      time.Duration
	heartbeat time.Duration
}

// NewWorker validates the config and builds a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("cluster: worker needs a coordinator URL")
	}
	if cfg.ID == "" {
		return nil, errors.New("cluster: worker needs an ID")
	}
	if cfg.Exec == nil {
		return nil, errors.New("cluster: worker needs an executor")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Pullers <= 0 {
		cfg.Pullers = 1
	}
	return &Worker{cfg: cfg}, nil
}

// intervals returns the operating intervals from the last registration,
// defaulting until the first one succeeds.
func (w *Worker) intervals() (lease, poll, heartbeat time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lease, poll, heartbeat = w.lease, w.poll, w.heartbeat
	if lease <= 0 {
		lease = DefaultLease
	}
	if poll <= 0 {
		poll = DefaultPollTimeout
	}
	if heartbeat <= 0 {
		heartbeat = lease / 3
	}
	return lease, poll, heartbeat
}

// Run registers with the coordinator and pulls until ctx is cancelled.
// Cancellation abandons in-flight work mid-simulation: the coordinator's
// lease machinery re-dispatches it, and a racing late result is dropped
// (first result wins), so a worker kill never corrupts a batch.
//
//fuselint:blocking loops until ctx is cancelled
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Pullers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.pullLoop(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// register announces the worker, retrying transient failures with backoff
// until ctx is cancelled, and records the advertised intervals.
func (w *Worker) register(ctx context.Context) error {
	backoff := 50 * time.Millisecond
	for {
		var resp registerResponse
		status, err := w.post(ctx, pathRegister, registerRequest{Worker: w.cfg.ID}, &resp)
		if err == nil && status == http.StatusOK {
			w.mu.Lock()
			w.lease = time.Duration(resp.LeaseMillis) * time.Millisecond
			w.poll = time.Duration(resp.PollMillis) * time.Millisecond
			w.heartbeat = time.Duration(resp.HeartbeatMillis) * time.Millisecond
			w.mu.Unlock()
			return nil
		}
		if err == nil {
			err = fmt.Errorf("cluster: register %s: HTTP %d", w.cfg.ID, status)
		}
		if status == http.StatusServiceUnavailable || status == http.StatusBadRequest {
			return err // closed coordinator or a config bug: retrying is pointless
		}
		if !sleepCtx(ctx, backoff) {
			return err
		}
		backoff = minDuration(2*backoff, 2*time.Second)
	}
}

// pullLoop is one pull→execute→ack loop.
func (w *Worker) pullLoop(ctx context.Context) {
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		t, status, err := w.pull(ctx)
		switch {
		case err != nil:
			if !sleepCtx(ctx, backoff) {
				return
			}
			backoff = minDuration(2*backoff, 2*time.Second)
		case status == http.StatusGone:
			// The coordinator forgot us (restart, liveness loss): rejoin.
			if w.register(ctx) != nil {
				return
			}
		case t == nil:
			// Empty poll; loop around immediately (the long-poll itself is
			// the pacing).
			backoff = 50 * time.Millisecond
		default:
			backoff = 50 * time.Millisecond
			w.runTask(ctx, t)
		}
	}
}

// pull long-polls for one task: (task, 200) on a dispatch, (nil, 204) on an
// empty poll, (nil, 410) when the worker must re-register.
func (w *Worker) pull(ctx context.Context) (*Task, int, error) {
	_, poll, _ := w.intervals()
	// Give the coordinator its full poll window plus transit slack.
	reqCtx, cancel := context.WithTimeout(ctx, poll+10*time.Second)
	defer cancel()
	var t Task
	status, err := w.post(reqCtx, pathPull, pullRequest{Worker: w.cfg.ID}, &t)
	if err != nil {
		return nil, 0, err
	}
	switch status {
	case http.StatusOK:
		return &t, status, nil
	case http.StatusNoContent, http.StatusGone:
		return nil, status, nil
	default:
		return nil, status, fmt.Errorf("cluster: pull: HTTP %d", status)
	}
}

// runTask executes one task, heartbeating while it runs, and reports the
// outcome. A cancelled ctx abandons the task (no report): the lease expires
// and the coordinator re-dispatches.
func (w *Worker) runTask(ctx context.Context, t *Task) {
	_, _, heartbeat := w.intervals()
	resCh := make(chan taskOutcome, 1)
	go w.execTask(ctx, t, resCh)
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case out := <-resCh:
			w.report(ctx, t, out)
			return
		case <-ticker.C:
			w.renew(ctx, t.ID)
		case <-ctx.Done():
			return
		}
	}
}

// execTask runs the executor and posts the outcome to the (buffered) result
// slot.
func (w *Worker) execTask(ctx context.Context, t *Task, resCh chan taskOutcome) {
	res, err := w.cfg.Exec(ctx, t.Job)
	resCh <- taskOutcome{res: res, err: err} //fuselint:noctx buffered result slot; never blocks
}

// renew heartbeats one in-flight task. Failures are ignored: the next tick
// retries, and a persistently unreachable coordinator simply lets the lease
// expire (which is the designed recovery path).
func (w *Worker) renew(ctx context.Context, id uint64) {
	reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	status, _ := w.post(reqCtx, pathHeartbeat, heartbeatRequest{Worker: w.cfg.ID, Tasks: []uint64{id}}, nil)
	if status == http.StatusGone {
		_ = w.register(ctx)
	}
}

// report acks a finished task with its result or error, retrying transient
// failures a few times. A report that never lands is safe: the lease
// expires and another worker recomputes the identical result.
func (w *Worker) report(ctx context.Context, t *Task, out taskOutcome) {
	if out.err != nil && ctx.Err() != nil {
		// A dying worker's execution errors are its own death throes, not
		// job failures: abandon silently and let the lease re-dispatch.
		return
	}
	req := resultRequest{Worker: w.cfg.ID, Task: t.ID}
	if out.err != nil {
		req.Error = out.err.Error()
	} else {
		res := out.res
		req.Result = &res
	}
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 3; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		status, err := w.post(reqCtx, pathResult, req, nil)
		cancel()
		if err == nil && status == http.StatusOK {
			return
		}
		if !sleepCtx(ctx, backoff) {
			return
		}
		backoff *= 2
	}
}

// post sends one JSON request and decodes a JSON response into out (when
// non-nil and the status is 200). It returns the HTTP status.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: decoding %s response: %w", path, err)
		}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// sleepCtx waits d or until ctx is cancelled; it reports false on
// cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// The coordinator is an engine executor: compile-time proof.
var _ engine.ExecFunc = (&Coordinator{}).Execute
