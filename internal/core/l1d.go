// Package core implements the paper's contribution: the FUSE heterogeneous
// L1D cache that fuses a small SRAM bank with a larger STT-MRAM bank behind a
// single cache controller. The package provides all seven L1D organisations
// evaluated in the paper (L1-SRAM, FA-SRAM, By-NVM, Hybrid, Base-FUSE,
// FA-FUSE and Dy-FUSE) behind one L1D interface so that the simulator and the
// experiment harness can swap them freely.
package core

import (
	"fuse/internal/cache"
	"fuse/internal/config"
	"fuse/internal/mem"
	"fuse/internal/memtech"
	"fuse/internal/predictor"
)

// AccessOutcome describes how the L1D handled a request presented by the SM.
type AccessOutcome uint8

const (
	// OutcomeHit means the request was serviced on-chip; the data is ready
	// after AccessResult.Latency cycles.
	OutcomeHit AccessOutcome = iota
	// OutcomeMiss means a new primary miss was allocated; the warp must
	// wait for the corresponding Fill.
	OutcomeMiss
	// OutcomeMissMerged means the request was merged into an outstanding
	// miss for the same block.
	OutcomeMissMerged
	// OutcomeBypass means the request will be serviced by the L2 without
	// allocating an L1D line (dead-write bypass or predicted WORO block).
	// Like a miss, the warp waits for the Fill.
	OutcomeBypass
	// OutcomeStall means the cache could not accept the request this cycle
	// (bank busy, MSHR full, tag queue full); the SM must retry.
	OutcomeStall
)

// String implements fmt.Stringer.
func (o AccessOutcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeMissMerged:
		return "miss-merged"
	case OutcomeBypass:
		return "bypass"
	case OutcomeStall:
		return "stall"
	default:
		return "unknown"
	}
}

// AccessResult is returned by L1D.Access.
type AccessResult struct {
	Outcome AccessOutcome
	// Latency is the number of cycles until the data is available, only
	// meaningful for OutcomeHit.
	Latency int
	// Bank reports which bank serviced the hit or will receive the fill.
	Bank cache.DestBank
}

// StallReason classifies why an access was rejected (for Figure 15).
type StallReason uint8

const (
	// StallNone means the access was not stalled.
	StallNone StallReason = iota
	// StallSTTWrite means the cache was blocked by an in-flight STT-MRAM
	// write (the dominant stall source in the unoptimised Hybrid cache).
	StallSTTWrite
	// StallTagSearch means the associativity-approximation logic was still
	// searching the tag array.
	StallTagSearch
	// StallMSHR means no MSHR entry (or merge slot) was available.
	StallMSHR
	// StallStructural covers full swap buffers and tag queues.
	StallStructural
)

// Stats aggregates every counter the paper's figures need from an L1D cache.
type Stats struct {
	Accesses uint64
	Reads    uint64
	Writes   uint64

	Hits     uint64
	SRAMHits uint64
	STTHits  uint64
	SwapHits uint64
	// QueueHits counts lookups served by the tag-queue snoop: the block's
	// fill or migration is queued but not yet written into the STT-MRAM
	// array, so the cache already owns it.
	QueueHits  uint64
	Misses     uint64
	MergedMiss uint64
	Bypasses   uint64

	// Stall cycles by reason (Figure 15).
	STTWriteStallCycles  uint64
	TagSearchStallCycles uint64
	MSHRStallEvents      uint64
	StructuralStalls     uint64

	// Bank-level traffic, including fills, migrations and write-backs.
	SRAMReads  uint64
	SRAMWrites uint64
	STTReads   uint64
	STTWrites  uint64

	// Data movement between banks and toward the L2.
	MigrationsToSTT  uint64
	MigrationsToSRAM uint64
	EvictionsToL2    uint64
	Writebacks       uint64
	TagQueueFlushes  uint64

	// OutgoingRequests counts references sent over the interconnect
	// (misses + write-backs); this is the quantity the paper's headline
	// "32% fewer outgoing memory references" refers to.
	OutgoingRequests uint64

	// Predictor accuracy (Figure 16).
	Accuracy predictor.AccuracyTracker
}

// MissRate returns misses (including bypasses) over accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses+s.Bypasses) / float64(s.Accesses)
}

// HitRate returns hits over accesses.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// TotalStallCycles returns the sum of all stall cycles.
func (s *Stats) TotalStallCycles() uint64 {
	return s.STTWriteStallCycles + s.TagSearchStallCycles + s.StructuralStalls
}

// L1D is the interface shared by the seven cache organisations. The simulator
// drives it with Access/Fill/Tick and drains outgoing traffic with
// PopOutgoing.
type L1D interface {
	// Kind identifies the configuration.
	Kind() config.L1DKind
	// Access presents one (coalesced) memory request at cycle `now`.
	Access(req mem.Request, now int64) AccessResult
	// Fill delivers the data for a previously missed block at cycle `now`
	// and returns the requests (primary and merged) that were waiting on
	// it so the simulator can wake the corresponding warps.
	Fill(block uint64, now int64) []mem.Request
	// PopOutgoing returns the next request that must be sent toward the L2
	// (a miss or a write-back), if any.
	PopOutgoing() (mem.Request, bool)
	// Tick advances internal machinery (tag queue drain, swap buffer
	// retirement) by one cycle.
	Tick(now int64)
	// NextInternalEventAt returns the next cycle (>= now) at which the
	// cache's internal machinery can make progress on its own — e.g. the
	// STT-MRAM bank freeing while tag-queue operations wait to drain — or
	// -1 when it is idle. A simulator that fast-forwards over idle cycles
	// must not skip past this cycle, or tag-queue retirements would slip
	// and change the timing relative to cycle-by-cycle execution.
	NextInternalEventAt(now int64) int64
	// Stats exposes the accumulated counters.
	Stats() *Stats
	// Banks returns the technology banks (for energy accounting). The
	// slice may contain one or two banks depending on the organisation.
	Banks() []*memtech.Bank
	// Reset restores the cache to its initial empty state.
	Reset()
}
