package core

import (
	"testing"

	"fuse/internal/cache"
	"fuse/internal/config"
	"fuse/internal/mem"
)

func newHybridKind(kind config.L1DKind) *HybridL1D {
	return MustNew(config.NewL1DConfig(kind)).(*HybridL1D)
}

func TestHybridMissFillHit(t *testing.T) {
	h := newHybridKind(config.BaseFUSE)
	if h.Kind() != config.BaseFUSE {
		t.Fatalf("Kind = %v", h.Kind())
	}
	res := h.Access(readReq(1, 0x40, 0), 0)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("cold access should miss, got %v", res.Outcome)
	}
	if n := fillAll(h, 50); n != 1 {
		t.Fatalf("expected one fill, got %d", n)
	}
	res = h.Access(readReq(1, 0x40, 0), 60)
	if res.Outcome != OutcomeHit {
		t.Errorf("post-fill access should hit, got %v", res.Outcome)
	}
	if len(h.Banks()) != 2 {
		t.Errorf("hybrid cache should expose two banks")
	}
}

func TestHybridBlockingMigrationStallsCache(t *testing.T) {
	// The plain Hybrid configuration has no swap buffer or tag queue, so an
	// SRAM eviction that migrates into the STT-MRAM bank blocks the cache.
	cfg := config.NewL1DConfig(config.Hybrid)
	// Shrink the SRAM bank so evictions happen immediately: 2 sets x 2 ways.
	cfg.SRAMKB = 1
	cfg.SRAMSets = 4
	cfg.SRAMWays = 2
	h := MustNew(cfg).(*HybridL1D)

	now := int64(0)
	// Fill more blocks (same SRAM set) than SRAM can hold; every fill goes
	// to SRAM first and the evictions migrate to STT-MRAM, blocking.
	for i := 0; i < 6; i++ {
		block := 4 * i // all map to SRAM set 0
		res := h.Access(readReq(block, 0x40, 0), now)
		if res.Outcome == OutcomeStall {
			now += 10
			continue
		}
		fillAll(h, now+1)
		now += 10
	}
	if h.Stats().MigrationsToSTT == 0 {
		t.Fatalf("expected SRAM evictions to migrate to STT-MRAM")
	}
	if h.Stats().STTWriteStallCycles == 0 {
		t.Errorf("blocking migrations should accumulate STT write stall cycles")
	}
	// An access issued while the cache is blocked must stall.
	h.blockedUntil = now + 100
	if res := h.Access(readReq(999, 0x40, 0), now); res.Outcome != OutcomeStall {
		t.Errorf("access to a blocked cache should stall, got %v", res.Outcome)
	}
}

func TestBaseFUSENonBlockingMigration(t *testing.T) {
	// Base-FUSE absorbs the same migrations in the swap buffer + tag queue,
	// so the cache does not block.
	cfg := config.NewL1DConfig(config.BaseFUSE)
	cfg.SRAMKB = 1
	cfg.SRAMSets = 4
	cfg.SRAMWays = 2
	h := MustNew(cfg).(*HybridL1D)

	now := int64(0)
	stalls := 0
	for i := 0; i < 5; i++ {
		block := 4 * i
		res := h.Access(readReq(block, 0x40, 0), now)
		if res.Outcome == OutcomeStall {
			stalls++
		} else {
			fillAll(h, now+1)
		}
		h.Tick(now + 2)
		now += 10
	}
	if stalls != 0 {
		t.Errorf("Base-FUSE should not stall on migrations that fit the swap buffer, got %d stalls", stalls)
	}
	if h.Stats().MigrationsToSTT == 0 {
		t.Errorf("expected migrations to STT-MRAM")
	}
	if h.Swap().Inserts() == 0 {
		t.Errorf("migrations should pass through the swap buffer")
	}
	if h.Queue().Pushes() == 0 {
		t.Errorf("migrations should be queued as F commands")
	}
}

func TestSwapBufferHitWhileMigrationPending(t *testing.T) {
	cfg := config.NewL1DConfig(config.BaseFUSE)
	cfg.SRAMKB = 1
	cfg.SRAMSets = 4
	cfg.SRAMWays = 2
	h := MustNew(cfg).(*HybridL1D)

	now := int64(0)
	// Fill three blocks in the same SRAM set; the first eviction parks in
	// the swap buffer (no Tick, so the migration has not retired yet).
	for i := 0; i < 3; i++ {
		h.Access(readReq(4*i, 0x40, 0), now)
		fillAll(h, now+1)
		now += 5
	}
	if h.Swap().Occupancy() == 0 {
		t.Fatalf("expected a block parked in the swap buffer")
	}
	// The evicted block (0) should still hit via the swap buffer snoop.
	res := h.Access(readReq(0, 0x40, 0), now)
	if res.Outcome != OutcomeHit {
		t.Errorf("swap-buffer resident block should hit, got %v", res.Outcome)
	}
	if h.Stats().SwapHits == 0 {
		t.Errorf("swap hits should be counted")
	}
}

func TestQueuedFillVisibleWhenSwapBufferFull(t *testing.T) {
	// Regression for the queued-fill visibility bug: fillSTT parks fill data
	// in the swap buffer, but when the buffer is full the block exists only
	// as a tag-queue entry. The lookup path must snoop the queue, or a read
	// to the queued block misses again and allocates a duplicate MSHR entry
	// plus a second off-chip fetch for a block the cache already owns.
	h := newHybridKind(config.DyFUSE) // untrained predictor -> fills go to STT-MRAM
	now := int64(0)
	swapCap := h.Swap().Capacity()
	// Queue swapCap+1 fills without ever Ticking: the first swapCap park
	// their data in the swap buffer, the last one fits only in the queue.
	blocks := swapCap + 1
	for i := 0; i < blocks; i++ {
		res := h.Access(readReq(100+i, 0x40, 0), now)
		if res.Outcome != OutcomeMiss {
			t.Fatalf("block %d: expected miss, got %v", i, res.Outcome)
		}
		fillAll(h, now+1)
		now += 2
	}
	if !h.Swap().Full() {
		t.Fatalf("swap buffer should be full (%d/%d)", h.Swap().Occupancy(), swapCap)
	}
	last := 100 + blocks - 1
	lastBlock := mem.BlockAlign(uint64(last) * mem.BlockSize)
	if h.Swap().Lookup(lastBlock) {
		t.Fatalf("last fill should not fit the swap buffer")
	}
	if !h.Queue().Contains(lastBlock) {
		t.Fatalf("last fill should be pending in the tag queue")
	}

	// The follow-up read must hit at SRAM-side latency with no new outgoing
	// request and no new MSHR allocation.
	outBefore := h.Stats().OutgoingRequests
	res := h.Access(readReq(last, 0x40, 0), now)
	if res.Outcome != OutcomeHit {
		t.Fatalf("read of a queued-but-unwritten fill should hit, got %v", res.Outcome)
	}
	if res.Bank != cache.DestSRAM {
		t.Errorf("queued-fill hit should be served at SRAM-side latency, got bank %v", res.Bank)
	}
	if got := h.Stats().OutgoingRequests; got != outBefore {
		t.Errorf("queued-fill hit must not fetch again: outgoing %d -> %d", outBefore, got)
	}
	if h.Stats().QueueHits == 0 {
		t.Errorf("tag-queue hits should be counted")
	}
	if _, ok := h.PopOutgoing(); ok {
		t.Errorf("no outgoing request should have been generated")
	}
}

func TestQueuedFillWriteMigratesToSRAM(t *testing.T) {
	// A write to a queued-but-unwritten fill must pull the block into SRAM
	// (dropping the queued operation) instead of missing or chasing the
	// fill into the STT-MRAM bank.
	h := newHybridKind(config.DyFUSE)
	now := int64(0)
	blocks := h.Swap().Capacity() + 1
	for i := 0; i < blocks; i++ {
		h.Access(readReq(100+i, 0x40, 0), now)
		fillAll(h, now+1)
		now += 2
	}
	last := 100 + blocks - 1
	lastBlock := mem.BlockAlign(uint64(last) * mem.BlockSize)
	if !h.Queue().Contains(lastBlock) || h.Swap().Lookup(lastBlock) {
		t.Fatalf("setup: block must be queue-only")
	}
	res := h.Access(writeReq(last, 0x44, 0), now)
	if res.Outcome != OutcomeHit || res.Bank != cache.DestSRAM {
		t.Fatalf("write to a queued fill should hit in SRAM, got %+v", res)
	}
	if h.Queue().Contains(lastBlock) {
		t.Errorf("the queued operation should have been dropped")
	}
	if !h.sram.Probe(lastBlock) {
		t.Errorf("block should now reside in SRAM")
	}
}

func TestBlockedCyclesChargedExactlyOnce(t *testing.T) {
	// Invariant: N warps retrying over a k-cycle blocking window charge
	// exactly k stall cycles, not N*k (the pre-fix rejection path bumped the
	// counter once per rejected request).
	h := newHybridKind(config.Hybrid)
	now := int64(100)
	const k = 10
	h.blockedUntil = now + k

	for cycle := int64(0); cycle < k; cycle++ {
		for warp := 0; warp < 4; warp++ {
			res := h.Access(readReq(1+warp, 0x40, warp), now+cycle)
			if res.Outcome != OutcomeStall {
				t.Fatalf("cycle %d warp %d: expected stall, got %v", cycle, warp, res.Outcome)
			}
		}
	}
	if got := h.Stats().STTWriteStallCycles; got != k {
		t.Errorf("k-cycle block with 4 retrying warps charged %d stall cycles, want %d", got, k)
	}
	// Once the window expires, a fresh blocking window is charged again.
	now += k
	h.blockedUntil = now + 5
	if res := h.Access(readReq(9, 0x40, 0), now); res.Outcome != OutcomeStall {
		t.Fatalf("expected stall in the second window")
	}
	if got := h.Stats().STTWriteStallCycles; got != k+5 {
		t.Errorf("second window should charge its own cycles once: got %d, want %d", got, k+5)
	}
}

func TestHybridWriteHitChargesWindowOnce(t *testing.T) {
	// End-to-end flavour of the single-counting invariant: a blocking STT
	// write hit charges its window up front; the warps that retry while it
	// is in flight add nothing.
	cfg := config.NewL1DConfig(config.Hybrid)
	cfg.SRAMKB = 1
	cfg.SRAMSets = 4
	cfg.SRAMWays = 2
	h := MustNew(cfg).(*HybridL1D)
	now := int64(0)
	// Land block 0 in the STT-MRAM bank via a blocking migration: fill three
	// blocks that share SRAM set 0 so the first one is evicted and migrates.
	for i := 0; i < 3; i++ {
		if res := h.Access(readReq(4*i, 0x40, 0), now); res.Outcome == OutcomeMiss {
			fillAll(h, now+1)
		}
		now += 20 // past any blocking window
	}
	if !h.stt.Probe(0) {
		t.Fatalf("setup: block 0 should have migrated to the STT-MRAM bank")
	}
	now += 20
	before := h.Stats().STTWriteStallCycles
	res := h.Access(writeReq(0, 0x44, 0), now)
	if res.Outcome != OutcomeHit || res.Bank != cache.DestSTTMRAM {
		t.Fatalf("expected a blocking STT write hit, got %+v", res)
	}
	window := h.blockedUntil - now - 1 // the writing warp's own cycle is not a stall
	charged := h.Stats().STTWriteStallCycles - before
	if charged != uint64(window) {
		t.Fatalf("write hit should pre-charge its window: charged %d, want %d", charged, window)
	}
	// Retries inside the window change nothing.
	for cycle := now + 1; cycle < h.blockedUntil; cycle++ {
		for warp := 0; warp < 3; warp++ {
			if res := h.Access(readReq(50+warp, 0x40, warp), cycle); res.Outcome != OutcomeStall {
				t.Fatalf("expected stall during the write window, got %v", res.Outcome)
			}
		}
	}
	if got := h.Stats().STTWriteStallCycles - before; got != uint64(window) {
		t.Errorf("retries multi-counted the window: charged %d, want %d", got, window)
	}
}

func TestSTTWriteHitLatencyIncludesBusyWindow(t *testing.T) {
	// Regression for the non-blocking write leg reading the migrating block
	// out of the STT-MRAM array without honouring the bank's busy window:
	// the reported latency must serialise behind the in-flight write and
	// include the STT read itself.
	h := newHybridKind(config.DyFUSE)
	now := int64(0)
	// Land a block in the STT-MRAM array.
	h.Access(readReq(7, 0x40, 0), now)
	fillAll(h, now+1)
	for i := 0; i < 50; i++ {
		h.Tick(now + int64(i) + 2)
	}
	if !h.stt.Probe(mem.BlockAlign(7 * mem.BlockSize)) {
		t.Fatalf("setup: block should reside in the STT-MRAM bank")
	}
	// Occupy the STT-MRAM bank with a write, then write-hit the block one
	// cycle into the window.
	start := int64(200)
	busyUntil := h.sttBank.Access(start, true)
	res := h.Access(writeReq(7, 0x44, 0), start+1)
	if res.Outcome != OutcomeHit || res.Bank != cache.DestSRAM {
		t.Fatalf("expected a migrating write hit, got %+v", res)
	}
	sttRead := h.cfg.STTTech.ReadLatency
	sramWrite := h.cfg.SRAMTech.WriteLatency
	want := int(busyUntil-(start+1)) + sttRead + sramWrite
	if res.Latency < want {
		t.Errorf("latency %d ignores the bank's busy window, want >= %d", res.Latency, want)
	}
}

func TestTagQueueTickRetiresMigrations(t *testing.T) {
	cfg := config.NewL1DConfig(config.BaseFUSE)
	cfg.SRAMKB = 1
	cfg.SRAMSets = 4
	cfg.SRAMWays = 2
	h := MustNew(cfg).(*HybridL1D)
	now := int64(0)
	for i := 0; i < 4; i++ {
		h.Access(readReq(4*i, 0x40, 0), now)
		fillAll(h, now+1)
		now += 5
	}
	queued := h.Queue().Len()
	if queued == 0 {
		t.Fatalf("expected queued migrations")
	}
	// Tick until the queue drains; each retirement needs the bank free.
	for i := 0; i < 100 && !h.Queue().Empty(); i++ {
		h.Tick(now)
		now += 2
	}
	if !h.Queue().Empty() {
		t.Errorf("tag queue should drain via Tick")
	}
	if h.Stats().STTWrites == 0 {
		t.Errorf("retired migrations should write the STT-MRAM bank")
	}
	// The migrated block is now an STT-MRAM hit.
	res := h.Access(readReq(0, 0x40, 0), now+10)
	if res.Outcome != OutcomeHit || res.Bank != cache.DestSTTMRAM {
		t.Errorf("migrated block should hit in STT-MRAM, got %+v", res)
	}
	if h.Stats().STTHits == 0 {
		t.Errorf("STT hits should be counted")
	}
}

func TestWriteHitOnSTTMigratesBackToSRAM(t *testing.T) {
	h := newHybridKind(config.DyFUSE)
	now := int64(0)
	// Fill a block and force it into the STT-MRAM bank by making the
	// predictor see it as WORM-ish: with an untrained (neutral) predictor
	// and the approximately fully-associative bank, fills go to STT-MRAM.
	res := h.Access(readReq(7, 0x40, 0), now)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("expected miss, got %v", res.Outcome)
	}
	fillAll(h, now+1)
	// Drain the tag queue so the block actually lands in the STT array.
	for i := 0; i < 50; i++ {
		h.Tick(now + int64(i) + 2)
	}
	if !h.stt.Probe(mem.BlockAlign(7 * mem.BlockSize)) {
		t.Fatalf("block should reside in the STT-MRAM bank")
	}
	// Now write to it: the controller must migrate it to SRAM.
	res = h.Access(writeReq(7, 0x44, 0), now+100)
	if res.Outcome != OutcomeHit || res.Bank != cache.DestSRAM {
		t.Errorf("write hit on STT-MRAM should be served from SRAM after migration, got %+v", res)
	}
	if h.Stats().MigrationsToSRAM == 0 {
		t.Errorf("migration to SRAM should be counted")
	}
	if h.stt.Probe(mem.BlockAlign(7 * mem.BlockSize)) {
		t.Errorf("block should have been invalidated in the STT-MRAM bank")
	}
	if !h.sram.Probe(mem.BlockAlign(7 * mem.BlockSize)) {
		t.Errorf("block should now reside in SRAM")
	}
}

func TestWriteHitFlushesNonEmptyTagQueue(t *testing.T) {
	// Dy-FUSE routes neutral (untrained) fills into the STT-MRAM bank via
	// the tag queue, which is what this test needs pending entries for.
	h := newHybridKind(config.DyFUSE)
	now := int64(0)
	// Land block A in the STT-MRAM bank.
	h.Access(readReq(11, 0x40, 0), now)
	fillAll(h, now+1)
	for i := 0; i < 20; i++ {
		h.Tick(now + 2 + int64(i))
	}
	// Queue another fill (block B) without draining it.
	h.Access(readReq(12, 0x40, 0), now+50)
	fillAll(h, now+51)
	if h.Queue().Empty() {
		t.Fatalf("expected a pending fill in the tag queue")
	}
	// Write to block A: the controller flushes the queue first.
	res := h.Access(writeReq(11, 0x44, 0), now+60)
	if res.Outcome != OutcomeHit {
		t.Fatalf("expected hit, got %v", res.Outcome)
	}
	if h.Stats().TagQueueFlushes == 0 {
		t.Errorf("tag queue flush should be counted")
	}
	if !h.Queue().Empty() {
		t.Errorf("queue should be empty after the flush")
	}
}

func TestDyFUSEPlacesWMInSRAMAfterTraining(t *testing.T) {
	h := newHybridKind(config.DyFUSE)
	pc := uint64(0xA00)
	now := int64(0)
	// Train: a small set of blocks written repeatedly from a sampled warp.
	for round := 0; round < 30; round++ {
		for b := 0; b < 4; b++ {
			res := h.Access(writeReq(200+b, pc, 0), now)
			if res.Outcome == OutcomeMiss || res.Outcome == OutcomeBypass {
				fillAll(h, now+1)
			}
			h.Tick(now + 2)
			now += 5
		}
	}
	if h.Predictor() == nil {
		t.Fatalf("Dy-FUSE must have a read-level predictor")
	}
	if got := h.Predictor().Predict(pc); got != mem.WriteMultiple {
		t.Fatalf("predictor should have learned WM for pc %#x, got %v", pc, got)
	}
	// A new block from the same PC must be steered to SRAM.
	res := h.Access(writeReq(999, pc, 0), now)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("expected a miss for the new block, got %v", res.Outcome)
	}
	if res.Bank != cache.DestSRAM {
		t.Errorf("WM-predicted block should be destined for SRAM, got %v", res.Bank)
	}
}

func TestDyFUSEBypassesWOROAfterTraining(t *testing.T) {
	h := newHybridKind(config.DyFUSE)
	pc := uint64(0xC00)
	now := int64(0)
	// Train: streaming blocks never reused.
	for i := 0; i < 600; i++ {
		res := h.Access(readReq(5000+i, pc, 0), now)
		if res.Outcome == OutcomeMiss || res.Outcome == OutcomeBypass {
			fillAll(h, now+1)
		}
		h.Tick(now + 2)
		now += 5
	}
	if got := h.Predictor().Predict(pc); got != mem.WORO {
		t.Fatalf("predictor should have learned WORO, got %v (counter=%d)", got, h.Predictor().CounterOf(pc))
	}
	res := h.Access(readReq(99999, pc, 0), now)
	if res.Outcome != OutcomeBypass || res.Bank != cache.DestBypass {
		t.Errorf("WORO-predicted block should bypass the L1D, got %+v", res)
	}
	if h.Stats().Bypasses == 0 {
		t.Errorf("bypasses should be counted")
	}
}

func TestFAFUSECapturesConflictingBlocks(t *testing.T) {
	// Blocks that conflict in the 2-way set-associative STT bank of
	// Base-FUSE fit in the approximately fully-associative bank of FA-FUSE.
	run := func(kind config.L1DKind) uint64 {
		h := newHybridKind(kind)
		now := int64(0)
		// 16 blocks that all map to the same STT-MRAM set in the 256-set
		// organisation (stride 256), accessed repeatedly.
		for round := 0; round < 6; round++ {
			for i := 0; i < 16; i++ {
				block := 256 * i
				res := h.Access(readReq(block, 0x40, 0), now)
				if res.Outcome == OutcomeMiss || res.Outcome == OutcomeBypass {
					fillAll(h, now+1)
				}
				h.Tick(now + 2)
				h.Tick(now + 4)
				now += 10
			}
		}
		return h.Stats().Misses
	}
	missBase := run(config.BaseFUSE)
	missFA := run(config.FAFUSE)
	if missFA >= missBase {
		t.Errorf("FA-FUSE should take fewer conflict misses than Base-FUSE: FA=%d Base=%d", missFA, missBase)
	}
}

func TestFAFUSETagSearchCyclesCounted(t *testing.T) {
	h := newHybridKind(config.FAFUSE)
	now := int64(0)
	for i := 0; i < 20; i++ {
		res := h.Access(readReq(i, 0x40, 0), now)
		if res.Outcome == OutcomeMiss {
			fillAll(h, now+1)
		}
		h.Tick(now + 2)
		now += 5
	}
	if h.Approx() == nil {
		t.Fatalf("FA-FUSE must have approximation logic")
	}
	if h.Stats().TagSearchStallCycles == 0 {
		t.Errorf("tag search cycles should be accumulated")
	}
	if h.Approx().AverageSearchCycles() <= 0 {
		t.Errorf("average search cycles should be positive")
	}
}

func TestHybridMSHRStallDoesNotCorruptStats(t *testing.T) {
	cfg := config.NewL1DConfig(config.DyFUSE)
	cfg.MSHREntries = 1
	cfg.MSHRMergeWidth = 0
	h := MustNew(cfg).(*HybridL1D)
	if res := h.Access(readReq(1, 0x40, 0), 0); res.Outcome != OutcomeMiss {
		t.Fatalf("expected first miss")
	}
	before := h.Stats().Accesses
	if res := h.Access(readReq(2, 0x40, 0), 1); res.Outcome != OutcomeStall {
		t.Fatalf("expected MSHR stall")
	}
	if h.Stats().Accesses != before {
		t.Errorf("stalled access must not be counted")
	}
	if h.Stats().MSHRStallEvents != 1 {
		t.Errorf("MSHR stall should be counted once")
	}
}

func TestHybridPredictionAccuracyTracked(t *testing.T) {
	cfg := config.NewL1DConfig(config.DyFUSE)
	cfg.SRAMKB = 1
	cfg.SRAMSets = 4
	cfg.SRAMWays = 2
	h := MustNew(cfg).(*HybridL1D)
	now := int64(0)
	// Generate enough traffic that lines get evicted and judged.
	for i := 0; i < 400; i++ {
		var res AccessResult
		if i%5 == 0 {
			res = h.Access(writeReq(i%64, 0x500, 0), now)
		} else {
			res = h.Access(readReq(i%200, 0x600, 0), now)
		}
		if res.Outcome == OutcomeMiss || res.Outcome == OutcomeBypass {
			fillAll(h, now+1)
		}
		h.Tick(now + 2)
		now += 5
	}
	if h.Stats().Accuracy.Total() == 0 {
		t.Errorf("prediction accuracy should be audited on evictions")
	}
}

func TestHybridOutgoingIncludesWritebacks(t *testing.T) {
	cfg := config.NewL1DConfig(config.Hybrid)
	cfg.SRAMKB = 1
	cfg.SRAMSets = 4
	cfg.SRAMWays = 2
	cfg.STTMRAMKB = 1
	cfg.STTSets = 4
	cfg.STTWays = 2
	h := MustNew(cfg).(*HybridL1D)
	now := int64(0)
	// Dirty many blocks in the same sets so dirty data is eventually pushed
	// out of both banks toward the L2.
	for i := 0; i < 40; i++ {
		res := h.Access(writeReq(4*i, 0x40, 0), now)
		if res.Outcome == OutcomeStall {
			now += 20
			res = h.Access(writeReq(4*i, 0x40, 0), now)
		}
		if res.Outcome == OutcomeMiss {
			fillAll(h, now+1)
		}
		now += 20
	}
	if h.Stats().Writebacks == 0 {
		t.Errorf("dirty evictions from the STT-MRAM bank should produce write-backs")
	}
	if h.Stats().OutgoingRequests <= h.Stats().Misses {
		t.Errorf("outgoing requests should include write-backs")
	}
}

func TestHybridResetClearsEverything(t *testing.T) {
	h := newHybridKind(config.DyFUSE)
	now := int64(0)
	for i := 0; i < 50; i++ {
		res := h.Access(readReq(i, 0x40, 0), now)
		if res.Outcome == OutcomeMiss || res.Outcome == OutcomeBypass {
			fillAll(h, now+1)
		}
		h.Tick(now + 2)
		now += 5
	}
	h.Reset()
	s := h.Stats()
	if s.Accesses != 0 || s.Misses != 0 || s.STTWrites != 0 {
		t.Errorf("Reset should clear stats: %+v", s)
	}
	if !h.Queue().Empty() || h.Swap().Occupancy() != 0 {
		t.Errorf("Reset should clear the queue and swap buffer")
	}
	if _, ok := h.PopOutgoing(); ok {
		t.Errorf("Reset should clear outgoing requests")
	}
	if res := h.Access(readReq(1, 0x40, 0), 0); res.Outcome != OutcomeMiss {
		t.Errorf("cache should behave cold after Reset, got %v", res.Outcome)
	}
}

func TestHybridFillUnknownBlockIsNoop(t *testing.T) {
	h := newHybridKind(config.BaseFUSE)
	if woken := h.Fill(0xdead00, 3); len(woken) != 0 {
		t.Errorf("fill without an MSHR entry should wake nobody")
	}
}

func TestStallReasonConstants(t *testing.T) {
	// The stall reasons are part of the public vocabulary used by the
	// simulator's accounting; make sure they stay distinct.
	reasons := []StallReason{StallNone, StallSTTWrite, StallTagSearch, StallMSHR, StallStructural}
	seen := map[StallReason]bool{}
	for _, r := range reasons {
		if seen[r] {
			t.Errorf("duplicate stall reason value %d", r)
		}
		seen[r] = true
	}
}
