package core

import "fuse/internal/mem"

// TagOpKind is the command type of a tag-queue entry.
type TagOpKind uint8

const (
	// TagOpFill writes a block arriving from the L2 into the STT-MRAM bank.
	TagOpFill TagOpKind = iota
	// TagOpMigrate (the paper's "F" command) moves a block from the swap
	// buffer into the STT-MRAM bank.
	TagOpMigrate
)

// String implements fmt.Stringer.
func (k TagOpKind) String() string {
	if k == TagOpMigrate {
		return "F"
	}
	return "fill"
}

// TagOp is one pending STT-MRAM operation: the command type plus the tag and
// index of the target block (the data itself lives in the swap buffer or in
// the fill response).
type TagOp struct {
	Kind  TagOpKind
	Block uint64
	PC    uint64
	Dirty bool
	Level mem.ReadLevel
}

// TagQueue is the FIFO of pending STT-MRAM operations that makes the
// STT-MRAM bank non-blocking: the SRAM bank and the approximation logic keep
// serving requests while writes wait here (Section IV-A).
//
// The queue is a head-indexed ring over one backing slice: Pop advances the
// head instead of reslicing, so the steady state of a write-heavy run reuses
// the same backing array instead of allocating on every push/pop cycle.
//
//fuselint:smowned component of the SM-owned hybrid L1D
type TagQueue struct {
	ops  []TagOp
	head int
	cap  int

	pushes  uint64
	flushes uint64
	fullRej uint64
}

// NewTagQueue creates a queue holding at most `capacity` operations (16 in
// the paper). Zero capacity disables the queue.
func NewTagQueue(capacity int) *TagQueue {
	if capacity < 0 {
		capacity = 0
	}
	return &TagQueue{cap: capacity}
}

// Capacity returns the maximum number of queued operations.
func (q *TagQueue) Capacity() int { return q.cap }

// Len returns the number of queued operations.
func (q *TagQueue) Len() int { return len(q.ops) - q.head }

// Full reports whether no more operations can be queued.
func (q *TagQueue) Full() bool { return q.Len() >= q.cap }

// Empty reports whether the queue has no pending operations.
func (q *TagQueue) Empty() bool { return q.Len() == 0 }

// Push appends an operation; it returns false when the queue is full.
func (q *TagQueue) Push(op TagOp) bool {
	if q.Full() {
		q.fullRej++
		return false
	}
	q.ops = append(q.ops, op)
	q.pushes++
	return true
}

// Pop removes and returns the oldest operation.
func (q *TagQueue) Pop() (TagOp, bool) {
	if q.Empty() {
		return TagOp{}, false
	}
	op := q.ops[q.head]
	q.head++
	if q.head == len(q.ops) {
		// Empty: rewind to the start of the backing array so the dead
		// prefix never grows past one queue's worth of entries.
		q.ops = q.ops[:0]
		q.head = 0
	} else if q.head >= 2*q.cap {
		// The queue never fully drained but the dead prefix is now larger
		// than the live region can ever be: compact in place.
		n := copy(q.ops, q.ops[q.head:])
		q.ops = q.ops[:n]
		q.head = 0
	}
	return op, true
}

// Peek returns the oldest operation without removing it.
func (q *TagQueue) Peek() (TagOp, bool) {
	if q.Empty() {
		return TagOp{}, false
	}
	return q.ops[q.head], true
}

// Contains reports whether an operation for the block is pending.
func (q *TagQueue) Contains(block uint64) bool {
	for _, op := range q.ops[q.head:] {
		if op.Block == block {
			return true
		}
	}
	return false
}

// Flush drains every pending operation and returns them in FIFO order. The
// paper's controller flushes the queue when a write update arrives for a
// block whose WORM prediction turned out wrong, because the queue holds only
// meta-information while the write carries 128 bytes of data. The returned
// slice is handed off to the caller; the queue starts a fresh backing array.
func (q *TagQueue) Flush() []TagOp {
	q.flushes++
	out := q.ops[q.head:]
	q.ops = nil
	q.head = 0
	return out
}

// Pushes returns the number of successfully queued operations.
func (q *TagQueue) Pushes() uint64 { return q.pushes }

// Flushes returns the number of Flush calls.
func (q *TagQueue) Flushes() uint64 { return q.flushes }

// FullRejections returns the number of pushes rejected because the queue was
// full.
func (q *TagQueue) FullRejections() uint64 { return q.fullRej }

// Reset clears the queue and its counters.
func (q *TagQueue) Reset() {
	q.ops = q.ops[:0]
	q.head = 0
	q.pushes = 0
	q.flushes = 0
	q.fullRej = 0
}
