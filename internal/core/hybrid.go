package core

import (
	"fuse/internal/cache"
	"fuse/internal/config"
	"fuse/internal/mem"
	"fuse/internal/memtech"
	"fuse/internal/predictor"
)

// HybridL1D is the heterogeneous SRAM + STT-MRAM L1D cache. Depending on its
// configuration it models four of the paper's organisations:
//
//   - Hybrid: the two banks with no further optimisation. Every migration
//     into the STT-MRAM bank blocks the whole cache for the duration of the
//     STT-MRAM write.
//   - Base-FUSE: adds the swap buffer and tag queue, making the STT-MRAM bank
//     non-blocking.
//   - FA-FUSE: additionally organises the STT-MRAM bank as an approximately
//     fully-associative cache guarded by counting Bloom filters.
//   - Dy-FUSE: additionally steers blocks with the read-level predictor.
//
//fuselint:smowned one L1D per SM, advanced only by that SM's worker within an epoch
type HybridL1D struct {
	cfg config.L1DConfig

	sram     *cache.TagStore
	stt      *cache.TagStore
	sramBank *memtech.Bank
	sttBank  *memtech.Bank
	mshr     *cache.MSHR

	swap   *SwapBuffer
	queue  *TagQueue
	approx *ApproxLogic
	pred   *predictor.ReadLevelPredictor

	// blockedUntil is the cycle until which the whole cache is blocked
	// (Hybrid-style blocking migrations or tag-queue flushes).
	blockedUntil int64
	// sttStallChargedUntil is the cycle up to which STT-write stall cycles
	// have already been accounted, so that overlapping blocking windows and
	// per-request retries never charge the same cycle twice.
	sttStallChargedUntil int64

	// outgoing is a head-indexed FIFO of misses and write-backs bound for
	// the interconnect; outHead avoids the per-pop reslice that used to
	// leak the backing array's capacity.
	outgoing []mem.Request
	outHead  int
	// fillBuf is the reusable waiting-request buffer Fill returns; it is
	// valid until the next Fill call.
	fillBuf []mem.Request
	// dropScratch is the reusable keep-list of dropQueuedOp.
	dropScratch []TagOp
	stats       Stats

	// DebugJudge, when non-nil, histograms judged predictions by
	// "<level>/<outcome>" (temporary instrumentation).
	DebugJudge map[string]int
}

// newHybridL1D builds a HybridL1D from a hybrid configuration.
func newHybridL1D(cfg config.L1DConfig) *HybridL1D {
	h := &HybridL1D{cfg: cfg}
	h.sram = cache.NewTagStore(cfg.SRAMSets, cfg.SRAMWays, cache.LRU)
	// The STT-MRAM bank uses FIFO replacement: true LRU is unaffordable at
	// 512 ways (Section V, simulation methodology).
	h.stt = cache.NewTagStore(cfg.STTSets, cfg.STTWays, cache.FIFO)
	h.sramBank = memtech.NewBank("sram", cfg.SRAMTech)
	h.sttBank = memtech.NewBank("stt-mram", cfg.STTTech)
	h.mshr = cache.NewMSHR(cfg.MSHREntries, cfg.MSHRMergeWidth)
	h.swap = NewSwapBuffer(cfg.SwapBufferEntries)
	h.queue = NewTagQueue(cfg.TagQueueEntries)
	if cfg.ApproxFullyAssociative {
		h.approx = NewApproxLogic(cfg.STTBlocks(), cfg.CBFCount, cfg.CBFSlots, cfg.CBFHashes, cfg.Comparators)
	}
	if cfg.UseReadLevelPredictor {
		h.pred = predictor.NewReadLevelPredictor(predictor.Config{
			SamplerSets:     config.DefaultSamplerSets,
			SamplerWays:     config.DefaultSamplerWays,
			HistoryEntries:  config.DefaultHistoryEntries,
			UnusedThreshold: config.DefaultUnusedThreshold,
			InitialCounter:  config.DefaultPredictorInitValue,
		})
	}
	return h
}

// Kind implements L1D.
func (h *HybridL1D) Kind() config.L1DKind { return h.cfg.Kind }

// Stats implements L1D.
func (h *HybridL1D) Stats() *Stats { return &h.stats }

// Banks implements L1D.
func (h *HybridL1D) Banks() []*memtech.Bank { return []*memtech.Bank{h.sramBank, h.sttBank} }

// Predictor exposes the read-level predictor (nil unless Dy-FUSE).
func (h *HybridL1D) Predictor() *predictor.ReadLevelPredictor { return h.pred }

// Approx exposes the associativity-approximation logic (nil unless FA/Dy-FUSE).
func (h *HybridL1D) Approx() *ApproxLogic { return h.approx }

// Swap exposes the swap buffer.
func (h *HybridL1D) Swap() *SwapBuffer { return h.swap }

// Queue exposes the tag queue.
func (h *HybridL1D) Queue() *TagQueue { return h.queue }

// nonBlocking reports whether the configuration has the swap buffer and tag
// queue (Base-FUSE and above).
func (h *HybridL1D) nonBlocking() bool {
	return h.cfg.SwapBufferEntries > 0 && h.cfg.TagQueueEntries > 0
}

// predict returns the read level for the request's PC, whether the prediction
// is confident, and whether prediction is enabled at all.
func (h *HybridL1D) predict(pc uint64) (level mem.ReadLevel, neutral bool, enabled bool) {
	if h.pred == nil {
		return mem.WORM, true, false
	}
	return h.pred.Predict(pc), h.pred.Neutral(pc), true
}

// Access implements L1D. This is the arbitration logic of Figure 9: consult
// the status of the SRAM bank, the STT-MRAM bank (through the approximation
// logic when present) and the predictor, then steer the request.
//
//fuselint:noalloc
func (h *HybridL1D) Access(req mem.Request, now int64) AccessResult {
	res := h.access(req, now)
	// The predictor samples each accepted request exactly once: a rejected
	// request will be retried by the SM, and observing the retry as well
	// would make every stalled write look like a re-reference and poison
	// the read-level history.
	if h.pred != nil && res.Outcome != OutcomeStall {
		h.pred.Observe(req)
	}
	return res
}

// access is the body of Access; it returns the outcome without touching the
// predictor's sampler.
func (h *HybridL1D) access(req mem.Request, now int64) AccessResult {
	// A blocked cache (Hybrid migration or tag-queue flush in flight)
	// rejects every request. The stall cycles of the blocking window were
	// charged when the block was installed; charging here as well would
	// count one blocked cycle once per retrying warp (several warps retry
	// within the same cycle), inflating the Figure-15 decomposition.
	if now < h.blockedUntil {
		h.chargeSTTStall(now, h.blockedUntil)
		return AccessResult{Outcome: OutcomeStall}
	}
	write := req.Kind == mem.Write
	block := req.BlockAddr()

	h.stats.Accesses++
	if write {
		h.stats.Writes++
	} else {
		h.stats.Reads++
	}

	// 1. SRAM tag lookup: always single-cycle, always in parallel with the
	// STT-MRAM search, so an SRAM hit terminates the STT-MRAM search.
	if _, hit := h.sram.Touch(block, now, write); hit {
		h.stats.Hits++
		h.stats.SRAMHits++
		done := h.sramBank.Access(now, write)
		if write {
			h.stats.SRAMWrites++
		} else {
			h.stats.SRAMReads++
		}
		return AccessResult{Outcome: OutcomeHit, Latency: int(done - now), Bank: cache.DestSRAM}
	}

	// 2. Swap buffer snoop: blocks in flight from SRAM to STT-MRAM are
	// still logically present.
	if h.swap.Lookup(block) {
		h.stats.Hits++
		h.stats.SwapHits++
		if write {
			// Pull the block back into SRAM: a write would otherwise
			// chase the migration into the STT-MRAM bank.
			dirty, _ := h.swap.Remove(block)
			h.dropQueuedOp(block)
			h.insertSRAM(block, req.PC, now, true, mem.WriteMultiple, dirty)
			h.stats.MigrationsToSRAM++
		}
		done := h.sramBank.Access(now, write)
		if write {
			h.stats.SRAMWrites++
		} else {
			h.stats.SRAMReads++
		}
		return AccessResult{Outcome: OutcomeHit, Latency: int(done - now), Bank: cache.DestSRAM}
	}

	// 3. Tag-queue snoop: a fill or migration that is queued but not yet
	// written into the STT-MRAM array is still owned by the cache (its data
	// waits in the swap buffer or the fill response register), so a lookup
	// must hit or the cache would fetch a block it already holds. Reads are
	// served at SRAM-side latency, exactly like a swap hit; writes pull the
	// block into SRAM instead of chasing the queued operation into the
	// STT-MRAM bank.
	if h.nonBlocking() && h.queue.Contains(block) {
		h.stats.Hits++
		h.stats.QueueHits++
		if write {
			// Queue-only entries are exactly the fills whose swap-buffer
			// insert failed (a swap-resident block is caught by step 2
			// above), so only the queued operation needs dropping.
			op, _ := h.dropQueuedOp(block)
			h.insertSRAM(block, req.PC, now, true, mem.WriteMultiple, op.Dirty)
			h.stats.MigrationsToSRAM++
		}
		done := h.sramBank.Access(now, write)
		if write {
			h.stats.SRAMWrites++
		} else {
			h.stats.SRAMReads++
		}
		return AccessResult{Outcome: OutcomeHit, Latency: int(done - now), Bank: cache.DestSRAM}
	}

	// 4. STT-MRAM tag search, through the approximation logic if present.
	searchCycles := 0
	mayHit := true
	present := h.stt.Probe(block)
	if h.approx != nil {
		mayHit, searchCycles = h.approx.Lookup(block, present)
		h.stats.TagSearchStallCycles += uint64(searchCycles)
	}
	if mayHit && present {
		return h.sttHit(req, block, now, write, searchCycles)
	}

	// 5. Miss: decide the fill destination and allocate an MSHR entry.
	return h.miss(req, block, now, write)
}

// sttHit services a request that hit in the STT-MRAM bank.
func (h *HybridL1D) sttHit(req mem.Request, block uint64, now int64, write bool, searchCycles int) AccessResult {
	if !write {
		// Read hit: served at STT-MRAM read latency. Without a tag queue
		// (Hybrid) a busy bank rejects the request; with one, the access
		// is absorbed.
		if !h.nonBlocking() && h.sttBank.Busy(now) {
			h.chargeSTTStall(now, h.sttBank.BusyUntil())
			h.undoAccess(write)
			return AccessResult{Outcome: OutcomeStall, Bank: cache.DestSTTMRAM}
		}
		h.stt.Touch(block, now, false)
		h.stats.Hits++
		h.stats.STTHits++
		done := h.sttBank.Access(now, false)
		h.stats.STTReads++
		lat := int(done-now) + searchCycles
		return AccessResult{Outcome: OutcomeHit, Latency: lat, Bank: cache.DestSTTMRAM}
	}

	// Write hit on STT-MRAM: the block was predicted WORM but is being
	// updated (a misprediction, or simply WM data in a predictor-less
	// configuration).
	if h.nonBlocking() {
		// Flush the tag queue, then migrate the block to SRAM where the
		// write is cheap. The flush drains pending fills/migrations into
		// the STT-MRAM bank first.
		if !h.queue.Empty() {
			h.stats.TagQueueFlushes++
			h.drainQueue(now)
		}
		line := h.stt.Invalidate(block)
		if h.approx != nil {
			h.approx.Unregister(block)
		}
		// Read the data out of the STT-MRAM array. The bank serialises the
		// read behind any in-flight write, and the migrating write into
		// SRAM cannot start before the data is available, so the reported
		// latency must include both the busy window and the STT read.
		readDone := h.sttBank.Access(now, false)
		h.stats.STTReads++
		h.stats.MigrationsToSRAM++
		h.insertSRAM(block, req.PC, now, true, mem.WriteMultiple, line.Dirty)
		h.stats.Hits++
		h.stats.STTHits++
		done := h.sramBank.Access(readDone, true)
		h.stats.SRAMWrites++
		return AccessResult{Outcome: OutcomeHit, Latency: int(done-now) + searchCycles, Bank: cache.DestSRAM}
	}

	// Hybrid: the write goes straight into the STT-MRAM bank and blocks
	// the cache for the full write latency.
	if h.sttBank.Busy(now) {
		h.chargeSTTStall(now, h.sttBank.BusyUntil())
		h.undoAccess(write)
		return AccessResult{Outcome: OutcomeStall, Bank: cache.DestSTTMRAM}
	}
	h.stt.Touch(block, now, true)
	h.stats.Hits++
	h.stats.STTHits++
	done := h.sttBank.Access(now, true)
	h.stats.STTWrites++
	h.blockedUntil = done
	// The writing warp makes progress this cycle; only [now+1, done) is
	// blocked for everyone.
	h.chargeSTTStall(now+1, done)
	return AccessResult{Outcome: OutcomeHit, Latency: int(done - now), Bank: cache.DestSTTMRAM}
}

// chargeSTTStall accounts the blocked cycles in [from, until) to the
// STT-write stall counter, skipping any prefix that has already been charged.
// Every stall-charging path goes through here so that each blocked cycle is
// counted exactly once, no matter how many warps retry inside the window or
// how blocking windows overlap.
func (h *HybridL1D) chargeSTTStall(from, until int64) {
	if from < h.sttStallChargedUntil {
		from = h.sttStallChargedUntil
	}
	if until <= from {
		return
	}
	h.stats.STTWriteStallCycles += uint64(until - from)
	h.sttStallChargedUntil = until
}

// undoAccess reverses the access counters when a request is rejected after
// the initial accounting (the SM will retry it).
func (h *HybridL1D) undoAccess(write bool) {
	h.stats.Accesses--
	if write {
		h.stats.Writes--
	} else {
		h.stats.Reads--
	}
}

// miss handles the cache-miss leg of the decision tree.
func (h *HybridL1D) miss(req mem.Request, block uint64, now int64, write bool) AccessResult {
	level, neutral, predicted := h.predict(req.PC)
	dest := cache.DestSRAM
	if predicted {
		switch {
		case level == mem.WORO && !neutral:
			// Single-use data: do not pollute either bank.
			dest = cache.DestBypass
		case level == mem.WriteMultiple && !neutral:
			dest = cache.DestSRAM
		case level == mem.WORM && !neutral:
			dest = cache.DestSTTMRAM
		default:
			// Neutral / read-intensive: prefer the STT-MRAM bank when it
			// is organised as (approximately) fully associative, because
			// capacity is what read-intensive data wants; otherwise SRAM.
			if h.cfg.ApproxFullyAssociative {
				dest = cache.DestSTTMRAM
			}
		}
	}

	if dest == cache.DestBypass {
		h.stats.Bypasses++
	} else {
		h.stats.Misses++
	}

	primary, err := h.mshr.Allocate(req, dest, level)
	if err != nil {
		h.stats.MSHRStallEvents++
		h.undoAccess(write)
		if dest == cache.DestBypass {
			h.stats.Bypasses--
		} else {
			h.stats.Misses--
		}
		return AccessResult{Outcome: OutcomeStall, Bank: dest}
	}
	if primary {
		out := req
		out.Addr = block
		out.Kind = mem.Read
		h.outgoing = append(h.outgoing, out)
		h.stats.OutgoingRequests++
		if dest == cache.DestBypass {
			return AccessResult{Outcome: OutcomeBypass, Bank: dest}
		}
		return AccessResult{Outcome: OutcomeMiss, Bank: dest}
	}
	h.stats.MergedMiss++
	return AccessResult{Outcome: OutcomeMissMerged, Bank: dest}
}

// Fill implements L1D: the MSHR's destination bits steer the returning block
// into the SRAM bank, the STT-MRAM bank (via the tag queue when present) or
// straight to the core (bypass). The returned slice is owned by the cache and
// valid until the next Fill call.
func (h *HybridL1D) Fill(block uint64, now int64) []mem.Request {
	entry, ok := h.mshr.Release(block)
	if !ok {
		return nil
	}
	h.fillBuf = append(h.fillBuf[:0], entry.Primary)
	h.fillBuf = append(h.fillBuf, entry.Merged...)
	write := entry.Primary.Kind == mem.Write
	pc := entry.Primary.PC
	dest, level := entry.Dest, entry.Level
	h.mshr.Recycle(entry)

	switch dest {
	case cache.DestBypass:
		// Nothing to allocate.
	case cache.DestSRAM:
		h.insertSRAM(block, pc, now, write, level, write)
	case cache.DestSTTMRAM:
		h.fillSTT(block, pc, now, write, level)
	}
	return h.fillBuf
}

// insertSRAM allocates a block in the SRAM bank and handles the resulting
// eviction according to the decision tree: WORO victims go to the L2, other
// victims migrate to the STT-MRAM bank (through the swap buffer when
// available, blocking the cache otherwise).
func (h *HybridL1D) insertSRAM(block, pc uint64, now int64, write bool, level mem.ReadLevel, dirty bool) {
	evicted, line := h.sram.Insert(block, pc, now, write, level)
	if dirty {
		line.Dirty = true
	}
	h.sramBank.Access(now, true)
	h.stats.SRAMWrites++
	if !evicted.Valid {
		return
	}
	h.judgePrediction(evicted)

	// Decide where the victim goes.
	evictToL2 := false
	if h.pred != nil {
		lvl := h.pred.Predict(evicted.PC)
		if lvl == mem.WORO && !h.pred.Neutral(evicted.PC) {
			evictToL2 = true
		}
	}
	if evictToL2 {
		h.stats.EvictionsToL2++
		if evicted.Dirty {
			h.writeback(evicted, now)
		}
		return
	}
	h.migrateToSTT(evicted, now)
}

// migrateToSTT moves an SRAM victim into the STT-MRAM bank.
func (h *HybridL1D) migrateToSTT(victim cache.Line, now int64) {
	h.stats.MigrationsToSTT++
	if h.nonBlocking() {
		if h.swap.Insert(victim.Block, victim.PC, victim.Dirty) &&
			h.queue.Push(TagOp{Kind: TagOpMigrate, Block: victim.Block, PC: victim.PC, Dirty: victim.Dirty, Level: victim.Level}) {
			return
		}
		// Swap buffer or tag queue full: fall back to a blocking migration.
		h.swap.Remove(victim.Block)
		h.stats.StructuralStalls++
	}
	// Blocking migration (Hybrid, or FUSE under structural back-pressure):
	// the whole cache stalls for the duration of the STT-MRAM write.
	done := h.writeSTT(victim.Block, victim.PC, now, victim.Dirty, victim.Level)
	h.blockedUntil = done
	h.chargeSTTStall(now, done)
}

// fillSTT places a block arriving from the L2 into the STT-MRAM bank.
func (h *HybridL1D) fillSTT(block, pc uint64, now int64, write bool, level mem.ReadLevel) {
	if h.nonBlocking() {
		if h.queue.Push(TagOp{Kind: TagOpFill, Block: block, PC: pc, Dirty: write, Level: level}) {
			// The fill is logically present once queued; park the data in
			// the swap buffer so intervening reads hit. If the swap buffer
			// is full the data waits only in the queue, and the lookup
			// path's tag-queue snoop keeps it visible.
			h.swap.Insert(block, pc, write)
			return
		}
		h.stats.StructuralStalls++
	}
	done := h.writeSTT(block, pc, now, write, level)
	if !h.nonBlocking() {
		h.blockedUntil = done
		h.chargeSTTStall(now, done)
	}
}

// writeSTT performs the actual STT-MRAM array write for a fill or migration,
// handling the eviction of the victim line.
func (h *HybridL1D) writeSTT(block, pc uint64, now int64, dirty bool, level mem.ReadLevel) int64 {
	evicted, line := h.stt.Insert(block, pc, now, false, level)
	line.Dirty = dirty
	done := h.sttBank.Access(now, true)
	h.stats.STTWrites++
	if h.approx != nil {
		h.approx.Register(block)
	}
	if evicted.Valid {
		h.judgePrediction(evicted)
		if h.approx != nil {
			h.approx.Unregister(evicted.Block)
		}
		h.stats.EvictionsToL2++
		if evicted.Dirty {
			h.writeback(evicted, now)
		}
	}
	return done
}

// dropQueuedOp removes a pending tag-queue operation for the block (used when
// a swap-buffer or tag-queue hit pulls the block back into SRAM before its
// migration retired). It returns the dropped operation, if one was pending.
func (h *HybridL1D) dropQueuedOp(block uint64) (TagOp, bool) {
	if h.queue.Empty() {
		return TagOp{}, false
	}
	var dropped TagOp
	found := false
	kept := h.dropScratch[:0]
	for {
		op, ok := h.queue.Pop()
		if !ok {
			break
		}
		if op.Block != block {
			kept = append(kept, op)
		} else {
			dropped = op
			found = true
		}
	}
	for _, op := range kept {
		h.queue.Push(op)
	}
	h.dropScratch = kept
	return dropped, found
}

// drainQueue retires every pending tag-queue operation immediately (the
// paper's flush-on-misprediction). The STT-MRAM bank time advances past all
// the queued writes, and the cache blocks until it is done.
func (h *HybridL1D) drainQueue(now int64) {
	var last int64 = now
	for {
		op, ok := h.queue.Pop()
		if !ok {
			break
		}
		h.swap.Remove(op.Block)
		last = h.writeSTT(op.Block, op.PC, now, op.Dirty, op.Level)
	}
	if last > now {
		h.blockedUntil = last
		h.chargeSTTStall(now, last)
	}
}

// judgePrediction audits the read-level prediction recorded on an evicted
// line against its observed lifetime (Figure 16).
func (h *HybridL1D) judgePrediction(line cache.Line) {
	if h.pred == nil || !line.Valid {
		return
	}
	outcome := predictor.Judge(line.Level, line.Level == mem.ReadIntensive, line.Writes)
	if h.DebugJudge != nil {
		h.DebugJudge[line.Level.String()+"/"+outcome.String()]++
	}
	h.stats.Accuracy.Record(outcome)
}

// writeback queues a dirty eviction toward the L2.
func (h *HybridL1D) writeback(line cache.Line, now int64) {
	h.stats.Writebacks++
	h.stats.OutgoingRequests++
	h.outgoing = append(h.outgoing, mem.Request{
		Addr:  line.Block,
		PC:    line.PC,
		Kind:  mem.Write,
		Size:  mem.BlockSize,
		Issue: now,
	})
}

// PopOutgoing implements L1D.
func (h *HybridL1D) PopOutgoing() (mem.Request, bool) {
	if h.outHead >= len(h.outgoing) {
		return mem.Request{}, false
	}
	req := h.outgoing[h.outHead]
	h.outHead++
	if h.outHead == len(h.outgoing) {
		h.outgoing = h.outgoing[:0]
		h.outHead = 0
	}
	return req, true
}

// Tick implements L1D: it retires pending tag-queue operations whenever the
// STT-MRAM bank is free, which is what makes the FUSE configurations
// non-blocking. Each retirement occupies the bank for a full STT-MRAM write,
// so at most one operation drains per write latency; the loop exists so that
// a simulator that fast-forwards over idle cycles still retires the right
// number of operations.
func (h *HybridL1D) Tick(now int64) {
	if h.queue == nil {
		return
	}
	for !h.queue.Empty() && !h.sttBank.Busy(now) {
		op, _ := h.queue.Pop()
		h.swap.Remove(op.Block)
		h.writeSTT(op.Block, op.PC, now, op.Dirty, op.Level)
	}
}

// NextInternalEventAt implements L1D: with tag-queue operations pending, the
// next internal event is the STT-MRAM bank becoming free (which lets Tick
// retire the head operation).
func (h *HybridL1D) NextInternalEventAt(now int64) int64 {
	if h.queue == nil || h.queue.Empty() {
		return -1
	}
	if !h.sttBank.Busy(now) {
		return now
	}
	return h.sttBank.BusyUntil()
}

// Reset implements L1D.
func (h *HybridL1D) Reset() {
	h.sram.Reset()
	h.stt.Reset()
	h.sramBank.Reset()
	h.sttBank.Reset()
	h.mshr.Reset()
	h.swap.Reset()
	h.queue.Reset()
	if h.approx != nil {
		h.approx.Reset()
	}
	if h.pred != nil {
		h.pred.Reset()
	}
	h.blockedUntil = 0
	h.sttStallChargedUntil = 0
	h.outgoing = h.outgoing[:0]
	h.outHead = 0
	h.stats = Stats{}
}
