package core

import (
	"fuse/internal/cache"
	"fuse/internal/config"
	"fuse/internal/mem"
	"fuse/internal/memtech"
	"fuse/internal/predictor"
)

// SimpleL1D models the single-technology baselines: the conventional L1-SRAM
// cache, the fully-associative FA-SRAM reference, the pure STT-MRAM By-NVM
// cache with dead-write bypassing, and the Oracle cache of the motivation
// study. One tag store, one technology bank, one MSHR.
//
//fuselint:smowned one L1D per SM, advanced only by that SM's worker within an epoch
type SimpleL1D struct {
	cfg   config.L1DConfig
	store *cache.TagStore
	bank  *memtech.Bank
	mshr  *cache.MSHR

	// deadWrite is non-nil only for By-NVM.
	deadWrite *predictor.DeadWritePredictor

	// outgoing is a head-indexed FIFO (see HybridL1D.outgoing).
	outgoing []mem.Request
	outHead  int
	// fillBuf is the reusable waiting-request buffer Fill returns.
	fillBuf []mem.Request
	stats   Stats
}

// newSimpleL1D builds a SimpleL1D from a pure-SRAM or pure-STT configuration.
func newSimpleL1D(cfg config.L1DConfig) *SimpleL1D {
	s := &SimpleL1D{cfg: cfg}
	if cfg.SRAMKB > 0 {
		s.store = cache.NewTagStore(cfg.SRAMSets, cfg.SRAMWays, cache.LRU)
		s.bank = memtech.NewBank("sram", cfg.SRAMTech)
	} else {
		s.store = cache.NewTagStore(cfg.STTSets, cfg.STTWays, cache.LRU)
		s.bank = memtech.NewBank("stt-mram", cfg.STTTech)
	}
	s.mshr = cache.NewMSHR(cfg.MSHREntries, cfg.MSHRMergeWidth)
	if cfg.UseDeadWriteBypass {
		s.deadWrite = predictor.NewDeadWritePredictor(predictor.Config{})
	}
	return s
}

// Kind implements L1D.
func (s *SimpleL1D) Kind() config.L1DKind { return s.cfg.Kind }

// Stats implements L1D.
func (s *SimpleL1D) Stats() *Stats { return &s.stats }

// Banks implements L1D.
func (s *SimpleL1D) Banks() []*memtech.Bank { return []*memtech.Bank{s.bank} }

// isSTT reports whether the single bank is STT-MRAM.
func (s *SimpleL1D) isSTT() bool { return s.cfg.SRAMKB == 0 }

// bankDest returns the destination-bank tag for fills.
func (s *SimpleL1D) bankDest() cache.DestBank {
	if s.isSTT() {
		return cache.DestSTTMRAM
	}
	return cache.DestSRAM
}

// recordBankAccess updates the per-bank traffic counters.
func (s *SimpleL1D) recordBankAccess(write bool) {
	if s.isSTT() {
		if write {
			s.stats.STTWrites++
		} else {
			s.stats.STTReads++
		}
	} else {
		if write {
			s.stats.SRAMWrites++
		} else {
			s.stats.SRAMReads++
		}
	}
}

// Access implements L1D.
func (s *SimpleL1D) Access(req mem.Request, now int64) AccessResult {
	if s.deadWrite != nil {
		s.deadWrite.Observe(req)
	}
	write := req.Kind == mem.Write
	block := req.BlockAddr()

	// A busy STT-MRAM bank rejects the access: this is the write penalty
	// that makes pure-NVM caches struggle on write-heavy workloads.
	if s.isSTT() && s.bank.Busy(now) {
		s.stats.STTWriteStallCycles++
		return AccessResult{Outcome: OutcomeStall, Bank: s.bankDest()}
	}

	s.stats.Accesses++
	if write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}

	if _, hit := s.store.Touch(block, now, write); hit {
		s.stats.Hits++
		if s.isSTT() {
			s.stats.STTHits++
		} else {
			s.stats.SRAMHits++
		}
		done := s.bank.Access(now, write)
		s.recordBankAccess(write)
		return AccessResult{Outcome: OutcomeHit, Latency: int(done - now), Bank: s.bankDest()}
	}

	// Miss path. By-NVM consults the dead-write predictor: a block whose
	// allocating PC produces dead writes bypasses the cache entirely.
	dest := s.bankDest()
	level := mem.ReadLevel(mem.WORM)
	if s.deadWrite != nil && s.deadWrite.PredictDead(req.PC) {
		dest = cache.DestBypass
		s.stats.Bypasses++
	} else {
		s.stats.Misses++
	}

	primary, err := s.mshr.Allocate(req, dest, level)
	if err != nil {
		s.stats.MSHRStallEvents++
		// Undo the access accounting: the SM will retry this request.
		s.stats.Accesses--
		if write {
			s.stats.Writes--
		} else {
			s.stats.Reads--
		}
		if dest == cache.DestBypass {
			s.stats.Bypasses--
		} else {
			s.stats.Misses--
		}
		return AccessResult{Outcome: OutcomeStall, Bank: dest}
	}
	if primary {
		out := req
		out.Addr = block
		out.Kind = mem.Read
		s.outgoing = append(s.outgoing, out)
		s.stats.OutgoingRequests++
		if dest == cache.DestBypass {
			return AccessResult{Outcome: OutcomeBypass, Bank: dest}
		}
		return AccessResult{Outcome: OutcomeMiss, Bank: dest}
	}
	s.stats.MergedMiss++
	return AccessResult{Outcome: OutcomeMissMerged, Bank: dest}
}

// Fill implements L1D. The returned slice is owned by the cache and valid
// until the next Fill call.
func (s *SimpleL1D) Fill(block uint64, now int64) []mem.Request {
	entry, ok := s.mshr.Release(block)
	if !ok {
		return nil
	}
	s.fillBuf = append(s.fillBuf[:0], entry.Primary)
	s.fillBuf = append(s.fillBuf, entry.Merged...)
	write := entry.Primary.Kind == mem.Write
	pc := entry.Primary.PC
	dest, level := entry.Dest, entry.Level
	s.mshr.Recycle(entry)
	if dest == cache.DestBypass {
		return s.fillBuf
	}
	evicted, _ := s.store.Insert(block, pc, now, write, level)
	s.bank.Access(now, true) // the fill itself is a bank write
	s.recordBankAccess(true)
	if evicted.Valid {
		s.stats.EvictionsToL2++
		if evicted.Dirty {
			s.writeback(evicted, now)
		}
	}
	return s.fillBuf
}

// writeback queues a dirty eviction toward the L2.
func (s *SimpleL1D) writeback(line cache.Line, now int64) {
	s.stats.Writebacks++
	s.stats.OutgoingRequests++
	s.outgoing = append(s.outgoing, mem.Request{
		Addr:  line.Block,
		PC:    line.PC,
		Kind:  mem.Write,
		Size:  mem.BlockSize,
		Issue: now,
	})
}

// PopOutgoing implements L1D.
func (s *SimpleL1D) PopOutgoing() (mem.Request, bool) {
	if s.outHead >= len(s.outgoing) {
		return mem.Request{}, false
	}
	req := s.outgoing[s.outHead]
	s.outHead++
	if s.outHead == len(s.outgoing) {
		s.outgoing = s.outgoing[:0]
		s.outHead = 0
	}
	return req, true
}

// Tick implements L1D. The simple organisations have no background machinery.
func (s *SimpleL1D) Tick(now int64) {}

// NextInternalEventAt implements L1D: no background machinery, never busy.
func (s *SimpleL1D) NextInternalEventAt(now int64) int64 { return -1 }

// Reset implements L1D.
func (s *SimpleL1D) Reset() {
	s.store.Reset()
	s.bank.Reset()
	s.mshr.Reset()
	if s.deadWrite != nil {
		s.deadWrite.Reset()
	}
	s.outgoing = s.outgoing[:0]
	s.outHead = 0
	s.stats = Stats{}
}

// BypassRatio returns the fraction of misses that were bypassed (Table II's
// By-NVM bypass ratio). It is zero for organisations without dead-write
// bypassing.
func (s *SimpleL1D) BypassRatio() float64 {
	total := s.stats.Misses + s.stats.Bypasses
	if total == 0 {
		return 0
	}
	return float64(s.stats.Bypasses) / float64(total)
}
