package core

import "testing"

func TestSwapBufferBasics(t *testing.T) {
	s := NewSwapBuffer(3)
	if s.Capacity() != 3 || s.Occupancy() != 0 || s.Full() {
		t.Fatalf("fresh swap buffer state wrong")
	}
	if !s.Insert(0x100, 0x4, true) {
		t.Fatalf("insert into empty buffer failed")
	}
	if !s.Lookup(0x100) {
		t.Errorf("lookup of parked block failed")
	}
	if s.Lookup(0x200) {
		t.Errorf("lookup of absent block succeeded")
	}
	dirty, ok := s.Remove(0x100)
	if !ok || !dirty {
		t.Errorf("remove should return the dirty bit: dirty=%v ok=%v", dirty, ok)
	}
	if _, ok := s.Remove(0x100); ok {
		t.Errorf("double remove should fail")
	}
	if s.Inserts() != 1 || s.Hits() != 1 {
		t.Errorf("counters wrong: inserts=%d hits=%d", s.Inserts(), s.Hits())
	}
}

func TestSwapBufferFull(t *testing.T) {
	s := NewSwapBuffer(2)
	s.Insert(0x100, 0, false)
	s.Insert(0x200, 0, false)
	if !s.Full() {
		t.Fatalf("buffer should be full")
	}
	if s.Insert(0x300, 0, false) {
		t.Errorf("insert into full buffer should fail")
	}
	if s.FullRejections() != 1 {
		t.Errorf("full rejection not counted")
	}
	s.Remove(0x100)
	if !s.Insert(0x300, 0, false) {
		t.Errorf("insert after remove should succeed")
	}
}

func TestSwapBufferDisabled(t *testing.T) {
	s := NewSwapBuffer(0)
	if s.Capacity() != 0 || !s.Full() {
		t.Errorf("zero-entry buffer should always be full")
	}
	if s.Insert(0x100, 0, false) {
		t.Errorf("insert into disabled buffer should fail")
	}
	neg := NewSwapBuffer(-3)
	if neg.Capacity() != 0 {
		t.Errorf("negative capacity should clamp to 0")
	}
}

func TestSwapBufferReset(t *testing.T) {
	s := NewSwapBuffer(2)
	s.Insert(0x100, 0, true)
	s.Lookup(0x100)
	s.Reset()
	if s.Occupancy() != 0 || s.Inserts() != 0 || s.Hits() != 0 || s.FullRejections() != 0 {
		t.Errorf("Reset should clear entries and counters")
	}
}

func TestTagQueueFIFO(t *testing.T) {
	q := NewTagQueue(3)
	if q.Capacity() != 3 || !q.Empty() || q.Full() {
		t.Fatalf("fresh queue state wrong")
	}
	q.Push(TagOp{Kind: TagOpFill, Block: 1})
	q.Push(TagOp{Kind: TagOpMigrate, Block: 2})
	q.Push(TagOp{Kind: TagOpFill, Block: 3})
	if !q.Full() || q.Len() != 3 {
		t.Fatalf("queue should be full with 3 ops")
	}
	if q.Push(TagOp{Block: 4}) {
		t.Errorf("push into full queue should fail")
	}
	if q.FullRejections() != 1 {
		t.Errorf("full rejection not counted")
	}
	if !q.Contains(2) || q.Contains(9) {
		t.Errorf("Contains results wrong")
	}
	if op, ok := q.Peek(); !ok || op.Block != 1 {
		t.Errorf("Peek should return the oldest op")
	}
	op, ok := q.Pop()
	if !ok || op.Block != 1 || op.Kind != TagOpFill {
		t.Errorf("Pop order wrong: %+v", op)
	}
	op, _ = q.Pop()
	if op.Block != 2 || op.Kind != TagOpMigrate {
		t.Errorf("Pop order wrong: %+v", op)
	}
	if q.Pushes() != 3 {
		t.Errorf("Pushes = %d, want 3", q.Pushes())
	}
}

func TestTagQueueFlush(t *testing.T) {
	q := NewTagQueue(4)
	q.Push(TagOp{Block: 1})
	q.Push(TagOp{Block: 2})
	drained := q.Flush()
	if len(drained) != 2 || drained[0].Block != 1 || drained[1].Block != 2 {
		t.Errorf("Flush should return ops in FIFO order: %+v", drained)
	}
	if !q.Empty() || q.Flushes() != 1 {
		t.Errorf("queue should be empty after flush")
	}
	if _, ok := q.Pop(); ok {
		t.Errorf("pop from empty queue should fail")
	}
	if _, ok := q.Peek(); ok {
		t.Errorf("peek at empty queue should fail")
	}
}

func TestTagQueueDisabledAndReset(t *testing.T) {
	q := NewTagQueue(0)
	if !q.Full() || q.Push(TagOp{Block: 1}) {
		t.Errorf("zero-capacity queue should reject pushes")
	}
	neg := NewTagQueue(-1)
	if neg.Capacity() != 0 {
		t.Errorf("negative capacity should clamp to 0")
	}
	q2 := NewTagQueue(2)
	q2.Push(TagOp{Block: 1})
	q2.Flush()
	q2.Reset()
	if q2.Pushes() != 0 || q2.Flushes() != 0 || q2.FullRejections() != 0 || !q2.Empty() {
		t.Errorf("Reset should clear counters and contents")
	}
}

func TestTagOpKindString(t *testing.T) {
	if TagOpMigrate.String() != "F" {
		t.Errorf("migrate ops are marked F in the paper")
	}
	if TagOpFill.String() != "fill" {
		t.Errorf("unexpected fill op string")
	}
}
