package core

// swapEntry is one 128-byte data register of the swap buffer.
type swapEntry struct {
	valid bool
	block uint64
	pc    uint64
	dirty bool
}

// SwapBuffer models the small register file that crosses the SRAM/STT-MRAM
// bank boundary (Section IV-A). A block evicted from SRAM is parked here so
// the SRAM way can be reused immediately; the matching "F" command in the tag
// queue later migrates the data into the STT-MRAM bank. While a block sits in
// the swap buffer it is still logically present in the L1D, so lookups snoop
// it (FUSE avoids real snooping hardware by pairing the buffer with the
// FIFO-ordered tag queue; the functional effect is the same).
//
//fuselint:smowned component of the SM-owned hybrid L1D
type SwapBuffer struct {
	entries []swapEntry

	inserts uint64
	hits    uint64
	fullRej uint64
}

// NewSwapBuffer creates a swap buffer with the given number of 128-byte
// registers (3 in the paper's design). A size of zero disables the buffer:
// every operation reports "full".
func NewSwapBuffer(size int) *SwapBuffer {
	if size < 0 {
		size = 0
	}
	return &SwapBuffer{entries: make([]swapEntry, size)}
}

// Capacity returns the number of registers.
func (s *SwapBuffer) Capacity() int { return len(s.entries) }

// Occupancy returns the number of valid registers.
func (s *SwapBuffer) Occupancy() int {
	n := 0
	for _, e := range s.entries {
		if e.valid {
			n++
		}
	}
	return n
}

// Full reports whether no register is free.
func (s *SwapBuffer) Full() bool { return s.Occupancy() == len(s.entries) }

// Insert parks an evicted block in a free register. It returns false when the
// buffer is full (the caller must then stall, exactly like the unoptimised
// Hybrid design does on every migration).
func (s *SwapBuffer) Insert(block, pc uint64, dirty bool) bool {
	for i := range s.entries {
		if !s.entries[i].valid {
			s.entries[i] = swapEntry{valid: true, block: block, pc: pc, dirty: dirty}
			s.inserts++
			return true
		}
	}
	s.fullRej++
	return false
}

// Lookup reports whether the block is currently parked in the buffer.
func (s *SwapBuffer) Lookup(block uint64) bool {
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].block == block {
			s.hits++
			return true
		}
	}
	return false
}

// Remove releases the register holding the block (when its "F" command has
// been retired into the STT-MRAM bank, or when a hit pulled it back into
// SRAM). It returns the entry's dirty bit and whether the block was present.
func (s *SwapBuffer) Remove(block uint64) (dirty bool, ok bool) {
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].block == block {
			dirty = s.entries[i].dirty
			s.entries[i] = swapEntry{}
			return dirty, true
		}
	}
	return false, false
}

// Inserts returns the number of successful insertions.
func (s *SwapBuffer) Inserts() uint64 { return s.inserts }

// Hits returns the number of lookups that found their block.
func (s *SwapBuffer) Hits() uint64 { return s.hits }

// FullRejections returns the number of insertions rejected because the buffer
// was full.
func (s *SwapBuffer) FullRejections() uint64 { return s.fullRej }

// Reset clears all registers and counters.
func (s *SwapBuffer) Reset() {
	for i := range s.entries {
		s.entries[i] = swapEntry{}
	}
	s.inserts = 0
	s.hits = 0
	s.fullRej = 0
}
