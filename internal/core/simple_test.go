package core

import (
	"testing"

	"fuse/internal/config"
	"fuse/internal/mem"
)

func readReq(block int, pc uint64, warp int) mem.Request {
	return mem.Request{Addr: uint64(block) * mem.BlockSize, PC: pc, Kind: mem.Read, Warp: warp, Size: mem.BlockSize}
}

func writeReq(block int, pc uint64, warp int) mem.Request {
	r := readReq(block, pc, warp)
	r.Kind = mem.Write
	return r
}

// fillAll drains the outgoing queue and immediately fills every read miss,
// returning the number of fills performed.
func fillAll(l1d L1D, now int64) int {
	fills := 0
	for {
		req, ok := l1d.PopOutgoing()
		if !ok {
			return fills
		}
		if req.Kind == mem.Read {
			l1d.Fill(req.BlockAddr(), now)
			fills++
		}
	}
}

func TestSimpleL1DMissThenHit(t *testing.T) {
	l1d := NewKind(config.L1SRAM)
	if l1d.Kind() != config.L1SRAM {
		t.Fatalf("Kind = %v", l1d.Kind())
	}
	res := l1d.Access(readReq(1, 0x40, 0), 0)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("first access should miss, got %v", res.Outcome)
	}
	// A second access to the same block before the fill merges.
	res = l1d.Access(readReq(1, 0x40, 1), 1)
	if res.Outcome != OutcomeMissMerged {
		t.Fatalf("second access should merge, got %v", res.Outcome)
	}
	woken := 0
	for {
		req, ok := l1d.PopOutgoing()
		if !ok {
			break
		}
		woken += len(l1d.Fill(req.BlockAddr(), 100))
	}
	if woken != 2 {
		t.Errorf("fill should wake both requests, woke %d", woken)
	}
	res = l1d.Access(readReq(1, 0x40, 0), 101)
	if res.Outcome != OutcomeHit || res.Latency < 1 {
		t.Errorf("post-fill access should hit with >=1 cycle latency, got %+v", res)
	}
	s := l1d.Stats()
	// Merged misses count as misses for miss-rate purposes and are also
	// reported separately.
	if s.Accesses != 3 || s.Hits != 1 || s.Misses != 2 || s.MergedMiss != 1 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.MissRate() <= 0 || s.HitRate() <= 0 {
		t.Errorf("rates should be positive")
	}
	if len(l1d.Banks()) != 1 {
		t.Errorf("simple cache should expose one bank")
	}
}

func TestSimpleL1DWritebackOnDirtyEviction(t *testing.T) {
	// A tiny 4-set x 2-way cache forces evictions quickly.
	small := config.L1DConfig{
		Kind:           config.L1SRAM,
		SRAMKB:         1,
		SRAMSets:       4,
		SRAMWays:       2,
		SRAMTech:       config.NewL1DConfig(config.L1SRAM).SRAMTech,
		MSHREntries:    8,
		MSHRMergeWidth: 4,
	}
	l1d := MustNew(small)
	// Write-allocate block 0, then displace it with blocks mapping to the
	// same set (stride = number of sets).
	l1d.Access(writeReq(0, 0x40, 0), 0)
	fillAll(l1d, 1)
	for i := 1; i <= 2; i++ {
		l1d.Access(readReq(i*4, 0x80, 0), int64(i*10))
		fillAll(l1d, int64(i*10+1))
	}
	s := l1d.Stats()
	if s.Writebacks == 0 {
		t.Errorf("displacing a dirty block should produce a write-back")
	}
	if s.EvictionsToL2 == 0 {
		t.Errorf("evictions should be counted")
	}
}

func TestFASRAMHasFewerConflictMisses(t *testing.T) {
	// Blocks that collide in the 64-set L1-SRAM all fit in FA-SRAM.
	sa := NewKind(config.L1SRAM)
	fa := NewKind(config.FASRAM)
	conflicting := make([]int, 8)
	for i := range conflicting {
		conflicting[i] = 3 + 64*i
	}
	run := func(l1d L1D) (miss uint64) {
		now := int64(0)
		for round := 0; round < 6; round++ {
			for _, b := range conflicting {
				res := l1d.Access(readReq(b, 0x40, 0), now)
				if res.Outcome == OutcomeMiss {
					fillAll(l1d, now)
				}
				now += 10
			}
		}
		return l1d.Stats().Misses
	}
	missSA := run(sa)
	missFA := run(fa)
	if missFA >= missSA {
		t.Errorf("FA-SRAM should suffer fewer conflict misses: FA=%d SA=%d", missFA, missSA)
	}
}

func TestByNVMBusyBankStalls(t *testing.T) {
	l1d := NewKind(config.ByNVM)
	// Allocate a block, then write-hit it: the 5-cycle STT-MRAM write makes
	// the bank busy and the next access must stall.
	l1d.Access(readReq(1, 0x40, 0), 0)
	fillAll(l1d, 10)
	res := l1d.Access(writeReq(1, 0x44, 0), 20)
	if res.Outcome != OutcomeHit {
		t.Fatalf("write to filled block should hit, got %v", res.Outcome)
	}
	if res.Latency < 5 {
		t.Errorf("STT-MRAM write hit should take >=5 cycles, got %d", res.Latency)
	}
	res = l1d.Access(readReq(1, 0x40, 0), 21)
	if res.Outcome != OutcomeStall {
		t.Errorf("access during STT-MRAM write should stall, got %v", res.Outcome)
	}
	if l1d.Stats().STTWriteStallCycles == 0 {
		t.Errorf("STT write stalls should be counted")
	}
}

func TestByNVMDeadWriteBypass(t *testing.T) {
	l1d := NewKind(config.ByNVM).(*SimpleL1D)
	// Train the dead-write predictor with streaming accesses from one PC on
	// a sampled warp, then check that new misses from that PC bypass.
	pc := uint64(0x1200)
	now := int64(0)
	for i := 0; i < 600; i++ {
		res := l1d.Access(readReq(10000+i, pc, 0), now)
		if res.Outcome == OutcomeStall {
			now += 10
			continue
		}
		fillAll(l1d, now+1)
		now += 10
	}
	if l1d.Stats().Bypasses == 0 {
		t.Errorf("streaming workload should eventually bypass (dead-write prediction)")
	}
	if l1d.BypassRatio() <= 0 || l1d.BypassRatio() > 1 {
		t.Errorf("bypass ratio out of range: %v", l1d.BypassRatio())
	}
}

func TestSimpleL1DMSHRStall(t *testing.T) {
	small := config.NewL1DConfig(config.L1SRAM)
	small.MSHREntries = 1
	small.MSHRMergeWidth = 0
	l1d := MustNew(small)
	if res := l1d.Access(readReq(1, 0x40, 0), 0); res.Outcome != OutcomeMiss {
		t.Fatalf("first miss expected")
	}
	// Second miss to a different block: MSHR is full.
	if res := l1d.Access(readReq(2, 0x40, 0), 1); res.Outcome != OutcomeStall {
		t.Errorf("expected MSHR stall, got %v", res.Outcome)
	}
	if l1d.Stats().MSHRStallEvents == 0 {
		t.Errorf("MSHR stalls should be counted")
	}
	// Stats must not double-count the rejected access.
	if l1d.Stats().Accesses != 1 {
		t.Errorf("rejected access should not be counted, accesses=%d", l1d.Stats().Accesses)
	}
}

func TestSimpleL1DFillUnknownBlock(t *testing.T) {
	l1d := NewKind(config.L1SRAM)
	if woken := l1d.Fill(0x12345680, 5); len(woken) != 0 {
		t.Errorf("fill of unknown block should wake nobody")
	}
}

func TestSimpleL1DResetAndTick(t *testing.T) {
	l1d := NewKind(config.ByNVM)
	l1d.Access(readReq(1, 0x40, 0), 0)
	l1d.Tick(1) // no-op, must not panic
	l1d.Reset()
	s := l1d.Stats()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("Reset should clear stats")
	}
	if _, ok := l1d.PopOutgoing(); ok {
		t.Errorf("Reset should clear the outgoing queue")
	}
	for _, b := range l1d.Banks() {
		if b.Reads() != 0 || b.Writes() != 0 {
			t.Errorf("Reset should clear bank counters")
		}
	}
}

func TestOutcomeString(t *testing.T) {
	outcomes := map[AccessOutcome]string{
		OutcomeHit:        "hit",
		OutcomeMiss:       "miss",
		OutcomeMissMerged: "miss-merged",
		OutcomeBypass:     "bypass",
		OutcomeStall:      "stall",
	}
	for o, s := range outcomes {
		if o.String() != s {
			t.Errorf("outcome %d string = %q, want %q", o, o.String(), s)
		}
	}
	if AccessOutcome(99).String() != "unknown" {
		t.Errorf("unknown outcome should render as unknown")
	}
	var st Stats
	if st.MissRate() != 0 || st.HitRate() != 0 || st.TotalStallCycles() != 0 {
		t.Errorf("zero stats should report zero rates")
	}
}

func TestFactory(t *testing.T) {
	for _, kind := range config.AllL1DKinds {
		l1d, err := New(config.NewL1DConfig(kind))
		if err != nil {
			t.Errorf("New(%v): %v", kind, err)
			continue
		}
		if l1d.Kind() != kind {
			t.Errorf("New(%v).Kind() = %v", kind, l1d.Kind())
		}
	}
	if _, err := New(config.L1DConfig{}); err == nil {
		t.Errorf("invalid config should fail")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustNew should panic on invalid config")
		}
	}()
	MustNew(config.L1DConfig{})
}
