package core

import (
	"fmt"

	"fuse/internal/config"
)

// New constructs the L1D cache described by the configuration. It returns an
// error if the configuration fails validation.
func New(cfg config.L1DConfig) (L1D, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	switch cfg.Kind {
	case config.L1SRAM, config.FASRAM, config.ByNVM:
		return newSimpleL1D(cfg), nil
	case config.Hybrid, config.BaseFUSE, config.FAFUSE, config.DyFUSE:
		return newHybridL1D(cfg), nil
	default:
		return nil, fmt.Errorf("core: unsupported L1D kind %v", cfg.Kind)
	}
}

// MustNew is New but panics on error; convenient for tests and examples where
// the configuration is a compile-time constant.
func MustNew(cfg config.L1DConfig) L1D {
	l1d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return l1d
}

// NewKind builds the Table I configuration for the given kind and constructs
// the corresponding cache.
func NewKind(kind config.L1DKind) L1D {
	return MustNew(config.NewL1DConfig(kind))
}
