package core

import (
	"fuse/internal/cbf"
)

// ApproxLogic is the associativity-approximation logic of Section III-B: it
// lets the STT-MRAM bank behave like a fully-associative cache while using
// only a handful of parallel tag comparators. The whole tag array is
// partitioned into regions, each guarded by a counting Bloom filter; a
// membership test narrows the search to one region, which the polling logic
// then scans with `comparators` parallel comparators per cycle.
//
//fuselint:smowned component of the SM-owned hybrid L1D
type ApproxLogic struct {
	filters     *cbf.NVMCBF
	comparators int
	regionTags  int

	searches      uint64
	searchCycles  uint64
	falseSearches uint64
	//fuselint:internalstat negative-check volume is an approx-logic diagnostic; the figures consume searches/falseSearches instead
	negativeChecks uint64
}

// NewApproxLogic builds the approximation logic for an STT-MRAM bank holding
// `blocks` lines, with `cbfCount` counting Bloom filters of `cbfSlots`
// counters each, `hashes` hash functions and `comparators` parallel tag
// comparators.
func NewApproxLogic(blocks, cbfCount, cbfSlots, hashes, comparators int) *ApproxLogic {
	if comparators <= 0 {
		comparators = 1
	}
	if cbfCount <= 0 {
		cbfCount = 1
	}
	region := blocks / cbfCount
	if region <= 0 {
		region = 1
	}
	return &ApproxLogic{
		filters:     cbf.NewNVMCBF(cbfCount, cbfSlots, hashes),
		comparators: comparators,
		regionTags:  region,
	}
}

// Register records that a block now resides in the STT-MRAM bank.
func (a *ApproxLogic) Register(block uint64) { a.filters.Insert(block) }

// Unregister records that a block left the STT-MRAM bank.
func (a *ApproxLogic) Unregister(block uint64) { a.filters.Remove(block) }

// searchIterations returns how many polling cycles are needed to scan one
// region with the available comparators.
func (a *ApproxLogic) searchIterations() int {
	iters := (a.regionTags + a.comparators - 1) / a.comparators
	if iters < 1 {
		iters = 1
	}
	return iters
}

// Lookup models a tag search for the block. It returns:
//
//	mayHit  - whether the tag array must actually be consulted (CBF positive)
//	cycles  - the number of cycles the search occupies the approximation logic
//
// A CBF-negative result needs only the single-cycle membership test. A
// CBF-positive result costs the test plus the polling iterations over the
// narrowed region; if the positive was false (the block is not actually
// present), the polling logic wastes those iterations, which is exactly the
// cost the paper's Figure 20 sensitivity study quantifies.
func (a *ApproxLogic) Lookup(block uint64, actuallyPresent bool) (mayHit bool, cycles int) {
	a.searches++
	positive, _ := a.filters.Test(block)
	cycles = a.filters.TestLatency
	if !positive {
		a.negativeChecks++
		a.searchCycles += uint64(cycles)
		return false, cycles
	}
	cycles += a.searchIterations()
	if !actuallyPresent {
		a.falseSearches++
		// The polling logic exhausts the region before concluding a miss.
		cycles += a.searchIterations()
	}
	a.searchCycles += uint64(cycles)
	return true, cycles
}

// FalsePositiveRate returns the aggregate CBF false-positive rate.
func (a *ApproxLogic) FalsePositiveRate() float64 { return a.filters.FalsePositiveRate() }

// AverageSearchCycles returns the mean number of cycles per tag search.
func (a *ApproxLogic) AverageSearchCycles() float64 {
	if a.searches == 0 {
		return 0
	}
	return float64(a.searchCycles) / float64(a.searches)
}

// Searches returns the number of Lookup calls.
func (a *ApproxLogic) Searches() uint64 { return a.searches }

// SearchCycles returns the total cycles spent searching tags.
func (a *ApproxLogic) SearchCycles() uint64 { return a.searchCycles }

// WastedSearches returns the number of searches triggered by CBF false
// positives.
func (a *ApproxLogic) WastedSearches() uint64 { return a.falseSearches }

// Filters exposes the underlying NVM-CBF array (for area accounting).
func (a *ApproxLogic) Filters() *cbf.NVMCBF { return a.filters }

// Reset clears the filters and counters.
func (a *ApproxLogic) Reset() {
	a.filters.Reset()
	a.searches = 0
	a.searchCycles = 0
	a.falseSearches = 0
	a.negativeChecks = 0
}
