package core

import "testing"

func TestApproxLogicNegativeFastPath(t *testing.T) {
	a := NewApproxLogic(512, 128, 128, 3, 4)
	mayHit, cycles := a.Lookup(0x1000, false)
	if mayHit {
		t.Errorf("empty filter should answer definitely-absent")
	}
	if cycles != 1 {
		t.Errorf("negative check should cost one cycle, got %d", cycles)
	}
	if a.Searches() != 1 || a.SearchCycles() != 1 {
		t.Errorf("search accounting wrong")
	}
}

func TestApproxLogicPositiveSearch(t *testing.T) {
	a := NewApproxLogic(512, 128, 128, 3, 4)
	a.Register(0x2000)
	mayHit, cycles := a.Lookup(0x2000, true)
	if !mayHit {
		t.Fatalf("registered block should test positive")
	}
	// 512 blocks / 128 CBFs = 4 tags per region, 4 comparators -> 1
	// iteration + 1 test cycle = 2 cycles, matching the paper's "1 or 2
	// cycles" observation.
	if cycles != 2 {
		t.Errorf("positive search should cost 2 cycles with the paper configuration, got %d", cycles)
	}
	if a.AverageSearchCycles() <= 0 {
		t.Errorf("average search cycles should be positive")
	}
}

func TestApproxLogicUnregister(t *testing.T) {
	a := NewApproxLogic(512, 128, 128, 3, 4)
	a.Register(0x3000)
	a.Unregister(0x3000)
	mayHit, _ := a.Lookup(0x3000, false)
	if mayHit {
		t.Errorf("unregistered block should test negative (no other blocks present)")
	}
}

func TestApproxLogicFalsePositiveCost(t *testing.T) {
	// With a single tiny CBF, lookups of absent blocks while many blocks are
	// registered will often be false positives, and those searches cost the
	// full polling penalty.
	a := NewApproxLogic(64, 1, 8, 1, 4)
	for i := 0; i < 64; i++ {
		a.Register(uint64(0x4000 + i*128))
	}
	sawExpensive := false
	for i := 0; i < 200; i++ {
		block := uint64(0x90000 + i*128)
		mayHit, cycles := a.Lookup(block, false)
		if mayHit && cycles > 2 {
			sawExpensive = true
		}
	}
	if !sawExpensive {
		t.Errorf("expected at least one false-positive search with the saturated filter")
	}
	if a.WastedSearches() == 0 {
		t.Errorf("wasted searches should be counted")
	}
	if a.FalsePositiveRate() <= 0 {
		t.Errorf("false positive rate should be positive")
	}
}

func TestApproxLogicClampsConfiguration(t *testing.T) {
	a := NewApproxLogic(0, 0, 0, 0, 0)
	if a.searchIterations() < 1 {
		t.Errorf("search iterations should be at least 1")
	}
	mayHit, cycles := a.Lookup(1, false)
	if mayHit || cycles < 1 {
		t.Errorf("clamped logic should still answer lookups")
	}
	if a.Filters() == nil {
		t.Errorf("filters should be accessible")
	}
}

func TestApproxLogicReset(t *testing.T) {
	a := NewApproxLogic(512, 128, 128, 3, 4)
	a.Register(0x5000)
	a.Lookup(0x5000, true)
	a.Reset()
	if a.Searches() != 0 || a.SearchCycles() != 0 || a.WastedSearches() != 0 {
		t.Errorf("Reset should clear counters")
	}
	if mayHit, _ := a.Lookup(0x5000, false); mayHit {
		t.Errorf("Reset should clear registered blocks")
	}
}
