// Package memtech models the circuit-level characteristics of the on-chip
// memory technologies the paper compares: SRAM, STT-MRAM and (for the
// discussion section) eDRAM. Each technology is described by access
// latencies, per-access dynamic energies, leakage power and cell area, with
// the default values taken from Table I of the paper and its cited sources
// (CACTI 6.5 and NVSim).
package memtech

import (
	"errors"
	"fmt"
)

// Technology identifies an on-chip memory technology.
type Technology uint8

const (
	// SRAM is the conventional six-transistor cell technology.
	SRAM Technology = iota
	// STTMRAM is spin-transfer torque magnetic RAM (1T-1MTJ cell).
	STTMRAM
	// EDRAM is embedded DRAM, considered and rejected in the paper's
	// discussion section because of its refresh overhead and larger cell.
	EDRAM
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case SRAM:
		return "SRAM"
	case STTMRAM:
		return "STT-MRAM"
	case EDRAM:
		return "eDRAM"
	default:
		return fmt.Sprintf("Technology(%d)", uint8(t))
	}
}

// Params captures the architectural parameters of a memory technology at a
// given bank size. Latencies are in L1D cache cycles, energies in nano-joules
// per 128-byte access, leakage in milliwatts for the configured bank, and
// cell area in F^2 (square feature sizes).
type Params struct {
	Tech Technology
	// ReadLatency is the bank read latency in cycles.
	ReadLatency int
	// WriteLatency is the bank write latency in cycles. For STT-MRAM it is
	// several times the read latency because the MTJ free layer must be
	// physically rotated.
	WriteLatency int
	// ReadEnergy is the dynamic energy of one 128-byte read in nJ.
	ReadEnergy float64
	// WriteEnergy is the dynamic energy of one 128-byte write in nJ.
	WriteEnergy float64
	// LeakagePower is the static power of the bank in mW.
	LeakagePower float64
	// CellArea is the area of a single bit cell in F^2.
	CellArea float64
	// RefreshIntervalUS is the refresh period in microseconds; zero means
	// the technology does not need refresh (SRAM, STT-MRAM).
	RefreshIntervalUS float64
}

// Validate reports whether the parameter set is internally consistent.
func (p *Params) Validate() error {
	if p.ReadLatency <= 0 || p.WriteLatency <= 0 {
		return errors.New("memtech: latencies must be positive")
	}
	if p.ReadEnergy < 0 || p.WriteEnergy < 0 || p.LeakagePower < 0 {
		return errors.New("memtech: energies and leakage must be non-negative")
	}
	if p.CellArea <= 0 {
		return errors.New("memtech: cell area must be positive")
	}
	if p.RefreshIntervalUS < 0 {
		return errors.New("memtech: refresh interval must be non-negative")
	}
	return nil
}

// Default technology parameter constructors. The SRAM and STT-MRAM numbers
// follow Table I of the paper; leakage scales linearly with capacity from the
// table's 32 KB SRAM (58 mW) and 64 KB STT-MRAM (2.4 mW) reference points.

// SRAMLeakagePerKB is the SRAM leakage power in mW per KB (Table I: 58 mW for 32 KB).
const SRAMLeakagePerKB = 58.0 / 32.0

// STTMRAMLeakagePerKB is the STT-MRAM leakage power in mW per KB (Table I: 2.4 mW for 64 KB).
const STTMRAMLeakagePerKB = 2.4 / 64.0

// EDRAMLeakagePerKB is an eDRAM leakage estimate in mW per KB.
const EDRAMLeakagePerKB = 0.9 / 32.0

// SRAMParams returns the SRAM parameter set for a bank of the given capacity
// in kilobytes.
func SRAMParams(capacityKB int) Params {
	return Params{
		Tech:         SRAM,
		ReadLatency:  1,
		WriteLatency: 1,
		ReadEnergy:   0.15,
		WriteEnergy:  0.12,
		LeakagePower: SRAMLeakagePerKB * float64(capacityKB),
		CellArea:     140,
	}
}

// SmallSRAMParams returns the parameter set of the reduced SRAM bank used
// inside the hybrid FUSE configurations (Table I lists 0.09/0.07 nJ for the
// 16 KB SRAM bank because the smaller array has shorter bit lines).
func SmallSRAMParams(capacityKB int) Params {
	p := SRAMParams(capacityKB)
	p.ReadEnergy = 0.09
	p.WriteEnergy = 0.07
	p.LeakagePower = 36.0 / 16.0 * float64(capacityKB)
	return p
}

// STTMRAMParams returns the STT-MRAM parameter set for a bank of the given
// capacity in kilobytes, as used by the hybrid FUSE configurations.
func STTMRAMParams(capacityKB int) Params {
	return Params{
		Tech:         STTMRAM,
		ReadLatency:  1,
		WriteLatency: 5,
		ReadEnergy:   0.26,
		WriteEnergy:  2.4,
		LeakagePower: STTMRAMLeakagePerKB * float64(capacityKB),
		CellArea:     36,
	}
}

// PureSTTMRAMParams returns the parameter set of the large monolithic
// STT-MRAM cache used by the By-NVM baseline (Table I: 1.2/2.9 nJ for the
// 128 KB array).
func PureSTTMRAMParams(capacityKB int) Params {
	p := STTMRAMParams(capacityKB)
	p.ReadEnergy = 1.2
	p.WriteEnergy = 2.9
	p.LeakagePower = 2.8 / 128.0 * float64(capacityKB)
	return p
}

// EDRAMParams returns an embedded-DRAM parameter set used only by the
// discussion-section comparison.
func EDRAMParams(capacityKB int) Params {
	return Params{
		Tech:              EDRAM,
		ReadLatency:       2,
		WriteLatency:      2,
		ReadEnergy:        0.20,
		WriteEnergy:       0.20,
		LeakagePower:      EDRAMLeakagePerKB * float64(capacityKB),
		CellArea:          80,
		RefreshIntervalUS: 40,
	}
}

// DensityRelativeToSRAM returns how many bits of this technology fit in the
// area of one SRAM bit (SRAM cell area / this cell area).
func (p *Params) DensityRelativeToSRAM() float64 {
	return 140.0 / p.CellArea
}

// CapacityForArea returns the capacity (in KB) achievable with this
// technology in the silicon area occupied by an SRAM array of sramKB
// kilobytes. This is how the paper derives the "4X larger L1D under the same
// area budget" argument.
func (p *Params) CapacityForArea(sramKB int) int {
	return int(float64(sramKB) * p.DensityRelativeToSRAM())
}

// AccessLatency returns the latency in cycles of the given access kind.
func (p *Params) AccessLatency(write bool) int {
	if write {
		return p.WriteLatency
	}
	return p.ReadLatency
}

// AccessEnergy returns the dynamic energy (nJ) of the given access kind.
func (p *Params) AccessEnergy(write bool) float64 {
	if write {
		return p.WriteEnergy
	}
	return p.ReadEnergy
}

// Bank is a stateful model of a single memory bank: it tracks when the bank
// becomes free again after an access so that callers can model bank
// conflicts, and it accumulates access counts for the energy model.
//
//fuselint:smowned banks model the SM-owned L1D arrays; the shared DRAM path runs in the serial phase
type Bank struct {
	Params Params
	// Name is a human-readable identifier used in reports.
	Name string

	busyUntil int64
	reads     uint64
	writes    uint64
}

// NewBank creates a bank with the given name and technology parameters.
func NewBank(name string, p Params) *Bank {
	return &Bank{Name: name, Params: p}
}

// BusyUntil returns the cycle at which the bank finishes its current
// operation; the bank is idle if BusyUntil <= now.
func (b *Bank) BusyUntil() int64 { return b.busyUntil }

// Busy reports whether the bank is occupied at the given cycle.
func (b *Bank) Busy(now int64) bool { return b.busyUntil > now }

// Access starts a read or write at cycle now. It returns the cycle at which
// the data is available (reads) or the write completes. If the bank is busy
// the operation is serialised after the current one.
func (b *Bank) Access(now int64, write bool) int64 {
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	lat := int64(b.Params.AccessLatency(write))
	b.busyUntil = start + lat
	if write {
		b.writes++
	} else {
		b.reads++
	}
	return b.busyUntil
}

// Reads returns the number of read accesses performed on the bank.
func (b *Bank) Reads() uint64 { return b.reads }

// Writes returns the number of write accesses performed on the bank.
func (b *Bank) Writes() uint64 { return b.writes }

// DynamicEnergy returns the total dynamic energy (nJ) consumed by the bank so
// far.
func (b *Bank) DynamicEnergy() float64 {
	return float64(b.reads)*b.Params.ReadEnergy + float64(b.writes)*b.Params.WriteEnergy
}

// LeakageEnergy returns the leakage energy (nJ) dissipated over the given
// number of cycles at the given clock frequency (in MHz).
func (b *Bank) LeakageEnergy(cycles int64, clockMHz float64) float64 {
	if clockMHz <= 0 {
		return 0
	}
	seconds := float64(cycles) / (clockMHz * 1e6)
	// mW * s = mJ; convert to nJ.
	return b.Params.LeakagePower * seconds * 1e6
}

// Reset clears the bank's occupancy and access counters.
func (b *Bank) Reset() {
	b.busyUntil = 0
	b.reads = 0
	b.writes = 0
}
