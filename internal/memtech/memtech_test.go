package memtech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTechnologyString(t *testing.T) {
	if SRAM.String() != "SRAM" || STTMRAM.String() != "STT-MRAM" || EDRAM.String() != "eDRAM" {
		t.Errorf("unexpected technology strings: %v %v %v", SRAM, STTMRAM, EDRAM)
	}
	if Technology(9).String() != "Technology(9)" {
		t.Errorf("unknown technology string: %v", Technology(9))
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	sets := []Params{
		SRAMParams(32),
		SmallSRAMParams(16),
		STTMRAMParams(64),
		PureSTTMRAMParams(128),
		EDRAMParams(32),
	}
	for _, p := range sets {
		if err := p.Validate(); err != nil {
			t.Errorf("%v params invalid: %v", p.Tech, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{ReadLatency: 0, WriteLatency: 1, CellArea: 1},
		{ReadLatency: 1, WriteLatency: 1, CellArea: 0},
		{ReadLatency: 1, WriteLatency: 1, CellArea: 1, ReadEnergy: -1},
		{ReadLatency: 1, WriteLatency: 1, CellArea: 1, RefreshIntervalUS: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSTTMRAMWritePenalty(t *testing.T) {
	s := SRAMParams(32)
	m := STTMRAMParams(64)
	if m.WriteLatency != 5*s.WriteLatency {
		t.Errorf("STT-MRAM write latency %d should be 5x SRAM %d (paper Section I)", m.WriteLatency, s.WriteLatency)
	}
	if m.ReadLatency != s.ReadLatency {
		t.Errorf("STT-MRAM read latency should match SRAM: %d vs %d", m.ReadLatency, s.ReadLatency)
	}
	if m.WriteEnergy <= s.WriteEnergy {
		t.Errorf("STT-MRAM write energy should exceed SRAM write energy")
	}
}

func TestDensityRelativeToSRAM(t *testing.T) {
	m := STTMRAMParams(64)
	d := m.DensityRelativeToSRAM()
	// 140F^2 / 36F^2 ~= 3.9, i.e. "about 4X denser" per the paper.
	if d < 3.5 || d > 4.5 {
		t.Errorf("STT-MRAM density relative to SRAM = %v, want ~4", d)
	}
	if got := m.CapacityForArea(32); got < 112 || got > 144 {
		t.Errorf("CapacityForArea(32KB SRAM) = %d KB, want ~128 KB", got)
	}
	s := SRAMParams(32)
	if s.DensityRelativeToSRAM() != 1 {
		t.Errorf("SRAM density relative to itself should be 1")
	}
}

func TestLeakageScalesWithCapacity(t *testing.T) {
	p32 := SRAMParams(32)
	p16 := SRAMParams(16)
	if math.Abs(p32.LeakagePower-2*p16.LeakagePower) > 1e-9 {
		t.Errorf("SRAM leakage should scale linearly: %v vs %v", p32.LeakagePower, p16.LeakagePower)
	}
	if math.Abs(p32.LeakagePower-58) > 1e-9 {
		t.Errorf("32KB SRAM leakage = %v mW, want 58 (Table I)", p32.LeakagePower)
	}
	stt := STTMRAMParams(64)
	if math.Abs(stt.LeakagePower-2.4) > 1e-9 {
		t.Errorf("64KB STT-MRAM leakage = %v mW, want 2.4 (Table I)", stt.LeakagePower)
	}
	if stt.LeakagePower >= SRAMParams(64).LeakagePower {
		t.Errorf("STT-MRAM leakage should be far below SRAM leakage")
	}
}

func TestAccessHelpers(t *testing.T) {
	p := STTMRAMParams(64)
	if p.AccessLatency(false) != p.ReadLatency || p.AccessLatency(true) != p.WriteLatency {
		t.Errorf("AccessLatency mismatch")
	}
	if p.AccessEnergy(false) != p.ReadEnergy || p.AccessEnergy(true) != p.WriteEnergy {
		t.Errorf("AccessEnergy mismatch")
	}
}

func TestBankSerialisesAccesses(t *testing.T) {
	b := NewBank("stt", STTMRAMParams(64))
	done1 := b.Access(0, true) // 5-cycle write
	if done1 != 5 {
		t.Errorf("first write done at %d, want 5", done1)
	}
	if !b.Busy(3) {
		t.Errorf("bank should be busy at cycle 3")
	}
	if b.Busy(5) {
		t.Errorf("bank should be free at cycle 5")
	}
	// A read issued while the write is in flight is serialised behind it.
	done2 := b.Access(2, false)
	if done2 != 6 {
		t.Errorf("read behind write done at %d, want 6", done2)
	}
	if b.Reads() != 1 || b.Writes() != 1 {
		t.Errorf("access counters = %d reads %d writes, want 1/1", b.Reads(), b.Writes())
	}
	if b.BusyUntil() != 6 {
		t.Errorf("BusyUntil = %d, want 6", b.BusyUntil())
	}
}

func TestBankEnergyAccounting(t *testing.T) {
	b := NewBank("sram", SRAMParams(32))
	b.Access(0, false)
	b.Access(1, true)
	want := 0.15 + 0.12
	if math.Abs(b.DynamicEnergy()-want) > 1e-9 {
		t.Errorf("DynamicEnergy = %v, want %v", b.DynamicEnergy(), want)
	}
	// 1.4 GHz clock, 1.4e9 cycles = 1 second -> 58 mW * 1 s = 58 mJ = 5.8e7 nJ.
	e := b.LeakageEnergy(1_400_000_000, 1400)
	if math.Abs(e-5.8e7) > 1 {
		t.Errorf("LeakageEnergy = %v, want 5.8e7", e)
	}
	if b.LeakageEnergy(100, 0) != 0 {
		t.Errorf("zero clock should give zero leakage")
	}
	b.Reset()
	if b.Reads() != 0 || b.Writes() != 0 || b.BusyUntil() != 0 {
		t.Errorf("Reset did not clear bank state")
	}
}

func TestBankMonotonicCompletion(t *testing.T) {
	prop := func(gaps []uint8, writes []bool) bool {
		b := NewBank("p", STTMRAMParams(64))
		now := int64(0)
		prev := int64(0)
		for i, g := range gaps {
			now += int64(g % 16)
			w := i < len(writes) && writes[i]
			done := b.Access(now, w)
			if done < prev || done <= now-1 {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
