// Package mem defines the basic memory-request vocabulary shared by every
// level of the simulated GPU memory hierarchy: request/response records,
// access kinds, block-address arithmetic and the read-level classification
// used throughout the FUSE design.
package mem

import "fmt"

// BlockSize is the cache block (line) size in bytes used by the whole
// hierarchy. The paper uses 128-byte blocks: one warp of 32 threads each
// touching 4 bytes produces a single 128-byte coalesced access.
const BlockSize = 128

// BlockShift is log2(BlockSize).
const BlockShift = 7

// AccessKind distinguishes reads from writes at a cache interface.
type AccessKind uint8

const (
	// Read is a load (or a cache-fill read from a lower level).
	Read AccessKind = iota
	// Write is a store (or a write-back toward a lower level).
	Write
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// ReadLevel is the paper's classification of a data block by its lifetime
// access pattern (Section III-A, Figure 6).
type ReadLevel uint8

const (
	// WriteMultiple (WM) blocks receive multiple writes during their
	// lifetime; they belong in SRAM where writes are cheap.
	WriteMultiple ReadLevel = iota
	// ReadIntensive blocks see a few writes and many reads.
	ReadIntensive
	// WORM (write-once-read-multiple) blocks are written exactly once and
	// then only read; they are the ideal tenants of the STT-MRAM bank.
	WORM
	// WORO (write-once-read-once) blocks are touched once and never
	// re-referenced; caching them is pointless, so they are evicted to (or
	// bypassed toward) the L2.
	WORO
)

// String implements fmt.Stringer.
func (l ReadLevel) String() string {
	switch l {
	case WriteMultiple:
		return "WM"
	case ReadIntensive:
		return "read-intensive"
	case WORM:
		return "WORM"
	case WORO:
		return "WORO"
	default:
		return fmt.Sprintf("ReadLevel(%d)", uint8(l))
	}
}

// ReadLevelCount is the number of distinct read levels.
const ReadLevelCount = 4

// Request is a single memory reference as seen by a cache or memory
// controller. Addresses are byte addresses; most components operate on the
// block address (Addr >> BlockShift).
type Request struct {
	// Addr is the byte address of the access.
	Addr uint64
	// PC is the program counter of the load/store instruction that issued
	// the access. The read-level predictor indexes its tables by a partial
	// PC ("signature").
	PC uint64
	// Kind says whether this is a read or a write.
	Kind AccessKind
	// Size is the access size in bytes (after coalescing, usually 128).
	Size int
	// SM identifies the streaming multiprocessor that issued the request.
	SM int
	// Warp identifies the warp within the SM.
	Warp int
	// Issue is the simulation cycle at which the request entered the
	// memory system (used for latency accounting).
	Issue int64
	// ID is a monotonically increasing identifier assigned by the issuer;
	// it lets responses be matched back to the waiting warp.
	ID uint64
}

// BlockAddr returns the block-aligned address of the request.
func (r Request) BlockAddr() uint64 { return BlockAlign(r.Addr) }

// BlockAlign rounds a byte address down to its containing block.
func BlockAlign(addr uint64) uint64 { return addr &^ (BlockSize - 1) }

// BlockIndex returns the block number (address divided by the block size).
func BlockIndex(addr uint64) uint64 { return addr >> BlockShift }

// Response is the reply delivered when a miss has been serviced by a lower
// level of the hierarchy.
type Response struct {
	// Req is the original request (the primary miss for merged requests).
	Req Request
	// Done is the cycle at which the data became available.
	Done int64
}

// Latency returns the number of cycles the request spent in the memory
// system.
func (r *Response) Latency() int64 { return r.Done - r.Req.Issue }

// String implements fmt.Stringer for debugging.
func (r Request) String() string {
	return fmt.Sprintf("%s@%#x pc=%#x sm=%d warp=%d", r.Kind, r.Addr, r.PC, r.SM, r.Warp)
}
