package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockAlign(t *testing.T) {
	cases := []struct {
		in, want uint64
	}{
		{0, 0},
		{1, 0},
		{127, 0},
		{128, 128},
		{129, 128},
		{255, 128},
		{256, 256},
		{0xdeadbeef, 0xdeadbe80},
	}
	for _, c := range cases {
		if got := BlockAlign(c.in); got != c.want {
			t.Errorf("BlockAlign(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestBlockIndex(t *testing.T) {
	if got := BlockIndex(0); got != 0 {
		t.Errorf("BlockIndex(0) = %d, want 0", got)
	}
	if got := BlockIndex(128); got != 1 {
		t.Errorf("BlockIndex(128) = %d, want 1", got)
	}
	if got := BlockIndex(128*7 + 5); got != 7 {
		t.Errorf("BlockIndex(901) = %d, want 7", got)
	}
}

func TestBlockAlignProperties(t *testing.T) {
	aligned := func(addr uint64) bool {
		a := BlockAlign(addr)
		return a%BlockSize == 0 && a <= addr && addr-a < BlockSize
	}
	if err := quick.Check(aligned, nil); err != nil {
		t.Error(err)
	}
	idempotent := func(addr uint64) bool {
		return BlockAlign(BlockAlign(addr)) == BlockAlign(addr)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Error(err)
	}
	consistent := func(addr uint64) bool {
		return BlockIndex(addr) == BlockAlign(addr)/BlockSize
	}
	if err := quick.Check(consistent, nil); err != nil {
		t.Error(err)
	}
}

func TestRequestBlockAddr(t *testing.T) {
	r := Request{Addr: 0x1234}
	if got, want := r.BlockAddr(), BlockAlign(0x1234); got != want {
		t.Errorf("BlockAddr() = %#x, want %#x", got, want)
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("unexpected AccessKind strings: %q %q", Read, Write)
	}
	if s := AccessKind(9).String(); s != "AccessKind(9)" {
		t.Errorf("unexpected string for unknown kind: %q", s)
	}
}

func TestReadLevelString(t *testing.T) {
	want := map[ReadLevel]string{
		WriteMultiple: "WM",
		ReadIntensive: "read-intensive",
		WORM:          "WORM",
		WORO:          "WORO",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("ReadLevel %d String() = %q, want %q", l, l.String(), s)
		}
	}
	if s := ReadLevel(99).String(); s != "ReadLevel(99)" {
		t.Errorf("unexpected string for unknown level: %q", s)
	}
}

func TestResponseLatency(t *testing.T) {
	resp := Response{Req: Request{Issue: 100}, Done: 450}
	if got := resp.Latency(); got != 350 {
		t.Errorf("Latency() = %d, want 350", got)
	}
}

func TestRequestString(t *testing.T) {
	r := Request{Addr: 0x80, PC: 0x400, Kind: Write, SM: 3, Warp: 11}
	want := "write@0x80 pc=0x400 sm=3 warp=11"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
