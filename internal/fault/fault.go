// Package fault is the deterministic fault-injection harness behind the
// chaos suite: a seeded Plan of per-operation failure probabilities, a
// store.Cache wrapper that drops, fails and corrupts cache traffic, and an
// executor wrapper that injects transient errors, latency spikes and panics
// into the engine's job path.
//
// Every injection decision is a pure function of (seed, operation, identity,
// per-identity sequence number) — a counter-based PRNG, not a shared stream —
// so a chaos run is reproducible regardless of goroutine interleaving: the
// Nth Get of a given key fails (or not) identically on every run with the
// same Plan. That is what lets the chaos suite assert byte-identical figure
// tables under fault load.
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fuse/internal/sim"
	"fuse/internal/store"
)

// writeRaw overwrites a file with raw bytes, creating the parent directory —
// how corrupting Puts plant undecodable entries.
func writeRaw(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Plan is a seeded fault-injection plan. The zero value injects nothing;
// probabilities are in [0, 1].
type Plan struct {
	// Seed drives every injection decision. Two runs with the same Plan
	// make identical decisions.
	Seed uint64

	// GetFailProb is the probability that a cache Get is failed (reported
	// as a miss, the only failure mode Cache.Get has).
	GetFailProb float64
	// PutDropProb is the probability that a cache Put is silently dropped.
	PutDropProb float64
	// PutCorruptProb is the probability that a cache Put is replaced by
	// garbage bytes written directly to the disk tier's entry file —
	// detectably corrupt (it cannot decode), never wrong-but-valid, so the
	// store's quarantine path is exercised instead of poisoning results.
	// Requires a Disk to corrupt; ignored otherwise.
	PutCorruptProb float64

	// ExecFailProb is the probability that a job execution is replaced by a
	// transient error.
	ExecFailProb float64
	// ExecFailLimit caps injected failures per job, so a retry budget above
	// the limit is guaranteed to reach the real execution. Zero means
	// unlimited.
	ExecFailLimit int
	// SlowProb is the probability that an execution is delayed by SlowDelay
	// before running (the delay waits on ctx.Done()).
	SlowProb float64
	// SlowDelay is the injected latency spike for slow executions.
	SlowDelay time.Duration
	// PanicOn, when non-empty, makes the first execution of the job with
	// this String() name panic — once. Retry must recover it.
	PanicOn string

	// KillAfter, when positive, fires the injector's kill hook (SetKill)
	// on the KillAfter-th execution the injector sees — once — instead of
	// running the job. The hook typically cancels the hosting worker's
	// context, so cluster chaos tests can take a worker down at a
	// deterministic point mid-batch and prove the re-dispatch path renders
	// identical bytes. Ignored when no hook is set.
	KillAfter int
}

// decide is the deterministic coin flip: true with probability prob for this
// (op, identity, seq) triple under the plan's seed.
func (p Plan) decide(op, identity string, seq uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(identity))
	x := p.Seed ^ h.Sum64()
	x += (seq + 1) * 0x9e3779b97f4a7c15
	// splitmix64 finaliser: uniform bits from the structured input.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < prob
}

// seqCounter hands out per-identity sequence numbers under a lock of its
// own, so injection decisions depend only on how many times an identity was
// seen — never on goroutine interleaving across identities.
type seqCounter struct {
	mu sync.Mutex
	n  map[string]uint64
}

// next returns the identity's next 0-based sequence number.
func (s *seqCounter) next(identity string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == nil {
		s.n = make(map[string]uint64)
	}
	seq := s.n[identity]
	s.n[identity] = seq + 1
	return seq
}

// CacheStats counts the faults a Cache injected. The counters are chaos-run
// observability — the chaos suite asserts on them through Stats() — not
// simulation statistics, so they never flow into sim.Result.
type CacheStats struct {
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	GetsFailed int64 `json:"getsFailed"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	PutsDropped int64 `json:"putsDropped"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	PutsCorrupt int64 `json:"putsCorrupted"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	GetsForwarded int64 `json:"getsForwarded"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	PutsForwarded int64 `json:"putsForwarded"`
}

// Cache wraps a store.Cache with plan-driven faults: failed Gets read as
// misses, failed Puts are dropped, and corrupting Puts write garbage bytes
// to the disk tier (when one is attached) so the quarantine path runs.
type Cache struct {
	plan  Plan
	inner store.Cache
	disk  *store.Disk // corruption target; nil disables PutCorruptProb

	getSeq seqCounter
	putSeq seqCounter

	mu    sync.Mutex
	stats CacheStats
}

// WrapCache wraps inner with the plan's store faults. disk, when non-nil, is
// the tier whose entry files corrupting Puts overwrite (pass the same *Disk
// that backs inner).
func WrapCache(plan Plan, inner store.Cache, disk *store.Disk) *Cache {
	return &Cache{plan: plan, inner: inner, disk: disk}
}

// bump applies a mutation to the stats under the lock.
func (c *Cache) bump(f func(*CacheStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get implements store.Cache: an injected failure is a miss.
func (c *Cache) Get(key string) (sim.Result, bool) {
	if c.plan.decide("get", key, c.getSeq.next(key), c.plan.GetFailProb) {
		c.bump(func(s *CacheStats) { s.GetsFailed++ })
		return sim.Result{}, false
	}
	c.bump(func(s *CacheStats) { s.GetsForwarded++ })
	return c.inner.Get(key)
}

// Put implements store.Cache: an injected drop discards the write, an
// injected corruption replaces the disk entry with undecodable bytes.
func (c *Cache) Put(key string, res sim.Result) {
	seq := c.putSeq.next(key)
	if c.plan.decide("put-drop", key, seq, c.plan.PutDropProb) {
		c.bump(func(s *CacheStats) { s.PutsDropped++ })
		return
	}
	if c.disk != nil && c.plan.decide("put-corrupt", key, seq, c.plan.PutCorruptProb) {
		if path := c.disk.EntryPath(key); path != "" {
			c.corrupt(path)
			c.bump(func(s *CacheStats) { s.PutsCorrupt++ })
			return
		}
	}
	c.bump(func(s *CacheStats) { s.PutsForwarded++ })
	c.inner.Put(key, res)
}

// corrupt writes a truncated envelope to the entry path: bytes that exist —
// so the disk tier finds and reads them — but can never decode, so the read
// path must quarantine and miss rather than return a wrong result.
func (c *Cache) corrupt(path string) {
	_ = writeRaw(path, []byte(`{"schema":2,"result":`))
}

// ExecFunc matches the engine's executor signature without importing the
// engine (the wrapper stays usable for any (ctx, job) executor).
type ExecFunc[J fmt.Stringer] func(context.Context, J) (sim.Result, error)

// InjectorStats counts the faults an Injector injected. Chaos-run
// observability (read through Stats()), never simulation statistics.
type InjectorStats struct {
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	Failures int64 `json:"failures"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	Slowed int64 `json:"slowed"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	Panics int64 `json:"panics"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	Executed int64 `json:"executed"`
	//fuselint:internalstat chaos-suite observability, read through Stats(), never a simulation stat
	Kills int64 `json:"kills"`
}

// Injector wraps a job executor with plan-driven faults: transient errors,
// latency spikes, and a one-shot panic on a named job.
type Injector[J fmt.Stringer] struct {
	plan  Plan
	inner ExecFunc[J]

	seq seqCounter

	mu       sync.Mutex
	fails    map[string]int
	panicked bool
	killed   bool
	seen     int // executions observed, for the KillAfter trigger
	kill     func()
	stats    InjectorStats
}

// NewInjector wraps inner with the plan's execution faults.
func NewInjector[J fmt.Stringer](plan Plan, inner ExecFunc[J]) *Injector[J] {
	return &Injector[J]{plan: plan, inner: inner, fails: make(map[string]int)}
}

// SetKill installs the kill hook Plan.KillAfter fires (e.g. the cancel
// function of the hosting worker's context). Set it before executions start.
func (in *Injector[J]) SetKill(hook func()) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.kill = hook
}

// takeKill consumes the one-shot kill trigger: it returns the hook exactly
// once, on the KillAfter-th execution the injector sees.
func (in *Injector[J]) takeKill() func() {
	if in.plan.KillAfter <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen++
	if in.killed || in.kill == nil || in.seen != in.plan.KillAfter {
		return nil
	}
	in.killed = true
	in.stats.Kills++
	return in.kill
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector[J]) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// shouldPanic consumes the one-shot panic trigger for the named job.
func (in *Injector[J]) shouldPanic(name string) bool {
	if in.plan.PanicOn == "" || name != in.plan.PanicOn {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.panicked {
		return false
	}
	in.panicked = true
	in.stats.Panics++
	return true
}

// shouldFail decides a transient failure for the job, honouring the
// per-job injected-failure cap.
func (in *Injector[J]) shouldFail(name string, seq uint64) bool {
	if !in.plan.decide("exec-fail", name, seq, in.plan.ExecFailProb) {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.ExecFailLimit > 0 && in.fails[name] >= in.plan.ExecFailLimit {
		return false
	}
	in.fails[name]++
	in.stats.Failures++
	return true
}

// noteSlow and noteExec bump their counters under the lock.
func (in *Injector[J]) noteSlow() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Slowed++
}
func (in *Injector[J]) noteExec() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Executed++
}

// Exec is the fault-injecting executor: pass it as the engine's Exec hook.
func (in *Injector[J]) Exec(ctx context.Context, job J) (sim.Result, error) {
	name := job.String()
	seq := in.seq.next(name)
	if hook := in.takeKill(); hook != nil {
		// The worker is "dying": fire the hook (which cancels our context)
		// and go down with it instead of producing a result. The job's
		// lease expires and another worker recomputes it.
		hook()
		<-ctx.Done() //fuselint:noctx this receive IS the ctx wait: the hook just cancelled us
		return sim.Result{}, ctx.Err()
	}
	if in.shouldPanic(name) {
		panic(fmt.Sprintf("fault: injected panic in %s", name))
	}
	if in.shouldFail(name, seq) {
		return sim.Result{}, fmt.Errorf("fault: injected transient failure in %s (attempt %d)", name, seq+1)
	}
	if in.plan.SlowDelay > 0 && in.plan.decide("exec-slow", name, seq, in.plan.SlowProb) {
		in.noteSlow()
		timer := time.NewTimer(in.plan.SlowDelay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return sim.Result{}, ctx.Err()
		}
	}
	in.noteExec()
	return in.inner(ctx, job)
}
