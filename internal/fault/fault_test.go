package fault

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"fuse/internal/sim"
	"fuse/internal/store"
)

// stringerJob is a minimal fmt.Stringer job for the injector.
type stringerJob string

func (j stringerJob) String() string { return string(j) }

func hexKey(b byte) string {
	return strings.Repeat(fmt.Sprintf("%02x", b), 32)
}

func TestDecideDeterministicAndCalibrated(t *testing.T) {
	p := Plan{Seed: 42}
	// Determinism: the same (op, key, seq) always decides the same way.
	for seq := uint64(0); seq < 100; seq++ {
		a := p.decide("get", "somekey", seq, 0.3)
		b := p.decide("get", "somekey", seq, 0.3)
		if a != b {
			t.Fatalf("seq %d: decision not deterministic", seq)
		}
	}
	// Calibration: over many trials the hit rate approaches the probability.
	hits := 0
	const trials = 20000
	for seq := uint64(0); seq < trials; seq++ {
		if p.decide("get", "calib", seq, 0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("decide rate = %.3f, want ~0.30", rate)
	}
	// Different seeds decide differently somewhere.
	q := Plan{Seed: 43}
	same := true
	for seq := uint64(0); seq < 64 && same; seq++ {
		same = p.decide("get", "k", seq, 0.5) == q.decide("get", "k", seq, 0.5)
	}
	if same {
		t.Errorf("seeds 42 and 43 made identical decisions for 64 trials")
	}
	// Degenerate probabilities.
	if p.decide("get", "k", 0, 0) {
		t.Errorf("probability 0 must never fire")
	}
	if !p.decide("get", "k", 0, 1) {
		t.Errorf("probability 1 must always fire")
	}
}

func TestCacheInjectsGetFailures(t *testing.T) {
	inner := store.NewMemory()
	key := hexKey(0x01)
	inner.Put(key, sim.Result{Workload: "A"})
	c := WrapCache(Plan{Seed: 7, GetFailProb: 0.5}, inner, nil)

	hits, misses := 0, 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(key); ok {
			hits++
		} else {
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("GetFailProb 0.5 should yield both hits and misses: %d/%d", hits, misses)
	}
	st := c.Stats()
	if st.GetsFailed != int64(misses) || st.GetsForwarded != int64(hits) {
		t.Errorf("stats %+v disagree with observed %d/%d", st, hits, misses)
	}
}

func TestCacheDropsAndCorruptsPuts(t *testing.T) {
	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := WrapCache(Plan{Seed: 3, PutDropProb: 0.4, PutCorruptProb: 0.4}, disk, disk)
	res := sim.Result{Workload: "A", Cycles: 123}

	var dropped, corrupted, stored []string
	for i := 0; i < 64; i++ {
		key := hexKey(byte(i))
		c.Put(key, res)
		if _, err := os.Stat(disk.EntryPath(key)); err != nil {
			dropped = append(dropped, key)
		} else if _, ok := disk.Get(key); ok {
			stored = append(stored, key)
		} else {
			corrupted = append(corrupted, key)
		}
	}
	if len(dropped) == 0 || len(corrupted) == 0 || len(stored) == 0 {
		t.Fatalf("want a mix of outcomes: %d dropped, %d corrupted, %d stored",
			len(dropped), len(corrupted), len(stored))
	}
	st := c.Stats()
	if st.PutsDropped != int64(len(dropped)) ||
		st.PutsCorrupt != int64(len(corrupted)) ||
		st.PutsForwarded != int64(len(stored)) {
		t.Errorf("stats %+v disagree with observed %d/%d/%d",
			st, len(dropped), len(corrupted), len(stored))
	}
	// Corrupt entries were quarantined by the probing Get above — a corrupt
	// Put is always detectable, never a wrong-but-valid result.
	if disk.Quarantined() != int64(len(corrupted)) {
		t.Errorf("Quarantined = %d, want %d", disk.Quarantined(), len(corrupted))
	}
}

func TestInjectorTransientFailuresRespectLimit(t *testing.T) {
	inner := func(_ context.Context, j stringerJob) (sim.Result, error) {
		return sim.Result{Workload: string(j)}, nil
	}
	in := NewInjector(Plan{Seed: 9, ExecFailProb: 1, ExecFailLimit: 2}, inner)

	var errs int
	for i := 0; i < 5; i++ {
		_, err := in.Exec(context.Background(), stringerJob("job"))
		if err != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Errorf("injected failures = %d, want exactly ExecFailLimit = 2", errs)
	}
	st := in.Stats()
	if st.Failures != 2 || st.Executed != 3 {
		t.Errorf("stats = %+v, want 2 failures and 3 executions", st)
	}
}

func TestInjectorPanicsOnceOnNamedJob(t *testing.T) {
	inner := func(_ context.Context, j stringerJob) (sim.Result, error) {
		return sim.Result{Workload: string(j)}, nil
	}
	in := NewInjector(Plan{PanicOn: "boom"}, inner)

	mustPanic := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		_, _ = in.Exec(context.Background(), stringerJob("boom"))
		return false
	}
	if _, err := in.Exec(context.Background(), stringerJob("other")); err != nil {
		t.Fatalf("unrelated job failed: %v", err)
	}
	if !mustPanic() {
		t.Fatalf("first execution of the named job should panic")
	}
	if mustPanic() {
		t.Fatalf("the panic is one-shot; the retry must succeed")
	}
	if in.Stats().Panics != 1 {
		t.Errorf("Panics = %d, want 1", in.Stats().Panics)
	}
}

func TestInjectorSlowDelayHonoursCancellation(t *testing.T) {
	inner := func(_ context.Context, j stringerJob) (sim.Result, error) {
		return sim.Result{}, nil
	}
	in := NewInjector(Plan{SlowProb: 1, SlowDelay: time.Hour}, inner)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := make(chan error, 1)
	go func() {
		_, err := in.Exec(ctx, stringerJob("slow"))
		start <- err
	}()
	select {
	case err := <-start:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("injected delay ignored cancellation")
	}
	if in.Stats().Slowed != 1 {
		t.Errorf("Slowed = %d, want 1", in.Stats().Slowed)
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	inner := store.NewMemory()
	c := WrapCache(Plan{}, inner, nil)
	key := hexKey(0xaa)
	c.Put(key, sim.Result{Workload: "X"})
	if _, ok := c.Get(key); !ok {
		t.Fatalf("zero plan must pass traffic through")
	}
	in := NewInjector(Plan{}, func(_ context.Context, j stringerJob) (sim.Result, error) {
		return sim.Result{Workload: string(j)}, nil
	})
	for i := 0; i < 20; i++ {
		if _, err := in.Exec(context.Background(), stringerJob("j")); err != nil {
			t.Fatalf("zero plan injected a failure: %v", err)
		}
	}
}
