package sim

import (
	"testing"

	"fuse/internal/config"
	"fuse/internal/trace"
)

// runWorkers builds a simulator for the given L1D kind/workload and runs it
// with the requested intra-simulation worker count.
func runWorkers(t *testing.T, kind config.L1DKind, workload string, opts Options, workers int) Result {
	t.Helper()
	w, err := trace.LookupWorkload(workload)
	if err != nil {
		t.Fatalf("LookupWorkload(%s): %v", workload, err)
	}
	s, err := New(config.FermiGPU(config.NewL1DConfig(kind)), w, opts)
	if err != nil {
		t.Fatalf("New(%v, %s): %v", kind, workload, err)
	}
	s.SetWorkers(workers)
	if got := s.Workers(); got != workers && !(workers < 1 && got == 1) {
		t.Fatalf("Workers() = %d after SetWorkers(%d)", got, workers)
	}
	return s.Run()
}

// TestParallelEngineMatchesSequential is the PR's headline determinism pin:
// the conservative-parallel engine must produce a Result that is identical —
// every counter, not just the cycle count — to the sequential sparse engine
// (and therefore to the dense reference engine) for every worker count.
func TestParallelEngineMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		kind     config.L1DKind
		workload string
		opts     Options
	}{
		// Memory-bound: lots of L1D misses, fills, MSHR traffic, NoC and
		// DRAM contention — the hard case for lookahead soundness.
		{"mem-bound", config.L1SRAM, "ATAX", quickOpts()},
		// Dy-FUSE adds predictor state, bypass, swap-buffer and tag-queue
		// internal events on top.
		{"mem-bound-dyfuse", config.DyFUSE, "ATAX", quickOpts()},
		// Compute-bound: long independent SM stretches, the epoch path's
		// best case, with occasional memory synchronisation.
		{"compute-bound", config.L1SRAM, "pathf", quickOpts()},
		// Truncation: MaxCycles lands mid-flight, so the engines must agree
		// on in-flight accounting, not just on completed runs.
		{"truncated", config.L1SRAM, "ATAX",
			Options{InstructionsPerWarp: 100000, Seed: 3, SMOverride: 2, MaxCycles: 3000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := mustRun(t, tc.kind, tc.workload, tc.opts)
			for _, workers := range []int{1, 2, 4, 8} {
				got := runWorkers(t, tc.kind, tc.workload, tc.opts, workers)
				if got != seq {
					t.Errorf("workers=%d diverged from sequential:\n got: %+v\nwant: %+v",
						workers, got, seq)
				}
			}
		})
	}
}

// TestParallelEngineMatchesReference closes the loop against the dense
// cycle-by-cycle engine: parallel == sparse == reference.
func TestParallelEngineMatchesReference(t *testing.T) {
	opts := quickOpts()
	w, err := trace.LookupWorkload("ATAX")
	if err != nil {
		t.Fatal(err)
	}
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	ref, err := New(gpuCfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.RunReference()
	got := runWorkers(t, config.DyFUSE, "ATAX", opts, 4)
	if got != want {
		t.Errorf("parallel(4) diverged from dense reference:\n got: %+v\nwant: %+v", got, want)
	}
}

// lowLatencyGPU shrinks every memory-side latency so the conservative
// round-trip lookahead collapses to almost nothing: epochs become degenerate
// (horizon <= t0+1) and the engine must constantly fall back to single sparse
// steps without ever mis-ordering work.
func lowLatencyGPU(kind config.L1DKind) config.GPUConfig {
	cfg := config.FermiGPU(config.NewL1DConfig(kind))
	cfg.L2LatencyCycles = 1
	cfg.NoCLatencyPerHop = 0
	cfg.NoCFlitBytes = 1024 // whole request/response in one flit
	return cfg
}

// TestParallelLookaheadOfOneCycle pins the lookahead edge case from the
// issue: with zero-hop NoC and a 1-cycle L2, the request round trip is the
// smallest the machine can express, so the epoch window is 1-2 cycles wide.
// The engine must still match the sequential result exactly.
func TestParallelLookaheadOfOneCycle(t *testing.T) {
	opts := quickOpts()
	w, err := trace.LookupWorkload("ATAX")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Result {
		s, err := New(lowLatencyGPU(config.L1SRAM), w, opts)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		return s.Run()
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != seq {
			t.Errorf("workers=%d diverged under minimal lookahead:\n got: %+v\nwant: %+v",
				workers, got, seq)
		}
	}
}

// TestParallelInternalEventOnBarrierCycle drives a write-heavy Dy-FUSE run —
// swap-buffer drains and tag-queue retirements are SM-internal events that
// can land exactly on an epoch barrier cycle. The SM must re-enter the wake
// heap at precisely the horizon and be cycled there, not skipped past it.
func TestParallelInternalEventOnBarrierCycle(t *testing.T) {
	// GEMM has the highest write pressure in Table II (APKI 136).
	opts := Options{InstructionsPerWarp: 400, Seed: 11, SMOverride: 4, MaxCycles: 2_000_000}
	for _, kind := range []config.L1DKind{config.Hybrid, config.BaseFUSE, config.DyFUSE} {
		seq := mustRun(t, kind, "GEMM", opts)
		for _, workers := range []int{2, 8} {
			if got := runWorkers(t, kind, "GEMM", opts, workers); got != seq {
				t.Errorf("%v workers=%d diverged on write-heavy run:\n got: %+v\nwant: %+v",
					kind, workers, got, seq)
			}
		}
	}
}

// TestParallelFillDuringAdvanceWouldPanic documents the always-on canary for
// the third edge case: a fill delivered to an SM that a worker has already
// advanced past the fill's cycle. The evRespAtSM handler panics if the SM's
// charged-to point has moved beyond the delivery cycle, so any lookahead bug
// trips loudly in every test above rather than silently skewing counters.
// Here we just pin that a heavily contended multi-SM run — maximum in-flight
// fills per epoch — completes without tripping it.
func TestParallelFillDuringAdvanceWouldPanic(t *testing.T) {
	opts := Options{InstructionsPerWarp: 300, Seed: 19, SMOverride: 8, MaxCycles: 4_000_000}
	seq := mustRun(t, config.L1SRAM, "MVT", opts)
	if got := runWorkers(t, config.L1SRAM, "MVT", opts, 8); got != seq {
		t.Errorf("8-SM contended run diverged:\n got: %+v\nwant: %+v", got, seq)
	}
}

// TestSetWorkersClamp pins the floor: any value below 1 selects the
// sequential engine.
func TestSetWorkersClamp(t *testing.T) {
	w, err := trace.LookupWorkload("pathf")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(config.FermiGPU(config.NewL1DConfig(config.L1SRAM)), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(-3)
	if s.Workers() != 1 {
		t.Errorf("Workers() = %d, want 1 after SetWorkers(-3)", s.Workers())
	}
}

// TestArenaReuseAcrossRuns pins the arena path: back-to-back runs through one
// arena must produce identical results to fresh simulators, for different
// configurations and with the parallel engine in the mix.
func TestArenaReuseAcrossRuns(t *testing.T) {
	arena := NewArena()
	opts := quickOpts()
	runs := []struct {
		kind     config.L1DKind
		workload string
		workers  int
	}{
		{config.L1SRAM, "ATAX", 1},
		{config.DyFUSE, "ATAX", 4},
		{config.L1SRAM, "pathf", 2},
		{config.DyFUSE, "GEMM", 1},
		{config.L1SRAM, "ATAX", 1}, // repeat of the first: exact same buffers again
	}
	for i, rc := range runs {
		want := mustRun(t, rc.kind, rc.workload, opts)
		w, err := trace.LookupWorkload(rc.workload)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewWithArena(config.FermiGPU(config.NewL1DConfig(rc.kind)), w, opts, arena)
		if err != nil {
			t.Fatalf("run %d: NewWithArena: %v", i, err)
		}
		s.SetWorkers(rc.workers)
		got := s.Run()
		s.ReleaseArena()
		if got != want {
			t.Errorf("run %d (%v/%s workers=%d) diverged through the arena:\n got: %+v\nwant: %+v",
				i, rc.kind, rc.workload, rc.workers, got, want)
		}
	}
}
