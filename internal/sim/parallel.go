package sim

// Conservative-parallel execution of one simulation (ROADMAP item 2).
//
// The sequential sparse engine already touches only the SMs that can make
// progress at each cycle, but it still interleaves them on one goroutine. The
// parallel engine exploits the latency the memory system guarantees: once a
// request leaves an SM, no response can come back for at least
//
//	rtMin = zeroLoad(request) + L2 bank latency + zeroLoad(response)
//
// cycles. SM state is strictly private between memory interactions, so every
// SM can be advanced independently — on its own goroutine — up to a shared
// conservative horizon with no cross-SM communication at all, provided the
// horizon H satisfies two bounds:
//
//  1. No pending memory-side work can deliver a fill to any SM before H
//     (computed by scanning the event heap and the armed controller tick).
//  2. No request issued by an SM *during* the epoch can be answered before H
//     (guaranteed by H <= t0 + rtMin, where t0 is the epoch start).
//
// Within the epoch each worker advances its SM exactly as the sequential
// engine would (same catch-up charging, same Cycle calls at the same cycles)
// and logs the outgoing requests it produces with their drain cycles. The
// epoch barrier is the serial commit that follows: drain records are merged
// in (cycle, SM) order — the exact order the sequential engine's per-step
// drainOutgoing would have produced — and re-played against the shared NoC,
// L2 and event heap, consuming sequence numbers in exactly the sequential
// order. Every counter, figure table and store key is therefore byte-identical
// to the sequential engine, for any worker count. TestParallelEngineMatches-
// Sequential pins this across workers 1/2/4/8, and the lookahead-violation
// panic in handleEvent is the always-on canary.

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"

	"fuse/internal/mem"
)

// SetWorkers selects how many goroutines RunContext may use to advance SMs
// inside one simulation. n <= 1 selects the sequential sparse engine. The
// worker count is an execution-resource knob only: results are byte-identical
// for every value (which is why it lives outside Options and never enters a
// result-store key). Values beyond the machine's core count are allowed —
// sizing workers to the hardware is the caller's policy (see engine.Config).
func (s *Simulator) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the worker count selected with SetWorkers (1 = sequential).
func (s *Simulator) Workers() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// epochPart is one SM's participation in an epoch: where it starts, the
// requests it produced (with their drain cycles), and how it left the epoch.
type epochPart struct {
	sm     int
	wakeAt int64

	reqs []mem.Request
	recs []drainSpan

	// next is the SM's first self-event at or after the horizon, or — when
	// finished is set — the cycle at which the SM retired its last warp.
	next     int64
	slept    bool
	finished bool
}

// drainSpan records that one SM produced reqs[off:off+n] at the given cycle.
type drainSpan struct {
	cycle  int64
	off, n int
}

// commitRec is one drain span in the epoch's global commit order.
type commitRec struct {
	cycle int64
	sm    int
	part  int
	off   int
	n     int
}

// epochTask hands one epoch's advance phase to the helper goroutines: they
// pull participant indices from the shared counter until it runs dry.
type epochTask struct {
	parts   []epochPart
	horizon int64
	next    *atomic.Int64
	wg      *sync.WaitGroup
}

// runParallel is the conservative-parallel main loop: epochs of independent
// SM advancement separated by serial commits, falling back to single sparse
// steps whenever the lookahead window is degenerate. The helper goroutines
// are spawned once per run and parked on the work channel between epochs, so
// the per-epoch dispatch cost is a few channel operations, not goroutine
// creation.
func (s *Simulator) runParallel(ctx context.Context) (Result, error) {
	opts := s.opts
	// rtMin: the minimum request round trip through an idle machine.
	// Contention, port serialisation, MSHR retries and DRAM time only ever
	// make a response later.
	rtMin := s.net.ZeroLoadLatency(opts.RequestBytes) +
		s.l2.MinResponseLatency() +
		s.net.ZeroLoadLatency(mem.BlockSize)
	zllResp := s.net.ZeroLoadLatency(mem.BlockSize)

	work := make(chan epochTask)
	defer close(work)
	for w := 0; w < s.workers-1; w++ {
		go func() {
			for task := range work {
				for {
					k := int(task.next.Add(1)) - 1
					if k >= len(task.parts) {
						break
					}
					s.advancePart(&task.parts[k], task.horizon)
				}
				task.wg.Done()
			}
		}()
	}

	var steps uint
	for s.doneSMs < len(s.sms) && s.now < opts.MaxCycles {
		if steps++; steps&0xFF == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		t := s.nextTime()
		if t < 0 || t >= opts.MaxCycles {
			s.now = opts.MaxCycles
			break
		}
		if t > s.now {
			s.now = t
		}
		if s.wake.minAt() == t && s.runEpoch(t, rtMin, zllResp, work) {
			continue
		}
		s.stepSparse()
	}
	s.settle()
	return s.collect(), nil
}

// epochHorizon computes the conservative horizon H for an epoch starting at
// t0: the earliest cycle at which any SM could possibly observe a memory
// response. Every bound errs early, never late:
//
//   - an in-flight response event arrives exactly at its scheduled cycle;
//   - a request event still travelling to the L2 cannot be answered before
//     its arrival plus the bank's minimum response latency plus the
//     zero-load response flight;
//   - the armed controller tick retires DRAM work no earlier than the tick,
//     so its fills reach an SM no earlier than tick + response flight;
//   - a request issued during the epoch (at >= t0) cannot round-trip before
//     t0 + rtMin.
func (s *Simulator) epochHorizon(t0, rtMin, zllResp int64) int64 {
	h := s.opts.MaxCycles
	if b := t0 + rtMin; b < h {
		h = b
	}
	if s.memTickAt >= 0 {
		if b := s.memTickAt + zllResp; b < h {
			h = b
		}
	}
	l2lat := s.l2.MinResponseLatency()
	for i := range s.events {
		e := &s.events[i]
		var b int64
		if e.kind == evRespAtSM {
			b = e.at
		} else {
			b = e.at + l2lat + zllResp
		}
		if b < h {
			h = b
		}
	}
	return h
}

// runEpoch attempts one epoch at t0 (== s.now == the earliest SM wake). It
// returns false when the lookahead window is degenerate — a horizon of one
// cycle or no waking SM — in which case the caller takes a sequential sparse
// step instead.
func (s *Simulator) runEpoch(t0, rtMin, zllResp int64, work chan epochTask) bool {
	horizon := s.epochHorizon(t0, rtMin, zllResp)
	if horizon <= t0+1 {
		return false
	}

	// Participants: every SM that would wake before the horizon. They are
	// removed from the wake heap for the duration of the epoch.
	due := s.wake.popDue(horizon-1, s.readyBuf[:0])
	s.readyBuf = due[:0]
	if len(due) == 0 {
		return false
	}
	slices.Sort(due)
	for len(s.parts) < len(due) {
		s.parts = append(s.parts, epochPart{})
	}
	parts := s.parts[:len(due)]
	for k, id := range due {
		p := &parts[k]
		p.sm = id
		p.wakeAt = s.wake.at[id]
		p.reqs = p.reqs[:0]
		p.recs = p.recs[:0]
		p.next = 0
		p.slept = false
		p.finished = false
	}

	// Advance phase: strictly SM-local work, safe to run on workers. Each
	// worker touches only its participant's SM, L1D, instruction source,
	// chargedTo slot and log — never the NoC, L2, event heap or clock. The
	// parked helpers are woken with one channel send each; this goroutine
	// works the counter alongside them and then waits for the stragglers.
	if helpers := min(s.workers, len(parts)) - 1; helpers > 0 {
		s.epochNext.Store(0)
		task := epochTask{parts: parts, horizon: horizon, next: &s.epochNext, wg: &s.epochWG}
		s.epochWG.Add(helpers)
		for w := 0; w < helpers; w++ {
			work <- task
		}
		for {
			k := int(s.epochNext.Add(1)) - 1
			if k >= len(parts) {
				break
			}
			s.advancePart(&parts[k], horizon)
		}
		s.epochWG.Wait()
	} else {
		for k := range parts {
			s.advancePart(&parts[k], horizon)
		}
	}

	s.commitEpoch(parts)
	return true
}

// advancePart advances one SM from its wake cycle up to (excluding) the
// horizon, exactly as the sequential engine would have: idle gaps are charged
// lazily, the SM is cycled at each of its self-event cycles, and the outgoing
// requests of each cycle are logged with their drain cycle.
//
// This is the parallel engine's worker-phase root: it runs concurrently on
// worker goroutines, so it and everything it calls — across every package it
// reaches (gpu, core, cache, cbf, memtech, predictor, trace) and through
// every interface (trace.Source, core.L1D, …) — may touch only the
// participant's own state: its SM, its chargedTo slot, its epochPart, and
// the //fuselint:smowned types each SM exclusively owns for the epoch. The
// //fuselint:serialonly fields, package-level variables and peer SMs' state
// are off limits. fuselint's phasesafe analyzer checks this whole-program:
// it walks the cross-package call graph from this root (resolving interface
// calls to every in-repo implementation) and rejects any reachable
// violation, so the guarantee is verified, not assumed.
//
//fuselint:workerphase
//fuselint:noalloc
func (s *Simulator) advancePart(p *epochPart, horizon int64) {
	sm := s.sms[p.sm]
	t := p.wakeAt
	for t < horizon {
		s.catchUpTo(p.sm, t)
		sm.Cycle(t)
		s.chargedTo[p.sm] = t + 1
		off := len(p.reqs)
		for {
			req, ok := sm.PopOutgoing()
			if !ok {
				break
			}
			p.reqs = append(p.reqs, req)
		}
		if n := len(p.reqs) - off; n > 0 {
			p.recs = append(p.recs, drainSpan{cycle: t, off: off, n: n})
		}
		if sm.Done() {
			p.finished = true
			p.next = t
			return
		}
		next := sm.NextSelfEventAt(t + 1)
		if next < 0 {
			// Every live warp is blocked on an in-flight fill: sleep until
			// a fill delivery re-inserts the SM into the wake heap.
			p.slept = true
			return
		}
		t = next
	}
	p.next = t
}

// commitEpoch is the serial epoch barrier: it re-plays the logged drains
// against the shared machine in exactly the order the sequential engine would
// have produced them. Between two drain cycles only request events and
// controller ticks can be due (responses are excluded by the horizon), and
// their handlers depend only on their own timestamps — so processing them
// batched at the next drain cycle consumes sequence numbers in the identical
// order to sequential execution.
//
//fuselint:noalloc
func (s *Simulator) commitEpoch(parts []epochPart) {
	s.commitRecs = s.commitRecs[:0]
	for k := range parts {
		p := &parts[k]
		for _, r := range p.recs {
			s.commitRecs = append(s.commitRecs, commitRec{
				cycle: r.cycle, sm: p.sm, part: k, off: r.off, n: r.n,
			})
		}
	}
	slices.SortFunc(s.commitRecs, func(a, b commitRec) int {
		if a.cycle != b.cycle {
			if a.cycle < b.cycle {
				return -1
			}
			return 1
		}
		return a.sm - b.sm // one record per (cycle, SM): never equal
	})

	cur := int64(-1)
	for _, r := range s.commitRecs {
		if r.cycle != cur {
			cur = r.cycle
			s.now = cur
			s.processEvents()
		}
		p := &parts[r.part]
		sm := s.sms[r.sm]
		for _, req := range p.reqs[r.off : r.off+r.n] {
			// Mirrors drainOutgoing's per-request body at s.now == r.cycle.
			bank := s.l2.BankFor(req.BlockAddr())
			bytes := s.opts.RequestBytes
			if req.Kind == mem.Write {
				bytes = mem.BlockSize
			}
			if req.Issue == 0 {
				req.Issue = s.now
			}
			req.SM = sm.ID
			arrive := s.net.SendRequest(sm.ID, bank, bytes, s.now)
			s.schedule(event{at: arrive, kind: evReqAtL2, sm: sm.ID, bank: bank, req: req})
		}
	}

	// Re-insert the survivors. Finished SMs leave the simulation; sleeping
	// SMs stay out of the wake heap until a fill arrives.
	finishMax := int64(-1)
	for k := range parts {
		p := &parts[k]
		switch {
		case p.finished:
			s.doneSMs++
			if p.next > finishMax {
				finishMax = p.next
			}
		case !p.slept:
			s.wake.update(p.sm, p.next)
		}
	}

	// When the epoch retired the last live SM, the sequential engine would
	// have kept stepping — and processing due events — up to the cycle of
	// the final retirement, then stopped with the clock one past it. Replay
	// that tail before the main loop sees doneSMs and exits: events due at
	// or before the last retirement are delivered (they can only be request
	// events and controller ticks, whose handlers use their own timestamps),
	// and anything later is dropped exactly as sequential would drop it.
	if s.doneSMs == len(s.sms) && finishMax >= 0 {
		if finishMax > s.now {
			s.now = finishMax
		}
		s.processEvents()
		s.now = finishMax + 1
	}
}
