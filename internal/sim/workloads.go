package sim

import "fuse/internal/trace"

// profileByName resolves a workload name through the trace package. Kept as
// a tiny indirection so the sim package has a single import point for
// workload lookup (and tests can see the same behaviour RunWorkload uses).
func profileByName(name string) (trace.Profile, bool) {
	return trace.ProfileByName(name)
}
