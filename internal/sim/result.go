package sim

import (
	"context"
	"fmt"
	"strings"

	"fuse/internal/config"
	"fuse/internal/core"
	"fuse/internal/memtech"
	"fuse/internal/predictor"
	"fuse/internal/trace"
)

// Result is the aggregate outcome of one simulation run. It contains every
// quantity the paper's figures are built from.
type Result struct {
	// Config identification.
	GPUName string
	L1DKind config.L1DKind
	// Workload is the benchmark name.
	Workload string

	// Cycles is the number of cycles the longest-running SM needed.
	Cycles int64
	// Instructions is the total number of instructions issued across SMs.
	Instructions uint64
	// IPC is instructions per cycle aggregated over all simulated SMs.
	IPC float64

	// L1D aggregate statistics (summed over SMs).
	L1D core.Stats
	// L1DMissRate is (misses+bypasses)/accesses.
	L1DMissRate float64
	// OutgoingPerSM is the mean number of outgoing memory references (misses
	// plus write-backs) each SM pushed onto the interconnect.
	OutgoingPerSM float64

	// Stall breakdown (Figure 15), in cycles summed over SMs.
	STTWriteStalls  uint64
	TagSearchStalls uint64

	// Predictor accuracy fractions (Figure 16).
	PredTrue    float64
	PredNeutral float64
	PredFalse   float64

	// Off-chip decomposition (Figure 1): the fraction of SM cycles spent
	// unable to issue while waiting for off-chip data, split into network
	// and DRAM/L2 shares.
	OffChipFraction float64
	NetworkFraction float64
	DRAMFraction    float64

	// Memory-side statistics.
	L2MissRate    float64
	L2Accesses    uint64
	L2MergedFills uint64
	L2MSHRStalls  uint64
	DRAMAccesses  uint64
	NoCRequests   uint64
	NoCResponses  uint64
	AvgFillNoC    float64
	AvgFillMemory float64

	// Memory-controller statistics (backend sweeps).
	MemBackend      string
	DRAMRowHitRate  float64
	DRAMQueueStalls uint64
	DRAMEnergyNJ    float64

	// Bank traffic for the energy model.
	SRAMReads, SRAMWrites uint64
	STTReads, STTWrites   uint64
	SimulatedSMs          int
}

// collect aggregates the per-component statistics into a Result.
func (s *Simulator) collect() Result {
	r := Result{
		GPUName:      s.gpuCfg.Name,
		L1DKind:      s.gpuCfg.L1D.Kind,
		Workload:     s.workload.Name(),
		Cycles:       s.now,
		SimulatedSMs: len(s.sms),
	}

	var acc predictor.AccuracyTracker
	var memWait, totalCycles uint64
	for _, sm := range s.sms {
		st := sm.Stats()
		r.Instructions += st.Issued
		totalCycles += st.Cycles
		memWait += st.MemWaitCycles

		ls := sm.L1D().Stats()
		r.L1D.Accesses += ls.Accesses
		r.L1D.Reads += ls.Reads
		r.L1D.Writes += ls.Writes
		r.L1D.Hits += ls.Hits
		r.L1D.SRAMHits += ls.SRAMHits
		r.L1D.STTHits += ls.STTHits
		r.L1D.SwapHits += ls.SwapHits
		r.L1D.QueueHits += ls.QueueHits
		r.L1D.Misses += ls.Misses
		r.L1D.MergedMiss += ls.MergedMiss
		r.L1D.Bypasses += ls.Bypasses
		r.L1D.STTWriteStallCycles += ls.STTWriteStallCycles
		r.L1D.TagSearchStallCycles += ls.TagSearchStallCycles
		r.L1D.MSHRStallEvents += ls.MSHRStallEvents
		r.L1D.StructuralStalls += ls.StructuralStalls
		r.L1D.SRAMReads += ls.SRAMReads
		r.L1D.SRAMWrites += ls.SRAMWrites
		r.L1D.STTReads += ls.STTReads
		r.L1D.STTWrites += ls.STTWrites
		r.L1D.MigrationsToSTT += ls.MigrationsToSTT
		r.L1D.MigrationsToSRAM += ls.MigrationsToSRAM
		r.L1D.EvictionsToL2 += ls.EvictionsToL2
		r.L1D.Writebacks += ls.Writebacks
		r.L1D.TagQueueFlushes += ls.TagQueueFlushes
		r.L1D.OutgoingRequests += ls.OutgoingRequests

		acc.True.Add(ls.Accuracy.True.Value())
		acc.False.Add(ls.Accuracy.False.Value())
		acc.Neutral.Add(ls.Accuracy.Neutral.Value())
	}
	r.L1D.Accuracy = acc
	r.L1DMissRate = r.L1D.MissRate()
	if n := len(s.sms); n > 0 {
		r.OutgoingPerSM = float64(r.L1D.OutgoingRequests) / float64(n)
	}
	r.STTWriteStalls = r.L1D.STTWriteStallCycles
	r.TagSearchStalls = r.L1D.TagSearchStallCycles
	r.PredTrue, r.PredNeutral, r.PredFalse = acc.Fractions()

	if totalCycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
		r.OffChipFraction = float64(memWait) / float64(totalCycles)
	}
	// The NoC share can go slightly negative when a run aborts at MaxCycles
	// with back-pressure waits moved to the memory share but their fills
	// still in flight; clamp rather than report a negative fraction.
	noc := max(s.nocCycles, 0)
	lat := noc + s.memCycles
	if lat > 0 {
		r.NetworkFraction = r.OffChipFraction * float64(noc) / float64(lat)
		r.DRAMFraction = r.OffChipFraction * float64(s.memCycles) / float64(lat)
	}
	if s.fills > 0 {
		r.AvgFillNoC = float64(noc) / float64(s.fills)
		r.AvgFillMemory = float64(s.memCycles) / float64(s.fills)
	}

	r.L2MissRate = s.l2.MissRate()
	r.L2Accesses = s.l2.Accesses()
	r.L2MergedFills = s.l2.MergedInFlight()
	r.L2MSHRStalls = s.l2.MSHRStalls()
	r.DRAMAccesses = s.dram.Accesses()
	r.NoCRequests, r.NoCResponses = s.net.Packets()
	r.MemBackend = s.dram.BackendName()
	r.DRAMRowHitRate = s.dram.RowHitRate()
	r.DRAMQueueStalls = s.dram.QueueStalls()
	r.DRAMEnergyNJ = s.dram.EnergyNJ()

	for _, sm := range s.sms {
		for _, b := range sm.L1D().Banks() {
			if b.Params.Tech == memtech.SRAM {
				r.SRAMReads += b.Reads()
				r.SRAMWrites += b.Writes()
			} else {
				r.STTReads += b.Reads()
				r.STTWrites += b.Writes()
			}
		}
	}
	return r
}

// SpeedupOver returns this result's IPC relative to a baseline result.
func (r Result) SpeedupOver(base Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return r.IPC / base.IPC
}

// String renders a compact human-readable report.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s on %s\n", r.GPUName, r.L1DKind, r.Workload)
	fmt.Fprintf(&b, "  cycles=%d instructions=%d IPC=%.3f\n", r.Cycles, r.Instructions, r.IPC)
	fmt.Fprintf(&b, "  L1D: accesses=%d missRate=%.3f bypasses=%d outgoing/SM=%.1f\n",
		r.L1D.Accesses, r.L1DMissRate, r.L1D.Bypasses, r.OutgoingPerSM)
	fmt.Fprintf(&b, "  stalls: sttWrite=%d tagSearch=%d mshr=%d\n",
		r.STTWriteStalls, r.TagSearchStalls, r.L1D.MSHRStallEvents)
	fmt.Fprintf(&b, "  off-chip fraction=%.2f (network %.2f, memory %.2f)\n",
		r.OffChipFraction, r.NetworkFraction, r.DRAMFraction)
	fmt.Fprintf(&b, "  L2 missRate=%.3f merged=%d mshrStalls=%d\n", r.L2MissRate, r.L2MergedFills, r.L2MSHRStalls)
	fmt.Fprintf(&b, "  DRAM[%s]: accesses=%d rowHit=%.2f queueStalls=%d energy=%.1fuJ\n",
		r.MemBackend, r.DRAMAccesses, r.DRAMRowHitRate, r.DRAMQueueStalls, r.DRAMEnergyNJ/1000)
	if r.PredTrue+r.PredFalse+r.PredNeutral > 0 {
		fmt.Fprintf(&b, "  predictor: true=%.2f neutral=%.2f false=%.2f\n", r.PredTrue, r.PredNeutral, r.PredFalse)
	}
	return b.String()
}

// RunWorkload is a convenience wrapper: build a simulator for the given L1D
// kind and workload name using the Fermi-class GPU and run it.
func RunWorkload(kind config.L1DKind, workload string, opts Options) (Result, error) {
	return RunWorkloadContext(context.Background(), kind, workload, opts)
}

// RunWorkloadContext is RunWorkload with cancellation (see RunContext). The
// name is resolved through the trace registry — builtin Table-II benchmarks
// and user-registered workloads (workload files, phased composites) alike.
func RunWorkloadContext(ctx context.Context, kind config.L1DKind, workload string, opts Options) (Result, error) {
	w, err := trace.LookupWorkload(workload)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	gpuCfg := config.FermiGPU(config.NewL1DConfig(kind))
	s, err := New(gpuCfg, w, opts)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx)
}
