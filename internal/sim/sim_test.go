package sim

import (
	"strings"
	"testing"

	"fuse/internal/config"
	"fuse/internal/trace"
)

// quickOpts keeps unit-test runs small and fast.
func quickOpts() Options {
	return Options{InstructionsPerWarp: 300, Seed: 7, SMOverride: 2, MaxCycles: 2_000_000}
}

func mustRun(t *testing.T, kind config.L1DKind, workload string, opts Options) Result {
	t.Helper()
	res, err := RunWorkload(kind, workload, opts)
	if err != nil {
		t.Fatalf("RunWorkload(%v, %s): %v", kind, workload, err)
	}
	return res
}

func TestRunCompletesAndAccountsInstructions(t *testing.T) {
	opts := quickOpts()
	res := mustRun(t, config.L1SRAM, "2DCONV", opts)
	wantInstr := uint64(opts.SMOverride) * 48 * opts.InstructionsPerWarp
	if res.Instructions != wantInstr {
		t.Errorf("Instructions = %d, want %d", res.Instructions, wantInstr)
	}
	if res.Cycles <= 0 || res.Cycles >= opts.MaxCycles {
		t.Errorf("run should finish within the cycle limit, took %d", res.Cycles)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC should be positive, got %v", res.IPC)
	}
	if res.L1D.Accesses == 0 || res.L1DMissRate <= 0 || res.L1DMissRate > 1 {
		t.Errorf("L1D stats implausible: accesses=%d missRate=%v", res.L1D.Accesses, res.L1DMissRate)
	}
	if res.SimulatedSMs != opts.SMOverride {
		t.Errorf("SimulatedSMs = %d, want %d", res.SimulatedSMs, opts.SMOverride)
	}
	if res.Workload != "2DCONV" || res.L1DKind != config.L1SRAM {
		t.Errorf("result identification wrong: %s %v", res.Workload, res.L1DKind)
	}
	if !strings.Contains(res.String(), "IPC") {
		t.Errorf("String() should include the IPC")
	}
}

func TestMissesReachL2AndDRAM(t *testing.T) {
	res := mustRun(t, config.L1SRAM, "ATAX", quickOpts())
	if res.L2Accesses == 0 {
		t.Errorf("L1D misses should reach the L2")
	}
	if res.DRAMAccesses == 0 {
		t.Errorf("L2 misses should reach DRAM")
	}
	if res.NoCRequests == 0 || res.NoCResponses == 0 {
		t.Errorf("traffic should cross the interconnect: %d req %d resp", res.NoCRequests, res.NoCResponses)
	}
	if res.AvgFillNoC <= 0 || res.AvgFillMemory <= 0 {
		t.Errorf("fill latency decomposition should be positive: noc=%v mem=%v", res.AvgFillNoC, res.AvgFillMemory)
	}
}

func TestMemoryIntensiveWorkloadIsOffChipBound(t *testing.T) {
	// Figure 1's observation: for memory-intensive workloads most of the
	// execution time is spent on off-chip accesses with the baseline cache.
	res := mustRun(t, config.L1SRAM, "ATAX", quickOpts())
	if res.OffChipFraction < 0.4 {
		t.Errorf("ATAX on L1-SRAM should be dominated by off-chip time, got %.2f", res.OffChipFraction)
	}
	if res.NetworkFraction+res.DRAMFraction > res.OffChipFraction+1e-9 {
		t.Errorf("network+DRAM fractions cannot exceed the off-chip fraction")
	}
	// A compute-bound workload spends far less time off-chip.
	light := mustRun(t, config.L1SRAM, "pathf", quickOpts())
	if light.OffChipFraction >= res.OffChipFraction {
		t.Errorf("pathf (APKI 1.2) should be less off-chip bound than ATAX: %.2f vs %.2f",
			light.OffChipFraction, res.OffChipFraction)
	}
}

func TestDyFUSEOutperformsL1SRAMOnIrregularWorkload(t *testing.T) {
	// The headline result (Figure 13): Dy-FUSE beats the SRAM baseline on
	// irregular, thrash-prone workloads.
	opts := quickOpts()
	base := mustRun(t, config.L1SRAM, "ATAX", opts)
	dy := mustRun(t, config.DyFUSE, "ATAX", opts)
	if dy.IPC <= base.IPC {
		t.Errorf("Dy-FUSE should outperform L1-SRAM on ATAX: %.3f vs %.3f", dy.IPC, base.IPC)
	}
	if dy.L1DMissRate >= base.L1DMissRate {
		t.Errorf("Dy-FUSE should reduce the L1D miss rate: %.3f vs %.3f", dy.L1DMissRate, base.L1DMissRate)
	}
	if dy.L1D.OutgoingRequests >= base.L1D.OutgoingRequests {
		t.Errorf("Dy-FUSE should reduce outgoing memory references: %d vs %d",
			dy.L1D.OutgoingRequests, base.L1D.OutgoingRequests)
	}
	if got := dy.SpeedupOver(base); got <= 1 {
		t.Errorf("SpeedupOver should exceed 1, got %v", got)
	}
}

func TestDyFUSEBeatsBlockingHybrid(t *testing.T) {
	opts := quickOpts()
	hybrid := mustRun(t, config.Hybrid, "BICG", opts)
	dy := mustRun(t, config.DyFUSE, "BICG", opts)
	if dy.IPC <= hybrid.IPC {
		t.Errorf("Dy-FUSE should outperform the unoptimised Hybrid: %.3f vs %.3f", dy.IPC, hybrid.IPC)
	}
	if hybrid.STTWriteStalls == 0 {
		t.Errorf("the blocking Hybrid should suffer STT-MRAM write stalls")
	}
}

func TestBaseFUSEReducesStallsVsHybrid(t *testing.T) {
	// Figure 15: the swap buffer + tag queue remove most STT-MRAM stalls.
	opts := quickOpts()
	hybrid := mustRun(t, config.Hybrid, "FDTD", opts)
	base := mustRun(t, config.BaseFUSE, "FDTD", opts)
	if base.STTWriteStalls >= hybrid.STTWriteStalls {
		t.Errorf("Base-FUSE should have fewer STT write stalls than Hybrid: %d vs %d",
			base.STTWriteStalls, hybrid.STTWriteStalls)
	}
}

func TestDyFUSEPredictorAccuracyHigh(t *testing.T) {
	// Figure 16: the read-level predictor is right most of the time.
	res := mustRun(t, config.DyFUSE, "GESUM", quickOpts())
	total := res.PredTrue + res.PredNeutral + res.PredFalse
	if total <= 0 {
		t.Fatalf("predictions should have been audited")
	}
	if res.PredFalse > 0.4 {
		t.Errorf("false predictions should be a minority, got %.2f", res.PredFalse)
	}
}

func TestOracleCacheNearlyEliminatesMisses(t *testing.T) {
	// Figure 3: an ideal (very large) L1D nearly eliminates thrashing.
	opts := quickOpts()
	prof, _ := trace.ProfileByName("ATAX")
	oracle := config.FermiGPU(config.OracleL1D())
	s, err := New(oracle, trace.Synthetic(prof), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	base := mustRun(t, config.L1SRAM, "ATAX", opts)
	if res.L1DMissRate >= base.L1DMissRate {
		t.Errorf("oracle cache should have a far lower miss rate: %.3f vs %.3f", res.L1DMissRate, base.L1DMissRate)
	}
	if res.IPC <= base.IPC {
		t.Errorf("oracle cache should be faster than the baseline: %.3f vs %.3f", res.IPC, base.IPC)
	}
}

func TestVoltaConfigurationRuns(t *testing.T) {
	prof, _ := trace.ProfileByName("gaussian")
	volta := config.VoltaGPU(config.ScaleL1D(config.NewL1DConfig(DyKindForTest()), 2))
	opts := quickOpts()
	s, err := New(volta, trace.Synthetic(prof), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.IPC <= 0 || res.GPUName != "Volta-like" {
		t.Errorf("Volta run failed: %+v", res.GPUName)
	}
}

// DyKindForTest returns the Dy-FUSE kind; a tiny helper so the Volta test
// reads clearly.
func DyKindForTest() config.L1DKind { return config.DyFUSE }

func TestRunWorkloadErrors(t *testing.T) {
	if _, err := RunWorkload(config.DyFUSE, "no-such-workload", quickOpts()); err == nil {
		t.Errorf("unknown workload should fail")
	}
	// Invalid GPU config propagates.
	prof, _ := trace.ProfileByName("ATAX")
	bad := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	bad.SMs = 0
	if _, err := New(bad, trace.Synthetic(prof), Options{}); err == nil {
		t.Errorf("invalid GPU config should fail")
	}
	badProf := prof
	badProf.APKI = 0
	if _, err := New(config.FermiGPU(config.NewL1DConfig(config.DyFUSE)), trace.Synthetic(badProf), Options{}); err == nil {
		t.Errorf("invalid profile should fail")
	}
}

func TestMaxCyclesBoundsRuntime(t *testing.T) {
	prof, _ := trace.ProfileByName("SM") // APKI 140: needs many cycles
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
	s, err := New(gpuCfg, trace.Synthetic(prof), Options{InstructionsPerWarp: 100000, MaxCycles: 2000, SMOverride: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Cycles > 2100 {
		t.Errorf("run should stop near the cycle limit, took %d", res.Cycles)
	}
}

func TestSimulatorAccessors(t *testing.T) {
	prof, _ := trace.ProfileByName("2DCONV")
	s, err := New(config.FermiGPU(config.NewL1DConfig(config.DyFUSE)), trace.Synthetic(prof), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if s.L2() == nil || s.DRAM() == nil || s.Network() == nil || len(s.SMs()) == 0 {
		t.Errorf("accessors should expose the subsystems")
	}
	if s.Now() != 0 {
		t.Errorf("fresh simulator should be at cycle 0")
	}
	s.Step()
	if s.Now() != 1 {
		t.Errorf("Step should advance one cycle")
	}
}

// TestSparseEngineMatchesReference pins the sparse cycle engine's core
// invariant: cycling only the SMs that can make progress (and lazily charging
// the cycles they sleep through) must produce exactly the same Result struct
// — cycles, stalls, off-chip decomposition, energy inputs — as stepping every
// cycle. One memory-bound workload (ATAX: SMs spend most cycles asleep
// waiting on fills) and one compute-bound workload (pathf: SMs almost never
// sleep) exercise both extremes, across a blocking and a non-blocking L1D.
func TestSparseEngineMatchesReference(t *testing.T) {
	for _, kind := range []config.L1DKind{config.L1SRAM, config.Hybrid, config.DyFUSE} {
		for _, workload := range []string{"ATAX", "pathf"} {
			opts := quickOpts()
			prof, ok := trace.ProfileByName(workload)
			if !ok {
				t.Fatalf("workload %s missing", workload)
			}
			gpuCfg := config.FermiGPU(config.NewL1DConfig(kind))

			sparse, err := New(gpuCfg, trace.Synthetic(prof), opts)
			if err != nil {
				t.Fatal(err)
			}
			sparseRes := sparse.Run()

			ref, err := New(gpuCfg, trace.Synthetic(prof), opts)
			if err != nil {
				t.Fatal(err)
			}
			refRes := ref.RunReference()

			if sparseRes != refRes {
				t.Errorf("%v/%s: sparse engine result differs from step-every-cycle reference:\nsparse: %+v\nref:    %+v",
					kind, workload, sparseRes, refRes)
			}
		}
	}
}

// TestSparseEngineMatchesReferenceAtCycleLimit covers the truncated-run path:
// a run that aborts at MaxCycles must charge the idle tail of every
// unfinished SM exactly as per-cycle stepping would — including when the
// sparse engine's next wake target lies beyond the limit (the time jump must
// clamp, never execute cycles past MaxCycles).
func TestSparseEngineMatchesReferenceAtCycleLimit(t *testing.T) {
	saturated := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
	// A single warp per SM parks the whole SM on one fill, so the next-event
	// gap regularly straddles a small MaxCycles.
	gap := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
	gap.WarpsPerSM = 1

	cases := []struct {
		name string
		gpu  config.GPUConfig
		opts Options
	}{
		{"saturated", saturated, Options{InstructionsPerWarp: 100000, MaxCycles: 3000, SMOverride: 2, Seed: 3}},
		{"event-gap-straddles-limit", gap, Options{InstructionsPerWarp: 100000, MaxCycles: 7, SMOverride: 1, Seed: 3}},
	}
	for _, tc := range cases {
		prof, _ := trace.ProfileByName("SM") // APKI 140: misses immediately
		sparse, err := New(tc.gpu, trace.Synthetic(prof), tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		sparseRes := sparse.Run()

		ref, err := New(tc.gpu, trace.Synthetic(prof), tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		refRes := ref.RunReference()

		if sparseRes != refRes {
			t.Errorf("%s: sparse engine differs from reference:\nsparse: %+v\nref:    %+v", tc.name, sparseRes, refRes)
		}
		if sparseRes.Cycles != tc.opts.MaxCycles {
			t.Errorf("%s: truncated run must stop exactly at the cycle limit, got %d (want %d)",
				tc.name, sparseRes.Cycles, tc.opts.MaxCycles)
		}
	}
}

func TestRunWorkloadResolvesThroughRegistry(t *testing.T) {
	// RunWorkload's single lookup path is the trace registry: a workload
	// registered there — builtin or custom — is runnable by name.
	custom := trace.Profile{
		Name: "sim-registry-custom", Suite: "Custom", APKI: 30,
		Mix:              trace.ReadLevelMix{WM: 0.2, ReadIntensive: 0.1, WORM: 0.6, WORO: 0.1},
		WorkingSetBlocks: 200, Irregular: 0.3, WORMReuse: 3,
	}
	if err := trace.RegisterProfile(custom); err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkload(config.DyFUSE, "sim-registry-custom", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "sim-registry-custom" || res.Instructions == 0 {
		t.Errorf("custom workload should run by name: %+v", res.Workload)
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.InstructionsPerWarp == 0 || o.MaxCycles == 0 || o.Seed == 0 || o.RequestBytes == 0 {
		t.Errorf("defaults should be filled in: %+v", o)
	}
	var r Result
	if r.SpeedupOver(Result{}) != 0 {
		t.Errorf("speedup over a zero-IPC baseline should be 0")
	}
}

func TestRecordReplayReproducesResult(t *testing.T) {
	// Recording a run and replaying its trace under the same configuration
	// must produce the identical Result struct — the property the CLI's
	// record→replay round trip (and the CI workload-smoke job) relies on.
	prof, _ := trace.ProfileByName("ATAX")
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	opts := quickOpts()

	rec := trace.NewRecorder(trace.Synthetic(prof))
	s, err := New(gpuCfg, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	recorded := s.Run()

	tr := rec.Trace(trace.TraceMeta{Workload: "ATAX", Seed: opts.Seed})
	rs, err := New(gpuCfg, tr.Workload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	replayed := rs.Run()
	if recorded != replayed {
		t.Errorf("replayed result differs from the recorded run:\nrec: %+v\nrep: %+v", recorded, replayed)
	}

	// The recorder itself is passive: an unrecorded run matches too.
	plain, err := New(gpuCfg, trace.Synthetic(prof), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res := plain.Run(); res != recorded {
		t.Errorf("recording must not perturb the simulation:\nplain: %+v\nrec:   %+v", res, recorded)
	}
}

func TestPhasedWorkloadRunsDeterministically(t *testing.T) {
	atax, _ := trace.ProfileByName("ATAX")
	pathf, _ := trace.ProfileByName("pathf")
	w := trace.NewPhased("sim-phased", []trace.Phase{
		{Profile: pathf, Instructions: 2000},
		{Profile: atax},
	})
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	run := func() Result {
		s, err := New(gpuCfg, w, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("phased workload must simulate deterministically:\na: %+v\nb: %+v", a, b)
	}
	if a.Workload != "sim-phased" || a.Instructions == 0 {
		t.Errorf("phased workload result malformed: %+v", a)
	}
}
