// Package sim wires the whole GPU together: SMs with their private FUSE (or
// baseline) L1D caches, the butterfly interconnect, the shared L2 banks and
// the GDDR5 DRAM. It advances the SMs cycle by cycle while the memory side is
// driven by a small event queue, and it produces the aggregate metrics every
// paper figure is built from (IPC, L1D miss rate, stalls, outgoing traffic,
// off-chip time, energy inputs).
package sim

import (
	"container/heap"
	"context"
	"fmt"

	"fuse/internal/config"
	"fuse/internal/core"
	"fuse/internal/dram"
	"fuse/internal/gpu"
	"fuse/internal/l2"
	"fuse/internal/mem"
	"fuse/internal/noc"
	"fuse/internal/trace"
)

// Options controls a single simulation run.
type Options struct {
	// InstructionsPerWarp is the per-warp instruction budget.
	InstructionsPerWarp uint64
	// MaxCycles aborts the run if it has not finished by then (0 = default).
	MaxCycles int64
	// Seed seeds the workload generator.
	Seed uint64
	// SMOverride, when positive, simulates only this many SMs regardless of
	// the GPU configuration. The per-SM behaviour is unchanged; memory-side
	// contention scales accordingly. Used to keep the experiment harness
	// fast; the cmd tools run the full SM count.
	SMOverride int
	// RequestBytes is the size of a request packet on the NoC.
	RequestBytes int
}

// WithDefaults returns the options with every unset field replaced by its
// default. The simulator applies it on construction; the result store uses it
// to canonicalise cache keys, so a zero Options and an explicitly defaulted
// one address the same stored result.
func (o Options) WithDefaults() Options {
	if o.InstructionsPerWarp == 0 {
		o.InstructionsPerWarp = 1000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 4_000_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.RequestBytes == 0 {
		o.RequestBytes = 32
	}
	return o
}

// event is a memory-side event: a request arriving at an L2 bank, a response
// arriving back at an SM, or the memory controller reaching its next
// scheduling point (a DRAM command becoming issuable or a burst completing).
type event struct {
	at    int64
	seq   uint64
	kind  eventKind
	sm    int
	bank  int
	req   mem.Request
	block uint64
}

type eventKind uint8

const (
	evReqAtL2 eventKind = iota
	evRespAtSM
	evMemTick
)

// eventQueue is a min-heap ordered by event time, with the scheduling
// sequence number as a deterministic tie-break.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Simulator is one configured GPU plus one workload.
type Simulator struct {
	gpuCfg  config.GPUConfig
	profile trace.Profile
	opts    Options

	sms  []*gpu.SM
	net  *noc.Network
	l2   *l2.L2
	dram *dram.DRAM

	events   eventQueue
	eventSeq uint64
	now      int64
	// memTickAt is the earliest armed evMemTick (-1 when none is armed); it
	// keeps the heap free of redundant controller wake-ups.
	memTickAt int64

	// Latency decomposition of completed fills (Figure 1).
	nocCycles int64
	memCycles int64
	fills     uint64
}

// New builds a simulator for the given GPU configuration and workload.
func New(gpuCfg config.GPUConfig, profile trace.Profile, opts Options) (*Simulator, error) {
	if err := gpuCfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := profile.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	opts = opts.WithDefaults()
	s := &Simulator{gpuCfg: gpuCfg, profile: profile, opts: opts}

	smCount := gpuCfg.SMs
	if opts.SMOverride > 0 && opts.SMOverride < smCount {
		smCount = opts.SMOverride
	}
	// Weak scaling: when only a subset of the SMs is simulated, the shared
	// memory side (L2 banks, DRAM channels, interconnect endpoints) is
	// scaled down proportionally so that the per-SM bandwidth pressure —
	// which is what makes these workloads off-chip bound — is preserved.
	l2Banks := gpuCfg.L2Banks
	l2KB := gpuCfg.L2KBTotal
	channels := gpuCfg.DRAMChannels
	if smCount < gpuCfg.SMs {
		scale := float64(smCount) / float64(gpuCfg.SMs)
		channels = max(1, int(float64(gpuCfg.DRAMChannels)*scale+0.5))
		banksPerChannel := max(1, gpuCfg.L2Banks/gpuCfg.DRAMChannels)
		l2Banks = channels * banksPerChannel
		l2KB = max(l2Banks, int(float64(gpuCfg.L2KBTotal)*scale+0.5))
	}

	if _, err := dram.BackendByName(gpuCfg.MemBackend); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.dram = dram.New(dram.Config{
		Channels:        channels,
		BanksPerChannel: gpuCfg.DRAMBanksPerChannel,
		RowBytes:        gpuCfg.DRAMRowBytes,
		TCL:             gpuCfg.TCL,
		TRCD:            gpuCfg.TRCD,
		TRP:             gpuCfg.TRP,
		TRAS:            gpuCfg.TRAS,
		BurstCycles:     gpuCfg.DRAMBurstCycles,
		QueueDepth:      gpuCfg.DRAMQueueDepth,
		Backend:         gpuCfg.MemBackend,
	})
	s.l2 = l2.New(l2.Config{
		Banks:         l2Banks,
		TotalKB:       l2KB,
		Ways:          gpuCfg.L2Ways,
		LatencyCycles: gpuCfg.L2LatencyCycles,
	}, s.dram)
	s.net = noc.New(noc.Config{
		SMNodes:    smCount,
		MemNodes:   l2Banks,
		HopLatency: gpuCfg.NoCLatencyPerHop,
		FlitBytes:  gpuCfg.NoCFlitBytes,
	})

	s.sms = make([]*gpu.SM, smCount)
	for i := range s.sms {
		l1d, err := core.New(gpuCfg.L1D)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		kernel := trace.NewKernel(profile, i, opts.Seed)
		s.sms[i] = gpu.NewSM(i, gpuCfg.WarpsPerSM, opts.InstructionsPerWarp, kernel, l1d)
	}
	heap.Init(&s.events)
	s.memTickAt = -1
	return s, nil
}

// SMs exposes the simulated SMs (for inspection by examples and tests).
func (s *Simulator) SMs() []*gpu.SM { return s.sms }

// L2 exposes the shared L2 cache.
func (s *Simulator) L2() *l2.L2 { return s.l2 }

// DRAM exposes the DRAM model.
func (s *Simulator) DRAM() *dram.DRAM { return s.dram }

// Network exposes the interconnect.
func (s *Simulator) Network() *noc.Network { return s.net }

// Now returns the current simulation cycle.
func (s *Simulator) Now() int64 { return s.now }

// schedule pushes an event onto the queue.
func (s *Simulator) schedule(e event) {
	s.eventSeq++
	e.seq = s.eventSeq
	heap.Push(&s.events, e)
}

// armMemTick makes sure an evMemTick is scheduled at the memory side's next
// event time (but never before `now`). Redundant wake-ups — an already armed
// earlier tick, or an idle controller — schedule nothing; a stale later tick
// left in the heap fires as a harmless no-op.
func (s *Simulator) armMemTick(now int64) {
	next := s.l2.NextEventAt()
	if next < 0 {
		return
	}
	if next < now {
		next = now
	}
	if s.memTickAt >= 0 && s.memTickAt <= next {
		return
	}
	s.memTickAt = next
	s.schedule(event{at: next, kind: evMemTick})
}

// respond schedules the NoC response of one completed read and charges the
// fill-latency decomposition: the request spent arriveAtL2..done on the
// memory side and the rest of its life on the interconnect.
func (s *Simulator) respond(bank, sm int, block uint64, issue, arriveAtL2, done int64) {
	arrive := s.net.SendResponse(bank, sm, mem.BlockSize, done)
	s.nocCycles += (arriveAtL2 - issue) + (arrive - done)
	s.memCycles += done - arriveAtL2
	s.schedule(event{at: arrive, kind: evRespAtSM, sm: sm, block: block})
}

// processEvents handles every event due at or before the current cycle.
func (s *Simulator) processEvents() {
	for len(s.events) > 0 && s.events[0].at <= s.now {
		e := heap.Pop(&s.events).(event)
		switch e.kind {
		case evReqAtL2:
			res := s.l2.Access(e.req, e.at)
			switch res.Outcome {
			case l2.OutcomeHit:
				if e.req.Kind != mem.Write { // write-backs need no response
					s.respond(e.bank, e.sm, e.req.BlockAddr(), e.req.Issue, e.at, res.Done)
				}
			case l2.OutcomeMiss, l2.OutcomeMerged:
				// Writes are absorbed; read data arrives with the fill.
			case l2.OutcomeBlocked:
				// MSHR back-pressure: retry the access later. The wait is
				// memory-side time, but the retry makes the waiter's L2
				// arrival time the *last* attempt, which respond() would
				// charge to the NoC share — move it to the memory share
				// here so the Figure 1 decomposition stays faithful.
				s.memCycles += res.RetryAt - e.at
				s.nocCycles -= res.RetryAt - e.at
				s.schedule(event{at: res.RetryAt, kind: evReqAtL2, sm: e.sm, bank: e.bank, req: e.req})
			}
			s.armMemTick(e.at)
		case evMemTick:
			if s.memTickAt == e.at {
				s.memTickAt = -1
			}
			for _, fill := range s.l2.Advance(e.at) {
				for _, w := range fill.Waiters {
					s.respond(fill.Bank, w.Req.SM, fill.Block, w.Req.Issue, w.Arrive, w.DoneAt(fill.Done))
				}
			}
			s.armMemTick(e.at)
		case evRespAtSM:
			s.fills++
			s.sms[e.sm].DeliverFill(e.block, e.at)
		}
	}
}

// drainOutgoing moves freshly generated misses and write-backs from every
// SM's L1D into the interconnect.
func (s *Simulator) drainOutgoing() {
	for _, sm := range s.sms {
		for {
			req, ok := sm.PopOutgoing()
			if !ok {
				break
			}
			bank := s.l2.BankFor(req.BlockAddr())
			bytes := s.opts.RequestBytes
			if req.Kind == mem.Write {
				bytes = mem.BlockSize
			}
			if req.Issue == 0 {
				req.Issue = s.now
			}
			req.SM = sm.ID
			arrive := s.net.SendRequest(sm.ID, bank, bytes, s.now)
			s.schedule(event{at: arrive, kind: evReqAtL2, sm: sm.ID, bank: bank, req: req})
		}
	}
}

// allDone reports whether every SM has retired its instruction budget.
func (s *Simulator) allDone() bool {
	for _, sm := range s.sms {
		if !sm.Done() {
			return false
		}
	}
	return true
}

// Step advances the simulation by one cycle.
func (s *Simulator) Step() {
	s.processEvents()
	for _, sm := range s.sms {
		if !sm.Done() {
			sm.Cycle(s.now)
		}
	}
	s.drainOutgoing()
	s.now++
}

// fastForwardTarget returns the next cycle at which something can happen when
// every SM is idle: the earliest event or timed warp wake-up. It returns the
// current cycle when progress is possible right now.
func (s *Simulator) fastForwardTarget() int64 {
	target := int64(-1)
	consider := func(t int64) {
		if t < 0 {
			return
		}
		if target < 0 || t < target {
			target = t
		}
	}
	for _, sm := range s.sms {
		if sm.Done() {
			continue
		}
		if sm.HasReadyWarp(s.now) {
			return s.now
		}
		consider(sm.NextWakeAt())
		consider(sm.L1D().NextInternalEventAt(s.now))
	}
	if len(s.events) > 0 {
		consider(s.events[0].at)
	}
	if target < 0 || target <= s.now {
		return s.now
	}
	return target
}

// Run executes the simulation to completion (or the cycle limit) and returns
// the results.
func (s *Simulator) Run() Result {
	res, _ := s.RunContext(context.Background())
	return res
}

// RunContext is Run with cancellation: the context is polled every few
// thousand simulated cycles (cheap enough to be invisible in profiles), and
// an expired context aborts the run with the context's error.
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	opts := s.opts
	var steps uint
	for !s.allDone() && s.now < opts.MaxCycles {
		if steps++; steps&0xFFF == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		// Fast-forward across cycles in which no SM can issue: this keeps
		// memory-bound runs cheap without changing their timing, because
		// SM.Cycle still charges the skipped cycles to the stall counters.
		// The skipped range is [s.now, target): the next Step executes cycle
		// `target`, so every cycle before it — including the current one —
		// is charged as idle, exactly as per-cycle execution would.
		if target := s.fastForwardTarget(); target > s.now+1 {
			skipped := target - s.now
			for _, sm := range s.sms {
				if sm.Done() {
					continue
				}
				st := sm.Stats()
				st.Cycles += uint64(skipped)
				st.NoReadyWarpCycles += uint64(skipped)
				if sm.OutstandingFills() > 0 {
					st.MemWaitCycles += uint64(skipped)
				}
			}
			s.now = target
		}
		s.Step()
	}
	return s.collect(), nil
}
