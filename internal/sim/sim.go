// Package sim wires the whole GPU together: SMs with their private FUSE (or
// baseline) L1D caches, the butterfly interconnect, the shared L2 banks and
// the GDDR5 DRAM, and it produces the aggregate metrics every paper figure is
// built from (IPC, L1D miss rate, stalls, outgoing traffic, off-chip time,
// energy inputs).
//
// The cycle engine is sparse: a min-heap of per-SM wake times plus a typed
// event heap for the memory side, so each step touches only the SMs that can
// actually make progress at that cycle. The cycles an SM sleeps through are
// charged to the same stall counters cycle-by-cycle execution would have
// charged, which makes the sparse engine a pure speedup: RunReference — the
// step-every-cycle path — must produce bit-identical results, and the engine
// equivalence test pins that.
//
// On top of the sparse engine sits a conservative-parallel mode
// (SetWorkers): SM state is private between memory interactions, and the
// memory system guarantees a minimum request round-trip latency, so the
// engine advances independent SMs on worker goroutines up to a shared
// conservative horizon and re-plays their memory traffic serially at the
// epoch barrier, in exactly the order the sequential engine would have
// produced it. Epochs whose lookahead window is degenerate fall back to
// single sparse steps, so parallel execution is — like the sparse engine
// itself — a pure speedup: every counter and figure is byte-identical for
// any worker count (see parallel.go for the horizon argument).
//
// Construction supports a reusable scratch Arena (NewWithArena/ReleaseArena)
// so callers that run many simulations back to back — the batch engine,
// benchmark loops — reuse the event heaps, wake heaps and flat per-warp
// slabs instead of re-allocating them per run.
//
// The package's invariants — determinism, store-key completeness of Options,
// the allocation-free hot path, the worker/serial phase split of the
// parallel engine (checked whole-program: phasesafe walks the cross-package
// call graph from advancePart through gpu, core, cache and the in-repo
// interfaces, so the split is verified everywhere the worker phase reaches,
// not just in this package), and the conservation of every hot-path counter
// into Result or a figure table (statflow) — are machine-checked by fuselint
// (go run ./cmd/fuselint ./...) via //fuselint: annotations on the relevant
// declarations; the directives are documented in the repository README under
// "Invariants & annotations".
package sim

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"fuse/internal/config"
	"fuse/internal/core"
	"fuse/internal/dram"
	"fuse/internal/gpu"
	"fuse/internal/l2"
	"fuse/internal/mem"
	"fuse/internal/noc"
	"fuse/internal/trace"
)

// Options controls a single simulation run.
//
// Options is serialised verbatim into the content-addressed result-store key
// (store.Key): every field must either be keyed or carry an explicit
// //fuselint:execonly justification — fuselint's keydrift analyzer enforces
// this. Execution-resource knobs that never change results (like the worker
// count) live outside Options for exactly this reason (see SetWorkers).
//
//fuselint:keyroot
type Options struct {
	// InstructionsPerWarp is the per-warp instruction budget.
	InstructionsPerWarp uint64
	// MaxCycles aborts the run if it has not finished by then (0 = default).
	MaxCycles int64
	// Seed seeds the workload generator.
	Seed uint64
	// SMOverride, when positive, simulates only this many SMs regardless of
	// the GPU configuration. The per-SM behaviour is unchanged; memory-side
	// contention scales accordingly. Used to keep the experiment harness
	// fast; the cmd tools run the full SM count.
	SMOverride int
	// RequestBytes is the size of a request packet on the NoC.
	RequestBytes int
}

// WithDefaults returns the options with every unset field replaced by its
// default. The simulator applies it on construction; the result store uses it
// to canonicalise cache keys, so a zero Options and an explicitly defaulted
// one address the same stored result.
func (o Options) WithDefaults() Options {
	if o.InstructionsPerWarp == 0 {
		o.InstructionsPerWarp = 1000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 4_000_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.RequestBytes == 0 {
		o.RequestBytes = 32
	}
	return o
}

// event is a memory-side event: a request arriving at an L2 bank or a
// response arriving back at an SM. (The memory controller's own scheduling
// points are tracked outside the heap — see armMemTick.)
type event struct {
	at    int64
	seq   uint64
	kind  eventKind
	sm    int
	bank  int
	req   mem.Request
	block uint64
}

type eventKind uint8

const (
	evReqAtL2 eventKind = iota
	evRespAtSM
)

// before is the deterministic event order: time first, scheduling sequence
// number as the tie-break.
func (e *event) before(at int64, seq uint64) bool {
	if e.at != at {
		return e.at < at
	}
	return e.seq < seq
}

// eventHeap is a typed min-heap of events ordered by (at, seq). It replaces a
// container/heap implementation whose interface boxing allocated on every
// push; the typed heap reuses one backing array for the whole run.
type eventHeap []event

//fuselint:noalloc
func (q *eventHeap) push(e event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p].at, h[p].seq) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

//fuselint:noalloc
func (q *eventHeap) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h[l].before(h[least].at, h[least].seq) {
			least = l
		}
		if r < n && h[r].before(h[least].at, h[least].seq) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	*q = h
	return top
}

// smWakeHeap is an indexed min-heap of per-SM wake cycles: the earliest cycle
// at which each live SM can make progress on its own (ready warp, timed warp
// wake-up, L1D internal machinery). SMs blocked purely on in-flight fills are
// absent from the heap — the fill delivery re-inserts them — and done SMs
// never return.
type smWakeHeap struct {
	at  []int64 // at[sm] = wake cycle, valid while pos[sm] >= 0
	pos []int   // pos[sm] = heap position, -1 when absent
	ord []int   // heap array of SM indices
}

func (h *smWakeHeap) init(n int) {
	h.at = grow(h.at, n)
	h.pos = grow(h.pos, n)
	if cap(h.ord) >= n {
		h.ord = h.ord[:0]
	} else {
		h.ord = make([]int, 0, n)
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *smWakeHeap) len() int { return len(h.ord) }

// minAt returns the earliest wake cycle (-1 when the heap is empty).
func (h *smWakeHeap) minAt() int64 {
	if len(h.ord) == 0 {
		return -1
	}
	return h.at[h.ord[0]]
}

func (h *smWakeHeap) swap(i, j int) {
	h.ord[i], h.ord[j] = h.ord[j], h.ord[i]
	h.pos[h.ord[i]] = i
	h.pos[h.ord[j]] = j
}

func (h *smWakeHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.at[h.ord[i]] >= h.at[h.ord[p]] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *smWakeHeap) siftDown(i int) {
	n := len(h.ord)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.at[h.ord[l]] < h.at[h.ord[least]] {
			least = l
		}
		if r < n && h.at[h.ord[r]] < h.at[h.ord[least]] {
			least = r
		}
		if least == i {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// update inserts the SM at the given wake cycle, or moves it if present.
func (h *smWakeHeap) update(sm int, at int64) {
	if p := h.pos[sm]; p >= 0 {
		old := h.at[sm]
		h.at[sm] = at
		if at < old {
			h.siftUp(p)
		} else if at > old {
			h.siftDown(p)
		}
		return
	}
	h.at[sm] = at
	h.ord = append(h.ord, sm)
	h.pos[sm] = len(h.ord) - 1
	h.siftUp(len(h.ord) - 1)
}

// remove takes the SM out of the heap (no-op when absent).
func (h *smWakeHeap) remove(sm int) {
	p := h.pos[sm]
	if p < 0 {
		return
	}
	n := len(h.ord) - 1
	h.swap(p, n)
	h.ord = h.ord[:n]
	h.pos[sm] = -1
	if p < n {
		h.siftDown(p)
		h.siftUp(p)
	}
}

// popDue appends to buf every SM whose wake cycle is <= t, removing them from
// the heap, and returns the extended buffer (in arbitrary order).
func (h *smWakeHeap) popDue(t int64, buf []int) []int {
	for len(h.ord) > 0 && h.at[h.ord[0]] <= t {
		sm := h.ord[0]
		h.remove(sm)
		buf = append(buf, sm)
	}
	return buf
}

// staleTick is a controller wake-up that was abandoned by an earlier re-arm;
// its sequence position still matters if a later re-arm lands on its time.
type staleTick struct {
	at  int64
	seq uint64
}

// Simulator is one configured GPU plus one workload.
type Simulator struct {
	gpuCfg   config.GPUConfig
	workload trace.Workload
	opts     Options

	// The shared machine and the clock belong to the serial phase of the
	// parallel engine: code reachable from a //fuselint:workerphase root
	// must never mutate them (fuselint's phasesafe analyzer enforces this).
	// sms and the per-SM chargedTo slots are worker-phase state — each
	// epoch participant is owned by exactly one worker.
	sms  []*gpu.SM
	net  *noc.Network //fuselint:serialonly
	l2   *l2.L2       //fuselint:serialonly
	dram *dram.DRAM   //fuselint:serialonly

	events   eventHeap //fuselint:serialonly
	eventSeq uint64    //fuselint:serialonly
	now      int64     //fuselint:serialonly
	// memTickAt/memTickSeq are the armed memory-controller wake-up: the
	// earliest cycle the controller can make progress, ordered against the
	// event heap by (at, seq). -1 when the controller is idle.
	memTickAt  int64       //fuselint:serialonly
	memTickSeq uint64      //fuselint:serialonly
	staleTicks []staleTick //fuselint:serialonly

	// Sparse-engine state: per-SM wake heap, lazily charged idle cycles,
	// and the dirty list drainOutgoing pulls from.
	wake      smWakeHeap //fuselint:serialonly
	chargedTo []int64    // SM i is charged for every cycle < chargedTo[i]
	doneSMs   int        //fuselint:serialonly
	dirty     []int      //fuselint:serialonly
	dirtyMark []bool     //fuselint:serialonly
	readyBuf  []int      //fuselint:serialonly

	// Latency decomposition of completed fills (Figure 1).
	nocCycles int64  //fuselint:serialonly
	memCycles int64  //fuselint:serialonly
	fills     uint64 //fuselint:serialonly

	// arena is the scratch region the simulator was built with (nil when
	// the buffers are privately owned); see arena.go.
	arena *Arena

	// Parallel-engine state (see parallel.go): the worker count selected
	// with SetWorkers, the reusable epoch buffers, and the per-epoch
	// dispatch primitives shared with the parked helper goroutines.
	workers    int
	parts      []epochPart
	commitRecs []commitRec //fuselint:serialonly
	epochNext  atomic.Int64
	epochWG    sync.WaitGroup
}

// New builds a simulator for the given GPU configuration and workload
// descriptor. Synthetic profiles wrap as trace.Synthetic(profile); phased and
// replay workloads plug in the same way — the simulator only sees the
// per-SM instruction Sources the workload constructs.
func New(gpuCfg config.GPUConfig, workload trace.Workload, opts Options) (*Simulator, error) {
	return NewWithArena(gpuCfg, workload, opts, nil)
}

// NewWithArena is New with a reusable scratch arena: the simulator's event
// heap, wake heap, idle-charge accounting and flat per-warp state are carved
// out of the arena instead of freshly allocated. A nil arena behaves exactly
// like New. Call ReleaseArena when the run is done to hand the buffers back.
func NewWithArena(gpuCfg config.GPUConfig, workload trace.Workload, opts Options, arena *Arena) (*Simulator, error) {
	if err := gpuCfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if workload == nil {
		return nil, fmt.Errorf("sim: nil workload")
	}
	if err := workload.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	opts = opts.WithDefaults()
	s := &Simulator{gpuCfg: gpuCfg, workload: workload, opts: opts}

	smCount := gpuCfg.SMs
	if opts.SMOverride > 0 && opts.SMOverride < smCount {
		smCount = opts.SMOverride
	}
	// Weak scaling: when only a subset of the SMs is simulated, the shared
	// memory side (L2 banks, DRAM channels, interconnect endpoints) is
	// scaled down proportionally so that the per-SM bandwidth pressure —
	// which is what makes these workloads off-chip bound — is preserved.
	l2Banks := gpuCfg.L2Banks
	l2KB := gpuCfg.L2KBTotal
	channels := gpuCfg.DRAMChannels
	if smCount < gpuCfg.SMs {
		scale := float64(smCount) / float64(gpuCfg.SMs)
		channels = max(1, int(float64(gpuCfg.DRAMChannels)*scale+0.5))
		banksPerChannel := max(1, gpuCfg.L2Banks/gpuCfg.DRAMChannels)
		l2Banks = channels * banksPerChannel
		l2KB = max(l2Banks, int(float64(gpuCfg.L2KBTotal)*scale+0.5))
	}

	if _, err := dram.BackendByName(gpuCfg.MemBackend); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.dram = dram.New(dram.Config{
		Channels:        channels,
		BanksPerChannel: gpuCfg.DRAMBanksPerChannel,
		RowBytes:        gpuCfg.DRAMRowBytes,
		TCL:             gpuCfg.TCL,
		TRCD:            gpuCfg.TRCD,
		TRP:             gpuCfg.TRP,
		TRAS:            gpuCfg.TRAS,
		BurstCycles:     gpuCfg.DRAMBurstCycles,
		QueueDepth:      gpuCfg.DRAMQueueDepth,
		Backend:         gpuCfg.MemBackend,
	})
	s.l2 = l2.New(l2.Config{
		Banks:         l2Banks,
		TotalKB:       l2KB,
		Ways:          gpuCfg.L2Ways,
		LatencyCycles: gpuCfg.L2LatencyCycles,
	}, s.dram)
	s.net = noc.New(noc.Config{
		SMNodes:    smCount,
		MemNodes:   l2Banks,
		HopLatency: gpuCfg.NoCLatencyPerHop,
		FlitBytes:  gpuCfg.NoCFlitBytes,
	})

	warpsPerSM := max(1, gpuCfg.WarpsPerSM)
	s.takeScratch(arena, smCount, warpsPerSM)
	if arena == nil {
		s.sms = make([]*gpu.SM, smCount)
		s.chargedTo = make([]int64, smCount)
		s.dirtyMark = make([]bool, smCount)
	}
	for i := range s.sms {
		l1d, err := core.New(gpuCfg.L1D)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		source, err := workload.NewSource(i, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.sms[i] = gpu.NewSMIn(i, warpsPerSM, opts.InstructionsPerWarp, source, l1d, arena.smStorage(i, warpsPerSM))
	}
	s.memTickAt = -1
	s.wake.init(smCount)
	for i := range s.sms {
		s.wake.update(i, 0) // every SM starts with ready warps at cycle 0
	}
	return s, nil
}

// SMs exposes the simulated SMs (for inspection by examples and tests).
func (s *Simulator) SMs() []*gpu.SM { return s.sms }

// L2 exposes the shared L2 cache.
func (s *Simulator) L2() *l2.L2 { return s.l2 }

// DRAM exposes the DRAM model.
func (s *Simulator) DRAM() *dram.DRAM { return s.dram }

// Network exposes the interconnect.
func (s *Simulator) Network() *noc.Network { return s.net }

// Now returns the current simulation cycle.
func (s *Simulator) Now() int64 { return s.now }

// schedule pushes an event onto the queue.
func (s *Simulator) schedule(e event) {
	s.eventSeq++
	e.seq = s.eventSeq
	s.events.push(e)
}

// armMemTick keeps the controller wake-up armed at the memory side's next
// event time (but never before `now`). The tick lives outside the event heap;
// re-arming earlier abandons the old tick instead of leaving a stale heap
// entry. An abandoned tick's (time, seq) pair is remembered, because when a
// later re-arm lands exactly on an abandoned time the tick must fire at the
// abandoned — earlier — sequence position: that is where the previous
// in-heap scheme's entry would have fired, and same-cycle interleaving
// against request events is part of the engine's deterministic ordering.
func (s *Simulator) armMemTick(now int64) {
	next := s.l2.NextEventAt()
	if next < 0 {
		return
	}
	if next < now {
		next = now
	}
	if s.memTickAt >= 0 && s.memTickAt <= next {
		return
	}
	if s.memTickAt >= 0 {
		s.staleTicks = append(s.staleTicks, staleTick{at: s.memTickAt, seq: s.memTickSeq})
	}
	s.eventSeq++ // same sequence consumption as scheduling a heap event
	seq := s.eventSeq
	kept := s.staleTicks[:0]
	for _, t := range s.staleTicks {
		switch {
		case t.at == next:
			if t.seq < seq {
				seq = t.seq
			}
		case t.at >= now:
			kept = append(kept, t)
		}
	}
	s.staleTicks = kept
	s.memTickAt, s.memTickSeq = next, seq
}

// fireMemTick advances the memory controller to the armed tick time and
// delivers the completed fills, then re-arms.
func (s *Simulator) fireMemTick() {
	at := s.memTickAt
	s.memTickAt = -1
	for _, fill := range s.l2.Advance(at) {
		for _, w := range fill.Waiters {
			s.respond(fill.Bank, w.Req.SM, fill.Block, w.Req.Issue, w.Arrive, w.DoneAt(fill.Done))
		}
	}
	s.armMemTick(at)
}

// respond schedules the NoC response of one completed read and charges the
// fill-latency decomposition: the request spent arriveAtL2..done on the
// memory side and the rest of its life on the interconnect.
func (s *Simulator) respond(bank, sm int, block uint64, issue, arriveAtL2, done int64) {
	arrive := s.net.SendResponse(bank, sm, mem.BlockSize, done)
	s.nocCycles += (arriveAtL2 - issue) + (arrive - done)
	s.memCycles += done - arriveAtL2
	s.schedule(event{at: arrive, kind: evRespAtSM, sm: sm, block: block})
}

// processEvents handles, in (at, seq) order, every event and controller tick
// due at or before the current cycle.
func (s *Simulator) processEvents() {
	for {
		tickDue := s.memTickAt >= 0 && s.memTickAt <= s.now
		if len(s.events) > 0 && s.events[0].at <= s.now &&
			(!tickDue || s.events[0].before(s.memTickAt, s.memTickSeq)) {
			s.handleEvent(s.events.pop())
			continue
		}
		if tickDue {
			s.fireMemTick()
			continue
		}
		return
	}
}

// handleEvent dispatches one popped event.
func (s *Simulator) handleEvent(e event) {
	switch e.kind {
	case evReqAtL2:
		res := s.l2.Access(e.req, e.at)
		switch res.Outcome {
		case l2.OutcomeHit:
			if e.req.Kind != mem.Write { // write-backs need no response
				s.respond(e.bank, e.sm, e.req.BlockAddr(), e.req.Issue, e.at, res.Done)
			}
		case l2.OutcomeMiss, l2.OutcomeMerged:
			// Writes are absorbed; read data arrives with the fill.
		case l2.OutcomeBlocked:
			// MSHR back-pressure: retry the access later. The wait is
			// memory-side time, but the retry makes the waiter's L2
			// arrival time the *last* attempt, which respond() would
			// charge to the NoC share — move it to the memory share
			// here so the Figure 1 decomposition stays faithful.
			s.memCycles += res.RetryAt - e.at
			s.nocCycles -= res.RetryAt - e.at
			s.schedule(event{at: res.RetryAt, kind: evReqAtL2, sm: e.sm, bank: e.bank, req: e.req})
		}
		s.armMemTick(e.at)
	case evRespAtSM:
		if s.chargedTo[e.sm] > e.at {
			// The SM has already been cycled past the fill's arrival time.
			// Sequential execution cannot get here (events are delivered at
			// exactly their due cycle, before any SM cycles at it); for the
			// parallel engine this is the canary that the conservative
			// lookahead bound was violated.
			panic(fmt.Sprintf("sim: fill for SM %d delivered at cycle %d, but the SM is already charged to cycle %d (lookahead violation)",
				e.sm, e.at, s.chargedTo[e.sm]))
		}
		s.fills++
		sm := s.sms[e.sm]
		if !sm.Done() {
			// Charge the idle cycles the SM slept through before the fill
			// changes its outstanding-fill count, then wake it this cycle.
			s.catchUp(e.sm)
			sm.DeliverFill(e.block, e.at)
			s.wake.update(e.sm, e.at)
		} else {
			// A done SM still owns its cache: the fill lands (and may evict
			// a dirty victim that must be drained), but costs no SM cycles.
			sm.DeliverFill(e.block, e.at)
		}
		s.markDirty(e.sm)
	}
}

// catchUp charges SM i for the idle cycles between its last charged cycle and
// the current one: the sparse engine never cycles a sleeping SM, so the skip
// is accounted here with exactly the counters per-cycle execution would have
// used (no ready warp; memory wait while fills are outstanding).
func (s *Simulator) catchUp(i int) { s.catchUpTo(i, s.now) }

// catchUpTo is catchUp against an explicit cycle: the parallel engine's
// workers advance SMs ahead of the shared clock, so they charge idle gaps
// against their SM-local time rather than s.now.
func (s *Simulator) catchUpTo(i int, now int64) {
	from := s.chargedTo[i]
	if from >= now {
		return
	}
	sm := s.sms[i]
	skipped := uint64(now - from)
	st := sm.Stats()
	st.Cycles += skipped
	st.NoReadyWarpCycles += skipped
	if sm.OutstandingFills() > 0 {
		st.MemWaitCycles += skipped
	}
	s.chargedTo[i] = now
}

// markDirty queues SM i for this step's outgoing-traffic drain.
func (s *Simulator) markDirty(i int) {
	if !s.dirtyMark[i] {
		s.dirtyMark[i] = true
		s.dirty = append(s.dirty, i)
	}
}

// drainOutgoing moves freshly generated misses and write-backs into the
// interconnect. Only SMs that were cycled or received a fill this step can
// have new outgoing traffic, so it pulls from the step's dirty list (in SM
// order, for deterministic link arbitration) instead of scanning every SM.
func (s *Simulator) drainOutgoing() {
	slices.Sort(s.dirty)
	for _, i := range s.dirty {
		s.dirtyMark[i] = false
		sm := s.sms[i]
		for {
			req, ok := sm.PopOutgoing()
			if !ok {
				break
			}
			bank := s.l2.BankFor(req.BlockAddr())
			bytes := s.opts.RequestBytes
			if req.Kind == mem.Write {
				bytes = mem.BlockSize
			}
			if req.Issue == 0 {
				req.Issue = s.now
			}
			req.SM = sm.ID
			arrive := s.net.SendRequest(sm.ID, bank, bytes, s.now)
			s.schedule(event{at: arrive, kind: evReqAtL2, sm: sm.ID, bank: bank, req: req})
		}
	}
	s.dirty = s.dirty[:0]
}

// cycleSM runs one cycle of SM i at the current time and reschedules it.
func (s *Simulator) cycleSM(i int) {
	sm := s.sms[i]
	s.catchUp(i)
	sm.Cycle(s.now)
	s.chargedTo[i] = s.now + 1
	s.markDirty(i)
	if sm.Done() {
		s.doneSMs++
		s.wake.remove(i)
		return
	}
	if next := sm.NextSelfEventAt(s.now + 1); next >= 0 {
		s.wake.update(i, next)
	} else {
		// Every live warp is blocked on an in-flight fill and the cache is
		// idle: sleep until a fill delivery re-inserts the SM.
		s.wake.remove(i)
	}
}

// stepSparse executes one step of the sparse engine at the current cycle:
// deliver due events, cycle only the SMs whose wake time has come, drain
// their traffic, advance the clock.
func (s *Simulator) stepSparse() {
	s.processEvents()
	ready := s.wake.popDue(s.now, s.readyBuf[:0])
	slices.Sort(ready) // SM order: deterministic issue and drain sequence
	for _, i := range ready {
		s.cycleSM(i)
	}
	s.readyBuf = ready[:0]
	s.drainOutgoing()
	s.now++
}

// Step advances the simulation by exactly one cycle, cycling every SM that
// has not retired its budget — the step-every-cycle reference the sparse
// engine is checked against (see RunReference).
func (s *Simulator) Step() {
	s.processEvents()
	for i, sm := range s.sms {
		if !sm.Done() {
			s.cycleSM(i)
		}
	}
	s.drainOutgoing()
	s.now++
}

// nextTime returns the earliest cycle at which anything can happen: an SM
// waking, an event delivery, or a controller scheduling point. It returns -1
// when the machine can never make progress again.
func (s *Simulator) nextTime() int64 {
	t := s.wake.minAt()
	if len(s.events) > 0 && (t < 0 || s.events[0].at < t) {
		t = s.events[0].at
	}
	if s.memTickAt >= 0 && (t < 0 || s.memTickAt < t) {
		t = s.memTickAt
	}
	return t
}

// settle charges the idle tail of every unfinished SM (a run that hits
// MaxCycles, or SMs that slept while the last finisher retired).
func (s *Simulator) settle() {
	for i, sm := range s.sms {
		if !sm.Done() {
			s.catchUp(i)
		}
	}
}

// Run executes the simulation to completion (or the cycle limit) and returns
// the results.
func (s *Simulator) Run() Result {
	res, _ := s.RunContext(context.Background())
	return res
}

// RunContext is Run with cancellation: the context is polled every few
// thousand steps (cheap enough to be invisible in profiles), and an expired
// context aborts the run with the context's error. With SetWorkers(n > 1)
// the run executes on the conservative-parallel epoch engine instead of the
// sequential sparse loop; the results are byte-identical either way.
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	if s.workers > 1 {
		return s.runParallel(ctx)
	}
	opts := s.opts
	var steps uint
	for s.doneSMs < len(s.sms) && s.now < opts.MaxCycles {
		if steps++; steps&0xFFF == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		t := s.nextTime()
		if t < 0 || t >= opts.MaxCycles {
			// Nothing can happen before the cycle limit: no SM wake, event
			// or controller tick is due inside it (or nothing is pending at
			// all). Idle to the limit — exactly what stepping every
			// remaining cycle would do, minus the spin; settle() charges
			// the skipped idle cycles.
			s.now = opts.MaxCycles
			break
		}
		if t > s.now {
			s.now = t
		}
		s.stepSparse()
	}
	s.settle()
	return s.collect(), nil
}

// RunReference executes the simulation stepping every cycle and cycling every
// live SM — no wake scheduling, no idle-cycle skipping. It is the semantic
// reference the sparse engine must match bit-for-bit (the engine equivalence
// test asserts identical Result structs) and is kept for validation; it is
// dramatically slower on memory-bound workloads.
func (s *Simulator) RunReference() Result {
	for s.doneSMs < len(s.sms) && s.now < s.opts.MaxCycles {
		s.Step()
	}
	s.settle()
	return s.collect()
}
