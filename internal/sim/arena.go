package sim

import (
	"fuse/internal/gpu"
	"fuse/internal/trace"
)

// Arena is the reusable scratch region of one simulation run: the event heap,
// the wake heap, the lazily-charged idle accounting, the flat per-warp state
// of every SM, and the parallel engine's epoch buffers. A fresh simulator
// allocates all of these once and then runs allocation-free; an Arena lets a
// caller that runs many simulations back to back (engine.Runner, benchmark
// loops) reuse the buffers across runs instead of re-allocating them.
//
// Usage: build simulators with NewWithArena, and call ReleaseArena when the
// run is finished to hand the buffers back. An Arena serves one simulator at
// a time; the previous simulator must not be used once its arena has been
// reused. The zero value is ready to use.
type Arena struct {
	events     eventHeap
	staleTicks []staleTick
	wakeAt     []int64
	wakePos    []int
	wakeOrd    []int
	chargedTo  []int64
	dirty      []int
	dirtyMark  []bool
	readyBuf   []int
	sms        []*gpu.SM

	// Flat per-warp slabs, carved into per-SM windows by NewWithArena.
	warps      []gpu.Warp
	pending    []trace.Instruction
	pendingSet []bool

	// Parallel-engine scratch (see parallel.go).
	parts      []epochPart
	commitRecs []commitRec
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// grow returns buf resliced to length n, reallocating only when the capacity
// is insufficient. Contents are unspecified; callers reinitialise.
func grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// takeScratch moves the arena's buffers into the simulator (called from
// NewWithArena before the scratch structures are initialised).
func (s *Simulator) takeScratch(a *Arena, smCount, warpsPerSM int) {
	s.arena = a
	if a == nil {
		return
	}
	s.events = a.events[:0]
	s.staleTicks = a.staleTicks[:0]
	s.wake.at = a.wakeAt
	s.wake.pos = a.wakePos
	s.wake.ord = a.wakeOrd
	s.chargedTo = grow(a.chargedTo, smCount)
	clear(s.chargedTo)
	s.dirty = a.dirty[:0]
	s.dirtyMark = grow(a.dirtyMark, smCount)
	clear(s.dirtyMark)
	s.readyBuf = a.readyBuf[:0]
	s.sms = grow(a.sms, smCount)
	clear(s.sms)
	s.parts = a.parts
	s.commitRecs = a.commitRecs[:0]
	a.warps = grow(a.warps, smCount*warpsPerSM)
	a.pending = grow(a.pending, smCount*warpsPerSM)
	a.pendingSet = grow(a.pendingSet, smCount*warpsPerSM)
}

// smStorage carves SM i's per-warp backing out of the arena's slabs. The
// three-index slice expressions keep the windows from ever growing into a
// neighbour's region.
func (a *Arena) smStorage(i, warpsPerSM int) gpu.SMStorage {
	if a == nil {
		return gpu.SMStorage{}
	}
	lo, hi := i*warpsPerSM, (i+1)*warpsPerSM
	return gpu.SMStorage{
		Warps:      a.warps[lo:hi:hi],
		Pending:    a.pending[lo:hi:hi],
		PendingSet: a.pendingSet[lo:hi:hi],
	}
}

// ReleaseArena hands the simulator's scratch buffers back to the arena the
// simulator was built with (a no-op for simulators built without one). The
// simulator must not be used afterwards once the arena is reused.
func (s *Simulator) ReleaseArena() {
	a := s.arena
	if a == nil {
		return
	}
	a.events = s.events[:0]
	a.staleTicks = s.staleTicks[:0]
	a.wakeAt = s.wake.at
	a.wakePos = s.wake.pos
	a.wakeOrd = s.wake.ord[:0]
	a.chargedTo = s.chargedTo
	a.dirty = s.dirty[:0]
	a.dirtyMark = s.dirtyMark
	a.readyBuf = s.readyBuf[:0]
	a.sms = s.sms
	a.parts = s.parts
	a.commitRecs = s.commitRecs[:0]
}
