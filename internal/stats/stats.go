// Package stats provides small, allocation-light statistics primitives used
// across the simulator: named counters, rates, distributions and the
// geometric-mean helpers the paper uses to aggregate per-benchmark results.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple monotonically increasing event counter.
//
//fuselint:smowned counters are embedded in per-SM-owned structures; cross-SM aggregation happens in the serial collect phase
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// MarshalJSON implements json.Marshaler: a counter serialises as its bare
// value, so results carrying counters survive the store's JSON round-trip.
func (c Counter) MarshalJSON() ([]byte, error) { return json.Marshal(c.n) }

// UnmarshalJSON implements json.Unmarshaler.
func (c *Counter) UnmarshalJSON(b []byte) error { return json.Unmarshal(b, &c.n) }

// Ratio returns c / other as a float, or 0 if other is zero.
func (c *Counter) Ratio(other *Counter) float64 {
	if other.n == 0 {
		return 0
	}
	return float64(c.n) / float64(other.n)
}

// Rate tracks hits out of a number of trials (e.g. cache hits vs. accesses,
// predictor correct vs. predictions).
type Rate struct {
	Hits   uint64
	Trials uint64
}

// Observe records one trial with the given outcome.
func (r *Rate) Observe(hit bool) {
	r.Trials++
	if hit {
		r.Hits++
	}
}

// AddHits records n successful trials.
func (r *Rate) AddHits(n uint64) { r.Hits += n; r.Trials += n }

// AddMisses records n unsuccessful trials.
func (r *Rate) AddMisses(n uint64) { r.Trials += n }

// Value returns hits/trials, or 0 when no trials were observed.
func (r *Rate) Value() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Trials)
}

// Miss returns 1 - Value() when trials were observed, else 0.
func (r *Rate) Miss() float64 {
	if r.Trials == 0 {
		return 0
	}
	return 1 - r.Value()
}

// Distribution accumulates scalar samples and reports summary statistics.
type Distribution struct {
	count uint64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Observe adds one sample.
func (d *Distribution) Observe(v float64) {
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	d.sumSq += v * v
}

// Count returns the number of samples observed.
func (d *Distribution) Count() uint64 { return d.count }

// Sum returns the total of all samples.
func (d *Distribution) Sum() float64 { return d.sum }

// Mean returns the arithmetic mean of the samples (0 if empty).
func (d *Distribution) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Min returns the smallest observed sample (0 if empty).
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest observed sample (0 if empty).
func (d *Distribution) Max() float64 { return d.max }

// StdDev returns the population standard deviation of the samples.
func (d *Distribution) StdDev() float64 {
	if d.count == 0 {
		return 0
	}
	m := d.Mean()
	v := d.sumSq/float64(d.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// GeoMean returns the geometric mean of the values, ignoring non-positive
// entries (matching how the paper reports "GMEANS" across benchmarks).
func GeoMean(values []float64) float64 {
	logSum := 0.0
	n := 0
	for _, v := range values {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of values (0 if empty).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Histogram is a fixed-bucket histogram over [0, buckets*width).
type Histogram struct {
	width    float64
	buckets  []uint64
	overflow uint64
	count    uint64
}

// NewHistogram creates a histogram with the given number of buckets each of
// the given width. Samples beyond the last bucket land in an overflow bin.
func NewHistogram(buckets int, width float64) *Histogram {
	if buckets <= 0 {
		buckets = 1
	}
	if width <= 0 {
		width = 1
	}
	return &Histogram{width: width, buckets: make([]uint64, buckets)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.count++
	if v < 0 {
		v = 0
	}
	idx := int(v / h.width)
	if idx >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Overflow returns the number of samples beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Percentile returns an approximate p-quantile (0 <= p <= 1) assuming samples
// are uniformly distributed within buckets. Overflow samples are reported as
// the upper edge of the histogram.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.count)
	cum := 0.0
	for i, b := range h.buckets {
		next := cum + float64(b)
		if next >= target && b > 0 {
			frac := 0.0
			if b > 0 {
				frac = (target - cum) / float64(b)
			}
			return (float64(i) + frac) * h.width
		}
		cum = next
	}
	return float64(len(h.buckets)) * h.width
}

// Table is a lightweight text table used by the experiment harness to print
// the rows of a reproduced paper table or figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of cells. Extra cells are dropped and missing ones are
// padded with empty strings so the table stays rectangular.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowValues appends a row with a leading label and formatted float cells.
func (t *Table) AddRowValues(label string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, FormatFloat(v))
	}
	t.AddRow(cells...)
}

// FormatFloat renders a float compactly: integers without a decimal point,
// others with three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsByFirstColumn orders rows lexicographically by their first cell;
// useful for deterministic output when rows were accumulated from a map.
func (t *Table) SortRowsByFirstColumn() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
}
