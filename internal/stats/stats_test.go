package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("new counter not zero: %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value() = %d, want 5", c.Value())
	}
	var d Counter
	d.Add(10)
	if got := c.Ratio(&d); got != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", got)
	}
	var zero Counter
	if got := c.Ratio(&zero); got != 0 {
		t.Errorf("Ratio vs zero = %v, want 0", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Reset did not zero counter")
	}
}

func TestRate(t *testing.T) {
	var r Rate
	if r.Value() != 0 || r.Miss() != 0 {
		t.Fatalf("empty rate should be 0")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	r.Observe(false)
	if got := r.Value(); got != 0.5 {
		t.Errorf("Value() = %v, want 0.5", got)
	}
	if got := r.Miss(); got != 0.5 {
		t.Errorf("Miss() = %v, want 0.5", got)
	}
	r.AddHits(2)
	r.AddMisses(2)
	if r.Trials != 8 || r.Hits != 4 {
		t.Errorf("after AddHits/AddMisses got %d/%d, want 4/8", r.Hits, r.Trials)
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	for _, v := range []float64{1, 2, 3, 4} {
		d.Observe(v)
	}
	if d.Count() != 4 {
		t.Errorf("Count = %d", d.Count())
	}
	if d.Mean() != 2.5 {
		t.Errorf("Mean = %v, want 2.5", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 4 {
		t.Errorf("Min/Max = %v/%v, want 1/4", d.Min(), d.Max())
	}
	if d.Sum() != 10 {
		t.Errorf("Sum = %v, want 10", d.Sum())
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(d.StdDev()-wantStd) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", d.StdDev(), wantStd)
	}
	var empty Distribution
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Errorf("empty distribution should report zeros")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("GeoMean(1,1,1) = %v, want 1", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{0, -3, 2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with non-positive entries = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	prop := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) && v < 1e100 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		g := GeoMean(vals)
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		const eps = 1e-9
		return g >= min*(1-eps) && g <= max*(1+eps)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	h.Observe(1000) // overflow
	h.Observe(-5)   // clamps to first bucket
	if h.Count() != 102 {
		t.Errorf("Count = %d, want 102", h.Count())
	}
	if h.Bucket(0) != 11 { // 0..9 plus the clamped -5
		t.Errorf("Bucket(0) = %d, want 11", h.Bucket(0))
	}
	if h.Bucket(5) != 10 {
		t.Errorf("Bucket(5) = %d, want 10", h.Bucket(5))
	}
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow())
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Errorf("out-of-range Bucket should be 0")
	}
	p50 := h.Percentile(0.5)
	if p50 < 30 || p50 > 70 {
		t.Errorf("Percentile(0.5) = %v, expected around 50", p50)
	}
	if got := h.Percentile(-1); got < 0 {
		t.Errorf("Percentile(-1) should clamp, got %v", got)
	}
	var empty = NewHistogram(4, 1)
	if empty.Percentile(0.5) != 0 {
		t.Errorf("empty percentile should be 0")
	}
	if bad := NewHistogram(0, 0); bad == nil || len(bad.buckets) != 1 {
		t.Errorf("NewHistogram should clamp invalid arguments")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("b", "2")
	tab.AddRow("a") // short row padded
	tab.AddRowValues("c", 3.14159, 4)
	tab.SortRowsByFirstColumn()
	out := tab.String()
	if !strings.Contains(out, "Demo") {
		t.Errorf("missing title in output:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("missing formatted float in output:\n%s", out)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "a" || tab.Rows[2][0] != "c" {
		t.Errorf("rows not sorted: %v", tab.Rows)
	}
	if tab.Rows[1][1] != "2" {
		t.Errorf("unexpected cell: %v", tab.Rows[1])
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(3); got != "3" {
		t.Errorf("FormatFloat(3) = %q", got)
	}
	if got := FormatFloat(0.123456); got != "0.123" {
		t.Errorf("FormatFloat(0.123456) = %q", got)
	}
}
