package cache

import "fuse/internal/mem"

// VictimCache is a small fully-associative buffer that catches blocks evicted
// from a primary cache (Jouppi-style). The paper's related-work section
// argues such a buffer is too small for GPUs; we implement it so the claim
// can be tested, and because the simplest hybrid baseline ("use STT-MRAM as a
// victim buffer of SRAM") is expressed with it.
type VictimCache struct {
	store *TagStore

	hits   uint64
	misses uint64
}

// NewVictimCache creates a fully-associative victim cache holding `blocks`
// lines, managed FIFO.
func NewVictimCache(blocks int) *VictimCache {
	if blocks <= 0 {
		blocks = 1
	}
	return &VictimCache{store: NewTagStore(1, blocks, FIFO)}
}

// Capacity returns the number of lines the victim cache can hold.
func (v *VictimCache) Capacity() int { return v.store.Ways() }

// Insert places an evicted block into the victim cache, returning the block
// displaced from the victim cache itself (Valid=false if none).
func (v *VictimCache) Insert(block uint64, pc uint64, now int64, dirty bool) Line {
	evicted, line := v.store.Insert(block, pc, now, false, mem.WORO)
	line.Dirty = dirty
	return evicted
}

// Probe checks whether the block is present and, if so, removes it (a victim
// hit moves the line back to the primary cache). It returns the stored line
// and whether it was found.
func (v *VictimCache) Probe(block uint64) (Line, bool) {
	if _, _, hit := v.store.Lookup(block); hit {
		v.hits++
		return v.store.Invalidate(block), true
	}
	v.misses++
	return Line{}, false
}

// HitRate returns the fraction of probes that hit.
func (v *VictimCache) HitRate() float64 {
	total := v.hits + v.misses
	if total == 0 {
		return 0
	}
	return float64(v.hits) / float64(total)
}

// Occupancy returns the number of valid lines currently held.
func (v *VictimCache) Occupancy() int { return v.store.Occupancy() }
