package cache

import (
	"errors"

	"fuse/internal/mem"
)

// DestBank identifies the cache bank a fill response should be steered to.
// The paper extends the classic MSHR "destination bits" field with internal
// cache bank IDs so that a fill can be routed to either the SRAM or the
// STT-MRAM bank of the FUSE L1D.
type DestBank uint8

const (
	// DestSRAM routes the fill to the SRAM bank.
	DestSRAM DestBank = iota
	// DestSTTMRAM routes the fill to the STT-MRAM bank.
	DestSTTMRAM
	// DestBypass indicates the data should be returned to the core without
	// being allocated in the L1D (dead-write bypass or WORO blocks).
	DestBypass
)

// String implements fmt.Stringer.
func (d DestBank) String() string {
	switch d {
	case DestSRAM:
		return "SRAM"
	case DestSTTMRAM:
		return "STT-MRAM"
	case DestBypass:
		return "bypass"
	default:
		return "unknown"
	}
}

// ErrMSHRFull is returned when no primary-miss entry can be allocated.
var ErrMSHRFull = errors.New("cache: MSHR full")

// ErrMSHRMergeFull is returned when the primary miss exists but its merge
// list is exhausted.
var ErrMSHRMergeFull = errors.New("cache: MSHR merge list full")

// MSHREntry tracks one outstanding primary miss and the secondary misses
// merged into it.
type MSHREntry struct {
	Block   uint64
	Primary mem.Request
	Merged  []mem.Request
	Dest    DestBank
	// Level is the read level predicted for the block at miss time; the
	// arbiter uses it when the fill returns.
	Level mem.ReadLevel
	// Issued marks whether the outgoing request has been handed to the
	// interconnect yet.
	Issued bool
}

// Requests returns the primary request followed by all merged requests.
func (e *MSHREntry) Requests() []mem.Request {
	out := make([]mem.Request, 0, 1+len(e.Merged))
	out = append(out, e.Primary)
	out = append(out, e.Merged...)
	return out
}

// MSHR is a miss status holding register file: a bounded map from block
// address to outstanding-miss entry with bounded merging.
//
//fuselint:smowned one MSHR per L1D, and each L1D belongs to exactly one SM
type MSHR struct {
	maxEntries int
	maxMerge   int
	entries    map[uint64]*MSHREntry
	// order preserves allocation order so that PopUnissued is fair.
	order []uint64
	// free recycles released entries (see Recycle): the MSHR working set is
	// bounded by maxEntries, so the steady state of a miss-heavy run
	// allocates no entry structs at all.
	free []*MSHREntry

	peakOccupancy int
	mergedCount   uint64
	allocCount    uint64
	fullStalls    uint64
}

// NewMSHR creates an MSHR with the given number of primary entries and
// maximum merged requests per entry.
func NewMSHR(entries, mergeWidth int) *MSHR {
	if entries <= 0 {
		entries = 1
	}
	if mergeWidth < 0 {
		mergeWidth = 0
	}
	return &MSHR{
		maxEntries: entries,
		maxMerge:   mergeWidth,
		entries:    make(map[uint64]*MSHREntry, entries),
	}
}

// Capacity returns the number of primary entries.
func (m *MSHR) Capacity() int { return m.maxEntries }

// Occupancy returns the number of outstanding primary misses.
func (m *MSHR) Occupancy() int { return len(m.entries) }

// Full reports whether a new primary miss cannot be accepted.
func (m *MSHR) Full() bool { return len(m.entries) >= m.maxEntries }

// PeakOccupancy returns the maximum number of simultaneously outstanding
// primary misses observed.
func (m *MSHR) PeakOccupancy() int { return m.peakOccupancy }

// Merged returns the number of secondary misses merged so far.
func (m *MSHR) Merged() uint64 { return m.mergedCount }

// Allocations returns the number of primary misses allocated so far.
func (m *MSHR) Allocations() uint64 { return m.allocCount }

// FullStalls returns how many allocation attempts failed because the MSHR (or
// a merge list) was full.
func (m *MSHR) FullStalls() uint64 { return m.fullStalls }

// Lookup returns the entry for the block, if any.
func (m *MSHR) Lookup(block uint64) (*MSHREntry, bool) {
	e, ok := m.entries[block]
	return e, ok
}

// Allocate records a miss for req's block. If an entry already exists the
// request is merged (subject to the merge width); otherwise a new primary
// entry is created with the given destination bank and read level.
// The boolean result reports whether the request became a new primary miss
// (true) or was merged (false).
//
//fuselint:noalloc
func (m *MSHR) Allocate(req mem.Request, dest DestBank, level mem.ReadLevel) (bool, error) {
	block := req.BlockAddr()
	if e, ok := m.entries[block]; ok {
		if len(e.Merged) >= m.maxMerge {
			m.fullStalls++
			return false, ErrMSHRMergeFull
		}
		e.Merged = append(e.Merged, req)
		m.mergedCount++
		return false, nil
	}
	if m.Full() {
		m.fullStalls++
		return false, ErrMSHRFull
	}
	var e *MSHREntry
	if n := len(m.free); n > 0 {
		e = m.free[n-1]
		m.free = m.free[:n-1]
		*e = MSHREntry{Block: block, Primary: req, Merged: e.Merged[:0], Dest: dest, Level: level}
	} else {
		e = &MSHREntry{Block: block, Primary: req, Dest: dest, Level: level}
	}
	m.entries[block] = e
	m.order = append(m.order, block)
	m.allocCount++
	if len(m.entries) > m.peakOccupancy {
		m.peakOccupancy = len(m.entries)
	}
	return true, nil
}

// PopUnissued returns the oldest entry whose outgoing request has not yet
// been sent to the lower level, marking it issued. It returns nil when every
// outstanding miss has already been issued.
func (m *MSHR) PopUnissued() *MSHREntry {
	for _, block := range m.order {
		e, ok := m.entries[block]
		if ok && !e.Issued {
			e.Issued = true
			return e
		}
	}
	return nil
}

// Release removes the entry for the block (on fill) and returns it. The
// second result is false if no entry existed.
//
//fuselint:noalloc
func (m *MSHR) Release(block uint64) (*MSHREntry, bool) {
	e, ok := m.entries[block]
	if !ok {
		return nil, false
	}
	delete(m.entries, block)
	for i, b := range m.order {
		if b == block {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return e, true
}

// Recycle returns a released entry to the MSHR's free list so a later
// Allocate can reuse it. Callers hand the entry back once they are done with
// its fields; the entry must not be used afterwards.
//
//fuselint:noalloc
func (m *MSHR) Recycle(e *MSHREntry) {
	if e == nil {
		return
	}
	m.free = append(m.free, e)
}

// Reset clears all entries and statistics.
func (m *MSHR) Reset() {
	m.entries = make(map[uint64]*MSHREntry, m.maxEntries)
	m.order = m.order[:0]
	m.peakOccupancy = 0
	m.mergedCount = 0
	m.allocCount = 0
	m.fullStalls = 0
}
