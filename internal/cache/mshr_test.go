package cache

import (
	"errors"
	"testing"

	"fuse/internal/mem"
)

func req(block int, kind mem.AccessKind) mem.Request {
	return mem.Request{Addr: uint64(block) * mem.BlockSize, Kind: kind}
}

func TestMSHRAllocateAndMerge(t *testing.T) {
	m := NewMSHR(2, 2)
	if m.Capacity() != 2 || m.Occupancy() != 0 || m.Full() {
		t.Fatalf("fresh MSHR state wrong")
	}
	primary, err := m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM)
	if err != nil || !primary {
		t.Fatalf("first allocate: primary=%v err=%v", primary, err)
	}
	// Same block merges.
	primary, err = m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM)
	if err != nil || primary {
		t.Fatalf("second allocate should merge: primary=%v err=%v", primary, err)
	}
	if m.Merged() != 1 || m.Allocations() != 1 {
		t.Errorf("merge accounting wrong: merged=%d alloc=%d", m.Merged(), m.Allocations())
	}
	e, ok := m.Lookup(mem.BlockAlign(uint64(mem.BlockSize)))
	if !ok || len(e.Requests()) != 2 {
		t.Errorf("entry should hold primary + 1 merged request")
	}
	// Third request to the same block exceeds merge width 2 after one more.
	if _, err := m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM); err != nil {
		t.Fatalf("second merge should fit: %v", err)
	}
	if _, err := m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM); !errors.Is(err, ErrMSHRMergeFull) {
		t.Errorf("expected ErrMSHRMergeFull, got %v", err)
	}
	// A different block takes the second primary entry.
	if _, err := m.Allocate(req(2, mem.Write), DestSTTMRAM, mem.WriteMultiple); err != nil {
		t.Fatalf("second primary: %v", err)
	}
	if !m.Full() {
		t.Errorf("MSHR should be full with 2 entries")
	}
	if _, err := m.Allocate(req(3, mem.Read), DestSRAM, mem.WORM); !errors.Is(err, ErrMSHRFull) {
		t.Errorf("expected ErrMSHRFull, got %v", err)
	}
	if m.FullStalls() != 2 {
		t.Errorf("FullStalls = %d, want 2", m.FullStalls())
	}
	if m.PeakOccupancy() != 2 {
		t.Errorf("PeakOccupancy = %d, want 2", m.PeakOccupancy())
	}
}

func TestMSHRPopUnissuedOrder(t *testing.T) {
	m := NewMSHR(4, 4)
	m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM)
	m.Allocate(req(2, mem.Read), DestSTTMRAM, mem.WORM)
	m.Allocate(req(3, mem.Read), DestBypass, mem.WORO)
	first := m.PopUnissued()
	second := m.PopUnissued()
	third := m.PopUnissued()
	if first == nil || second == nil || third == nil {
		t.Fatalf("expected three unissued entries")
	}
	if first.Block != req(1, mem.Read).BlockAddr() ||
		second.Block != req(2, mem.Read).BlockAddr() ||
		third.Block != req(3, mem.Read).BlockAddr() {
		t.Errorf("PopUnissued should preserve allocation order")
	}
	if m.PopUnissued() != nil {
		t.Errorf("all entries already issued")
	}
	if !first.Issued {
		t.Errorf("popped entry should be marked issued")
	}
}

func TestMSHRRelease(t *testing.T) {
	m := NewMSHR(2, 2)
	m.Allocate(req(7, mem.Read), DestSTTMRAM, mem.WORM)
	block := req(7, mem.Read).BlockAddr()
	e, ok := m.Release(block)
	if !ok || e.Block != block || e.Dest != DestSTTMRAM || e.Level != mem.WORM {
		t.Errorf("Release returned wrong entry: %+v ok=%v", e, ok)
	}
	if m.Occupancy() != 0 {
		t.Errorf("occupancy after release = %d", m.Occupancy())
	}
	if _, ok := m.Release(block); ok {
		t.Errorf("double release should fail")
	}
	// After release, the same block can allocate a fresh primary miss and
	// PopUnissued sees it again.
	m.Allocate(req(7, mem.Write), DestSRAM, mem.WriteMultiple)
	if e := m.PopUnissued(); e == nil || e.Block != block {
		t.Errorf("re-allocated entry should be unissued")
	}
}

func TestMSHRReset(t *testing.T) {
	m := NewMSHR(2, 1)
	m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM)
	m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM)
	m.Reset()
	if m.Occupancy() != 0 || m.Merged() != 0 || m.Allocations() != 0 || m.PeakOccupancy() != 0 {
		t.Errorf("Reset should clear state and stats")
	}
	if m.PopUnissued() != nil {
		t.Errorf("Reset should clear the issue queue")
	}
}

func TestMSHRClampsBadArguments(t *testing.T) {
	m := NewMSHR(0, -1)
	if m.Capacity() != 1 {
		t.Errorf("capacity should clamp to 1, got %d", m.Capacity())
	}
	if _, err := m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM); err != nil {
		t.Fatalf("allocate into clamped MSHR: %v", err)
	}
	// Merge width clamped to 0: merging is impossible.
	if _, err := m.Allocate(req(1, mem.Read), DestSRAM, mem.WORM); !errors.Is(err, ErrMSHRMergeFull) {
		t.Errorf("expected merge-full with zero merge width, got %v", err)
	}
}

func TestDestBankString(t *testing.T) {
	if DestSRAM.String() != "SRAM" || DestSTTMRAM.String() != "STT-MRAM" || DestBypass.String() != "bypass" {
		t.Errorf("unexpected DestBank strings")
	}
	if DestBank(9).String() != "unknown" {
		t.Errorf("unknown DestBank should render as unknown")
	}
}

func TestVictimCache(t *testing.T) {
	v := NewVictimCache(2)
	if v.Capacity() != 2 {
		t.Fatalf("capacity = %d", v.Capacity())
	}
	if _, hit := v.Probe(blockAddr(1)); hit {
		t.Errorf("empty victim cache should miss")
	}
	v.Insert(blockAddr(1), 0, 0, true)
	v.Insert(blockAddr(2), 0, 1, false)
	if v.Occupancy() != 2 {
		t.Errorf("occupancy = %d", v.Occupancy())
	}
	// Inserting a third displaces the oldest (FIFO).
	displaced := v.Insert(blockAddr(3), 0, 2, false)
	if !displaced.Valid || displaced.Block != blockAddr(1) {
		t.Errorf("expected block 1 displaced, got %+v", displaced)
	}
	line, hit := v.Probe(blockAddr(2))
	if !hit || line.Block != blockAddr(2) {
		t.Errorf("probe of present block failed")
	}
	// A probe hit removes the line.
	if _, hit := v.Probe(blockAddr(2)); hit {
		t.Errorf("probe hit should remove the line")
	}
	if v.HitRate() <= 0 || v.HitRate() >= 1 {
		t.Errorf("hit rate should be strictly between 0 and 1, got %v", v.HitRate())
	}
	if NewVictimCache(0).Capacity() != 1 {
		t.Errorf("zero-capacity victim cache should clamp to 1")
	}
	empty := NewVictimCache(4)
	if empty.HitRate() != 0 {
		t.Errorf("hit rate of unused cache should be 0")
	}
}
