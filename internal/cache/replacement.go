// Package cache provides the building blocks shared by every cache in the
// simulated hierarchy: a set-associative/fully-associative tag store with
// pluggable replacement policies, and a GPU-style miss status holding
// register (MSHR) with destination bits and request merging.
package cache

import "fmt"

// ReplacementKind selects the victim-selection policy of a tag store.
type ReplacementKind uint8

const (
	// LRU evicts the least recently used way. The paper uses LRU for the
	// SRAM banks and for the L2 cache.
	LRU ReplacementKind = iota
	// FIFO evicts the oldest-inserted way. The paper uses FIFO for the
	// (approximately) fully-associative STT-MRAM bank because true LRU is
	// not affordable at 512 ways.
	FIFO
	// PseudoLRU uses a binary-tree approximation of LRU, the usual
	// compromise for moderately associative SRAM arrays.
	PseudoLRU
)

// String implements fmt.Stringer.
func (k ReplacementKind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case PseudoLRU:
		return "PseudoLRU"
	default:
		return fmt.Sprintf("ReplacementKind(%d)", uint8(k))
	}
}

// replacementState tracks per-set victim-selection state. It is sized for a
// single set and embedded once per set in the tag store.
//
//fuselint:smowned embedded in TagStore, one tag store per SM-owned L1D
type replacementState struct {
	kind ReplacementKind
	// order holds way indices from least to most recently used (LRU) or
	// from oldest to newest insertion (FIFO).
	order []int
	// tree holds the pseudo-LRU decision bits (ways-1 internal nodes).
	tree []bool
	ways int
}

func newReplacementState(kind ReplacementKind, ways int) *replacementState {
	s := &replacementState{kind: kind, ways: ways}
	switch kind {
	case LRU, FIFO:
		s.order = make([]int, 0, ways)
	case PseudoLRU:
		s.tree = make([]bool, ways)
	}
	return s
}

// onInsert records that the given way was just filled.
func (s *replacementState) onInsert(way int) {
	switch s.kind {
	case LRU, FIFO:
		s.remove(way)
		s.order = append(s.order, way)
	case PseudoLRU:
		s.touchTree(way)
	}
}

// onAccess records a hit on the given way.
func (s *replacementState) onAccess(way int) {
	switch s.kind {
	case LRU:
		s.remove(way)
		s.order = append(s.order, way)
	case FIFO:
		// FIFO ignores accesses.
	case PseudoLRU:
		s.touchTree(way)
	}
}

// onInvalidate removes the way from the bookkeeping.
func (s *replacementState) onInvalidate(way int) {
	switch s.kind {
	case LRU, FIFO:
		s.remove(way)
	case PseudoLRU:
		// Nothing to do: invalid ways are preferred victims anyway.
	}
}

func (s *replacementState) remove(way int) {
	for i, w := range s.order {
		if w == way {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// victimAll selects the way to evict when every way of the set is a
// candidate — the common case on a full-set insert. It is victim() minus the
// candidate bookkeeping (no subset map, no allocation): for LRU/FIFO the
// least-recent entry of the order list is by construction a valid way, and
// for pseudo-LRU the preferred leaf needs no snapping.
func (s *replacementState) victimAll() int {
	switch s.kind {
	case LRU, FIFO:
		if len(s.order) > 0 {
			return s.order[0]
		}
		return 0
	case PseudoLRU:
		return s.treeLeaf()
	default:
		return 0
	}
}

// victim selects the way to evict among the given candidate ways (all valid).
func (s *replacementState) victim(validWays []int) int {
	if len(validWays) == 0 {
		return 0
	}
	switch s.kind {
	case LRU, FIFO:
		inSet := make(map[int]bool, len(validWays))
		for _, w := range validWays {
			inSet[w] = true
		}
		for _, w := range s.order {
			if inSet[w] {
				return w
			}
		}
		// Fall back to the first candidate if bookkeeping lost track.
		return validWays[0]
	case PseudoLRU:
		return s.treeVictim(validWays)
	default:
		return validWays[0]
	}
}

// touchTree flips the pseudo-LRU tree bits along the path to `way` so that
// the path points away from it.
func (s *replacementState) touchTree(way int) {
	if s.ways <= 1 {
		return
	}
	node := 1
	// Walk from the root toward the leaf corresponding to `way`.
	span := s.ways
	lo := 0
	for span > 1 {
		half := span / 2
		goRight := way >= lo+half
		if node < len(s.tree) {
			// Point the bit away from the accessed half.
			s.tree[node] = !goRight
		}
		if goRight {
			lo += half
			node = node*2 + 1
		} else {
			node = node * 2
		}
		span = half
	}
}

// treeLeaf follows the pseudo-LRU bits from the root to the preferred victim
// leaf.
func (s *replacementState) treeLeaf() int {
	node := 1
	lo := 0
	span := s.ways
	for span > 1 {
		half := span / 2
		right := false
		if node < len(s.tree) {
			right = s.tree[node]
		}
		if right {
			lo += half
			node = node*2 + 1
		} else {
			node = node * 2
		}
		span = half
	}
	return lo
}

// treeVictim follows the pseudo-LRU bits to a leaf, then snaps to the nearest
// candidate way.
func (s *replacementState) treeVictim(validWays []int) int {
	if s.ways <= 1 {
		return validWays[0]
	}
	lo := s.treeLeaf()
	// lo is the preferred victim; snap to the closest candidate.
	best := validWays[0]
	bestDist := abs(best - lo)
	for _, w := range validWays[1:] {
		if d := abs(w - lo); d < bestDist {
			best, bestDist = w, d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
