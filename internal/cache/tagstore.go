package cache

import (
	"fmt"

	"fuse/internal/mem"
)

// Line is the metadata of one cache block. The simulator does not store data
// contents, only the bookkeeping needed for timing and placement decisions.
type Line struct {
	// Valid marks the line as holding a block.
	Valid bool
	// Dirty marks the line as modified relative to the lower level.
	Dirty bool
	// Block is the block-aligned address held by the line.
	Block uint64
	// PC is the program counter of the instruction that allocated the
	// line; the read-level predictor needs it on eviction.
	PC uint64
	// Level is the read level predicted at allocation time (used by
	// Dy-FUSE to audit its predictions).
	Level mem.ReadLevel
	// InsertCycle and LastAccess are used for statistics and FIFO/LRU
	// style diagnostics.
	InsertCycle int64
	LastAccess  int64
	// Reads and Writes count accesses to the line since allocation; they
	// drive predictor training and the Figure 16 accuracy accounting.
	//fuselint:internalstat consumed indirectly: predictor training reads the line's age/stats via Observe paths, not this raw count; kept per-line for diagnostics
	Reads  uint64
	Writes uint64
}

// ResetCounters clears the per-lifetime access counters.
func (l *Line) ResetCounters() {
	l.Reads = 0
	l.Writes = 0
}

// invalidTag marks an empty way in the compact tag array. Block addresses
// are 128-byte aligned, so the all-ones pattern can never collide with one.
const invalidTag = ^uint64(0)

// TagStore is a set-associative tag array. A fully-associative store is
// simply a TagStore with a single set.
//
//fuselint:smowned one tag store per SM-owned L1D, never shared across SMs
type TagStore struct {
	sets  int
	ways  int
	kind  ReplacementKind
	lines [][]Line
	repl  []*replacementState

	// tags mirrors lines: tags[s][w] is the block held by a valid way and
	// invalidTag otherwise. Tag searches scan this compact array instead of
	// the ~64-byte Line structs — for the 512-way fully-associative STT-MRAM
	// bank that is an 8x reduction in memory traffic per lookup, and lookups
	// dominate the simulator's profile.
	tags [][]uint64

	// occupancy counts the number of valid lines.
	occupancy int
}

// NewTagStore creates a tag store with the given geometry and replacement
// policy. It panics on non-positive geometry, which always indicates a
// configuration bug.
func NewTagStore(sets, ways int, kind ReplacementKind) *TagStore {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid tag store geometry %dx%d", sets, ways))
	}
	t := &TagStore{sets: sets, ways: ways, kind: kind}
	t.lines = make([][]Line, sets)
	t.repl = make([]*replacementState, sets)
	t.tags = make([][]uint64, sets)
	for s := 0; s < sets; s++ {
		t.lines[s] = make([]Line, ways)
		t.repl[s] = newReplacementState(kind, ways)
		t.tags[s] = make([]uint64, ways)
		for w := range t.tags[s] {
			t.tags[s][w] = invalidTag
		}
	}
	return t
}

// Sets returns the number of sets.
func (t *TagStore) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *TagStore) Ways() int { return t.ways }

// Blocks returns the total number of lines.
func (t *TagStore) Blocks() int { return t.sets * t.ways }

// Occupancy returns the number of valid lines.
func (t *TagStore) Occupancy() int { return t.occupancy }

// FullyAssociative reports whether the store has a single set.
func (t *TagStore) FullyAssociative() bool { return t.sets == 1 }

// SetIndex maps a block address to its set.
func (t *TagStore) SetIndex(block uint64) int {
	return int(mem.BlockIndex(block)) % t.sets
}

// Lookup searches for the block and returns the line and its way index. The
// returned pointer aliases the store; callers may update counters through it.
// It does not update replacement state; use Touch for that.
func (t *TagStore) Lookup(block uint64) (*Line, int, bool) {
	set := t.SetIndex(block)
	for w, tag := range t.tags[set] {
		if tag == block {
			return &t.lines[set][w], w, true
		}
	}
	return nil, -1, false
}

// Probe reports whether the block is present without touching any state.
func (t *TagStore) Probe(block uint64) bool {
	_, _, hit := t.Lookup(block)
	return hit
}

// Touch records a hit on the block at cycle now, updating the replacement
// state and the line's counters.
func (t *TagStore) Touch(block uint64, now int64, write bool) (*Line, bool) {
	set := t.SetIndex(block)
	for w, tag := range t.tags[set] {
		if tag == block {
			l := &t.lines[set][w]
			l.LastAccess = now
			if write {
				l.Writes++
				l.Dirty = true
			} else {
				l.Reads++
			}
			t.repl[set].onAccess(w)
			return l, true
		}
	}
	return nil, false
}

// HasFreeWay reports whether the set for the given block has an invalid way.
func (t *TagStore) HasFreeWay(block uint64) bool {
	set := t.SetIndex(block)
	for _, tag := range t.tags[set] {
		if tag == invalidTag {
			return true
		}
	}
	return false
}

// Insert allocates a line for the block, evicting a victim if necessary. The
// returned evicted Line is a copy of the victim (Valid=false in the returned
// copy means no eviction happened). The new line's counters reflect the
// allocating access.
func (t *TagStore) Insert(block uint64, pc uint64, now int64, write bool, level mem.ReadLevel) (evicted Line, line *Line) {
	set := t.SetIndex(block)
	way := -1
	for w, tag := range t.tags[set] {
		if tag == invalidTag {
			way = w
			break
		}
	}
	if way < 0 {
		// Every way is valid: the full-set victim path needs no candidate
		// bookkeeping (victim() with an explicit subset exists for callers
		// that partition a set).
		way = t.repl[set].victimAll()
		evicted = t.lines[set][way]
		t.repl[set].onInvalidate(way)
		t.occupancy--
	}
	t.tags[set][way] = block
	l := &t.lines[set][way]
	*l = Line{
		Valid:       true,
		Block:       block,
		PC:          pc,
		Level:       level,
		InsertCycle: now,
		LastAccess:  now,
	}
	if write {
		l.Writes = 1
		l.Dirty = true
	} else {
		l.Reads = 1
	}
	t.occupancy++
	t.repl[set].onInsert(way)
	return evicted, l
}

// Invalidate removes the block from the store and returns a copy of the line
// it occupied (Valid reports whether anything was removed).
func (t *TagStore) Invalidate(block uint64) Line {
	set := t.SetIndex(block)
	for w, tag := range t.tags[set] {
		if tag == block {
			l := &t.lines[set][w]
			old := *l
			*l = Line{}
			t.tags[set][w] = invalidTag
			t.repl[set].onInvalidate(w)
			t.occupancy--
			return old
		}
	}
	return Line{}
}

// VictimFor returns a copy of the line that would be evicted if the block
// were inserted now, without modifying any state. Valid is false when the set
// still has a free way.
func (t *TagStore) VictimFor(block uint64) Line {
	set := t.SetIndex(block)
	for _, tag := range t.tags[set] {
		if tag == invalidTag {
			return Line{}
		}
	}
	return t.lines[set][t.repl[set].victimAll()]
}

// ForEach calls fn for every valid line. Iteration order is deterministic
// (set-major, way-minor).
func (t *TagStore) ForEach(fn func(l *Line)) {
	for s := range t.lines {
		for w := range t.lines[s] {
			if t.lines[s][w].Valid {
				fn(&t.lines[s][w])
			}
		}
	}
}

// SetOf returns the way slice of the set containing the given block. Exposed
// for the associativity-approximation logic, which partitions the tag array
// into CBF-indexed regions.
func (t *TagStore) SetOf(block uint64) []Line {
	return t.lines[t.SetIndex(block)]
}

// LinesInSet returns the line metadata of set s (aliasing internal storage).
func (t *TagStore) LinesInSet(s int) []Line {
	return t.lines[s]
}

// Reset invalidates every line.
func (t *TagStore) Reset() {
	for s := range t.lines {
		for w := range t.lines[s] {
			t.lines[s][w] = Line{}
			t.tags[s][w] = invalidTag
		}
		t.repl[s] = newReplacementState(t.kind, t.ways)
	}
	t.occupancy = 0
}
