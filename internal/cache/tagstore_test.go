package cache

import (
	"testing"
	"testing/quick"

	"fuse/internal/mem"
)

func blockAddr(i int) uint64 { return uint64(i) * mem.BlockSize }

func TestTagStoreBasicInsertLookup(t *testing.T) {
	ts := NewTagStore(4, 2, LRU)
	if ts.Sets() != 4 || ts.Ways() != 2 || ts.Blocks() != 8 {
		t.Fatalf("geometry mismatch: %d sets %d ways", ts.Sets(), ts.Ways())
	}
	if ts.FullyAssociative() {
		t.Errorf("4-set store should not be fully associative")
	}
	ev, line := ts.Insert(blockAddr(1), 0x100, 10, false, mem.WORM)
	if ev.Valid {
		t.Errorf("unexpected eviction on empty store")
	}
	if !line.Valid || line.Block != blockAddr(1) || line.Reads != 1 || line.Writes != 0 {
		t.Errorf("inserted line malformed: %+v", line)
	}
	got, way, hit := ts.Lookup(blockAddr(1))
	if !hit || way < 0 || got.Block != blockAddr(1) {
		t.Errorf("Lookup failed after insert")
	}
	if ts.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", ts.Occupancy())
	}
	if _, _, hit := ts.Lookup(blockAddr(2)); hit {
		t.Errorf("lookup of absent block should miss")
	}
	if !ts.Probe(blockAddr(1)) || ts.Probe(blockAddr(99)) {
		t.Errorf("Probe results wrong")
	}
}

func TestTagStoreTouchUpdatesCounters(t *testing.T) {
	ts := NewTagStore(2, 2, LRU)
	ts.Insert(blockAddr(4), 0, 0, true, mem.WriteMultiple)
	l, hit := ts.Touch(blockAddr(4), 5, false)
	if !hit || l.Reads != 1 || l.Writes != 1 || l.LastAccess != 5 {
		t.Errorf("Touch read failed: %+v", l)
	}
	l, hit = ts.Touch(blockAddr(4), 6, true)
	if !hit || l.Writes != 2 || !l.Dirty {
		t.Errorf("Touch write failed: %+v", l)
	}
	if _, hit := ts.Touch(blockAddr(5), 7, false); hit {
		t.Errorf("Touch of absent block should miss")
	}
	l.ResetCounters()
	if l.Reads != 0 || l.Writes != 0 {
		t.Errorf("ResetCounters failed")
	}
}

func TestTagStoreLRUEviction(t *testing.T) {
	// Single set, 2 ways, LRU: after touching A, inserting C should evict B.
	ts := NewTagStore(1, 2, LRU)
	ts.Insert(blockAddr(1), 0, 0, false, mem.WORM) // A
	ts.Insert(blockAddr(2), 0, 1, false, mem.WORM) // B
	ts.Touch(blockAddr(1), 2, false)               // A is now MRU
	victim := ts.VictimFor(blockAddr(3))
	if !victim.Valid || victim.Block != blockAddr(2) {
		t.Errorf("VictimFor should pick B, got %+v", victim)
	}
	ev, _ := ts.Insert(blockAddr(3), 0, 3, false, mem.WORM)
	if !ev.Valid || ev.Block != blockAddr(2) {
		t.Errorf("LRU should evict B, evicted %+v", ev)
	}
	if !ts.Probe(blockAddr(1)) || !ts.Probe(blockAddr(3)) || ts.Probe(blockAddr(2)) {
		t.Errorf("store contents wrong after eviction")
	}
}

func TestTagStoreFIFOEviction(t *testing.T) {
	// FIFO ignores touches: oldest insertion is evicted regardless of hits.
	ts := NewTagStore(1, 2, FIFO)
	ts.Insert(blockAddr(1), 0, 0, false, mem.WORM)
	ts.Insert(blockAddr(2), 0, 1, false, mem.WORM)
	ts.Touch(blockAddr(1), 2, false)
	ev, _ := ts.Insert(blockAddr(3), 0, 3, false, mem.WORM)
	if !ev.Valid || ev.Block != blockAddr(1) {
		t.Errorf("FIFO should evict the oldest block 1, evicted %+v", ev)
	}
}

func TestTagStorePseudoLRUEvictsSomethingValid(t *testing.T) {
	ts := NewTagStore(1, 4, PseudoLRU)
	for i := 1; i <= 4; i++ {
		ts.Insert(blockAddr(i), 0, int64(i), false, mem.WORM)
	}
	// Touch 1 and 2 so 3 or 4 should be the victim.
	ts.Touch(blockAddr(1), 10, false)
	ts.Touch(blockAddr(2), 11, false)
	ev, _ := ts.Insert(blockAddr(5), 0, 12, false, mem.WORM)
	if !ev.Valid {
		t.Fatalf("expected an eviction from a full set")
	}
	if ev.Block == blockAddr(1) || ev.Block == blockAddr(2) {
		t.Errorf("pseudo-LRU evicted a recently touched block %#x", ev.Block)
	}
}

func TestTagStoreInvalidate(t *testing.T) {
	ts := NewTagStore(2, 2, LRU)
	ts.Insert(blockAddr(1), 0, 0, true, mem.WriteMultiple)
	old := ts.Invalidate(blockAddr(1))
	if !old.Valid || !old.Dirty {
		t.Errorf("Invalidate should return the dirty line, got %+v", old)
	}
	if ts.Occupancy() != 0 {
		t.Errorf("occupancy after invalidate = %d", ts.Occupancy())
	}
	if none := ts.Invalidate(blockAddr(1)); none.Valid {
		t.Errorf("second invalidate should be a no-op")
	}
}

func TestTagStoreSetMapping(t *testing.T) {
	ts := NewTagStore(64, 4, LRU)
	// Blocks that differ only above the set index bits must map to the same set.
	a := blockAddr(5)
	b := blockAddr(5 + 64)
	if ts.SetIndex(a) != ts.SetIndex(b) {
		t.Errorf("blocks 5 and 69 should map to the same set")
	}
	if ts.SetIndex(blockAddr(5)) == ts.SetIndex(blockAddr(6)) {
		t.Errorf("adjacent blocks should map to different sets")
	}
}

func TestTagStoreConflictMissesVsFullyAssociative(t *testing.T) {
	// A classic conflict pattern: blocks that all map to the same set of a
	// set-associative cache fit comfortably in a fully-associative one.
	setAssoc := NewTagStore(64, 4, LRU)
	fullAssoc := NewTagStore(1, 256, FIFO)
	conflicting := make([]uint64, 8)
	for i := range conflicting {
		conflicting[i] = blockAddr(3 + 64*i) // same set index (3) in the 64-set store
	}
	missSA, missFA := 0, 0
	for round := 0; round < 4; round++ {
		for _, b := range conflicting {
			if _, hit := setAssoc.Touch(b, 0, false); !hit {
				missSA++
				setAssoc.Insert(b, 0, 0, false, mem.WORM)
			}
			if _, hit := fullAssoc.Touch(b, 0, false); !hit {
				missFA++
				fullAssoc.Insert(b, 0, 0, false, mem.WORM)
			}
		}
	}
	if missFA != len(conflicting) {
		t.Errorf("fully-associative store should only take compulsory misses, got %d", missFA)
	}
	if missSA <= missFA {
		t.Errorf("set-associative store should suffer conflict misses: SA=%d FA=%d", missSA, missFA)
	}
}

func TestTagStoreForEachAndReset(t *testing.T) {
	ts := NewTagStore(4, 2, LRU)
	for i := 0; i < 6; i++ {
		ts.Insert(blockAddr(i), 0, 0, false, mem.WORM)
	}
	count := 0
	ts.ForEach(func(l *Line) { count++ })
	if count != 6 {
		t.Errorf("ForEach visited %d lines, want 6", count)
	}
	if len(ts.LinesInSet(0)) != 2 {
		t.Errorf("LinesInSet should expose the ways")
	}
	if len(ts.SetOf(blockAddr(0))) != 2 {
		t.Errorf("SetOf should expose the ways of the block's set")
	}
	ts.Reset()
	if ts.Occupancy() != 0 {
		t.Errorf("Reset should clear occupancy")
	}
	count = 0
	ts.ForEach(func(l *Line) { count++ })
	if count != 0 {
		t.Errorf("Reset should clear all lines")
	}
}

func TestTagStorePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for zero sets")
		}
	}()
	NewTagStore(0, 4, LRU)
}

func TestTagStoreOccupancyInvariant(t *testing.T) {
	// Property: occupancy always equals the number of valid lines and never
	// exceeds capacity, under random insert/invalidate sequences.
	prop := func(ops []uint16) bool {
		ts := NewTagStore(8, 2, LRU)
		for i, op := range ops {
			b := blockAddr(int(op % 64))
			if op%3 == 0 {
				ts.Invalidate(b)
			} else {
				ts.Insert(b, 0, int64(i), op%2 == 0, mem.WORM)
			}
			valid := 0
			ts.ForEach(func(l *Line) { valid++ })
			if valid != ts.Occupancy() || ts.Occupancy() > ts.Blocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTagStoreNoDuplicateBlocks(t *testing.T) {
	// Property: a block address never occupies two ways at once.
	prop := func(ops []uint16) bool {
		ts := NewTagStore(4, 4, FIFO)
		for i, op := range ops {
			b := blockAddr(int(op % 32))
			if _, hit := ts.Touch(b, int64(i), false); !hit {
				ts.Insert(b, 0, int64(i), false, mem.WORM)
			}
			seen := map[uint64]int{}
			dup := false
			ts.ForEach(func(l *Line) {
				seen[l.Block]++
				if seen[l.Block] > 1 {
					dup = true
				}
			})
			if dup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReplacementKindString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || PseudoLRU.String() != "PseudoLRU" {
		t.Errorf("unexpected replacement kind strings")
	}
	if ReplacementKind(9).String() == "" {
		t.Errorf("unknown kind should still render")
	}
}
