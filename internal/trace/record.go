package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"fuse/internal/mem"
)

// Record/replay turns a generated instruction stream into an artefact: a
// Recorder wraps any Workload and captures every instruction each SM's source
// produces; the resulting Trace serialises to disk and replays bit-identically
// — the same Instruction values in the same order — through a replay
// Workload. Recording a run and replaying it under the same GPU configuration
// and options therefore reproduces the simulation exactly, which makes traces
// the exchange format for workloads that no synthetic profile generates
// (and, later, for streams converted from real GPGPU-Sim traces).

// traceMagic identifies (and versions) the on-disk trace format.
const traceMagic = "FUSETRACE/1\n"

// TraceMeta describes how a trace was recorded: enough for fusesim -replay to
// rebuild the exact simulation the recording run executed.
type TraceMeta struct {
	// Workload is the recorded workload's name; the replay workload reports
	// the same name so tables render identically.
	Workload string `json:"workload"`
	// Kind is the L1D configuration name of the recording run.
	Kind string `json:"kind,omitempty"`
	// Volta records whether the Volta-class GPU model was used.
	Volta bool `json:"volta,omitempty"`
	// Backend is the memory backend override ("" = the GPU model's default).
	Backend string `json:"backend,omitempty"`
	// InstructionsPerWarp, SMs and Seed are the recording run's options.
	InstructionsPerWarp uint64 `json:"instructionsPerWarp"`
	SMs                 int    `json:"sms"`
	Seed                uint64 `json:"seed"`
}

// TraceStep is one recorded instruction, tagged with the warp that asked for
// it so replay can detect a schedule divergence.
type TraceStep struct {
	Warp int32
	Ins  Instruction
}

// Trace is a recorded instruction stream: per-SM step sequences plus the
// recording metadata.
type Trace struct {
	Meta TraceMeta
	// Steps[sm] is the instruction sequence SM sm consumed, in order.
	Steps [][]TraceStep
}

// Recorder is a Workload decorator: it delegates everything to the wrapped
// workload but captures each SM's generated stream. Use it with a direct
// simulator run (not through the result store — a store hit would skip
// execution and record nothing), then read the Trace back.
type Recorder struct {
	inner Workload

	mu    sync.Mutex
	steps map[int]*[]TraceStep
}

// NewRecorder wraps a workload for recording.
func NewRecorder(w Workload) *Recorder {
	return &Recorder{inner: w, steps: make(map[int]*[]TraceStep)}
}

// Name implements Workload.
func (r *Recorder) Name() string { return r.inner.Name() }

// Validate implements Workload.
func (r *Recorder) Validate() error { return r.inner.Validate() }

// KeyMaterial implements Workload: recording is passive, so the key material
// is the wrapped workload's (the simulation outcome is identical).
func (r *Recorder) KeyMaterial() (json.RawMessage, error) { return r.inner.KeyMaterial() }

// NewSource implements Workload, interposing the capture.
func (r *Recorder) NewSource(sm int, seed uint64) (Source, error) {
	src, err := r.inner.NewSource(sm, seed)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.steps[sm]; ok {
		return nil, fmt.Errorf("trace: recorder: SM %d already has a source", sm)
	}
	steps := &[]TraceStep{}
	r.steps[sm] = steps
	return &recordingSource{src: src, out: steps}, nil
}

// Trace assembles the captured streams (call it after the run completes).
func (r *Recorder) Trace(meta TraceMeta) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	maxSM := -1
	//fuselint:ordered max reduction, order-insensitive
	for sm := range r.steps {
		if sm > maxSM {
			maxSM = sm
		}
	}
	t := &Trace{Meta: meta, Steps: make([][]TraceStep, maxSM+1)}
	if meta.Workload == "" {
		t.Meta.Workload = r.inner.Name()
	}
	//fuselint:ordered writes to disjoint index-addressed slots, order-insensitive
	for sm, steps := range r.steps {
		t.Steps[sm] = *steps
	}
	return t
}

// recordingSource passes Next through and appends each instruction to the
// recorder's per-SM slice. Sources are per-SM and the simulator is
// single-threaded per run, so the append needs no locking.
//
//fuselint:smowned one recording source per SM, appending to its own per-SM slot
type recordingSource struct {
	src Source
	out *[]TraceStep
}

func (s *recordingSource) Next(warp int) Instruction {
	ins := s.src.Next(warp)
	*s.out = append(*s.out, TraceStep{Warp: int32(warp), Ins: ins})
	return ins
}

func (s *recordingSource) Generated() uint64      { return s.src.Generated() }
func (s *recordingSource) MemoryAccesses() uint64 { return s.src.MemoryAccesses() }

// ReplayWorkload plays a Trace back. Its sources return the recorded
// instructions in recorded order, so a simulation under the trace's original
// configuration consumes a bit-identical stream and produces a bit-identical
// result.
type ReplayWorkload struct {
	trace *Trace
	// digest is the SHA-256 of the serialised step stream; it makes the store
	// key material content-addressed (two different recordings under the same
	// name cannot alias).
	digest string

	// sources tracks every source handed out, so Diverged can report whether
	// the replaying run followed the recording schedule.
	mu      sync.Mutex
	sources []*replaySource
}

// Workload wraps the trace as a runnable (replay) workload.
func (t *Trace) Workload() *ReplayWorkload {
	return &ReplayWorkload{trace: t, digest: t.stepsDigest()}
}

// Trace exposes the underlying trace.
func (w *ReplayWorkload) Trace() *Trace { return w.trace }

// Name implements Workload.
func (w *ReplayWorkload) Name() string { return w.trace.Meta.Workload }

// Validate implements Workload.
func (w *ReplayWorkload) Validate() error {
	if w.trace == nil {
		return fmt.Errorf("trace: replay workload without a trace")
	}
	if w.trace.Meta.Workload == "" {
		return fmt.Errorf("trace: replay trace without a workload name")
	}
	if len(w.trace.Steps) == 0 {
		return fmt.Errorf("trace: %s: replay trace records no SMs", w.trace.Meta.Workload)
	}
	return nil
}

// replayKeyMaterial is the canonical key encoding of a replayed workload.
type replayKeyMaterial struct {
	Kind     string `json:"kind"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	SHA256   string `json:"sha256"`
}

// KeyMaterial implements Workload.
func (w *ReplayWorkload) KeyMaterial() (json.RawMessage, error) {
	return json.Marshal(replayKeyMaterial{
		Kind:     "replay",
		Workload: w.trace.Meta.Workload,
		Seed:     w.trace.Meta.Seed,
		SHA256:   w.digest,
	})
}

// NewSource implements Workload. The seed is ignored: a trace replays as
// recorded.
func (w *ReplayWorkload) NewSource(sm int, seed uint64) (Source, error) {
	if sm < 0 || sm >= len(w.trace.Steps) {
		return nil, fmt.Errorf("trace: %s: trace records %d SMs, SM %d requested (replay needs the recording run's -sms)",
			w.trace.Meta.Workload, len(w.trace.Steps), sm)
	}
	src := &replaySource{steps: w.trace.Steps[sm]}
	w.mu.Lock()
	w.sources = append(w.sources, src)
	w.mu.Unlock()
	return src, nil
}

// Diverged returns the total number of replay steps, across every source
// this workload handed out, that did not match the recording schedule (warp
// mismatch or exhausted trace). A non-zero count after a run means the
// replaying simulation was configured differently from the recording one and
// its results are not a faithful reproduction — callers should surface it.
func (w *ReplayWorkload) Diverged() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total uint64
	for _, s := range w.sources {
		total += s.Diverged()
	}
	return total
}

// replaySource returns the recorded steps in order. A consumer that asks for
// more instructions than were recorded, or from a different warp sequence,
// has diverged from the recording schedule; the source keeps the run alive
// (padding with ALU no-ops) and counts the divergence for diagnostics.
//
//fuselint:smowned one replay cursor per SM
type replaySource struct {
	steps     []TraceStep
	pos       int
	generated uint64
	mem       uint64
	diverged  uint64
}

func (s *replaySource) Next(warp int) Instruction {
	if s.pos >= len(s.steps) {
		s.diverged++
		s.generated++
		return Instruction{PC: 0x1, IsMem: false}
	}
	step := s.steps[s.pos]
	s.pos++
	if int(step.Warp) != warp {
		s.diverged++
	}
	s.generated++
	if step.Ins.IsMem {
		s.mem++
	}
	return step.Ins
}

func (s *replaySource) Generated() uint64      { return s.generated }
func (s *replaySource) MemoryAccesses() uint64 { return s.mem }

// Diverged returns the number of replay steps that did not match the
// recording schedule (warp mismatch or exhausted trace).
func (s *replaySource) Diverged() uint64 { return s.diverged }

// stepEncoding is the fixed per-step wire size: warp (4) + pc (8) + addr (8)
// + flags (1).
const stepEncoding = 4 + 8 + 8 + 1

// stepsDigest hashes the serialised step stream (the content identity of the
// recording, independent of metadata).
func (t *Trace) stepsDigest() string {
	h := sha256.New()
	var buf [stepEncoding]byte
	for _, steps := range t.Steps {
		for _, st := range steps {
			encodeStep(buf[:], st)
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func encodeStep(buf []byte, st TraceStep) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(st.Warp))
	binary.LittleEndian.PutUint64(buf[4:], st.Ins.PC)
	binary.LittleEndian.PutUint64(buf[12:], st.Ins.Addr)
	flags := byte(st.Ins.Kind) & 0x7f
	if st.Ins.IsMem {
		flags |= 0x80
	}
	buf[20] = flags
}

func decodeStep(buf []byte) TraceStep {
	return TraceStep{
		Warp: int32(binary.LittleEndian.Uint32(buf[0:])),
		Ins: Instruction{
			PC:    binary.LittleEndian.Uint64(buf[4:]),
			Addr:  binary.LittleEndian.Uint64(buf[12:]),
			IsMem: buf[20]&0x80 != 0,
			Kind:  mem.AccessKind(buf[20] & 0x7f),
		},
	}
}

// traceHeader is the JSON header following the magic line: the metadata plus
// the per-SM step counts the binary section is decoded against.
type traceHeader struct {
	Meta  TraceMeta `json:"meta"`
	Steps []int     `json:"steps"`
}

// Write serialises the trace: a magic/version line, one JSON header line,
// then the fixed-width binary step records SM by SM. The encoding is
// deterministic — the same trace always writes the same bytes.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return fmt.Errorf("trace: writing trace: %w", err)
	}
	hdr := traceHeader{Meta: t.Meta, Steps: make([]int, len(t.Steps))}
	for sm, steps := range t.Steps {
		hdr.Steps[sm] = len(steps)
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("trace: writing trace header: %w", err)
	}
	hdrBytes = append(hdrBytes, '\n')
	if _, err := bw.Write(hdrBytes); err != nil {
		return fmt.Errorf("trace: writing trace: %w", err)
	}
	var buf [stepEncoding]byte
	for _, steps := range t.Steps {
		for _, st := range steps {
			encodeStep(buf[:], st)
			if _, err := bw.Write(buf[:]); err != nil {
				return fmt.Errorf("trace: writing trace: %w", err)
			}
		}
	}
	return bw.Flush()
}

// WriteFile serialises the trace to a file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace parses a serialised trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading trace: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: not a FUSE trace file (bad magic)")
	}
	hdrLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: reading trace header: %w", err)
	}
	var hdr traceHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return nil, fmt.Errorf("trace: parsing trace header: %w", err)
	}
	t := &Trace{Meta: hdr.Meta, Steps: make([][]TraceStep, len(hdr.Steps))}
	var buf [stepEncoding]byte
	for sm, n := range hdr.Steps {
		if n < 0 {
			return nil, fmt.Errorf("trace: corrupt trace header (negative step count)")
		}
		// Grow incrementally with a capped initial capacity instead of
		// trusting the header's count: a corrupt (or crafted) count then
		// fails as a truncated read once the input runs out, rather than
		// attempting one enormous allocation up front.
		steps := make([]TraceStep, 0, min(n, 1<<20))
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("trace: truncated trace (SM %d, step %d): %w", sm, i, err)
			}
			steps = append(steps, decodeStep(buf[:]))
		}
		t.Steps[sm] = steps
	}
	return t, nil
}

// LoadTrace reads a serialised trace from a file.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}
