package trace

import (
	"encoding/json"
	"fmt"
)

// Source is the per-SM instruction-stream contract: the simulator asks it for
// one dynamic instruction per issue slot and reads back the stream counters.
// *Kernel — the synthetic Table-II generator — is the canonical
// implementation; phased composites and trace replay are the others. A Source
// is owned by exactly one SM and is never shared across goroutines.
type Source interface {
	// Next produces the next dynamic instruction for the given warp.
	Next(warp int) Instruction
	// Generated returns the number of instructions generated so far.
	Generated() uint64
	// MemoryAccesses returns the number of memory instructions generated so
	// far.
	MemoryAccesses() uint64
}

// Workload describes one runnable workload: it names itself, validates its
// parameters, constructs the per-SM instruction Source, and canonicalises to
// the JSON key material the content-addressed result store hashes.
//
// Implementations: Synthetic (one Table-II-style Profile), Phased (a chain of
// profiles with per-phase instruction budgets) and Replay (a recorded stream
// played back bit-identically). The registry (Register/Lookup) maps names to
// Workloads so the engine, the CLIs and the server share one lookup path.
type Workload interface {
	// Name is the workload name used in figures, job identities and tables.
	Name() string
	// Validate reports whether the workload is internally consistent. Every
	// construction entry point (registry registration, workload-file load,
	// sim.New) calls it; an invalid workload never reaches the simulator.
	Validate() error
	// NewSource builds the instruction stream for one SM. The same
	// (workload, sm, seed) triple must always yield a byte-identical
	// instruction sequence — the determinism the result store depends on.
	NewSource(sm int, seed uint64) (Source, error)
	// KeyMaterial returns the canonical JSON the result store hashes as the
	// workload part of its key. Synthetic workloads marshal exactly their
	// Profile (so every pre-existing store entry for the builtin profiles
	// keeps its key); other kinds carry a discriminating "kind" field that no
	// Profile encoding can collide with.
	KeyMaterial() (json.RawMessage, error)
}

// SyntheticWorkload is a Workload backed by one synthetic Profile — the shape
// of all 21 builtin Table-II benchmarks and of user-defined profiles loaded
// from a workload file.
type SyntheticWorkload struct {
	Profile Profile
}

// Synthetic wraps a profile as a Workload.
func Synthetic(p Profile) *SyntheticWorkload {
	return &SyntheticWorkload{Profile: p}
}

// Name implements Workload.
func (w *SyntheticWorkload) Name() string { return w.Profile.Name }

// Validate implements Workload.
func (w *SyntheticWorkload) Validate() error { return w.Profile.Validate() }

// NewSource implements Workload.
func (w *SyntheticWorkload) NewSource(sm int, seed uint64) (Source, error) {
	return NewKernel(w.Profile, sm, seed), nil
}

// KeyMaterial implements Workload: exactly the Profile's JSON encoding, so a
// synthetic workload's store key is byte-identical to the pre-registry scheme
// that embedded trace.Profile directly in the key material.
func (w *SyntheticWorkload) KeyMaterial() (json.RawMessage, error) {
	return json.Marshal(w.Profile)
}

// Phase is one stage of a phased workload: a resolved profile plus the per-SM
// instruction budget after which the stream moves on to the next phase. The
// final phase's budget is advisory — the stream stays in it for as long as
// the simulator keeps asking.
type Phase struct {
	Profile Profile
	// Instructions is the per-SM dynamic-instruction budget of the phase.
	Instructions uint64
}

// PhasedWorkload chains profiles into one multi-kernel application — the
// shape of real GPGPU workloads (and of ML training steps: an embedding
// gather phase, a GEMM-heavy phase, a write-heavy gradient phase) that no
// single Table-II profile captures.
type PhasedWorkload struct {
	WorkloadName string
	Description  string
	Phases       []Phase
}

// NewPhased builds a phased workload from resolved phases.
func NewPhased(name string, phases []Phase) *PhasedWorkload {
	return &PhasedWorkload{WorkloadName: name, Phases: phases}
}

// Name implements Workload.
func (w *PhasedWorkload) Name() string { return w.WorkloadName }

// Validate implements Workload.
func (w *PhasedWorkload) Validate() error {
	if w.WorkloadName == "" {
		return fmt.Errorf("trace: phased workload without a name")
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("trace: %s: phased workload needs at least one phase", w.WorkloadName)
	}
	for i, ph := range w.Phases {
		if err := ph.Profile.Validate(); err != nil {
			return fmt.Errorf("trace: %s: phase %d: %w", w.WorkloadName, i, err)
		}
		if ph.Instructions == 0 && i != len(w.Phases)-1 {
			return fmt.Errorf("trace: %s: phase %d (%s): every phase but the last needs a positive instruction budget",
				w.WorkloadName, i, ph.Profile.Name)
		}
	}
	return nil
}

// NewSource implements Workload.
func (w *PhasedWorkload) NewSource(sm int, seed uint64) (Source, error) {
	return &phasedSource{phases: w.Phases, sm: sm, seed: seed}, nil
}

// phasedKeyMaterial is the canonical key encoding of a phased workload. The
// "kind" discriminator keeps it disjoint from every Profile encoding, and the
// phases embed their resolved profiles, so renaming a registry entry that a
// phase was resolved from cannot silently alias two different simulations.
type phasedKeyMaterial struct {
	Kind   string          `json:"kind"`
	Name   string          `json:"name"`
	Phases []phaseMaterial `json:"phases"`
}

type phaseMaterial struct {
	Profile      Profile `json:"profile"`
	Instructions uint64  `json:"instructions"`
}

// KeyMaterial implements Workload.
func (w *PhasedWorkload) KeyMaterial() (json.RawMessage, error) {
	m := phasedKeyMaterial{Kind: "phased", Name: w.WorkloadName}
	for _, ph := range w.Phases {
		m.Phases = append(m.Phases, phaseMaterial{Profile: ph.Profile, Instructions: ph.Instructions})
	}
	return json.Marshal(m)
}

// phasedSource drives one phase's kernel until its per-SM instruction budget
// is spent, then constructs the next phase's kernel. Each phase reseeds its
// kernel with the phase index mixed in, so two phases over the same profile
// generate distinct (but deterministic) streams.
//
//fuselint:smowned one phased source per SM
type phasedSource struct {
	phases []Phase
	sm     int
	seed   uint64

	cur       int
	src       Source
	curBudget uint64 // instructions generated in the current phase

	generated uint64
	mem       uint64
}

// phaseSeed derives the deterministic kernel seed of one phase.
func phaseSeed(seed uint64, phase int) uint64 {
	return seed + uint64(phase)*0x9E3779B97F4A7C15
}

// Next implements Source.
func (s *phasedSource) Next(warp int) Instruction {
	if s.src == nil {
		s.src = NewKernel(s.phases[0].Profile, s.sm, phaseSeed(s.seed, 0))
	}
	for s.cur < len(s.phases)-1 && s.curBudget >= s.phases[s.cur].Instructions {
		s.cur++
		s.src = NewKernel(s.phases[s.cur].Profile, s.sm, phaseSeed(s.seed, s.cur))
		s.curBudget = 0
	}
	ins := s.src.Next(warp)
	s.curBudget++
	s.generated++
	if ins.IsMem {
		s.mem++
	}
	return ins
}

// Generated implements Source.
func (s *phasedSource) Generated() uint64 { return s.generated }

// MemoryAccesses implements Source.
func (s *phasedSource) MemoryAccesses() uint64 { return s.mem }

// PhaseIndex returns the index of the phase the stream is currently in (for
// inspection and tests).
func (s *phasedSource) PhaseIndex() int { return s.cur }
