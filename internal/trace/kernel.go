package trace

import (
	"fuse/internal/mem"
)

// Instruction is one dynamic instruction of the synthetic kernel. Non-memory
// instructions model the compute work between loads and stores; memory
// instructions carry the (already coalesced, 128-byte) address and the PC of
// the static load/store that issued them.
type Instruction struct {
	PC    uint64
	IsMem bool
	Kind  mem.AccessKind
	Addr  uint64
}

// rngState is a splitmix64 pseudo-random generator: tiny, fast and
// deterministic, which keeps every experiment reproducible without touching
// math/rand's global state.
//
//fuselint:smowned per-source PRNG state, one source per SM
type rngState uint64

func newRNG(seed uint64) *rngState {
	s := rngState(seed*0x9E3779B97F4A7C15 + 0x5851F42D4C957F2D)
	return &s
}

func (s *rngState) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (s *rngState) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// intn returns a uniform integer in [0,n).
func (s *rngState) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// scatter is a 64-bit mixing permutation used to turn sequential block
// indices into scattered addresses for irregular workloads.
func scatter(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 32
	return x
}

// Per-category static parameters.
const (
	// threadsPerWarp converts the paper's per-thread-instruction APKI into a
	// per-warp-instruction memory fraction: one coalesced 128-byte access
	// serves the loads of all 32 threads of a warp, so a workload with APKI
	// a issues roughly a*32/1000 memory operations per warp instruction.
	threadsPerWarp = 32
	// maxMemFraction caps the warp-level memory fraction: even the most
	// memory-bound kernels interleave address arithmetic and control
	// instructions between loads.
	maxMemFraction = 0.6
	// referenceWarps is the warp count the per-warp working sets are sized
	// for (the paper's 48 resident warps per SM): the aggregate per-SM
	// working set is WorkingSetBlocks regardless of how many warps the
	// caller actually drives.
	referenceWarps = 48

	wmHotBlocks       = 24 // instantaneous size of the shared write-multiple hot set
	wmWriteProb       = 0.75
	wmReplaceProb     = 1.0 / 16 // expected ~16 accesses per WM block before it rotates out
	riWriteProb       = 0.10
	riReplaceProb     = 0.125 // expected ~8 accesses per read-intensive block
	categoryCount     = 4
	pcsPerCategory    = 4
	aluPCCount        = 8
	addressSpacePerSM = 1 << 40
)

// wormSlot is one entry of a warp's WORM working-set window.
type wormSlot struct {
	block   uint64
	written bool
	reads   int
}

// warpRegions is the per-warp private working state: real GPU kernels assign
// each warp its own tile/rows, so a warp re-references the blocks it touched
// recently (short per-warp reuse distance) while the union over all resident
// warps is the large per-SM working set that thrashes small caches.
type warpRegions struct {
	riWindow   []uint64
	riNext     uint64
	wormWindow []wormSlot
	wormNext   uint64
	woroNext   uint64
}

// Kernel generates the memory-reference stream of one benchmark on one SM.
// The write-multiple hot set is shared by all warps (accumulation buffers,
// histogram bins); the WORM / read-intensive / streaming regions are private
// per warp.
//
//fuselint:smowned NewSource returns a fresh per-(SM, seed) kernel instance
type Kernel struct {
	prof Profile
	sm   int
	rng  *rngState

	// Cumulative access-probability thresholds per category
	// (WM, read-intensive, WORM, WORO).
	accessCum [categoryCount]float64
	memProb   float64

	// Static PCs: one small set per category plus ALU PCs.
	memPCs [categoryCount][pcsPerCategory]uint64
	aluPCs [aluPCCount]uint64
	aluIdx int

	base uint64

	// Shared write-multiple hot set.
	wmBlocks []uint64
	wmNext   uint64

	// Per-warp private regions, created lazily.
	warps map[int]*warpRegions

	// Per-warp window sizes derived from the profile.
	riWindowSize   int
	wormWindowSize int

	generated uint64
	memCount  uint64
}

// NewKernel instantiates the benchmark on one SM with a deterministic seed.
func NewKernel(prof Profile, sm int, seed uint64) *Kernel {
	k := &Kernel{
		prof:  prof,
		sm:    sm,
		rng:   newRNG(seed ^ uint64(sm)*0x9E3779B97F4A7C15 ^ hashName(prof.Name)),
		base:  uint64(sm) * addressSpacePerSM,
		warps: make(map[int]*warpRegions),
	}
	k.memProb = prof.APKI * threadsPerWarp / 1000.0
	if k.memProb > maxMemFraction {
		k.memProb = maxMemFraction
	}

	// Convert the block mix into per-access probabilities by weighting each
	// category with its expected accesses per block.
	perBlock := [categoryCount]float64{
		16,                          // WM blocks are written over and over
		8,                           // read-intensive
		float64(1 + prof.WORMReuse), // WORM: one write + reuse reads
		1,                           // WORO
	}
	weights := [categoryCount]float64{
		prof.Mix.WM * perBlock[0],
		prof.Mix.ReadIntensive * perBlock[1],
		prof.Mix.WORM * perBlock[2],
		prof.Mix.WORO * perBlock[3],
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	cum := 0.0
	for i, w := range weights {
		if total > 0 {
			cum += w / total
		}
		k.accessCum[i] = cum
	}
	k.accessCum[categoryCount-1] = 1

	// Static PCs: deterministic per benchmark so the PC-indexed predictors
	// see stable signatures.
	pcBase := (hashName(prof.Name) & 0xffff) << 8
	for c := 0; c < categoryCount; c++ {
		for i := 0; i < pcsPerCategory; i++ {
			k.memPCs[c][i] = pcBase + uint64(c*pcsPerCategory+i)*4
		}
	}
	for i := range k.aluPCs {
		k.aluPCs[i] = pcBase + 0x1000 + uint64(i)*4
	}

	// Shared WM hot set.
	k.wmBlocks = make([]uint64, wmHotBlocks)
	for i := range k.wmBlocks {
		k.wmBlocks[i] = k.blockAddr(1, uint64(i))
	}
	k.wmNext = uint64(wmHotBlocks)

	// Per-warp window sizes: the union over the reference warp count equals
	// the profile's per-SM working set.
	k.wormWindowSize = prof.WorkingSetBlocks / referenceWarps
	if k.wormWindowSize < 2 {
		k.wormWindowSize = 2
	}
	k.riWindowSize = prof.WorkingSetBlocks / 4 / referenceWarps
	if k.riWindowSize < 2 {
		k.riWindowSize = 2
	}
	return k
}

// hashName derives a stable 64-bit hash from the benchmark name.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// blockAddr computes the byte address of logical block `idx` in category
// region `region`, scattering it when the profile is irregular.
func (k *Kernel) blockAddr(region int, idx uint64) uint64 {
	logical := idx
	if k.prof.Irregular > 0 && k.rng.float() < k.prof.Irregular {
		logical = scatter(idx^uint64(region)<<40) % (1 << 24)
	}
	regionBase := k.base + uint64(region)<<32
	return regionBase + logical*mem.BlockSize
}

// warpState returns (creating on first use) the private regions of a warp.
func (k *Kernel) warpState(warp int) *warpRegions {
	if w, ok := k.warps[warp]; ok {
		return w
	}
	w := &warpRegions{}
	// Each warp owns a disjoint slice of the index space.
	warpBase := uint64(warp) << 26
	w.riWindow = make([]uint64, k.riWindowSize)
	for i := range w.riWindow {
		w.riWindow[i] = k.blockAddr(2, warpBase+uint64(i))
	}
	w.riNext = warpBase + uint64(k.riWindowSize)
	w.wormWindow = make([]wormSlot, k.wormWindowSize)
	for i := range w.wormWindow {
		w.wormWindow[i] = wormSlot{block: k.blockAddr(3, warpBase+uint64(i))}
	}
	w.wormNext = warpBase + uint64(k.wormWindowSize)
	w.woroNext = warpBase
	k.warps[warp] = w
	return w
}

// Profile returns the profile the kernel was built from.
func (k *Kernel) Profile() Profile { return k.prof }

// Generated returns the number of instructions generated so far.
func (k *Kernel) Generated() uint64 { return k.generated }

// MemoryAccesses returns the number of memory instructions generated so far.
func (k *Kernel) MemoryAccesses() uint64 { return k.memCount }

// MeasuredAPKI returns the accesses-per-kilo-thread-instruction of the
// generated stream so far (the Table II metric): warp-level memory fraction
// divided by the threads-per-warp scaling.
func (k *Kernel) MeasuredAPKI() float64 {
	if k.generated == 0 {
		return 0
	}
	return float64(k.memCount) / float64(k.generated) * 1000 / threadsPerWarp
}

// MemFraction returns the fraction of generated warp instructions that were
// memory instructions.
func (k *Kernel) MemFraction() float64 {
	if k.generated == 0 {
		return 0
	}
	return float64(k.memCount) / float64(k.generated)
}

// Next produces the next dynamic instruction for the given warp.
func (k *Kernel) Next(warp int) Instruction {
	k.generated++
	if k.rng.float() >= k.memProb {
		k.aluIdx = (k.aluIdx + 1 + warp) % aluPCCount
		return Instruction{PC: k.aluPCs[k.aluIdx], IsMem: false}
	}
	k.memCount++
	r := k.rng.float()
	switch {
	case r < k.accessCum[0]:
		return k.nextWM()
	case r < k.accessCum[1]:
		return k.nextRI(warp)
	case r < k.accessCum[2]:
		return k.nextWORM(warp)
	default:
		return k.nextWORO(warp)
	}
}

// nextWM produces an access to the shared write-multiple hot set. The hot set
// stays small at any instant but slowly rotates (fresh output tiles replacing
// finished ones), so the number of distinct WM blocks over a run tracks the
// profile's WM mix fraction.
func (k *Kernel) nextWM() Instruction {
	i := k.rng.intn(len(k.wmBlocks))
	if k.rng.float() < wmReplaceProb {
		k.wmBlocks[i] = k.blockAddr(1, k.wmNext)
		k.wmNext++
	}
	addr := k.wmBlocks[i]
	kind := mem.Read
	if k.rng.float() < wmWriteProb {
		kind = mem.Write
	}
	return Instruction{PC: k.pcFor(0), IsMem: true, Kind: kind, Addr: addr}
}

// nextRI produces an access to the warp's read-intensive window, slowly
// streaming new blocks through it.
func (k *Kernel) nextRI(warp int) Instruction {
	w := k.warpState(warp)
	i := k.rng.intn(len(w.riWindow))
	if k.rng.float() < riReplaceProb {
		w.riWindow[i] = k.blockAddr(2, w.riNext)
		w.riNext++
	}
	addr := w.riWindow[i]
	kind := mem.Read
	if k.rng.float() < riWriteProb {
		kind = mem.Write
	}
	return Instruction{PC: k.pcFor(1), IsMem: true, Kind: kind, Addr: addr}
}

// nextWORM produces an access to the warp's WORM window: the first touch of a
// block is its single write, subsequent touches are reads, and a block is
// retired from the window once it has been read enough times.
func (k *Kernel) nextWORM(warp int) Instruction {
	w := k.warpState(warp)
	i := k.rng.intn(len(w.wormWindow))
	slot := &w.wormWindow[i]
	if !slot.written {
		slot.written = true
		return Instruction{PC: k.pcFor(2), IsMem: true, Kind: mem.Write, Addr: slot.block}
	}
	addr := slot.block
	slot.reads++
	if slot.reads >= k.prof.WORMReuse {
		*slot = wormSlot{block: k.blockAddr(3, w.wormNext)}
		w.wormNext++
	}
	return Instruction{PC: k.pcFor(2), IsMem: true, Kind: mem.Read, Addr: addr}
}

// nextWORO produces a streaming access that will never be re-referenced.
func (k *Kernel) nextWORO(warp int) Instruction {
	w := k.warpState(warp)
	idx := w.woroNext
	w.woroNext++
	addr := k.blockAddr(4, idx)
	kind := mem.Read
	if k.rng.float() < 0.5 {
		kind = mem.Write
	}
	return Instruction{PC: k.pcFor(3), IsMem: true, Kind: kind, Addr: addr}
}

// pcFor picks one of the category's static PCs.
func (k *Kernel) pcFor(category int) uint64 {
	return k.memPCs[category][k.rng.intn(pcsPerCategory)]
}

// BlockProfile summarises the per-block behaviour of a generated stream: it
// is the measurement behind the Figure 6 read-level analysis.
type BlockProfile struct {
	// Fractions of blocks per category, in the order WM, read-intensive,
	// WORM, WORO.
	Fractions [mem.ReadLevelCount]float64
	// Blocks is the number of distinct blocks observed.
	Blocks int
	// WriteFraction is the fraction of accesses that were writes.
	WriteFraction float64
	// MeasuredAPKI is the accesses-per-kilo-thread-instruction of the stream.
	MeasuredAPKI float64
}

// AnalyzeProfile generates `instructions` dynamic instructions from the
// benchmark (on a single SM, interleaving the reference warp count) and
// classifies every touched block, reproducing the read-level analysis of
// Figure 6.
func AnalyzeProfile(prof Profile, instructions int, seed uint64) BlockProfile {
	k := NewKernel(prof, 0, seed)
	type counts struct{ reads, writes uint64 }
	blocks := make(map[uint64]*counts)
	var writes, accesses uint64
	for i := 0; i < instructions; i++ {
		ins := k.Next(i % referenceWarps)
		if !ins.IsMem {
			continue
		}
		accesses++
		b := mem.BlockAlign(ins.Addr)
		c := blocks[b]
		if c == nil {
			c = &counts{}
			blocks[b] = c
		}
		if ins.Kind == mem.Write {
			c.writes++
			writes++
		} else {
			c.reads++
		}
	}
	var out BlockProfile
	out.Blocks = len(blocks)
	if out.Blocks == 0 {
		return out
	}
	//fuselint:ordered +1 increments into category slots are exact float adds, order-insensitive
	for _, c := range blocks {
		out.Fractions[Classify(c.writes, c.reads)] += 1
	}
	for i := range out.Fractions {
		out.Fractions[i] /= float64(out.Blocks)
	}
	if accesses > 0 {
		out.WriteFraction = float64(writes) / float64(accesses)
	}
	out.MeasuredAPKI = k.MeasuredAPKI()
	return out
}
