package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drive pulls n instructions from a source with the reference warp
// interleaving and returns them.
func drive(src Source, n int) []Instruction {
	out := make([]Instruction, n)
	for i := range out {
		out[i] = src.Next(i % referenceWarps)
	}
	return out
}

// mustSource builds the workload's source for one SM or fails the test.
func mustSource(t *testing.T, w Workload, sm int, seed uint64) Source {
	t.Helper()
	src, err := w.NewSource(sm, seed)
	if err != nil {
		t.Fatalf("NewSource(%d): %v", sm, err)
	}
	return src
}

// customProfile is a valid non-builtin profile for tests.
func customProfile(name string) Profile {
	return Profile{
		Name: name, Suite: "Custom", Description: "test profile",
		APKI: 50, Mix: ReadLevelMix{WM: 0.25, ReadIntensive: 0.15, WORM: 0.45, WORO: 0.15},
		WorkingSetBlocks: 256, Irregular: 0.5, WORMReuse: 3,
	}
}

// TestSourceDeterminism pins the contract every store key depends on: the
// same (workload, SM, seed) triple yields a byte-identical instruction
// sequence across two independently constructed sources — for synthetic,
// phased and replayed workloads.
func TestSourceDeterminism(t *testing.T) {
	atax, _ := ProfileByName("ATAX")
	gemm, _ := ProfileByName("GEMM")
	synthetic := Synthetic(atax)
	phased := NewPhased("det-phased", []Phase{
		{Profile: atax, Instructions: 700},
		{Profile: gemm, Instructions: 500},
		{Profile: atax},
	})

	const n = 5000
	for _, tc := range []struct {
		label string
		w     Workload
	}{
		{"synthetic", synthetic},
		{"phased", phased},
	} {
		for _, sm := range []int{0, 3} {
			a := drive(mustSource(t, tc.w, sm, 42), n)
			b := drive(mustSource(t, tc.w, sm, 42), n)
			if !instructionsEqual(a, b) {
				t.Errorf("%s: SM %d: two sources over the same (workload, SM, seed) diverged", tc.label, sm)
			}
			// A different seed or SM must (overwhelmingly) change the stream.
			c := drive(mustSource(t, tc.w, sm, 43), n)
			if instructionsEqual(a, c) {
				t.Errorf("%s: SM %d: seed change did not change the stream", tc.label, sm)
			}
		}
	}

	// Replay: record a stream, then two independent replay sources must both
	// reproduce it exactly.
	rec := NewRecorder(synthetic)
	recorded := drive(mustSource(t, rec, 0, 42), n)
	tr := rec.Trace(TraceMeta{Workload: "ATAX", Seed: 42})
	replay := tr.Workload()
	a := drive(mustSource(t, replay, 0, 42), n)
	b := drive(mustSource(t, replay, 0, 99), n) // replay ignores the seed
	if !instructionsEqual(recorded, a) || !instructionsEqual(recorded, b) {
		t.Errorf("replay must reproduce the recorded stream bit-identically")
	}
}

func instructionsEqual(a, b []Instruction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPhasedSourceSwitchesAtBudget(t *testing.T) {
	atax, _ := ProfileByName("ATAX")
	pathf, _ := ProfileByName("pathf")
	w := NewPhased("switch-test", []Phase{
		{Profile: pathf, Instructions: 1000}, // barely touches memory
		{Profile: atax},                      // memory-bound
	})
	src := mustSource(t, w, 0, 7)
	ps := src.(*phasedSource)
	drive(src, 1000)
	if ps.PhaseIndex() != 0 {
		t.Fatalf("still inside phase 0's budget, got phase %d", ps.PhaseIndex())
	}
	drive(src, 1)
	if ps.PhaseIndex() != 1 {
		t.Fatalf("budget spent, expected phase 1, got %d", ps.PhaseIndex())
	}
	// The phase switch must be visible in the stream statistics: ATAX is far
	// more memory-intensive than pathf.
	before := src.MemoryAccesses()
	drive(src, 20000)
	after := src.MemoryAccesses()
	phase1Frac := float64(after-before) / 20000
	if phase1Frac < 0.3 {
		t.Errorf("phase 1 (ATAX) should be memory-bound, mem fraction %.3f", phase1Frac)
	}
	if src.Generated() != 21001 {
		t.Errorf("Generated() = %d, want 21001", src.Generated())
	}
}

func TestPhasedValidate(t *testing.T) {
	atax, _ := ProfileByName("ATAX")
	bad := atax
	bad.APKI = 0
	cases := []struct {
		label string
		w     *PhasedWorkload
	}{
		{"no name", NewPhased("", []Phase{{Profile: atax}})},
		{"no phases", NewPhased("x", nil)},
		{"invalid phase profile", NewPhased("x", []Phase{{Profile: bad}})},
		{"zero budget before last", NewPhased("x", []Phase{{Profile: atax}, {Profile: atax, Instructions: 10}})},
	}
	for _, tc := range cases {
		if err := tc.w.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", tc.label)
		}
	}
	ok := NewPhased("x", []Phase{{Profile: atax, Instructions: 10}, {Profile: atax}})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid phased workload rejected: %v", err)
	}
}

func TestRegistryValidatesAndRejectsDuplicates(t *testing.T) {
	// Invalid profiles are rejected at registration.
	bad := customProfile("registry-bad")
	bad.WORMReuse = 0
	if err := RegisterProfile(bad); err == nil {
		t.Errorf("invalid profile must not register")
	}
	if _, ok := Lookup("registry-bad"); ok {
		t.Errorf("failed registration must not leave an entry behind")
	}

	// First registration succeeds; identical re-registration is a no-op;
	// conflicting redefinition is an error.
	p := customProfile("registry-dup")
	if err := RegisterProfile(p); err != nil {
		t.Fatal(err)
	}
	if err := RegisterProfile(p); err != nil {
		t.Errorf("identical re-registration should be idempotent: %v", err)
	}
	changed := p
	changed.APKI = 99
	if err := RegisterProfile(changed); err == nil {
		t.Errorf("conflicting redefinition must fail")
	}
	// Builtin names are equally protected.
	atax, _ := ProfileByName("ATAX")
	atax.APKI = 1
	if err := RegisterProfile(atax); err == nil {
		t.Errorf("redefining a builtin must fail")
	}
	got, ok := ProfileByName("registry-dup")
	if !ok || got.APKI != p.APKI {
		t.Errorf("registry returned the wrong profile: %+v", got)
	}
}

func TestRegistryViews(t *testing.T) {
	if got := len(BuiltinNames()); got != 21 {
		t.Errorf("BuiltinNames() should list the 21 paper benchmarks, got %d", got)
	}
	atax, _ := ProfileByName("ATAX")
	ph := NewPhased("views-phased", []Phase{{Profile: atax}})
	if err := Register(ph); err != nil {
		t.Fatal(err)
	}
	if IsBuiltin("views-phased") || !IsBuiltin("ATAX") {
		t.Errorf("IsBuiltin misclassifies")
	}
	// Phased workloads appear in WorkloadNames/Lookup but not in the
	// profile views.
	if _, ok := ProfileByName("views-phased"); ok {
		t.Errorf("phased workload must not appear as a profile")
	}
	if _, err := LookupWorkload("views-phased"); err != nil {
		t.Errorf("phased workload must resolve by name: %v", err)
	}
	found := false
	for _, n := range WorkloadNames() {
		if n == "views-phased" {
			found = true
		}
	}
	if !found {
		t.Errorf("WorkloadNames must include registered phased workloads")
	}
	for _, n := range Names() {
		if n == "views-phased" {
			t.Errorf("Names (profile view) must not include phased workloads")
		}
	}
	if _, err := LookupWorkload("definitely-not-registered"); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown names must fail with the registry's error, got %v", err)
	}
}

func TestWorkloadFileRegisters(t *testing.T) {
	data := []byte(`{
		"profiles": [
			{"name": "file-ml", "suite": "ML", "description": "write-heavy",
			 "apki": 120, "mix": {"wm": 0.35, "readIntensive": 0.25, "worm": 0.3, "woro": 0.1},
			 "workingSetBlocks": 420, "irregular": 0.4, "wormReuse": 3}
		],
		"phased": [
			{"name": "file-train", "description": "gather then GEMM",
			 "phases": [{"profile": "file-ml", "instructions": 2000}, {"profile": "GEMM"}]}
		]
	}`)
	f, err := ParseWorkloads(data)
	if err != nil {
		t.Fatal(err)
	}
	names, err := f.Register()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "file-ml" || names[1] != "file-train" {
		t.Errorf("registered names = %v", names)
	}
	p, ok := ProfileByName("file-ml")
	if !ok || p.APKI != 120 || p.Suite != "ML" || p.Mix.WM != 0.35 {
		t.Errorf("file profile did not round-trip: %+v", p)
	}
	w, _ := Lookup("file-train")
	ph, ok := w.(*PhasedWorkload)
	if !ok || len(ph.Phases) != 2 || ph.Phases[0].Profile.Name != "file-ml" || ph.Phases[1].Profile.Name != "GEMM" {
		t.Errorf("phased workload did not resolve: %+v", w)
	}

	// A suite-less profile defaults to "Custom".
	f2, _ := ParseWorkloads([]byte(`{"profiles":[{"name":"file-nosuite","apki":10,
		"mix":{"wm":0.2,"readIntensive":0.2,"worm":0.4,"woro":0.2},
		"workingSetBlocks":64,"irregular":0,"wormReuse":2}]}`))
	if _, err := f2.Register(); err != nil {
		t.Fatal(err)
	}
	if p, _ := ProfileByName("file-nosuite"); p.Suite != "Custom" {
		t.Errorf("suite should default to Custom, got %q", p.Suite)
	}
}

func TestWorkloadFileRejectsDefects(t *testing.T) {
	cases := []struct {
		label string
		data  string
	}{
		{"unknown field", `{"profiles":[{"name":"x","apki":10,"mix":{"wm":1},"workingSetBlocks":1,"wormReuse":1,"typoKnob":5}]}`},
		{"invalid mix", `{"profiles":[{"name":"x","apki":10,"mix":{"wm":0.5},"workingSetBlocks":10,"wormReuse":2}]}`},
		{"unknown phase profile", `{"phased":[{"name":"x","phases":[{"profile":"no-such-profile"}]}]}`},
		{"malformed json", `{"profiles":`},
	}
	for _, tc := range cases {
		f, err := ParseWorkloads([]byte(tc.data))
		if err != nil {
			continue // parse-level rejection is fine
		}
		if _, err := f.Register(); err == nil {
			t.Errorf("%s: expected an error", tc.label)
		}
	}
}

func TestLoadWorkloadFileFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.json")
	content := `{"profiles":[{"name":"disk-prof","apki":20,
		"mix":{"wm":0.1,"readIntensive":0.2,"worm":0.5,"woro":0.2},
		"workingSetBlocks":128,"irregular":0.2,"wormReuse":4}]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := LoadWorkloadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "disk-prof" {
		t.Errorf("names = %v", names)
	}
	// Re-loading the same file is idempotent.
	if _, err := LoadWorkloadFile(path); err != nil {
		t.Errorf("re-loading an identical file should succeed: %v", err)
	}
	if _, err := LoadWorkloadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Errorf("missing file must error")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	atax, _ := ProfileByName("ATAX")
	rec := NewRecorder(Synthetic(atax))
	for sm := 0; sm < 2; sm++ {
		drive(mustSource(t, rec, sm, 42), 3000)
	}
	meta := TraceMeta{Workload: "ATAX", Kind: "Dy-FUSE", InstructionsPerWarp: 100, SMs: 2, Seed: 42}
	tr := rec.Trace(meta)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != meta {
		t.Errorf("meta did not round-trip: %+v vs %+v", got.Meta, meta)
	}
	if len(got.Steps) != len(tr.Steps) {
		t.Fatalf("SM count did not round-trip")
	}
	for sm := range tr.Steps {
		if len(got.Steps[sm]) != len(tr.Steps[sm]) {
			t.Fatalf("SM %d: step count did not round-trip", sm)
		}
		for i := range tr.Steps[sm] {
			if got.Steps[sm][i] != tr.Steps[sm][i] {
				t.Fatalf("SM %d step %d: %+v != %+v", sm, i, got.Steps[sm][i], tr.Steps[sm][i])
			}
		}
	}
	// The serialisation is deterministic: writing again yields the same bytes.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("trace serialisation must be deterministic")
	}

	// Corruption is detected.
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes()[:len(buf.Bytes())-5])); err == nil {
		t.Errorf("truncated trace must error")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Errorf("bad magic must error")
	}
}

func TestReplayDivergence(t *testing.T) {
	atax, _ := ProfileByName("ATAX")
	rec := NewRecorder(Synthetic(atax))
	drive(mustSource(t, rec, 0, 42), 100)
	tr := rec.Trace(TraceMeta{Workload: "ATAX", Seed: 42})
	w := tr.Workload()

	// Asking for an SM the trace does not record fails loudly.
	if _, err := w.NewSource(5, 42); err == nil {
		t.Errorf("out-of-range SM must error")
	}

	// Consuming past the recording pads with no-ops and counts divergence,
	// and the workload aggregates the count across its sources.
	src := mustSource(t, w, 0, 42)
	drive(src, 150)
	rs := src.(*replaySource)
	if rs.Diverged() != 50 {
		t.Errorf("Diverged() = %d, want 50", rs.Diverged())
	}
	if src.Generated() != 150 {
		t.Errorf("Generated() = %d, want 150", src.Generated())
	}
	if w.Diverged() != 50 {
		t.Errorf("workload Diverged() = %d, want 50", w.Diverged())
	}

	// A faithful replay reports zero divergence.
	w2 := tr.Workload()
	drive(mustSource(t, w2, 0, 42), 100)
	if w2.Diverged() != 0 {
		t.Errorf("faithful replay should not diverge, got %d", w2.Diverged())
	}
}

func TestReadTraceRejectsHugeStepCount(t *testing.T) {
	// A crafted header claiming an enormous step count must fail as a
	// truncated trace, not attempt the allocation (or panic).
	data := []byte(traceMagic + `{"meta":{"workload":"x","instructionsPerWarp":1,"sms":1,"seed":1},"steps":[1152921504606846976]}` + "\n" + "short")
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("huge step count should read as a truncated trace, got %v", err)
	}
}

func TestWorkloadKeyMaterials(t *testing.T) {
	atax, _ := ProfileByName("ATAX")

	// Synthetic key material is exactly the Profile encoding (the property
	// that keeps every pre-redesign store entry valid).
	m, err := Synthetic(atax).KeyMaterial()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(atax)
	if !bytes.Equal(m, want) {
		t.Errorf("synthetic key material must be the raw Profile encoding:\n%s\n%s", m, want)
	}

	// Phased and replay materials are disjoint from any profile encoding and
	// from each other (a "kind" discriminator no Profile has).
	ph := NewPhased("km-phased", []Phase{{Profile: atax}})
	pm, err := ph.KeyMaterial()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(Synthetic(atax))
	drive(mustSource(t, rec, 0, 42), 50)
	rm, err := rec.Trace(TraceMeta{Workload: "ATAX", Seed: 42}).Workload().KeyMaterial()
	if err != nil {
		t.Fatal(err)
	}
	for label, material := range map[string]json.RawMessage{"phased": pm, "replay": rm} {
		var fields map[string]any
		if err := json.Unmarshal(material, &fields); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if fields["kind"] != label {
			t.Errorf("%s key material must carry kind=%q: %s", label, label, material)
		}
	}

	// A recorder is key-transparent: recording does not change the key.
	recM, _ := NewRecorder(Synthetic(atax)).KeyMaterial()
	if !bytes.Equal(recM, want) {
		t.Errorf("recorder must not change the key material")
	}

	// Two identical recordings share a replay key; different recordings get
	// different keys (content-addressed digest).
	rec2 := NewRecorder(Synthetic(atax))
	drive(mustSource(t, rec2, 0, 42), 50)
	rm2, _ := rec2.Trace(TraceMeta{Workload: "ATAX", Seed: 42}).Workload().KeyMaterial()
	if !bytes.Equal(rm, rm2) {
		t.Errorf("identical recordings must produce identical replay keys")
	}
	rec3 := NewRecorder(Synthetic(atax))
	drive(mustSource(t, rec3, 0, 42), 60)
	rm3, _ := rec3.Trace(TraceMeta{Workload: "ATAX", Seed: 42}).Workload().KeyMaterial()
	if bytes.Equal(rm, rm3) {
		t.Errorf("different recordings must produce different replay keys")
	}
}
