package trace

import (
	"bytes"
	"fmt"
	"sync"
)

// The workload registry maps names to Workloads. The 21 builtin Table-II
// profiles are registered at package initialisation in the paper's figure
// order; user-defined workloads (from workload files, the fuseserve batch
// API, or direct Register calls) append after them. The registry is the
// single lookup path of the whole repository: sim.RunWorkload, engine jobs,
// the CLIs and the server all resolve workload names here, so a workload
// registered once is runnable everywhere.
var registry = struct {
	mu      sync.RWMutex
	order   []string
	byName  map[string]Workload
	builtin map[string]bool
}{
	byName:  make(map[string]Workload),
	builtin: make(map[string]bool),
}

func init() {
	for _, p := range profiles {
		if err := Register(Synthetic(p)); err != nil {
			panic(fmt.Sprintf("trace: registering builtin profile: %v", err))
		}
		registry.builtin[p.Name] = true
	}
}

// Register adds a workload to the registry. The workload is validated first —
// an invalid workload is never registered — and the name must be free:
// re-registering a name is an error unless the new workload's canonical key
// material is byte-identical to the registered one (an idempotent re-load of
// the same workload file is not an error; redefining a name to mean a
// different simulation is).
func Register(w Workload) error { return RegisterAll(w) }

// RegisterAll registers a set of workloads atomically: every entry is
// validated and checked against the registry (and against the set itself)
// before anything is committed, so a defective entry leaves the registry
// untouched. Workload-file loading and the server's inline definitions go
// through it — a rejected request must not leave half its definitions
// behind.
func RegisterAll(ws ...Workload) error {
	type entry struct {
		w        Workload
		material []byte
	}
	entries := make([]entry, 0, len(ws))
	for _, w := range ws {
		if w == nil {
			return fmt.Errorf("trace: cannot register a nil workload")
		}
		if err := w.Validate(); err != nil {
			return fmt.Errorf("trace: register: %w", err)
		}
		material, err := w.KeyMaterial()
		if err != nil {
			return fmt.Errorf("trace: register %s: %w", w.Name(), err)
		}
		entries = append(entries, entry{w: w, material: material})
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	// Pass 1: every name must be free, or already bound (in the registry or
	// earlier in this set) to byte-identical key material.
	pending := make(map[string][]byte, len(entries))
	for _, e := range entries {
		old, ok := registry.byName[e.w.Name()]
		var oldMaterial []byte
		if ok {
			m, err := old.KeyMaterial()
			if err != nil {
				return fmt.Errorf("trace: register %s: %w", e.w.Name(), err)
			}
			oldMaterial = m
		} else if m, dup := pending[e.w.Name()]; dup {
			ok, oldMaterial = true, m
		}
		if ok && !bytes.Equal(oldMaterial, e.material) {
			return fmt.Errorf("trace: workload %q is already registered with different parameters", e.w.Name())
		}
		pending[e.w.Name()] = e.material
	}
	// Pass 2: commit (identical re-registrations are no-ops).
	for _, e := range entries {
		if _, ok := registry.byName[e.w.Name()]; ok {
			continue
		}
		registry.order = append(registry.order, e.w.Name())
		registry.byName[e.w.Name()] = e.w
	}
	return nil
}

// RegisterProfile registers a synthetic workload built from the profile.
func RegisterProfile(p Profile) error { return Register(Synthetic(p)) }

// Lookup resolves a workload name through the registry.
func Lookup(name string) (Workload, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	w, ok := registry.byName[name]
	return w, ok
}

// LookupWorkload is Lookup with the repository's single unknown-workload
// error: every layer (sim, engine, CLIs, server) resolves names through it,
// so a missing workload reads the same everywhere.
func LookupWorkload(name string) (Workload, error) {
	if w, ok := Lookup(name); ok {
		return w, nil
	}
	return nil, fmt.Errorf("unknown workload %q (not registered: builtin names are listed by trace.Names, custom ones come from a workload file or trace.Register)", name)
}

// IsBuiltin reports whether the name is one of the paper's 21 Table-II
// benchmarks.
func IsBuiltin(name string) bool {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.builtin[name]
}

// WorkloadNames returns every registered workload name: the builtins in
// figure order, then user registrations in registration order.
func WorkloadNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

// BuiltinNames returns the paper's 21 benchmark names in figure order,
// regardless of what else has been registered. The experiment layer's default
// workload sets are pinned to it so that loading a workload file (or a server
// client registering inline workloads) never silently changes what a paper
// figure means.
func BuiltinNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	var out []string
	for _, name := range registry.order {
		if registry.builtin[name] {
			out = append(out, name)
		}
	}
	return out
}

// Profiles returns the registered synthetic profiles — the 21 paper
// benchmarks in figure order, followed by any user-registered profiles.
// Phased and replay workloads have no single profile and are not included;
// enumerate them with WorkloadNames/Lookup.
func Profiles() []Profile {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	var out []Profile
	for _, name := range registry.order {
		if s, ok := registry.byName[name].(*SyntheticWorkload); ok {
			out = append(out, s.Profile)
		}
	}
	return out
}

// Names returns the registered synthetic-profile names (see Profiles).
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	var out []string
	for _, name := range registry.order {
		if _, ok := registry.byName[name].(*SyntheticWorkload); ok {
			out = append(out, name)
		}
	}
	return out
}

// ProfileByName looks a synthetic profile up by name.
func ProfileByName(name string) (Profile, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if s, ok := registry.byName[name].(*SyntheticWorkload); ok {
		return s.Profile, true
	}
	return Profile{}, false
}
