package trace

import (
	"reflect"
	"testing"
)

// These tests pin the order-insensitivity claims behind the //fuselint:ordered
// annotations in this package (see kernel.go AnalyzeProfile and record.go
// Trace): the justifications say map iteration order cannot be observed in
// the output, so repeated runs must agree bit for bit.

func TestAnalyzeProfileDeterministic(t *testing.T) {
	for _, prof := range Profiles() {
		a := AnalyzeProfile(prof, 200000, 7)
		b := AnalyzeProfile(prof, 200000, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: AnalyzeProfile not deterministic:\n%+v\n%+v", prof.Name, a, b)
		}
	}
}

func TestRecorderTraceDeterministic(t *testing.T) {
	capture := func() *Trace {
		rec := NewRecorder(Synthetic(Profiles()[0]))
		const sms = 8
		srcs := make([]Source, sms)
		for sm := 0; sm < sms; sm++ {
			src, err := rec.NewSource(sm, 42)
			if err != nil {
				t.Fatal(err)
			}
			srcs[sm] = src
		}
		for i := 0; i < 500; i++ {
			for sm := 0; sm < sms; sm++ {
				srcs[sm].Next(i % 4)
			}
		}
		return rec.Trace(TraceMeta{Workload: "det-test"})
	}
	a, b := capture(), capture()
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("trace shapes differ: %d vs %d SMs", len(a.Steps), len(b.Steps))
	}
	if !reflect.DeepEqual(a.Steps, b.Steps) {
		t.Error("Recorder.Trace not deterministic across identical runs")
	}
}
