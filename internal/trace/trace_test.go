package trace

import (
	"testing"
	"testing/quick"

	"fuse/internal/mem"
)

func TestProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 21 {
		t.Fatalf("paper evaluates 21 workloads, got %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range Names() {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Errorf("ProfileByName(%q) failed", name)
		}
	}
	if _, ok := ProfileByName("does-not-exist"); ok {
		t.Errorf("unknown name should not resolve")
	}
	if len(Names()) != 21 {
		t.Errorf("Names() should list 21 workloads")
	}
}

func TestWorkloadSubsets(t *testing.T) {
	check := func(names []string, want int, label string) {
		if len(names) != want {
			t.Errorf("%s should have %d workloads, got %d", label, want, len(names))
		}
		for _, n := range names {
			if _, ok := ProfileByName(n); !ok {
				t.Errorf("%s references unknown workload %q", label, n)
			}
		}
	}
	check(MotivationWorkloads(), 7, "Figure 3 motivation set")
	check(RatioSweepWorkloads(), 9, "Figure 18 ratio sweep set")
	check(CBFStudyWorkloads(), 9, "Figure 20 CBF study set")
}

func TestSuites(t *testing.T) {
	suites := Suites()
	if len(suites) != 4 {
		t.Fatalf("expected 4 suites (PolyBench, Rodinia, Parboil, Mars), got %v", suites)
	}
	total := 0
	for _, s := range suites {
		names := BySuite(s)
		if len(names) == 0 {
			t.Errorf("suite %s has no workloads", s)
		}
		total += len(names)
	}
	if total != 21 {
		t.Errorf("suites should partition the 21 workloads, got %d", total)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ProfileByName("ATAX")
	cases := []func(p *Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.APKI = 0 },
		func(p *Profile) { p.Mix.WORM += 0.5 },
		func(p *Profile) { p.WorkingSetBlocks = 0 },
		func(p *Profile) { p.Irregular = 1.5 },
		func(p *Profile) { p.WORMReuse = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		writes, reads uint64
		want          mem.ReadLevel
	}{
		{0, 1, mem.WORO},
		{1, 0, mem.WORO},
		{0, 0, mem.WORO},
		{1, 4, mem.WORM},
		{0, 3, mem.WORM},
		{3, 1, mem.WriteMultiple},
		{2, 2, mem.WriteMultiple},
		{2, 8, mem.ReadIntensive},
	}
	for _, c := range cases {
		if got := Classify(c.writes, c.reads); got != c.want {
			t.Errorf("Classify(%d writes, %d reads) = %v, want %v", c.writes, c.reads, got, c.want)
		}
	}
}

func TestKernelDeterminism(t *testing.T) {
	prof, _ := ProfileByName("ATAX")
	k1 := NewKernel(prof, 3, 42)
	k2 := NewKernel(prof, 3, 42)
	for i := 0; i < 5000; i++ {
		a := k1.Next(i % 48)
		b := k2.Next(i % 48)
		if a != b {
			t.Fatalf("kernel generation must be deterministic, diverged at %d: %+v vs %+v", i, a, b)
		}
	}
	// Different SMs see different addresses.
	k3 := NewKernel(prof, 4, 42)
	same := 0
	for i := 0; i < 2000; i++ {
		a := k1.Next(0)
		b := k3.Next(0)
		if a.IsMem && b.IsMem && a.Addr == b.Addr {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different SMs should mostly touch different data, %d collisions", same)
	}
}

func TestKernelAPKIMatchesProfile(t *testing.T) {
	// The measured per-thread APKI should track the Table II value up to the
	// warp-level memory-fraction cap (very memory-intensive kernels saturate
	// the single load/store port).
	const capAPKI = maxMemFraction * 1000 / threadsPerWarp
	for _, name := range []string{"2DCONV", "ATAX", "GEMM", "pathf", "SM"} {
		prof, _ := ProfileByName(name)
		k := NewKernel(prof, 0, 7)
		const n = 200000
		for i := 0; i < n; i++ {
			k.Next(i % 48)
		}
		got := k.MeasuredAPKI()
		want := prof.APKI
		if want > capAPKI {
			want = capAPKI
		}
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("%s: measured APKI %.1f far from expected %.1f", name, got, want)
		}
		if k.Generated() != n {
			t.Errorf("%s: Generated() = %d, want %d", name, k.Generated(), n)
		}
		if k.MemoryAccesses() == 0 {
			t.Errorf("%s: no memory accesses generated", name)
		}
		if k.MemFraction() <= 0 || k.MemFraction() > maxMemFraction+0.05 {
			t.Errorf("%s: memory fraction %.2f out of range", name, k.MemFraction())
		}
	}
	// Relative ordering survives the cap: pathf is far less memory-intensive
	// than ATAX.
	light, _ := ProfileByName("pathf")
	heavy, _ := ProfileByName("ATAX")
	kl := NewKernel(light, 0, 7)
	kh := NewKernel(heavy, 0, 7)
	for i := 0; i < 100000; i++ {
		kl.Next(i % 48)
		kh.Next(i % 48)
	}
	if kl.MemFraction() >= kh.MemFraction() {
		t.Errorf("pathf should be less memory-intensive than ATAX: %.3f vs %.3f",
			kl.MemFraction(), kh.MemFraction())
	}
}

func TestKernelAddressesAreBlockRepresentable(t *testing.T) {
	prof, _ := ProfileByName("GEMM")
	k := NewKernel(prof, 2, 1)
	for i := 0; i < 20000; i++ {
		ins := k.Next(i % 48)
		if !ins.IsMem {
			if ins.PC == 0 {
				t.Fatalf("ALU instructions should carry a PC")
			}
			continue
		}
		if ins.PC == 0 {
			t.Fatalf("memory instructions should carry a PC")
		}
		if ins.Addr%mem.BlockSize != 0 {
			t.Fatalf("generated addresses should be block-aligned, got %#x", ins.Addr)
		}
	}
}

func TestAnalyzeProfileWORMDominates(t *testing.T) {
	// The paper's central observation (Figure 6): the overwhelming majority
	// of blocks are WORM/WORO, i.e. written at most once.
	for _, name := range []string{"ATAX", "GESUM", "2DCONV", "GEMM"} {
		prof, _ := ProfileByName(name)
		bp := AnalyzeProfile(prof, 400000, 11)
		if bp.Blocks == 0 {
			t.Fatalf("%s: no blocks analysed", name)
		}
		worm := bp.Fractions[mem.WORM] + bp.Fractions[mem.WORO]
		if worm < 0.6 {
			t.Errorf("%s: WORM+WORO fraction = %.2f, expected the paper's write-once-dominated mix", name, worm)
		}
		sum := 0.0
		for _, f := range bp.Fractions {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions should sum to 1, got %v", name, sum)
		}
	}
}

func TestAnalyzeProfileWriteHeavyWorkloads(t *testing.T) {
	// 2MM/3MM and the MapReduce workloads carry a much larger WM fraction
	// than the irregular PolyBench kernels.
	wmOf := func(name string) float64 {
		prof, _ := ProfileByName(name)
		return AnalyzeProfile(prof, 400000, 13).Fractions[mem.WriteMultiple]
	}
	if wmOf("2MM") <= wmOf("ATAX") {
		t.Errorf("2MM should have more write-multiple blocks than ATAX: %v vs %v", wmOf("2MM"), wmOf("ATAX"))
	}
	if wmOf("PVC") <= wmOf("GESUM") {
		t.Errorf("PVC should have more write-multiple blocks than GESUM: %v vs %v", wmOf("PVC"), wmOf("GESUM"))
	}
}

func TestAnalyzeProfileEmptyStream(t *testing.T) {
	prof, _ := ProfileByName("pathf")
	bp := AnalyzeProfile(prof, 0, 1)
	if bp.Blocks != 0 {
		t.Errorf("zero instructions should touch zero blocks")
	}
}

func TestScatterIsPermutationLike(t *testing.T) {
	// scatter must be deterministic and spread nearby indices far apart.
	prop := func(x uint32) bool {
		a := scatter(uint64(x))
		b := scatter(uint64(x))
		return a == b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	collisions := 0
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		v := scatter(i) % (1 << 22)
		if seen[v] {
			collisions++
		}
		seen[v] = true
	}
	if collisions > 100 {
		t.Errorf("scatter produced %d collisions in 10000 samples", collisions)
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	r1 := newRNG(99)
	r2 := newRNG(99)
	for i := 0; i < 1000; i++ {
		if r1.next() != r2.next() {
			t.Fatalf("rng must be deterministic")
		}
	}
	r := newRNG(5)
	for i := 0; i < 1000; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
		n := r.intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("intn out of range: %d", n)
		}
	}
	if r.intn(0) != 0 || r.intn(-5) != 0 {
		t.Errorf("intn of non-positive bound should be 0")
	}
}

func TestMixSum(t *testing.T) {
	m := ReadLevelMix{0.1, 0.2, 0.3, 0.4}
	if m.Sum() != 1.0 {
		t.Errorf("Sum = %v", m.Sum())
	}
}
