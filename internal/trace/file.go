package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Workload files let users define workloads without recompiling: a JSON
// document of synthetic profiles and phased composites, loaded by the CLIs
// (`-workloads file.json` on fusesim, `-workloadfile` on fusetables, the
// fuseserve flag) and accepted inline by POST /v1/batch. The schema uses its
// own lowercase field names — deliberately decoupled from the Profile struct,
// whose Go field names are part of the result store's key material and must
// never grow encoding tags.
//
// Example:
//
//	{
//	  "profiles": [
//	    {"name": "mlstress", "suite": "Custom", "description": "...",
//	     "apki": 120, "mix": {"wm": 0.35, "readIntensive": 0.25,
//	     "worm": 0.30, "woro": 0.10}, "workingSetBlocks": 420,
//	     "irregular": 0.4, "wormReuse": 3}
//	  ],
//	  "phased": [
//	    {"name": "train-step", "phases": [
//	      {"profile": "mlstress", "instructions": 2000},
//	      {"profile": "GEMM"}
//	    ]}
//	  ]
//	}

// FileMix is the read-level mix of a file-defined profile.
type FileMix struct {
	WM            float64 `json:"wm"`
	ReadIntensive float64 `json:"readIntensive"`
	WORM          float64 `json:"worm"`
	WORO          float64 `json:"woro"`
}

// FileProfile is one synthetic profile of a workload file.
type FileProfile struct {
	Name             string  `json:"name"`
	Suite            string  `json:"suite,omitempty"`
	Description      string  `json:"description,omitempty"`
	APKI             float64 `json:"apki"`
	Mix              FileMix `json:"mix"`
	WorkingSetBlocks int     `json:"workingSetBlocks"`
	Irregular        float64 `json:"irregular"`
	WORMReuse        int     `json:"wormReuse"`
}

// Profile converts the file schema into the internal Profile.
func (f FileProfile) Profile() Profile {
	suite := f.Suite
	if suite == "" {
		suite = "Custom"
	}
	return Profile{
		Name:             f.Name,
		Suite:            suite,
		Description:      f.Description,
		APKI:             f.APKI,
		Mix:              ReadLevelMix{WM: f.Mix.WM, ReadIntensive: f.Mix.ReadIntensive, WORM: f.Mix.WORM, WORO: f.Mix.WORO},
		WorkingSetBlocks: f.WorkingSetBlocks,
		Irregular:        f.Irregular,
		WORMReuse:        f.WORMReuse,
	}
}

// FilePhase is one stage of a file-defined phased workload. Profile may name
// a builtin benchmark, a profile defined earlier in the same file, or any
// previously registered profile.
type FilePhase struct {
	Profile      string `json:"profile"`
	Instructions uint64 `json:"instructions,omitempty"`
}

// FilePhased is a phased workload of a workload file.
type FilePhased struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Phases      []FilePhase `json:"phases"`
}

// WorkloadFile is the parsed form of a workload file.
type WorkloadFile struct {
	Profiles []FileProfile `json:"profiles,omitempty"`
	Phased   []FilePhased  `json:"phased,omitempty"`
}

// ParseWorkloads parses a workload file, rejecting unknown fields so a typo
// in a knob name fails loudly instead of silently simulating the default.
func ParseWorkloads(data []byte) (*WorkloadFile, error) {
	var f WorkloadFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: parsing workload file: %w", err)
	}
	return &f, nil
}

// Register validates and registers every workload of the file — phased
// entries may reference profiles defined earlier in the same file — and
// returns the registered names in file order. Registration is atomic: a
// defective entry anywhere in the file (or a name conflict with the
// registry) leaves the registry untouched, so a rejected load or batch
// request never leaves half its definitions behind. Re-registering an
// identical file is a no-op.
func (f *WorkloadFile) Register() ([]string, error) {
	var (
		ws    []Workload
		names []string
		local = make(map[string]Profile, len(f.Profiles))
	)
	for _, fp := range f.Profiles {
		p := fp.Profile()
		local[p.Name] = p
		ws = append(ws, Synthetic(p))
		names = append(names, p.Name)
	}
	for i, fp := range f.Phased {
		w, err := fp.workload(local)
		if err != nil {
			return nil, fmt.Errorf("phased[%d]: %w", i, err)
		}
		ws = append(ws, w)
		names = append(names, w.Name())
	}
	if err := RegisterAll(ws...); err != nil {
		return nil, err
	}
	return names, nil
}

// workload resolves a file-defined phased workload against the profiles of
// its own file first, then the registry.
func (fp FilePhased) workload(local map[string]Profile) (*PhasedWorkload, error) {
	w := &PhasedWorkload{WorkloadName: fp.Name, Description: fp.Description}
	for i, ph := range fp.Phases {
		prof, ok := local[ph.Profile]
		if !ok {
			prof, ok = ProfileByName(ph.Profile)
		}
		if !ok {
			return nil, fmt.Errorf("%s: phase %d references unknown profile %q", fp.Name, i, ph.Profile)
		}
		w.Phases = append(w.Phases, Phase{Profile: prof, Instructions: ph.Instructions})
	}
	return w, nil
}

// LoadWorkloadFile parses and registers a workload file from disk, returning
// the registered workload names in file order.
func LoadWorkloadFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	f, err := ParseWorkloads(data)
	if err != nil {
		return nil, err
	}
	names, err := f.Register()
	if err != nil {
		return names, fmt.Errorf("trace: workload file %s: %w", path, err)
	}
	return names, nil
}
