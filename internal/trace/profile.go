// Package trace generates the synthetic GPU memory-reference streams that
// stand in for the paper's CUDA benchmarks (PolyBench, Rodinia, Parboil and
// Mars). Each benchmark is described by a Profile whose parameters are taken
// from the paper's Table II (APKI, By-NVM bypass ratio) and Figure 6
// (read-level mix), plus a working-set size and an irregularity knob that
// reproduce the workload's cache behaviour. The generator produces
// per-SM instruction streams whose statistics — not their arithmetic — drive
// the memory hierarchy, which is all the paper's evaluation depends on.
package trace

import (
	"fmt"
	"sort"

	"fuse/internal/mem"
)

// ReadLevelMix is the fraction of data blocks in each read-level category
// (Figure 6). The four fractions sum to 1.
type ReadLevelMix struct {
	WM            float64
	ReadIntensive float64
	WORM          float64
	WORO          float64
}

// Sum returns the total of the four fractions.
func (m ReadLevelMix) Sum() float64 { return m.WM + m.ReadIntensive + m.WORM + m.WORO }

// Profile describes one benchmark.
//
// A synthetic workload's store-key material is its Profile encoding, so the
// struct is a key root: fuselint's keydrift analyzer requires every field to
// be keyed or explicitly annotated //fuselint:execonly.
//
//fuselint:keyroot
type Profile struct {
	// Name is the benchmark name as used in the paper's figures.
	Name string
	// Suite is the benchmark suite (PolyBench, Rodinia, Parboil, Mars).
	Suite string
	// Description gives a one-line summary of the kernel.
	Description string
	// APKI is the number of memory accesses per kilo-instruction (Table II).
	APKI float64
	// Mix is the read-level block mix (Figure 6).
	Mix ReadLevelMix
	// WorkingSetBlocks is the per-SM reuse window, in 128-byte blocks, of
	// the WORM and read-intensive data. It determines which cache
	// organisations can capture the workload.
	WorkingSetBlocks int
	// Irregular in [0,1] is the probability that a block address is
	// scattered (hashed) rather than sequential; irregular workloads
	// produce the conflict misses that only (approximately)
	// fully-associative organisations avoid.
	Irregular float64
	// WORMReuse is the average number of reads a WORM block receives after
	// its single write.
	WORMReuse int
	// PaperBypassRatio is the By-NVM bypass ratio the paper reports in
	// Table II (documentation; the simulator measures its own).
	PaperBypassRatio float64
}

// Validate reports whether the profile is internally consistent.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile without a name")
	}
	if p.APKI <= 0 {
		return fmt.Errorf("trace: %s: APKI must be positive", p.Name)
	}
	if s := p.Mix.Sum(); s < 0.99 || s > 1.01 {
		return fmt.Errorf("trace: %s: read-level mix sums to %v, want 1", p.Name, s)
	}
	if p.WorkingSetBlocks <= 0 {
		return fmt.Errorf("trace: %s: working set must be positive", p.Name)
	}
	if p.Irregular < 0 || p.Irregular > 1 {
		return fmt.Errorf("trace: %s: irregularity must be in [0,1]", p.Name)
	}
	if p.WORMReuse <= 0 {
		return fmt.Errorf("trace: %s: WORM reuse must be positive", p.Name)
	}
	return nil
}

// profiles is the table of the 21 representative workloads the paper selects
// (Table II). Working-set sizes and irregularity are calibrated so that the
// workloads thrash, fit or stream in the same qualitative way the paper
// describes: the irregular PolyBench kernels (ATAX, BICG, GESUMMV, MVT, ...)
// have scattered working sets around 400-460 blocks that overwhelm the
// 256-block L1-SRAM but fit the fully-associative FUSE organisations; the
// MapReduce workloads (PVC, PVR, SS) carry a large write-multiple fraction;
// 2MM/3MM are write-heavy; pathf/mri-g/srad barely touch memory.
var profiles = []Profile{
	{Name: "2DCONV", Suite: "PolyBench", Description: "2-D convolution stencil", APKI: 9, Mix: ReadLevelMix{0.03, 0.07, 0.82, 0.08}, WorkingSetBlocks: 192, Irregular: 0.10, WORMReuse: 4, PaperBypassRatio: 0.26},
	{Name: "2MM", Suite: "PolyBench", Description: "two chained matrix multiplications", APKI: 10, Mix: ReadLevelMix{0.30, 0.05, 0.55, 0.10}, WorkingSetBlocks: 380, Irregular: 0.50, WORMReuse: 3, PaperBypassRatio: 0.60},
	{Name: "3MM", Suite: "PolyBench", Description: "three chained matrix multiplications", APKI: 10, Mix: ReadLevelMix{0.30, 0.05, 0.55, 0.10}, WorkingSetBlocks: 400, Irregular: 0.50, WORMReuse: 3, PaperBypassRatio: 0.49},
	{Name: "ATAX", Suite: "PolyBench", Description: "matrix-transpose-vector product", APKI: 64, Mix: ReadLevelMix{0.02, 0.05, 0.85, 0.08}, WorkingSetBlocks: 420, Irregular: 0.90, WORMReuse: 4, PaperBypassRatio: 0.90},
	{Name: "BICG", Suite: "PolyBench", Description: "BiCGStab linear-solver kernel", APKI: 64, Mix: ReadLevelMix{0.02, 0.05, 0.85, 0.08}, WorkingSetBlocks: 420, Irregular: 0.90, WORMReuse: 4, PaperBypassRatio: 0.90},
	{Name: "cfd", Suite: "Rodinia", Description: "unstructured-grid finite-volume solver", APKI: 4.5, Mix: ReadLevelMix{0.05, 0.10, 0.75, 0.10}, WorkingSetBlocks: 300, Irregular: 0.60, WORMReuse: 3, PaperBypassRatio: 0.81},
	{Name: "FDTD", Suite: "PolyBench", Description: "2-D finite-difference time domain", APKI: 18, Mix: ReadLevelMix{0.08, 0.10, 0.74, 0.08}, WorkingSetBlocks: 360, Irregular: 0.30, WORMReuse: 4, PaperBypassRatio: 0.27},
	{Name: "gaussian", Suite: "Rodinia", Description: "Gaussian elimination", APKI: 8.5, Mix: ReadLevelMix{0.04, 0.08, 0.80, 0.08}, WorkingSetBlocks: 230, Irregular: 0.20, WORMReuse: 4, PaperBypassRatio: 0.36},
	{Name: "GEMM", Suite: "PolyBench", Description: "dense matrix-matrix multiplication", APKI: 136, Mix: ReadLevelMix{0.05, 0.10, 0.80, 0.05}, WorkingSetBlocks: 450, Irregular: 0.70, WORMReuse: 4, PaperBypassRatio: 0.61},
	{Name: "GESUM", Suite: "PolyBench", Description: "scalar-vector-matrix multiplication (GESUMMV)", APKI: 12, Mix: ReadLevelMix{0.02, 0.04, 0.86, 0.08}, WorkingSetBlocks: 410, Irregular: 0.90, WORMReuse: 4, PaperBypassRatio: 0.96},
	{Name: "II", Suite: "Mars", Description: "inverted-index MapReduce", APKI: 77, Mix: ReadLevelMix{0.06, 0.06, 0.70, 0.18}, WorkingSetBlocks: 460, Irregular: 0.80, WORMReuse: 3, PaperBypassRatio: 0.54},
	{Name: "MVT", Suite: "PolyBench", Description: "matrix-vector product and transpose", APKI: 64, Mix: ReadLevelMix{0.02, 0.05, 0.85, 0.08}, WorkingSetBlocks: 420, Irregular: 0.90, WORMReuse: 4, PaperBypassRatio: 0.91},
	{Name: "PVC", Suite: "Mars", Description: "page-view count MapReduce", APKI: 37, Mix: ReadLevelMix{0.25, 0.10, 0.50, 0.15}, WorkingSetBlocks: 400, Irregular: 0.60, WORMReuse: 3, PaperBypassRatio: 0.18},
	{Name: "PVR", Suite: "Mars", Description: "page-view rank MapReduce", APKI: 14, Mix: ReadLevelMix{0.22, 0.10, 0.53, 0.15}, WorkingSetBlocks: 450, Irregular: 0.50, WORMReuse: 3, PaperBypassRatio: 0.33},
	{Name: "pathf", Suite: "Rodinia", Description: "dynamic-programming path finder", APKI: 1.2, Mix: ReadLevelMix{0.05, 0.10, 0.70, 0.15}, WorkingSetBlocks: 128, Irregular: 0.20, WORMReuse: 3, PaperBypassRatio: 0.92},
	{Name: "SS", Suite: "Mars", Description: "similarity score MapReduce", APKI: 30, Mix: ReadLevelMix{0.25, 0.08, 0.47, 0.20}, WorkingSetBlocks: 430, Irregular: 0.70, WORMReuse: 3, PaperBypassRatio: 0.80},
	{Name: "srad_v1", Suite: "Rodinia", Description: "speckle-reducing anisotropic diffusion", APKI: 3.5, Mix: ReadLevelMix{0.06, 0.10, 0.76, 0.08}, WorkingSetBlocks: 200, Irregular: 0.20, WORMReuse: 4, PaperBypassRatio: 0.38},
	{Name: "SM", Suite: "Mars", Description: "string match MapReduce", APKI: 140, Mix: ReadLevelMix{0.04, 0.08, 0.80, 0.08}, WorkingSetBlocks: 460, Irregular: 0.80, WORMReuse: 4, PaperBypassRatio: 0.02},
	{Name: "SYR2K", Suite: "PolyBench", Description: "symmetric rank-2k update", APKI: 108, Mix: ReadLevelMix{0.04, 0.10, 0.81, 0.05}, WorkingSetBlocks: 440, Irregular: 0.60, WORMReuse: 4, PaperBypassRatio: 0.02},
	{Name: "mri-g", Suite: "Parboil", Description: "MRI gridding", APKI: 3.3, Mix: ReadLevelMix{0.05, 0.15, 0.70, 0.10}, WorkingSetBlocks: 150, Irregular: 0.30, WORMReuse: 4, PaperBypassRatio: 0.13},
	{Name: "histo", Suite: "Parboil", Description: "saturating histogram", APKI: 9.6, Mix: ReadLevelMix{0.15, 0.15, 0.60, 0.10}, WorkingSetBlocks: 280, Irregular: 0.50, WORMReuse: 3, PaperBypassRatio: 0.63},
}

// MotivationWorkloads returns the seven memory-intensive workloads used in
// the paper's Figure 3 motivation study.
func MotivationWorkloads() []string {
	return []string{"3MM", "ATAX", "BICG", "gaussian", "GESUM", "II", "SYR2K"}
}

// RatioSweepWorkloads returns the nine workloads used in the Figure 18
// SRAM/STT-MRAM ratio sensitivity study.
func RatioSweepWorkloads() []string {
	return []string{"2DCONV", "2MM", "3MM", "ATAX", "BICG", "FDTD", "GEMM", "GESUM", "SYR2K"}
}

// CBFStudyWorkloads returns the nine workloads of the Figure 20 CBF
// false-positive study.
func CBFStudyWorkloads() []string {
	return []string{"2DCONV", "2MM", "3MM", "ATAX", "BICG", "cfd", "FDTD", "gaussian", "GEMM"}
}

// Suites returns the distinct benchmark suites in deterministic order.
func Suites() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range profiles {
		if !seen[p.Suite] {
			seen[p.Suite] = true
			out = append(out, p.Suite)
		}
	}
	sort.Strings(out)
	return out
}

// BySuite returns the profile names belonging to the given suite.
func BySuite(suite string) []string {
	var out []string
	for _, p := range profiles {
		if p.Suite == suite {
			out = append(out, p.Name)
		}
	}
	return out
}

// Classify maps a block's lifetime access counts onto the paper's read-level
// categories (used by the Figure 6 analysis and the predictor audit).
func Classify(writes, reads uint64) mem.ReadLevel {
	total := writes + reads
	switch {
	case total <= 1:
		return mem.WORO
	case writes >= 2 && reads >= 2*writes:
		return mem.ReadIntensive
	case writes >= 2:
		return mem.WriteMultiple
	case reads >= 2:
		return mem.WORM
	default:
		return mem.WORO
	}
}
