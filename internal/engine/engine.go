// Package engine is the concurrent batch-execution layer of the repository.
// Every figure of the paper is a matrix of independent (L1D configuration,
// workload) simulations; the Runner executes such matrices on a bounded
// worker pool, deduplicating identical jobs (both in-flight and completed,
// singleflight-style) so that figures sharing runs — 13, 14, 15, 16 and 17
// all reuse the same six-kind matrix — never simulate the same point twice.
//
// The Runner guarantees deterministic result ordering: RunBatch returns
// results in submission order regardless of the order in which the workers
// finish, so a parallel figure regeneration is byte-identical to the serial
// one.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/store"
	"fuse/internal/trace"
)

// Job describes one simulation to execute. Two jobs are the same simulation —
// and are deduplicated — when their Key() values are equal. Every field must
// be part of Key, be keyed through the store path (a //fuselint:keyroot
// type), or carry an explicit //fuselint:execonly justification — fuselint's
// keydrift analyzer enforces this.
//
//fuselint:jobkey Key
type Job struct {
	// Kind selects the L1D configuration on the Fermi-class GPU. It is
	// ignored when GPU is set.
	Kind config.L1DKind
	// Workload is the workload name, resolved through the trace registry
	// (builtin benchmarks — see trace.Names — and registered custom or
	// phased workloads alike).
	Workload string
	// Label identifies a custom-GPU job. It must uniquely describe GPU
	// within one Runner: the label, not the config struct, is the dedup
	// identity of custom jobs.
	Label string
	// GPU, when non-nil, overrides the Fermi-class GPU built from Kind.
	GPU *config.GPUConfig
	// Opts are the simulation options (scale, seed, SM override...).
	Opts sim.Options
	// SimWorkers is the number of goroutines the simulator itself may use
	// for this job (sim.Simulator.SetWorkers); zero or one selects the
	// sequential engine, and zero lets the Runner substitute its default.
	// It is an execution-resource knob, not part of the job's identity —
	// results are byte-identical for every value — so it is excluded from
	// Key() and from the content-addressed store key.
	//
	//fuselint:execonly worker count never changes results (TestParallelEngineMatchesSequential)
	SimWorkers int
}

// Key is the comparable dedup identity of a Job.
type Key struct {
	Kind     config.L1DKind
	Workload string
	Label    string
	Opts     sim.Options
}

// Key returns the job's dedup identity.
func (j Job) Key() Key {
	return Key{Kind: j.Kind, Workload: j.Workload, Label: j.Label, Opts: j.Opts}
}

// String renders a short human-readable job name (for progress lines).
func (j Job) String() string {
	name := j.Kind.String()
	if j.Label != "" {
		name = j.Label
	}
	return name + "/" + j.Workload
}

// GPUConfig returns the job's effective GPU configuration: the explicit
// override, or the Fermi-class GPU built from the job's L1D kind.
func (j Job) GPUConfig() config.GPUConfig {
	if j.GPU != nil {
		return *j.GPU
	}
	return config.FermiGPU(config.NewL1DConfig(j.Kind))
}

// BackendJob builds the canonical job for a kind-based simulation on an
// explicit memory backend: the Fermi-class GPU with MemBackend set under the
// "<kind>@<backend>" label. The CLI tools, the server and the experiment
// matrix all build backend-override jobs through this one helper, so the
// same logical point always hashes to the same store key.
func BackendJob(kind config.L1DKind, workload, backend string, opts sim.Options) Job {
	cfg := config.FermiGPU(config.NewL1DConfig(kind))
	cfg.MemBackend = backend
	return Job{Label: kind.String() + "@" + backend, GPU: &cfg, Workload: workload, Opts: opts}
}

// StoreKey returns the job's content-addressed result-store key: the stable
// hash of its effective GPU configuration, workload key material and
// simulation options (see store.Key). Unlike Key, which identifies a job
// within one Runner, the store key identifies the simulation across
// processes. The workload name is resolved through the trace registry, so
// custom (file-loaded or API-registered) workloads key exactly like builtins.
func StoreKey(job Job) (string, error) {
	w, err := trace.LookupWorkload(job.Workload)
	if err != nil {
		return "", fmt.Errorf("engine: %w", err)
	}
	return store.Key(job.GPUConfig(), w, job.Opts)
}

// ExecFunc is the executor signature of the engine: one job run to
// completion under a context. Execute is the local implementation; the
// cluster coordinator's Execute method is the distributed one, and tests
// substitute counting or stalling stubs.
type ExecFunc = func(context.Context, Job) (sim.Result, error)

// Cache is the pluggable second-tier result cache of a Runner: it is
// consulted (by store key) before a job is executed and written through after
// a successful execution. It is store.Cache by another name (an alias, so the
// two can never drift apart): store.Memory, store.Disk and store.Tiered all
// satisfy it, and a nil cache disables the tier. Implementations must be safe
// for concurrent use.
type Cache = store.Cache

// arenas pools simulation scratch arenas across Execute calls: a Runner
// executing a figure matrix reuses the same event heaps, wake heaps and flat
// warp slabs for every job instead of re-allocating them per simulation.
var arenas = sync.Pool{New: func() any { return sim.NewArena() }}

// Execute runs one job to completion. It is the default executor of a Runner
// and the single place where the engine touches the simulator. The context
// is threaded into the simulator's cycle loop, so cancellation aborts
// in-flight simulations, not just queued ones. The simulator is built on a
// pooled arena and honours the job's SimWorkers count.
//
//fuselint:blocking runs a full simulation to completion
func Execute(ctx context.Context, job Job) (sim.Result, error) {
	w, err := trace.LookupWorkload(job.Workload)
	if err != nil {
		return sim.Result{}, fmt.Errorf("engine: %w", err)
	}
	arena := arenas.Get().(*sim.Arena)
	s, err := sim.NewWithArena(job.GPUConfig(), w, job.Opts, arena)
	if err != nil {
		arenas.Put(arena)
		return sim.Result{}, err
	}
	s.SetWorkers(job.SimWorkers)
	res, err := s.RunContext(ctx)
	s.ReleaseArena()
	arenas.Put(arena)
	return res, err
}

// Progress is one progress-callback notification, fired when a job finishes
// executing: job Done of Total freshly executed jobs in the batch have
// completed (Done counts successes and failures; jobs served from the cache
// or from another batch's in-flight work are not notified). Notifications
// arrive in completion order, as the workers finish.
type Progress struct {
	Done  int
	Total int
	Job   Job
	Err   error
}

// Config configures a Runner.
type Config struct {
	// Workers bounds the number of simulations executing at once.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// SimWorkers is the per-simulation worker count given to jobs that do
	// not set their own (see Job.SimWorkers). Zero means automatic: divide
	// MaxParallelism evenly across the pool. Both the default and any
	// per-job request are clamped so that Workers × per-simulation workers
	// never exceeds MaxParallelism — a full pool cannot oversubscribe the
	// machine no matter what the jobs ask for.
	SimWorkers int
	// MaxParallelism is the total goroutine budget shared by the pool and
	// the per-simulation workers. Zero or negative means GOMAXPROCS.
	MaxParallelism int
	// Exec overrides the job executor (tests use this to count or stall
	// executions; fuseserve's coordinator mode plugs in the cluster's
	// fan-out executor). Nil means Execute.
	Exec ExecFunc
	// Progress, when non-nil, is called as each freshly executed job
	// completes. Calls are serialised per batch; the callback must not
	// block for long.
	Progress func(Progress)
	// Cache, when non-nil, is the second-tier result cache (typically a
	// store.Tiered composing a memory tier over a persistent disk store):
	// jobs whose store key hits the cache skip execution entirely, and
	// freshly executed results are written through.
	Cache Cache
	// Retries is the number of times a failed execution is retried before
	// the job's error is reported (so a job executes at most Retries+1
	// times). Context errors — and nothing else — are never retried. Zero
	// disables retries.
	Retries int
	// RetryBackoff is the base delay before the first retry; each further
	// attempt doubles it, capped at RetryMaxBackoff. The actual delay is
	// jittered deterministically per (job, attempt), and the wait always
	// selects on ctx.Done(). Zero means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff. Zero means
	// DefaultRetryMaxBackoff.
	RetryMaxBackoff time.Duration
}

// Default retry backoff bounds (see Config.RetryBackoff).
const (
	DefaultRetryBackoff    = 10 * time.Millisecond
	DefaultRetryMaxBackoff = time.Second
)

// PanicError is the per-job error a panicking execution is converted into:
// the recovered value plus the goroutine stack at the panic site. A panic in
// one simulation never takes down the worker pool or the process.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job panicked: %v\n%s", e.Value, e.Stack)
}

// JobError pairs a failed job with its error.
type JobError struct {
	Job Job
	Err error
}

// BatchError collects the per-job failures of one batch.
type BatchError struct {
	Errors []JobError
}

// Error implements the error interface.
func (e *BatchError) Error() string {
	if len(e.Errors) == 1 {
		return fmt.Sprintf("engine: job %s: %v", e.Errors[0].Job, e.Errors[0].Err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d jobs failed:", len(e.Errors))
	for _, je := range e.Errors {
		fmt.Fprintf(&b, "\n  %s: %v", je.Job, je.Err)
	}
	return b.String()
}

// Unwrap exposes the first underlying error (so errors.Is sees context
// cancellation).
func (e *BatchError) Unwrap() error {
	if len(e.Errors) == 0 {
		return nil
	}
	return e.Errors[0].Err
}

// call is one in-flight or completed execution shared by every batch that
// asked for the same key.
type call struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Runner executes batches of simulation jobs on a worker pool, caching every
// completed result for the lifetime of the Runner.
type Runner struct {
	workers    int
	simWorkers int // per-simulation default for jobs that don't set one
	simCap     int // hard per-simulation cap: max(1, MaxParallelism/workers)
	exec       func(context.Context, Job) (sim.Result, error)
	progress   func(Progress)
	cache      Cache
	sem        chan struct{}

	retries    int
	backoff    time.Duration
	backoffMax time.Duration

	mu        sync.Mutex
	calls     map[Key]*call
	completed int
	executed  int
	storeHits int
	retried   int
	panicked  int
}

// New creates a Runner. A zero Config is valid: GOMAXPROCS workers, the real
// simulator executor, no progress callback.
func New(cfg Config) *Runner {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	exec := cfg.Exec
	if exec == nil {
		exec = Execute
	}
	budget := cfg.MaxParallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	simCap := budget / workers
	if simCap < 1 {
		simCap = 1
	}
	simWorkers := simCap // automatic: split the budget across the pool
	if cfg.SimWorkers > 0 && cfg.SimWorkers < simWorkers {
		simWorkers = cfg.SimWorkers
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	backoffMax := cfg.RetryMaxBackoff
	if backoffMax <= 0 {
		backoffMax = DefaultRetryMaxBackoff
	}
	return &Runner{
		workers:    workers,
		simWorkers: simWorkers,
		simCap:     simCap,
		exec:       exec,
		progress:   cfg.Progress,
		cache:      cfg.Cache,
		sem:        make(chan struct{}, workers),
		retries:    cfg.Retries,
		backoff:    backoff,
		backoffMax: backoffMax,
		calls:      make(map[Key]*call),
	}
}

// Workers returns the size of the worker pool.
func (r *Runner) Workers() int { return r.workers }

// SimWorkers returns the per-simulation worker count handed to jobs that do
// not request their own: the Runner's configured default after the
// oversubscription clamp (Workers × SimWorkers never exceeds the
// MaxParallelism budget).
func (r *Runner) SimWorkers() int { return r.simWorkers }

// simWorkersFor resolves a job's effective per-simulation worker count: the
// job's own request (or the Runner default when it has none), clamped by the
// Runner's oversubscription cap.
func (r *Runner) simWorkersFor(job Job) int {
	n := job.SimWorkers
	if n <= 0 {
		n = r.simWorkers
	}
	if n > r.simCap {
		n = r.simCap
	}
	return n
}

// Completed returns the number of successfully completed (cached) jobs.
func (r *Runner) Completed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed
}

// Executed returns the number of simulations this Runner actually ran to a
// successful completion — jobs served from the second-tier cache or from the
// in-process dedup map are not counted.
func (r *Runner) Executed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed
}

// StoreHits returns the number of jobs served from the second-tier cache
// instead of being executed.
func (r *Runner) StoreHits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.storeHits
}

// Retried returns the number of retry attempts spent on failed executions
// (each re-execution counts one, whether or not it ultimately succeeded).
func (r *Runner) Retried() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retried
}

// Panics returns the number of executions that panicked and were converted
// into per-job errors.
func (r *Runner) Panics() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.panicked
}

// Keys returns the cached job keys in a stable order (for inspection).
func (r *Runner) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]Key, 0, len(r.calls))
	for k := range r.calls {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Workload < b.Workload
	})
	return keys
}

// startLocked returns the call for a key, creating it if this caller is the
// first to ask. The boolean reports whether the caller must execute it.
func (r *Runner) start(k Key) (*call, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.calls[k]; ok {
		return c, false
	}
	c := &call{done: make(chan struct{})}
	r.calls[k] = c
	return c, true
}

// finish records a call's outcome. Context errors are evicted from the cache
// so that a later batch (with a live context) retries instead of replaying
// the cancellation.
func (r *Runner) finish(k Key, c *call, res sim.Result, err error) {
	r.mu.Lock()
	c.res, c.err = res, err
	if err == nil {
		r.completed++
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		delete(r.calls, k)
	}
	r.mu.Unlock()
	close(c.done)
}

// progressState is one batch's completion accounting for the progress
// callback: its mutex both counts completions and serialises the callback
// invocations of that batch.
type progressState struct {
	mu    sync.Mutex
	done  int
	total int
}

// notify reports one completed job to the progress callback. It runs before
// the call is marked finished, so every notification of a batch has been
// delivered by the time RunBatch returns.
func (r *Runner) notify(p *progressState, job Job, err error) {
	if r.progress == nil || p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	r.progress(Progress{Done: p.done, Total: p.total, Job: job, Err: err})
}

// execAttempt runs one execution attempt with panic containment: a panic in
// the executor (or the simulator under it) becomes a *PanicError carrying
// the stack, and is counted, instead of killing the worker pool.
func (r *Runner) execAttempt(ctx context.Context, job Job) (res sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			stack := debug.Stack()
			r.mu.Lock()
			r.panicked++
			r.mu.Unlock()
			res, err = sim.Result{}, &PanicError{Value: v, Stack: stack}
		}
	}()
	return r.exec(ctx, job)
}

// backoffDelay returns the jittered delay before retry number attempt
// (1-based): the base backoff doubled per attempt, capped, then scaled by a
// deterministic jitter fraction in [0.5, 1.0) derived from the job name and
// attempt — no shared PRNG stream, so the delay schedule of one job never
// depends on goroutine interleaving.
func backoffDelay(base, max time.Duration, attempt int, name string) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	x := h.Sum64() + uint64(attempt)*0x9e3779b97f4a7c15
	// splitmix64 finaliser: decorrelates the hash into uniform bits.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := 0.5 + float64(x>>11)/(1<<53)/2
	return time.Duration(float64(d) * frac)
}

// execWithRetry runs a job up to 1+Retries times with capped exponential
// backoff between attempts. Context errors are returned immediately — a
// cancelled batch must not sit out a backoff schedule — and every backoff
// wait itself selects on ctx.Done().
func (r *Runner) execWithRetry(ctx context.Context, job Job) (sim.Result, error) {
	res, err := r.execAttempt(ctx, job)
	for attempt := 1; attempt <= r.retries; attempt++ {
		if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return res, err
		}
		timer := time.NewTimer(backoffDelay(r.backoff, r.backoffMax, attempt, job.String()))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return res, err // report the real failure, not the cancellation
		}
		r.mu.Lock()
		r.retried++
		r.mu.Unlock()
		res, err = r.execAttempt(ctx, job)
	}
	return res, err
}

// run executes one call: first past the second-tier result cache (a hit
// skips the worker pool entirely), then on the pool itself, writing fresh
// results back through the cache.
func (r *Runner) run(ctx context.Context, k Key, c *call, job Job, p *progressState) {
	job.SimWorkers = r.simWorkersFor(job)
	storeKey := ""
	if r.cache != nil {
		if key, err := StoreKey(job); err == nil {
			storeKey = key
			if res, ok := r.cache.Get(key); ok {
				r.mu.Lock()
				r.storeHits++
				r.mu.Unlock()
				r.notify(p, job, nil)
				r.finish(k, c, res, nil)
				return
			}
		}
	}
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		r.notify(p, job, ctx.Err())
		r.finish(k, c, sim.Result{}, ctx.Err())
		return
	}
	defer func() { <-r.sem }() //fuselint:noctx releasing a slot the select above acquired; the receive never blocks
	res, err := r.execWithRetry(ctx, job)
	if err == nil {
		r.mu.Lock()
		r.executed++
		r.mu.Unlock()
		if r.cache != nil && storeKey != "" {
			r.cache.Put(storeKey, res)
		}
	}
	r.notify(p, job, err)
	r.finish(k, c, res, err)
}

// RunBatch executes every job (deduplicated against the batch itself, against
// in-flight work and against completed results) and returns the results in
// submission order. The returned error is nil when every job succeeded, or a
// *BatchError listing each failed job; results of failed jobs are zero.
// Cancelling the context abandons jobs that have not started and fails the
// batch with the context's error.
//
//fuselint:blocking waits for every simulation in the batch
func (r *Runner) RunBatch(ctx context.Context, jobs []Job) ([]sim.Result, error) {
	// Pass 1: resolve every job to its (possibly shared) call, claiming the
	// keys this batch is first to ask for. Spawning waits until the batch's
	// fresh-job count is known, so progress notifications — fired by the
	// workers in completion order — always carry the right Total.
	calls := make([]*call, len(jobs))
	seen := make(map[Key]*call, len(jobs))
	type spawn struct {
		k   Key
		c   *call
		job Job
	}
	var mine []spawn
	for i, job := range jobs {
		k := job.Key()
		if c, ok := seen[k]; ok {
			calls[i] = c
			continue
		}
		c, fresh := r.start(k)
		seen[k] = c
		calls[i] = c
		if fresh {
			mine = append(mine, spawn{k: k, c: c, job: job})
		}
	}

	// Pass 2: execute this batch's fresh jobs on the worker pool.
	prog := &progressState{total: len(mine)}
	for _, s := range mine {
		go r.run(ctx, s.k, s.c, s.job, prog)
	}

	results := make([]sim.Result, len(jobs))
	var batchErr BatchError
	for i, c := range calls {
		select {
		case <-c.done:
		case <-ctx.Done():
			// Wait for the call anyway: its goroutine observes the same
			// context and finishes promptly, and waiting keeps the
			// completion accounting exact.
			<-c.done //fuselint:noctx the runner always closes done; the bounded wait keeps completion accounting exact
		}
		results[i] = c.res
		if c.err != nil {
			batchErr.Errors = append(batchErr.Errors, JobError{Job: jobs[i], Err: c.err})
		}
	}
	if len(batchErr.Errors) > 0 {
		return results, &batchErr
	}
	return results, nil
}

// Get executes (or fetches the cached result of) a single job.
//
//fuselint:blocking waits for the job's simulation
func (r *Runner) Get(ctx context.Context, job Job) (sim.Result, error) {
	res, err := r.RunBatch(ctx, []Job{job})
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) && len(be.Errors) > 0 {
			return sim.Result{}, be.Errors[0].Err
		}
		return sim.Result{}, err
	}
	return res[0], nil
}
