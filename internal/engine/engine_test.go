package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fuse/internal/config"
	"fuse/internal/sim"
)

// quickOpts keeps real-simulator test runs small and fast.
func quickOpts() sim.Options {
	return sim.Options{InstructionsPerWarp: 100, Seed: 7, SMOverride: 1, MaxCycles: 1_000_000}
}

// countingExec returns a fake executor that counts executions per key and
// stamps the result with an identifiable cycle count.
func countingExec(calls *sync.Map, total *atomic.Int64) func(context.Context, Job) (sim.Result, error) {
	return func(_ context.Context, job Job) (sim.Result, error) {
		total.Add(1)
		n, _ := calls.LoadOrStore(job.Key(), new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return sim.Result{Workload: job.Workload, Cycles: int64(len(job.Workload))}, nil
	}
}

func TestDefaultsAndWorkers(t *testing.T) {
	r := New(Config{})
	if r.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", r.Workers(), runtime.GOMAXPROCS(0))
	}
	if got := New(Config{Workers: 3}).Workers(); got != 3 {
		t.Errorf("Workers = %d, want 3", got)
	}
	if got := New(Config{Workers: -1}).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative workers should fall back to GOMAXPROCS, got %d", got)
	}
}

func TestBatchDeduplicatesWithinAndAcrossBatches(t *testing.T) {
	var calls sync.Map
	var total atomic.Int64
	r := New(Config{Workers: 4, Exec: countingExec(&calls, &total)})

	jobs := []Job{
		{Kind: config.L1SRAM, Workload: "A"},
		{Kind: config.DyFUSE, Workload: "A"},
		{Kind: config.L1SRAM, Workload: "A"}, // duplicate of job 0
		{Kind: config.L1SRAM, Workload: "B"},
	}
	res, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(res), len(jobs))
	}
	if total.Load() != 3 {
		t.Errorf("expected 3 unique executions, got %d", total.Load())
	}
	if res[0].Workload != "A" || res[2].Workload != "A" || res[3].Workload != "B" {
		t.Errorf("results misordered: %+v", res)
	}
	if r.Completed() != 3 {
		t.Errorf("Completed = %d, want 3", r.Completed())
	}

	// A second batch over the same keys is served fully from the cache.
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 3 {
		t.Errorf("cached batch should not re-execute, got %d executions", total.Load())
	}
	if len(r.Keys()) != 3 {
		t.Errorf("Keys() should list the 3 cached keys, got %d", len(r.Keys()))
	}
}

func TestInFlightDeduplication(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var total atomic.Int64
	var once sync.Once
	r := New(Config{Workers: 4, Exec: func(_ context.Context, job Job) (sim.Result, error) {
		total.Add(1)
		once.Do(func() { close(started) })
		<-release
		return sim.Result{Workload: job.Workload}, nil
	}})

	job := Job{Kind: config.DyFUSE, Workload: "slow"}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Get(context.Background(), job); err != nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	<-started
	// All three Gets are now waiting on the same in-flight call.
	close(release)
	wg.Wait()
	if total.Load() != 1 {
		t.Errorf("in-flight duplicates should share one execution, got %d", total.Load())
	}
}

func TestDeterministicOrderingUnderConcurrency(t *testing.T) {
	// Jobs finish in reverse submission order (later jobs sleep less), yet
	// the result slice must follow submission order.
	r := New(Config{Workers: 8, Exec: func(_ context.Context, job Job) (sim.Result, error) {
		var i int
		fmt.Sscanf(job.Workload, "w%d", &i)
		time.Sleep(time.Duration(8-i) * time.Millisecond)
		return sim.Result{Workload: job.Workload, Cycles: int64(i)}, nil
	}})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Kind: config.DyFUSE, Workload: fmt.Sprintf("w%d", i)}
	}
	res, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if res[i].Cycles != int64(i) {
			t.Fatalf("result %d out of order: %+v", i, res[i])
		}
	}
}

func TestPerJobErrorCollection(t *testing.T) {
	sentinel := errors.New("boom")
	r := New(Config{Workers: 2, Exec: func(_ context.Context, job Job) (sim.Result, error) {
		if job.Workload == "bad" {
			return sim.Result{}, sentinel
		}
		return sim.Result{Workload: job.Workload}, nil
	}})
	jobs := []Job{
		{Kind: config.L1SRAM, Workload: "good"},
		{Kind: config.L1SRAM, Workload: "bad"},
		{Kind: config.DyFUSE, Workload: "bad"},
	}
	res, err := r.RunBatch(context.Background(), jobs)
	if err == nil {
		t.Fatal("expected a batch error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error should be a *BatchError, got %T", err)
	}
	if len(be.Errors) != 2 {
		t.Fatalf("expected 2 job errors, got %d: %v", len(be.Errors), be)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("BatchError should unwrap to the job error")
	}
	if res[0].Workload != "good" {
		t.Errorf("successful job's result should survive a partial failure")
	}
	if r.Completed() != 1 {
		t.Errorf("only the successful job should count as completed, got %d", r.Completed())
	}
	// Deterministic failures stay cached: Get replays the error without
	// a new execution.
	if _, err := r.Get(context.Background(), jobs[1]); !errors.Is(err, sentinel) {
		t.Errorf("cached failure should replay, got %v", err)
	}
	if s := be.Error(); s == "" {
		t.Errorf("BatchError message should not be empty")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	r := New(Config{Workers: 1, Exec: func(ctx context.Context, job Job) (sim.Result, error) {
		once.Do(func() { close(started) })
		select {
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		case <-time.After(10 * time.Second):
			return sim.Result{Workload: job.Workload}, nil
		}
	}})
	go func() {
		<-started
		cancel()
	}()
	jobs := []Job{
		{Kind: config.L1SRAM, Workload: "first"},
		{Kind: config.DyFUSE, Workload: "second"}, // never gets a worker
	}
	_, err := r.RunBatch(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if r.Completed() != 0 {
		t.Errorf("cancelled jobs must not count as completed, got %d", r.Completed())
	}

	// Cancellation must not poison the cache: a fresh context retries.
	r2 := New(Config{Workers: 1, Exec: func(_ context.Context, job Job) (sim.Result, error) {
		return sim.Result{Workload: job.Workload}, nil
	}})
	// Reuse r's cache by replaying on r with a working exec is not possible
	// (exec is fixed), so assert eviction directly: the cancelled keys are
	// gone from the cache.
	if n := len(r.Keys()); n != 0 {
		t.Errorf("cancelled calls should be evicted from the cache, %d remain", n)
	}
	if _, err := r2.Get(context.Background(), jobs[0]); err != nil {
		t.Errorf("retry on a fresh runner: %v", err)
	}
}

func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	r := New(Config{Workers: 2, Progress: func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}, Exec: func(_ context.Context, job Job) (sim.Result, error) {
		return sim.Result{Workload: job.Workload}, nil
	}})
	jobs := []Job{
		{Kind: config.L1SRAM, Workload: "A"},
		{Kind: config.L1SRAM, Workload: "A"}, // deduplicated: one notification
		{Kind: config.L1SRAM, Workload: "B"},
	}
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("expected one progress event per unique job, got %d", len(events))
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != 2 {
			t.Errorf("event %d: Done=%d Total=%d, want %d/2", i, p.Done, p.Total, i+1)
		}
		if p.Err != nil {
			t.Errorf("event %d: unexpected error %v", i, p.Err)
		}
	}

	// A fully cached batch executes nothing, so it notifies nothing.
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Errorf("cache-served batch should emit no progress events, got %d total", len(events))
	}
}

func TestExecuteRealSimulator(t *testing.T) {
	r := New(Config{Workers: 2})
	// A kind-based job and a custom-GPU job of the same workload.
	gpu := config.FermiGPU(config.OracleL1D())
	jobs := []Job{
		{Kind: config.L1SRAM, Workload: "pathf", Opts: quickOpts()},
		{Label: "oracle", GPU: &gpu, Workload: "pathf", Opts: quickOpts()},
	}
	res, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].IPC <= 0 || res[1].IPC <= 0 {
		t.Errorf("both simulations should produce a positive IPC: %v, %v", res[0].IPC, res[1].IPC)
	}
	if res[0].Workload != "pathf" || res[1].Workload != "pathf" {
		t.Errorf("results should identify the workload")
	}

	// Unknown workloads fail per job, for both execution paths.
	if _, err := r.Get(context.Background(), Job{Kind: config.L1SRAM, Workload: "nope", Opts: quickOpts()}); err == nil {
		t.Errorf("unknown workload (kind path) should fail")
	}
	if _, err := r.Get(context.Background(), Job{Label: "x", GPU: &gpu, Workload: "nope", Opts: quickOpts()}); err == nil {
		t.Errorf("unknown workload (custom path) should fail")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The engine's core guarantee: a parallel batch produces exactly the
	// same results, in the same order, as a serial one.
	opts := quickOpts()
	kinds := []config.L1DKind{config.L1SRAM, config.ByNVM, config.DyFUSE}
	workloads := []string{"ATAX", "pathf"}
	var jobs []Job
	for _, k := range kinds {
		for _, w := range workloads {
			jobs = append(jobs, Job{Kind: k, Workload: w, Opts: opts})
		}
	}
	serial, err := New(Config{Workers: 1}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Config{Workers: 4}).RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i] != parallel[i] {
			t.Errorf("job %d (%s): parallel result differs from serial", i, jobs[i])
		}
	}
}

func TestJobString(t *testing.T) {
	j := Job{Kind: config.DyFUSE, Workload: "ATAX"}
	if j.String() != "Dy-FUSE/ATAX" {
		t.Errorf("Job.String() = %q", j.String())
	}
	j.Label = "volta-Dy-FUSE"
	if j.String() != "volta-Dy-FUSE/ATAX" {
		t.Errorf("labelled Job.String() = %q", j.String())
	}
}

// recordingCache is a Cache that counts gets/puts and stores in a map.
type recordingCache struct {
	mu   sync.Mutex
	m    map[string]sim.Result
	gets int
	puts int
}

func newRecordingCache() *recordingCache {
	return &recordingCache{m: make(map[string]sim.Result)}
}

func (c *recordingCache) Get(key string) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	res, ok := c.m[key]
	return res, ok
}

func (c *recordingCache) Put(key string, res sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = res
}

func TestStoreKeyStableAndDiscriminating(t *testing.T) {
	job := Job{Kind: config.DyFUSE, Workload: "ATAX", Opts: quickOpts()}
	k1, err := StoreKey(job)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := StoreKey(Job{Kind: config.DyFUSE, Workload: "ATAX", Opts: quickOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical jobs should share a store key")
	}
	k3, err := StoreKey(Job{Kind: config.L1SRAM, Workload: "ATAX", Opts: quickOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Errorf("different kinds should produce different store keys")
	}
	// A custom-GPU job keys on the configuration itself, not the label.
	gpu := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	k4, err := StoreKey(Job{Label: "custom", GPU: &gpu, Workload: "ATAX", Opts: quickOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if k4 != k1 {
		t.Errorf("a custom job with the Fermi Dy-FUSE config is the same simulation: %s vs %s", k4, k1)
	}
	if _, err := StoreKey(Job{Kind: config.DyFUSE, Workload: "nope"}); err == nil {
		t.Errorf("unknown workload should fail")
	}
}

func TestRunnerServesFromSecondTierCache(t *testing.T) {
	cache := newRecordingCache()
	jobs := []Job{
		{Kind: config.L1SRAM, Workload: "ATAX", Opts: quickOpts()},
		{Kind: config.DyFUSE, Workload: "ATAX", Opts: quickOpts()},
	}

	var total1 atomic.Int64
	var calls sync.Map
	r1 := New(Config{Workers: 2, Cache: cache, Exec: countingExec(&calls, &total1)})
	res1, err := r1.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Executed(); got != 2 {
		t.Errorf("cold runner executed %d, want 2", got)
	}
	if got := r1.StoreHits(); got != 0 {
		t.Errorf("cold runner had %d store hits, want 0", got)
	}
	if cache.puts != 2 {
		t.Errorf("results should be written through: puts = %d", cache.puts)
	}

	// A fresh Runner sharing the cache executes nothing.
	var total2 atomic.Int64
	r2 := New(Config{Workers: 2, Cache: cache, Exec: countingExec(&calls, &total2)})
	res2, err := r2.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if total2.Load() != 0 {
		t.Errorf("warm runner executed %d simulations, want 0", total2.Load())
	}
	if got := r2.StoreHits(); got != 2 {
		t.Errorf("warm runner store hits = %d, want 2", got)
	}
	if got := r2.Executed(); got != 0 {
		t.Errorf("warm runner Executed() = %d, want 0", got)
	}
	for i := range res1 {
		if res1[i] != res2[i] {
			t.Errorf("job %d: warm result differs from cold", i)
		}
	}
	// Cache-served results still land in the Runner's first-tier dedup map.
	if r2.Completed() != 2 {
		t.Errorf("Completed = %d, want 2", r2.Completed())
	}
}

func TestFailedJobsAreNotCached(t *testing.T) {
	cache := newRecordingCache()
	boom := errors.New("boom")
	r := New(Config{Workers: 1, Cache: cache, Exec: func(context.Context, Job) (sim.Result, error) {
		return sim.Result{}, boom
	}})
	_, err := r.RunBatch(context.Background(), []Job{{Kind: config.L1SRAM, Workload: "ATAX", Opts: quickOpts()}})
	if err == nil {
		t.Fatal("expected batch error")
	}
	if cache.puts != 0 {
		t.Errorf("failed jobs must not be written to the cache: puts = %d", cache.puts)
	}
	if r.Executed() != 0 {
		t.Errorf("failed executions should not count: Executed = %d", r.Executed())
	}
}

// TestSimWorkersClampedByBudget pins the oversubscription rule: a full pool
// of per-simulation worker groups never claims more goroutines than the
// MaxParallelism budget, no matter what the config or the jobs request.
func TestSimWorkersClampedByBudget(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want int
	}{
		// 4 pool workers on an 8-goroutine budget: 2 per simulation.
		{"auto-split", Config{Workers: 4, MaxParallelism: 8}, 2},
		// An explicit request above the split is clamped down.
		{"explicit-clamped", Config{Workers: 4, SimWorkers: 8, MaxParallelism: 8}, 2},
		// An explicit request below the split is honoured.
		{"explicit-honoured", Config{Workers: 2, SimWorkers: 3, MaxParallelism: 16}, 3},
		// More pool workers than budget: simulations stay sequential.
		{"pool-saturates-budget", Config{Workers: 8, MaxParallelism: 4}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := New(tc.cfg).SimWorkers(); got != tc.want {
				t.Errorf("SimWorkers() = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestJobSimWorkersResolved pins how a job's own SimWorkers request meets the
// Runner's clamp: honoured up to the cap, capped beyond it, defaulted when
// absent — and always invisible to the dedup identity.
func TestJobSimWorkersResolved(t *testing.T) {
	var got atomic.Int64
	r := New(Config{Workers: 4, MaxParallelism: 16, Exec: func(_ context.Context, job Job) (sim.Result, error) {
		got.Store(int64(job.SimWorkers))
		return sim.Result{}, nil
	}})
	run := func(j Job) int {
		t.Helper()
		if _, err := r.RunBatch(context.Background(), []Job{j}); err != nil {
			t.Fatal(err)
		}
		return int(got.Load())
	}
	base := Job{Kind: config.L1SRAM, Workload: "ATAX", Opts: quickOpts()}

	withTwo := base
	withTwo.SimWorkers = 2
	if n := run(withTwo); n != 2 {
		t.Errorf("job requesting 2 sim workers executed with %d", n)
	}

	over := base
	over.Workload = "BICG"
	over.SimWorkers = 64
	if n := run(over); n != 4 { // cap = 16/4
		t.Errorf("job requesting 64 sim workers should be capped to 4, got %d", n)
	}

	deflt := base
	deflt.Workload = "MVT"
	if n := run(deflt); n != 4 { // runner default = auto split
		t.Errorf("job without a request should get the runner default 4, got %d", n)
	}

	// SimWorkers is not identity: a duplicate with a different count is
	// deduplicated against the already-completed call, not re-executed.
	executedBefore := got.Load()
	dup := withTwo
	dup.SimWorkers = 3
	if dup.Key() != withTwo.Key() {
		t.Fatalf("SimWorkers must not enter the dedup Key")
	}
	if _, err := r.RunBatch(context.Background(), []Job{dup}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != executedBefore {
		t.Errorf("duplicate job with different SimWorkers re-executed")
	}
}

// TestExecuteParallelSimulatorMatches runs the real simulator through
// Execute with a parallel job and checks the result against the sequential
// engine — the engine-level slice of the determinism guarantee, through the
// pooled-arena path.
func TestExecuteParallelSimulatorMatches(t *testing.T) {
	opts := sim.Options{InstructionsPerWarp: 300, Seed: 7, SMOverride: 2, MaxCycles: 2_000_000}
	seq, err := Execute(context.Background(), Job{Kind: config.DyFUSE, Workload: "ATAX", Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Execute(context.Background(), Job{Kind: config.DyFUSE, Workload: "ATAX", Opts: opts, SimWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par != seq {
		t.Errorf("parallel Execute diverged from sequential:\n got: %+v\nwant: %+v", par, seq)
	}
}

func TestPanicRecoveryBecomesPerJobError(t *testing.T) {
	var total atomic.Int64
	r := New(Config{Workers: 2, Exec: func(_ context.Context, job Job) (sim.Result, error) {
		total.Add(1)
		if job.Workload == "BOOM" {
			panic("simulated explosion")
		}
		return sim.Result{Workload: job.Workload}, nil
	}})

	jobs := []Job{
		{Kind: config.L1SRAM, Workload: "A"},
		{Kind: config.L1SRAM, Workload: "BOOM"},
		{Kind: config.L1SRAM, Workload: "B"},
	}
	res, err := r.RunBatch(context.Background(), jobs)
	if err == nil {
		t.Fatalf("expected a batch error for the panicking job")
	}
	var be *BatchError
	if !errors.As(err, &be) || len(be.Errors) != 1 {
		t.Fatalf("want exactly one failed job, got %v", err)
	}
	var pe *PanicError
	if !errors.As(be.Errors[0].Err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", be.Errors[0].Err, be.Errors[0].Err)
	}
	if pe.Value != "simulated explosion" || len(pe.Stack) == 0 {
		t.Errorf("PanicError should carry the value and a stack: %+v", pe.Value)
	}
	// The pool survived: the healthy jobs completed normally.
	if res[0].Workload != "A" || res[2].Workload != "B" {
		t.Errorf("healthy jobs should complete despite the panic")
	}
	if r.Panics() != 1 {
		t.Errorf("Panics = %d, want 1", r.Panics())
	}
	// The pool is still usable after the panic.
	if _, err := r.Get(context.Background(), Job{Kind: config.DyFUSE, Workload: "C"}); err != nil {
		t.Errorf("runner unusable after panic: %v", err)
	}
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	var attempts atomic.Int64
	r := New(Config{
		Workers: 2,
		Retries: 3,
		// Keep the test fast: microsecond backoff.
		RetryBackoff:    time.Microsecond,
		RetryMaxBackoff: 10 * time.Microsecond,
		Exec: func(_ context.Context, job Job) (sim.Result, error) {
			if attempts.Add(1) <= 2 {
				return sim.Result{}, errors.New("transient")
			}
			return sim.Result{Workload: job.Workload}, nil
		},
	})
	res, err := r.Get(context.Background(), Job{Kind: config.L1SRAM, Workload: "A"})
	if err != nil {
		t.Fatalf("retries should have recovered the job: %v", err)
	}
	if res.Workload != "A" {
		t.Errorf("wrong result after retry: %+v", res)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if r.Retried() != 2 {
		t.Errorf("Retried = %d, want 2", r.Retried())
	}
	if r.Executed() != 1 {
		t.Errorf("Executed = %d, want 1 (retries are not extra executions)", r.Executed())
	}
}

func TestRetriesExhaustedReportsLastError(t *testing.T) {
	var attempts atomic.Int64
	r := New(Config{
		Workers:         1,
		Retries:         2,
		RetryBackoff:    time.Microsecond,
		RetryMaxBackoff: time.Microsecond,
		Exec: func(_ context.Context, _ Job) (sim.Result, error) {
			return sim.Result{}, fmt.Errorf("failure %d", attempts.Add(1))
		},
	})
	_, err := r.Get(context.Background(), Job{Kind: config.L1SRAM, Workload: "A"})
	if err == nil || err.Error() != "failure 3" {
		t.Fatalf("want the last attempt's error, got %v", err)
	}
	if attempts.Load() != 3 {
		t.Errorf("attempts = %d, want 1+2 retries", attempts.Load())
	}
}

func TestRetryDoesNotRetryContextErrors(t *testing.T) {
	var attempts atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	r := New(Config{
		Workers: 1,
		Retries: 5,
		Exec: func(ctx context.Context, _ Job) (sim.Result, error) {
			attempts.Add(1)
			cancel()
			return sim.Result{}, ctx.Err()
		},
	})
	_, err := r.Get(ctx, Job{Kind: config.L1SRAM, Workload: "A"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if attempts.Load() != 1 {
		t.Errorf("context errors must not be retried: %d attempts", attempts.Load())
	}
	if r.Retried() != 0 {
		t.Errorf("Retried = %d, want 0", r.Retried())
	}
}

func TestRetryBackoffAbortsOnCancel(t *testing.T) {
	var attempts atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	r := New(Config{
		Workers:      1,
		Retries:      5,
		RetryBackoff: time.Hour, // the wait must be cut short by cancellation
		Exec: func(_ context.Context, _ Job) (sim.Result, error) {
			attempts.Add(1)
			cancel() // fail, then cancel: the backoff select must wake up
			return sim.Result{}, errors.New("transient")
		},
	})
	done := make(chan error, 1)
	go func() {
		_, err := r.Get(ctx, Job{Kind: config.L1SRAM, Workload: "A"})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || err.Error() != "transient" {
			t.Fatalf("want the real failure, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("backoff wait ignored cancellation")
	}
	if attempts.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after cancel)", attempts.Load())
	}
}

func TestBackoffDelayDeterministicCappedJittered(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := backoffDelay(base, max, attempt, "Dy-FUSE/ATAX")
		d2 := backoffDelay(base, max, attempt, "Dy-FUSE/ATAX")
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v != %v", attempt, d1, d2)
		}
		// Jitter keeps the delay in [raw/2, raw).
		raw := base << (attempt - 1)
		if raw > max {
			raw = max
		}
		if d1 < raw/2 || d1 >= raw {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d1, raw/2, raw)
		}
	}
	if backoffDelay(base, max, 1, "a/b") == backoffDelay(base, max, 1, "c/d") {
		t.Errorf("different jobs should jitter differently")
	}
}
