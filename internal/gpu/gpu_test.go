package gpu

import (
	"testing"

	"fuse/internal/config"
	"fuse/internal/core"
	"fuse/internal/trace"
)

func newTestSM(kind config.L1DKind, warps int, budget uint64, workload string) *SM {
	prof, ok := trace.ProfileByName(workload)
	if !ok {
		panic("unknown workload " + workload)
	}
	l1d := core.MustNew(config.NewL1DConfig(kind))
	kernel := trace.NewKernel(prof, 0, 7)
	return NewSM(0, warps, budget, kernel, l1d)
}

func TestWarpStateMachine(t *testing.T) {
	w := &Warp{ID: 3, Budget: 2}
	if w.Done() || !w.ReadyAt(0) {
		t.Fatalf("fresh warp should be ready")
	}
	w.BlockFor(10, 5)
	if w.ReadyAt(12) {
		t.Errorf("warp should still be waiting at cycle 12")
	}
	if !w.ReadyAt(15) {
		t.Errorf("warp should wake at cycle 15")
	}
	w.BlockOnData(0x80)
	if w.ReadyAt(100) {
		t.Errorf("data-blocked warp should not wake on its own")
	}
	w.Wake()
	if !w.ReadyAt(100) || w.PendingBlock != 0 {
		t.Errorf("Wake should make the warp ready and clear the pending block")
	}
	w.RetireOne()
	w.RetireOne()
	if !w.Done() {
		t.Errorf("warp should be done after retiring its budget")
	}
	w.BlockFor(0, 0)
	if w.State != WarpReady {
		t.Errorf("BlockFor(0) should leave the warp ready")
	}
}

func TestWarpStateString(t *testing.T) {
	want := map[WarpState]string{
		WarpReady:       "ready",
		WarpWaiting:     "waiting",
		WarpWaitingData: "waiting-data",
		WarpDone:        "done",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("state %d = %q, want %q", s, s.String(), str)
		}
	}
	if WarpState(99).String() == "" {
		t.Errorf("unknown state should render")
	}
}

func TestSMRunsToCompletion(t *testing.T) {
	sm := newTestSM(config.L1SRAM, 8, 50, "2DCONV")
	if sm.Warps() != 8 {
		t.Fatalf("Warps() = %d", sm.Warps())
	}
	now := int64(0)
	for !sm.Done() && now < 200000 {
		sm.Cycle(now)
		// Service outgoing misses with a fixed 100-cycle latency.
		for {
			req, ok := sm.PopOutgoing()
			if !ok {
				break
			}
			if req.Kind.String() == "read" {
				sm.DeliverFill(req.BlockAddr(), now+100)
			}
		}
		now++
	}
	if !sm.Done() {
		t.Fatalf("SM did not finish within the cycle budget")
	}
	st := sm.Stats()
	if st.Issued != 8*50 {
		t.Errorf("Issued = %d, want %d", st.Issued, 8*50)
	}
	if st.IPC() <= 0 || st.IPC() > 1 {
		t.Errorf("IPC = %v, should be in (0,1] for a single-issue SM", st.IPC())
	}
	if st.MemInstructions == 0 {
		t.Errorf("workload should issue memory instructions")
	}
}

func TestSMStallsWhenL1DRejects(t *testing.T) {
	// An MSHR of size 1 with no merging forces stalls under a memory-heavy
	// workload when fills never come back.
	cfg := config.NewL1DConfig(config.L1SRAM)
	cfg.MSHREntries = 1
	cfg.MSHRMergeWidth = 0
	prof, _ := trace.ProfileByName("GEMM") // APKI 136: memory instruction every ~7 instructions
	sm := NewSM(0, 8, 100, trace.NewKernel(prof, 0, 3), core.MustNew(cfg))
	for now := int64(0); now < 2000; now++ {
		sm.Cycle(now)
		// Never deliver fills: warps pile up on the MSHR.
	}
	if sm.Stats().L1DStallCycles == 0 {
		t.Errorf("expected L1D stall cycles when the MSHR is saturated")
	}
	if sm.Done() {
		t.Errorf("SM cannot finish without fills")
	}
	if sm.OutstandingFills() == 0 {
		t.Errorf("there should be outstanding fills")
	}
}

func TestSMWakesOnlyOnFill(t *testing.T) {
	sm := newTestSM(config.L1SRAM, 1, 2000, "ATAX")
	var missBlock uint64
	now := int64(0)
	for now < 10000 {
		sm.Cycle(now)
		if req, ok := sm.PopOutgoing(); ok {
			missBlock = req.BlockAddr()
			break
		}
		now++
	}
	if missBlock == 0 && sm.OutstandingFills() == 0 {
		t.Fatalf("expected the single warp to miss eventually")
	}
	// With its only warp blocked, the SM cannot issue.
	before := sm.Stats().Issued
	for i := int64(1); i <= 50; i++ {
		sm.Cycle(now + i)
	}
	if sm.Stats().Issued != before {
		t.Errorf("blocked SM should not issue")
	}
	if sm.Stats().MemWaitCycles == 0 {
		t.Errorf("cycles blocked on a fill should count as memory wait")
	}
	woken := sm.DeliverFill(missBlock, now+60)
	if woken != 1 {
		t.Errorf("fill should wake the waiting warp, woke %d", woken)
	}
	sm.Cycle(now + 61)
	if sm.Stats().Issued == before {
		t.Errorf("SM should issue again after the fill")
	}
}

func TestSMNextWakeAt(t *testing.T) {
	sm := newTestSM(config.L1SRAM, 4, 10, "pathf")
	if sm.NextWakeAt() != -1 {
		t.Errorf("no timed waits yet, NextWakeAt should be -1")
	}
	sm.Cycle(0)
	// Force a timed wait directly.
	smWarp := &sm.warps[1]
	smWarp.BlockFor(5, 7)
	if got := sm.NextWakeAt(); got != 12 {
		t.Errorf("NextWakeAt = %d, want 12", got)
	}
	if !sm.HasReadyWarp(0) {
		t.Errorf("other warps should still be ready")
	}
}

func TestSMNextSelfEventAt(t *testing.T) {
	sm := newTestSM(config.L1SRAM, 2, 10, "pathf")
	// Fresh SM: every warp is ready, so the SM can progress right now.
	if got := sm.NextSelfEventAt(0); got != 0 {
		t.Errorf("NextSelfEventAt(0) = %d, want 0 (ready warps)", got)
	}
	// Warp 0 in a timed wait, warp 1 still ready: progress is still "now".
	sm.warps[0].BlockFor(0, 20)
	if got := sm.NextSelfEventAt(3); got != 3 {
		t.Errorf("NextSelfEventAt = %d, want 3 (warp 1 ready)", got)
	}
	// Both warps waiting: the earliest timed wake-up bounds the sleep.
	sm.warps[1].BlockFor(0, 8)
	if got := sm.NextSelfEventAt(3); got != 8 {
		t.Errorf("NextSelfEventAt = %d, want 8 (earliest WakeAt)", got)
	}
	// A stale timed wait (WakeAt already passed) means ready now.
	if got := sm.NextSelfEventAt(9); got != 9 {
		t.Errorf("NextSelfEventAt = %d, want 9 (stale wait is ready)", got)
	}
	// Both warps blocked on data: nothing to do until a fill arrives.
	sm.warps[0].BlockOnData(0x1000)
	sm.warps[1].BlockOnData(0x2000)
	if got := sm.NextSelfEventAt(10); got != -1 {
		t.Errorf("NextSelfEventAt = %d, want -1 (data-blocked SM sleeps)", got)
	}
}

func TestSMGreedyThenOldestPrefersSameWarp(t *testing.T) {
	sm := newTestSM(config.L1SRAM, 4, 1000, "pathf") // pathf is compute-bound: mostly ALU
	sm.Cycle(0)
	first := sm.greedyWarp
	sm.Cycle(1)
	if sm.greedyWarp != first {
		t.Errorf("greedy scheduler should stick with warp %d while it is ready", first)
	}
}

func TestSMReset(t *testing.T) {
	sm := newTestSM(config.DyFUSE, 4, 100, "ATAX")
	for now := int64(0); now < 500; now++ {
		sm.Cycle(now)
		for {
			req, ok := sm.PopOutgoing()
			if !ok {
				break
			}
			_ = req
		}
	}
	sm.Reset()
	if sm.Stats().Issued != 0 || sm.Stats().Cycles != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if sm.OutstandingFills() != 0 {
		t.Errorf("Reset should clear outstanding fills")
	}
	if sm.Done() {
		t.Errorf("warps should be rearmed after Reset")
	}
	if sm.L1D().Stats().Accesses != 0 {
		t.Errorf("Reset should reset the L1D")
	}
}

func TestNewSMClampsWarpCount(t *testing.T) {
	prof, _ := trace.ProfileByName("pathf")
	sm := NewSM(0, 0, 10, trace.NewKernel(prof, 0, 1), core.MustNew(config.NewL1DConfig(config.L1SRAM)))
	if sm.Warps() != 1 {
		t.Errorf("warp count should clamp to 1, got %d", sm.Warps())
	}
}

func TestSMStatsIPCZeroCycles(t *testing.T) {
	var st SMStats
	if st.IPC() != 0 {
		t.Errorf("IPC with zero cycles should be 0")
	}
}
