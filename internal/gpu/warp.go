// Package gpu models the streaming multiprocessors of the GPU: warps, the
// greedy-then-oldest warp scheduler, the single-ported load/store path into
// the L1D cache, and the per-SM performance accounting (issued instructions,
// stall breakdown). Together with the memory hierarchy packages it forms the
// cycle-level simulator that stands in for GPGPU-Sim in the paper's
// methodology.
package gpu

import "fmt"

// WarpState is the scheduling state of a warp.
type WarpState uint8

const (
	// WarpReady means the warp can issue an instruction this cycle.
	WarpReady WarpState = iota
	// WarpWaiting means the warp is blocked until its wake-up cycle (short
	// execution latency or an L1D hit in flight).
	WarpWaiting
	// WarpWaitingData means the warp is blocked on an outstanding memory
	// fill and will be woken explicitly when the fill arrives.
	WarpWaitingData
	// WarpDone means the warp has retired its entire instruction budget.
	WarpDone
)

// String implements fmt.Stringer.
func (s WarpState) String() string {
	switch s {
	case WarpReady:
		return "ready"
	case WarpWaiting:
		return "waiting"
	case WarpWaitingData:
		return "waiting-data"
	case WarpDone:
		return "done"
	default:
		return fmt.Sprintf("WarpState(%d)", uint8(s))
	}
}

// Warp is one 32-thread SIMT group resident on an SM.
//
//fuselint:smowned warps live in exactly one SM's warp table
type Warp struct {
	// ID is the warp index within its SM.
	ID int
	// State is the current scheduling state.
	State WarpState
	// WakeAt is the cycle at which a WarpWaiting warp becomes ready again.
	WakeAt int64
	// Issued counts the dynamic instructions the warp has issued.
	Issued uint64
	// Budget is the number of instructions the warp executes before it is
	// done.
	Budget uint64
	// PendingBlock is the block address the warp is waiting on when in
	// WarpWaitingData (zero otherwise).
	PendingBlock uint64
	// lastIssue is used by the greedy-then-oldest scheduler.
	lastIssue int64
}

// Done reports whether the warp has retired its budget.
func (w *Warp) Done() bool { return w.State == WarpDone }

// ReadyAt reports whether the warp can issue at the given cycle, promoting
// WarpWaiting warps whose wake-up time has passed.
func (w *Warp) ReadyAt(now int64) bool {
	if w.State == WarpWaiting && w.WakeAt <= now {
		w.State = WarpReady
	}
	return w.State == WarpReady
}

// BlockOnData parks the warp until the fill for the given block arrives.
func (w *Warp) BlockOnData(block uint64) {
	w.State = WarpWaitingData
	w.PendingBlock = block
}

// BlockFor parks the warp for a fixed number of cycles starting at now.
func (w *Warp) BlockFor(now int64, cycles int) {
	if cycles <= 0 {
		w.State = WarpReady
		return
	}
	w.State = WarpWaiting
	w.WakeAt = now + int64(cycles)
}

// Wake makes a data-blocked warp ready again (called on fill delivery).
func (w *Warp) Wake() {
	if w.State == WarpWaitingData {
		w.State = WarpReady
		w.PendingBlock = 0
	}
}

// RetireOne counts one issued instruction and marks the warp done when its
// budget is exhausted.
func (w *Warp) RetireOne() {
	w.Issued++
	if w.Issued >= w.Budget {
		w.State = WarpDone
	}
}
