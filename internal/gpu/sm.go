package gpu

import (
	"fuse/internal/core"
	"fuse/internal/mem"
	"fuse/internal/trace"
)

// SMStats is the per-SM performance accounting.
type SMStats struct {
	// Cycles is the number of cycles the SM has been clocked.
	Cycles uint64
	// Issued is the number of instructions issued.
	Issued uint64
	// MemInstructions is the number of memory instructions issued.
	//fuselint:internalstat exposed for workload sanity checks in tests; the figures use L1D.Accesses for memory volume
	MemInstructions uint64
	// L1DStallCycles counts cycles wasted because the L1D rejected the
	// memory instruction at the head of the selected warp.
	//fuselint:internalstat structural-stall cycles are reported via core.Stats.StructuralStalls; this per-SM mirror is a debugging aid
	L1DStallCycles uint64
	// NoReadyWarpCycles counts cycles in which no warp could issue.
	//fuselint:internalstat the figures consume the MemWaitCycles subset (Figure 1); the full no-ready count is a scheduler diagnostic
	NoReadyWarpCycles uint64
	// MemWaitCycles counts the no-ready-warp cycles in which at least one
	// warp was blocked on an outstanding off-chip fill; this is the
	// quantity behind the paper's Figure 1 off-chip overhead analysis.
	MemWaitCycles uint64
}

// IPC returns instructions per cycle.
func (s *SMStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// SM is one streaming multiprocessor: a set of resident warps, a shared
// instruction stream (any trace.Source), and a private L1D cache.
//
//fuselint:smowned the unit of worker-phase ownership: each SM is advanced by exactly one worker per epoch
type SM struct {
	// ID is the SM index within the GPU.
	ID int

	// warps is stored flat (struct-of-values, not per-warp heap objects):
	// the scheduler walks every warp each cycle, so one contiguous backing
	// array is both allocation-free and cache-friendly. All access is by
	// index/pointer because Warp methods mutate through their receiver.
	warps  []Warp
	source trace.Source
	l1d    core.L1D

	// pending holds, per warp, the memory instruction that was rejected by
	// the L1D (to be retried); pendingSet marks the slots that are live.
	// Storing values rather than pointers keeps the retry path off the heap.
	pending    []trace.Instruction
	pendingSet []bool

	// waiting maps an outstanding block address to the warps blocked on it.
	waiting map[uint64][]int
	// idFree recycles the waiter-ID slices that DeliverFill releases, so the
	// steady state of a memory-bound run allocates no per-miss slices.
	idFree [][]int

	// greedyWarp is the warp the GTO scheduler sticks with until it stalls.
	greedyWarp int

	nextReqID uint64
	stats     SMStats
}

// SMStorage is caller-provided backing storage for an SM's flat per-warp
// state; the simulator's arena carves these from slabs it reuses across runs.
// Slices with insufficient capacity (or a zero SMStorage) are allocated fresh.
type SMStorage struct {
	Warps      []Warp
	Pending    []trace.Instruction
	PendingSet []bool
}

// NewSM builds an SM with the given number of warps, each executing
// `instrPerWarp` instructions of the source stream, backed by the given L1D
// cache.
func NewSM(id, warps int, instrPerWarp uint64, source trace.Source, l1d core.L1D) *SM {
	return NewSMIn(id, warps, instrPerWarp, source, l1d, SMStorage{})
}

// NewSMIn is NewSM with caller-provided backing storage for the per-warp
// state (see SMStorage).
func NewSMIn(id, warps int, instrPerWarp uint64, source trace.Source, l1d core.L1D, st SMStorage) *SM {
	if warps <= 0 {
		warps = 1
	}
	if cap(st.Warps) < warps {
		st.Warps = make([]Warp, warps)
	}
	if cap(st.Pending) < warps {
		st.Pending = make([]trace.Instruction, warps)
	}
	if cap(st.PendingSet) < warps {
		st.PendingSet = make([]bool, warps)
	}
	sm := &SM{
		ID:         id,
		source:     source,
		l1d:        l1d,
		waiting:    make(map[uint64][]int),
		warps:      st.Warps[:warps],
		pending:    st.Pending[:warps],
		pendingSet: st.PendingSet[:warps],
	}
	for i := range sm.warps {
		sm.warps[i] = Warp{ID: i, Budget: instrPerWarp}
		sm.pending[i] = trace.Instruction{}
		sm.pendingSet[i] = false
	}
	return sm
}

// L1D exposes the SM's cache.
func (sm *SM) L1D() core.L1D { return sm.l1d }

// Stats exposes the SM's performance counters.
func (sm *SM) Stats() *SMStats { return &sm.stats }

// Warps returns the number of resident warps.
func (sm *SM) Warps() int { return len(sm.warps) }

// Done reports whether every warp has retired its budget.
func (sm *SM) Done() bool {
	for i := range sm.warps {
		if !sm.warps[i].Done() {
			return false
		}
	}
	return true
}

// OutstandingFills returns the number of distinct blocks the SM is waiting on.
func (sm *SM) OutstandingFills() int { return len(sm.waiting) }

// NextWakeAt returns the earliest cycle at which a currently waiting warp
// becomes ready on its own (ignoring data-blocked warps, which are woken by
// fills). It returns -1 when no warp is in the timed-wait state.
func (sm *SM) NextWakeAt() int64 {
	next := int64(-1)
	for i := range sm.warps {
		if w := &sm.warps[i]; w.State == WarpWaiting {
			if next < 0 || w.WakeAt < next {
				next = w.WakeAt
			}
		}
	}
	return next
}

// HasReadyWarp reports whether any warp can issue at the given cycle.
func (sm *SM) HasReadyWarp(now int64) bool {
	for i := range sm.warps {
		if w := &sm.warps[i]; !w.Done() && w.ReadyAt(now) {
			return true
		}
	}
	return false
}

// NextSelfEventAt returns the earliest cycle >= now at which the SM can make
// progress without external input: a warp that can issue (possibly right
// now), a timed warp wake-up, or the L1D's internal machinery retiring
// background work. It returns -1 when every live warp is blocked on an
// outstanding fill and the cache is idle — the SM then sleeps until the
// simulator delivers a fill. The sparse cycle engine schedules SM wake-ups
// from this bound; it must never be later than the first cycle at which
// cycling the SM would do real work, or skipped cycles would change timing.
func (sm *SM) NextSelfEventAt(now int64) int64 {
	next := int64(-1)
	for i := range sm.warps {
		w := &sm.warps[i]
		switch w.State {
		case WarpReady:
			return now
		case WarpWaiting:
			if w.WakeAt <= now {
				return now
			}
			if next < 0 || w.WakeAt < next {
				next = w.WakeAt
			}
		}
	}
	if l1 := sm.l1d.NextInternalEventAt(now); l1 >= 0 && (next < 0 || l1 < next) {
		next = l1
	}
	return next
}

// pickWarp implements the greedy-then-oldest scheduling policy: keep issuing
// from the current warp while it is ready, otherwise fall back to the oldest
// (lowest last-issue time) ready warp.
func (sm *SM) pickWarp(now int64) *Warp {
	if g := &sm.warps[sm.greedyWarp]; !g.Done() && g.ReadyAt(now) {
		return g
	}
	var best *Warp
	for i := range sm.warps {
		w := &sm.warps[i]
		if w.Done() || !w.ReadyAt(now) {
			continue
		}
		if best == nil || w.lastIssue < best.lastIssue {
			best = w
		}
	}
	if best != nil {
		sm.greedyWarp = best.ID
	}
	return best
}

// Cycle advances the SM by one cycle: the L1D retires background work, warps
// whose wake-up time passed become ready, and the scheduler issues at most
// one instruction.
//
//fuselint:noalloc
func (sm *SM) Cycle(now int64) {
	sm.stats.Cycles++
	sm.l1d.Tick(now)

	w := sm.pickWarp(now)
	if w == nil {
		sm.stats.NoReadyWarpCycles++
		if len(sm.waiting) > 0 {
			sm.stats.MemWaitCycles++
		}
		return
	}

	ins := sm.pending[w.ID]
	if !sm.pendingSet[w.ID] {
		ins = sm.source.Next(w.ID)
	}

	if !ins.IsMem {
		sm.pendingSet[w.ID] = false
		w.lastIssue = now
		w.RetireOne()
		sm.stats.Issued++
		return
	}

	req := mem.Request{
		Addr:  ins.Addr,
		PC:    ins.PC,
		Kind:  ins.Kind,
		Size:  mem.BlockSize,
		SM:    sm.ID,
		Warp:  w.ID,
		Issue: now,
		ID:    sm.nextReqID,
	}
	sm.nextReqID++
	res := sm.l1d.Access(req, now)
	switch res.Outcome {
	case core.OutcomeStall:
		// Keep the instruction pending; the warp retries next cycle. When
		// the rejection happens while fills are outstanding it is, in
		// effect, back-pressure from the off-chip memory system (MSHR or
		// queue full), so it also counts toward the off-chip wait time.
		sm.pending[w.ID] = ins
		sm.pendingSet[w.ID] = true
		sm.stats.L1DStallCycles++
		if len(sm.waiting) > 0 {
			sm.stats.MemWaitCycles++
		}
		return
	case core.OutcomeHit:
		sm.pendingSet[w.ID] = false
		w.lastIssue = now
		w.RetireOne()
		sm.stats.Issued++
		sm.stats.MemInstructions++
		if !w.Done() {
			w.BlockFor(now, res.Latency)
		}
	case core.OutcomeMiss, core.OutcomeMissMerged, core.OutcomeBypass:
		sm.pendingSet[w.ID] = false
		w.lastIssue = now
		w.RetireOne()
		sm.stats.Issued++
		sm.stats.MemInstructions++
		block := req.BlockAddr()
		if !w.Done() {
			w.BlockOnData(block)
			ids, ok := sm.waiting[block]
			if !ok && len(sm.idFree) > 0 {
				ids = sm.idFree[len(sm.idFree)-1]
				sm.idFree = sm.idFree[:len(sm.idFree)-1]
			}
			sm.waiting[block] = append(ids, w.ID)
		}
	}
}

// PopOutgoing drains one outgoing request (miss or write-back) from the L1D.
func (sm *SM) PopOutgoing() (mem.Request, bool) { return sm.l1d.PopOutgoing() }

// DeliverFill hands a returning block to the L1D and wakes every warp that
// was blocked on it.
func (sm *SM) DeliverFill(block uint64, now int64) int {
	woken := sm.l1d.Fill(block, now)
	ids, ok := sm.waiting[block]
	delete(sm.waiting, block)
	for _, id := range ids {
		sm.warps[id].Wake()
	}
	n := len(ids)
	if ok {
		sm.idFree = append(sm.idFree, ids[:0])
	}
	// Warps recorded in the MSHR (merged requests) may belong to this SM as
	// well; the waiting map already covers them, so the returned slice is
	// only used for its length (diagnostics).
	_ = woken
	return n
}

// Reset restores the SM to its initial state, keeping the kernel position.
func (sm *SM) Reset() {
	for i := range sm.warps {
		sm.warps[i] = Warp{ID: i, Budget: sm.warps[i].Budget}
		sm.pendingSet[i] = false
	}
	sm.waiting = make(map[uint64][]int)
	sm.idFree = nil
	sm.greedyWarp = 0
	sm.stats = SMStats{}
	sm.l1d.Reset()
}
