package energy

import (
	"strings"
	"testing"

	"fuse/internal/config"
	"fuse/internal/sim"
)

// fakeResult builds a plausible Result without running a simulation.
func fakeResult(kind config.L1DKind) sim.Result {
	return sim.Result{
		Workload:     "ATAX",
		L1DKind:      kind,
		Cycles:       100000,
		Instructions: 50000,
		SimulatedSMs: 2,
		L2Accesses:   4000,
		DRAMAccesses: 3000,
		NoCRequests:  4000,
		NoCResponses: 3800,
		SRAMReads:    6000,
		SRAMWrites:   2500,
		STTReads:     3000,
		STTWrites:    1200,
	}
}

func TestBreakdownComponentsPositive(t *testing.T) {
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	b := FromResult(fakeResult(config.DyFUSE), gpuCfg)
	if b.ComputeDynamic <= 0 || b.L1DDynamic <= 0 || b.L2Dynamic <= 0 || b.DRAMDynamic <= 0 || b.NoCDynamic <= 0 {
		t.Errorf("dynamic components should be positive: %+v", b)
	}
	if b.L1DLeakage <= 0 || b.L2Leakage <= 0 || b.DRAMLeakage <= 0 || b.ComputeLeak <= 0 {
		t.Errorf("leakage components should be positive: %+v", b)
	}
	if b.Total() <= 0 || b.L1DTotal() <= 0 || b.OffChip() <= 0 || b.OnChipCompute() <= 0 {
		t.Errorf("aggregates should be positive")
	}
	if f := b.OffChipFraction(); f <= 0 || f >= 1 {
		t.Errorf("off-chip fraction should be in (0,1), got %v", f)
	}
	if !strings.Contains(b.String(), "energy[") {
		t.Errorf("String should render a report")
	}
}

func TestSRAMLeakageDominatesSTTMRAM(t *testing.T) {
	// The same traffic on an SRAM-only L1D leaks far more than on the
	// hybrid: SRAM leakage is 58 mW vs ~3.4 mW for the FUSE banks.
	res := fakeResult(config.L1SRAM)
	sramCfg := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
	fuseCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	sram := FromResult(res, sramCfg)
	resFuse := fakeResult(config.DyFUSE)
	fuse := FromResult(resFuse, fuseCfg)
	if sram.L1DLeakage <= fuse.L1DLeakage {
		t.Errorf("SRAM L1D should leak more than the hybrid: %v vs %v", sram.L1DLeakage, fuse.L1DLeakage)
	}
}

func TestSTTWritesAreExpensive(t *testing.T) {
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	few := fakeResult(config.DyFUSE)
	many := fakeResult(config.DyFUSE)
	many.STTWrites = few.STTWrites * 20
	b1 := FromResult(few, gpuCfg)
	b2 := FromResult(many, gpuCfg)
	if b2.L1DDynamic <= b1.L1DDynamic {
		t.Errorf("more STT-MRAM writes must cost more dynamic energy")
	}
}

func TestLongerRunsLeakMore(t *testing.T) {
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
	short := fakeResult(config.L1SRAM)
	long := fakeResult(config.L1SRAM)
	long.Cycles = short.Cycles * 10
	b1 := FromResult(short, gpuCfg)
	b2 := FromResult(long, gpuCfg)
	if b2.L1DLeakage <= b1.L1DLeakage || b2.DRAMLeakage <= b1.DRAMLeakage {
		t.Errorf("leakage should grow with execution time")
	}
}

func TestZeroBreakdown(t *testing.T) {
	var b Breakdown
	if b.Total() != 0 || b.OffChipFraction() != 0 {
		t.Errorf("zero breakdown should report zeros")
	}
}

func TestLeakageHelperEdgeCases(t *testing.T) {
	if leakageNJ(10, 0, 1400) != 0 {
		t.Errorf("zero cycles should leak nothing")
	}
	if leakageNJ(10, 100, 0) != 0 {
		t.Errorf("zero clock should leak nothing")
	}
}

func TestTechnologyComparison(t *testing.T) {
	cmp := TechnologyComparison(64, 1_400_000, 1400) // 1 ms at 1.4 GHz
	sram, stt, edram := cmp["SRAM"], cmp["STT-MRAM"], cmp["eDRAM"]
	if sram <= 0 || stt <= 0 || edram <= 0 {
		t.Fatalf("all technologies should have positive standby energy: %v", cmp)
	}
	if stt >= sram {
		t.Errorf("STT-MRAM standby energy should be far below SRAM: %v vs %v", stt, sram)
	}
	if stt >= edram {
		t.Errorf("STT-MRAM should also beat eDRAM (which must refresh): %v vs %v", stt, edram)
	}
}

func TestEnergyFromRealRun(t *testing.T) {
	// Integration: an actual small simulation produces a consistent
	// breakdown, and the SRAM baseline spends most of its energy off-chip
	// for a memory-bound workload (Figure 1b).
	opts := sim.Options{InstructionsPerWarp: 200, Seed: 3, SMOverride: 2}
	res, err := sim.RunWorkload(config.L1SRAM, "ATAX", opts)
	if err != nil {
		t.Fatal(err)
	}
	b := FromResult(res, config.FermiGPU(config.NewL1DConfig(config.L1SRAM)))
	if b.Total() <= 0 {
		t.Fatalf("total energy should be positive")
	}
	if b.OffChipFraction() < 0.3 {
		t.Errorf("memory-bound baseline should spend a large energy fraction off-chip, got %.2f", b.OffChipFraction())
	}
}
