// Package energy implements the GPUWattch/CACTI/NVSim-style energy
// accounting the paper uses for Figure 1b (whole-GPU energy decomposition)
// and Figure 17 (L1D energy). Dynamic energy is charged per component access
// using the per-access energies of Table I; leakage is charged per cycle from
// the per-bank leakage powers.
package energy

import (
	"fmt"
	"strings"

	"fuse/internal/config"
	"fuse/internal/memtech"
	"fuse/internal/sim"
)

// Per-access dynamic energies (nJ) of the non-L1D components. These follow
// the GPUWattch defaults for a Fermi-class GPU; only their relative
// magnitudes matter for the paper's decomposition figures.
const (
	// ComputeEnergyPerInstr is the SM core pipeline energy per warp
	// instruction.
	ComputeEnergyPerInstr = 0.45
	// L2EnergyPerAccess is the energy of one L2 bank access (ECC included).
	L2EnergyPerAccess = 0.9
	// DRAMEnergyPerAccess is the energy of one 128-byte GDDR5 access.
	DRAMEnergyPerAccess = 8.5
	// NoCEnergyPerPacket is the router+link energy of one packet traversal.
	NoCEnergyPerPacket = 0.35
	// L2LeakageMW and other leakage constants are whole-structure leakage
	// powers in milliwatts.
	L2LeakageMW   = 120.0
	DRAMLeakageMW = 250.0
	SMLeakageMW   = 35.0 // per SM, excluding the L1D banks
)

// Breakdown is the energy of one simulation run split by component. All
// values are in nano-joules.
type Breakdown struct {
	Workload string
	Kind     config.L1DKind

	// Dynamic energy per component.
	ComputeDynamic float64
	L1DDynamic     float64
	L2Dynamic      float64
	DRAMDynamic    float64
	NoCDynamic     float64

	// Leakage energy per component.
	L1DLeakage   float64
	L2Leakage    float64
	DRAMLeakage  float64
	ComputeLeak  float64
	CyclesSimmed int64
}

// L1DTotal returns the total L1D energy (dynamic + leakage), the quantity of
// Figure 17.
func (b Breakdown) L1DTotal() float64 { return b.L1DDynamic + b.L1DLeakage }

// OnChipCompute returns the SM computation energy (dynamic + leakage).
func (b Breakdown) OnChipCompute() float64 { return b.ComputeDynamic + b.ComputeLeak }

// OffChip returns the energy of everything behind the L1D: interconnect, L2
// and DRAM (the "off-chip" service energy of Figure 1b).
func (b Breakdown) OffChip() float64 {
	return b.NoCDynamic + b.L2Dynamic + b.L2Leakage + b.DRAMDynamic + b.DRAMLeakage
}

// Total returns the total GPU energy.
func (b Breakdown) Total() float64 {
	return b.OnChipCompute() + b.L1DTotal() + b.OffChip()
}

// OffChipFraction returns the fraction of total energy spent on off-chip
// service (Figure 1b's headline ~71%).
func (b Breakdown) OffChipFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.OffChip() / t
}

// String renders the breakdown as a short report.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "energy[%s/%s] total=%.1f nJ\n", b.Kind, b.Workload, b.Total())
	fmt.Fprintf(&sb, "  compute=%.1f L1D=%.1f (dyn %.1f + leak %.1f)\n",
		b.OnChipCompute(), b.L1DTotal(), b.L1DDynamic, b.L1DLeakage)
	fmt.Fprintf(&sb, "  NoC=%.1f L2=%.1f DRAM=%.1f off-chip fraction=%.2f\n",
		b.NoCDynamic, b.L2Dynamic+b.L2Leakage, b.DRAMDynamic+b.DRAMLeakage, b.OffChipFraction())
	return sb.String()
}

// leakageNJ converts a leakage power in mW over `cycles` cycles of a clock in
// MHz to nano-joules.
func leakageNJ(mw float64, cycles int64, clockMHz float64) float64 {
	if clockMHz <= 0 || cycles <= 0 {
		return 0
	}
	seconds := float64(cycles) / (clockMHz * 1e6)
	return mw * seconds * 1e6
}

// FromResult derives the energy breakdown of a finished simulation run. The
// L1D configuration supplies the bank technology parameters; the GPU
// configuration supplies the clock and SM count.
func FromResult(res sim.Result, gpuCfg config.GPUConfig) Breakdown {
	l1d := gpuCfg.L1D
	b := Breakdown{
		Workload:     res.Workload,
		Kind:         res.L1DKind,
		CyclesSimmed: res.Cycles,
	}

	// Dynamic energy.
	b.ComputeDynamic = float64(res.Instructions) * ComputeEnergyPerInstr
	b.L1DDynamic = float64(res.SRAMReads)*l1d.SRAMTech.ReadEnergy +
		float64(res.SRAMWrites)*l1d.SRAMTech.WriteEnergy +
		float64(res.STTReads)*l1d.STTTech.ReadEnergy +
		float64(res.STTWrites)*l1d.STTTech.WriteEnergy
	b.L2Dynamic = float64(res.L2Accesses) * L2EnergyPerAccess
	b.DRAMDynamic = float64(res.DRAMAccesses) * DRAMEnergyPerAccess
	b.NoCDynamic = float64(res.NoCRequests+res.NoCResponses) * NoCEnergyPerPacket

	// Leakage: per-SM L1D banks and core, plus the shared L2 and DRAM.
	sms := float64(res.SimulatedSMs)
	l1dLeakMW := 0.0
	if l1d.SRAMKB > 0 {
		l1dLeakMW += l1d.SRAMTech.LeakagePower
	}
	if l1d.STTMRAMKB > 0 {
		l1dLeakMW += l1d.STTTech.LeakagePower
	}
	b.L1DLeakage = leakageNJ(l1dLeakMW*sms, res.Cycles, gpuCfg.CoreClockMHz)
	b.ComputeLeak = leakageNJ(SMLeakageMW*sms, res.Cycles, gpuCfg.CoreClockMHz)
	// The shared structures are scaled by the fraction of the GPU simulated
	// so that reduced-scale experiment runs stay comparable.
	scale := sms / float64(gpuCfg.SMs)
	if scale > 1 {
		scale = 1
	}
	b.L2Leakage = leakageNJ(L2LeakageMW*scale, res.Cycles, gpuCfg.CoreClockMHz)
	b.DRAMLeakage = leakageNJ(DRAMLeakageMW*scale, res.Cycles, gpuCfg.CoreClockMHz)
	return b
}

// TechnologyComparison compares the L1D leakage of SRAM, STT-MRAM and eDRAM
// organisations of the same capacity; it backs the Discussion-section claim
// that STT-MRAM is the preferable high-density technology.
func TechnologyComparison(capacityKB int, cycles int64, clockMHz float64) map[string]float64 {
	out := make(map[string]float64, 3)
	for _, p := range []memtech.Params{
		memtech.SRAMParams(capacityKB),
		memtech.STTMRAMParams(capacityKB),
		memtech.EDRAMParams(capacityKB),
	} {
		e := leakageNJ(p.LeakagePower, cycles, clockMHz)
		if p.RefreshIntervalUS > 0 && clockMHz > 0 {
			// Refresh energy: one full-array rewrite per refresh interval.
			seconds := float64(cycles) / (clockMHz * 1e6)
			refreshes := seconds / (p.RefreshIntervalUS * 1e-6)
			blocks := float64(capacityKB * 1024 / 128)
			e += refreshes * blocks * p.WriteEnergy
		}
		out[p.Tech.String()] = e
	}
	return out
}
