// Package dram models the off-chip GDDR5 global memory of the GPU: multiple
// channels, each with several banks, per-bank row buffers and the
// tCL/tRCD/tRP/tRAS timing constraints that make a row miss so much more
// expensive than a row hit. Requests are scheduled per channel with a
// simplified FR-FCFS policy (row hits are served from the queue ahead of row
// misses), which is how real GPU memory controllers coalesce and reorder
// traffic (Section II-A2).
package dram

import (
	"fmt"

	"fuse/internal/mem"
	"fuse/internal/stats"
)

// Config describes the DRAM subsystem. All timings are expressed in core
// cycles for simplicity (the paper's Table I lists them in DRAM cycles; the
// ratio is folded into the values).
type Config struct {
	// Channels is the number of independent GDDR5 channels.
	Channels int
	// BanksPerChannel is the number of DRAM banks per channel.
	BanksPerChannel int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// TCL is the CAS latency (cycles from column command to data).
	TCL int
	// TRCD is the RAS-to-CAS delay (activate to column command).
	TRCD int
	// TRP is the precharge latency.
	TRP int
	// TRAS is the minimum activate-to-precharge time.
	TRAS int
	// BurstCycles is the data transfer time of one 128-byte block.
	BurstCycles int
	// QueueDepth is the per-channel request queue depth; when the queue is
	// full the memory controller back-pressures the L2.
	QueueDepth int
}

// withDefaults fills zero fields with the paper's Table I values.
func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 6
	}
	if c.BanksPerChannel <= 0 {
		c.BanksPerChannel = 8
	}
	if c.RowBytes <= 0 {
		c.RowBytes = 2048
	}
	if c.TCL <= 0 {
		c.TCL = 12
	}
	if c.TRCD <= 0 {
		c.TRCD = 12
	}
	if c.TRP <= 0 {
		c.TRP = 12
	}
	if c.TRAS <= 0 {
		c.TRAS = 28
	}
	if c.BurstCycles <= 0 {
		c.BurstCycles = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	return c
}

// bankState tracks one DRAM bank: the currently open row and when the bank
// finishes its current operation.
type bankState struct {
	openRow    int64
	hasOpenRow bool
	readyAt    int64
	lastActAt  int64
}

// channelState tracks one channel: its banks and the occupancy of the shared
// data bus.
type channelState struct {
	banks       []bankState
	busFreeAt   int64
	queuedUntil []int64 // completion times of in-flight requests (for queue-depth modelling)
}

// DRAM is the whole off-chip memory.
type DRAM struct {
	cfg      Config
	channels []channelState

	accesses  stats.Counter
	rowHits   stats.Counter
	rowMisses stats.Counter
	reads     stats.Counter
	writes    stats.Counter
	totalLat  stats.Counter
	stallsQ   stats.Counter
}

// New builds a DRAM model (zero-value fields take the paper's defaults).
func New(cfg Config) *DRAM {
	cfg = cfg.withDefaults()
	d := &DRAM{cfg: cfg}
	d.channels = make([]channelState, cfg.Channels)
	for i := range d.channels {
		d.channels[i].banks = make([]bankState, cfg.BanksPerChannel)
	}
	return d
}

// Config returns the effective configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Channels returns the number of channels.
func (d *DRAM) Channels() int { return d.cfg.Channels }

// ChannelFor maps a block address to its channel (low-order interleaving
// above the block offset spreads consecutive blocks across channels).
func (d *DRAM) ChannelFor(addr uint64) int {
	return int(mem.BlockIndex(addr)) % d.cfg.Channels
}

// bankFor maps a block address to a bank within its channel.
func (d *DRAM) bankFor(addr uint64) int {
	return int(mem.BlockIndex(addr)/uint64(d.cfg.Channels)) % d.cfg.BanksPerChannel
}

// rowFor returns the row number the address falls in.
func (d *DRAM) rowFor(addr uint64) int64 {
	blocksPerRow := uint64(d.cfg.RowBytes / mem.BlockSize)
	if blocksPerRow == 0 {
		blocksPerRow = 1
	}
	return int64(mem.BlockIndex(addr) / uint64(d.cfg.Channels) / uint64(d.cfg.BanksPerChannel) / blocksPerRow)
}

// pruneQueue drops completed entries from the channel's in-flight list.
func (ch *channelState) pruneQueue(now int64) {
	kept := ch.queuedUntil[:0]
	for _, t := range ch.queuedUntil {
		if t > now {
			kept = append(kept, t)
		}
	}
	ch.queuedUntil = kept
}

// Access issues a read or write of one 128-byte block at cycle `now` and
// returns the cycle at which the data transfer completes. Queue back-pressure
// is modelled by delaying the request start until a queue slot frees.
func (d *DRAM) Access(addr uint64, write bool, now int64) int64 {
	d.accesses.Inc()
	if write {
		d.writes.Inc()
	} else {
		d.reads.Inc()
	}
	chIdx := d.ChannelFor(addr)
	ch := &d.channels[chIdx]
	bank := &ch.banks[d.bankFor(addr)]
	row := d.rowFor(addr)

	start := now
	ch.pruneQueue(now)
	if len(ch.queuedUntil) >= d.cfg.QueueDepth {
		// Queue full: wait for the earliest in-flight request to finish.
		earliest := ch.queuedUntil[0]
		for _, t := range ch.queuedUntil {
			if t < earliest {
				earliest = t
			}
		}
		if earliest > start {
			start = earliest
			d.stallsQ.Inc()
		}
		ch.pruneQueue(start)
	}
	if bank.readyAt > start {
		start = bank.readyAt
	}

	var dataAt int64
	if bank.hasOpenRow && bank.openRow == row {
		// Row hit (FR-FCFS prioritises these, which in this model simply
		// means they are not charged activation latency).
		d.rowHits.Inc()
		dataAt = start + int64(d.cfg.TCL)
	} else {
		d.rowMisses.Inc()
		precharge := int64(0)
		if bank.hasOpenRow {
			// Respect tRAS: the previous activation must have been open
			// long enough before we can precharge.
			minPre := bank.lastActAt + int64(d.cfg.TRAS)
			if minPre > start {
				start = minPre
			}
			precharge = int64(d.cfg.TRP)
		}
		actAt := start + precharge
		bank.lastActAt = actAt
		dataAt = actAt + int64(d.cfg.TRCD) + int64(d.cfg.TCL)
		bank.hasOpenRow = true
		bank.openRow = row
	}

	// The data burst occupies the channel's shared bus.
	burstStart := dataAt
	if ch.busFreeAt > burstStart {
		burstStart = ch.busFreeAt
	}
	done := burstStart + int64(d.cfg.BurstCycles)
	ch.busFreeAt = done
	bank.readyAt = done

	ch.queuedUntil = append(ch.queuedUntil, done)
	d.totalLat.Add(uint64(done - now))
	return done
}

// Accesses returns the number of requests served.
func (d *DRAM) Accesses() uint64 { return d.accesses.Value() }

// Reads returns the number of read requests served.
func (d *DRAM) Reads() uint64 { return d.reads.Value() }

// Writes returns the number of write requests served.
func (d *DRAM) Writes() uint64 { return d.writes.Value() }

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	total := d.rowHits.Value() + d.rowMisses.Value()
	if total == 0 {
		return 0
	}
	return float64(d.rowHits.Value()) / float64(total)
}

// AverageLatency returns the mean access latency in cycles.
func (d *DRAM) AverageLatency() float64 {
	if d.accesses.Value() == 0 {
		return 0
	}
	return float64(d.totalLat.Value()) / float64(d.accesses.Value())
}

// QueueStalls returns the number of requests delayed by a full channel queue.
func (d *DRAM) QueueStalls() uint64 { return d.stallsQ.Value() }

// Reset clears all channel, bank and statistic state.
func (d *DRAM) Reset() {
	for i := range d.channels {
		for b := range d.channels[i].banks {
			d.channels[i].banks[b] = bankState{}
		}
		d.channels[i].busFreeAt = 0
		d.channels[i].queuedUntil = nil
	}
	d.accesses.Reset()
	d.rowHits.Reset()
	d.rowMisses.Reset()
	d.reads.Reset()
	d.writes.Reset()
	d.totalLat.Reset()
	d.stallsQ.Reset()
}

// String describes the configuration.
func (d *DRAM) String() string {
	return fmt.Sprintf("GDDR5{%d channels x %d banks, tCL=%d tRCD=%d tRP=%d tRAS=%d}",
		d.cfg.Channels, d.cfg.BanksPerChannel, d.cfg.TCL, d.cfg.TRCD, d.cfg.TRP, d.cfg.TRAS)
}
