// Package dram models the off-chip global memory of the GPU as an
// event-driven memory controller: multiple channels, each with several banks,
// per-bank row buffers and the tCL/tRCD/tRP/tRAS timing constraints that make
// a row miss so much more expensive than a row hit. Requests are submitted
// into bounded per-channel queues and scheduled with FR-FCFS — at every
// scheduling event, queued row hits are issued ahead of older row misses —
// which is how real GPU memory controllers coalesce and reorder traffic
// (Section II-A2). The technology behind the controller is a pluggable
// Backend (GDDR5, GDDR5X, HBM2, an STT-MRAM main-memory point); the
// controller charges the backend's per-command energy as it schedules.
//
// The controller is driven by its owner's event loop: Submit enqueues,
// NextEventAt reports when the controller next has work, and Advance issues
// every due command and returns the completed transfers. The synchronous
// Access helper drives a standalone controller to completion for one request
// (unit tests and small tools); it must not be mixed with Submit/Advance
// callers on the same controller.
package dram

import (
	"fmt"
	"slices"

	"fuse/internal/mem"
	"fuse/internal/stats"
)

// Config describes the controller geometry and (for the GDDR5 baseline
// backend) the timing overrides. All timings are expressed in core cycles
// for simplicity (the paper's Table I lists them in DRAM cycles; the ratio
// is folded into the values).
type Config struct {
	// Channels is the number of independent memory channels.
	Channels int
	// BanksPerChannel is the number of banks per channel.
	BanksPerChannel int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// TCL is the CAS latency (cycles from column command to data).
	TCL int
	// TRCD is the RAS-to-CAS delay (activate to column command).
	TRCD int
	// TRP is the precharge latency.
	TRP int
	// TRAS is the minimum activate-to-precharge time.
	TRAS int
	// BurstCycles is the data transfer time of one 128-byte block.
	BurstCycles int
	// QueueDepth bounds the per-channel requests outstanding (queued plus
	// in flight); when the bound is reached Submit rejects and the caller
	// must hold the request (back-pressure).
	QueueDepth int
	// Backend selects the memory technology ("" = GDDR5). See Backends().
	Backend string
}

// withDefaults fills zero geometry fields with the paper's Table I values.
// Timing fields are resolved by the backend (the GDDR5 backend applies the
// Table I timings to zero fields; other backends own their timing).
func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 6
	}
	if c.BanksPerChannel <= 0 {
		c.BanksPerChannel = 8
	}
	if c.RowBytes <= 0 {
		c.RowBytes = 2048
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	return c
}

// request is one queued (not yet issued) access.
type request struct {
	seq    uint64
	addr   uint64
	row    int64
	bank   int
	write  bool
	arrive int64
}

// flight is one issued access awaiting its data burst completion.
type flight struct {
	req  request
	done int64
}

// bankState tracks one bank: the currently open row and when the bank
// finishes its current operation.
type bankState struct {
	openRow    int64
	hasOpenRow bool
	readyAt    int64
	lastActAt  int64
}

// channelState tracks one channel: the FR-FCFS scheduling pool, the issued
// in-flight requests and the occupancy of the shared data bus.
type channelState struct {
	queue     []request
	flights   []flight
	banks     []bankState
	busFreeAt int64
}

// Completion reports one finished transfer: the block whose data burst
// completed on the channel bus at cycle Done. Seq matches the value returned
// by Submit.
type Completion struct {
	Seq   uint64
	Addr  uint64
	Write bool
	Done  int64
}

// DRAM is the whole off-chip memory: the controller plus its backend.
type DRAM struct {
	cfg      Config
	backend  Backend
	timing   Timing
	energy   Energy
	channels []channelState
	nextSeq  uint64
	// compBuf is the reusable backing array of Advance's completion slice.
	compBuf []Completion

	accesses  stats.Counter
	rowHits   stats.Counter
	rowMisses stats.Counter
	reads     stats.Counter
	writes    stats.Counter
	totalLat  stats.Counter
	stallsQ   stats.Counter
	energyNJ  float64
}

// resolve applies the geometry defaults and resolves the backend and its
// timing, returning all three plus the effective configuration.
func (c Config) resolve() (Config, Backend, Timing, error) {
	c = c.withDefaults()
	be, err := BackendByName(c.Backend)
	if err != nil {
		return Config{}, nil, Timing{}, err
	}
	t := be.Timing(c)
	c.Backend = be.Name()
	c.TCL, c.TRCD, c.TRP, c.TRAS, c.BurstCycles = t.TCL, t.TRCD, t.TRP, t.TRAS, t.BurstCycles
	return c, be, t, nil
}

// Resolve returns the effective configuration New would run with: geometry
// defaults applied and timing resolved through the backend. Two Configs
// that Resolve identically describe the identical controller — the result
// store canonicalises its keys with this.
func (c Config) Resolve() (Config, error) {
	resolved, _, _, err := c.resolve()
	return resolved, err
}

// New builds a memory controller (zero-value geometry fields take the
// paper's defaults). It panics on an unknown backend name; callers that
// accept user input validate with BackendByName first.
func New(cfg Config) *DRAM {
	resolved, be, timing, err := cfg.resolve()
	if err != nil {
		panic(err.Error())
	}
	d := &DRAM{cfg: resolved, backend: be, timing: timing, energy: be.Energy()}
	d.channels = make([]channelState, resolved.Channels)
	for i := range d.channels {
		d.channels[i].banks = make([]bankState, resolved.BanksPerChannel)
	}
	return d
}

// Config returns the effective configuration (timing resolved through the
// backend).
func (d *DRAM) Config() Config { return d.cfg }

// BackendName returns the name of the technology behind the controller.
func (d *DRAM) BackendName() string { return d.backend.Name() }

// Channels returns the number of channels.
func (d *DRAM) Channels() int { return d.cfg.Channels }

// ChannelFor maps a block address to its channel (low-order interleaving
// above the block offset spreads consecutive blocks across channels).
func (d *DRAM) ChannelFor(addr uint64) int {
	return int(mem.BlockIndex(addr)) % d.cfg.Channels
}

// bankFor maps a block address to a bank within its channel.
func (d *DRAM) bankFor(addr uint64) int {
	return int(mem.BlockIndex(addr)/uint64(d.cfg.Channels)) % d.cfg.BanksPerChannel
}

// rowFor returns the row number the address falls in.
func (d *DRAM) rowFor(addr uint64) int64 {
	blocksPerRow := uint64(d.cfg.RowBytes / mem.BlockSize)
	if blocksPerRow == 0 {
		blocksPerRow = 1
	}
	return int64(mem.BlockIndex(addr) / uint64(d.cfg.Channels) / uint64(d.cfg.BanksPerChannel) / blocksPerRow)
}

// Submit enqueues a read or write of one 128-byte block arriving at the
// controller at cycle `at`. It returns the request's sequence number and
// whether the channel accepted it; a false result means the channel queue is
// full and the caller must retry after the next completion (back-pressure).
// Each first-attempt rejection counts one queue stall; use Resubmit for
// retries of an already-counted request.
func (d *DRAM) Submit(addr uint64, write bool, at int64) (uint64, bool) {
	seq, ok := d.Resubmit(addr, write, at)
	if !ok {
		d.stallsQ.Inc()
	}
	return seq, ok
}

// Resubmit is Submit for a request whose earlier rejection was already
// counted: a further rejection does not inflate the queue-stall statistic
// (the L2 re-attempts its held-back work at every controller event).
func (d *DRAM) Resubmit(addr uint64, write bool, at int64) (uint64, bool) {
	ch := &d.channels[d.ChannelFor(addr)]
	if len(ch.queue)+len(ch.flights) >= d.cfg.QueueDepth {
		return 0, false
	}
	d.nextSeq++
	r := request{
		seq:    d.nextSeq,
		addr:   addr,
		row:    d.rowFor(addr),
		bank:   d.bankFor(addr),
		write:  write,
		arrive: at,
	}
	ch.queue = append(ch.queue, r)
	d.accesses.Inc()
	if write {
		d.writes.Inc()
	} else {
		d.reads.Inc()
	}
	return r.seq, true
}

// Pending returns the number of requests queued or in flight.
func (d *DRAM) Pending() int {
	n := 0
	for i := range d.channels {
		n += len(d.channels[i].queue) + len(d.channels[i].flights)
	}
	return n
}

// issueReadyAt returns the earliest cycle the request's row/bank constraints
// allow its commands to start: its arrival, the bank finishing its current
// operation, and — when a precharge is needed — tRAS since the last
// activation.
func (d *DRAM) issueReadyAt(ch *channelState, r request) int64 {
	b := &ch.banks[r.bank]
	at := r.arrive
	if b.readyAt > at {
		at = b.readyAt
	}
	if b.hasOpenRow && b.openRow != r.row {
		if minPre := b.lastActAt + int64(d.timing.TRAS); minPre > at {
			at = minPre
		}
	}
	return at
}

// NextEventAt returns the earliest cycle at which the controller can make
// progress: a queued request becoming issuable or an in-flight burst
// completing. It returns -1 when the controller is idle.
func (d *DRAM) NextEventAt() int64 {
	next := int64(-1)
	consider := func(t int64) {
		if next < 0 || t < next {
			next = t
		}
	}
	for i := range d.channels {
		ch := &d.channels[i]
		for _, f := range ch.flights {
			consider(f.done)
		}
		for _, r := range ch.queue {
			consider(d.issueReadyAt(ch, r))
		}
	}
	return next
}

// pick selects the next request to issue on the channel at cycle now using
// FR-FCFS: among the requests whose constraints are satisfied, the oldest
// row hit wins; with no issuable row hit, the oldest issuable request wins.
// Age ordering comes from the queue itself — it is append-only with
// order-preserving deletion, so earlier indices are always older requests.
// It returns -1 when nothing can issue at `now`.
func (d *DRAM) pick(ch *channelState, now int64) int {
	best, bestHit := -1, false
	for i, r := range ch.queue {
		if d.issueReadyAt(ch, r) > now {
			continue
		}
		b := &ch.banks[r.bank]
		hit := b.hasOpenRow && b.openRow == r.row
		if best < 0 || (hit && !bestHit) {
			best, bestHit = i, hit
		}
	}
	return best
}

// service issues one request at cycle now, updating bank, bus and energy
// state, and returns its completion time.
func (d *DRAM) service(ch *channelState, r request, now int64) int64 {
	b := &ch.banks[r.bank]
	var dataAt int64
	if b.hasOpenRow && b.openRow == r.row {
		d.rowHits.Inc()
		dataAt = now + int64(d.timing.TCL)
	} else {
		d.rowMisses.Inc()
		start := now
		if b.hasOpenRow {
			// tRAS was respected by issueReadyAt; pay the precharge.
			start += int64(d.timing.TRP)
		}
		b.lastActAt = start
		b.hasOpenRow = true
		b.openRow = r.row
		dataAt = start + int64(d.timing.TRCD) + int64(d.timing.TCL)
		d.energyNJ += d.energy.ActivateNJ
	}

	// The data burst occupies the channel's shared bus; STT-MRAM-class
	// backends pay the write-path gap on top of the burst.
	burst := int64(d.timing.BurstCycles)
	if r.write {
		burst += int64(d.timing.WriteBurstExtra)
		d.energyNJ += d.energy.WriteNJ
	} else {
		d.energyNJ += d.energy.ReadNJ
	}
	burstStart := dataAt
	if ch.busFreeAt > burstStart {
		burstStart = ch.busFreeAt
	}
	done := burstStart + burst
	ch.busFreeAt = done
	b.readyAt = done
	d.totalLat.Add(uint64(done - r.arrive))
	return done
}

// Advance runs the controller up to cycle now: it retires every burst that
// completed at or before now and issues every request whose constraints are
// satisfied, in FR-FCFS order. Completions are returned sorted by completion
// time (ties by submission order); the returned slice is valid only until
// the next Advance call. Callers re-arm their event loop from NextEventAt
// afterwards.
func (d *DRAM) Advance(now int64) []Completion {
	out := d.compBuf[:0]
	defer func() { d.compBuf = out[:0] }()
	for i := range d.channels {
		ch := &d.channels[i]
		kept := ch.flights[:0]
		for _, f := range ch.flights {
			if f.done <= now {
				out = append(out, Completion{Seq: f.req.seq, Addr: f.req.addr, Write: f.req.write, Done: f.done})
			} else {
				kept = append(kept, f)
			}
		}
		ch.flights = kept
		for {
			idx := d.pick(ch, now)
			if idx < 0 {
				break
			}
			r := ch.queue[idx]
			ch.queue = slices.Delete(ch.queue, idx, idx+1)
			ch.flights = append(ch.flights, flight{req: r, done: d.service(ch, r, now)})
		}
	}
	slices.SortFunc(out, func(a, b Completion) int {
		if a.Done != b.Done {
			return int(a.Done - b.Done)
		}
		return int(a.Seq - b.Seq)
	})
	return out
}

// Access synchronously drives one request to completion and returns the
// cycle at which its data transfer completes. It is a standalone driver for
// unit tests and small tools; do not mix it with Submit/Advance callers on
// the same controller, because it discards the completions of other
// outstanding requests.
func (d *DRAM) Access(addr uint64, write bool, now int64) int64 {
	at := now
	seq, ok := d.Submit(addr, write, at)
	for !ok {
		next := d.NextEventAt()
		if next <= at {
			next = at + 1
		}
		d.Advance(next)
		at = next
		seq, ok = d.Resubmit(addr, write, at)
	}
	for {
		next := d.NextEventAt()
		if next < 0 {
			panic("dram: submitted request produced no event")
		}
		if next < at {
			next = at
		}
		for _, c := range d.Advance(next) {
			if c.Seq == seq {
				return c.Done
			}
		}
		at = next
	}
}

// Accesses returns the number of requests accepted.
func (d *DRAM) Accesses() uint64 { return d.accesses.Value() }

// Reads returns the number of read requests accepted.
func (d *DRAM) Reads() uint64 { return d.reads.Value() }

// Writes returns the number of write requests accepted.
func (d *DRAM) Writes() uint64 { return d.writes.Value() }

// RowHitRate returns the fraction of issued requests that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	total := d.rowHits.Value() + d.rowMisses.Value()
	if total == 0 {
		return 0
	}
	return float64(d.rowHits.Value()) / float64(total)
}

// AverageLatency returns the mean arrival-to-completion latency in cycles of
// the requests issued so far.
func (d *DRAM) AverageLatency() float64 {
	issued := d.rowHits.Value() + d.rowMisses.Value()
	if issued == 0 {
		return 0
	}
	return float64(d.totalLat.Value()) / float64(issued)
}

// QueueStalls returns the number of submissions rejected by a full channel
// queue.
func (d *DRAM) QueueStalls() uint64 { return d.stallsQ.Value() }

// EnergyNJ returns the dynamic energy in nano-joules charged by the backend
// for the commands issued so far.
func (d *DRAM) EnergyNJ() float64 { return d.energyNJ }

// Reset clears all channel, bank and statistic state.
func (d *DRAM) Reset() {
	for i := range d.channels {
		for b := range d.channels[i].banks {
			d.channels[i].banks[b] = bankState{}
		}
		d.channels[i].busFreeAt = 0
		d.channels[i].queue = nil
		d.channels[i].flights = nil
	}
	d.nextSeq = 0
	d.compBuf = nil
	d.accesses.Reset()
	d.rowHits.Reset()
	d.rowMisses.Reset()
	d.reads.Reset()
	d.writes.Reset()
	d.totalLat.Reset()
	d.stallsQ.Reset()
	d.energyNJ = 0
}

// String describes the configuration.
func (d *DRAM) String() string {
	return fmt.Sprintf("%s{%d channels x %d banks, tCL=%d tRCD=%d tRP=%d tRAS=%d}",
		d.backend.Name(), d.cfg.Channels, d.cfg.BanksPerChannel, d.cfg.TCL, d.cfg.TRCD, d.cfg.TRP, d.cfg.TRAS)
}
