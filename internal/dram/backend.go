package dram

import (
	"fmt"

	"fuse/internal/memtech"
)

// Timing is the per-technology timing parameter set the memory controller
// schedules against. All values are in core cycles, like the rest of the
// simulator. WriteBurstExtra models technologies whose write path is slower
// than their read path (STT-MRAM's MTJ switching time); DRAM-family backends
// leave it zero.
type Timing struct {
	TCL             int
	TRCD            int
	TRP             int
	TRAS            int
	BurstCycles     int
	WriteBurstExtra int
}

// Energy is the per-operation dynamic energy of a backend in nano-joules:
// one row activation, one 128-byte read burst, one 128-byte write burst.
// The controller accumulates these as it schedules commands, giving every
// backend sweep an energy axis next to the timing axis.
type Energy struct {
	ActivateNJ float64
	ReadNJ     float64
	WriteNJ    float64
}

// Backend is a pluggable off-chip memory technology behind the controller:
// it supplies the timing the scheduler obeys and the energy hooks the
// controller charges per command. The controller's geometry (channels, banks
// per channel, row size, queue depth) stays in Config — backends describe
// the cell technology, not the channel organisation, which is how DeepNVM++
// and similar studies sweep memory technologies behind a fixed hierarchy.
type Backend interface {
	// Name is the stable identifier used by configuration and CLI flags.
	Name() string
	// Timing resolves the backend's timing. The baseline GDDR5 backend
	// honours explicitly-set Config timing fields (the paper's Table I
	// values live in config.GPUConfig); the other backends own their
	// timing intrinsically.
	Timing(cfg Config) Timing
	// Energy returns the per-command energy costs.
	Energy() Energy
}

// DefaultBackend is the backend used when none is configured: the paper's
// GDDR5 main memory.
const DefaultBackend = "GDDR5"

// gddr5 is the paper's baseline GDDR5 memory (Table I). Its timing honours
// the Config fields so the existing TCL/TRCD/TRP/TRAS plumbing from
// config.GPUConfig keeps working; zero fields fall back to Table I.
type gddr5 struct{}

func (gddr5) Name() string { return "GDDR5" }

func (gddr5) Timing(cfg Config) Timing {
	t := Timing{TCL: cfg.TCL, TRCD: cfg.TRCD, TRP: cfg.TRP, TRAS: cfg.TRAS, BurstCycles: cfg.BurstCycles}
	if t.TCL <= 0 {
		t.TCL = 12
	}
	if t.TRCD <= 0 {
		t.TRCD = 12
	}
	if t.TRP <= 0 {
		t.TRP = 12
	}
	if t.TRAS <= 0 {
		t.TRAS = 28
	}
	if t.BurstCycles <= 0 {
		t.BurstCycles = 4
	}
	return t
}

// GDDR5 interface energy is on the order of 15-20 pJ/bit; a 128-byte burst
// moves 1024 bits.
func (gddr5) Energy() Energy { return Energy{ActivateNJ: 1.1, ReadNJ: 16.4, WriteNJ: 17.2} }

// gddr5x is a faster-clocked GDDR5X/GDDR6-class point: the doubled prefetch
// halves the burst occupancy and the core timings shrink by roughly a
// quarter in core cycles, at slightly lower energy per bit.
type gddr5x struct{}

func (gddr5x) Name() string { return "GDDR5X" }

func (gddr5x) Timing(Config) Timing {
	return Timing{TCL: 9, TRCD: 9, TRP: 9, TRAS: 21, BurstCycles: 2}
}

func (gddr5x) Energy() Energy { return Energy{ActivateNJ: 1.0, ReadNJ: 12.8, WriteNJ: 13.4} }

// hbm2 is an HBM2-class stacked-DRAM point: the slower DRAM core costs a few
// extra cycles on every row operation, but the very wide interface drains a
// 128-byte burst in two core cycles and moves data at ~4 pJ/bit.
type hbm2 struct{}

func (hbm2) Name() string { return "HBM2" }

func (hbm2) Timing(Config) Timing {
	return Timing{TCL: 14, TRCD: 14, TRP: 14, TRAS: 33, BurstCycles: 2}
}

func (hbm2) Energy() Energy { return Energy{ActivateNJ: 0.9, ReadNJ: 4.0, WriteNJ: 4.4} }

// sttMainMemoryScale relates the 1-cycle L1D-bank read of memtech's Table I
// STT-MRAM parameters to a main-memory array access: big arrays pay long
// bit lines and I/O, so latency scales up and so does per-access energy.
const (
	sttMainMemoryLatencyScale = 3  // cycles per L1D-bank cycle at array scale
	sttMainMemoryEnergyScale  = 12 // nJ multiplier for array + interface energy
)

// sttMRAM is an STT-MRAM main-memory point derived from the repository's
// Table I cell parameters (memtech.STTMRAMParams). Reads are non-destructive,
// so there is no restore phase: "precharge" and "activation" are nearly free
// and the row buffer is a plain latch. The price is the MTJ switching time on
// every write burst.
type sttMRAM struct{}

func (sttMRAM) Name() string { return "STT-MRAM" }

func (sttMRAM) Timing(Config) Timing {
	p := memtech.STTMRAMParams(64)
	return Timing{
		TCL:         14,
		TRCD:        4,
		TRP:         2,
		TRAS:        8,
		BurstCycles: 4,
		// The extra write time is the cell-level write/read latency gap
		// scaled to array size: (5-1) L1D cycles x 3 = 12 core cycles.
		WriteBurstExtra: (p.WriteLatency - p.ReadLatency) * sttMainMemoryLatencyScale,
	}
}

func (sttMRAM) Energy() Energy {
	p := memtech.STTMRAMParams(64)
	return Energy{
		ActivateNJ: 0.3, // latch the target row: no destructive sense-amplify
		ReadNJ:     p.ReadEnergy * sttMainMemoryEnergyScale,
		WriteNJ:    p.WriteEnergy * 4, // MTJ writes already dominate at cell level
	}
}

// backendRegistry lists every selectable backend, baseline first. The order
// is the presentation order of backend sweeps.
var backendRegistry = []Backend{gddr5{}, gddr5x{}, hbm2{}, sttMRAM{}}

// Backends returns the names of all registered backends in registry order
// (the baseline GDDR5 first).
func Backends() []string {
	names := make([]string, len(backendRegistry))
	for i, b := range backendRegistry {
		names[i] = b.Name()
	}
	return names
}

// BackendByName resolves a backend name; the empty string selects the
// default GDDR5 backend.
func BackendByName(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	for _, b := range backendRegistry {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("dram: unknown memory backend %q (want one of %v)", name, Backends())
}
