package dram

import (
	"strings"
	"testing"
	"testing/quick"

	"fuse/internal/mem"
)

func TestDefaultsMatchTableI(t *testing.T) {
	d := New(Config{})
	cfg := d.Config()
	if cfg.Channels != 6 {
		t.Errorf("paper uses 6 DRAM channels, got %d", cfg.Channels)
	}
	if cfg.TCL != 12 || cfg.TRCD != 12 || cfg.TRAS != 28 {
		t.Errorf("timings should match Table I: %+v", cfg)
	}
	if d.Channels() != 6 {
		t.Errorf("Channels() = %d", d.Channels())
	}
	if d.BackendName() != "GDDR5" {
		t.Errorf("default backend should be GDDR5, got %s", d.BackendName())
	}
	if !strings.Contains(d.String(), "GDDR5") {
		t.Errorf("String should describe the device")
	}
}

func TestRowHitFasterThanRowMiss(t *testing.T) {
	d := New(Config{})
	// First access opens the row (row miss).
	first := d.Access(0, false, 0)
	// Second access to the same block hits the open row.
	second := d.Access(0, false, first)
	missLat := first - 0
	hitLat := second - first
	if hitLat >= missLat {
		t.Errorf("row hit (%d cycles) should be faster than row miss (%d cycles)", hitLat, missLat)
	}
	if d.RowHitRate() != 0.5 {
		t.Errorf("row hit rate = %v, want 0.5", d.RowHitRate())
	}
}

func TestChannelInterleaving(t *testing.T) {
	d := New(Config{})
	seen := map[int]bool{}
	for i := 0; i < 12; i++ {
		seen[d.ChannelFor(uint64(i)*mem.BlockSize)] = true
	}
	if len(seen) != 6 {
		t.Errorf("consecutive blocks should spread over all 6 channels, hit %d", len(seen))
	}
	// Same address always maps to the same channel.
	if d.ChannelFor(0x12380) != d.ChannelFor(0x12380) {
		t.Errorf("channel mapping must be deterministic")
	}
}

func TestBankLevelParallelism(t *testing.T) {
	d := New(Config{})
	// Two requests to different channels at the same time should both finish
	// at (roughly) the single-request latency, not serialise.
	a := d.Access(0*mem.BlockSize, false, 0)
	b := d.Access(1*mem.BlockSize, false, 0) // different channel by interleaving
	single := New(Config{}).Access(0, false, 0)
	if a > single || b > single {
		t.Errorf("independent channels should not serialise: a=%d b=%d single=%d", a, b, single)
	}
	// Two requests to the same bank must serialise.
	d2 := New(Config{})
	first := d2.Access(0, false, 0)
	second := d2.Access(0, false, 0)
	if second <= first {
		t.Errorf("same-bank requests must serialise: %d then %d", first, second)
	}
}

// TestFRFCFSRowHitOvertakesRowMiss pins the scheduling policy the old
// arrival-ordered model could not express: while the bank serves row 0, an
// older queued request to row 1 is overtaken by a younger request to the
// open row 0.
func TestFRFCFSRowHitOvertakesRowMiss(t *testing.T) {
	d := New(Config{Channels: 1, BanksPerChannel: 1})
	blocksPerRow := uint64(d.Config().RowBytes / mem.BlockSize)

	rowMiss := blocksPerRow * mem.BlockSize // row 1
	rowHit := uint64(mem.BlockSize)         // row 0, distinct block from the opener

	if _, ok := d.Submit(0, false, 0); !ok { // opens row 0
		t.Fatal("submit rejected")
	}
	d.Advance(0)
	seqMiss, ok := d.Submit(rowMiss, false, 1)
	if !ok {
		t.Fatal("submit rejected")
	}
	seqHit, ok := d.Submit(rowHit, false, 2)
	if !ok {
		t.Fatal("submit rejected")
	}

	doneAt := map[uint64]int64{}
	for len(doneAt) < 3 {
		next := d.NextEventAt()
		if next < 0 {
			t.Fatalf("controller idle with work outstanding")
		}
		for _, c := range d.Advance(next) {
			doneAt[c.Seq] = c.Done
		}
	}
	if doneAt[seqHit] >= doneAt[seqMiss] {
		t.Errorf("FR-FCFS must serve the younger row hit (done %d) before the older row miss (done %d)",
			doneAt[seqHit], doneAt[seqMiss])
	}
	if d.RowHitRate() == 0 {
		t.Errorf("the overtaking request should have been a row hit")
	}
}

func TestSubmitBackPressure(t *testing.T) {
	d := New(Config{Channels: 1, QueueDepth: 2})
	if _, ok := d.Submit(0, false, 0); !ok {
		t.Fatal("first submit should be accepted")
	}
	if _, ok := d.Submit(mem.BlockSize, false, 0); !ok {
		t.Fatal("second submit should be accepted")
	}
	if _, ok := d.Submit(2*mem.BlockSize, false, 0); ok {
		t.Fatal("third submit must be rejected by a depth-2 queue")
	}
	if d.QueueStalls() != 1 {
		t.Errorf("rejections should be counted, got %d", d.QueueStalls())
	}
	// Retrying the same held-back request must not inflate the statistic:
	// one delayed request is one queue stall, however often it re-attempts.
	if _, ok := d.Resubmit(2*mem.BlockSize, false, 0); ok {
		t.Fatal("resubmit should still be rejected")
	}
	if d.QueueStalls() != 1 {
		t.Errorf("Resubmit rejections must not re-count stalls, got %d", d.QueueStalls())
	}
	if d.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", d.Pending())
	}
	// Drain one completion: a slot frees up.
	for d.Pending() == 2 {
		next := d.NextEventAt()
		if next < 0 {
			t.Fatal("controller idle with work outstanding")
		}
		d.Advance(next)
	}
	if _, ok := d.Submit(2*mem.BlockSize, false, d.NextEventAt()); !ok {
		t.Errorf("submit should succeed after a completion freed a slot")
	}
}

func TestReadWriteCounted(t *testing.T) {
	d := New(Config{})
	d.Access(0, false, 0)
	d.Access(128, true, 0)
	if d.Reads() != 1 || d.Writes() != 1 || d.Accesses() != 2 {
		t.Errorf("access counters wrong: %d reads %d writes %d total", d.Reads(), d.Writes(), d.Accesses())
	}
	if d.AverageLatency() <= 0 {
		t.Errorf("average latency should be positive")
	}
	if d.EnergyNJ() <= 0 {
		t.Errorf("issued commands should accumulate backend energy")
	}
}

func TestCompletionAfterIssue(t *testing.T) {
	prop := func(addr uint64, write bool, now uint32) bool {
		d := New(Config{})
		done := d.Access(addr, write, int64(now))
		return done > int64(now)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSameBankMonotonicCompletion(t *testing.T) {
	d := New(Config{})
	prev := int64(0)
	for i := 0; i < 50; i++ {
		done := d.Access(0, i%3 == 0, int64(i))
		if done < prev {
			t.Fatalf("completion times must be monotonic for one bank: %d < %d", done, prev)
		}
		prev = done
	}
}

func TestOffChipLatencyFarExceedsL1Latency(t *testing.T) {
	// The motivation of the whole paper: a DRAM access costs dozens of
	// cycles even before the interconnect is added, vs. 1 cycle for the L1D.
	d := New(Config{})
	lat := d.Access(0x100000, false, 0)
	if lat < 20 {
		t.Errorf("cold DRAM access should cost at least tRCD+tCL+burst, got %d", lat)
	}
}

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	if len(names) < 3 {
		t.Fatalf("at least three backends must be selectable, got %v", names)
	}
	if names[0] != DefaultBackend {
		t.Errorf("the baseline backend should lead the registry: %v", names)
	}
	for _, name := range names {
		be, err := BackendByName(name)
		if err != nil || be.Name() != name {
			t.Errorf("BackendByName(%q) = %v, %v", name, be, err)
		}
		tm := be.Timing(Config{}.withDefaults())
		if tm.TCL <= 0 || tm.TRCD <= 0 || tm.TRP <= 0 || tm.TRAS <= 0 || tm.BurstCycles <= 0 {
			t.Errorf("backend %s has non-positive timing: %+v", name, tm)
		}
		e := be.Energy()
		if e.ReadNJ <= 0 || e.WriteNJ <= 0 {
			t.Errorf("backend %s has non-positive energy: %+v", name, e)
		}
	}
	if _, err := BackendByName(""); err != nil {
		t.Errorf("empty name should resolve to the default backend: %v", err)
	}
	if _, err := BackendByName("PCM-9000"); err == nil {
		t.Errorf("unknown backend should be rejected")
	}
}

func TestUnknownBackendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New with an unknown backend should panic")
		}
	}()
	New(Config{Backend: "PCM-9000"})
}

func TestBackendsShapeTimingAndEnergy(t *testing.T) {
	// STT-MRAM main memory: writes pay the MTJ switching time on top of the
	// burst, so a write burst takes longer than a read burst.
	stt := New(Config{Backend: "STT-MRAM", Channels: 1, BanksPerChannel: 1})
	r1 := stt.Access(0, false, 0)
	r2 := stt.Access(0, false, r1) // row hit read
	w := stt.Access(0, true, r2)   // row hit write
	if w-r2 <= r2-r1 {
		t.Errorf("STT-MRAM write burst (%d) should exceed its read burst (%d)", w-r2, r2-r1)
	}
	// HBM2 moves a burst in fewer bus cycles than GDDR5 and at lower energy.
	hbm := New(Config{Backend: "HBM2"})
	gddr := New(Config{})
	if hbm.Config().BurstCycles >= gddr.Config().BurstCycles {
		t.Errorf("HBM2 burst (%d) should beat GDDR5 (%d)", hbm.Config().BurstCycles, gddr.Config().BurstCycles)
	}
	hbm.Access(0, false, 0)
	gddr.Access(0, false, 0)
	if hbm.EnergyNJ() >= gddr.EnergyNJ() {
		t.Errorf("HBM2 access energy (%v nJ) should be below GDDR5 (%v nJ)", hbm.EnergyNJ(), gddr.EnergyNJ())
	}
}

func TestResetClearsState(t *testing.T) {
	d := New(Config{})
	d.Access(0, false, 0)
	d.Access(0, true, 0)
	d.Reset()
	if d.Accesses() != 0 || d.RowHitRate() != 0 || d.AverageLatency() != 0 || d.QueueStalls() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if d.Pending() != 0 || d.NextEventAt() != -1 || d.EnergyNJ() != 0 {
		t.Errorf("Reset should clear controller state")
	}
	// After reset the first access is a row miss again.
	d.Access(0, false, 0)
	if d.RowHitRate() != 0 {
		t.Errorf("post-reset first access should be a row miss")
	}
}

func TestConfigClamping(t *testing.T) {
	d := New(Config{Channels: -1, BanksPerChannel: 0, RowBytes: 0, TCL: 0, TRCD: 0, TRP: 0, TRAS: 0, BurstCycles: 0, QueueDepth: 0})
	cfg := d.Config()
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.RowBytes <= 0 || cfg.QueueDepth <= 0 {
		t.Errorf("invalid config should clamp to defaults: %+v", cfg)
	}
	if done := d.Access(0, false, 0); done <= 0 {
		t.Errorf("clamped DRAM should still serve accesses")
	}
}
