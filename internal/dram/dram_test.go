package dram

import (
	"strings"
	"testing"
	"testing/quick"

	"fuse/internal/mem"
)

func TestDefaultsMatchTableI(t *testing.T) {
	d := New(Config{})
	cfg := d.Config()
	if cfg.Channels != 6 {
		t.Errorf("paper uses 6 DRAM channels, got %d", cfg.Channels)
	}
	if cfg.TCL != 12 || cfg.TRCD != 12 || cfg.TRAS != 28 {
		t.Errorf("timings should match Table I: %+v", cfg)
	}
	if d.Channels() != 6 {
		t.Errorf("Channels() = %d", d.Channels())
	}
	if !strings.Contains(d.String(), "GDDR5") {
		t.Errorf("String should describe the device")
	}
}

func TestRowHitFasterThanRowMiss(t *testing.T) {
	d := New(Config{})
	// First access opens the row (row miss).
	first := d.Access(0, false, 0)
	// Second access to the same block hits the open row.
	second := d.Access(0, false, first)
	missLat := first - 0
	hitLat := second - first
	if hitLat >= missLat {
		t.Errorf("row hit (%d cycles) should be faster than row miss (%d cycles)", hitLat, missLat)
	}
	if d.RowHitRate() != 0.5 {
		t.Errorf("row hit rate = %v, want 0.5", d.RowHitRate())
	}
}

func TestChannelInterleaving(t *testing.T) {
	d := New(Config{})
	seen := map[int]bool{}
	for i := 0; i < 12; i++ {
		seen[d.ChannelFor(uint64(i)*mem.BlockSize)] = true
	}
	if len(seen) != 6 {
		t.Errorf("consecutive blocks should spread over all 6 channels, hit %d", len(seen))
	}
	// Same address always maps to the same channel.
	if d.ChannelFor(0x12380) != d.ChannelFor(0x12380) {
		t.Errorf("channel mapping must be deterministic")
	}
}

func TestBankLevelParallelism(t *testing.T) {
	d := New(Config{})
	// Two requests to different channels at the same time should both finish
	// at (roughly) the single-request latency, not serialise.
	a := d.Access(0*mem.BlockSize, false, 0)
	b := d.Access(1*mem.BlockSize, false, 0) // different channel by interleaving
	single := New(Config{}).Access(0, false, 0)
	if a > single || b > single {
		t.Errorf("independent channels should not serialise: a=%d b=%d single=%d", a, b, single)
	}
	// Two requests to the same bank must serialise.
	d2 := New(Config{})
	first := d2.Access(0, false, 0)
	second := d2.Access(0, false, 0)
	if second <= first {
		t.Errorf("same-bank requests must serialise: %d then %d", first, second)
	}
}

func TestQueueBackpressure(t *testing.T) {
	d := New(Config{QueueDepth: 2})
	// Flood one channel: with a depth-2 queue, later requests must be
	// delayed and the stall counter must grow.
	base := uint64(0)
	var last int64
	for i := 0; i < 20; i++ {
		// Same channel: step by Channels blocks.
		addr := base + uint64(i)*uint64(d.Config().Channels)*mem.BlockSize
		last = d.Access(addr, false, 0)
	}
	if d.QueueStalls() == 0 {
		t.Errorf("expected queue stalls under flood")
	}
	if last <= int64(d.Config().TCL) {
		t.Errorf("flooded channel should finish well after a single access")
	}
}

func TestReadWriteCounted(t *testing.T) {
	d := New(Config{})
	d.Access(0, false, 0)
	d.Access(128, true, 0)
	if d.Reads() != 1 || d.Writes() != 1 || d.Accesses() != 2 {
		t.Errorf("access counters wrong: %d reads %d writes %d total", d.Reads(), d.Writes(), d.Accesses())
	}
	if d.AverageLatency() <= 0 {
		t.Errorf("average latency should be positive")
	}
}

func TestCompletionAfterIssue(t *testing.T) {
	prop := func(addr uint64, write bool, now uint32) bool {
		d := New(Config{})
		done := d.Access(addr, write, int64(now))
		return done > int64(now)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSameBankMonotonicCompletion(t *testing.T) {
	d := New(Config{})
	prev := int64(0)
	for i := 0; i < 50; i++ {
		done := d.Access(0, i%3 == 0, int64(i))
		if done < prev {
			t.Fatalf("completion times must be monotonic for one bank: %d < %d", done, prev)
		}
		prev = done
	}
}

func TestOffChipLatencyFarExceedsL1Latency(t *testing.T) {
	// The motivation of the whole paper: a DRAM access costs dozens of
	// cycles even before the interconnect is added, vs. 1 cycle for the L1D.
	d := New(Config{})
	lat := d.Access(0x100000, false, 0)
	if lat < 20 {
		t.Errorf("cold DRAM access should cost at least tRCD+tCL+burst, got %d", lat)
	}
}

func TestResetClearsState(t *testing.T) {
	d := New(Config{})
	d.Access(0, false, 0)
	d.Access(0, true, 0)
	d.Reset()
	if d.Accesses() != 0 || d.RowHitRate() != 0 || d.AverageLatency() != 0 || d.QueueStalls() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	// After reset the first access is a row miss again.
	d.Access(0, false, 0)
	if d.RowHitRate() != 0 {
		t.Errorf("post-reset first access should be a row miss")
	}
}

func TestConfigClamping(t *testing.T) {
	d := New(Config{Channels: -1, BanksPerChannel: 0, RowBytes: 0, TCL: 0, TRCD: 0, TRP: 0, TRAS: 0, BurstCycles: 0, QueueDepth: 0})
	cfg := d.Config()
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.RowBytes <= 0 || cfg.QueueDepth <= 0 {
		t.Errorf("invalid config should clamp to defaults: %+v", cfg)
	}
	if done := d.Access(0, false, 0); done <= 0 {
		t.Errorf("clamped DRAM should still serve accesses")
	}
}
