package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Phasesafe pins the conservative-parallel engine's phase discipline. The
// engine alternates between a worker phase (advancePart: several goroutines
// advance disjoint SMs concurrently) and a serial commit phase (commitEpoch:
// one goroutine re-plays the logged traffic against the shared machine). The
// determinism proof — byte-identical results for every worker count — rests
// on the worker phase touching strictly SM-local state: the shared NoC, L2,
// event heap, clock and wake heap belong to the serial phase alone.
//
// The contract is annotated in the source:
//
//   - `//fuselint:workerphase` on a function marks it a worker-phase root —
//     it and everything it (transitively, within its package) calls runs
//     concurrently on worker goroutines;
//   - `//fuselint:serialonly` on a Simulator field marks it serial-phase
//     state.
//
// The analyzer walks the static call graph from each root and rejects, in
// any reachable function: writes to serial-only fields (assignment,
// increment/decrement, address-taken) and calls of pointer-receiver methods
// on serial-only fields (a mutation by another name). Reads of shared
// immutable state (opts, sms, the per-SM chargedTo slots) stay legal.
//
// The call-graph walk is intra-package, which is sound here: every
// serial-only field is unexported, so all access is from within
// fuse/internal/sim, and the worker-phase roots call out of the package only
// into per-SM objects they own for the epoch.
var Phasesafe = &Analyzer{
	Name: "phasesafe",
	Doc:  "rejects writes to serial-only simulator state reachable from worker-phase roots",
	Run:  runPhasesafe,
}

func runPhasesafe(pass *Pass) error {
	fset := pass.Prog.Fset
	serial := make(map[types.Object]string) // field object -> Struct.Field label
	var roots []*ast.FuncDecl
	rootFiles := make(map[*ast.FuncDecl]*ast.File)
	decls := make(map[types.Object]*ast.FuncDecl)

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if obj := pass.Pkg.Info.Defs[decl.Name]; obj != nil {
					decls[obj] = decl
				}
				if _, ok := pass.Pkg.nodeDirective(fset, f, decl.Doc, decl, "workerphase"); ok {
					roots = append(roots, decl)
					rootFiles[decl] = f
				}
			case *ast.GenDecl:
				if decl.Tok != token.TYPE {
					continue
				}
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						ok, _ := fieldDirective(pass, pass.Pkg, f, field, "serialonly")
						if !ok {
							continue
						}
						for _, name := range field.Names {
							if obj := pass.Pkg.Info.Defs[name]; obj != nil {
								serial[obj] = ts.Name.Name + "." + name.Name
							}
						}
					}
				}
			}
		}
	}

	checkPhasesafeAnchors(pass, roots, serial)
	if len(roots) == 0 || len(serial) == 0 {
		return nil
	}

	for _, root := range roots {
		for _, fn := range reachableFuncs(pass, root, decls) {
			checkPhaseViolations(pass, fn, root.Name.Name, serial)
		}
	}
	return nil
}

// checkPhasesafeAnchors keeps the annotations themselves from rotting in the
// package the analyzer exists for: the parallel engine must declare at least
// one worker-phase root and its serial-only state.
func checkPhasesafeAnchors(pass *Pass, roots []*ast.FuncDecl, serial map[types.Object]string) {
	if pass.Pkg.Path != "fuse/internal/sim" {
		return
	}
	if len(roots) == 0 {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "fuse/internal/sim declares no //fuselint:workerphase root: the parallel engine's advance phase is unguarded")
	}
	if len(serial) == 0 {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "fuse/internal/sim annotates no //fuselint:serialonly fields: phasesafe has nothing to protect")
	}
}

// reachableFuncs returns the root plus every same-package function it
// transitively references (calls, method values, function values — any use
// of a package-local func identifier counts as an edge, which over-
// approximates reachability and is therefore safe).
func reachableFuncs(pass *Pass, root *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	seen := map[*ast.FuncDecl]bool{root: true}
	work := []*ast.FuncDecl{root}
	var out []*ast.FuncDecl
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		out = append(out, fn)
		if fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			callee, ok := decls[obj]
			if ok && !seen[callee] {
				seen[callee] = true
				work = append(work, callee)
			}
			return true
		})
	}
	return out
}

// checkPhaseViolations scans one reachable function for mutations of
// serial-only state.
func checkPhaseViolations(pass *Pass, fn *ast.FuncDecl, rootName string, serial map[types.Object]string) {
	if fn.Body == nil {
		return
	}
	reportSel := func(sel *ast.SelectorExpr, what string) bool {
		obj := pass.Pkg.Info.Uses[sel.Sel]
		label, ok := serial[obj]
		if !ok {
			return false
		}
		pass.Reportf(sel.Pos(), "%s serial-only field %s in code reachable from worker-phase root %s (function %s): only the serial commit phase may touch it",
			what, label, rootName, fn.Name.Name)
		return true
	}
	// Any serial-only selector inside an lvalue (including its index
	// expressions) is reported: a write target built from serial state has no
	// business in the worker phase either way.
	flagLvalue := func(expr ast.Expr, what string) {
		ast.Inspect(expr, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if reportSel(sel, what) {
					return false
				}
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flagLvalue(lhs, "write to")
			}
		case *ast.IncDecStmt:
			flagLvalue(n.X, "write to")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				flagLvalue(n.X, "address taken of")
			}
		case *ast.CallExpr:
			// s.events.push(...) mutates the heap through a pointer receiver.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !pointerReceiverCall(pass, sel) {
				return true
			}
			if base, ok := sel.X.(*ast.SelectorExpr); ok {
				reportSel(base, "pointer-receiver method call on")
			}
		}
		return true
	})
}

// pointerReceiverCall reports whether the selector is a method call whose
// declared receiver is a pointer (i.e. the call can mutate the receiver).
func pointerReceiverCall(pass *Pass, sel *ast.SelectorExpr) bool {
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}
