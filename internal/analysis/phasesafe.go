package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Phasesafe pins the conservative-parallel engine's phase discipline. The
// engine alternates between a worker phase (advancePart: several goroutines
// advance disjoint SMs concurrently) and a serial commit phase (commitEpoch:
// one goroutine re-plays the logged traffic against the shared machine). The
// determinism proof — byte-identical results for every worker count — rests
// on the worker phase touching strictly SM-local state: the shared NoC, L2,
// event heap, clock and wake heap belong to the serial phase alone.
//
// The contract is annotated in the source:
//
//   - `//fuselint:workerphase` on a function marks it a worker-phase root —
//     it and everything it transitively calls, across package boundaries and
//     through in-repo interfaces, runs concurrently on worker goroutines;
//   - `//fuselint:serialonly` on a Simulator field marks it serial-phase
//     state;
//   - `//fuselint:smowned <reason>` on a type declares that each instance is
//     owned by exactly one SM per epoch, so its methods may mutate their
//     receiver from the worker phase.
//
// The analyzer builds the whole-program call graph (see xpkg.go) from each
// root and rejects, in any reachable function:
//
//   - writes to serial-only fields (assignment, increment/decrement,
//     address-taken) and calls of pointer-receiver methods on serial-only
//     fields (a mutation by another name);
//   - writes to (or pointer-receiver method calls on) package-level
//     variables, in any package — worker goroutines run concurrently;
//   - outside the root's own package, receiver mutation in methods of types
//     not annotated //fuselint:smowned;
//   - writes that traverse into another instance of the receiver's own type
//     (a `peer *SM` field or an *SM-typed local), which is by definition
//     state some other worker may own;
//   - interprocedural reach of detmap's nondeterminism denylist
//     (time.Now/Since/Until, the global math/rand generators, os.Getenv and
//     friends).
//
// Reads of shared immutable state (opts, sms, the per-SM chargedTo slots)
// stay legal. The walk resolves interface calls conservatively to every
// in-repo implementation, so the guarantee is whole-program: what PR 7
// assumed in prose — that worker-phase roots only reach per-SM state outside
// the sim package — is now checked.
var Phasesafe = &Analyzer{
	Name:   "phasesafe",
	Doc:    "rejects worker-phase-reachable mutation of serial-only, package-level or non-SM-owned state, across packages",
	Run:    runPhasesafe,
	Finish: finishPhasesafe,
}

// phasesafeRoot is one //fuselint:workerphase function, as collected by the
// per-package Run pass.
type phasesafeRoot struct {
	id      string // stable cross-universe function ID
	name    string // display name for messages
	pkgPath string
}

// phasesafeState carries the per-package facts to the program-wide Finish
// pass.
type phasesafeState struct {
	roots  []phasesafeRoot
	serial map[string]string // fieldID -> Struct.Field label
}

func phasesafeStateOf(prog *Program) *phasesafeState {
	st, ok := prog.State["phasesafe"].(*phasesafeState)
	if !ok {
		st = &phasesafeState{serial: make(map[string]string)}
		prog.State["phasesafe"] = st
	}
	return st
}

// runPhasesafe collects the worker-phase roots and serial-only fields of one
// package; the cross-package walk happens in finishPhasesafe.
func runPhasesafe(pass *Pass) error {
	fset := pass.Prog.Fset
	st := phasesafeStateOf(pass.Prog)
	var rootCount, serialCount int

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if _, ok := pass.Pkg.nodeDirective(fset, f, decl.Doc, decl, "workerphase"); !ok {
					continue
				}
				obj, _ := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
				id := funcID(obj)
				if id == "" {
					continue
				}
				st.roots = append(st.roots, phasesafeRoot{id: id, name: decl.Name.Name, pkgPath: pass.Pkg.Path})
				rootCount++
			case *ast.GenDecl:
				if decl.Tok != token.TYPE {
					continue
				}
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					structType, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range structType.Fields.List {
						ok, _ := fieldDirective(pass, pass.Pkg, f, field, "serialonly")
						if !ok {
							continue
						}
						for _, name := range field.Names {
							st.serial[pass.Pkg.Path+"."+ts.Name.Name+"."+name.Name] = ts.Name.Name + "." + name.Name
							serialCount++
						}
					}
				}
			}
		}
	}

	// Anchors keep the annotations from rotting in the package the analyzer
	// exists for: the parallel engine must declare at least one worker-phase
	// root and its serial-only state.
	if pass.Pkg.Path == "fuse/internal/sim" {
		if rootCount == 0 {
			pass.Reportf(pass.Pkg.Files[0].Pos(), "fuse/internal/sim declares no //fuselint:workerphase root: the parallel engine's advance phase is unguarded")
		}
		if serialCount == 0 {
			pass.Reportf(pass.Pkg.Files[0].Pos(), "fuse/internal/sim annotates no //fuselint:serialonly fields: phasesafe has nothing to protect")
		}
	}
	return nil
}

// finishPhasesafe walks the whole-program call graph from every worker-phase
// root and enforces the phase rules in each reachable function.
func finishPhasesafe(prog *Program, report func(Diagnostic)) error {
	st := phasesafeStateOf(prog)
	if len(st.roots) == 0 {
		return nil
	}
	idx := xpkgOf(prog)
	w := &phaseWalker{
		prog:    prog,
		idx:     idx,
		serial:  st.serial,
		smowned: make(map[string]bool),
		emitted: make(map[string]bool),
		report:  report,
	}
	for _, root := range st.roots {
		fi, ok := idx.byID[root.id]
		if !ok {
			continue
		}
		for _, fn := range idx.reachable([]*funcInfo{fi}) {
			w.checkFunc(fn, root)
		}
	}
	return nil
}

// phaseWalker holds the shared state of one finishPhasesafe pass.
type phaseWalker struct {
	prog    *Program
	idx     *xpkgIndex
	serial  map[string]string
	smowned map[string]bool // typeID -> has //fuselint:smowned (cached)
	emitted map[string]bool // position+message dedup across overlapping roots
	report  func(Diagnostic)
}

func (w *phaseWalker) reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{Pos: w.prog.Fset.Position(pos)}
	d.Message = fmt.Sprintf(format, args...)
	key := d.Pos.String() + "\x00" + d.Message
	if w.emitted[key] {
		return
	}
	w.emitted[key] = true
	w.report(d)
}

// typeIsSMOwned reports (and caches) whether the named type carries a
// //fuselint:smowned directive at its declaration.
func (w *phaseWalker) typeIsSMOwned(pkg *Package, typeName string) bool {
	key := pkg.Path + "." + typeName
	if v, ok := w.smowned[key]; ok {
		return v
	}
	v := false
	if ts, f := findTypeSpec(pkg, typeName); ts != nil {
		if _, ok := pkg.nodeDirective(w.prog.Fset, f, ts.Doc, ts, "smowned"); ok {
			v = true
		} else if gd := enclosingGenDecl(f, ts); gd != nil {
			if _, ok := pkg.nodeDirective(w.prog.Fset, f, gd.Doc, ts, "smowned"); ok {
				v = true
			}
		}
	}
	w.smowned[key] = v
	return v
}

// checkFunc enforces the worker-phase rules in one reachable function.
func (w *phaseWalker) checkFunc(fn *funcInfo, root phasesafeRoot) {
	if fn.Decl.Body == nil {
		return
	}
	info := fn.Pkg.Info

	// Receiver identity, for the ownership rules (which apply only outside
	// the root's own package: the root package is the engine itself, whose
	// split is governed by serialonly instead).
	var recvObj types.Object
	var recvNamedID, recvTypeName string
	ownership := fn.Pkg.Path != root.pkgPath
	if fn.Decl.Recv != nil && len(fn.Decl.Recv.List) == 1 && len(fn.Decl.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[fn.Decl.Recv.List[0].Names[0]]
		if obj, ok := info.Defs[fn.Decl.Name].(*types.Func); ok {
			recvNamedID = recvTypeID(obj)
		}
	}
	if i := lastDot(recvNamedID); i >= 0 {
		recvTypeName = recvNamedID[i+1:]
	}
	smownedReported := false

	// reportSerial flags a selector that resolves to a serial-only field.
	reportSerial := func(sel *ast.SelectorExpr, what string) bool {
		label, ok := w.serial[selFieldID(info, sel)]
		if !ok {
			return false
		}
		w.reportf(sel.Pos(), "%s serial-only field %s in code reachable from worker-phase root %s (function %s): only the serial commit phase may touch it",
			what, label, root.name, fn.Decl.Name.Name)
		return true
	}

	// checkPeer rejects lvalue chains that traverse into another instance of
	// the receiver's own type (`sm.peer.cycles++`, `*sm.peer = ...`): that
	// instance belongs to some other worker's SM. `above` is true when a
	// selection or dereference happens above the current node.
	var checkPeer func(expr ast.Expr, above bool)
	checkPeer = func(expr ast.Expr, above bool) {
		if recvNamedID == "" {
			return
		}
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			if above {
				if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal && typeContains(sel.Obj().Type(), recvNamedID) {
					w.reportf(e.Pos(), "worker-phase code reachable from root %s writes through %s into another %s instance: an SM may only mutate state it owns for the epoch",
						root.name, exprString(e), recvTypeName)
				}
			}
			checkPeer(e.X, true)
		case *ast.StarExpr:
			checkPeer(e.X, true)
		case *ast.IndexExpr:
			checkPeer(e.X, above)
		case *ast.ParenExpr:
			checkPeer(e.X, above)
		}
	}

	// flagLvalue applies every write rule to one write target (or
	// address-taken expression).
	flagLvalue := func(expr ast.Expr, what string) {
		// Serial-only state: any serial selector inside the lvalue
		// (including its index expressions) is reported — a write target
		// built from serial state has no business in the worker phase.
		ast.Inspect(expr, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if reportSerial(sel, what) {
					return false
				}
			}
			return true
		})
		baseObj := lvalueRootObj(info, expr)
		if isPkgLevelVar(baseObj) {
			w.reportf(expr.Pos(), "%s package-level var %s in code reachable from worker-phase root %s (function %s): worker goroutines run concurrently",
				what, baseObj.Name(), root.name, fn.Decl.Name.Name)
		}
		if !ownership {
			return
		}
		checkPeer(expr, false)
		if recvObj != nil && baseObj == recvObj {
			// Peer-typed locals and params are handled below; a plain
			// receiver mutation needs the type-level ownership declaration.
			if recvTypeName != "" && !w.typeIsSMOwned(fn.Pkg, recvTypeName) && !smownedReported {
				smownedReported = true
				w.reportf(expr.Pos(), "method %s of %s mutates its receiver in code reachable from worker-phase root %s: annotate the type //fuselint:smowned <reason> if each instance is owned by one SM per epoch, or move the mutation to the serial phase",
					fn.Decl.Name.Name, recvTypeName, root.name)
			}
		} else if v, ok := baseObj.(*types.Var); ok && !v.IsField() && recvNamedID != "" && typeContains(v.Type(), recvNamedID) {
			// Writing through an *SM-typed local or parameter that is not
			// the receiver: another instance of the owning type.
			w.reportf(expr.Pos(), "worker-phase code reachable from root %s writes through %s-typed variable %s that is not the method receiver: an SM may only mutate state it owns for the epoch",
				root.name, recvTypeName, v.Name())
		}
	}

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flagLvalue(lhs, "write to")
			}
		case *ast.IncDecStmt:
			flagLvalue(n.X, "write to")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				flagLvalue(n.X, "address taken of")
			}
		case *ast.CallExpr:
			if what, why, ok := nondetCall(info, n); ok {
				w.reportf(n.Pos(), "%s reachable from worker-phase root %s (function %s): %s", what, root.name, fn.Decl.Name.Name, why)
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !pointerReceiverCall(info, sel) {
				return true
			}
			// s.events.push(...) mutates the heap through a pointer
			// receiver; registry.mu.Lock() mutates a package-level var.
			if base, ok := sel.X.(*ast.SelectorExpr); ok {
				reportSerial(base, "pointer-receiver method call on")
			}
			if obj := lvalueRootObj(info, sel.X); isPkgLevelVar(obj) {
				w.reportf(sel.Pos(), "pointer-receiver method call on package-level var %s in code reachable from worker-phase root %s (function %s): worker goroutines run concurrently",
					obj.Name(), root.name, fn.Decl.Name.Name)
			}
			if ownership {
				checkPeer(sel.X, true)
			}
		}
		return true
	})
}

// findTypeSpec locates the declaration of any named type in a package —
// unlike findStructDecl it also matches non-struct types (`type rngState
// uint64`), which can carry //fuselint:smowned too.
func findTypeSpec(pkg *Package, name string) (*ast.TypeSpec, *ast.File) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts, f
				}
			}
		}
	}
	return nil, nil
}

// lvalueRootObj resolves the base object an lvalue chain is rooted in: the
// receiver or local for `x.f[i].g`, the package-level variable for
// `pkg.Var.f` or `localPkgVar[i]`.
func lvalueRootObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				return info.ObjectOf(e.Sel)
			}
		}
		return lvalueRootObj(info, e.X)
	case *ast.IndexExpr:
		return lvalueRootObj(info, e.X)
	case *ast.StarExpr:
		return lvalueRootObj(info, e.X)
	case *ast.ParenExpr:
		return lvalueRootObj(info, e.X)
	}
	return nil
}

// isPkgLevelVar reports whether the object is a package-scope variable.
func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// typeContains reports whether the type is, or is a pointer/slice/array/map
// reaching, the named type with the given ID — `*SM`, `[]*SM`,
// `map[int]*SM` all contain `gpu.SM`.
func typeContains(t types.Type, namedID string) bool {
	for i := 0; i < 16; i++ {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			return typeID(u) == namedID
		default:
			return false
		}
	}
	return false
}

// selFieldID returns the stable field ID of a field selection, or "".
func selFieldID(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	return fieldID(s)
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// pointerReceiverCall reports whether the selector is a method call whose
// declared receiver is a pointer (i.e. the call can mutate the receiver).
func pointerReceiverCall(info *types.Info, sel *ast.SelectorExpr) bool {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}
