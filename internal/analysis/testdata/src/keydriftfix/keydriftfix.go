// Package keydriftfix is a keydrift analyzer fixture: a miniature of the
// real config/engine key plumbing with one violation of each rule.
package keydriftfix

// Config mimics config.GPUConfig: a struct serialised verbatim into the
// store-key material.
//
//fuselint:keyroot
type Config struct {
	Name string
	SMs  int

	// Nested keyed structs are checked recursively.
	Cache CacheConfig

	secret int // want `Config.secret is silently excluded from the store-key material`

	//fuselint:execonly
	Scratch []byte `json:"-"` // want `//fuselint:execonly needs a justification`

	//fuselint:execonly contradicts the json tag below on purpose
	Leaked int // want `Config.Leaked is annotated //fuselint:execonly but is still serialised`

	//fuselint:execonly derived on load, never part of identity
	cache map[string]int
}

// CacheConfig is reached through Config.Cache, so its fields obey the same
// rules.
type CacheConfig struct {
	Ways int
	sets int // want `CacheConfig.sets is silently excluded from the store-key material`
}

// Job mimics engine.Job: dedup identity is the sibling Key struct.
//
//fuselint:jobkey Key
type Job struct {
	Workload string
	Label    string

	// Keyed through the store path: Config is a keyroot type.
	GPU *Config

	//fuselint:execonly goroutine budget, results are identical for every value
	Workers int

	Verbose bool // want `Job.Verbose is neither part of Key nor annotated`
}

// Key is Job's comparable dedup identity.
type Key struct {
	Workload string
	Label    string
}

func use(c Config) (int, map[string]int) { return c.secret + c.Cache.sets, c.cache }
