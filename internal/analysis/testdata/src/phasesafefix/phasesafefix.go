// Package phasesafefix is a phasesafe analyzer fixture: a miniature of the
// parallel engine's worker/serial phase split with seeded violations.
package phasesafefix

type queue struct{ items []int }

func (q *queue) push(v int) { q.items = append(q.items, v) }
func (q queue) len() int    { return len(q.items) }

// engine mimics sim.Simulator's split between worker-phase and serial-phase
// state.
type engine struct {
	parts     []int
	chargedTo []int64

	clock  int64 //fuselint:serialonly
	done   int   //fuselint:serialonly
	events queue //fuselint:serialonly
}

// advance is the worker-phase root.
//
//fuselint:workerphase
func (e *engine) advance(i int, t int64) {
	e.chargedTo[i] = t // worker-shared slot: legal
	e.clock = t        // want `write to serial-only field engine.clock`
	e.done++           // want `write to serial-only field engine.done`
	e.events.push(i)   // want `pointer-receiver method call on serial-only field engine.events`
	e.helper(i)
}

// helper is reachable from the root, so the same rules apply.
func (e *engine) helper(i int) {
	e.parts[i] = i // legal
	e.done = i     // want `write to serial-only field engine.done`
	_ = e.events.len()
}

// commit is NOT reachable from the worker phase: serial writes are legal.
func (e *engine) commit(t int64) {
	e.clock = t
	e.done = 0
	e.events.push(0)
}
