// Package ctxflowfix is the ctxflow analyzer fixture: a miniature serving
// layer with seeded cancellation-discipline violations — dropped Context
// siblings, bare sleeps, unguarded channel operations and a handler that
// manufactures its own context.
package ctxflowfix

import (
	"context"
	"net/http"
	"time"
)

// Run is the context-free legacy entry point; RunContext is its sibling.
func Run() int { return 1 }

// RunContext is the cancellable variant callers must prefer.
func RunContext(ctx context.Context) int { return 1 }

// Server carries a method pair mirroring Run/RunContext.
type Server struct {
	ch  chan int
	ctx context.Context
}

// Do is the context-free method.
func (s *Server) Do() {}

// DoContext is its cancellable sibling.
func (s *Server) DoContext(ctx context.Context) {}

// serve is context-aware, so every rule applies to its body.
func serve(ctx context.Context, s *Server) {
	_ = Run()               // want `call to Run drops the context: ctxflowfix.RunContext exists and accepts one`
	s.Do()                  // want `call to Do drops the context: Server.DoContext exists and accepts one`
	_ = RunContext(ctx)     // threading the context: legal
	time.Sleep(time.Second) // want `time.Sleep in a context-aware function`
	s.ch <- 1               // want `channel send without cancellation in context-aware function serve`
	<-s.ch                  // want `channel receive without cancellation in context-aware function serve`
	<-s.ch                  //fuselint:noctx the channel is always closed by the runner; the receive never blocks
	//fuselint:noctx
	s.ch <- 2 // want `//fuselint:noctx needs a reason`
	select {  // a ctx.Done select guards its channel cases
	case v := <-s.ch:
		_ = v
	case <-ctx.Done():
	}
}

// handler must derive its context from the request, not manufacture one.
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context.Background in an HTTP handler: derive the context from r.Context\(\)`
	_ = RunContext(ctx)
}

// plain has no context parameter: the channel rules do not apply.
func plain(s *Server) {
	s.ch <- 3
	<-s.ch
}

// retryLoop is context-free, so its timed waits form uncancellable
// backoff/polling loops (rule 5).
func retryLoop(s *Server) {
	for i := 0; i < 3; i++ {
		s.Do()
		time.Sleep(time.Second) // want `timed wait in a loop in context-free function retryLoop`
	}
	t := time.NewTimer(time.Second)
	for {
		<-t.C // want `timed wait in a loop in context-free function retryLoop`
	}
}

// pollEscaped documents why its wait must stay context-free.
func pollEscaped(s *Server) {
	for {
		s.Do()
		time.Sleep(time.Millisecond) //fuselint:noctx fixture: simulated hardware polling with no caller to cancel it
	}
}

// tickGuarded is context-free but reaches a context through a struct field:
// its loop wait sits in a ctx.Done select, so rule 5 leaves it alone. A
// single sleep outside any loop is also fine in a context-free function.
func tickGuarded(s *Server) {
	time.Sleep(time.Millisecond)
	t := time.NewTicker(time.Second)
	for {
		select {
		case <-t.C:
			s.Do()
		case <-s.ctx.Done():
			return
		}
	}
}
