// Package phasesafexfix is the cross-package phasesafe fixture: a miniature
// of the parallel engine whose worker-phase root reaches into a subpackage
// (smlib, standing in for gpu/core/cache) directly and through an interface,
// with seeded violations on both sides of the package boundary.
package phasesafexfix

import "fuse/internal/analysis/testdata/src/phasesafexfix/smlib"

// Ticker is the in-repo interface the worker phase calls through; the walk
// must resolve it to every loaded implementation.
type Ticker interface {
	Tick(now int64)
}

// engine mimics sim.Simulator: worker-shared slots plus serial-only state.
type engine struct {
	sms       []*smlib.SM
	caches    []Ticker
	chargedTo []int64

	clock int64 //fuselint:serialonly
}

// advancePart is the worker-phase root: it crosses the package boundary into
// smlib both directly (SM.Cycle) and through the Ticker interface.
//
//fuselint:workerphase
func (e *engine) advancePart(i int, now int64) {
	e.chargedTo[i] = now // worker-shared slot: legal
	e.clock = now        // want `write to serial-only field engine.clock`
	e.sms[i].Cycle(now)
	e.caches[i].Tick(now)
}

// commit is NOT reachable from the worker phase: serial writes are legal.
func (e *engine) commit(now int64) {
	e.clock = now
	for i := range e.chargedTo {
		e.chargedTo[i] = 0
	}
}
