// Package smlib is the subpackage side of the phasesafexfix fixture: SM-like
// types whose methods run inside the worker phase of the root package.
package smlib

import "time"

// epochs counts advances globally — a seeded package-level-write violation.
var epochs uint64

// SM is the owned unit: receiver mutation is legal, but writes that traverse
// into a peer instance are not.
//
//fuselint:smowned each SM is advanced by exactly one worker per epoch
type SM struct {
	cycles uint64
	peer   *SM
}

// Cycle is reached from the root's worker phase via a direct method call.
func (sm *SM) Cycle(now int64) {
	sm.cycles++      // receiver of an smowned type: legal
	sm.peer.cycles++ // want `writes through sm.peer into another SM instance`
	epochs++         // want `write to package-level var epochs`
	sm.drift(now)
}

// drift is reachable one hop deeper; the nondeterminism denylist applies
// interprocedurally.
func (sm *SM) drift(now int64) {
	_ = time.Now() // want `time.Now reachable from worker-phase root advancePart`
	sm.scrub(sm.peer, now)
}

// scrub writes through an *SM parameter that is not its receiver: that
// instance belongs to some other worker.
func (sm *SM) scrub(other *SM, now int64) {
	other.cycles = uint64(now) // want `writes through SM-typed variable other`
}

// Cache implements the root package's Ticker interface; the walk must resolve
// the interface call to this method even though no direct call names it.
type Cache struct {
	fills uint64
}

// Tick mutates its receiver but Cache is not annotated smowned.
func (c *Cache) Tick(now int64) {
	c.fills++ // want `method Tick of Cache mutates its receiver`
}
