// Package lockorderfix is the lockorder analyzer fixture: seeded violations
// of all three rules — a lock with no unlock, blocking work and channel
// operations under a held mutex, and a pair of mutexes acquired in both
// relative orders — next to a clean lock/defer-unlock pattern.
package lockorderfix

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	ch  = make(chan int)
)

// fetch stands in for the engine's simulation-running entry points.
//
//fuselint:blocking waits on a full simulation
func fetch() int { return 1 }

// leak locks and forgets to unlock on any path.
func leak() {
	muA.Lock() // want `muA is locked in leak but never unlocked in the same function`
	_ = 1
}

// blockedUnderLock does slow work while holding the mutex.
func blockedUnderLock() {
	muA.Lock()
	_ = fetch() // want `call to blocking fetch while holding muA`
	ch <- 1     // want `channel send while holding muA`
	<-ch        // want `channel receive while holding muA`
	muA.Unlock()
}

// abOrder acquires A then B...
func abOrder() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want `inconsistent lock order: .*muB is acquired while holding .*muA here, but the reverse order occurs at`
	defer muB.Unlock()
}

// ...while baOrder acquires B then A: one of the two orders has to go.
func baOrder() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	defer muA.Unlock()
}

// clean is the pattern the serving layer uses: lock, defer unlock, fast
// straight-line section, no blocking work.
func clean() int {
	muA.Lock()
	defer muA.Unlock()
	return 2
}
