// Package statflowfix is the statflow analyzer fixture: a miniature
// simulation core whose counters either flow to a reader, are annotated
// internal, or leak — plus an instrument subpackage (stats) exercising the
// Inc/Value method classification.
package statflowfix

import "fuse/internal/analysis/testdata/src/statflowfix/stats"

// Core mimics a cache model's counter block.
type Core struct {
	hits   uint64
	misses uint64
	//fuselint:internalstat eviction volume is a debugging aid, not a figure input
	evictions uint64
	//fuselint:internalstat
	stalls uint64 // want `//fuselint:internalstat needs a reason`

	filterHits  stats.Counter
	filterTests stats.Counter
}

// Access increments every counter; only some of them ever flow anywhere.
func (c *Core) Access(hit bool) {
	if hit {
		c.hits++
	}
	c.misses++ // want `counter statflowfix.Core.misses is incremented in the simulation core but never read`
	c.evictions++
	c.stalls += 2
	c.filterHits.Inc()
	c.filterTests.Inc() // want `counter statflowfix.Core.filterTests is incremented in the simulation core but never read`
}

// Hits consumes c.hits: the counter flows to a reader.
func (c *Core) Hits() uint64 { return c.hits }

// FilterHitRate consumes the filterHits instrument via a non-increment
// method; filterTests has no such reader.
func (c *Core) FilterHitRate() float64 { return float64(c.filterHits.Value()) }

// Reset overwrites every counter; plain writes neither produce nor consume.
func (c *Core) Reset() {
	c.hits = 0
	c.misses = 0
	c.evictions = 0
	c.stalls = 0
	c.filterHits.Reset()
	c.filterTests.Reset()
}
