// Package stats is the instrument subpackage of the statflowfix fixture: its
// import path ends in /stats, so its fields are instrument internals (not
// metrics) and its methods classify as increments (Inc) or reads (Value).
package stats

// Counter is a minimal instrument.
type Counter struct {
	n uint64
}

// Inc records one observation.
func (c *Counter) Inc() { c.n++ }

// Value reads the count.
func (c *Counter) Value() uint64 { return c.n }

// Reset clears the count.
func (c *Counter) Reset() { c.n = 0 }
