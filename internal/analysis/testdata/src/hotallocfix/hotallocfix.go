// Package hotallocfix is a hotalloc analyzer fixture: noalloc-annotated
// functions with one violating escape, one allowlisted escape, and one
// genuinely allocation-free body.
package hotallocfix

// Node escapes when boxed or returned by pointer.
type Node struct {
	Value int
	Next  *Node
}

// Bad: returning a fresh pointer forces a heap allocation.
//
//fuselint:noalloc
func Leak(v int) *Node {
	return &Node{Value: v} // want `annotated //fuselint:noalloc but the compiler reports`
}

// Allowed: the identical allocation, blessed by the fixture allowlist.
//
//fuselint:noalloc
func Blessed(v int) *Node {
	return &Node{Value: v}
}

// Good: pure arithmetic over a caller-owned buffer never allocates.
//
//fuselint:noalloc
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Unannotated functions may allocate freely.
func Fresh() *Node { return &Node{} }
