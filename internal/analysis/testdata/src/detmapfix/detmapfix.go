// Package detmapfix is a detmap analyzer fixture: each `want` comment pins
// one finding the analyzer must produce, and the unannotated clean patterns
// pin what it must accept.
package detmapfix

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Bad: raw map iteration, order observable.
func SumKeysBad(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iteration over map m has nondeterministic order`
		keys = append(keys, k)
		if len(keys) > 100 {
			break
		}
	}
	return keys
}

// Good: the collect-then-sort idiom (engine.Runner.Keys pattern).
func SumKeysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Good: justified directive.
func MaxValue(m map[string]int) int {
	max := 0
	//fuselint:ordered max reduction, order-insensitive
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// Bad: a directive with no justification is itself a finding.
func Unjustified(m map[string]int) int {
	n := 0
	//fuselint:ordered
	for range m { // want `//fuselint:ordered needs a justification`
		n++
	}
	return n
}

// Bad: wall clock, global randomness and environment reads in core scope.
func Nondet() int64 {
	t := time.Now().UnixNano()         // want `time.Now in the simulation core`
	t += int64(rand.Intn(10))          // want `global math/rand.Intn in the simulation core`
	if os.Getenv("FUSE_DEBUG") != "" { // want `os.Getenv in the simulation core`
		t++
	}
	return t
}

// Good: an explicitly seeded generator is deterministic.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
