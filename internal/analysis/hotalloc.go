package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Hotalloc is the allocation-budget gate for the simulator's hot path. The
// steady-state event loop runs in a few thousand allocations per simulation
// (a ~49x reduction over the naive implementation, see ROADMAP); a stray
// heap allocation in the per-cycle path silently costs that back. Functions
// annotated `//fuselint:noalloc` (SM advance, L1D access, MSHR handling,
// event-heap operations, the parallel engine's epoch drain) are checked
// against the compiler's own escape analysis: `go build -gcflags=-m` output
// is parsed, and any "escapes to heap" / "moved to heap" diagnostic landing
// inside a noalloc function is a finding — unless it is recorded in the
// golden allowlist (internal/analysis/noalloc_allowlist.json), which exists
// for deliberate, reviewed allocations (e.g. a slice growth that amortises
// to zero).
//
// The check runs in Finish: Run only collects the annotated spans, then a
// single `go build` over the owning packages produces the compiler facts.
// Escape diagnostics replay from the build cache, so repeat runs are cheap.
var Hotalloc = &Analyzer{
	Name:   "hotalloc",
	Doc:    "checks //fuselint:noalloc functions against compiler escape analysis with a golden allowlist",
	Run:    runHotalloc,
	Finish: finishHotalloc,
}

// HotallocAllowlist overrides the allowlist location (set by cmd/fuselint's
// -noalloc-allowlist flag). Empty means <module>/internal/analysis/
// noalloc_allowlist.json, which may be absent (empty allowlist).
var HotallocAllowlist string

// noallocSpan is one annotated function: a file/line range plus the
// human-readable function identity used in allowlist entries and messages.
type noallocSpan struct {
	file      string // absolute path
	startLine int
	endLine   int
	funcID    string // e.g. fuse/internal/sim.(*eventHeap).push
	pkgPath   string
}

type hotallocState struct {
	spans []noallocSpan
}

func hotallocStateOf(prog *Program) *hotallocState {
	st, ok := prog.State["hotalloc"].(*hotallocState)
	if !ok {
		st = &hotallocState{}
		prog.State["hotalloc"] = st
	}
	return st
}

func runHotalloc(pass *Pass) error {
	st := hotallocStateOf(pass.Prog)
	fset := pass.Prog.Fset
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := pass.Pkg.nodeDirective(fset, f, fd.Doc, fd, "noalloc"); !ok {
				continue
			}
			start := fset.Position(fd.Pos())
			end := fset.Position(fd.Body.End())
			st.spans = append(st.spans, noallocSpan{
				file:      filepath.Clean(start.Filename),
				startLine: start.Line,
				endLine:   end.Line,
				funcID:    funcDeclID(pass.Pkg.Path, fd),
				pkgPath:   pass.Pkg.Path,
			})
		}
	}
	return nil
}

// funcDeclID renders the conventional package-qualified function identity,
// e.g. "fuse/internal/gpu.(*SM).Cycle" or "fuse/internal/sim.NewSimulator".
func funcDeclID(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := false
	if s, ok := recv.(*ast.StarExpr); ok {
		star = true
		recv = s.X
	}
	// Strip type parameters (IndexExpr) and grab the base identifier.
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	}
	name := "?"
	if id, ok := recv.(*ast.Ident); ok {
		name = id.Name
	}
	if star {
		return fmt.Sprintf("%s.(*%s).%s", pkgPath, name, fd.Name.Name)
	}
	return fmt.Sprintf("%s.%s.%s", pkgPath, name, fd.Name.Name)
}

// allowEntry is one golden-allowlist record: a function identity plus the
// exact compiler message (position-independent, so line drift does not
// invalidate the allowlist) and the reviewed justification.
type allowEntry struct {
	Func   string `json:"func"`
	Msg    string `json:"msg"`
	Reason string `json:"reason"`
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

func finishHotalloc(prog *Program, report func(Diagnostic)) error {
	st := hotallocStateOf(prog)
	if len(st.spans) == 0 {
		return nil
	}
	allow, err := loadHotallocAllowlist(prog.ModuleDir)
	if err != nil {
		return err
	}

	pkgSet := make(map[string]bool)
	for _, s := range st.spans {
		pkgSet[s.pkgPath] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	// -gcflags=-m applies to the packages named on the command line; escape
	// diagnostics land on stderr and replay from the build cache on repeat
	// runs.
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = prog.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("hotalloc: go build -gcflags=-m: %v\n%s", err, stderr.String())
	}

	used := make(map[int]bool) // indices of allowlist entries that matched
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.ModuleDir, file)
		}
		file = filepath.Clean(file)
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, s := range st.spans {
			if s.file != file || lineNo < s.startLine || lineNo > s.endLine {
				continue
			}
			if i := matchAllow(allow, s.funcID, msg); i >= 0 {
				used[i] = true
				break
			}
			report(Diagnostic{
				Pos:     token.Position{Filename: file, Line: lineNo, Column: col},
				Message: fmt.Sprintf("%s is annotated //fuselint:noalloc but the compiler reports %q; remove the allocation or add a reviewed allowlist entry", s.funcID, msg),
			})
			break
		}
	}

	// A stale allowlist entry means the allocation it blessed is gone —
	// surface it so the golden file shrinks with the code.
	for i, e := range allow {
		if !used[i] {
			report(Diagnostic{
				Pos:     token.Position{Filename: hotallocAllowlistPath(prog.ModuleDir)},
				Message: fmt.Sprintf("stale allowlist entry: %s no longer reports %q; delete it", e.Func, e.Msg),
			})
		}
	}
	return nil
}

func matchAllow(allow []allowEntry, funcID, msg string) int {
	for i, e := range allow {
		if e.Func == funcID && e.Msg == msg {
			return i
		}
	}
	return -1
}

func hotallocAllowlistPath(moduleDir string) string {
	if HotallocAllowlist != "" {
		return HotallocAllowlist
	}
	return filepath.Join(moduleDir, "internal", "analysis", "noalloc_allowlist.json")
}

func loadHotallocAllowlist(moduleDir string) ([]allowEntry, error) {
	path := hotallocAllowlistPath(moduleDir)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && HotallocAllowlist == "" {
			return nil, nil
		}
		return nil, fmt.Errorf("hotalloc: reading allowlist: %w", err)
	}
	var allow []allowEntry
	if err := json.Unmarshal(raw, &allow); err != nil {
		return nil, fmt.Errorf("hotalloc: parsing %s: %w", path, err)
	}
	for _, e := range allow {
		if e.Func == "" || e.Msg == "" || e.Reason == "" {
			return nil, fmt.Errorf("hotalloc: %s: every entry needs func, msg and a reason", path)
		}
	}
	return allow, nil
}
