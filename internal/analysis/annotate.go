package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// Directives are single-line comments of the form
//
//	//fuselint:<name> [free-form justification or arguments]
//
// attached to the declaration, field or statement they govern: in its doc
// comment, as a trailing comment on the same line, or on the line directly
// above. They are the one escape hatch every analyzer shares — each use
// states its reason in the source, where reviewers see it.
const directivePrefix = "//fuselint:"

// Directive is one parsed //fuselint: comment.
type Directive struct {
	Name string // e.g. "ordered", "noalloc"
	Args string // the rest of the line, trimmed
	Pos  token.Pos
	Line int // the line the comment itself sits on
	// Standalone is true when the comment is alone on its line: only then
	// does it govern the line below. A trailing directive (after code)
	// governs its own line exclusively — otherwise `a T //fuselint:x`
	// would silently annotate the next field too.
	Standalone bool
}

// fileDirectives scans (and caches) every fuselint directive of a file.
func (pkg *Package) fileDirectives(fset *token.FileSet, f *ast.File) []Directive {
	filename := fset.Position(f.Pos()).Filename
	if pkg.directives == nil {
		pkg.directives = make(map[string][]Directive)
	}
	if ds, ok := pkg.directives[filename]; ok {
		return ds
	}
	var srcLines []string
	if raw, err := os.ReadFile(filename); err == nil {
		srcLines = strings.Split(string(raw), "\n")
	}
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			name, args, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			standalone := true
			if pos.Line-1 < len(srcLines) && pos.Column > 1 {
				before := srcLines[pos.Line-1]
				if pos.Column-1 <= len(before) {
					standalone = strings.TrimSpace(before[:pos.Column-1]) == ""
				}
			}
			ds = append(ds, Directive{
				Name:       strings.TrimSpace(name),
				Args:       strings.TrimSpace(args),
				Pos:        c.Pos(),
				Line:       pos.Line,
				Standalone: standalone,
			})
		}
	}
	pkg.directives[filename] = ds
	return ds
}

// directiveAt returns the named directive governing a node that starts on
// `line` of `f`: a directive written on the same line (trailing comment) or on
// the line directly above.
func (pkg *Package) directiveAt(fset *token.FileSet, f *ast.File, line int, name string) (Directive, bool) {
	for _, d := range pkg.fileDirectives(fset, f) {
		if d.Name == name && (d.Line == line || (d.Line == line-1 && d.Standalone)) {
			return d, true
		}
	}
	return Directive{}, false
}

// nodeDirective returns the named directive governing a node: in the doc
// comment group (if the caller passes one), trailing on the node's first
// line, or on the line above the node (which also covers one-line doc
// comments when the parser attached them elsewhere).
func (pkg *Package) nodeDirective(fset *token.FileSet, f *ast.File, doc *ast.CommentGroup, node ast.Node, name string) (Directive, bool) {
	if doc != nil {
		for _, c := range doc.List {
			if strings.HasPrefix(c.Text, directivePrefix) {
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				dname, args, _ := strings.Cut(rest, " ")
				if strings.TrimSpace(dname) == name {
					return Directive{
						Name: name,
						Args: strings.TrimSpace(args),
						Pos:  c.Pos(),
						Line: fset.Position(c.Pos()).Line,
					}, true
				}
			}
		}
	}
	return pkg.directiveAt(fset, f, fset.Position(node.Pos()).Line, name)
}

// fileOf returns the *ast.File of the package containing the position.
func (pkg *Package) fileOf(fset *token.FileSet, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
