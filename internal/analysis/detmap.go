package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detmap pins the repository's determinism guarantee: byte-identical figure
// tables, store keys and traces for every engine, worker count and host. Two
// rules:
//
//  1. Everywhere: `range` over a map is flagged — Go randomises map iteration
//     order, so any map-ordered loop that can reach output, counters or event
//     submission is a nondeterminism bug. A loop is accepted when the
//     collected keys are demonstrably sorted afterwards in the same block
//     (the engine.Runner.Keys pattern), or when it carries a justified
//     `//fuselint:ordered <reason>` directive (e.g. an order-insensitive
//     reduction such as a max, or writes to index-addressed slots).
//
//  2. In the simulation core (every fuse/internal/... package): calls to
//     time.Now/Since/Until, the global math/rand generators and
//     os.Getenv/Environ are flagged unconditionally — simulation results
//     must be a function of (config, workload, options) and nothing else.
//     The command-line front ends (cmd/..., examples/...) may read clocks
//     for progress lines; the core may not.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "flags nondeterministic map iteration and wall-clock/random/env reads in the simulation core",
	Run:  runDetmap,
}

// detCoreScope reports whether a package's import path is simulation core:
// everything under internal/ of the fuse module. The analysis package itself
// is exempt — it shells out to the go tool and is not part of any simulation
// path — but its testdata fixtures are not, so they can exercise the rule.
func detCoreScope(path string) bool {
	if strings.Contains(path, "internal/analysis") && !strings.Contains(path, "testdata") {
		return false
	}
	return strings.Contains(path, "internal/")
}

func runDetmap(pass *Pass) error {
	info := pass.Pkg.Info
	core := detCoreScope(pass.Pkg.Path)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			case *ast.CallExpr:
				if core {
					checkNondetCall(pass, info, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `for ... := range m` when m is map-typed, unless the
// loop is justified or feeds a sort.
func checkMapRange(pass *Pass, f *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	line := pass.Prog.Fset.Position(rng.Pos()).Line
	if d, ok := pass.Pkg.directiveAt(pass.Prog.Fset, f, line, "ordered"); ok {
		if d.Args == "" {
			pass.Reportf(rng.Pos(), "//fuselint:ordered needs a justification (why is map order harmless here?)")
		}
		return
	}
	if sortedAfter(pass, f, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "iteration over map %s has nondeterministic order; sort the collected keys, restructure, or annotate //fuselint:ordered <reason>",
		exprString(rng.X))
}

// sortedAfter recognises the collect-then-sort idiom: the range body only
// grows slice variables (v = append(v, ...)), and a later statement in the
// same enclosing block sorts one of those variables (sort.Slice, sort.Strings,
// sort.Ints, slices.Sort, slices.SortFunc, ...). Map order then cannot be
// observed.
func sortedAfter(pass *Pass, f *ast.File, rng *ast.RangeStmt) bool {
	info := pass.Pkg.Info
	// Collect the slice variables the loop appends to; bail out if the body
	// does anything other than append-to-slice assignments.
	appended := make(map[types.Object]bool)
	clean := true
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			clean = false
			break
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			clean = false
			break
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			clean = false
			break
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			clean = false
			break
		}
		if obj := info.ObjectOf(lhs); obj != nil {
			appended[obj] = true
		}
	}
	if !clean || len(appended) == 0 {
		return false
	}
	// Find the statement list holding the range and scan what follows it.
	block := enclosingBlock(f, rng)
	if block == nil {
		return false
	}
	seen := false
	for _, stmt := range block {
		if !seen {
			if containsNode(stmt, rng) {
				seen = true
			}
			continue
		}
		if callsSortOn(info, stmt, appended) {
			return true
		}
	}
	return false
}

// enclosingBlock returns the statement list directly containing the node.
func enclosingBlock(f *ast.File, target ast.Node) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, stmt := range list {
			if stmt == target {
				out = list
				return false
			}
		}
		return true
	})
	return out
}

func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// callsSortOn reports whether the statement calls a recognised sort function
// on one of the given variables.
func callsSortOn(info *types.Info, stmt ast.Stmt, vars map[types.Object]bool) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.ObjectOf(pkgID).(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort", "slices":
	default:
		return false
	}
	if !strings.HasPrefix(sel.Sel.Name, "Sort") &&
		!strings.HasPrefix(sel.Sel.Name, "Slice") &&
		sel.Sel.Name != "Strings" && sel.Sel.Name != "Ints" && sel.Sel.Name != "Float64s" {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	return vars[info.ObjectOf(arg)]
}

// nondetFuncs lists the forbidden calls per package path. For math/rand (v1
// and v2) only the global, process-seeded entry points are forbidden —
// rand.New with an explicit seeded source is deterministic and allowed.
var nondetAllowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func checkNondetCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if what, why, ok := nondetCall(info, call); ok {
		pass.Reportf(call.Pos(), "%s in the simulation core: %s", what, why)
	}
}

// nondetCall classifies a call against the nondeterminism denylist and
// returns the offending call ("time.Now") and the reason it is forbidden.
// Shared by detmap's per-package scan and phasesafe's interprocedural
// worker-phase walk.
func nondetCall(info *types.Info, call *ast.CallExpr) (what, why string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	pkgID, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pkgName, okPkg := info.ObjectOf(pkgID).(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	name := sel.Sel.Name
	switch pkgName.Imported().Path() {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			return "time." + name, "results must not depend on the wall clock", true
		}
	case "math/rand", "math/rand/v2":
		if !nondetAllowedRand[name] {
			return "global math/rand." + name, "use a seeded rand.New(rand.NewSource(...)) derived from Options.Seed", true
		}
	case "os":
		if name == "Getenv" || name == "Environ" || name == "LookupEnv" {
			return "os." + name, "results must not depend on the environment", true
		}
	}
	return "", "", false
}

// exprString renders a short source form of simple expressions for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return "expression"
	}
}
