package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture tests are analysistest-style: each package under testdata/src
// carries `// want \`regexp\`` comments on the lines where an analyzer must
// report, and the test fails on any unmatched want or unexpected diagnostic.
// The fixtures double as the proof that the CI gate actually fires: every
// analyzer has at least one deliberately seeded violation.

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture type-checks one testdata fixture — the named package and every
// subdirectory package it contains (the `...` wildcard does not expand under
// testdata, so the directories are enumerated explicitly) — and returns its
// program plus the parsed want expectations from every .go file in the tree.
func loadFixture(t *testing.T, name string) (*Program, []*expectation) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgDirs := make(map[string]bool)
	var goFiles []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			pkgDirs[filepath.Dir(path)] = true
			goFiles = append(goFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var patterns []string
	for pd := range pkgDirs {
		patterns = append(patterns, "./"+filepath.ToSlash(pd))
	}
	sort.Strings(patterns)
	prog, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	var wants []*expectation
	for _, path := range goFiles {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", path, line, err)
			}
			wants = append(wants, &expectation{file: abs, line: line, re: re})
		}
		f.Close()
	}
	return prog, wants
}

// runFixture executes one analyzer over a fixture and diffs the findings
// against the want comments.
func runFixture(t *testing.T, analyzerName, fixture string) {
	t.Helper()
	var analyzer *Analyzer
	for _, a := range All() {
		if a.Name == analyzerName {
			analyzer = a
		}
	}
	if analyzer == nil {
		t.Fatalf("no analyzer %q", analyzerName)
	}
	prog, wants := loadFixture(t, fixture)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments: it would not prove the gate fires", fixture)
	}
	diags, err := Run(prog, []*Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzerName, fixture, err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && sameFile(w.file, d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	if a == b {
		return true
	}
	ra, err1 := filepath.EvalSymlinks(a)
	rb, err2 := filepath.EvalSymlinks(b)
	return err1 == nil && err2 == nil && ra == rb
}

func TestDetmapFixture(t *testing.T)   { runFixture(t, "detmap", "detmapfix") }
func TestKeydriftFixture(t *testing.T) { runFixture(t, "keydrift", "keydriftfix") }

func TestHotallocFixture(t *testing.T) {
	allowlist, err := filepath.Abs(filepath.Join("testdata", "src", "hotallocfix", "allowlist.json"))
	if err != nil {
		t.Fatal(err)
	}
	old := HotallocAllowlist
	HotallocAllowlist = allowlist
	defer func() { HotallocAllowlist = old }()
	runFixture(t, "hotalloc", "hotallocfix")
}

func TestPhasesafeFixture(t *testing.T) { runFixture(t, "phasesafe", "phasesafefix") }

// TestPhasesafeCrossPackageFixture proves the worker-phase walk crosses
// package boundaries and interfaces: every seeded violation lives in a
// subpackage the root only reaches through calls.
func TestPhasesafeCrossPackageFixture(t *testing.T) { runFixture(t, "phasesafe", "phasesafexfix") }

func TestStatflowFixture(t *testing.T)  { runFixture(t, "statflow", "statflowfix") }
func TestCtxflowFixture(t *testing.T)   { runFixture(t, "ctxflow", "ctxflowfix") }
func TestLockorderFixture(t *testing.T) { runFixture(t, "lockorder", "lockorderfix") }

// TestRepoIsClean runs the full suite over the real tree — the same gate CI
// enforces with `go run ./cmd/fuselint ./...`. Any regression against the
// repo's invariants (a new map-ordered loop, an unkeyed config field, a hot-
// path allocation, a worker-phase write to serial state) fails this test.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog, err := Load(".", "fuse/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); run `go run ./cmd/fuselint ./...` locally", len(diags))
	}
}

// TestDirectiveScoping pins the trailing-vs-standalone attribution rule: a
// trailing directive governs only its own line, never the next one (the
// chargedTo field in sim.Simulator must not inherit wake's serialonly).
func TestDirectiveScoping(t *testing.T) {
	prog, err := Load(".", "fuse/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	pkg := prog.Packages[0]
	var got []string
	for _, f := range pkg.Files {
		for _, d := range pkg.fileDirectives(prog.Fset, f) {
			if d.Name == "serialonly" && d.Standalone {
				got = append(got, fmt.Sprintf("%s: standalone serialonly at line %d", prog.Fset.Position(d.Pos).Filename, d.Line))
			}
		}
	}
	if len(got) != 0 {
		t.Errorf("serialonly directives in sim are trailing by convention; standalone ones risk annotating the wrong field:\n%s", strings.Join(got, "\n"))
	}
}

// TestDirectiveScopingAcrossPackages pins that directives belong to the
// package whose file declares them: the smowned annotation in the
// phasesafexfix fixture lives on smlib.SM, so it must be visible when
// scanning smlib and invisible from the root fixture package — a leak in
// either direction would let one package annotate away another package's
// violations.
func TestDirectiveScopingAcrossPackages(t *testing.T) {
	prog, _ := loadFixture(t, "phasesafexfix")
	smowned := make(map[string]int)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range pkg.fileDirectives(prog.Fset, f) {
				if d.Name == "smowned" {
					smowned[pkg.Path]++
				}
			}
		}
	}
	const root = "fuse/internal/analysis/testdata/src/phasesafexfix"
	const sub = root + "/smlib"
	if smowned[sub] != 1 {
		t.Errorf("smlib declares 1 smowned directive, scan found %d", smowned[sub])
	}
	if smowned[root] != 0 {
		t.Errorf("the root fixture package declares no smowned directives, scan found %d — a directive leaked across the package boundary", smowned[root])
	}
}
