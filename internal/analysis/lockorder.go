package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockorder pins mutex discipline in the serving layer (engine, store,
// cmd/fuseserve). Three rules:
//
//  1. Pairing — a function that calls Lock/RLock on a mutex must also call
//     the matching Unlock/RUnlock (inline or deferred) somewhere in its
//     body; a lock with no unlock in the same function is a leak waiting
//     for a panic or an early return.
//  2. No blocking under lock — while a mutex is held, the function must not
//     call a function annotated `//fuselint:blocking` (RunBatch, Get — the
//     ones that wait on simulations or I/O) or perform a channel
//     send/receive: a blocked goroutine holding the runner mutex stalls
//     every other request.
//  3. Consistent order — across the whole program, two mutexes must always
//     be acquired in the same relative order; an A-then-B function
//     coexisting with a B-then-A function is a deadlock the race detector
//     only finds when the schedules collide.
//
// The per-function walk is a linearisation of the statement order (events
// sorted by source position), which over- and under-approximates branchy
// control flow symmetrically; the serving layer's lock sections are short
// and straight-line, which is exactly what this check keeps true.
var Lockorder = &Analyzer{
	Name:   "lockorder",
	Doc:    "requires unlock pairing, no blocking calls under lock, and a consistent global mutex acquisition order in engine, store and fuseserve",
	Run:    runLockorder,
	Finish: finishLockorder,
}

// lockorderScope matches ctxflowScope: the serving layer plus fixtures.
func lockorderScope(path string) bool { return ctxflowScope(path) }

// lockEvent is one mutex- or blocking-relevant operation in a function,
// ordered by source position.
type lockEvent struct {
	kind     string // "lock", "unlock", "deferunlock", "blocking", "chanop"
	id       string // per-function mutex identity (rendered source chain)
	typeID   string // program-wide identity ("pkg.Struct.field" or "pkg.var")
	pos      token.Pos
	detail   string // callee / operation for messages
	readLock bool   // RLock/RUnlock
}

// lockPair is one observed "acquired b while holding a" edge.
type lockPair struct{ first, second string }

type lockorderState struct {
	pairs map[lockPair][]token.Position
}

func lockorderStateOf(prog *Program) *lockorderState {
	st, ok := prog.State["lockorder"].(*lockorderState)
	if !ok {
		st = &lockorderState{pairs: make(map[lockPair][]token.Position)}
		prog.State["lockorder"] = st
	}
	return st
}

func runLockorder(pass *Pass) error {
	if !lockorderScope(pass.Pkg.Path) {
		return nil
	}
	idx := xpkgOf(pass.Prog)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFunc(pass, idx, fd)
		}
	}
	return nil
}

// mutexMethod classifies a call as a sync mutex operation and returns the
// receiver expression.
func mutexMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return nil, "", false
	}
	fn, okFn := info.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "Unlock", "RUnlock":
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

// mutexIDs renders the per-function and program-wide identities of a mutex
// expression.
func mutexIDs(pass *Pass, recv ast.Expr) (id, typeID string) {
	id = exprString(recv)
	typeID = id
	if sel, ok := ast.Unparen(recv).(*ast.SelectorExpr); ok {
		if fid := selFieldID(pass.Pkg.Info, sel); fid != "" {
			typeID = fid
		} else if obj := pass.Pkg.Info.ObjectOf(sel.Sel); isPkgLevelVar(obj) {
			typeID = obj.Pkg().Path() + "." + obj.Name()
		}
	} else if ident, ok := ast.Unparen(recv).(*ast.Ident); ok {
		if obj := pass.Pkg.Info.ObjectOf(ident); isPkgLevelVar(obj) {
			typeID = obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return id, typeID
}

// checkLockFunc collects the lock events of one function and enforces
// pairing and no-blocking-under-lock; acquisition pairs are recorded for the
// program-wide order check.
func checkLockFunc(pass *Pass, idx *xpkgIndex, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var events []lockEvent

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if recv, name, ok := mutexMethod(info, n.Call); ok && (name == "Unlock" || name == "RUnlock") {
				id, tid := mutexIDs(pass, recv)
				events = append(events, lockEvent{kind: "deferunlock", id: id, typeID: tid, pos: n.Pos(), readLock: name == "RUnlock"})
			}
			return false // the deferred call itself runs at exit, not here
		case *ast.CallExpr:
			if recv, name, ok := mutexMethod(info, n); ok {
				id, tid := mutexIDs(pass, recv)
				switch name {
				case "Lock", "RLock", "TryLock":
					events = append(events, lockEvent{kind: "lock", id: id, typeID: tid, pos: n.Pos(), readLock: name == "RLock"})
				case "Unlock", "RUnlock":
					events = append(events, lockEvent{kind: "unlock", id: id, typeID: tid, pos: n.Pos(), readLock: name == "RUnlock"})
				}
				return true
			}
			// A call to a //fuselint:blocking-annotated function.
			var callee *types.Func
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				callee, _ = info.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				callee, _ = info.Uses[fun.Sel].(*types.Func)
			}
			if callee != nil {
				if fi, ok := idx.byID[funcID(callee)]; ok {
					if _, ok := fi.Pkg.nodeDirective(pass.Prog.Fset, fi.File, fi.Decl.Doc, fi.Decl, "blocking"); ok {
						events = append(events, lockEvent{kind: "blocking", pos: n.Pos(), detail: callee.Name()})
					}
				}
			}
		case *ast.SendStmt:
			events = append(events, lockEvent{kind: "chanop", pos: n.Pos(), detail: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, lockEvent{kind: "chanop", pos: n.Pos(), detail: "channel receive"})
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	st := lockorderStateOf(pass.Prog)
	held := make(map[string]lockEvent) // id -> the lock event that acquired it
	locked := make(map[string]token.Pos)
	unlocked := make(map[string]bool)
	var order []string // deterministic iteration over held
	for _, ev := range events {
		switch ev.kind {
		case "lock":
			for _, heldID := range order {
				if h, ok := held[heldID]; ok && h.typeID != ev.typeID {
					pair := lockPair{h.typeID, ev.typeID}
					st.pairs[pair] = append(st.pairs[pair], pass.Prog.Fset.Position(ev.pos))
				}
			}
			if _, ok := held[ev.id]; !ok {
				order = append(order, ev.id)
			}
			held[ev.id] = ev
			if _, ok := locked[ev.id]; !ok {
				locked[ev.id] = ev.pos
			}
		case "unlock":
			delete(held, ev.id)
			unlocked[ev.id] = true
		case "deferunlock":
			unlocked[ev.id] = true // held until return, but paired
		case "blocking", "chanop":
			for _, heldID := range order {
				if _, ok := held[heldID]; !ok {
					continue
				}
				what := ev.detail
				if ev.kind == "blocking" {
					what = "call to blocking " + ev.detail
				}
				pass.Reportf(ev.pos, "%s while holding %s: release the lock first — a blocked goroutine holding it stalls every other request", what, heldID)
			}
		}
	}
	var lockedIDs []string
	//fuselint:ordered the ids are sorted before reporting
	for id := range locked {
		lockedIDs = append(lockedIDs, id)
	}
	sort.Strings(lockedIDs)
	for _, id := range lockedIDs {
		if !unlocked[id] {
			pass.Reportf(locked[id], "%s is locked in %s but never unlocked in the same function: pair it with an Unlock (deferred or inline)", id, fd.Name.Name)
		}
	}
}

// finishLockorder flags pairs of mutexes acquired in both relative orders
// anywhere in the program.
func finishLockorder(prog *Program, report func(Diagnostic)) error {
	st := lockorderStateOf(prog)
	var keys []lockPair
	//fuselint:ordered pairs are sorted before reporting
	for p := range st.pairs {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].first != keys[j].first {
			return keys[i].first < keys[j].first
		}
		return keys[i].second < keys[j].second
	})
	reported := make(map[lockPair]bool)
	for _, p := range keys {
		rev := lockPair{p.second, p.first}
		if reported[p] || reported[rev] {
			continue
		}
		if _, ok := st.pairs[rev]; !ok {
			continue
		}
		reported[p], reported[rev] = true, true
		report(Diagnostic{
			Pos: st.pairs[p][0],
			Message: fmt.Sprintf("inconsistent lock order: %s is acquired while holding %s here, but the reverse order occurs at %s — pick one global order",
				shortFieldID(p.second), shortFieldID(p.first), st.pairs[rev][0]),
		})
	}
	return nil
}
