package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader builds a type-checked Program from `go list` output using only
// the standard library: `go list -deps -export` compiles every dependency and
// reports the export-data file of each package, so the target packages can be
// parsed from source and type-checked against compiled import data without
// golang.org/x/tools (which this module deliberately does not depend on).

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Load lists the packages matching the patterns (resolved relative to dir),
// parses the non-dependency ones from source with comments, and type-checks
// them against the export data `go list -export` produced. Test files are not
// part of `go list`'s GoFiles, so analyzers see exactly the shipping code.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		State:  make(map[string]any),
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if prog.ModuleDir == "" && p.Module != nil {
			prog.ModuleDir = p.Module.Dir
			prog.ModulePath = p.Module.Path
		}
		pkg := &Package{Path: p.ImportPath, Dir: p.Dir}
		for _, name := range p.GoFiles {
			filename := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(prog.Fset, filename, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		pkg.Types = tpkg
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[p.ImportPath] = pkg
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %s", strings.Join(patterns, " "))
	}
	return prog, nil
}
