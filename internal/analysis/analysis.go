// Package analysis is fuselint's static-analysis suite: a small, dependency-
// free framework in the spirit of golang.org/x/tools/go/analysis (which is
// intentionally not imported — the module has no third-party dependencies)
// plus the seven analyzers that pin this repository's load-bearing
// invariants at compile time:
//
//   - detmap — determinism: no map-ordered iteration, wall clocks, global
//     randomness or environment reads on any path that can reach simulation
//     output (see detmap.go);
//   - keydrift — store-key completeness: every field of the structs that feed
//     the content-addressed result-store key is either serialised into the
//     key or explicitly annotated execution-only (see keydrift.go);
//   - hotalloc — allocation budget: functions annotated //fuselint:noalloc
//     are checked against the compiler's escape analysis, with a golden
//     allowlist for the few deliberate allocations (see hotalloc.go);
//   - phasesafe — parallel-phase safety, whole-program: code reachable from
//     the parallel engine's worker-phase roots — across packages, through
//     in-repo interfaces — must not touch serial-only simulator state,
//     package-level variables, non-SM-owned receivers or peer-SM instances
//     (see phasesafe.go and the call-graph substrate in xpkg.go);
//   - statflow — metric conservation: every counter the simulation core
//     increments must be read (aggregated, rendered or exposed) or annotated
//     //fuselint:internalstat, and every sim.Result field must survive into
//     the real JSON encoding (see statflow.go);
//   - ctxflow — cancellation discipline in the serving layer: contexts are
//     threaded to <Name>Context siblings, no bare sleeps, channel operations
//     guarded by ctx.Done() selects, handlers derive from r.Context() (see
//     ctxflow.go);
//   - lockorder — mutex discipline in the serving layer: unlock pairing, no
//     blocking work under a held lock, one global acquisition order (see
//     lockorder.go).
//
// The analyzers are annotation-driven. The directives (all of the form
// "//fuselint:<name> [args]") are documented in the repository README under
// "Invariants & annotations".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is one loaded, type-checked set of packages — the unit a fuselint
// run analyses.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// ModuleDir and ModulePath identify the main module of the loaded
	// packages (the directory `go build` runs in for the escape-analysis
	// pass).
	ModuleDir  string
	ModulePath string
	// State carries per-analyzer facts from the per-package Run passes to
	// the program-wide Finish pass, keyed by analyzer name.
	State map[string]any

	byPath map[string]*Package
}

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives map[string][]Directive // filename -> directives, lazily built
}

// Lookup returns the loaded package with the given import path, if any.
func (p *Program) Lookup(path string) (*Package, bool) {
	pkg, ok := p.byPath[path]
	return pkg, ok
}

// Analyzer is one fuselint check. Run is invoked once per loaded package;
// Finish, when non-nil, once per program after every Run (cross-package and
// out-of-band checks — e.g. hotalloc's compiler pass — live there).
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass) error
	Finish func(*Program, func(Diagnostic)) error
}

// Pass hands one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	report   func(Diagnostic)
}

// Diagnostic is one finding, with a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every package of the program and returns
// the findings sorted by position. The error is reserved for analyzer
// failures (a broken pass), not findings.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		if err := a.Finish(prog, func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full fuselint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detmap, Keydrift, Hotalloc, Phasesafe, Statflow, Ctxflow, Lockorder}
}
