package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ctxflow pins cancellation discipline in the serving layer (engine, store,
// fault, cmd/fuseserve) — the packages the ROADMAP's distributed fleet and
// autotuner-as-a-service put under real concurrent traffic. A context that
// stops flowing is a request that cannot be cancelled. Rules 1–4 apply to
// every function that receives a context.Context (closures inherit the
// enclosing function's context-awareness); rule 5 applies to functions that
// do not:
//
//  1. A call to a function with a `<Name>Context` sibling that accepts a
//     context must use the sibling (sim.Run where RunContext exists).
//  2. No bare time.Sleep: select on ctx.Done() with a timer instead.
//  3. Channel sends and receives must sit in a `select` that also has a
//     ctx.Done() case; a deliberate bare operation carries
//     `//fuselint:noctx <reason>` (e.g. a bounded drain of an
//     always-closed channel).
//  4. HTTP handlers (any function taking *http.Request) must derive their
//     context from r.Context(), never context.Background()/TODO().
//  5. A timed wait inside a loop — time.Sleep, or a receive of a time.Time
//     channel (timer/ticker) outside a ctx.Done() select — in a function
//     with no context parameter is an uncancellable backoff/polling loop:
//     thread a context through, or annotate //fuselint:noctx <reason>.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "requires context threading (Context-sibling calls, no bare sleeps, channel ops or retry loops) in engine, store, fault, cluster, fuseserve and fuseworker",
	Run:  runCtxflow,
}

// ctxflowScope limits the analyzer to the serving layer; testdata stays in
// scope so the fixture can exercise the rules.
func ctxflowScope(path string) bool {
	return strings.Contains(path, "internal/engine") ||
		strings.Contains(path, "internal/store") ||
		strings.Contains(path, "internal/fault") ||
		strings.Contains(path, "internal/cluster") ||
		strings.Contains(path, "cmd/fuseserve") ||
		strings.Contains(path, "cmd/fuseworker") ||
		strings.Contains(path, "testdata")
}

func runCtxflow(pass *Pass) error {
	if !ctxflowScope(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, f, fd)
			checkTimedLoops(pass, f, fd)
		}
	}
	return nil
}

// isCtxType reports whether the type is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// isHTTPRequestPtr reports whether the type is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request"
}

// sigTakesCtx reports whether any parameter of the signature is a
// context.Context.
func sigTakesCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkCtxFunc applies the four rules to one function declaration.
func checkCtxFunc(pass *Pass, f *ast.File, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	fset := pass.Prog.Fset

	hasCtx := false
	isHandler := false
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if tv, ok := info.Types[field.Type]; ok {
				if isCtxType(tv.Type) {
					hasCtx = true
				}
				if isHTTPRequestPtr(tv.Type) {
					isHandler = true
				}
			}
		}
	}
	if !hasCtx && !isHandler {
		return
	}

	// guarded collects every node inside the comm statement of a select
	// clause whose select also has a ctx.Done() case: channel operations
	// there are cancellation-aware by construction.
	guarded := selectGuardedNodes(info, fd.Body)

	// escaped reports (and enforces the mandatory reason of) a
	// //fuselint:noctx directive on the offending line.
	escaped := func(n ast.Node) bool {
		line := fset.Position(n.Pos()).Line
		d, ok := pass.Pkg.directiveAt(fset, f, line, "noctx")
		if !ok {
			return false
		}
		if d.Args == "" {
			pass.Reportf(n.Pos(), "//fuselint:noctx needs a reason (why must this stay context-free?)")
		}
		return true
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCtxCall(pass, f, n, hasCtx, isHandler, escaped)
		case *ast.SendStmt:
			if hasCtx && !guarded[n] && !escaped(n) {
				pass.Reportf(n.Pos(), "channel send without cancellation in context-aware function %s: select on ctx.Done() too, or annotate //fuselint:noctx <reason>", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && hasCtx && !guarded[n] && !escaped(n) {
				pass.Reportf(n.Pos(), "channel receive without cancellation in context-aware function %s: select on ctx.Done() too, or annotate //fuselint:noctx <reason>", fd.Name.Name)
			}
		}
		return true
	})
}

// checkTimedLoops applies rule 5: in a function with no context parameter, a
// time.Sleep call or a timer-channel receive inside a for/range loop is an
// uncancellable backoff or polling loop. Context-aware functions are exempt —
// rules 2 and 3 already govern every wait they contain.
func checkTimedLoops(pass *Pass, f *ast.File, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	fset := pass.Prog.Fset

	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if tv, ok := info.Types[field.Type]; ok && isCtxType(tv.Type) {
				return
			}
		}
	}

	// A wait already inside a select with a ctx.Done() case (a context
	// reaching the function some other way: a field, a captured variable)
	// is cancellation-aware and exempt.
	guarded := selectGuardedNodes(info, fd.Body)

	escaped := func(n ast.Node) bool {
		line := fset.Position(n.Pos()).Line
		d, ok := pass.Pkg.directiveAt(fset, f, line, "noctx")
		if !ok {
			return false
		}
		if d.Args == "" {
			pass.Reportf(n.Pos(), "//fuselint:noctx needs a reason (why must this stay context-free?)")
		}
		return true
	}

	// Collect offending waits into a set first: nested loops would otherwise
	// visit (and report) the same node once per enclosing loop.
	seen := make(map[ast.Node]bool)
	var offending []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if fun, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
					if callee, ok := info.Uses[fun.Sel].(*types.Func); ok &&
						callee.Pkg() != nil && callee.Pkg().Path() == "time" && callee.Name() == "Sleep" {
						if !seen[m] {
							seen[m] = true
							offending = append(offending, m)
						}
					}
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !guarded[m] && isTimeChanRecv(info, m) {
					if !seen[m] {
						seen[m] = true
						offending = append(offending, m)
					}
				}
			}
			return true
		})
		return true
	})
	for _, n := range offending {
		if !escaped(n) {
			pass.Reportf(n.Pos(), "timed wait in a loop in context-free function %s: an uncancellable backoff/polling loop — thread a context and select on ctx.Done(), or annotate //fuselint:noctx <reason>", fd.Name.Name)
		}
	}
}

// selectGuardedNodes collects every node inside the comm statement of a
// select clause whose select also has a ctx.Done() case.
func selectGuardedNodes(info *types.Info, body *ast.BlockStmt) map[ast.Node]bool {
	guarded := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDone := false
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if fun, ok := call.Fun.(*ast.SelectorExpr); ok && fun.Sel.Name == "Done" {
						if tv, ok := info.Types[fun.X]; ok && isCtxType(tv.Type) {
							hasDone = true
						}
					}
				}
				return true
			})
		}
		if !hasDone {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					guarded[m] = true
					return true
				})
			}
		}
		return true
	})
	return guarded
}

// isTimeChanRecv reports whether the receive reads from a time.Time channel
// (time.Timer.C, time.Ticker.C, time.After).
func isTimeChanRecv(info *types.Info, recv *ast.UnaryExpr) bool {
	tv, ok := info.Types[recv.X]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	named, ok := ch.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Time"
}

// checkCtxCall applies rules 1 (Context sibling), 2 (time.Sleep) and 4
// (context.Background in handlers) to one call.
func checkCtxCall(pass *Pass, f *ast.File, call *ast.CallExpr, hasCtx, isHandler bool, escaped func(ast.Node) bool) {
	info := pass.Pkg.Info

	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() == nil {
		return
	}
	pkgPath := callee.Pkg().Path()

	if isHandler && pkgPath == "context" && (callee.Name() == "Background" || callee.Name() == "TODO") {
		pass.Reportf(call.Pos(), "context.%s in an HTTP handler: derive the context from r.Context() so client disconnects cancel the work", callee.Name())
		return
	}
	if !hasCtx {
		return
	}
	if pkgPath == "time" && callee.Name() == "Sleep" {
		if !escaped(call) {
			pass.Reportf(call.Pos(), "time.Sleep in a context-aware function: select on ctx.Done() and a timer instead, or annotate //fuselint:noctx <reason>")
		}
		return
	}

	sig, ok := callee.Type().(*types.Signature)
	if !ok || sigTakesCtx(sig) {
		return // already threads a context
	}
	sibling := ctxSibling(callee, sig)
	if sibling == "" {
		return
	}
	if !escaped(call) {
		pass.Reportf(call.Pos(), "call to %s drops the context: %s exists and accepts one — thread ctx through, or annotate //fuselint:noctx <reason>",
			callee.Name(), sibling)
	}
}

// ctxSibling returns the name of a `<Name>Context` variant of the callee
// that accepts a context.Context — on the same receiver type for methods, in
// the same package scope for functions — or "".
func ctxSibling(callee *types.Func, sig *types.Signature) string {
	cand := callee.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), cand)
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && sigTakesCtx(msig) {
				return recvDisplayName(recv.Type()) + "." + cand
			}
		}
		return ""
	}
	if obj := callee.Pkg().Scope().Lookup(cand); obj != nil {
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && sigTakesCtx(msig) {
				return callee.Pkg().Name() + "." + cand
			}
		}
	}
	return ""
}

// recvDisplayName renders a short receiver type name for messages.
func recvDisplayName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
