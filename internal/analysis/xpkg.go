package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The cross-package substrate: a program-wide function index and an
// inter-procedural call graph that the whole-program analyzers (phasesafe,
// statflow, lockorder) walk.
//
// Identity across type-check universes. Each source package is type-checked
// against compiled export data, so the *types.Func a caller package sees for
// an imported function is a different object from the one the callee's own
// source-checked package defines. The index therefore keys every function by
// a stable string ID — "pkg/path.Name" or "pkg/path.(*Recv).Name" — computed
// identically from either universe, and the same convention is used for
// struct fields ("pkg/path.Struct.Field").
//
// Interface calls. A call through an interface declared in a loaded package
// resolves to every loaded named type whose declared method-name set covers
// the interface — conservative name-based matching rather than
// types.Implements, because signature identity does not survive the
// source-vs-export-data universe split. Over-approximating the callee set
// only adds edges, which is the safe direction for a reachability proof.
// Interfaces declared outside the program (error, io.Reader, ...) are not
// resolved: the invariants guarded here live at the repo's own composition
// joints (trace.Source, trace.Workload, core.L1D, store.Cache,
// dram.Backend).

// funcInfo is one source-declared function or method.
type funcInfo struct {
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	ID   string
}

// xpkgIndex is the program-wide view, built once per Run and cached in
// Program.State.
type xpkgIndex struct {
	prog *Program
	// byID maps the stable function ID to its declaration.
	byID map[string]*funcInfo
	// methodsOf maps "pkg/path.TypeName" to the type's declared methods by
	// name (explicit declarations only; promoted methods from embedding are
	// not indexed — none of the repo's interface implementations rely on
	// promotion).
	methodsOf map[string]map[string]*funcInfo
	// ifaceImpl caches interface-resolution results by interface identity
	// key (sorted method-name list).
	ifaceImpl map[string][]string
}

// funcID renders the stable cross-universe ID of a function object, or ""
// when the function cannot be addressed that way (interface methods,
// builtins, function-typed locals).
func funcID(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := recv.Type()
	ptr := false
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
		ptr = true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "" // interface receiver or unnamed type
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return ""
	}
	if ptr {
		return fn.Pkg().Path() + ".(*" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
}

// typeID renders the stable ID of a named type ("pkg/path.Name").
func typeID(named *types.Named) string {
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// fieldID renders the stable ID of a struct field at a selection site
// ("pkg/path.Struct.Field"), resolving the owning struct through the
// selection's receiver type. Returns "" for non-field selections.
func fieldID(sel *types.Selection) string {
	if sel == nil || sel.Kind() != types.FieldVal {
		return ""
	}
	obj, ok := sel.Obj().(*types.Var)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	t := sel.Recv()
	for {
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return typeID(named) + "." + obj.Name()
}

// xpkgOf builds (or returns the cached) program index.
func xpkgOf(prog *Program) *xpkgIndex {
	if idx, ok := prog.State["xpkg"].(*xpkgIndex); ok {
		return idx
	}
	idx := &xpkgIndex{
		prog:      prog,
		byID:      make(map[string]*funcInfo),
		methodsOf: make(map[string]map[string]*funcInfo),
		ifaceImpl: make(map[string][]string),
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcID(obj)
				if id == "" {
					continue
				}
				fi := &funcInfo{Pkg: pkg, File: f, Decl: fd, ID: id}
				idx.byID[id] = fi
				if fd.Recv != nil {
					if tid := recvTypeID(obj); tid != "" {
						m := idx.methodsOf[tid]
						if m == nil {
							m = make(map[string]*funcInfo)
							idx.methodsOf[tid] = m
						}
						m[fd.Name.Name] = fi
					}
				}
			}
		}
	}
	prog.State["xpkg"] = idx
	return idx
}

// recvTypeID returns the receiver's named-type ID of a method object.
func recvTypeID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return typeID(named)
}

// ifaceFor extracts the interface underlying a type, along with the named
// declaration when there is one.
func ifaceFor(t types.Type) (*types.Interface, *types.Named) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, _ := t.(*types.Named)
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return nil, nil
	}
	return iface, named
}

// resolveInterface returns the function IDs of every loaded type's method
// that a call of `methodName` through the given interface could dispatch to.
// Only interfaces declared inside the loaded program are resolved.
func (idx *xpkgIndex) resolveInterface(iface *types.Interface, named *types.Named, methodName string) []string {
	if iface == nil || named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	if _, loaded := idx.prog.Lookup(named.Obj().Pkg().Path()); !loaded {
		return nil
	}
	var methodNames []string
	for i := 0; i < iface.NumMethods(); i++ {
		methodNames = append(methodNames, iface.Method(i).Name())
	}
	sort.Strings(methodNames)
	cacheKey := typeID(named) + "{" + strings.Join(methodNames, ",") + "}." + methodName
	if ids, ok := idx.ifaceImpl[cacheKey]; ok {
		return ids
	}
	var ids []string
	//fuselint:ordered the candidate list is sorted before caching and use
	for _, methods := range idx.methodsOf {
		covers := true
		for _, name := range methodNames {
			if _, ok := methods[name]; !ok {
				covers = false
				break
			}
		}
		if !covers {
			continue
		}
		if fi, ok := methods[methodName]; ok {
			ids = append(ids, fi.ID)
		}
	}
	sort.Strings(ids)
	idx.ifaceImpl[cacheKey] = ids
	return ids
}

// callees returns the IDs of every in-program function the body of fn may
// reference: direct calls, method calls, function/method values (any use of
// a func identifier counts, which over-approximates reachability and is
// therefore safe), plus all conservative resolutions of interface-method
// uses.
func (idx *xpkgIndex) callees(fn *funcInfo) []string {
	if fn.Decl.Body == nil {
		return nil
	}
	info := fn.Pkg.Info
	seen := make(map[string]bool)
	var out []string
	add := func(id string) {
		if id != "" && !seen[id] {
			if _, ok := idx.byID[id]; ok {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj, ok := info.Uses[n].(*types.Func); ok {
				add(funcID(obj))
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if !ok || (sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr) {
				return true
			}
			iface, named := ifaceFor(sel.Recv())
			if iface == nil {
				return true
			}
			for _, id := range idx.resolveInterface(iface, named, n.Sel.Name) {
				add(id)
			}
		}
		return true
	})
	return out
}

// reachable walks the call graph from the given roots and returns every
// in-program function reachable from them (the roots included), in a stable
// order.
func (idx *xpkgIndex) reachable(roots []*funcInfo) []*funcInfo {
	seen := make(map[string]bool)
	var work []*funcInfo
	for _, r := range roots {
		if !seen[r.ID] {
			seen[r.ID] = true
			work = append(work, r)
		}
	}
	var out []*funcInfo
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		out = append(out, fn)
		for _, id := range idx.callees(fn) {
			if !seen[id] {
				seen[id] = true
				work = append(work, idx.byID[id])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
