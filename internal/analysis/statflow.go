package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"fuse/internal/sim"
)

// Statflow pins metric-flow conservation: every counter the simulation core
// increments must flow somewhere an experiment can see — into the Result
// aggregation, a figure-table renderer, or any other read — or carry an
// explicit `//fuselint:internalstat <reason>` annotation on the field. A
// counter that is incremented on the hot path but never read is either dead
// weight or, worse, a metric a new backend or workload silently dropped on
// its way to the tables.
//
// Two passes:
//
//   - The AST pass classifies every use of a countable struct field (integer
//     and float fields, plus fields of the stats package's instrument types)
//     program-wide as an increment (x.f++, x.f += v, x.f.Inc()/Add()/
//     Observe()/AddHits()/AddMisses()) or a read (any other appearance —
//     aggregation in sim.collect, a getter body, a renderer). Fields with
//     increments inside the simulation core (fuse/internal/..., excluding
//     the stats instrument package itself) and zero reads anywhere are
//     findings.
//
//   - A keydrift-style reflection Finish pass cross-checks the AST view of
//     sim.Result against the real encoding/json output: every exported
//     Result field must survive to the serialised form, so the flow target
//     the AST pass credits actually exists at run time.
var Statflow = &Analyzer{
	Name:   "statflow",
	Doc:    "requires every counter incremented in the simulation core to be read (serialised, aggregated or rendered) or annotated //fuselint:internalstat",
	Run:    runStatflow,
	Finish: finishStatflow,
}

// statflowScope reports whether increments in the package count as
// simulation-core increments. The stats package itself is excluded: its
// methods are the instruments, not the metrics.
func statflowScope(path string) bool {
	return detCoreScope(path) && !strings.HasSuffix(path, "/stats")
}

// statIncMethods are the methods of the stats instrument types that record a
// new observation; every other method is a read.
var statIncMethods = map[string]bool{
	"Inc": true, "Add": true, "Observe": true, "AddHits": true, "AddMisses": true,
}

// statNeutralMethods neither record nor consume (calling them says nothing
// about whether the metric flows anywhere).
var statNeutralMethods = map[string]bool{"Reset": true}

type statflowState struct {
	// increments maps fieldID -> increment positions inside the simulation
	// core, in encounter order.
	increments map[string][]token.Position
	// reads maps fieldID -> number of read appearances anywhere in the
	// program.
	reads map[string]int
	// internalstat maps fieldID -> the directive found at the field's
	// declaration.
	internalstat map[string]Directive
	// declPos maps fieldID -> the field's declaration position (for
	// reason-missing findings).
	declPos map[string]token.Position
}

func statflowStateOf(prog *Program) *statflowState {
	st, ok := prog.State["statflow"].(*statflowState)
	if !ok {
		st = &statflowState{
			increments:   make(map[string][]token.Position),
			reads:        make(map[string]int),
			internalstat: make(map[string]Directive),
			declPos:      make(map[string]token.Position),
		}
		prog.State["statflow"] = st
	}
	return st
}

// countableFieldID returns the stable field ID of a selector that names a
// countable metric field (numeric, or a stats instrument type), or "".
func countableFieldID(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	id := fieldID(s)
	if id == "" {
		return "", false
	}
	t := s.Obj().Type()
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "/stats") {
		return id, true
	}
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&(types.IsInteger|types.IsFloat) != 0 {
		return id, true
	}
	return "", false
}

func runStatflow(pass *Pass) error {
	st := statflowStateOf(pass.Prog)
	info := pass.Pkg.Info
	fset := pass.Prog.Fset
	core := statflowScope(pass.Pkg.Path)

	// Collect //fuselint:internalstat directives (and declaration positions)
	// on countable fields of every struct in the package.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				structType, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range structType.Fields.List {
					hasDir, dir := fieldDirective(pass, pass.Pkg, f, field, "internalstat")
					for _, name := range field.Names {
						id := pass.Pkg.Path + "." + ts.Name.Name + "." + name.Name
						st.declPos[id] = fset.Position(name.Pos())
						if hasDir {
							st.internalstat[id] = dir
						}
					}
				}
			}
		}
	}

	// Classify every countable-field selector. A selector consumed as an
	// increment target (or a plain overwrite, or a neutral method receiver)
	// is excluded from the read count; everything else — RHS appearances,
	// getter bodies, value-method calls — is a read.
	for _, f := range pass.Pkg.Files {
		handled := make(map[ast.Node]string) // selector -> "inc" | "write"
		target := func(expr ast.Expr, kind string) {
			expr = ast.Unparen(expr)
			if sel, ok := expr.(*ast.SelectorExpr); ok {
				if _, countable := countableFieldID(info, sel); countable {
					handled[sel] = kind
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				target(n.X, "inc")
			case *ast.AssignStmt:
				kind := "write"
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					kind = "inc" // +=, -=, |=, ... compound assignment
				}
				for _, lhs := range n.Lhs {
					target(lhs, kind)
				}
			case *ast.CallExpr:
				// x.f.Inc() records an observation on instrument field f;
				// x.f.Value() (or any other method) consumes it. Plain
				// numeric fields have no methods, so only instrument-typed
				// fields reach the target call.
				fun, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if statIncMethods[fun.Sel.Name] {
					target(fun.X, "inc")
				} else if statNeutralMethods[fun.Sel.Name] {
					target(fun.X, "write")
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, countable := countableFieldID(info, sel)
			if !countable {
				return true
			}
			switch handled[sel] {
			case "inc":
				if core {
					st.increments[id] = append(st.increments[id], fset.Position(sel.Pos()))
				}
			case "write":
				// Overwrites neither produce nor consume the metric.
			default:
				st.reads[id]++
			}
			return true
		})
	}
	return nil
}

func finishStatflow(prog *Program, report func(Diagnostic)) error {
	st := statflowStateOf(prog)

	var ids []string
	//fuselint:ordered keys are sorted before reporting
	for id := range st.increments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if st.reads[id] > 0 {
			continue
		}
		if dir, ok := st.internalstat[id]; ok {
			if dir.Args == "" {
				report(Diagnostic{
					Pos:     st.declPos[id],
					Message: "//fuselint:internalstat needs a reason (why is " + shortFieldID(id) + " deliberately not serialised?)",
				})
			}
			continue
		}
		report(Diagnostic{
			Pos: st.increments[id][0],
			Message: "counter " + shortFieldID(id) + " is incremented in the simulation core but never read: " +
				"aggregate it into sim.Result or a figure table, or annotate the field //fuselint:internalstat <reason>",
		})
	}

	// Rot anchor: if the real simulation core is loaded, the scan must have
	// seen its counters — an empty increment map means the classifier broke,
	// not that the tree is conserving metrics.
	simPkg, haveSim := prog.Lookup("fuse/internal/sim")
	if haveSim && len(st.increments) == 0 {
		report(Diagnostic{
			Pos:     prog.Fset.Position(simPkg.Files[0].Pos()),
			Message: "statflow saw no counter increments in the simulation core: the increment classifier is broken",
		})
	}

	// Reflection cross-check: every exported sim.Result field must survive
	// into the real encoding/json output — the serialisation target the AST
	// pass credits counters with flowing into.
	if haveSim {
		missing, err := missingFromJSON(reflect.TypeOf(sim.Result{}), sim.Result{})
		if err != nil {
			return err
		}
		pos := prog.Fset.Position(simPkg.Files[0].Pos())
		if ts, _, _ := findStructDecl(simPkg, "Result"); ts != nil {
			pos = prog.Fset.Position(ts.Pos())
		}
		for _, name := range missing {
			report(Diagnostic{
				Pos: pos,
				Message: "sim.Result." + name + " does not appear in the JSON encoding of Result: " +
					"a counter aggregated there never reaches serialised results",
			})
		}
	}
	return nil
}

// shortFieldID trims the module path prefix off a field ID for messages:
// "fuse/internal/gpu.SMStats.Cycles" -> "gpu.SMStats.Cycles".
func shortFieldID(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
