package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"fuse/internal/config"
	"fuse/internal/sim"
)

// Keydrift pins the content-addressed store-key schema: every input that can
// change a simulation's outcome must reach the canonical key encoding, and
// every input that deliberately does not (an execution-resource knob like
// engine.Job.SimWorkers) must say so in the source. Adding a config field
// without making that decision is a build failure, not a silent cache-aliasing
// bug.
//
// The check is annotation-driven:
//
//   - `//fuselint:keyroot` marks a struct that is serialised verbatim into
//     the store-key material (config.GPUConfig, sim.Options, trace.Profile).
//     Every field, recursively, must be serialisable by encoding/json —
//     exported and not tagged json:"-" — or carry `//fuselint:execonly
//     <reason>` together with json:"-" (or be unexported) so the exclusion
//     is explicit.
//   - `//fuselint:jobkey <KeyType>` marks a job-description struct whose
//     dedup identity is a sibling key struct (engine.Job / engine.Key).
//     Every field must have a same-named field in the key type, be of a
//     keyroot-annotated type (keyed through the store path), or carry
//     `//fuselint:execonly <reason>`.
//
// Two repo-specific anchors keep the annotations themselves from rotting:
// the known key structs must carry their annotations (deleting one is a
// finding), and config.GPUConfig.WithMemDefaults must explicitly plumb every
// field of dram.Config — so new DRAM geometry cannot ship without entering
// the keyed GPU configuration. A reflection cross-check (running over the
// real structs, not their syntax) verifies that what the AST calls
// serialisable actually appears in the canonical JSON encoding.
var Keydrift = &Analyzer{
	Name:   "keydrift",
	Doc:    "proves every simulation input is store-keyed or explicitly annotated execution-only",
	Run:    runKeydrift,
	Finish: finishKeydrift,
}

// keydriftAnchors lists the structs that must stay annotated, per package.
var keydriftAnchors = map[string][]struct{ typeName, directive string }{
	"fuse/internal/config": {{"GPUConfig", "keyroot"}},
	"fuse/internal/sim":    {{"Options", "keyroot"}},
	"fuse/internal/trace":  {{"Profile", "keyroot"}},
	"fuse/internal/engine": {{"Job", "jobkey"}},
}

func runKeydrift(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if _, ok := pass.Pkg.nodeDirective(pass.Prog.Fset, f, doc, ts, "keyroot"); ok {
					checkKeyrootStruct(pass, pass.Pkg, f, ts, st, make(map[string]bool))
				}
				if d, ok := pass.Pkg.nodeDirective(pass.Prog.Fset, f, doc, ts, "jobkey"); ok {
					checkJobkeyStruct(pass, f, ts, st, d)
				}
			}
		}
	}
	checkKeydriftAnchors(pass)
	if pass.Pkg.Path == "fuse/internal/config" {
		checkMemDefaultsPlumbing(pass)
	}
	return nil
}

// checkKeydriftAnchors verifies the known key structs still carry their
// annotations — the annotations drive everything else, so deleting one must
// itself be a finding.
func checkKeydriftAnchors(pass *Pass) {
	anchors, ok := keydriftAnchors[pass.Pkg.Path]
	if !ok {
		return
	}
	for _, a := range anchors {
		ts, _, f := findStructDecl(pass.Pkg, a.typeName)
		if ts == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(), "expected struct %s in %s (store-key anchor) was not found", a.typeName, pass.Pkg.Path)
			continue
		}
		doc := ts.Doc
		if doc == nil {
			if gd := enclosingGenDecl(f, ts); gd != nil {
				doc = gd.Doc
			}
		}
		if _, ok := pass.Pkg.nodeDirective(pass.Prog.Fset, f, doc, ts, a.directive); !ok {
			pass.Reportf(ts.Pos(), "%s.%s feeds the store key and must be annotated //fuselint:%s", pass.Pkg.Path, a.typeName, a.directive)
		}
	}
}

// checkKeyrootStruct enforces the keyroot field rules, recursing into named
// struct fields declared in loaded packages.
func checkKeyrootStruct(pass *Pass, pkg *Package, f *ast.File, ts *ast.TypeSpec, st *ast.StructType, visited map[string]bool) {
	id := pkg.Path + "." + ts.Name.Name
	if visited[id] {
		return
	}
	visited[id] = true
	for _, field := range st.Fields.List {
		tag := jsonTagName(field)
		execonly, execDir := fieldDirective(pass, pkg, f, field, "execonly")
		names := fieldNames(field)
		for _, name := range names {
			exported := ast.IsExported(name)
			serialised := exported && tag != "-"
			switch {
			case serialised && execonly:
				pass.Reportf(field.Pos(), "%s.%s is annotated //fuselint:execonly but is still serialised into the key material; tag it json:\"-\" (or drop the annotation)", ts.Name.Name, name)
			case serialised:
				// Keyed — recurse into nested structs so their fields obey
				// the same rules.
				checkKeyrootFieldType(pass, pkg, field.Type, visited)
			case execonly:
				if execDir.Args == "" {
					pass.Reportf(field.Pos(), "//fuselint:execonly needs a justification (why is %s.%s not part of the simulation's identity?)", ts.Name.Name, name)
				}
			default:
				pass.Reportf(field.Pos(), "%s.%s is silently excluded from the store-key material (unexported or json:\"-\"); key it, or annotate //fuselint:execonly <reason>", ts.Name.Name, name)
			}
		}
	}
}

// checkKeyrootFieldType recurses into the named struct type behind a keyed
// field, wherever its declaring package is part of the program.
func checkKeyrootFieldType(pass *Pass, pkg *Package, expr ast.Expr, visited map[string]bool) {
	tv, ok := pkg.Info.Types[expr]
	if !ok {
		return
	}
	t := tv.Type
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	declPkg, ok := pass.Prog.Lookup(named.Obj().Pkg().Path())
	if !ok {
		return
	}
	ts, st, f := findStructDecl(declPkg, named.Obj().Name())
	if ts == nil || st == nil {
		return
	}
	checkKeyrootStruct(pass, declPkg, f, ts, st, visited)
}

// checkJobkeyStruct enforces the jobkey rules against the named key type.
func checkJobkeyStruct(pass *Pass, f *ast.File, ts *ast.TypeSpec, st *ast.StructType, d Directive) {
	keyName := d.Args
	if keyName == "" {
		pass.Reportf(d.Pos, "//fuselint:jobkey needs the key type name (e.g. //fuselint:jobkey Key)")
		return
	}
	keyTS, keySt, _ := findStructDecl(pass.Pkg, keyName)
	if keyTS == nil || keySt == nil {
		pass.Reportf(d.Pos, "//fuselint:jobkey %s: no struct %s in %s", keyName, keyName, pass.Pkg.Path)
		return
	}
	keyFields := make(map[string]bool)
	for _, kf := range keySt.Fields.List {
		for _, name := range fieldNames(kf) {
			keyFields[name] = true
		}
	}
	for _, field := range st.Fields.List {
		execonly, execDir := fieldDirective(pass, pass.Pkg, f, field, "execonly")
		for _, name := range fieldNames(field) {
			switch {
			case keyFields[name]:
			case fieldTypeIsKeyroot(pass, field.Type):
				// Keyed through the store path (e.g. Job.GPU *config.GPUConfig).
			case execonly:
				if execDir.Args == "" {
					pass.Reportf(field.Pos(), "//fuselint:execonly needs a justification (why does %s.%s not affect results?)", ts.Name.Name, name)
				}
			default:
				pass.Reportf(field.Pos(), "%s.%s is neither part of %s nor annotated //fuselint:execonly: decide whether it changes the simulation (key it) or not (annotate it)", ts.Name.Name, name, keyName)
			}
		}
	}
}

// fieldTypeIsKeyroot reports whether the field's (pointer-stripped) type is a
// struct annotated //fuselint:keyroot in its declaring package.
func fieldTypeIsKeyroot(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	declPkg, ok := pass.Prog.Lookup(named.Obj().Pkg().Path())
	if !ok {
		return false
	}
	ts, _, f := findStructDecl(declPkg, named.Obj().Name())
	if ts == nil {
		return false
	}
	doc := ts.Doc
	if doc == nil {
		if gd := enclosingGenDecl(f, ts); gd != nil {
			doc = gd.Doc
		}
	}
	_, ok = declPkg.nodeDirective(pass.Prog.Fset, f, doc, ts, "keyroot")
	return ok
}

// checkMemDefaultsPlumbing verifies that GPUConfig.WithMemDefaults explicitly
// sets every field of dram.Config in its resolve literal: a new DRAM geometry
// field then cannot be added without being plumbed through the keyed
// GPUConfig (or annotated execonly at its declaration in internal/dram).
func checkMemDefaultsPlumbing(pass *Pass) {
	var method *ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "WithMemDefaults" || fd.Recv == nil {
				continue
			}
			method = fd
		}
	}
	if method == nil {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "GPUConfig.WithMemDefaults not found: the store key canonicalises DRAM geometry through it")
		return
	}
	var lit *ast.CompositeLit
	var litType *types.Struct
	var litNamed *types.Named
	ast.Inspect(method, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[cl]
		if !ok {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok || named.Obj().Name() != "Config" || named.Obj().Pkg() == nil ||
			!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/dram") {
			return true
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		lit, litType, litNamed = cl, st, named
		return false
	})
	if lit == nil {
		pass.Reportf(method.Pos(), "WithMemDefaults does not build a dram.Config literal: DRAM geometry is no longer canonicalised into the store key")
		return
	}
	set := make(map[string]bool)
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				set[id.Name] = true
			}
		}
	}
	for i := 0; i < litType.NumFields(); i++ {
		fieldVar := litType.Field(i)
		if set[fieldVar.Name()] {
			continue
		}
		if dramFieldExeconly(pass, litNamed, fieldVar.Name()) {
			continue
		}
		pass.Reportf(lit.Pos(), "dram.Config.%s is not plumbed through GPUConfig.WithMemDefaults: the field would not be canonicalised into store keys (plumb it, or annotate it //fuselint:execonly in internal/dram)", fieldVar.Name())
	}
}

// dramFieldExeconly looks the field's declaration up in the loaded dram
// package and reports whether it carries an execonly directive.
func dramFieldExeconly(pass *Pass, named *types.Named, fieldName string) bool {
	declPkg, ok := pass.Prog.Lookup(named.Obj().Pkg().Path())
	if !ok {
		return false
	}
	_, st, f := findStructDecl(declPkg, named.Obj().Name())
	if st == nil {
		return false
	}
	for _, field := range st.Fields.List {
		for _, name := range fieldNames(field) {
			if name == fieldName {
				ok, _ := fieldDirective(pass, declPkg, f, field, "execonly")
				return ok
			}
		}
	}
	return false
}

// finishKeydrift is the reflection cross-check: the AST rules above reason
// about syntax, this runs over the real types. Every exported, untagged field
// of the keyed structs must actually appear in their canonical JSON encoding
// (a custom MarshalJSON or a tag rename that hides one would otherwise pass
// the AST check). Runs only when the real store package is part of the
// program — fixture runs exercise the annotation rules alone.
func finishKeydrift(prog *Program, report func(Diagnostic)) error {
	if _, ok := prog.Lookup("fuse/internal/store"); !ok {
		return nil
	}
	checks := []struct {
		name  string
		value any
	}{
		{"config.GPUConfig", config.GPUConfig{}},
		{"sim.Options", sim.Options{}},
	}
	for _, c := range checks {
		missing, err := missingFromJSON(reflect.TypeOf(c.value), c.value)
		if err != nil {
			return fmt.Errorf("keydrift reflection check on %s: %w", c.name, err)
		}
		for _, field := range missing {
			report(Diagnostic{
				Pos:     token.Position{Filename: "(reflection)"},
				Message: fmt.Sprintf("%s.%s does not appear in the canonical JSON encoding that feeds store keys (custom marshaller or tag hides it)", c.name, field),
			})
		}
	}
	return nil
}

// missingFromJSON marshals the value and reports every exported field (deeply)
// whose effective JSON name is absent from the encoding. omitempty fields are
// skipped: the zero probe value would legitimately drop them.
func missingFromJSON(t reflect.Type, v any) ([]string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var decoded any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		return nil, err
	}
	var missing []string
	var walk func(prefix string, t reflect.Type, enc any)
	walk = func(prefix string, t reflect.Type, enc any) {
		for t.Kind() == reflect.Pointer {
			t = t.Elem()
		}
		if t.Kind() != reflect.Struct {
			return
		}
		obj, ok := enc.(map[string]any)
		if !ok {
			// The whole struct encodes as something else (custom marshaller):
			// flag every field, the schema is opaque to the key material.
			for i := 0; i < t.NumField(); i++ {
				if t.Field(i).IsExported() {
					missing = append(missing, prefix+t.Field(i).Name)
				}
			}
			return
		}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			name := f.Name
			if tag != "" {
				parts := strings.Split(tag, ",")
				if parts[0] == "-" && len(parts) == 1 {
					continue // explicitly excluded: the AST pass polices these
				}
				if parts[0] != "" {
					name = parts[0]
				}
				if len(parts) > 1 && strings.Contains(tag, "omitempty") {
					continue
				}
			}
			sub, ok := obj[name]
			if !ok {
				missing = append(missing, prefix+f.Name)
				continue
			}
			walk(prefix+f.Name+".", f.Type, sub)
		}
	}
	walk("", t, decoded)
	return missing, nil
}

// --- shared small helpers ---

// findStructDecl locates a named struct declaration in a package.
func findStructDecl(pkg *Package, name string) (*ast.TypeSpec, *ast.StructType, *ast.File) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				st, _ := ts.Type.(*ast.StructType)
				return ts, st, f
			}
		}
	}
	return nil, nil, nil
}

// enclosingGenDecl finds the GenDecl containing a TypeSpec (for doc comments
// written on the `type` keyword of single-spec declarations).
func enclosingGenDecl(f *ast.File, ts *ast.TypeSpec) *ast.GenDecl {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			if spec == ts {
				return gd
			}
		}
	}
	return nil
}

// fieldNames returns the declared names of a struct field (the type name for
// embedded fields).
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return names
	}
	// Embedded field: the unqualified type name.
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return []string{t.Name}
	case *ast.SelectorExpr:
		return []string{t.Sel.Name}
	}
	return nil
}

// jsonTagName extracts the json name component of a field tag ("" when
// untagged).
func jsonTagName(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	tag := strings.Trim(field.Tag.Value, "`")
	value := reflect.StructTag(tag).Get("json")
	name, _, _ := strings.Cut(value, ",")
	return name
}

// fieldDirective finds a directive on a struct field (doc comment, trailing
// comment, or the line above).
func fieldDirective(pass *Pass, pkg *Package, f *ast.File, field *ast.Field, name string) (bool, Directive) {
	doc := field.Doc
	if d, ok := pkg.nodeDirective(pass.Prog.Fset, f, doc, field, name); ok {
		return true, d
	}
	if field.Comment != nil {
		for _, c := range field.Comment.List {
			if strings.HasPrefix(c.Text, directivePrefix) {
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				dname, args, _ := strings.Cut(rest, " ")
				if strings.TrimSpace(dname) == name {
					return true, Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}
				}
			}
		}
	}
	return false, Directive{}
}
