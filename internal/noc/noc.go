// Package noc models the interconnection network between the SMs and the
// shared L2 cache banks. The paper configures a butterfly topology with 27
// nodes (15 SMs + 12 L2 banks); we model a radix-k multistage butterfly whose
// links are occupied for the serialisation time of each packet, which
// captures both the multi-hop latency and the bandwidth contention that make
// off-chip references so expensive (Figure 1).
package noc

import (
	"fmt"

	"fuse/internal/stats"
)

// Direction selects the request (SM -> L2) or response (L2 -> SM) subnetwork.
// The two directions have independent links, as in a real GPU NoC where
// request and reply virtual networks are separated to avoid protocol
// deadlock.
type Direction uint8

const (
	// RequestNet carries memory requests from SMs to L2 banks.
	RequestNet Direction = iota
	// ResponseNet carries fill data from L2 banks back to SMs.
	ResponseNet
)

// Config describes the network.
type Config struct {
	// SMNodes is the number of SM endpoints.
	SMNodes int
	// MemNodes is the number of L2-bank endpoints.
	MemNodes int
	// Radix is the router radix (ports per router); the paper's butterfly
	// uses small-radix routers arranged in stages.
	Radix int
	// HopLatency is the router traversal latency in core cycles.
	HopLatency int
	// FlitBytes is the number of bytes a link moves per cycle.
	FlitBytes int
}

// withDefaults fills zero fields with the paper's baseline values.
func (c Config) withDefaults() Config {
	if c.SMNodes <= 0 {
		c.SMNodes = 15
	}
	if c.MemNodes <= 0 {
		c.MemNodes = 12
	}
	if c.Radix <= 1 {
		c.Radix = 4
	}
	if c.HopLatency <= 0 {
		c.HopLatency = 4
	}
	if c.FlitBytes <= 0 {
		c.FlitBytes = 32
	}
	return c
}

// link tracks when a physical channel becomes free again.
type link struct {
	nextFree int64
	busyCyc  uint64
	//fuselint:internalstat per-link packet counts back the busy-cycle model; Network.Packets() reports the aggregate the figures use
	packets uint64
}

// Network is the butterfly interconnect.
type Network struct {
	cfg    Config
	stages int
	// links[direction][stage][router*radix+port]
	links [2][][]link
	// reachable[direction] is the number of links the routing function can
	// actually use in that direction; the remaining router ports are
	// unwired and must not dilute utilisation statistics.
	reachable [2]int
	// pathBuf is the reusable per-route scratch buffer: routing runs once or
	// twice per packet on the simulator's hot path, and a per-call slice
	// allocation there dominates the network's own arithmetic.
	pathBuf []int

	reqPackets  stats.Counter
	respPackets stats.Counter
	totalLat    stats.Counter
	bytesMoved  stats.Counter
}

// New builds a network from the configuration (zero-value fields take the
// paper's defaults).
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	n := &Network{cfg: cfg}
	endpoints := cfg.SMNodes
	if cfg.MemNodes > endpoints {
		endpoints = cfg.MemNodes
	}
	// Number of butterfly stages: ceil(log_radix(endpoints)).
	stages := 1
	span := cfg.Radix
	for span < endpoints {
		span *= cfg.Radix
		stages++
	}
	n.stages = stages
	routersPerStage := (endpoints + cfg.Radix - 1) / cfg.Radix
	if routersPerStage < 1 {
		routersPerStage = 1
	}
	for d := 0; d < 2; d++ {
		n.links[d] = make([][]link, stages)
		for s := 0; s < stages; s++ {
			n.links[d][s] = make([]link, routersPerStage*cfg.Radix)
		}
	}
	n.countReachableLinks()
	return n
}

// countReachableLinks enumerates every (src, dst) endpoint pair of each
// direction and marks the links its deterministic route uses. Ports no route
// ever crosses are unwired in a real butterfly, so LinkUtilisation divides by
// the reachable count only.
func (n *Network) countReachableLinks() {
	srcs := [2]int{n.cfg.SMNodes, n.cfg.MemNodes} // request: SM -> bank
	dsts := [2]int{n.cfg.MemNodes, n.cfg.SMNodes} // response: bank -> SM
	for d := 0; d < 2; d++ {
		used := make([]map[int]bool, n.stages)
		for s := range used {
			used[s] = make(map[int]bool)
		}
		for src := 0; src < srcs[d]; src++ {
			for dst := 0; dst < dsts[d]; dst++ {
				for s, li := range n.pathLinks(src, dst) {
					used[s][li] = true
				}
			}
		}
		n.reachable[d] = 0
		for s := range used {
			n.reachable[d] += len(used[s])
		}
	}
}

// ReachableLinks returns the number of links the routing function can use in
// the given direction.
func (n *Network) ReachableLinks(dir Direction) int { return n.reachable[dir] }

// Config returns the effective configuration.
func (n *Network) Config() Config { return n.cfg }

// Stages returns the number of router stages a packet traverses.
func (n *Network) Stages() int { return n.stages }

// Nodes returns the total number of endpoints (SMs + L2 banks), 27 in the
// paper's baseline.
func (n *Network) Nodes() int { return n.cfg.SMNodes + n.cfg.MemNodes }

// flits returns the serialisation time (in cycles) of a packet of the given
// size on one link.
func (n *Network) flits(bytes int) int64 {
	if bytes <= 0 {
		bytes = 1
	}
	f := (bytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return int64(f)
}

// pathLinks returns the link indices a packet takes through the stages. The
// butterfly routing function uses destination digits in the router radix, so
// the same (src,dst) pair always takes the same path (deterministic routing).
// The returned slice aliases a scratch buffer owned by the network: it is
// valid only until the next pathLinks call.
func (n *Network) pathLinks(src, dst int) []int {
	if cap(n.pathBuf) < n.stages {
		n.pathBuf = make([]int, n.stages)
	}
	path := n.pathBuf[:n.stages]
	routersPerStage := len(n.links[0][0]) / n.cfg.Radix
	router := src % max(routersPerStage, 1)
	d := dst
	for s := 0; s < n.stages; s++ {
		port := d % n.cfg.Radix
		d /= n.cfg.Radix
		path[s] = (router%max(routersPerStage, 1))*n.cfg.Radix + port
		// The butterfly shuffle: the next-stage router is determined by the
		// output port and the current router index.
		router = (router/n.cfg.Radix)*n.cfg.Radix + port
	}
	return path
}

// send walks the packet through the selected subnetwork, reserving each link
// for the packet's serialisation time, and returns the delivery cycle.
func (n *Network) send(dir Direction, src, dst, bytes int, now int64) int64 {
	ser := n.flits(bytes)
	t := now
	for s, li := range n.pathLinks(src, dst) {
		l := &n.links[dir][s][li]
		start := t
		if l.nextFree > start {
			start = l.nextFree
		}
		depart := start + ser
		l.nextFree = depart
		l.busyCyc += uint64(ser)
		l.packets++
		t = depart + int64(n.cfg.HopLatency)
	}
	n.bytesMoved.Add(uint64(bytes))
	n.totalLat.Add(uint64(t - now))
	return t
}

// SendRequest injects a request packet from SM `sm` toward L2 bank `bank` at
// cycle `now` and returns the cycle at which it arrives at the bank.
func (n *Network) SendRequest(sm, bank, bytes int, now int64) int64 {
	n.reqPackets.Inc()
	return n.send(RequestNet, sm%n.cfg.SMNodes, bank%n.cfg.MemNodes, bytes, now)
}

// SendResponse injects a response packet from L2 bank `bank` toward SM `sm`
// at cycle `now` and returns the cycle at which it arrives at the SM.
func (n *Network) SendResponse(bank, sm, bytes int, now int64) int64 {
	n.respPackets.Inc()
	return n.send(ResponseNet, bank%n.cfg.MemNodes, sm%n.cfg.SMNodes, bytes, now)
}

// ZeroLoadLatency returns the latency of a packet of the given size through
// an idle network.
func (n *Network) ZeroLoadLatency(bytes int) int64 {
	return int64(n.stages) * (n.flits(bytes) + int64(n.cfg.HopLatency))
}

// Packets returns the number of request and response packets carried.
func (n *Network) Packets() (requests, responses uint64) {
	return n.reqPackets.Value(), n.respPackets.Value()
}

// BytesMoved returns the total payload bytes carried.
func (n *Network) BytesMoved() uint64 { return n.bytesMoved.Value() }

// AverageLatency returns the mean end-to-end packet latency in cycles.
func (n *Network) AverageLatency() float64 {
	total := n.reqPackets.Value() + n.respPackets.Value()
	if total == 0 {
		return 0
	}
	return float64(n.totalLat.Value()) / float64(total)
}

// LinkUtilisation returns the mean busy fraction, up to the given cycle, of
// the links the routing function can actually reach (unwired router ports
// are excluded from the denominator).
func (n *Network) LinkUtilisation(now int64) float64 {
	if now <= 0 {
		return 0
	}
	var busy uint64
	for d := 0; d < 2; d++ {
		for s := range n.links[d] {
			for i := range n.links[d][s] {
				busy += n.links[d][s][i].busyCyc
			}
		}
	}
	count := n.reachable[0] + n.reachable[1]
	if count == 0 {
		return 0
	}
	return float64(busy) / float64(count) / float64(now)
}

// Reset clears link reservations and statistics.
func (n *Network) Reset() {
	for d := 0; d < 2; d++ {
		for s := range n.links[d] {
			for i := range n.links[d][s] {
				n.links[d][s][i] = link{}
			}
		}
	}
	n.reqPackets.Reset()
	n.respPackets.Reset()
	n.totalLat.Reset()
	n.bytesMoved.Reset()
}

// String describes the topology.
func (n *Network) String() string {
	return fmt.Sprintf("butterfly{%d SM + %d mem nodes, %d stages, radix %d, %dB flits}",
		n.cfg.SMNodes, n.cfg.MemNodes, n.stages, n.cfg.Radix, n.cfg.FlitBytes)
}
