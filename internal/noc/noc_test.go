package noc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultsMatchPaper(t *testing.T) {
	n := New(Config{})
	cfg := n.Config()
	if cfg.SMNodes != 15 || cfg.MemNodes != 12 {
		t.Errorf("default topology should be 15 SMs + 12 L2 banks, got %+v", cfg)
	}
	if n.Nodes() != 27 {
		t.Errorf("paper's butterfly has 27 nodes, got %d", n.Nodes())
	}
	if n.Stages() < 2 {
		t.Errorf("butterfly over 15 endpoints should need at least 2 stages of radix-4 routers")
	}
	if !strings.Contains(n.String(), "butterfly") {
		t.Errorf("String should describe the topology")
	}
}

func TestZeroLoadLatency(t *testing.T) {
	n := New(Config{})
	small := n.ZeroLoadLatency(32)
	big := n.ZeroLoadLatency(128)
	if small <= 0 {
		t.Errorf("zero-load latency must be positive")
	}
	if big <= small {
		t.Errorf("larger packets should take longer: %d vs %d", big, small)
	}
}

func TestSendRequestDeliversAfterZeroLoadLatency(t *testing.T) {
	n := New(Config{})
	arrive := n.SendRequest(0, 0, 32, 100)
	if arrive < 100+n.ZeroLoadLatency(32) {
		t.Errorf("delivery %d earlier than zero-load latency %d", arrive-100, n.ZeroLoadLatency(32))
	}
	req, resp := n.Packets()
	if req != 1 || resp != 0 {
		t.Errorf("packet accounting wrong: %d req %d resp", req, resp)
	}
	if n.BytesMoved() != 32 {
		t.Errorf("BytesMoved = %d", n.BytesMoved())
	}
	if n.AverageLatency() <= 0 {
		t.Errorf("average latency should be positive")
	}
}

func TestContentionSerialisesPackets(t *testing.T) {
	n := New(Config{})
	// Many SMs sending large responses... use requests all to the same bank
	// at the same cycle: they share the final link and must serialise.
	var last int64
	for sm := 0; sm < 15; sm++ {
		arrive := n.SendRequest(sm, 3, 128, 0)
		if arrive > last {
			last = arrive
		}
	}
	single := New(Config{}).SendRequest(0, 3, 128, 0)
	if last <= single {
		t.Errorf("15 simultaneous packets to one bank should finish later than a single packet: %d vs %d", last, single)
	}
	if n.LinkUtilisation(last) <= 0 {
		t.Errorf("link utilisation should be positive under load")
	}
}

func TestRequestAndResponseNetworksAreIndependent(t *testing.T) {
	n := New(Config{})
	// Saturate the request network.
	for i := 0; i < 50; i++ {
		n.SendRequest(1, 2, 128, 0)
	}
	// A response should still see an idle network.
	arrive := n.SendResponse(2, 1, 128, 0)
	if arrive > n.ZeroLoadLatency(128) {
		t.Errorf("response network should not be congested by request traffic: arrive=%d", arrive)
	}
}

func TestDeterministicRouting(t *testing.T) {
	n1 := New(Config{})
	n2 := New(Config{})
	for sm := 0; sm < 15; sm++ {
		for bank := 0; bank < 12; bank++ {
			a := n1.SendRequest(sm, bank, 64, 1000)
			b := n2.SendRequest(sm, bank, 64, 1000)
			if a != b {
				t.Fatalf("routing must be deterministic: sm=%d bank=%d %d vs %d", sm, bank, a, b)
			}
		}
	}
}

func TestDeliveryNeverBeforeInjection(t *testing.T) {
	prop := func(sm, bank uint8, bytes uint16, now uint32) bool {
		n := New(Config{})
		arrive := n.SendRequest(int(sm), int(bank), int(bytes%512), int64(now))
		return arrive > int64(now)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMonotonicLinkReservation(t *testing.T) {
	// Packets injected later on the same path never arrive earlier than
	// packets injected earlier.
	n := New(Config{})
	prev := int64(0)
	for i := 0; i < 64; i++ {
		arrive := n.SendRequest(2, 5, 128, int64(i))
		if arrive < prev {
			t.Fatalf("later packet arrived earlier: %d < %d", arrive, prev)
		}
		prev = arrive
	}
}

func TestResetClearsState(t *testing.T) {
	n := New(Config{})
	n.SendRequest(0, 0, 128, 0)
	n.SendResponse(0, 0, 128, 0)
	n.Reset()
	req, resp := n.Packets()
	if req != 0 || resp != 0 || n.BytesMoved() != 0 || n.AverageLatency() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if n.LinkUtilisation(100) != 0 {
		t.Errorf("Reset should clear link occupancy")
	}
	// After reset the network behaves as if idle.
	if got := n.SendRequest(0, 0, 32, 0); got > n.ZeroLoadLatency(32) {
		t.Errorf("post-reset send should see an idle network")
	}
}

func TestConfigClamping(t *testing.T) {
	n := New(Config{SMNodes: -1, MemNodes: 0, Radix: 0, HopLatency: -5, FlitBytes: 0})
	cfg := n.Config()
	if cfg.SMNodes <= 0 || cfg.MemNodes <= 0 || cfg.Radix <= 1 || cfg.HopLatency <= 0 || cfg.FlitBytes <= 0 {
		t.Errorf("invalid configuration should be clamped: %+v", cfg)
	}
	if n.flits(0) != 1 {
		t.Errorf("zero-byte packets still occupy one flit")
	}
	if n.LinkUtilisation(0) != 0 {
		t.Errorf("utilisation at cycle 0 should be 0")
	}
	if n.AverageLatency() != 0 {
		t.Errorf("average latency with no packets should be 0")
	}
}

// TestHandComputedTwoStageButterfly pins ZeroLoadLatency and the
// reachable-link accounting against a fully hand-computed 2-stage butterfly:
// 8 SMs + 8 banks on radix-4 routers (2 routers per stage, 8 ports each).
func TestHandComputedTwoStageButterfly(t *testing.T) {
	n := New(Config{SMNodes: 8, MemNodes: 8, Radix: 4, HopLatency: 4, FlitBytes: 32})
	if n.Stages() != 2 {
		t.Fatalf("8 endpoints on radix-4 need exactly 2 stages, got %d", n.Stages())
	}
	// 64 bytes = 2 flits; each of the 2 stages costs serialisation (2) plus
	// the hop latency (4): 2 * (2 + 4) = 12 cycles.
	if got := n.ZeroLoadLatency(64); got != 12 {
		t.Errorf("ZeroLoadLatency(64) = %d, want 12", got)
	}
	// Routing: stage 0 reaches all 2 routers x 4 ports = 8 links; stage 1's
	// router is the stage-0 output port (0..3) folded mod 2 routers, and its
	// port is dst/4 (0 or 1), so only links {0,1,4,5} — 4 of 8 — are wired.
	// 12 reachable links per direction.
	for _, dir := range []Direction{RequestNet, ResponseNet} {
		if got := n.ReachableLinks(dir); got != 12 {
			t.Errorf("ReachableLinks(%d) = %d, want 12", dir, got)
		}
	}
	// One 32-byte packet (1 flit) busies one link per stage for 1 cycle:
	// utilisation over 10 cycles = 2 busy-cycles / 24 links / 10 cycles.
	arrive := n.SendRequest(0, 0, 32, 0)
	if arrive != 10 {
		t.Fatalf("1-flit packet should deliver at cycle 10 (2 stages x (1+4)), got %d", arrive)
	}
	want := 2.0 / 24.0 / 10.0
	if got := n.LinkUtilisation(10); got != want {
		t.Errorf("LinkUtilisation(10) = %v, want %v", got, want)
	}
}

func TestVoltaStyleWiderLinksAreFaster(t *testing.T) {
	narrow := New(Config{FlitBytes: 32})
	wide := New(Config{FlitBytes: 64})
	a := narrow.SendResponse(0, 0, 128, 0)
	b := wide.SendResponse(0, 0, 128, 0)
	if b >= a {
		t.Errorf("wider links should deliver 128B responses faster: %d vs %d", b, a)
	}
}
