package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"fuse/internal/config"
)

// smallWorkloads keeps the unit tests fast while still covering an irregular,
// a write-heavy and a compute-bound workload.
var smallWorkloads = []string{"ATAX", "2MM", "pathf"}

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestMatrixCachesRuns(t *testing.T) {
	m := NewMatrix(QuickScale)
	if m.Scale() != QuickScale {
		t.Fatalf("Scale() mismatch")
	}
	r1, err := m.Get(config.L1SRAM, "pathf")
	if err != nil {
		t.Fatal(err)
	}
	runs := m.Runs()
	r2, err := m.Get(config.L1SRAM, "pathf")
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs() != runs {
		t.Errorf("second Get should be served from the cache")
	}
	if r1.IPC != r2.IPC {
		t.Errorf("cached result should be identical")
	}
	if _, err := m.Get(config.DyFUSE, "no-such-workload"); err == nil {
		t.Errorf("unknown workload should fail")
	}
}

func TestFig13ShowsDyFUSEWinning(t *testing.T) {
	m := NewMatrix(QuickScale)
	tab, err := Fig13NormalizedIPC(m, smallWorkloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(smallWorkloads)+1 {
		t.Fatalf("expected one row per workload plus GMEAN, got %d", len(tab.Rows))
	}
	gmean := tab.Rows[len(tab.Rows)-1]
	if gmean[0] != "GMEAN" {
		t.Fatalf("last row should be the geometric mean, got %q", gmean[0])
	}
	// Columns: workload, By-NVM, FA-SRAM, Hybrid, Base-FUSE, FA-FUSE, Dy-FUSE.
	hybrid := parseCell(t, gmean[3])
	baseFuse := parseCell(t, gmean[4])
	faFuse := parseCell(t, gmean[5])
	dyFuse := parseCell(t, gmean[6])
	if dyFuse <= 1.0 {
		t.Errorf("Dy-FUSE should beat L1-SRAM on average (Figure 13), got %v", dyFuse)
	}
	if dyFuse < faFuse*0.9 {
		t.Errorf("Dy-FUSE should not trail FA-FUSE significantly: %v vs %v", dyFuse, faFuse)
	}
	if faFuse <= hybrid {
		t.Errorf("FA-FUSE should beat the unoptimised Hybrid: %v vs %v", faFuse, hybrid)
	}
	if baseFuse <= hybrid*0.95 {
		t.Errorf("Base-FUSE should not be worse than Hybrid: %v vs %v", baseFuse, hybrid)
	}
}

func TestFig14MissRatesOrdered(t *testing.T) {
	m := NewMatrix(QuickScale)
	tab, err := Fig14MissRate(m, []string{"ATAX"})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: workload, L1-SRAM, By-NVM, FA-SRAM, Hybrid, Base-FUSE, FA-FUSE, Dy-FUSE.
	row := tab.Rows[0]
	l1 := parseCell(t, row[1])
	fafuse := parseCell(t, row[6])
	if fafuse >= l1 {
		t.Errorf("FA-FUSE should have a lower miss rate than L1-SRAM on ATAX: %v vs %v", fafuse, l1)
	}
	for i := 1; i < len(row); i++ {
		v := parseCell(t, row[i])
		if v < 0 || v > 1 {
			t.Errorf("miss rate out of range in column %d: %v", i, v)
		}
	}
}

func TestFig15StallsNormalised(t *testing.T) {
	m := NewMatrix(QuickScale)
	tab, err := Fig15CacheStalls(m, []string{"FDTD"})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	hybrid := parseCell(t, row[1])
	baseStt := parseCell(t, row[2])
	if hybrid != 1 && hybrid != 0 {
		t.Errorf("Hybrid's own stalls should normalise to 1 (or 0 when none), got %v", hybrid)
	}
	if baseStt > hybrid {
		t.Errorf("Base-FUSE should not have more STT stalls than Hybrid: %v vs %v", baseStt, hybrid)
	}
}

func TestFig16AccuracyFractions(t *testing.T) {
	m := NewMatrix(QuickScale)
	tab, err := Fig16PredictorAccuracy(m, []string{"GESUM"})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	tr := parseCell(t, row[1])
	nu := parseCell(t, row[2])
	fa := parseCell(t, row[3])
	sum := tr + nu + fa
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("fractions should sum to 1, got %v", sum)
	}
	if fa > 0.5 {
		t.Errorf("false predictions should be a minority, got %v", fa)
	}
}

func TestFig17EnergyShape(t *testing.T) {
	m := NewMatrix(QuickScale)
	tab, err := Fig17L1DEnergy(m, []string{"ATAX"})
	if err != nil {
		t.Fatal(err)
	}
	gmean := tab.Rows[len(tab.Rows)-1]
	dy := parseCell(t, gmean[4])
	if dy <= 0 {
		t.Errorf("Dy-FUSE energy ratio should be positive, got %v", dy)
	}
	// On the irregular, long-running-on-SRAM workloads the hybrid caches
	// spend less L1D energy than the SRAM baseline (Figure 17's ATAX/BICG
	// observation).
	if dy >= 3 {
		t.Errorf("Dy-FUSE L1D energy should not explode relative to L1-SRAM, got %v", dy)
	}
}

func TestFig1OffChip(t *testing.T) {
	m := NewMatrix(QuickScale)
	tab, err := Fig1OffChipOverheads(m, []string{"ATAX", "pathf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 2 workloads + MEAN, got %d rows", len(tab.Rows))
	}
	atax := parseCell(t, tab.Rows[0][3])
	pathf := parseCell(t, tab.Rows[1][3])
	if atax <= pathf {
		t.Errorf("ATAX should be more off-chip bound than pathf: %v vs %v", atax, pathf)
	}
}

func TestFig3MotivationShape(t *testing.T) {
	m := NewMatrix(Scale{InstructionsPerWarp: 150, SMs: 1, Seed: 42})
	tab, err := Fig3Motivation(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("Figure 3 covers 7 workloads, got %d", len(tab.Rows))
	}
	betterIPC := 0
	for _, row := range tab.Rows {
		missVanilla := parseCell(t, row[1])
		missOracle := parseCell(t, row[3])
		ipcOracle := parseCell(t, row[6])
		if missOracle > missVanilla+1e-9 {
			t.Errorf("%s: oracle miss rate should not exceed vanilla (%v vs %v)", row[0], missOracle, missVanilla)
		}
		if ipcOracle > 1 {
			betterIPC++
		}
	}
	if betterIPC < 5 {
		t.Errorf("the oracle cache should speed up most motivation workloads, only %d/7", betterIPC)
	}
}

func TestFig6Table(t *testing.T) {
	tab, err := Fig6ReadLevelAnalysis([]string{"ATAX", "PVC"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	ataxWORM := parseCell(t, tab.Rows[0][3]) + parseCell(t, tab.Rows[0][4])
	pvcWM := parseCell(t, tab.Rows[1][1])
	ataxWM := parseCell(t, tab.Rows[0][1])
	if ataxWORM < 0.6 {
		t.Errorf("ATAX should be WORM/WORO dominated, got %v", ataxWORM)
	}
	if pvcWM <= ataxWM {
		t.Errorf("PVC should have a larger WM fraction than ATAX: %v vs %v", pvcWM, ataxWM)
	}
	if _, err := Fig6ReadLevelAnalysis([]string{"bogus"}, 42); err == nil {
		t.Errorf("unknown workload should fail")
	}
}

func TestTable1AndTable3(t *testing.T) {
	t1 := Table1Configuration()
	if len(t1.Rows) != len(config.AllL1DKinds)+1 {
		t.Errorf("Table I should list all 7 configurations plus the GPU row, got %d", len(t1.Rows))
	}
	if !strings.Contains(t1.String(), "Dy-FUSE") {
		t.Errorf("Table I should mention Dy-FUSE")
	}
	t3 := Table3Area()
	if !strings.Contains(t3.String(), "NVM-CBF") || !strings.Contains(t3.String(), "TOTAL") {
		t.Errorf("Table III should list the FUSE structures and totals")
	}
}

func TestFig20CBF(t *testing.T) {
	tab, err := Fig20CBFFalsePositives(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("Figure 20 covers 9 workloads, got %d", len(tab.Rows))
	}
	// More hash functions and more slots should not increase the
	// false-positive rate (averaged across workloads).
	var h1, h3, s32, s128 float64
	for _, row := range tab.Rows {
		h1 += parseCell(t, row[1])
		h3 += parseCell(t, row[3])
		s32 += parseCell(t, row[6])
		s128 += parseCell(t, row[8])
	}
	if h3 > h1 {
		t.Errorf("3 hash functions should not have more false positives than 1: %v vs %v", h3, h1)
	}
	if s128 > s32 {
		t.Errorf("128 slots should not have more false positives than 32: %v vs %v", s128, s32)
	}
}

func TestRunDispatch(t *testing.T) {
	m := NewMatrix(QuickScale)
	for _, name := range []string{ExpTable1, ExpTable3} {
		tab, err := Run(m, name, nil)
		if err != nil || tab == nil {
			t.Errorf("Run(%s): %v", name, err)
		}
	}
	if _, err := Run(m, "not-an-experiment", nil); err == nil {
		t.Errorf("unknown experiment should fail")
	}
	if len(AllExperiments()) != 16 {
		t.Errorf("expected 16 experiments (15 paper artefacts + the backend sweep), got %d", len(AllExperiments()))
	}
	if len(AllWorkloads()) != 21 {
		t.Errorf("expected 21 workloads, got %d", len(AllWorkloads()))
	}
	tab, err := Run(m, ExpFig16, []string{"pathf"})
	if err != nil || len(tab.Rows) == 0 {
		t.Errorf("Run(fig16): %v", err)
	}
}

func TestParallelMatrixByteIdenticalToSerial(t *testing.T) {
	// The engine's headline guarantee at the experiment layer: a figure
	// built from a parallel pre-warmed matrix renders byte-identically to
	// one built serially.
	serial := NewMatrixWorkers(QuickScale, 1)
	serialTab, err := Fig13NormalizedIPC(serial, smallWorkloads)
	if err != nil {
		t.Fatal(err)
	}
	parallel := NewMatrixWorkers(QuickScale, 4)
	if err := parallel.Prewarm(context.Background(), []string{ExpFig13}, smallWorkloads); err != nil {
		t.Fatal(err)
	}
	parallelTab, err := Fig13NormalizedIPC(parallel, smallWorkloads)
	if err != nil {
		t.Fatal(err)
	}
	if serialTab.String() != parallelTab.String() {
		t.Errorf("parallel figure 13 differs from serial:\nserial:\n%s\nparallel:\n%s",
			serialTab.String(), parallelTab.String())
	}
}

func TestPrewarmFillsCacheCompletely(t *testing.T) {
	// After pre-warming an experiment's declared job set, building the
	// figure must be a pure cache read: no new simulations.
	m := NewMatrix(QuickScale)
	if err := m.Prewarm(context.Background(), []string{ExpFig13}, smallWorkloads); err != nil {
		t.Fatal(err)
	}
	runs := m.Runs()
	if want := 7 * len(smallWorkloads); runs != want { // L1-SRAM + 6 kinds
		t.Errorf("pre-warm should run the full matrix: %d runs, want %d", runs, want)
	}
	if _, err := Fig13NormalizedIPC(m, smallWorkloads); err != nil {
		t.Fatal(err)
	}
	if m.Runs() != runs {
		t.Errorf("figure build after pre-warm should add no runs: %d -> %d", runs, m.Runs())
	}

	// Figure 14 shares figure 13's matrix completely.
	if _, err := Fig14MissRate(m, smallWorkloads); err != nil {
		t.Fatal(err)
	}
	if m.Runs() != runs {
		t.Errorf("figure 14 should reuse figure 13's runs: %d -> %d", runs, m.Runs())
	}
}

func TestJobsDeclarationsMatchFigureDemand(t *testing.T) {
	// For every simulation-backed experiment, the declared job set must
	// cover everything the figure function requests: after Prewarm, the
	// figure build must not add a single run. Tiny scale keeps this cheap.
	scale := Scale{InstructionsPerWarp: 100, SMs: 1, Seed: 42}
	workloads := []string{"ATAX", "pathf"}
	for _, name := range AllExperiments() {
		m := NewMatrix(scale)
		if err := m.Prewarm(context.Background(), []string{name}, workloads); err != nil {
			t.Fatalf("%s: prewarm: %v", name, err)
		}
		runs := m.Runs()
		if _, err := RunContext(context.Background(), m, name, workloads); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Runs() != runs {
			t.Errorf("%s: figure build ran %d simulations missing from its Jobs declaration",
				name, m.Runs()-runs)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMatrix(QuickScale)
	if _, err := RunContext(ctx, m, ExpFig13, smallWorkloads); err == nil {
		t.Errorf("cancelled context should abort the experiment")
	}
	if m.Runs() != 0 {
		t.Errorf("cancelled prewarm should complete no runs, got %d", m.Runs())
	}
}

func TestScaleOptions(t *testing.T) {
	o := QuickScale.Options()
	if o.InstructionsPerWarp != QuickScale.InstructionsPerWarp || o.SMOverride != QuickScale.SMs || o.Seed != QuickScale.Seed {
		t.Errorf("Options() should mirror the scale: %+v", o)
	}
	if _, err := runOne(config.L1SRAM, "pathf", QuickScale); err != nil {
		t.Errorf("runOne: %v", err)
	}
}
