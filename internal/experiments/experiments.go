// Package experiments reproduces every table and figure of the paper's
// evaluation: each ExpXX function runs the required simulations and returns a
// text table whose rows correspond to the paper's bars/series. The absolute
// numbers come from our from-scratch simulator rather than GPGPU-Sim, so they
// are not expected to match the paper digit for digit; the shape (who wins,
// by roughly what factor, where the crossovers are) is the reproduction
// target, and EXPERIMENTS.md records both sides.
//
// Simulations are executed through the engine package: every figure declares
// its full job set up front (see Jobs), the Matrix pre-warms the engine's
// result cache in parallel, and the figure functions then read the cached
// results in deterministic order. Figures sharing runs (13, 14, 15, 16, 17)
// never re-simulate.
package experiments

import (
	"context"
	"fmt"
	"slices"

	"fuse/internal/config"
	"fuse/internal/dram"
	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/stats"
	"fuse/internal/trace"
)

// Scale controls how much work each simulation run does. The experiments are
// statistically stable well below the paper's one-billion-instruction runs;
// the scales below trade fidelity for wall-clock time.
type Scale struct {
	// InstructionsPerWarp is the per-warp instruction budget.
	InstructionsPerWarp uint64
	// SMs is the number of SMs simulated (the memory side is scaled
	// proportionally, see sim.Options.SMOverride).
	SMs int
	// Seed seeds the workload generators.
	Seed uint64
}

// Predefined scales.
var (
	// QuickScale is for unit tests.
	QuickScale = Scale{InstructionsPerWarp: 200, SMs: 2, Seed: 42}
	// BenchScale is for the repository's benchmark harness.
	BenchScale = Scale{InstructionsPerWarp: 400, SMs: 2, Seed: 42}
	// FullScale simulates the paper's full 15-SM GPU.
	FullScale = Scale{InstructionsPerWarp: 2000, SMs: 15, Seed: 42}
)

// Options converts the scale into simulator options.
func (s Scale) Options() sim.Options {
	return sim.Options{
		InstructionsPerWarp: s.InstructionsPerWarp,
		SMOverride:          s.SMs,
		Seed:                s.Seed,
	}
}

// Matrix is the experiment layer's view of the engine: a façade over
// engine.Runner that caches simulation results so that figures sharing the
// same runs (13, 14, 15, 16, 17) do not re-simulate, and that fills the
// cache in parallel when an experiment declares its job set up front.
type Matrix struct {
	scale  Scale
	runner *engine.Runner
	// backend, when non-empty, overrides the memory backend of every job
	// the matrix builds (see SetBackend). The backend-sweep experiment
	// bypasses it: its jobs pin their backends explicitly.
	backend string
}

// NewMatrix creates an empty result cache at the given scale, executing on
// the engine's default worker pool (GOMAXPROCS workers).
func NewMatrix(scale Scale) *Matrix {
	return NewMatrixRunner(scale, engine.New(engine.Config{}))
}

// NewMatrixWorkers creates a matrix whose engine uses the given number of
// workers (0 means GOMAXPROCS). Workers only matter for the batched
// pre-warm paths; the Get accessors are sequential either way.
func NewMatrixWorkers(scale Scale, workers int) *Matrix {
	return NewMatrixRunner(scale, engine.New(engine.Config{Workers: workers}))
}

// NewMatrixRunner wraps an existing engine Runner (the cmd tools build their
// own to attach progress callbacks and share the cache across experiments).
func NewMatrixRunner(scale Scale, r *engine.Runner) *Matrix {
	return &Matrix{scale: scale, runner: r}
}

// Scale returns the matrix's scale.
func (m *Matrix) Scale() Scale { return m.scale }

// Runner exposes the underlying engine Runner.
func (m *Matrix) Runner() *engine.Runner { return m.runner }

// SetBackend makes every job of this matrix run on the given memory backend
// (see dram.Backends; empty restores the configurations' own backends). The
// caller validates the name; figure functions and Jobs declarations build
// identical jobs either way, so pre-warmed caches keep hitting.
func (m *Matrix) SetBackend(name string) { m.backend = name }

// job builds the engine job for a kind-based simulation. A backend override
// materialises the GPU config (the engine's kind jobs are Fermi-default) and
// labels the job so it cannot collide with the unoverridden one.
func (m *Matrix) job(kind config.L1DKind, workload string) engine.Job {
	if m.backend != "" {
		return engine.BackendJob(kind, workload, m.backend, m.scale.Options())
	}
	return engine.Job{Kind: kind, Workload: workload, Opts: m.scale.Options()}
}

// customJob builds the engine job for a custom-GPU simulation. The label is
// the dedup identity, exactly as in the pre-engine Matrix.
func (m *Matrix) customJob(label string, gpuCfg config.GPUConfig, workload string) engine.Job {
	cfg := gpuCfg
	if m.backend != "" {
		cfg.MemBackend = m.backend
		label += "@" + m.backend
	}
	return engine.Job{Label: label, GPU: &cfg, Workload: workload, Opts: m.scale.Options()}
}

// backendJob builds one point of the backend sweep: the paper's full Dy-FUSE
// proposal on the Fermi-class GPU with the given memory backend. It bypasses
// any SetBackend override — the sweep's identity is its backend.
func (m *Matrix) backendJob(backend, workload string) engine.Job {
	return engine.BackendJob(config.DyFUSE, workload, backend, m.scale.Options())
}

// getBackend runs (or reads) one backend-sweep point.
func (m *Matrix) getBackend(backend, workload string) (sim.Result, error) {
	return m.runner.Get(context.Background(), m.backendJob(backend, workload))
}

// Get runs (or returns the cached result of) one simulation.
func (m *Matrix) Get(kind config.L1DKind, workload string) (sim.Result, error) {
	return m.runner.Get(context.Background(), m.job(kind, workload))
}

// GetCustom runs (or returns the cached result of) a simulation with a custom
// GPU configuration, keyed by a label instead of an L1D kind.
func (m *Matrix) GetCustom(label string, gpuCfg config.GPUConfig, workload string) (sim.Result, error) {
	return m.runner.Get(context.Background(), m.customJob(label, gpuCfg, workload))
}

// Runs returns the number of completed (cached) simulation results.
func (m *Matrix) Runs() int { return m.runner.Completed() }

// Prewarm executes the full job set of the named experiments in parallel on
// the engine's worker pool, so that the figure functions afterwards are pure
// cache reads. Jobs shared between experiments are deduplicated by the
// engine. A nil workloads slice means each experiment's default set.
func (m *Matrix) Prewarm(ctx context.Context, names []string, workloads []string) error {
	var jobs []engine.Job
	for _, name := range names {
		jobs = append(jobs, m.Jobs(name, workloads)...)
	}
	if len(jobs) == 0 {
		return nil
	}
	_, err := m.runner.RunBatch(ctx, jobs)
	return err
}

// backendSweepWorkloads resolves the backend sweep's workload set: its
// default is the memory-intensive motivation set (the sweep is about
// off-chip behaviour), not the full 21-workload matrix.
func backendSweepWorkloads(workloads []string) []string {
	if workloads == nil {
		return trace.MotivationWorkloads()
	}
	return workloads
}

// Jobs declares the full simulation set of one experiment: every (config,
// workload) point the figure function will request. Experiments that run no
// simulations (table1, table3, fig6, fig20) declare an empty set. A nil
// workloads slice means the experiment's default set.
func (m *Matrix) Jobs(name string, workloads []string) []engine.Job {
	if name == ExpBackends {
		var jobs []engine.Job
		for _, w := range backendSweepWorkloads(workloads) {
			for _, be := range dram.Backends() {
				jobs = append(jobs, m.backendJob(be, w))
			}
		}
		return jobs
	}
	if workloads == nil {
		workloads = AllWorkloads()
	}
	var jobs []engine.Job
	kindSet := func(kinds []config.L1DKind, ws []string) {
		for _, w := range ws {
			for _, k := range kinds {
				jobs = append(jobs, m.job(k, w))
			}
		}
	}
	switch name {
	case ExpFig1:
		kindSet([]config.L1DKind{config.L1SRAM}, workloads)
	case ExpFig3:
		mw := trace.MotivationWorkloads()
		kindSet([]config.L1DKind{config.L1SRAM, config.ByNVM}, mw)
		oracle := oracleGPU()
		for _, w := range mw {
			jobs = append(jobs, m.customJob("oracle", oracle, w))
		}
	case ExpFig7:
		ideal := idealFAGPU()
		for _, suite := range trace.Suites() {
			for _, w := range trace.BySuite(suite) {
				jobs = append(jobs, m.job(config.FAFUSE, w))
				jobs = append(jobs, m.customJob("ideal-fa", ideal, w))
			}
		}
	case ExpTable2:
		kindSet([]config.L1DKind{config.ByNVM}, workloads)
	case ExpFig13:
		kindSet(append([]config.L1DKind{config.L1SRAM}, fig13Kinds...), workloads)
	case ExpFig14:
		kindSet(append([]config.L1DKind{config.L1SRAM}, fig13Kinds...), workloads)
	case ExpFig15:
		kindSet([]config.L1DKind{config.Hybrid, config.BaseFUSE, config.FAFUSE}, workloads)
	case ExpFig16:
		kindSet([]config.L1DKind{config.DyFUSE}, workloads)
	case ExpFig17:
		kindSet(append([]config.L1DKind{config.L1SRAM}, fig17Kinds...), workloads)
	case ExpFig18:
		for _, w := range trace.RatioSweepWorkloads() {
			for _, r := range ratioPoints {
				cfg, err := ratioGPU(r.frac)
				if err != nil {
					continue // the figure function reports the error
				}
				jobs = append(jobs, m.customJob("ratio-"+r.label, cfg, w))
			}
		}
	case ExpFig19:
		for _, w := range workloads {
			jobs = append(jobs, m.customJob("volta-L1-SRAM", voltaGPU(config.L1SRAM), w))
			for _, kind := range fig19Kinds {
				jobs = append(jobs, m.customJob("volta-"+kind.String(), voltaGPU(kind), w))
			}
		}
	}
	return jobs
}

// fig13Kinds is the configuration order of Figures 13/14.
var fig13Kinds = []config.L1DKind{
	config.ByNVM, config.FASRAM, config.Hybrid,
	config.BaseFUSE, config.FAFUSE, config.DyFUSE,
}

// AllWorkloads returns the 21 workload names in figure order. It is pinned
// to the builtin benchmarks: registering custom workloads (workload files,
// the server's inline definitions) never changes what a paper figure means —
// pass an explicit workload subset to include them.
func AllWorkloads() []string { return trace.BuiltinNames() }

// Names of the experiments, usable with Run.
const (
	ExpFig1   = "fig1"
	ExpFig3   = "fig3"
	ExpFig6   = "fig6"
	ExpFig7   = "fig7"
	ExpTable1 = "table1"
	ExpTable2 = "table2"
	ExpFig13  = "fig13"
	ExpFig14  = "fig14"
	ExpFig15  = "fig15"
	ExpFig16  = "fig16"
	ExpFig17  = "fig17"
	ExpFig18  = "fig18"
	ExpFig19  = "fig19"
	ExpFig20  = "fig20"
	ExpTable3 = "table3"
	// ExpBackends is this repository's extension beyond the paper: the
	// DeepNVM++-style sweep of the main-memory technology behind the fixed
	// cache hierarchy.
	ExpBackends = "backends"
)

// AllExperiments lists every experiment identifier in paper order, followed
// by the repository's extensions.
func AllExperiments() []string {
	return []string{
		ExpFig1, ExpFig3, ExpFig6, ExpFig7, ExpTable1, ExpTable2,
		ExpFig13, ExpFig14, ExpFig15, ExpFig16, ExpFig17,
		ExpFig18, ExpFig19, ExpFig20, ExpTable3, ExpBackends,
	}
}

// Run executes one experiment by name over the given workloads (nil means the
// experiment's default set) using the matrix's scale and result cache.
func Run(m *Matrix, name string, workloads []string) (*stats.Table, error) {
	return RunContext(context.Background(), m, name, workloads)
}

// RunContext is Run with cancellation: it pre-warms the engine cache with the
// experiment's declared job set (executed in parallel on the matrix's worker
// pool), then builds the table from the cached results.
func RunContext(ctx context.Context, m *Matrix, name string, workloads []string) (*stats.Table, error) {
	if !slices.Contains(AllExperiments(), name) {
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", name, AllExperiments())
	}
	if err := m.Prewarm(ctx, []string{name}, workloads); err != nil {
		return nil, err
	}
	if name == ExpBackends {
		return BackendSweep(m, backendSweepWorkloads(workloads))
	}
	if workloads == nil {
		workloads = AllWorkloads()
	}
	switch name {
	case ExpFig1:
		return Fig1OffChipOverheads(m, workloads)
	case ExpFig3:
		return Fig3Motivation(m)
	case ExpFig6:
		return Fig6ReadLevelAnalysis(workloads, m.scale.Seed)
	case ExpFig7:
		return Fig7ApproxVsFullyAssociative(m)
	case ExpTable1:
		return Table1Configuration(), nil
	case ExpTable2:
		return Table2Workloads(m, workloads)
	case ExpFig13:
		return Fig13NormalizedIPC(m, workloads)
	case ExpFig14:
		return Fig14MissRate(m, workloads)
	case ExpFig15:
		return Fig15CacheStalls(m, workloads)
	case ExpFig16:
		return Fig16PredictorAccuracy(m, workloads)
	case ExpFig17:
		return Fig17L1DEnergy(m, workloads)
	case ExpFig18:
		return Fig18RatioSweep(m)
	case ExpFig19:
		return Fig19Volta(m, workloads)
	case ExpFig20:
		return Fig20CBFFalsePositives(m.scale.Seed)
	case ExpTable3:
		return Table3Area(), nil
	default:
		return nil, fmt.Errorf("experiments: experiment %q has no dispatch entry", name)
	}
}
