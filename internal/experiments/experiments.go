// Package experiments reproduces every table and figure of the paper's
// evaluation: each ExpXX function runs the required simulations and returns a
// text table whose rows correspond to the paper's bars/series. The absolute
// numbers come from our from-scratch simulator rather than GPGPU-Sim, so they
// are not expected to match the paper digit for digit; the shape (who wins,
// by roughly what factor, where the crossovers are) is the reproduction
// target, and EXPERIMENTS.md records both sides.
package experiments

import (
	"fmt"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/stats"
	"fuse/internal/trace"
)

// Scale controls how much work each simulation run does. The experiments are
// statistically stable well below the paper's one-billion-instruction runs;
// the scales below trade fidelity for wall-clock time.
type Scale struct {
	// InstructionsPerWarp is the per-warp instruction budget.
	InstructionsPerWarp uint64
	// SMs is the number of SMs simulated (the memory side is scaled
	// proportionally, see sim.Options.SMOverride).
	SMs int
	// Seed seeds the workload generators.
	Seed uint64
}

// Predefined scales.
var (
	// QuickScale is for unit tests.
	QuickScale = Scale{InstructionsPerWarp: 200, SMs: 2, Seed: 42}
	// BenchScale is for the repository's benchmark harness.
	BenchScale = Scale{InstructionsPerWarp: 400, SMs: 2, Seed: 42}
	// FullScale simulates the paper's full 15-SM GPU.
	FullScale = Scale{InstructionsPerWarp: 2000, SMs: 15, Seed: 42}
)

// Options converts the scale into simulator options.
func (s Scale) Options() sim.Options {
	return sim.Options{
		InstructionsPerWarp: s.InstructionsPerWarp,
		SMOverride:          s.SMs,
		Seed:                s.Seed,
	}
}

// Key identifies one (configuration, workload) simulation.
type Key struct {
	Kind     config.L1DKind
	Workload string
}

// Matrix caches simulation results so that figures sharing the same runs
// (13, 14, 15, 16, 17) do not re-simulate.
type Matrix struct {
	scale   Scale
	results map[Key]sim.Result
}

// NewMatrix creates an empty result cache at the given scale.
func NewMatrix(scale Scale) *Matrix {
	return &Matrix{scale: scale, results: make(map[Key]sim.Result)}
}

// Scale returns the matrix's scale.
func (m *Matrix) Scale() Scale { return m.scale }

// Get runs (or returns the cached result of) one simulation.
func (m *Matrix) Get(kind config.L1DKind, workload string) (sim.Result, error) {
	k := Key{kind, workload}
	if r, ok := m.results[k]; ok {
		return r, nil
	}
	r, err := sim.RunWorkload(kind, workload, m.scale.Options())
	if err != nil {
		return sim.Result{}, err
	}
	m.results[k] = r
	return r, nil
}

// GetCustom runs (or returns the cached result of) a simulation with a custom
// GPU configuration, keyed by a label instead of an L1D kind.
func (m *Matrix) GetCustom(label string, gpuCfg config.GPUConfig, workload string) (sim.Result, error) {
	k := Key{Kind: config.L1DKind(200 + len(label)%50), Workload: label + "/" + workload}
	if r, ok := m.results[k]; ok {
		return r, nil
	}
	prof, ok := trace.ProfileByName(workload)
	if !ok {
		return sim.Result{}, fmt.Errorf("experiments: unknown workload %q", workload)
	}
	s, err := sim.New(gpuCfg, prof, m.scale.Options())
	if err != nil {
		return sim.Result{}, err
	}
	r := s.Run()
	m.results[k] = r
	return r, nil
}

// Runs returns the number of cached simulation results.
func (m *Matrix) Runs() int { return len(m.results) }

// fig13Kinds is the configuration order of Figures 13/14.
var fig13Kinds = []config.L1DKind{
	config.ByNVM, config.FASRAM, config.Hybrid,
	config.BaseFUSE, config.FAFUSE, config.DyFUSE,
}

// AllWorkloads returns the 21 workload names in figure order.
func AllWorkloads() []string { return trace.Names() }

// Names of the experiments, usable with Run.
const (
	ExpFig1   = "fig1"
	ExpFig3   = "fig3"
	ExpFig6   = "fig6"
	ExpFig7   = "fig7"
	ExpTable1 = "table1"
	ExpTable2 = "table2"
	ExpFig13  = "fig13"
	ExpFig14  = "fig14"
	ExpFig15  = "fig15"
	ExpFig16  = "fig16"
	ExpFig17  = "fig17"
	ExpFig18  = "fig18"
	ExpFig19  = "fig19"
	ExpFig20  = "fig20"
	ExpTable3 = "table3"
)

// AllExperiments lists every experiment identifier in paper order.
func AllExperiments() []string {
	return []string{
		ExpFig1, ExpFig3, ExpFig6, ExpFig7, ExpTable1, ExpTable2,
		ExpFig13, ExpFig14, ExpFig15, ExpFig16, ExpFig17,
		ExpFig18, ExpFig19, ExpFig20, ExpTable3,
	}
}

// Run executes one experiment by name over the given workloads (nil means the
// experiment's default set) using the matrix's scale and result cache.
func Run(m *Matrix, name string, workloads []string) (*stats.Table, error) {
	if workloads == nil {
		workloads = AllWorkloads()
	}
	switch name {
	case ExpFig1:
		return Fig1OffChipOverheads(m, workloads)
	case ExpFig3:
		return Fig3Motivation(m)
	case ExpFig6:
		return Fig6ReadLevelAnalysis(workloads, m.scale.Seed)
	case ExpFig7:
		return Fig7ApproxVsFullyAssociative(m)
	case ExpTable1:
		return Table1Configuration(), nil
	case ExpTable2:
		return Table2Workloads(m, workloads)
	case ExpFig13:
		return Fig13NormalizedIPC(m, workloads)
	case ExpFig14:
		return Fig14MissRate(m, workloads)
	case ExpFig15:
		return Fig15CacheStalls(m, workloads)
	case ExpFig16:
		return Fig16PredictorAccuracy(m, workloads)
	case ExpFig17:
		return Fig17L1DEnergy(m, workloads)
	case ExpFig18:
		return Fig18RatioSweep(m)
	case ExpFig19:
		return Fig19Volta(m, workloads)
	case ExpFig20:
		return Fig20CBFFalsePositives(m.scale.Seed)
	case ExpTable3:
		return Table3Area(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", name, AllExperiments())
	}
}
