package experiments

import (
	"context"
	"sync/atomic"
	"testing"

	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/store"
)

// storeBackedMatrix builds a Matrix whose engine composes a fresh memory tier
// over the given disk store and counts real simulator executions.
func storeBackedMatrix(t *testing.T, dir string, execs *atomic.Int32) *Matrix {
	t.Helper()
	disk, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := engine.New(engine.Config{
		Cache: store.NewTiered(store.NewMemory(), disk),
		Exec: func(ctx context.Context, job engine.Job) (sim.Result, error) {
			execs.Add(1)
			return engine.Execute(ctx, job)
		},
	})
	return NewMatrixRunner(QuickScale, r)
}

func TestFigureWarmFromStoreRunsZeroSimulations(t *testing.T) {
	// End-to-end warm-store reproduction: running a figure twice against one
	// store directory must simulate everything exactly once, and the second
	// (warm) run must render a byte-identical table from pure store reads.
	dir := t.TempDir()

	var cold atomic.Int32
	m1 := storeBackedMatrix(t, dir, &cold)
	t1, err := Run(m1, ExpFig13, smallWorkloads)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Load() == 0 {
		t.Fatalf("cold run should simulate")
	}

	var warm atomic.Int32
	m2 := storeBackedMatrix(t, dir, &warm)
	t2, err := Run(m2, ExpFig13, smallWorkloads)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Load(); got != 0 {
		t.Errorf("warm run executed %d simulations, want 0", got)
	}
	if got := m2.Runner().StoreHits(); int32(got) != cold.Load() {
		t.Errorf("warm run store hits = %d, want %d", got, cold.Load())
	}
	if t1.String() != t2.String() {
		t.Errorf("warm table differs from cold table:\n--- cold ---\n%s\n--- warm ---\n%s", t1, t2)
	}

	// A second figure sharing the same runs (fig14 reads the fig13 matrix)
	// is warm too.
	var shared atomic.Int32
	m3 := storeBackedMatrix(t, dir, &shared)
	if _, err := Run(m3, ExpFig14, smallWorkloads); err != nil {
		t.Fatal(err)
	}
	if got := shared.Load(); got != 0 {
		t.Errorf("fig14 against the warm store executed %d simulations, want 0", got)
	}
}
