package experiments

import (
	"fmt"

	"fuse/internal/area"
	"fuse/internal/cbf"
	"fuse/internal/config"
	"fuse/internal/dram"
	"fuse/internal/energy"
	"fuse/internal/mem"
	"fuse/internal/sim"
	"fuse/internal/stats"
	"fuse/internal/trace"
)

// Shared GPU-config constructors. The figure functions and the Matrix's job
// declarations (Jobs in experiments.go) must build byte-identical
// configurations under the same labels, or the pre-warmed cache would miss;
// these helpers are the single source of both.

// oracleGPU is Figure 3's ideal very-large L1D.
func oracleGPU() config.GPUConfig { return config.FermiGPU(config.OracleL1D()) }

// idealFAGPU is Figure 7b's comparator-unconstrained fully-associative
// STT-MRAM bank: same geometry as FA-FUSE but without the approximation
// logic (tag search is free and exact).
func idealFAGPU() config.GPUConfig {
	ideal := config.NewL1DConfig(config.FAFUSE)
	ideal.ApproxFullyAssociative = false
	ideal.Comparators = 0
	ideal.CBFCount = 0
	ideal.CBFHashes = 0
	ideal.CBFSlots = 0
	return config.FermiGPU(ideal)
}

// voltaGPU is Figure 19's Volta-class GPU: the L1 budget is 128 KB, so every
// configuration is scaled by 4x.
func voltaGPU(kind config.L1DKind) config.GPUConfig {
	return config.VoltaGPU(config.ScaleL1D(config.NewL1DConfig(kind), 4))
}

// ratioPoints are Figure 18's SRAM-fraction sweep points.
var ratioPoints = []struct {
	label string
	frac  float64
}{
	{"1/16", 1.0 / 16}, {"1/8", 1.0 / 8}, {"1/4", 1.0 / 4}, {"1/2", 1.0 / 2}, {"3/4", 3.0 / 4},
}

// ratioGPU builds the Dy-FUSE configuration with the given SRAM fraction.
func ratioGPU(frac float64) (config.GPUConfig, error) {
	cfg, err := config.WithRatio(config.DyFUSE, frac)
	if err != nil {
		return config.GPUConfig{}, err
	}
	return config.FermiGPU(cfg), nil
}

// fig17Kinds is the configuration order of Figure 17.
var fig17Kinds = []config.L1DKind{config.ByNVM, config.BaseFUSE, config.FAFUSE, config.DyFUSE}

// fig19Kinds is the configuration order of Figure 19.
var fig19Kinds = []config.L1DKind{config.ByNVM, config.Hybrid, config.BaseFUSE, config.FAFUSE, config.DyFUSE}

// Fig1OffChipOverheads reproduces Figure 1: the fraction of execution time
// and of GPU energy spent servicing off-chip memory accesses on the baseline
// L1-SRAM GPU.
func Fig1OffChipOverheads(m *Matrix, workloads []string) (*stats.Table, error) {
	t := stats.NewTable("Figure 1: off-chip overhead on the baseline GPU",
		"workload", "time.network", "time.dram", "time.offchip", "energy.offchip")
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
	var timeFracs, energyFracs []float64
	for _, w := range workloads {
		res, err := m.Get(config.L1SRAM, w)
		if err != nil {
			return nil, err
		}
		e := energy.FromResult(res, gpuCfg)
		t.AddRowValues(w, res.NetworkFraction, res.DRAMFraction, res.OffChipFraction, e.OffChipFraction())
		timeFracs = append(timeFracs, res.OffChipFraction)
		energyFracs = append(energyFracs, e.OffChipFraction())
	}
	t.AddRowValues("MEAN", 0, 0, stats.Mean(timeFracs), stats.Mean(energyFracs))
	return t, nil
}

// Fig3Motivation reproduces Figure 3: L1D miss rate and IPC (normalised to
// the Vanilla GPU) for the Vanilla, pure-STT-MRAM and Oracle caches on the
// seven memory-intensive motivation workloads.
func Fig3Motivation(m *Matrix) (*stats.Table, error) {
	t := stats.NewTable("Figure 3: motivation (Vanilla vs STT-MRAM vs Oracle)",
		"workload", "miss.vanilla", "miss.sttmram", "miss.oracle", "ipc.vanilla", "ipc.sttmram", "ipc.oracle")
	oracle := oracleGPU()
	for _, w := range trace.MotivationWorkloads() {
		vanilla, err := m.Get(config.L1SRAM, w)
		if err != nil {
			return nil, err
		}
		stt, err := m.Get(config.ByNVM, w)
		if err != nil {
			return nil, err
		}
		res, err := m.GetCustom("oracle", oracle, w)
		if err != nil {
			return nil, err
		}
		t.AddRowValues(w,
			vanilla.L1DMissRate, stt.L1DMissRate, res.L1DMissRate,
			1.0, stt.SpeedupOver(vanilla), res.SpeedupOver(vanilla))
	}
	return t, nil
}

// Fig6ReadLevelAnalysis reproduces Figure 6: the fraction of data blocks in
// each read-level category per workload.
func Fig6ReadLevelAnalysis(workloads []string, seed uint64) (*stats.Table, error) {
	t := stats.NewTable("Figure 6: read-level analysis (fraction of data blocks)",
		"workload", "WM", "read-intensive", "WORM", "WORO", "write-fraction")
	const instructions = 400000
	var worm []float64
	for _, w := range workloads {
		prof, ok := trace.ProfileByName(w)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", w)
		}
		bp := trace.AnalyzeProfile(prof, instructions, seed)
		t.AddRowValues(w,
			bp.Fractions[mem.WriteMultiple], bp.Fractions[mem.ReadIntensive],
			bp.Fractions[mem.WORM], bp.Fractions[mem.WORO], bp.WriteFraction)
		worm = append(worm, bp.Fractions[mem.WORM]+bp.Fractions[mem.WORO])
	}
	t.AddRowValues("MEAN(WORM+WORO)", 0, 0, stats.Mean(worm))
	return t, nil
}

// Fig7ApproxVsFullyAssociative reproduces Figure 7b: IPC of the
// associativity-approximation logic relative to an ideal fully-associative
// STT-MRAM bank, per benchmark suite.
func Fig7ApproxVsFullyAssociative(m *Matrix) (*stats.Table, error) {
	t := stats.NewTable("Figure 7b: approximation vs. ideal fully-associative STT-MRAM bank",
		"suite", "ipc.approx/ipc.fullyassoc")
	idealGPU := idealFAGPU()
	for _, suite := range trace.Suites() {
		var ratios []float64
		for _, w := range trace.BySuite(suite) {
			approx, err := m.Get(config.FAFUSE, w)
			if err != nil {
				return nil, err
			}
			full, err := m.GetCustom("ideal-fa", idealGPU, w)
			if err != nil {
				return nil, err
			}
			if full.IPC > 0 {
				ratios = append(ratios, approx.IPC/full.IPC)
			}
		}
		t.AddRowValues(suite, stats.GeoMean(ratios))
	}
	return t, nil
}

// Table1Configuration reproduces Table I: the simulated GPU and L1D
// configuration parameters.
func Table1Configuration() *stats.Table {
	t := stats.NewTable("Table I: GPU simulation configuration",
		"config", "SRAM KB", "STT KB", "SRAM sets x ways", "STT sets x ways",
		"swap buf", "tag queue", "CBFs", "predictor")
	for _, kind := range config.AllL1DKinds {
		cfg := config.NewL1DConfig(kind)
		pred := "no"
		if cfg.UseReadLevelPredictor {
			pred = "yes"
		}
		if cfg.UseDeadWriteBypass {
			pred = "dead-write"
		}
		t.AddRow(kind.String(),
			fmt.Sprintf("%d", cfg.SRAMKB), fmt.Sprintf("%d", cfg.STTMRAMKB),
			fmt.Sprintf("%dx%d", cfg.SRAMSets, cfg.SRAMWays),
			fmt.Sprintf("%dx%d", cfg.STTSets, cfg.STTWays),
			fmt.Sprintf("%d", cfg.SwapBufferEntries),
			fmt.Sprintf("%d", cfg.TagQueueEntries),
			fmt.Sprintf("%d", cfg.CBFCount), pred)
	}
	g := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	t.AddRow("GPU", fmt.Sprintf("%d SMs", g.SMs), fmt.Sprintf("%d warps/SM", g.WarpsPerSM),
		fmt.Sprintf("L2 %d KB x %d banks", g.L2KBTotal, g.L2Banks),
		fmt.Sprintf("%d DRAM ch", g.DRAMChannels),
		fmt.Sprintf("tCL=%d", g.TCL), fmt.Sprintf("tRCD=%d", g.TRCD), fmt.Sprintf("tRAS=%d", g.TRAS), "")
	return t
}

// Table2Workloads reproduces Table II: per-workload APKI and By-NVM bypass
// ratio (measured alongside the paper's reported values).
func Table2Workloads(m *Matrix, workloads []string) (*stats.Table, error) {
	t := stats.NewTable("Table II: workload characterisation",
		"workload", "suite", "APKI(paper)", "APKI(measured)", "bypass(paper)", "bypass(measured)")
	for _, w := range workloads {
		prof, ok := trace.ProfileByName(w)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", w)
		}
		bp := trace.AnalyzeProfile(prof, 200000, m.scale.Seed)
		res, err := m.Get(config.ByNVM, w)
		if err != nil {
			return nil, err
		}
		measuredBypass := 0.0
		if total := res.L1D.Misses + res.L1D.Bypasses; total > 0 {
			measuredBypass = float64(res.L1D.Bypasses) / float64(total)
		}
		t.AddRow(w, prof.Suite,
			stats.FormatFloat(prof.APKI), stats.FormatFloat(bp.MeasuredAPKI),
			stats.FormatFloat(prof.PaperBypassRatio), stats.FormatFloat(measuredBypass))
	}
	return t, nil
}

// Fig13NormalizedIPC reproduces Figure 13: IPC of the six non-baseline L1D
// configurations normalised to L1-SRAM, per workload plus the geometric mean.
func Fig13NormalizedIPC(m *Matrix, workloads []string) (*stats.Table, error) {
	t := stats.NewTable("Figure 13: IPC normalised to L1-SRAM",
		"workload", "By-NVM", "FA-SRAM", "Hybrid", "Base-FUSE", "FA-FUSE", "Dy-FUSE")
	speedups := make(map[config.L1DKind][]float64)
	for _, w := range workloads {
		base, err := m.Get(config.L1SRAM, w)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(fig13Kinds))
		for _, kind := range fig13Kinds {
			res, err := m.Get(kind, w)
			if err != nil {
				return nil, err
			}
			s := res.SpeedupOver(base)
			row = append(row, s)
			speedups[kind] = append(speedups[kind], s)
		}
		t.AddRowValues(w, row...)
	}
	gmeans := make([]float64, 0, len(fig13Kinds))
	for _, kind := range fig13Kinds {
		gmeans = append(gmeans, stats.GeoMean(speedups[kind]))
	}
	t.AddRowValues("GMEAN", gmeans...)
	return t, nil
}

// Fig14MissRate reproduces Figure 14: L1D miss rate of all seven
// configurations per workload.
func Fig14MissRate(m *Matrix, workloads []string) (*stats.Table, error) {
	kinds := append([]config.L1DKind{config.L1SRAM}, fig13Kinds...)
	cols := []string{"workload"}
	for _, k := range kinds {
		cols = append(cols, k.String())
	}
	t := stats.NewTable("Figure 14: L1D miss rate", cols...)
	sums := make([]float64, len(kinds))
	for _, w := range workloads {
		row := make([]float64, 0, len(kinds))
		for i, kind := range kinds {
			res, err := m.Get(kind, w)
			if err != nil {
				return nil, err
			}
			row = append(row, res.L1DMissRate)
			sums[i] += res.L1DMissRate
		}
		t.AddRowValues(w, row...)
	}
	if len(workloads) > 0 {
		means := make([]float64, len(kinds))
		for i := range sums {
			means[i] = sums[i] / float64(len(workloads))
		}
		t.AddRowValues("MEAN", means...)
	}
	return t, nil
}

// Fig15CacheStalls reproduces Figure 15: L1D stall cycles caused by STT-MRAM
// writes and tag searching in Hybrid, Base-FUSE and FA-FUSE, normalised to
// the STT-MRAM stalls of Hybrid.
func Fig15CacheStalls(m *Matrix, workloads []string) (*stats.Table, error) {
	t := stats.NewTable("Figure 15: L1D stalls normalised to Hybrid's STT-MRAM stalls",
		"workload", "Hybrid.stt", "BaseFUSE.stt", "BaseFUSE.tag", "FAFUSE.stt", "FAFUSE.tag")
	for _, w := range workloads {
		hybrid, err := m.Get(config.Hybrid, w)
		if err != nil {
			return nil, err
		}
		base, err := m.Get(config.BaseFUSE, w)
		if err != nil {
			return nil, err
		}
		fa, err := m.Get(config.FAFUSE, w)
		if err != nil {
			return nil, err
		}
		norm := float64(hybrid.STTWriteStalls)
		if norm == 0 {
			norm = 1
		}
		t.AddRowValues(w,
			float64(hybrid.STTWriteStalls)/norm,
			float64(base.STTWriteStalls)/norm,
			float64(base.TagSearchStalls)/norm,
			float64(fa.STTWriteStalls)/norm,
			float64(fa.TagSearchStalls)/norm)
	}
	return t, nil
}

// Fig16PredictorAccuracy reproduces Figure 16: the true/neutral/false
// fractions of the Dy-FUSE read-level predictor per workload.
func Fig16PredictorAccuracy(m *Matrix, workloads []string) (*stats.Table, error) {
	t := stats.NewTable("Figure 16: read-level predictor accuracy",
		"workload", "true", "neutral", "false")
	var trues []float64
	for _, w := range workloads {
		res, err := m.Get(config.DyFUSE, w)
		if err != nil {
			return nil, err
		}
		t.AddRowValues(w, res.PredTrue, res.PredNeutral, res.PredFalse)
		trues = append(trues, res.PredTrue+res.PredNeutral)
	}
	t.AddRowValues("MEAN(true+neutral)", stats.Mean(trues))
	return t, nil
}

// Fig17L1DEnergy reproduces Figure 17: L1D energy of By-NVM, Base-FUSE,
// FA-FUSE and Dy-FUSE normalised to L1-SRAM.
func Fig17L1DEnergy(m *Matrix, workloads []string) (*stats.Table, error) {
	kinds := fig17Kinds
	t := stats.NewTable("Figure 17: L1D energy normalised to L1-SRAM",
		"workload", "By-NVM", "Base-FUSE", "FA-FUSE", "Dy-FUSE")
	geo := make(map[config.L1DKind][]float64)
	for _, w := range workloads {
		base, err := m.Get(config.L1SRAM, w)
		if err != nil {
			return nil, err
		}
		baseGPU := config.FermiGPU(config.NewL1DConfig(config.L1SRAM))
		baseEnergy := energy.FromResult(base, baseGPU).L1DTotal()
		if baseEnergy == 0 {
			baseEnergy = 1
		}
		row := make([]float64, 0, len(kinds))
		for _, kind := range kinds {
			res, err := m.Get(kind, w)
			if err != nil {
				return nil, err
			}
			gpuCfg := config.FermiGPU(config.NewL1DConfig(kind))
			e := energy.FromResult(res, gpuCfg).L1DTotal()
			row = append(row, e/baseEnergy)
			geo[kind] = append(geo[kind], e/baseEnergy)
		}
		t.AddRowValues(w, row...)
	}
	gmeans := make([]float64, 0, len(kinds))
	for _, kind := range kinds {
		gmeans = append(gmeans, stats.GeoMean(geo[kind]))
	}
	t.AddRowValues("GMEAN", gmeans...)
	return t, nil
}

// Fig18RatioSweep reproduces Figure 18: IPC and L1D miss rate of Dy-FUSE
// under different SRAM:STT-MRAM area splits, normalised to the 1/16 split.
func Fig18RatioSweep(m *Matrix) (*stats.Table, error) {
	ratios := ratioPoints
	t := stats.NewTable("Figure 18: SRAM fraction sweep (Dy-FUSE), IPC normalised to 1/16 and miss rate",
		"workload", "ipc 1/16", "ipc 1/8", "ipc 1/4", "ipc 1/2", "ipc 3/4",
		"miss 1/16", "miss 1/8", "miss 1/4", "miss 1/2", "miss 3/4")
	for _, w := range trace.RatioSweepWorkloads() {
		ipcs := make([]float64, 0, len(ratios))
		misses := make([]float64, 0, len(ratios))
		for _, r := range ratios {
			cfg, err := ratioGPU(r.frac)
			if err != nil {
				return nil, err
			}
			res, err := m.GetCustom("ratio-"+r.label, cfg, w)
			if err != nil {
				return nil, err
			}
			ipcs = append(ipcs, res.IPC)
			misses = append(misses, res.L1DMissRate)
		}
		base := ipcs[0]
		if base == 0 {
			base = 1
		}
		row := make([]float64, 0, 2*len(ratios))
		for _, v := range ipcs {
			row = append(row, v/base)
		}
		row = append(row, misses...)
		t.AddRowValues(w, row...)
	}
	return t, nil
}

// Fig19Volta reproduces Figure 19: IPC of the configurations on a Volta-class
// GPU (84 SMs, 6 MB L2, 128 KB L1 budget), normalised to L1-SRAM.
func Fig19Volta(m *Matrix, workloads []string) (*stats.Table, error) {
	kinds := fig19Kinds
	t := stats.NewTable("Figure 19: Volta-class GPU, IPC normalised to L1-SRAM",
		"workload", "By-NVM", "Hybrid", "Base-FUSE", "FA-FUSE", "Dy-FUSE")
	geo := make(map[config.L1DKind][]float64)
	for _, w := range workloads {
		base, err := m.GetCustom("volta-L1-SRAM", voltaGPU(config.L1SRAM), w)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(kinds))
		for _, kind := range kinds {
			res, err := m.GetCustom("volta-"+kind.String(), voltaGPU(kind), w)
			if err != nil {
				return nil, err
			}
			s := res.SpeedupOver(base)
			row = append(row, s)
			geo[kind] = append(geo[kind], s)
		}
		t.AddRowValues(w, row...)
	}
	gmeans := make([]float64, 0, len(kinds))
	for _, kind := range kinds {
		gmeans = append(gmeans, stats.GeoMean(geo[kind]))
	}
	t.AddRowValues("GMEAN", gmeans...)
	return t, nil
}

// Fig20CBFFalsePositives reproduces Figure 20: the CBF false-positive rate as
// a function of the number of hash functions (a) and of counter slots (b).
// The CBFs guard a 512-block fully-associative STT-MRAM bank whose contents
// are driven by each workload's block stream.
func Fig20CBFFalsePositives(seed uint64) (*stats.Table, error) {
	t := stats.NewTable("Figure 20: CBF false-positive rate",
		"workload", "1 hash", "2 hash", "3 hash", "4 hash", "5 hash",
		"32 slots", "64 slots", "128 slots")
	const (
		bankBlocks   = 512
		instructions = 150000
	)
	measure := func(prof trace.Profile, hashes, slots int) float64 {
		filter := cbf.NewNVMCBF(128, slots, hashes)
		k := trace.NewKernel(prof, 0, seed)
		resident := make([]uint64, 0, bankBlocks)
		inBank := make(map[uint64]bool, bankBlocks)
		for i := 0; i < instructions; i++ {
			ins := k.Next(i % 48)
			if !ins.IsMem {
				continue
			}
			b := mem.BlockAlign(ins.Addr)
			filter.Test(b)
			if inBank[b] {
				continue
			}
			// Fill the bank, evicting FIFO.
			if len(resident) >= bankBlocks {
				victim := resident[0]
				resident = resident[1:]
				delete(inBank, victim)
				filter.Remove(victim)
			}
			resident = append(resident, b)
			inBank[b] = true
			filter.Insert(b)
		}
		return filter.FalsePositiveRate()
	}
	for _, w := range trace.CBFStudyWorkloads() {
		prof, ok := trace.ProfileByName(w)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", w)
		}
		row := make([]float64, 0, 8)
		for _, h := range []int{1, 2, 3, 4, 5} {
			row = append(row, measure(prof, h, 128))
		}
		for _, s := range []int{32, 64, 128} {
			row = append(row, measure(prof, 3, s))
		}
		t.AddRowValues(w, row...)
	}
	return t, nil
}

// Table3Area reproduces Table III: the transistor-count area estimation of
// the L1-SRAM baseline and the Dy-FUSE cache.
func Table3Area() *stats.Table {
	t := stats.NewTable("Table III: area estimation (transistors)",
		"component", "L1-SRAM", "Dy-FUSE")
	base := area.L1SRAM()
	fuse := area.DyFUSE()
	names := []string{}
	seen := map[string]bool{}
	for _, c := range append(append([]area.Component{}, base.Components...), fuse.Components...) {
		if !seen[c.Name] {
			seen[c.Name] = true
			names = append(names, c.Name)
		}
	}
	for _, n := range names {
		b, _ := base.Lookup(n)
		f, _ := fuse.Lookup(n)
		t.AddRow(n, fmt.Sprintf("%d", b), fmt.Sprintf("%d", f))
	}
	t.AddRow("TOTAL", fmt.Sprintf("%d", base.Total()), fmt.Sprintf("%d", fuse.Total()))
	t.AddRow("overhead", "-", fmt.Sprintf("%.2f%%", area.OverheadPercent()))
	return t
}

// BackendSweep is the repository's DeepNVM++-style extension: the paper's
// full Dy-FUSE proposal evaluated over every registered off-chip memory
// backend (GDDR5 baseline, GDDR5X, HBM2, an STT-MRAM main-memory point)
// behind the unchanged cache hierarchy. IPC is normalised to the GDDR5
// baseline; the energy columns are the memory controller's dynamic energy in
// micro-joules charged through the backend's per-command hooks.
func BackendSweep(m *Matrix, workloads []string) (*stats.Table, error) {
	backends := dram.Backends()
	cols := []string{"workload"}
	for _, be := range backends {
		cols = append(cols, "ipc."+be)
	}
	for _, be := range backends {
		cols = append(cols, "uJ."+be)
	}
	t := stats.NewTable("Backend sweep: Dy-FUSE across off-chip memory technologies (IPC normalised to GDDR5)", cols...)
	speedups := make([][]float64, len(backends))
	energies := make([][]float64, len(backends))
	for _, w := range workloads {
		results := make([]sim.Result, len(backends))
		for i, be := range backends {
			res, err := m.getBackend(be, w)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		vals := make([]float64, 0, 2*len(backends))
		for i, res := range results {
			s := res.SpeedupOver(results[0])
			speedups[i] = append(speedups[i], s)
			vals = append(vals, s)
		}
		for i, res := range results {
			uj := res.DRAMEnergyNJ / 1000
			energies[i] = append(energies[i], uj)
			vals = append(vals, uj)
		}
		t.AddRowValues(w, vals...)
	}
	means := make([]float64, 0, 2*len(backends))
	for i := range backends {
		means = append(means, stats.Mean(speedups[i]))
	}
	for i := range backends {
		means = append(means, stats.Mean(energies[i]))
	}
	t.AddRowValues("MEAN", means...)
	return t, nil
}

// helper used in tests to run a single simulation at a scale without a matrix.
func runOne(kind config.L1DKind, workload string, sc Scale) (sim.Result, error) {
	return sim.RunWorkload(kind, workload, sc.Options())
}
