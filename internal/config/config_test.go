package config

import (
	"strings"
	"testing"
)

func TestAllL1DConfigsValidate(t *testing.T) {
	for _, kind := range AllL1DKinds {
		cfg := NewL1DConfig(kind)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
		if cfg.Kind != kind {
			t.Errorf("%v: Kind field = %v", kind, cfg.Kind)
		}
	}
}

func TestL1DKindString(t *testing.T) {
	want := map[L1DKind]string{
		L1SRAM:   "L1-SRAM",
		FASRAM:   "FA-SRAM",
		ByNVM:    "By-NVM",
		Hybrid:   "Hybrid",
		BaseFUSE: "Base-FUSE",
		FAFUSE:   "FA-FUSE",
		DyFUSE:   "Dy-FUSE",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.Contains(L1DKind(99).String(), "99") {
		t.Errorf("unknown kind string should mention the value")
	}
}

func TestParseL1DKind(t *testing.T) {
	for _, k := range AllL1DKinds {
		got, err := ParseL1DKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseL1DKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseL1DKind("nonsense"); err == nil {
		t.Errorf("expected error for unknown name")
	}
}

func TestTableICapacities(t *testing.T) {
	l1 := NewL1DConfig(L1SRAM)
	if l1.SRAMKB != 32 || l1.STTMRAMKB != 0 || l1.SRAMSets != 64 || l1.SRAMWays != 4 {
		t.Errorf("L1-SRAM config mismatch: %+v", l1)
	}
	nvm := NewL1DConfig(ByNVM)
	if nvm.STTMRAMKB != 128 || nvm.SRAMKB != 0 || !nvm.UseDeadWriteBypass {
		t.Errorf("By-NVM config mismatch: %+v", nvm)
	}
	hy := NewL1DConfig(Hybrid)
	if hy.SRAMKB != 16 || hy.STTMRAMKB != 64 || hy.SwapBufferEntries != 0 || hy.TagQueueEntries != 0 {
		t.Errorf("Hybrid config mismatch: %+v", hy)
	}
	base := NewL1DConfig(BaseFUSE)
	if base.SwapBufferEntries != 3 || base.TagQueueEntries != 16 || base.ApproxFullyAssociative {
		t.Errorf("Base-FUSE config mismatch: %+v", base)
	}
	fa := NewL1DConfig(FAFUSE)
	if !fa.ApproxFullyAssociative || fa.STTSets != 1 || fa.STTWays != 512 || fa.Comparators != 4 {
		t.Errorf("FA-FUSE config mismatch: %+v", fa)
	}
	dy := NewL1DConfig(DyFUSE)
	if !dy.UseReadLevelPredictor || !dy.ApproxFullyAssociative {
		t.Errorf("Dy-FUSE config mismatch: %+v", dy)
	}
	if dy.CBFCount != 128 || dy.CBFHashes != 3 {
		t.Errorf("Dy-FUSE CBF config mismatch: %+v", dy)
	}
}

func TestBlocksArithmetic(t *testing.T) {
	cfg := NewL1DConfig(DyFUSE)
	if cfg.SRAMBlocks() != 128 {
		t.Errorf("16KB SRAM should hold 128 blocks, got %d", cfg.SRAMBlocks())
	}
	if cfg.STTBlocks() != 512 {
		t.Errorf("64KB STT-MRAM should hold 512 blocks, got %d", cfg.STTBlocks())
	}
	if cfg.TotalKB() != 80 {
		t.Errorf("TotalKB = %d, want 80", cfg.TotalKB())
	}
}

func TestValidateCatchesBrokenGeometry(t *testing.T) {
	cfg := NewL1DConfig(L1SRAM)
	cfg.SRAMSets = 63
	if err := cfg.Validate(); err == nil {
		t.Errorf("expected geometry error")
	}
	cfg = NewL1DConfig(DyFUSE)
	cfg.STTWays = 17
	if err := cfg.Validate(); err == nil {
		t.Errorf("expected STT geometry error")
	}
	cfg = NewL1DConfig(L1SRAM)
	cfg.MSHREntries = 0
	if err := cfg.Validate(); err == nil {
		t.Errorf("expected MSHR error")
	}
	cfg = NewL1DConfig(FAFUSE)
	cfg.CBFCount = 0
	if err := cfg.Validate(); err == nil {
		t.Errorf("expected CBF parameter error")
	}
	cfg = L1DConfig{}
	if err := cfg.Validate(); err == nil {
		t.Errorf("expected zero-capacity error")
	}
	cfg = L1DConfig{SRAMKB: -1}
	if err := cfg.Validate(); err == nil {
		t.Errorf("expected negative-capacity error")
	}
}

func TestWithRatio(t *testing.T) {
	fracs := []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 3.0 / 4}
	prevTotal := 1 << 30
	for _, f := range fracs {
		cfg, err := WithRatio(DyFUSE, f)
		if err != nil {
			t.Fatalf("WithRatio(%v): %v", f, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("WithRatio(%v) invalid: %v", f, err)
		}
		// The area budget is fixed, so a larger SRAM fraction means a
		// smaller total capacity.
		if cfg.TotalKB() > prevTotal {
			t.Errorf("total capacity should shrink as SRAM fraction grows: f=%v total=%d prev=%d",
				f, cfg.TotalKB(), prevTotal)
		}
		prevTotal = cfg.TotalKB()
		gotFrac := float64(cfg.SRAMKB) / float64(cfg.TotalKB())
		if gotFrac < f*0.6 || gotFrac > f*1.5 {
			t.Errorf("SRAM fraction %v far from requested %v", gotFrac, f)
		}
	}
	if _, err := WithRatio(DyFUSE, 0); err == nil {
		t.Errorf("expected error for zero fraction")
	}
	if _, err := WithRatio(DyFUSE, 1); err == nil {
		t.Errorf("expected error for fraction of one")
	}
	if _, err := WithRatio(L1SRAM, 0.5); err == nil {
		t.Errorf("expected error for non-hybrid kind")
	}
}

func TestFermiGPUConfig(t *testing.T) {
	g := FermiGPU(NewL1DConfig(DyFUSE))
	if err := g.Validate(); err != nil {
		t.Fatalf("Fermi config invalid: %v", err)
	}
	if g.SMs != 15 || g.WarpsPerSM != 48 || g.ThreadsPerWarp != 32 {
		t.Errorf("Fermi SM parameters mismatch: %+v", g)
	}
	if g.L2Banks != 12 || g.DRAMChannels != 6 {
		t.Errorf("Fermi memory-side parameters mismatch: %+v", g)
	}
	if g.L2Banks%g.DRAMChannels != 0 {
		t.Errorf("L2 banks must map evenly onto DRAM channels")
	}
	if g.TCL != 12 || g.TRCD != 12 || g.TRAS != 28 {
		t.Errorf("DRAM timings mismatch: %+v", g)
	}
}

func TestVoltaGPUConfig(t *testing.T) {
	g := VoltaGPU(ScaleL1D(NewL1DConfig(DyFUSE), 2))
	if err := g.Validate(); err != nil {
		t.Fatalf("Volta config invalid: %v", err)
	}
	if g.SMs != 84 {
		t.Errorf("Volta should have 84 SMs, got %d", g.SMs)
	}
	if g.L2KBTotal != 6144 {
		t.Errorf("Volta L2 should be 6 MB, got %d KB", g.L2KBTotal)
	}
}

func TestGPUConfigValidateErrors(t *testing.T) {
	g := FermiGPU(NewL1DConfig(L1SRAM))
	g.SMs = 0
	if err := g.Validate(); err == nil {
		t.Errorf("expected SM count error")
	}
	g = FermiGPU(NewL1DConfig(L1SRAM))
	g.L2Banks = 0
	if err := g.Validate(); err == nil {
		t.Errorf("expected L2 bank error")
	}
	g = FermiGPU(NewL1DConfig(L1SRAM))
	g.L2Banks = 7
	if err := g.Validate(); err == nil {
		t.Errorf("expected divisibility error")
	}
}

func TestScaleL1D(t *testing.T) {
	base := NewL1DConfig(L1SRAM)
	big := ScaleL1D(base, 4)
	if big.SRAMKB != 128 || big.SRAMSets != 256 {
		t.Errorf("ScaleL1D(4) = %+v", big)
	}
	if err := big.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
	if got := ScaleL1D(base, 1); got.SRAMKB != base.SRAMKB {
		t.Errorf("factor 1 should be identity")
	}
	// Scaling a fully-associative config keeps it fully associative.
	fa := ScaleL1D(NewL1DConfig(FASRAM), 2)
	if fa.SRAMSets != 1 || fa.SRAMWays != fa.SRAMBlocks() {
		t.Errorf("scaled FA-SRAM should stay fully associative: %+v", fa)
	}
	dy := ScaleL1D(NewL1DConfig(DyFUSE), 2)
	if dy.STTSets != 1 || dy.STTWays != dy.STTBlocks() {
		t.Errorf("scaled Dy-FUSE STT bank should stay fully associative: %+v", dy)
	}
	if err := dy.Validate(); err != nil {
		t.Errorf("scaled Dy-FUSE invalid: %v", err)
	}
}

func TestOracleL1D(t *testing.T) {
	o := OracleL1D()
	if err := o.Validate(); err != nil {
		t.Fatalf("oracle config invalid: %v", err)
	}
	if o.SRAMKB < 1024 {
		t.Errorf("oracle cache should be large, got %d KB", o.SRAMKB)
	}
}
