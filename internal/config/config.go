// Package config holds the simulation configuration presets of the paper's
// Table I: the baseline (Fermi/GTX480-class) GPU, the Volta-class GPU used in
// the sensitivity study, and the seven L1D cache organisations that the
// evaluation compares (L1-SRAM, FA-SRAM, By-NVM, Hybrid, Base-FUSE, FA-FUSE
// and Dy-FUSE).
package config

import (
	"errors"
	"fmt"

	"fuse/internal/dram"
	"fuse/internal/memtech"
)

// L1DKind enumerates the seven L1D cache organisations of the paper.
type L1DKind uint8

const (
	// L1SRAM is the conventional 32 KB 4-way set-associative SRAM cache.
	L1SRAM L1DKind = iota
	// FASRAM is the same SRAM capacity reorganised as a fully-associative
	// cache (unrealistically expensive; used as a reference point).
	FASRAM
	// ByNVM is a pure 128 KB STT-MRAM cache with DASCA-style dead-write
	// bypassing.
	ByNVM
	// Hybrid is a 16 KB SRAM bank plus 64 KB STT-MRAM bank without any of
	// the FUSE optimisations: STT-MRAM writes block the whole cache.
	Hybrid
	// BaseFUSE adds the swap buffer and tag queue to Hybrid so the
	// STT-MRAM bank becomes non-blocking.
	BaseFUSE
	// FAFUSE additionally organises the STT-MRAM bank as an approximately
	// fully-associative cache using counting Bloom filters.
	FAFUSE
	// DyFUSE additionally steers blocks with the read-level predictor
	// (WORM to STT-MRAM, WM to SRAM). This is the paper's full proposal.
	DyFUSE
)

// AllL1DKinds lists the seven configurations in the order the paper's figures
// present them.
var AllL1DKinds = []L1DKind{L1SRAM, ByNVM, FASRAM, Hybrid, BaseFUSE, FAFUSE, DyFUSE}

// String implements fmt.Stringer using the paper's names.
func (k L1DKind) String() string {
	switch k {
	case L1SRAM:
		return "L1-SRAM"
	case FASRAM:
		return "FA-SRAM"
	case ByNVM:
		return "By-NVM"
	case Hybrid:
		return "Hybrid"
	case BaseFUSE:
		return "Base-FUSE"
	case FAFUSE:
		return "FA-FUSE"
	case DyFUSE:
		return "Dy-FUSE"
	default:
		return fmt.Sprintf("L1DKind(%d)", uint8(k))
	}
}

// ParseL1DKind converts a paper-style configuration name into an L1DKind.
func ParseL1DKind(name string) (L1DKind, error) {
	for _, k := range AllL1DKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("config: unknown L1D configuration %q", name)
}

// L1DConfig describes one L1D cache organisation.
type L1DConfig struct {
	Kind L1DKind
	// SRAMKB and STTMRAMKB are the capacities of the two banks in KB.
	// Pure-SRAM configurations have STTMRAMKB == 0 and vice versa.
	SRAMKB    int
	STTMRAMKB int
	// SRAMSets/SRAMWays describe the SRAM bank organisation.
	SRAMSets int
	SRAMWays int
	// STTSets/STTWays describe the STT-MRAM bank organisation. A
	// fully-associative (or approximately fully-associative) bank has
	// STTSets == 1 and STTWays equal to the number of blocks.
	STTSets int
	STTWays int
	// SRAMTech and STTTech are the technology parameter sets for the two
	// banks.
	SRAMTech memtech.Params
	STTTech  memtech.Params
	// SwapBufferEntries is the number of 128-byte registers in the swap
	// buffer (0 disables it, as in Hybrid).
	SwapBufferEntries int
	// TagQueueEntries is the depth of the STT-MRAM tag queue (0 disables
	// it).
	TagQueueEntries int
	// ApproxFullyAssociative enables the associativity-approximation logic
	// on the STT-MRAM bank (FA-FUSE and Dy-FUSE).
	ApproxFullyAssociative bool
	// Comparators is the number of parallel tag comparators available to
	// the approximation logic.
	Comparators int
	// CBFCount, CBFHashes and CBFSlots configure the counting Bloom
	// filters used by the approximation logic.
	CBFCount  int
	CBFHashes int
	CBFSlots  int
	// UseReadLevelPredictor enables the PC-based read-level predictor
	// (Dy-FUSE only).
	UseReadLevelPredictor bool
	// UseDeadWriteBypass enables DASCA-style dead-write bypassing (By-NVM
	// only).
	UseDeadWriteBypass bool
	// MSHREntries is the number of primary-miss entries in the MSHR.
	MSHREntries int
	// MSHRMergeWidth is the maximum number of merged (secondary) misses
	// per entry.
	MSHRMergeWidth int
	// FullyAssociativeSRAM marks FA-SRAM, which replaces the set-associative
	// SRAM lookup with a true fully-associative one.
	FullyAssociativeSRAM bool
}

// BlockBytes is the cache line size in bytes.
const BlockBytes = 128

// TotalKB returns the total L1D capacity in KB.
func (c *L1DConfig) TotalKB() int { return c.SRAMKB + c.STTMRAMKB }

// SRAMBlocks returns the number of 128-byte blocks in the SRAM bank.
func (c *L1DConfig) SRAMBlocks() int { return c.SRAMKB * 1024 / BlockBytes }

// STTBlocks returns the number of 128-byte blocks in the STT-MRAM bank.
func (c *L1DConfig) STTBlocks() int { return c.STTMRAMKB * 1024 / BlockBytes }

// Validate checks that the set/way organisation matches the bank capacities.
func (c *L1DConfig) Validate() error {
	if c.SRAMKB < 0 || c.STTMRAMKB < 0 {
		return errors.New("config: negative bank capacity")
	}
	if c.SRAMKB > 0 {
		if c.SRAMSets*c.SRAMWays != c.SRAMBlocks() {
			return fmt.Errorf("config: SRAM organisation %dx%d does not cover %d blocks",
				c.SRAMSets, c.SRAMWays, c.SRAMBlocks())
		}
	}
	if c.STTMRAMKB > 0 {
		if c.STTSets*c.STTWays != c.STTBlocks() {
			return fmt.Errorf("config: STT-MRAM organisation %dx%d does not cover %d blocks",
				c.STTSets, c.STTWays, c.STTBlocks())
		}
	}
	if c.TotalKB() == 0 {
		return errors.New("config: cache has zero capacity")
	}
	if c.MSHREntries <= 0 {
		return errors.New("config: MSHR must have at least one entry")
	}
	if c.ApproxFullyAssociative {
		if c.Comparators <= 0 || c.CBFCount <= 0 || c.CBFHashes <= 0 || c.CBFSlots <= 0 {
			return errors.New("config: approximation logic requires comparators and CBF parameters")
		}
	}
	return nil
}

// Predictor configuration defaults (Table I: sampler 8 ways x 4 sets,
// history table 1024 entries, unused threshold 14).
const (
	DefaultSamplerSets        = 4
	DefaultSamplerWays        = 8
	DefaultHistoryEntries     = 1024
	DefaultUnusedThreshold    = 14
	DefaultPredictorInitValue = 8
)

// Default MSHR dimensions (GPGPU-Sim GTX480-style).
const (
	DefaultMSHREntries    = 32
	DefaultMSHRMergeWidth = 8
)

// baseHybridConfig returns the parameters shared by Hybrid, Base-FUSE,
// FA-FUSE and Dy-FUSE: a 16 KB 2-way SRAM bank plus a 64 KB STT-MRAM bank.
func baseHybridConfig(kind L1DKind) L1DConfig {
	cfg := L1DConfig{
		Kind:           kind,
		SRAMKB:         16,
		STTMRAMKB:      64,
		SRAMSets:       64,
		SRAMWays:       2,
		STTSets:        256,
		STTWays:        2,
		SRAMTech:       memtech.SmallSRAMParams(16),
		STTTech:        memtech.STTMRAMParams(64),
		MSHREntries:    DefaultMSHREntries,
		MSHRMergeWidth: DefaultMSHRMergeWidth,
	}
	return cfg
}

// NewL1DConfig builds the Table I configuration for the requested kind.
func NewL1DConfig(kind L1DKind) L1DConfig {
	switch kind {
	case L1SRAM:
		return L1DConfig{
			Kind:           L1SRAM,
			SRAMKB:         32,
			SRAMSets:       64,
			SRAMWays:       4,
			SRAMTech:       memtech.SRAMParams(32),
			MSHREntries:    DefaultMSHREntries,
			MSHRMergeWidth: DefaultMSHRMergeWidth,
		}
	case FASRAM:
		return L1DConfig{
			Kind:                 FASRAM,
			SRAMKB:               32,
			SRAMSets:             1,
			SRAMWays:             256,
			SRAMTech:             memtech.SRAMParams(32),
			FullyAssociativeSRAM: true,
			MSHREntries:          DefaultMSHREntries,
			MSHRMergeWidth:       DefaultMSHRMergeWidth,
		}
	case ByNVM:
		return L1DConfig{
			Kind:               ByNVM,
			STTMRAMKB:          128,
			STTSets:            256,
			STTWays:            4,
			STTTech:            memtech.PureSTTMRAMParams(128),
			UseDeadWriteBypass: true,
			MSHREntries:        DefaultMSHREntries,
			MSHRMergeWidth:     DefaultMSHRMergeWidth,
		}
	case Hybrid:
		return baseHybridConfig(Hybrid)
	case BaseFUSE:
		cfg := baseHybridConfig(BaseFUSE)
		cfg.SwapBufferEntries = 3
		cfg.TagQueueEntries = 16
		return cfg
	case FAFUSE:
		cfg := baseHybridConfig(FAFUSE)
		cfg.SwapBufferEntries = 3
		cfg.TagQueueEntries = 16
		cfg.STTSets = 1
		cfg.STTWays = cfg.STTBlocks()
		cfg.ApproxFullyAssociative = true
		cfg.Comparators = 4
		cfg.CBFCount = 128
		cfg.CBFHashes = 3
		cfg.CBFSlots = 128
		return cfg
	case DyFUSE:
		cfg := NewL1DConfig(FAFUSE)
		cfg.Kind = DyFUSE
		cfg.UseReadLevelPredictor = true
		return cfg
	default:
		panic(fmt.Sprintf("config: unknown L1D kind %d", kind))
	}
}

// WithRatio reconfigures a FUSE-style hybrid cache so that `sramFraction` of
// the total L1D capacity is SRAM and the rest is STT-MRAM, mirroring the
// Figure 18 sensitivity sweep. The total area budget (that of the 32 KB SRAM
// L1D) is preserved: SRAM costs ~4x the area of STT-MRAM per byte, so
// sramKB + sttKB/4 == 32.
func WithRatio(kind L1DKind, sramFraction float64) (L1DConfig, error) {
	if sramFraction <= 0 || sramFraction >= 1 {
		return L1DConfig{}, fmt.Errorf("config: SRAM fraction %v out of (0,1)", sramFraction)
	}
	if kind != Hybrid && kind != BaseFUSE && kind != FAFUSE && kind != DyFUSE {
		return L1DConfig{}, fmt.Errorf("config: ratio sweep only applies to hybrid kinds, got %v", kind)
	}
	// Solve sramKB + sttKB/4 = 32 with sramKB = f*(sramKB+sttKB).
	// Let total = sramKB + sttKB. Then f*total + (1-f)*total/4 = 32.
	total := 32.0 / (sramFraction + (1-sramFraction)/4)
	sramKB := int(total*sramFraction + 0.5)
	sttKB := int(total*(1-sramFraction) + 0.5)
	// Round to block multiples of at least 1 KB and powers-of-two sets.
	if sramKB < 1 {
		sramKB = 1
	}
	if sttKB < 1 {
		sttKB = 1
	}
	cfg := NewL1DConfig(kind)
	cfg.SRAMKB = sramKB
	cfg.STTMRAMKB = sttKB
	cfg.SRAMWays = 2
	cfg.SRAMSets = cfg.SRAMBlocks() / cfg.SRAMWays
	if cfg.SRAMSets == 0 {
		cfg.SRAMSets = 1
		cfg.SRAMWays = cfg.SRAMBlocks()
	}
	if cfg.ApproxFullyAssociative {
		cfg.STTSets = 1
		cfg.STTWays = cfg.STTBlocks()
	} else {
		cfg.STTWays = 2
		cfg.STTSets = cfg.STTBlocks() / cfg.STTWays
	}
	cfg.SRAMTech = memtech.SmallSRAMParams(sramKB)
	cfg.STTTech = memtech.STTMRAMParams(sttKB)
	return cfg, nil
}

// GPUConfig describes the whole simulated GPU.
//
// It is serialised verbatim into the content-addressed result-store key
// (store.Key): every field must either be keyed or carry an explicit
// //fuselint:execonly justification — fuselint's keydrift analyzer enforces
// this.
//
//fuselint:keyroot
type GPUConfig struct {
	// Name labels the configuration ("Fermi-like", "Volta-like").
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpsPerSM is the number of resident warps per SM.
	WarpsPerSM int
	// ThreadsPerWarp is the SIMT width.
	ThreadsPerWarp int
	// CoreClockMHz is the SM clock.
	CoreClockMHz float64
	// L1D is the L1D cache configuration used by every SM.
	L1D L1DConfig
	// L2Banks is the number of shared L2 cache banks (NoC endpoints).
	L2Banks int
	// L2KBTotal is the total L2 capacity in KB.
	L2KBTotal int
	// L2Ways is the L2 associativity.
	L2Ways int
	// L2LatencyCycles is the L2 bank access latency.
	L2LatencyCycles int
	// DRAMChannels is the number of off-chip memory channels.
	DRAMChannels int
	// DRAMBanksPerChannel is the number of DRAM banks per channel.
	DRAMBanksPerChannel int
	// DRAMRowBytes is the row-buffer size per bank in bytes.
	DRAMRowBytes int
	// DRAM timing parameters in DRAM-clock cycles (honoured by the GDDR5
	// baseline backend; other backends own their timing).
	TCL, TRCD, TRAS, TRP int
	// DRAMBurstCycles is the data transfer time of one 128-byte block.
	DRAMBurstCycles int
	// DRAMQueueDepth is the per-channel request queue depth.
	DRAMQueueDepth int
	// MemBackend selects the off-chip memory technology behind the
	// controller (see dram.Backends); empty means the GDDR5 baseline.
	MemBackend string
	// NoCLatencyPerHop is the router traversal latency in cycles.
	NoCLatencyPerHop int
	// NoCFlitBytes is the link width in bytes per cycle.
	NoCFlitBytes int
	// MaxCTAsPerSM bounds concurrent thread blocks per SM.
	MaxCTAsPerSM int
}

// Validate performs basic sanity checks.
func (g *GPUConfig) Validate() error {
	if g.SMs <= 0 || g.WarpsPerSM <= 0 || g.ThreadsPerWarp <= 0 {
		return errors.New("config: SM/warp/thread counts must be positive")
	}
	if g.L2Banks <= 0 || g.DRAMChannels <= 0 {
		return errors.New("config: L2 banks and DRAM channels must be positive")
	}
	if g.L2Banks%g.DRAMChannels != 0 {
		return fmt.Errorf("config: %d L2 banks must divide evenly across %d DRAM channels", g.L2Banks, g.DRAMChannels)
	}
	if g.DRAMBanksPerChannel < 0 || g.DRAMRowBytes < 0 || g.DRAMBurstCycles < 0 || g.DRAMQueueDepth < 0 {
		return errors.New("config: DRAM geometry must be non-negative")
	}
	if _, err := dram.BackendByName(g.MemBackend); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return g.L1D.Validate()
}

// WithMemDefaults returns a copy with the off-chip memory fields resolved
// exactly as the memory controller would resolve them (backend name
// normalised, zero geometry defaulted, timing taken from the backend). Two
// configs describing the same controller then encode identically — the
// result store canonicalises its keys with this, so e.g. MemBackend "" and
// "GDDR5" address the same stored result. A config whose backend name is
// invalid is returned unchanged (its key is unreachable anyway: Validate
// rejects it before simulation).
func (g GPUConfig) WithMemDefaults() GPUConfig {
	resolved, err := dram.Config{
		Channels:        g.DRAMChannels,
		BanksPerChannel: g.DRAMBanksPerChannel,
		RowBytes:        g.DRAMRowBytes,
		TCL:             g.TCL,
		TRCD:            g.TRCD,
		TRP:             g.TRP,
		TRAS:            g.TRAS,
		BurstCycles:     g.DRAMBurstCycles,
		QueueDepth:      g.DRAMQueueDepth,
		Backend:         g.MemBackend,
	}.Resolve()
	if err != nil {
		return g
	}
	g.DRAMChannels = resolved.Channels
	g.DRAMBanksPerChannel = resolved.BanksPerChannel
	g.DRAMRowBytes = resolved.RowBytes
	g.TCL, g.TRCD, g.TRP, g.TRAS = resolved.TCL, resolved.TRCD, resolved.TRP, resolved.TRAS
	g.DRAMBurstCycles = resolved.BurstCycles
	g.DRAMQueueDepth = resolved.QueueDepth
	g.MemBackend = resolved.Backend
	return g
}

// FermiGPU returns the paper's baseline GPU model (Table I): 15 SMs, 48
// warps/SM, butterfly NoC with 27 nodes (15 SMs + 12 L2 banks), 786 KB L2 and
// 6 GDDR5 channels.
func FermiGPU(l1d L1DConfig) GPUConfig {
	return GPUConfig{
		Name:                "Fermi-like",
		SMs:                 15,
		WarpsPerSM:          48,
		ThreadsPerWarp:      32,
		CoreClockMHz:        1400,
		L1D:                 l1d,
		L2Banks:             12,
		L2KBTotal:           786,
		L2Ways:              8,
		L2LatencyCycles:     30,
		DRAMChannels:        6,
		DRAMBanksPerChannel: 8,
		DRAMRowBytes:        2048,
		TCL:                 12,
		TRCD:                12,
		TRAS:                28,
		TRP:                 12,
		DRAMBurstCycles:     4,
		DRAMQueueDepth:      16,
		MemBackend:          dram.DefaultBackend,
		NoCLatencyPerHop:    4,
		NoCFlitBytes:        32,
		MaxCTAsPerSM:        8,
	}
}

// VoltaGPU returns the Volta-class configuration used by the paper's
// sensitivity study: 84 SMs, 6 MB L2 and a 128 KB L1 budget per SM.
func VoltaGPU(l1d L1DConfig) GPUConfig {
	g := FermiGPU(l1d)
	g.Name = "Volta-like"
	g.SMs = 84
	g.L2Banks = 24
	g.L2KBTotal = 6144
	g.DRAMChannels = 8
	// 900 GB/s HBM2-class memory: the HBM2 backend, more channels with more
	// banks each and 1 KB rows. Timing (including the 2-cycle burst on the
	// very wide interface) comes from the backend itself — the inherited
	// Fermi TCL/TRCD/TRP/TRAS fields are ignored for non-GDDR5 backends.
	g.MemBackend = "HBM2"
	g.DRAMBanksPerChannel = 16
	g.DRAMRowBytes = 1024
	g.NoCFlitBytes = 64
	return g
}

// ScaleL1D scales an L1D configuration's capacity by the given factor,
// preserving associativity. Used to build the Volta 128 KB L1 variants and
// the "Oracle" cache of the motivation study.
func ScaleL1D(cfg L1DConfig, factor int) L1DConfig {
	if factor <= 1 {
		return cfg
	}
	out := cfg
	out.SRAMKB *= factor
	out.STTMRAMKB *= factor
	if out.SRAMKB > 0 {
		if out.FullyAssociativeSRAM {
			out.SRAMSets = 1
			out.SRAMWays = out.SRAMBlocks()
		} else {
			out.SRAMSets *= factor
		}
		out.SRAMTech = memtech.SRAMParams(out.SRAMKB)
	}
	if out.STTMRAMKB > 0 {
		if out.ApproxFullyAssociative {
			out.STTSets = 1
			out.STTWays = out.STTBlocks()
		} else {
			out.STTSets *= factor
		}
	}
	return out
}

// OracleL1D returns an idealised SRAM cache large enough to avoid thrashing
// for the motivation study (Figure 3's "Oracle GPU").
func OracleL1D() L1DConfig {
	cfg := NewL1DConfig(L1SRAM)
	return ScaleL1D(cfg, 64) // 2 MB per SM: effectively infinite for our footprints
}
