package predictor

import (
	"testing"

	"fuse/internal/mem"
)

// sampledWarp returns a warp number that the default configuration samples
// into sampler set 0.
const sampledWarp = 0

func rlReq(block int, pc uint64, kind mem.AccessKind, warp int) mem.Request {
	return mem.Request{Addr: uint64(block) * mem.BlockSize, PC: pc, Kind: kind, Warp: warp}
}

func TestSignatureStable(t *testing.T) {
	if Signature(0x400, 1024) != Signature(0x400, 1024) {
		t.Errorf("signature must be deterministic")
	}
	if Signature(0x400, 1024) == Signature(0x404, 1024) {
		t.Errorf("adjacent instructions should map to different signatures")
	}
	if Signature(0x400, 0) != 0 {
		t.Errorf("zero-size table should clamp to 0")
	}
	for pc := uint64(0); pc < 1<<16; pc += 4 {
		s := Signature(pc, 1024)
		if s < 0 || s >= 1024 {
			t.Fatalf("signature out of range: %d", s)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := NewReadLevelPredictor(Config{})
	cfg := p.Config()
	if cfg.SamplerSets != 4 || cfg.SamplerWays != 8 {
		t.Errorf("sampler defaults wrong: %+v", cfg)
	}
	if cfg.HistoryEntries != 1024 || cfg.UnusedThreshold != 14 || cfg.InitialCounter != 8 {
		t.Errorf("history defaults wrong: %+v", cfg)
	}
	if cfg.WarpsPerSM != 48 || cfg.SampledWarps != 4 {
		t.Errorf("warp sampling defaults wrong: %+v", cfg)
	}
}

func TestInitialPredictionIsNeutral(t *testing.T) {
	p := NewReadLevelPredictor(Config{})
	if got := p.Predict(0x1000); got != mem.ReadIntensive {
		t.Errorf("untrained prediction = %v, want read-intensive (neutral)", got)
	}
	if !p.Neutral(0x1000) {
		t.Errorf("untrained prediction should be neutral")
	}
	if p.Predictions() != 1 {
		t.Errorf("prediction counter should increment")
	}
}

func TestLearnsWORMPattern(t *testing.T) {
	// Blocks filled by PC 0x800 are re-read many times by other PCs: the
	// predictor should converge to WORM for PC 0x800.
	p := NewReadLevelPredictor(Config{})
	fillPC := uint64(0x800)
	readPC := uint64(0x900)
	for i := 0; i < 64; i++ {
		block := 1000 + i
		p.Observe(rlReq(block, fillPC, mem.Write, sampledWarp))
		for r := 0; r < 4; r++ {
			p.Observe(rlReq(block, readPC, mem.Read, sampledWarp))
		}
	}
	if got := p.Predict(fillPC); got != mem.WORM {
		t.Errorf("Predict(fill PC) = %v, want WORM (counter=%d)", got, p.CounterOf(fillPC))
	}
	if p.Neutral(fillPC) {
		t.Errorf("trained WORM prediction should not be neutral")
	}
	if p.SamplerHits() == 0 {
		t.Errorf("sampler should have observed reuse hits")
	}
}

func TestLearnsWMPattern(t *testing.T) {
	// Blocks touched by PC 0xA00 are written over and over: predict WM.
	p := NewReadLevelPredictor(Config{})
	pc := uint64(0xA00)
	for i := 0; i < 64; i++ {
		block := 2000 + i%8 // small, write-hot working set
		p.Observe(rlReq(block, pc, mem.Write, sampledWarp))
	}
	if got := p.Predict(pc); got != mem.WriteMultiple {
		t.Errorf("Predict(WM PC) = %v, want WM (counter=%d)", got, p.CounterOf(pc))
	}
}

func TestLearnsWOROPattern(t *testing.T) {
	// Blocks touched by PC 0xC00 are streamed through exactly once: the
	// sampler keeps evicting unused entries, driving the counter up to the
	// WORO threshold.
	p := NewReadLevelPredictor(Config{})
	pc := uint64(0xC00)
	for i := 0; i < 400; i++ {
		p.Observe(rlReq(5000+i, pc, mem.Read, sampledWarp))
	}
	if got := p.Predict(pc); got != mem.WORO {
		t.Errorf("Predict(streaming PC) = %v, want WORO (counter=%d)", got, p.CounterOf(pc))
	}
	if p.UnusedEvictions() == 0 {
		t.Errorf("streaming should cause unused sampler evictions")
	}
}

func TestNonSampledWarpsIgnored(t *testing.T) {
	p := NewReadLevelPredictor(Config{})
	before := p.CounterOf(0xE00)
	// Warp 5 is not one of the 4 representative warps (stride 12).
	for i := 0; i < 100; i++ {
		p.Observe(rlReq(7000+i, 0xE00, mem.Read, 5))
	}
	if p.CounterOf(0xE00) != before {
		t.Errorf("non-sampled warps should not change the history table")
	}
	if p.SamplerEvictions() != 0 {
		t.Errorf("non-sampled warps should not touch the sampler")
	}
}

func TestMultipleSampledWarpsUseDifferentSets(t *testing.T) {
	p := NewReadLevelPredictor(Config{})
	// Warps 0, 12, 24, 36 are sampled under the default 48-warp config.
	for _, warp := range []int{0, 12, 24, 36} {
		if _, ok := p.warpSampled(warp); !ok {
			t.Errorf("warp %d should be sampled", warp)
		}
	}
	s0, _ := p.warpSampled(0)
	s1, _ := p.warpSampled(12)
	if s0 == s1 {
		t.Errorf("different representative warps should map to different sampler sets")
	}
}

func TestPredictorReset(t *testing.T) {
	p := NewReadLevelPredictor(Config{})
	for i := 0; i < 100; i++ {
		p.Observe(rlReq(i, 0xF00, mem.Read, sampledWarp))
	}
	p.Predict(0xF00)
	p.Reset()
	if p.Predictions() != 0 || p.SamplerHits() != 0 || p.SamplerEvictions() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if p.CounterOf(0xF00) != p.Config().InitialCounter {
		t.Errorf("Reset should restore initial counters")
	}
	if got := p.Predict(0xF00); got != mem.ReadIntensive {
		t.Errorf("post-reset prediction should be neutral, got %v", got)
	}
}

func TestJudge(t *testing.T) {
	cases := []struct {
		level   mem.ReadLevel
		neutral bool
		writes  uint64
		want    Outcome
	}{
		{mem.WriteMultiple, false, 3, OutcomeTrue},
		{mem.WriteMultiple, false, 1, OutcomeFalse},
		{mem.WORM, false, 1, OutcomeTrue},
		{mem.WORM, false, 2, OutcomeFalse},
		{mem.WORO, false, 0, OutcomeTrue},
		{mem.WORO, false, 5, OutcomeFalse},
		{mem.ReadIntensive, false, 1, OutcomeNeutral},
		{mem.WORM, true, 1, OutcomeNeutral},
	}
	for _, c := range cases {
		if got := Judge(c.level, c.neutral, c.writes); got != c.want {
			t.Errorf("Judge(%v, neutral=%v, writes=%d) = %v, want %v",
				c.level, c.neutral, c.writes, got, c.want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeTrue.String() != "true" || OutcomeFalse.String() != "false" || OutcomeNeutral.String() != "neutral" {
		t.Errorf("unexpected outcome strings")
	}
	if Outcome(9).String() != "unknown" {
		t.Errorf("unknown outcome should render as unknown")
	}
}

func TestAccuracyTracker(t *testing.T) {
	var a AccuracyTracker
	a.Record(OutcomeTrue)
	a.Record(OutcomeTrue)
	a.Record(OutcomeFalse)
	a.Record(OutcomeNeutral)
	if a.Total() != 4 {
		t.Errorf("Total = %d, want 4", a.Total())
	}
	tf, nf, ff := a.Fractions()
	if tf != 0.5 || nf != 0.25 || ff != 0.25 {
		t.Errorf("Fractions = %v %v %v", tf, nf, ff)
	}
	var empty AccuracyTracker
	if tf, nf, ff := empty.Fractions(); tf != 0 || nf != 0 || ff != 0 {
		t.Errorf("empty tracker should report zeros")
	}
}

func TestDeadWritePredictorLearnsStreaming(t *testing.T) {
	p := NewDeadWritePredictor(Config{})
	pc := uint64(0x1200)
	// Streaming blocks: written/read once, never reused.
	for i := 0; i < 400; i++ {
		p.Observe(rlReq(9000+i, pc, mem.Write, sampledWarp))
	}
	if !p.PredictDead(pc) {
		t.Errorf("streaming PC should be predicted dead")
	}
	if p.BypassRatio() <= 0 {
		t.Errorf("bypass ratio should be positive after a dead prediction")
	}
}

func TestDeadWritePredictorLearnsReuse(t *testing.T) {
	p := NewDeadWritePredictor(Config{})
	pc := uint64(0x1300)
	for i := 0; i < 64; i++ {
		block := 100 + i%8
		p.Observe(rlReq(block, pc, mem.Write, sampledWarp))
		p.Observe(rlReq(block, 0x1400, mem.Read, sampledWarp))
	}
	if p.PredictDead(pc) {
		t.Errorf("heavily reused PC should not be predicted dead")
	}
}

func TestDeadWritePredictorIgnoresNonSampledWarps(t *testing.T) {
	p := NewDeadWritePredictor(Config{})
	for i := 0; i < 100; i++ {
		p.Observe(rlReq(100+i, 0x1500, mem.Write, 7))
	}
	// The history should still be at its initial (alive) value.
	if p.PredictDead(0x1500) {
		t.Errorf("unsampled traffic should not train the predictor")
	}
}

func TestDeadWritePredictorReset(t *testing.T) {
	p := NewDeadWritePredictor(Config{})
	for i := 0; i < 200; i++ {
		p.Observe(rlReq(100+i, 0x1600, mem.Write, sampledWarp))
	}
	p.PredictDead(0x1600)
	p.Reset()
	if p.Predictions() != 0 || p.Bypasses() != 0 {
		t.Errorf("Reset should clear statistics")
	}
	if p.PredictDead(0x1600) {
		t.Errorf("Reset should restore the initial alive state")
	}
	if p.BypassRatio() != 0 {
		t.Errorf("bypass ratio after reset+alive prediction should be 0")
	}
}
