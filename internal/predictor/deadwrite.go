package predictor

import (
	"fuse/internal/mem"
	"fuse/internal/stats"
)

// DeadWritePredictor is a DASCA-style dead-write predictor used by the By-NVM
// baseline: it predicts whether a block about to be written into the
// STT-MRAM cache is a "deadwrite" (written once but never re-referenced
// before eviction) and should therefore bypass the cache entirely, saving the
// expensive STT-MRAM write.
//
// The implementation mirrors the read-level predictor's sampler/history
// structure but collapses the decision to a single dead/alive bit per PC
// signature, which is all DASCA needs.
//
//fuselint:smowned one predictor per SM-owned hybrid L1D
type DeadWritePredictor struct {
	cfg     Config
	sampler [][]samplerEntry
	history []int // saturating counters; high = dead

	threshold int
	max       int

	predictions stats.Counter
	bypassed    stats.Counter
}

// NewDeadWritePredictor builds a dead-write predictor. The zero Config takes
// the same defaults as the read-level predictor.
func NewDeadWritePredictor(cfg Config) *DeadWritePredictor {
	cfg = cfg.withDefaults()
	p := &DeadWritePredictor{
		cfg:       cfg,
		history:   make([]int, cfg.HistoryEntries),
		threshold: (cfg.CounterMax + 1) / 2,
		max:       cfg.CounterMax,
	}
	p.sampler = make([][]samplerEntry, cfg.SamplerSets)
	for i := range p.sampler {
		p.sampler[i] = make([]samplerEntry, cfg.SamplerWays)
	}
	for i := range p.history {
		p.history[i] = p.threshold / 2 // start mildly "alive"
	}
	return p
}

// PredictDead reports whether the block about to be allocated by the
// instruction at pc is predicted to be a dead write (never re-referenced).
func (p *DeadWritePredictor) PredictDead(pc uint64) bool {
	p.predictions.Inc()
	dead := p.history[Signature(pc, len(p.history))] >= p.threshold
	if dead {
		p.bypassed.Inc()
	}
	return dead
}

// Observe feeds one memory request into the sampler: re-references decrement
// the filling signature's dead counter; unused evictions increment it.
func (p *DeadWritePredictor) Observe(req mem.Request) {
	set, ok := p.warpSampled(req.Warp)
	if !ok {
		return
	}
	ways := p.sampler[set]
	tag := partialTag(req.BlockAddr())
	sig := Signature(req.PC, len(p.history))
	for w := range ways {
		e := &ways[w]
		if e.valid && e.tag == tag {
			h := &p.history[e.signature]
			if *h > 0 {
				*h--
			}
			e.used = true
			p.touchLRU(set, w)
			return
		}
	}
	victim := p.lruVictim(set)
	e := &ways[victim]
	if e.valid && !e.used {
		h := &p.history[e.signature]
		if *h < p.max {
			*h++
		}
	}
	*e = samplerEntry{valid: true, tag: tag, signature: sig, lastWrite: req.Kind == mem.Write}
	p.touchLRU(set, victim)
}

func (p *DeadWritePredictor) warpSampled(warp int) (int, bool) {
	stride := p.cfg.WarpsPerSM / p.cfg.SampledWarps
	if stride <= 0 {
		stride = 1
	}
	if warp%stride != 0 {
		return 0, false
	}
	return (warp / stride) % p.cfg.SamplerSets, true
}

func (p *DeadWritePredictor) touchLRU(set, way int) {
	ways := p.sampler[set]
	old := ways[way].rp
	for i := range ways {
		if ways[i].rp > old {
			ways[i].rp--
		}
	}
	ways[way].rp = uint8(len(ways) - 1)
}

func (p *DeadWritePredictor) lruVictim(set int) int {
	ways := p.sampler[set]
	best := 0
	for i := range ways {
		if !ways[i].valid {
			return i
		}
		if ways[i].rp < ways[best].rp {
			best = i
		}
	}
	return best
}

// Predictions returns the number of PredictDead calls.
func (p *DeadWritePredictor) Predictions() uint64 { return p.predictions.Value() }

// Bypasses returns how many predictions were "dead" (and therefore bypassed).
func (p *DeadWritePredictor) Bypasses() uint64 { return p.bypassed.Value() }

// BypassRatio returns bypasses / predictions, the quantity reported in the
// paper's Table II.
func (p *DeadWritePredictor) BypassRatio() float64 {
	if p.predictions.Value() == 0 {
		return 0
	}
	return float64(p.bypassed.Value()) / float64(p.predictions.Value())
}

// Reset restores the predictor to its initial state.
func (p *DeadWritePredictor) Reset() {
	for s := range p.sampler {
		for w := range p.sampler[s] {
			p.sampler[s][w] = samplerEntry{}
		}
	}
	for i := range p.history {
		p.history[i] = p.threshold / 2
	}
	p.predictions.Reset()
	p.bypassed.Reset()
}
