// Package predictor implements the PC-based predictors used by the FUSE L1D
// cache: the read-level predictor of Dy-FUSE (a memory-request sampler plus a
// prediction history table, Section IV-B of the paper) and the DASCA-style
// dead-write predictor used by the By-NVM baseline.
package predictor

import (
	"fuse/internal/mem"
	"fuse/internal/stats"
)

// Signature computes the partial-PC index ("Signature" in the paper) used by
// the prediction history table. The paper stores 9 bits per sampler entry but
// indexes a table of up to 1024 entries; we extract the low bits of the
// word-aligned PC.
func Signature(pc uint64, tableSize int) int {
	if tableSize <= 0 {
		return 0
	}
	return int((pc >> 2) % uint64(tableSize))
}

// partialTag computes the 15-bit partial block-address tag stored in a
// sampler entry.
func partialTag(block uint64) uint16 {
	return uint16((block >> mem.BlockShift) & 0x7fff)
}

// samplerEntry is one way of the memory-request sampler. Field names follow
// Figure 11 of the paper: V (valid), U (used), RP (replacement position, i.e.
// LRU rank), Tag (15-bit partial address) and Signature (partial PC).
type samplerEntry struct {
	valid     bool
	used      bool
	rp        uint8
	tag       uint16
	signature int
	lastWrite bool
}

// historyEntry is one entry of the prediction history table: an R/W status
// and a 4-bit saturating reuse counter. The R/W status is implemented as a
// tiny saturating bias (0..writeBiasMax) rather than a raw 1-bit latch so
// that a single aliased write hit (the 15-bit partial tags of the sampler do
// collide occasionally) cannot permanently flip a read-dominated signature to
// 'W': reads pull the bias back down.
type historyEntry struct {
	writeBias int
	counter   int
}

// writeBiasMax is the saturation value of the R/W bias; the entry reads as
// 'W' when the bias is in the upper half.
const writeBiasMax = 3

func (h *historyEntry) writeStatus() bool { return h.writeBias >= (writeBiasMax+1)/2 }

// Config parameterises the read-level predictor. Zero values are replaced by
// the paper's defaults (Table I).
type Config struct {
	// SamplerSets and SamplerWays describe the sampler geometry (4 x 8).
	SamplerSets int
	SamplerWays int
	// HistoryEntries is the size of the prediction history table.
	HistoryEntries int
	// UnusedThreshold is the counter value above which a signature is
	// classified as WORO (14 in the paper).
	UnusedThreshold int
	// InitialCounter is the counter value a fresh history entry starts at
	// (8 in the paper).
	InitialCounter int
	// CounterMax is the saturation value of the 4-bit counter.
	CounterMax int
	// WarpsPerSM and SampledWarps control which warps feed the sampler:
	// SampledWarps representative warps out of WarpsPerSM.
	WarpsPerSM   int
	SampledWarps int
}

func (c Config) withDefaults() Config {
	if c.SamplerSets == 0 {
		c.SamplerSets = 4
	}
	if c.SamplerWays == 0 {
		c.SamplerWays = 8
	}
	if c.HistoryEntries == 0 {
		c.HistoryEntries = 1024
	}
	if c.UnusedThreshold == 0 {
		c.UnusedThreshold = 14
	}
	if c.InitialCounter == 0 {
		c.InitialCounter = 8
	}
	if c.CounterMax == 0 {
		c.CounterMax = 15
	}
	if c.WarpsPerSM == 0 {
		c.WarpsPerSM = 48
	}
	if c.SampledWarps == 0 {
		c.SampledWarps = 4
	}
	return c
}

// ReadLevelPredictor speculates the read level (WM / read-intensive / WORM /
// WORO) of the cache block an incoming memory reference will allocate, based
// on the history of the instruction (PC) issuing it.
//
//fuselint:smowned one predictor per SM-owned hybrid L1D
type ReadLevelPredictor struct {
	cfg     Config
	sampler [][]samplerEntry
	history []historyEntry

	predictions stats.Counter
	sampleHits  stats.Counter
	evictions   stats.Counter
	unusedEvict stats.Counter
}

// NewReadLevelPredictor builds a predictor with the given configuration
// (zero-value fields take the paper's defaults).
func NewReadLevelPredictor(cfg Config) *ReadLevelPredictor {
	cfg = cfg.withDefaults()
	p := &ReadLevelPredictor{cfg: cfg}
	p.sampler = make([][]samplerEntry, cfg.SamplerSets)
	for i := range p.sampler {
		p.sampler[i] = make([]samplerEntry, cfg.SamplerWays)
	}
	p.history = make([]historyEntry, cfg.HistoryEntries)
	for i := range p.history {
		p.history[i] = historyEntry{counter: cfg.InitialCounter}
	}
	return p
}

// Config returns the effective configuration.
func (p *ReadLevelPredictor) Config() Config { return p.cfg }

// warpSampled reports whether the given warp is one of the representative
// warps observed by the sampler, and which sampler set it maps to.
func (p *ReadLevelPredictor) warpSampled(warp int) (int, bool) {
	if p.cfg.SampledWarps <= 0 {
		return 0, false
	}
	stride := p.cfg.WarpsPerSM / p.cfg.SampledWarps
	if stride <= 0 {
		stride = 1
	}
	if warp%stride != 0 {
		return 0, false
	}
	set := (warp / stride) % p.cfg.SamplerSets
	return set, true
}

// Predict returns the read level the predictor currently associates with the
// instruction at pc. The paper's decision rule (Section IV-B):
//
//	counter >= unusedThreshold           -> WORO
//	counter <= 1 and status == 'R'       -> WORM
//	counter <= 1 and status == 'W'       -> WM
//	otherwise                            -> neutral, treated as read-intensive
func (p *ReadLevelPredictor) Predict(pc uint64) mem.ReadLevel {
	p.predictions.Inc()
	h := p.history[Signature(pc, len(p.history))]
	switch {
	case h.counter >= p.cfg.UnusedThreshold:
		return mem.WORO
	case h.counter <= 1 && h.writeStatus():
		return mem.WriteMultiple
	case h.counter <= 1:
		return mem.WORM
	default:
		return mem.ReadIntensive
	}
}

// Neutral reports whether the prediction for pc is the neutral
// (read-intensive) middle band rather than a confident WM/WORM/WORO call.
// Figure 16 reports this band separately.
func (p *ReadLevelPredictor) Neutral(pc uint64) bool {
	h := p.history[Signature(pc, len(p.history))]
	return h.counter > 1 && h.counter < p.cfg.UnusedThreshold
}

// Observe feeds one memory request into the sampler and updates the history
// table. Only requests from the representative warps are sampled; all other
// requests are ignored (this is what keeps the structure small).
func (p *ReadLevelPredictor) Observe(req mem.Request) {
	set, ok := p.warpSampled(req.Warp)
	if !ok {
		return
	}
	ways := p.sampler[set]
	tag := partialTag(req.BlockAddr())
	sig := Signature(req.PC, len(p.history))

	// Hit: the block is being re-referenced. Reward the signature that
	// brought it in (decrement counter) and bias the R/W status toward the
	// kind of reuse observed.
	for w := range ways {
		e := &ways[w]
		if e.valid && e.tag == tag {
			p.sampleHits.Inc()
			h := &p.history[e.signature]
			if h.counter > 0 {
				h.counter--
			}
			if req.Kind == mem.Write {
				if h.writeBias < writeBiasMax {
					h.writeBias += 2
					if h.writeBias > writeBiasMax {
						h.writeBias = writeBiasMax
					}
				}
			} else if h.writeBias > 0 {
				h.writeBias--
			}
			e.used = true
			e.lastWrite = req.Kind == mem.Write
			p.touchLRU(set, w)
			return
		}
	}

	// Miss: allocate a sampler entry, evicting the LRU way. If the victim
	// was never re-used (U == 0), punish its signature (increment counter).
	victim := p.lruVictim(set)
	e := &ways[victim]
	if e.valid {
		p.evictions.Inc()
		if !e.used {
			p.unusedEvict.Inc()
			h := &p.history[e.signature]
			if h.counter < p.cfg.CounterMax {
				h.counter++
			}
		}
	}
	*e = samplerEntry{
		valid:     true,
		used:      false,
		tag:       tag,
		signature: sig,
		lastWrite: req.Kind == mem.Write,
	}
	p.touchLRU(set, victim)
}

// touchLRU moves way w of the set to the most-recently-used position by
// updating the 3-bit RP ranks.
func (p *ReadLevelPredictor) touchLRU(set, way int) {
	ways := p.sampler[set]
	old := ways[way].rp
	for i := range ways {
		if ways[i].rp > old {
			ways[i].rp--
		}
	}
	ways[way].rp = uint8(len(ways) - 1)
}

// lruVictim returns the way with the lowest RP rank, preferring invalid ways.
func (p *ReadLevelPredictor) lruVictim(set int) int {
	ways := p.sampler[set]
	best := 0
	for i := range ways {
		if !ways[i].valid {
			return i
		}
		if ways[i].rp < ways[best].rp {
			best = i
		}
	}
	return best
}

// CounterOf exposes the history counter for a PC (used by tests and by the
// area/debug reports).
func (p *ReadLevelPredictor) CounterOf(pc uint64) int {
	return p.history[Signature(pc, len(p.history))].counter
}

// Predictions returns the number of Predict calls.
func (p *ReadLevelPredictor) Predictions() uint64 { return p.predictions.Value() }

// SamplerHits returns the number of sampler hits observed.
func (p *ReadLevelPredictor) SamplerHits() uint64 { return p.sampleHits.Value() }

// SamplerEvictions returns the number of sampler evictions.
func (p *ReadLevelPredictor) SamplerEvictions() uint64 { return p.evictions.Value() }

// UnusedEvictions returns the number of sampler evictions whose entry was
// never reused (the signal that increments history counters).
func (p *ReadLevelPredictor) UnusedEvictions() uint64 { return p.unusedEvict.Value() }

// Reset restores the predictor to its initial state.
func (p *ReadLevelPredictor) Reset() {
	for s := range p.sampler {
		for w := range p.sampler[s] {
			p.sampler[s][w] = samplerEntry{}
		}
	}
	for i := range p.history {
		p.history[i] = historyEntry{counter: p.cfg.InitialCounter}
	}
	p.predictions.Reset()
	p.sampleHits.Reset()
	p.evictions.Reset()
	p.unusedEvict.Reset()
}

// Outcome classifies a finished prediction for the Figure 16 accuracy
// accounting.
type Outcome uint8

const (
	// OutcomeTrue: the prediction matched the block's actual behaviour.
	OutcomeTrue Outcome = iota
	// OutcomeFalse: the prediction contradicted the block's behaviour.
	OutcomeFalse
	// OutcomeNeutral: the predictor declined to make a confident call.
	OutcomeNeutral
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeTrue:
		return "true"
	case OutcomeFalse:
		return "false"
	case OutcomeNeutral:
		return "neutral"
	default:
		return "unknown"
	}
}

// Judge compares a prediction with the observed lifetime of a cache line
// (writes seen while resident) using the paper's criteria: a WM prediction is
// true if the block saw multiple writes before eviction; a WORM/WORO
// prediction is true if it saw at most a single write. Neutral predictions
// are counted separately.
func Judge(predicted mem.ReadLevel, neutral bool, writes uint64) Outcome {
	if neutral {
		return OutcomeNeutral
	}
	switch predicted {
	case mem.WriteMultiple:
		if writes > 1 {
			return OutcomeTrue
		}
		return OutcomeFalse
	case mem.WORM, mem.WORO:
		if writes <= 1 {
			return OutcomeTrue
		}
		return OutcomeFalse
	default:
		return OutcomeNeutral
	}
}

// AccuracyTracker accumulates Judge outcomes for Figure 16.
type AccuracyTracker struct {
	True    stats.Counter
	False   stats.Counter
	Neutral stats.Counter
}

// Record adds one outcome.
func (a *AccuracyTracker) Record(o Outcome) {
	switch o {
	case OutcomeTrue:
		a.True.Inc()
	case OutcomeFalse:
		a.False.Inc()
	default:
		a.Neutral.Inc()
	}
}

// Total returns the number of outcomes recorded.
func (a *AccuracyTracker) Total() uint64 {
	return a.True.Value() + a.False.Value() + a.Neutral.Value()
}

// Fractions returns the (true, neutral, false) fractions; zeros if empty.
func (a *AccuracyTracker) Fractions() (trueFrac, neutralFrac, falseFrac float64) {
	total := a.Total()
	if total == 0 {
		return 0, 0, 0
	}
	return float64(a.True.Value()) / float64(total),
		float64(a.Neutral.Value()) / float64(total),
		float64(a.False.Value()) / float64(total)
}
