// Command fusesim runs a single (L1D configuration, workload) simulation on
// the paper's Fermi-class or Volta-class GPU model and prints a detailed
// report: IPC, L1D miss rate, stall breakdown, predictor accuracy, off-chip
// decomposition and the energy breakdown.
//
// Usage:
//
//	fusesim -config Dy-FUSE -workload ATAX
//	fusesim -config L1-SRAM -workload GEMM -sms 4 -instructions 2000
//	fusesim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"fuse/internal/config"
	"fuse/internal/energy"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

func main() {
	var (
		configName   = flag.String("config", "Dy-FUSE", "L1D configuration (L1-SRAM, FA-SRAM, By-NVM, Hybrid, Base-FUSE, FA-FUSE, Dy-FUSE)")
		workload     = flag.String("workload", "ATAX", "benchmark name (see -list)")
		instructions = flag.Uint64("instructions", 1000, "instructions per warp")
		sms          = flag.Int("sms", 0, "number of SMs to simulate (0 = full GPU)")
		seed         = flag.Uint64("seed", 42, "workload generator seed")
		volta        = flag.Bool("volta", false, "use the Volta-class GPU model (84 SMs, 6 MB L2, 128 KB L1)")
		list         = flag.Bool("list", false, "list available workloads and configurations, then exit")
		showEnergy   = flag.Bool("energy", true, "print the energy breakdown")
	)
	flag.Parse()

	if *list {
		fmt.Println("L1D configurations:")
		for _, k := range config.AllL1DKinds {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("Workloads:")
		for _, p := range trace.Profiles() {
			fmt.Printf("  %-8s (%s, APKI %.1f): %s\n", p.Name, p.Suite, p.APKI, p.Description)
		}
		return
	}

	kind, err := config.ParseL1DKind(*configName)
	if err != nil {
		fatalf("unknown configuration %q: %v", *configName, err)
	}
	prof, ok := trace.ProfileByName(*workload)
	if !ok {
		fatalf("unknown workload %q (use -list to see the available ones)", *workload)
	}

	l1d := config.NewL1DConfig(kind)
	var gpuCfg config.GPUConfig
	if *volta {
		gpuCfg = config.VoltaGPU(config.ScaleL1D(l1d, 4))
	} else {
		gpuCfg = config.FermiGPU(l1d)
	}

	opts := sim.Options{
		InstructionsPerWarp: *instructions,
		SMOverride:          *sms,
		Seed:                *seed,
	}
	s, err := sim.New(gpuCfg, prof, opts)
	if err != nil {
		fatalf("building simulator: %v", err)
	}
	res := s.Run()
	fmt.Print(res.String())
	if *showEnergy {
		fmt.Print(energy.FromResult(res, gpuCfg).String())
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fusesim: "+format+"\n", args...)
	os.Exit(1)
}
