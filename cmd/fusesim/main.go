// Command fusesim runs (L1D configuration, workload) simulations on the
// paper's Fermi-class or Volta-class GPU model and prints a detailed report
// per run: IPC, L1D miss rate, stall breakdown, predictor accuracy, off-chip
// decomposition and the energy breakdown.
//
// Both -config and -workload accept comma-separated lists; the cross product
// is executed as one batch on the engine's worker pool and the reports are
// printed in submission order (so the output is independent of -parallel).
//
// Usage:
//
//	fusesim -config Dy-FUSE -workload ATAX
//	fusesim -config L1-SRAM -workload GEMM -sms 4 -instructions 2000
//	fusesim -config L1-SRAM,Dy-FUSE -workload ATAX,GEMM -parallel 4
//	fusesim -config Dy-FUSE -workload ATAX -backend GDDR5,HBM2,STT-MRAM
//	fusesim -config Dy-FUSE -workload ATAX -cpuprofile cpu.pprof -memprofile mem.pprof
//	fusesim -workloads my-workloads.json -workload mykernel
//	fusesim -config Dy-FUSE -workload mykernel -workloads my.json -record run.trace
//	fusesim -replay run.trace
//	fusesim -list
//
// The -workloads flag loads a workload file (JSON: custom synthetic profiles
// and phased composites — see the trace package) into the registry; the
// loaded names are then usable anywhere a builtin name is, including -record.
//
// -record runs a single simulation (one config, one workload, one backend),
// captures the generated instruction stream, and writes it to a trace file;
// -replay re-runs a recorded trace under its recorded configuration and
// prints a byte-identical report. Record/replay runs bypass the result store
// (a store hit would skip execution and record nothing).
//
// The -cpuprofile/-memprofile flags write pprof profiles of the batch, so
// performance work on the cycle engine starts from a measured profile
// (`go tool pprof`) rather than a guess.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fuse/internal/config"
	"fuse/internal/dram"
	"fuse/internal/energy"
	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/store"
	"fuse/internal/trace"
)

func main() {
	var (
		configNames  = flag.String("config", "Dy-FUSE", "comma-separated L1D configurations (L1-SRAM, FA-SRAM, By-NVM, Hybrid, Base-FUSE, FA-FUSE, Dy-FUSE)")
		workloadList = flag.String("workload", "ATAX", "comma-separated benchmark names (see -list)")
		instructions = flag.Uint64("instructions", 1000, "instructions per warp")
		sms          = flag.Int("sms", 0, "number of SMs to simulate (0 = full GPU)")
		seed         = flag.Uint64("seed", 42, "workload generator seed")
		volta        = flag.Bool("volta", false, "use the Volta-class GPU model (84 SMs, 6 MB L2, 128 KB L1)")
		backendList  = flag.String("backend", "", "comma-separated memory backends (see -list; empty = the GPU model's default)")
		list         = flag.Bool("list", false, "list available workloads and configurations, then exit")
		showEnergy   = flag.Bool("energy", true, "print the energy breakdown")
		parallel     = flag.Int("parallel", 0, "number of concurrent simulations (0 = GOMAXPROCS)")
		simWorkers   = flag.Int("simworkers", 0, "worker goroutines inside each simulation (0 = divide the cores across -parallel; results are identical for any value)")
		timeout      = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		storeDir     = flag.String("store", "", "persistent result-store directory shared with fusetables/fuseserve (empty = no store)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the simulation batch to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation profile (taken after the batch) to this file")
		workloadFile = flag.String("workloads", "", "workload file (JSON) of custom profiles and phased workloads to register")
		recordPath   = flag.String("record", "", "record the generated instruction stream to this trace file (single simulation only)")
		replayPath   = flag.String("replay", "", "replay a recorded trace file under its recorded configuration")
	)
	flag.Parse()

	if *workloadFile != "" {
		names, err := trace.LoadWorkloadFile(*workloadFile)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "[workloads %s: registered %s]\n", *workloadFile, strings.Join(names, ", "))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		// fatalf exits without running defers; flush there too so an aborted
		// run (e.g. -timeout expiring mid-batch — exactly the case worth
		// profiling) still leaves a readable profile behind.
		flushCPUProfile = pprof.StopCPUProfile
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	if *list {
		fmt.Println("L1D configurations:")
		for _, k := range config.AllL1DKinds {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("Memory backends:")
		for _, b := range dram.Backends() {
			fmt.Printf("  %s\n", b)
		}
		fmt.Println("Workloads:")
		for _, p := range trace.Profiles() {
			fmt.Printf("  %-8s (%s, APKI %.1f): %s\n", p.Name, p.Suite, p.APKI, p.Description)
		}
		for _, name := range trace.WorkloadNames() {
			w, _ := trace.Lookup(name)
			if ph, ok := w.(*trace.PhasedWorkload); ok {
				fmt.Printf("  %-8s (phased, %d phases): %s\n", name, len(ph.Phases), ph.Description)
			}
		}
		return
	}

	if *replayPath != "" {
		replayTrace(*replayPath, *showEnergy)
		return
	}

	var kinds []config.L1DKind
	for _, name := range splitList(*configNames) {
		kind, err := config.ParseL1DKind(name)
		if err != nil {
			fatalf("unknown configuration %q: %v", name, err)
		}
		kinds = append(kinds, kind)
	}
	workloads := splitList(*workloadList)
	if len(kinds) == 0 || len(workloads) == 0 {
		fatalf("need at least one configuration and one workload")
	}
	for _, w := range workloads {
		if _, err := trace.LookupWorkload(w); err != nil {
			fatalf("%v (use -list to see the available ones)", err)
		}
	}

	opts := sim.Options{
		InstructionsPerWarp: *instructions,
		SMOverride:          *sms,
		Seed:                *seed,
	}

	backends := splitList(*backendList)
	for _, be := range backends {
		if _, err := dram.BackendByName(be); err != nil {
			fatalf("%v", err)
		}
	}
	if len(backends) == 0 {
		backends = []string{""} // the GPU model's own backend
	}

	if *recordPath != "" {
		if len(kinds) != 1 || len(workloads) != 1 || len(backends) != 1 {
			fatalf("-record captures one simulation: exactly one -config, one -workload and at most one -backend")
		}
		recordTrace(*recordPath, kinds[0], workloads[0], backends[0], *volta, opts, *showEnergy)
		return
	}

	// The cross product; Volta variants and backend overrides become
	// labelled custom-GPU jobs.
	var jobs []engine.Job
	for _, kind := range kinds {
		for _, w := range workloads {
			for _, be := range backends {
				job := engine.Job{Kind: kind, Workload: w, Opts: opts}
				switch {
				case *volta:
					cfg := buildGPU(kind, true, be)
					label := "volta-" + kind.String()
					if be != "" {
						label += "@" + be
					}
					job.Label = label
					job.GPU = &cfg
				case be != "":
					job = engine.BackendJob(kind, w, be, opts)
				}
				jobs = append(jobs, job)
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := engine.Config{Workers: *parallel, SimWorkers: *simWorkers}
	if *storeDir != "" {
		// An unopenable store directory degrades to a memory-only cache with
		// a warning: the run still completes, it just cannot persist.
		cache, warn := store.OpenTieredResilient(*storeDir)
		if warn != nil {
			fmt.Fprintf(os.Stderr, "fusesim: warning: %v; continuing without the persistent store\n", warn)
		}
		cfg.Cache = cache
	}
	runner := engine.New(cfg)
	results, err := runner.RunBatch(ctx, jobs)
	if err != nil {
		fatalf("%v", err)
	}
	if *storeDir != "" {
		fmt.Fprintf(os.Stderr, "[store %s: %d loaded, %d simulated]\n",
			*storeDir, runner.StoreHits(), runner.Executed())
	}

	for i, res := range results {
		printReport(res, jobs[i].GPUConfig(), *showEnergy)
		if i < len(results)-1 {
			fmt.Println()
		}
	}
}

// printReport renders one simulation report (plus the energy breakdown) the
// way every fusesim path — batch, record, replay — prints it.
func printReport(res sim.Result, gpuCfg config.GPUConfig, showEnergy bool) {
	fmt.Print(res.String())
	if showEnergy {
		fmt.Print(energy.FromResult(res, gpuCfg).String())
	}
}

// buildGPU materialises the GPU configuration of a (config, volta, backend)
// triple exactly like the batch job builder does.
func buildGPU(kind config.L1DKind, volta bool, backend string) config.GPUConfig {
	var cfg config.GPUConfig
	if volta {
		cfg = config.VoltaGPU(config.ScaleL1D(config.NewL1DConfig(kind), 4))
	} else {
		cfg = config.FermiGPU(config.NewL1DConfig(kind))
	}
	if backend != "" {
		cfg.MemBackend = backend
	}
	return cfg
}

// recordTrace runs one simulation with the workload wrapped in a recorder,
// prints the usual report, and writes the captured trace (with enough
// metadata for -replay to rebuild the identical simulation).
func recordTrace(path string, kind config.L1DKind, workload, backend string, volta bool, opts sim.Options, showEnergy bool) {
	w, err := trace.LookupWorkload(workload)
	if err != nil {
		fatalf("%v", err)
	}
	rec := trace.NewRecorder(w)
	gpuCfg := buildGPU(kind, volta, backend)
	s, err := sim.New(gpuCfg, rec, opts)
	if err != nil {
		fatalf("%v", err)
	}
	res := s.Run()
	printReport(res, gpuCfg, showEnergy)
	tr := rec.Trace(trace.TraceMeta{
		Workload:            workload,
		Kind:                kind.String(),
		Volta:               volta,
		Backend:             backend,
		InstructionsPerWarp: opts.InstructionsPerWarp,
		SMs:                 opts.SMOverride,
		Seed:                opts.Seed,
	})
	if err := tr.WriteFile(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "[recorded %s: %d SM streams]\n", path, len(tr.Steps))
}

// replayTrace re-runs a recorded trace under its recorded configuration and
// prints a report byte-identical to the recording run's.
func replayTrace(path string, showEnergy bool) {
	tr, err := trace.LoadTrace(path)
	if err != nil {
		fatalf("%v", err)
	}
	kind, err := config.ParseL1DKind(tr.Meta.Kind)
	if err != nil {
		fatalf("trace %s: %v", path, err)
	}
	gpuCfg := buildGPU(kind, tr.Meta.Volta, tr.Meta.Backend)
	opts := sim.Options{
		InstructionsPerWarp: tr.Meta.InstructionsPerWarp,
		SMOverride:          tr.Meta.SMs,
		Seed:                tr.Meta.Seed,
	}
	w := tr.Workload()
	s, err := sim.New(gpuCfg, w, opts)
	if err != nil {
		fatalf("%v", err)
	}
	printReport(s.Run(), gpuCfg, showEnergy)
	if n := w.Diverged(); n > 0 {
		fmt.Fprintf(os.Stderr,
			"fusesim: warning: replay diverged from the recording schedule on %d steps; the report above is not a faithful reproduction\n", n)
	}
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// flushCPUProfile is set while a CPU profile is being recorded so that
// fatalf can flush it before exiting (os.Exit skips deferred calls).
var flushCPUProfile = func() {}

// writeMemProfile records an allocation profile after a GC settles the heap.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("-memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows live + cumulative allocations
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatalf("-memprofile: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fusesim: "+format+"\n", args...)
	flushCPUProfile()
	os.Exit(1)
}
