// Command fusesim runs (L1D configuration, workload) simulations on the
// paper's Fermi-class or Volta-class GPU model and prints a detailed report
// per run: IPC, L1D miss rate, stall breakdown, predictor accuracy, off-chip
// decomposition and the energy breakdown.
//
// Both -config and -workload accept comma-separated lists; the cross product
// is executed as one batch on the engine's worker pool and the reports are
// printed in submission order (so the output is independent of -parallel).
//
// Usage:
//
//	fusesim -config Dy-FUSE -workload ATAX
//	fusesim -config L1-SRAM -workload GEMM -sms 4 -instructions 2000
//	fusesim -config L1-SRAM,Dy-FUSE -workload ATAX,GEMM -parallel 4
//	fusesim -config Dy-FUSE -workload ATAX -backend GDDR5,HBM2,STT-MRAM
//	fusesim -config Dy-FUSE -workload ATAX -cpuprofile cpu.pprof -memprofile mem.pprof
//	fusesim -list
//
// The -cpuprofile/-memprofile flags write pprof profiles of the batch, so
// performance work on the cycle engine starts from a measured profile
// (`go tool pprof`) rather than a guess.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fuse/internal/config"
	"fuse/internal/dram"
	"fuse/internal/energy"
	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/store"
	"fuse/internal/trace"
)

func main() {
	var (
		configNames  = flag.String("config", "Dy-FUSE", "comma-separated L1D configurations (L1-SRAM, FA-SRAM, By-NVM, Hybrid, Base-FUSE, FA-FUSE, Dy-FUSE)")
		workloadList = flag.String("workload", "ATAX", "comma-separated benchmark names (see -list)")
		instructions = flag.Uint64("instructions", 1000, "instructions per warp")
		sms          = flag.Int("sms", 0, "number of SMs to simulate (0 = full GPU)")
		seed         = flag.Uint64("seed", 42, "workload generator seed")
		volta        = flag.Bool("volta", false, "use the Volta-class GPU model (84 SMs, 6 MB L2, 128 KB L1)")
		backendList  = flag.String("backend", "", "comma-separated memory backends (see -list; empty = the GPU model's default)")
		list         = flag.Bool("list", false, "list available workloads and configurations, then exit")
		showEnergy   = flag.Bool("energy", true, "print the energy breakdown")
		parallel     = flag.Int("parallel", 0, "number of concurrent simulations (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		storeDir     = flag.String("store", "", "persistent result-store directory shared with fusetables/fuseserve (empty = no store)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the simulation batch to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation profile (taken after the batch) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		// fatalf exits without running defers; flush there too so an aborted
		// run (e.g. -timeout expiring mid-batch — exactly the case worth
		// profiling) still leaves a readable profile behind.
		flushCPUProfile = pprof.StopCPUProfile
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	if *list {
		fmt.Println("L1D configurations:")
		for _, k := range config.AllL1DKinds {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("Memory backends:")
		for _, b := range dram.Backends() {
			fmt.Printf("  %s\n", b)
		}
		fmt.Println("Workloads:")
		for _, p := range trace.Profiles() {
			fmt.Printf("  %-8s (%s, APKI %.1f): %s\n", p.Name, p.Suite, p.APKI, p.Description)
		}
		return
	}

	var kinds []config.L1DKind
	for _, name := range splitList(*configNames) {
		kind, err := config.ParseL1DKind(name)
		if err != nil {
			fatalf("unknown configuration %q: %v", name, err)
		}
		kinds = append(kinds, kind)
	}
	workloads := splitList(*workloadList)
	if len(kinds) == 0 || len(workloads) == 0 {
		fatalf("need at least one configuration and one workload")
	}
	for _, w := range workloads {
		if _, ok := trace.ProfileByName(w); !ok {
			fatalf("unknown workload %q (use -list to see the available ones)", w)
		}
	}

	opts := sim.Options{
		InstructionsPerWarp: *instructions,
		SMOverride:          *sms,
		Seed:                *seed,
	}

	backends := splitList(*backendList)
	for _, be := range backends {
		if _, err := dram.BackendByName(be); err != nil {
			fatalf("%v", err)
		}
	}
	if len(backends) == 0 {
		backends = []string{""} // the GPU model's own backend
	}

	// The cross product; Volta variants and backend overrides become
	// labelled custom-GPU jobs.
	var jobs []engine.Job
	for _, kind := range kinds {
		for _, w := range workloads {
			for _, be := range backends {
				job := engine.Job{Kind: kind, Workload: w, Opts: opts}
				switch {
				case *volta:
					cfg := config.VoltaGPU(config.ScaleL1D(config.NewL1DConfig(kind), 4))
					label := "volta-" + kind.String()
					if be != "" {
						cfg.MemBackend = be
						label += "@" + be
					}
					job.Label = label
					job.GPU = &cfg
				case be != "":
					job = engine.BackendJob(kind, w, be, opts)
				}
				jobs = append(jobs, job)
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := engine.Config{Workers: *parallel}
	if *storeDir != "" {
		cache, err := store.OpenTiered(*storeDir)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Cache = cache
	}
	runner := engine.New(cfg)
	results, err := runner.RunBatch(ctx, jobs)
	if err != nil {
		fatalf("%v", err)
	}
	if *storeDir != "" {
		fmt.Fprintf(os.Stderr, "[store %s: %d loaded, %d simulated]\n",
			*storeDir, runner.StoreHits(), runner.Executed())
	}

	for i, res := range results {
		fmt.Print(res.String())
		if *showEnergy {
			gpuCfg := config.FermiGPU(config.NewL1DConfig(jobs[i].Kind))
			if jobs[i].GPU != nil {
				gpuCfg = *jobs[i].GPU
			}
			fmt.Print(energy.FromResult(res, gpuCfg).String())
		}
		if i < len(results)-1 {
			fmt.Println()
		}
	}
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// flushCPUProfile is set while a CPU profile is being recorded so that
// fatalf can flush it before exiting (os.Exit skips deferred calls).
var flushCPUProfile = func() {}

// writeMemProfile records an allocation profile after a GC settles the heap.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("-memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows live + cumulative allocations
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatalf("-memprofile: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fusesim: "+format+"\n", args...)
	flushCPUProfile()
	os.Exit(1)
}
