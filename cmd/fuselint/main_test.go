package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitCodeOnLoadError pins exit code 2 for a package that does not
// type-check: a broken tree must fail the CI gate as fuselint's own error,
// never pass as "no findings".
func TestExitCodeOnLoadError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"fuse/cmd/fuselint/testdata/broken"}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("run on a non-type-checking package: exit %d, want %d\nstderr: %s", code, exitError, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fuselint:") {
		t.Errorf("stderr does not explain the failure: %q", stderr.String())
	}
}

// TestExitCodeOnUnknownAnalyzer pins exit code 2 for a bad -only name: a
// typo in the CI invocation must not silently run nothing.
func TestExitCodeOnUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nosuchanalyzer", "./..."}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("run with unknown -only name: exit %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr does not name the bad analyzer: %q", stderr.String())
	}
}

// TestExitCodeAndJSONOnFindings runs one analyzer over its own fixture (which
// has seeded violations by construction) and pins exit code 1 plus the -json
// encoding the problem matcher and other tools consume.
func TestExitCodeAndJSONOnFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-only", "detmap", "fuse/internal/analysis/testdata/src/detmapfix"}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("run on the detmap fixture: exit %d, want %d\nstderr: %s", code, exitFindings, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array of findings: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output has no findings despite exit code 1")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer != "detmap" || d.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", d)
		}
	}
}

// TestExitCodeOnList pins exit code 0 for -list, which must name every
// analyzer of the suite.
func TestExitCodeOnList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-list"}, &stdout, &stderr)
	if code != exitClean {
		t.Fatalf("run -list: exit %d, want %d", code, exitClean)
	}
	for _, name := range []string{"detmap", "keydrift", "hotalloc", "phasesafe", "statflow", "ctxflow", "lockorder"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output does not mention %s:\n%s", name, stdout.String())
		}
	}
}
