// Package broken deliberately fails type-checking: fuselint must exit 2 (its
// own failure), not 0 or 1, when it cannot analyse what it was pointed at.
package broken

var x int = "not an int"
