// Command fuselint runs the repository's static-analysis suite — detmap,
// keydrift, hotalloc, phasesafe, statflow, ctxflow and lockorder (see
// internal/analysis) — over the packages matching the given patterns and
// exits non-zero when any invariant is violated. CI runs it as a hard gate:
//
//	go run ./cmd/fuselint ./...
//
// Exit codes: 0 means the tree is clean, 1 means the analyzers produced
// findings, 2 means fuselint itself could not run (a package failed to load
// or type-check, an unknown analyzer name, a broken pass). With -json the
// findings are printed as a JSON array instead of file:line:col lines.
//
// The directives the analyzers understand (//fuselint:ordered, noalloc,
// execonly, keyroot, jobkey, workerphase, serialonly, smowned, internalstat,
// noctx, blocking) are documented in the README under "Invariants &
// annotations".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fuse/internal/analysis"
)

// Exit codes of the fuselint command.
const (
	exitClean    = 0 // no findings
	exitFindings = 1 // at least one finding
	exitError    = 2 // fuselint itself failed (load error, bad flag, broken pass)
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// jsonDiagnostic is the -json encoding of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is the testable body of the command: it parses the flags, loads the
// packages, runs the analyzers and renders the findings, returning the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fuselint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	allowlist := fs.String("noalloc-allowlist", "", "override the hotalloc allowlist path")
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "print the findings as a JSON array")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fuselint [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "fuselint: unknown analyzer %q\n", name)
				return exitError
			}
			analyzers = append(analyzers, a)
		}
	}
	if *allowlist != "" {
		analysis.HotallocAllowlist = *allowlist
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "fuselint: %v\n", err)
		return exitError
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fuselint: %v\n", err)
		return exitError
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "fuselint: %v\n", err)
		return exitError
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "fuselint: %v\n", err)
			return exitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fuselint: %d finding(s)\n", len(diags))
		return exitFindings
	}
	return exitClean
}
