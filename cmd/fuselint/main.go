// Command fuselint runs the repository's static-analysis suite — detmap,
// keydrift, hotalloc and phasesafe (see internal/analysis) — over the
// packages matching the given patterns and exits non-zero when any invariant
// is violated. CI runs it as a hard gate:
//
//	go run ./cmd/fuselint ./...
//
// The directives the analyzers understand (//fuselint:ordered, noalloc,
// execonly, keyroot, jobkey, workerphase, serialonly) are documented in the
// README under "Invariants & annotations".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fuse/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	allowlist := flag.String("noalloc-allowlist", "", "override the hotalloc allowlist path")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fuselint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "fuselint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	if *allowlist != "" {
		analysis.HotallocAllowlist = *allowlist
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuselint: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuselint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuselint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fuselint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
