package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnopenableStoreDegradesToMemoryOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := filepath.Join(t.TempDir(), "fusetables")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	// A file as the store path's parent makes the disk tier unopenable even
	// when running as root (MkdirAll fails with ENOTDIR).
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-exp", "fig13", "-scale", "quick", "-workloads", "ATAX",
		"-store", filepath.Join(blocker, "store"))
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("run failed (should degrade, not abort): %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "warning") {
		t.Errorf("expected a degradation warning on stderr, got: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "ATAX") {
		t.Errorf("figure table missing from stdout: %s", stdout.String())
	}
}
