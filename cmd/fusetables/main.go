// Command fusetables regenerates the paper's tables and figures as text
// tables. Each experiment is identified by the paper artefact it reproduces
// (fig1, fig3, fig6, fig7, table1, table2, fig13, fig14, fig15, fig16, fig17,
// fig18, fig19, fig20, table3).
//
// The simulations behind the selected experiments are declared up front and
// executed concurrently on the engine's worker pool; experiments sharing
// runs (figures 13-17 share the full six-kind matrix) are deduplicated, and
// the printed tables are byte-identical to a serial (-parallel 1) run.
//
// Usage:
//
//	fusetables -exp fig13                 # one figure, default scale
//	fusetables -exp all -scale full       # everything, full 15-SM GPU
//	fusetables -exp fig14 -workloads ATAX,BICG,GESUM
//	fusetables -exp all -parallel 8 -timeout 10m -progress
//	fusetables -exp fig13 -store ~/.cache/fuse  # persist results; reruns are warm
//	fusetables -exp fig13 -workloadfile my.json -workloads ATAX,mykernel
//
// -workloadfile registers the custom profiles and phased workloads of a
// workload file (see the trace package); name them in -workloads to include
// them in a figure. The default workload sets stay pinned to the paper's 21
// benchmarks.
//
// With -store, completed simulations are persisted to a content-addressed
// result store shared with fusesim and fuseserve; a second run of the same
// experiment reads everything back ("[store ...: N loaded, 0 simulated]" on
// stderr) and renders byte-identical tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fuse/internal/dram"
	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/store"
	"fuse/internal/trace"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment to run (fig1...fig20, table1...table3, 'backends', or 'all')")
		scaleName = flag.String("scale", "bench", "simulation scale: quick, bench or full")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: the experiment's own set)")
		timing    = flag.Bool("time", false, "print wall-clock time per experiment")
		parallel  = flag.Int("parallel", 0, "number of concurrent simulations (0 = GOMAXPROCS)")
		simCap    = flag.Int("simworkers", 0, "worker goroutines inside each simulation (0 = divide the cores across -parallel; results are identical for any value)")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		progress  = flag.Bool("progress", false, "print per-simulation progress to stderr")
		storeDir  = flag.String("store", "", "persistent result-store directory shared with fusesim/fuseserve (empty = no store)")
		backend   = flag.String("backend", "", "run every experiment on this memory backend (GDDR5, GDDR5X, HBM2, STT-MRAM; empty = each GPU model's default)")
		workFile  = flag.String("workloadfile", "", "workload file (JSON) of custom profiles and phased workloads to register; use -workloads to include them in a figure")
	)
	flag.Parse()

	if *workFile != "" {
		names, err := trace.LoadWorkloadFile(*workFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusetables: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[workloads %s: registered %s]\n", *workFile, strings.Join(names, ", "))
	}

	if *backend != "" {
		if _, err := dram.BackendByName(*backend); err != nil {
			fmt.Fprintf(os.Stderr, "fusetables: %v\n", err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale
	case "bench":
		scale = experiments.BenchScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "fusetables: unknown scale %q (want quick, bench or full)\n", *scaleName)
		os.Exit(1)
	}

	var subset []string
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			if w = strings.TrimSpace(w); w != "" {
				subset = append(subset, w)
			}
		}
	}

	names := experiments.AllExperiments()
	if *expName != "all" {
		names = []string{*expName}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := engine.Config{Workers: *parallel, SimWorkers: *simCap}
	if *storeDir != "" {
		// An unopenable store directory degrades to a memory-only cache with
		// a warning: the tables still render, they just cannot persist.
		cache, warn := store.OpenTieredResilient(*storeDir)
		if warn != nil {
			fmt.Fprintf(os.Stderr, "fusetables: warning: %v; continuing without the persistent store\n", warn)
		}
		cfg.Cache = cache
	}
	if *progress {
		cfg.Progress = func(p engine.Progress) {
			status := "done"
			if p.Err != nil {
				status = "FAILED: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", p.Done, p.Total, p.Job, status)
		}
	}
	runner := engine.New(cfg)
	matrix := experiments.NewMatrixRunner(scale, runner)
	matrix.SetBackend(*backend)

	// Pre-warm the whole selection in one batch: the engine deduplicates the
	// jobs shared between experiments and fills the cache in parallel, so
	// the per-experiment table builds below are pure cache reads.
	start := time.Now()
	if err := matrix.Prewarm(ctx, names, subset); err != nil {
		fmt.Fprintf(os.Stderr, "fusetables: %v\n", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		// The summary line is the machine-checkable warm/cold indicator: a
		// fully warm run reports "0 simulated".
		fmt.Fprintf(os.Stderr, "[store %s: %d loaded, %d simulated]\n",
			*storeDir, runner.StoreHits(), runner.Executed())
	}
	if *timing {
		fmt.Printf("[pre-warm: %d simulations on %d workers in %v]\n\n",
			matrix.Runs(), runner.Workers(), time.Since(start).Round(time.Millisecond))
	}

	for _, name := range names {
		expStart := time.Now()
		table, err := experiments.RunContext(ctx, matrix, name, subset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusetables: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		if *timing {
			fmt.Printf("[%s took %v, %d simulations cached]\n\n", name, time.Since(expStart).Round(time.Millisecond), matrix.Runs())
		} else {
			fmt.Println()
		}
	}
}
