// Command fusetables regenerates the paper's tables and figures as text
// tables. Each experiment is identified by the paper artefact it reproduces
// (fig1, fig3, fig6, fig7, table1, table2, fig13, fig14, fig15, fig16, fig17,
// fig18, fig19, fig20, table3).
//
// Usage:
//
//	fusetables -exp fig13                 # one figure, default scale
//	fusetables -exp all -scale full       # everything, full 15-SM GPU
//	fusetables -exp fig14 -workloads ATAX,BICG,GESUM
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fuse/internal/experiments"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment to run (fig1...fig20, table1...table3, or 'all')")
		scaleName = flag.String("scale", "bench", "simulation scale: quick, bench or full")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: the experiment's own set)")
		timing    = flag.Bool("time", false, "print wall-clock time per experiment")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale
	case "bench":
		scale = experiments.BenchScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "fusetables: unknown scale %q (want quick, bench or full)\n", *scaleName)
		os.Exit(1)
	}

	var subset []string
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			if w = strings.TrimSpace(w); w != "" {
				subset = append(subset, w)
			}
		}
	}

	names := experiments.AllExperiments()
	if *expName != "all" {
		names = []string{*expName}
	}

	matrix := experiments.NewMatrix(scale)
	for _, name := range names {
		start := time.Now()
		table, err := experiments.Run(matrix, name, subset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusetables: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		if *timing {
			fmt.Printf("[%s took %v, %d simulations cached]\n\n", name, time.Since(start).Round(time.Millisecond), matrix.Runs())
		} else {
			fmt.Println()
		}
	}
}
