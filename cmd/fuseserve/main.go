// Command fuseserve is the HTTP front door of the simulation service: it
// executes simulation batches on the concurrent engine, persists every result
// in the content-addressed store shared with fusesim/fusetables, and serves
// the paper's evaluation figures — warm requests are pure store reads and
// never simulate.
//
// Endpoints:
//
//	POST /v1/batch            run a batch of (kind, workload) simulations;
//	                          a "workloads" block defines custom profiles or
//	                          phased workloads inline (workload-file schema)
//	GET  /v1/result/{key}     fetch one stored result by content key
//	GET  /v1/figures/{13..17} render an evaluation figure as a text table
//	                          (optional ?workloads=ATAX,GEMM subset)
//	GET  /v1/figures/backends render the memory-backend sweep
//	GET  /v1/workloads        list the workload registry (builtin + custom)
//
// Usage:
//
//	fuseserve -addr :8080 -store /var/lib/fuse -scale bench
//	fuseserve -workloads my-workloads.json
//	curl -s localhost:8080/v1/figures/13
//	curl -s -X POST localhost:8080/v1/batch \
//	  -d '{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}]}'
//	curl -s -X POST localhost:8080/v1/batch -d '{
//	  "workloads": {"profiles": [{"name": "mlstress", "apki": 120,
//	    "mix": {"wm": 0.35, "readIntensive": 0.25, "worm": 0.3, "woro": 0.1},
//	    "workingSetBlocks": 420, "irregular": 0.4, "wormReuse": 3}]},
//	  "jobs": [{"kind": "Dy-FUSE", "workload": "mlstress"}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fuse/internal/cluster"
	"fuse/internal/dram"
	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/store"
	"fuse/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		scaleName   = flag.String("scale", "bench", "simulation scale: quick, bench or full")
		storeDir    = flag.String("store", "", "persistent result-store directory shared with fusesim/fusetables (empty = memory only)")
		parallel    = flag.Int("parallel", 0, "number of concurrent simulations (0 = GOMAXPROCS)")
		simCap      = flag.Int("simworkers", runtime.GOMAXPROCS(0), "cap on the per-simulation worker goroutines a batch may request (0 = always sequential)")
		timeout     = flag.Duration("timeout", 0, "per-request timeout (0 = no limit)")
		backend     = flag.String("backend", "", "default memory backend for batch jobs and figures (GDDR5, GDDR5X, HBM2, STT-MRAM; empty = each GPU model's default)")
		workFile    = flag.String("workloads", "", "workload file (JSON) of custom profiles and phased workloads to register at startup")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for in-flight requests on SIGINT/SIGTERM")
		maxInflight = flag.Int("maxinflight", 64, "max concurrent simulation-bearing requests before 503 + Retry-After (0 = unlimited)")
		memCap      = flag.Int("memcap", 65536, "memory cache-tier entry bound with LRU eviction (0 = unbounded)")
		retries     = flag.Int("retries", 1, "per-job retries on transient execution failures (0 = none)")
		coordMode   = flag.Bool("coordinator", false, "run as a fleet coordinator: shard batch jobs across registered fuseworkers (jobs run locally while none are registered)")
		localN      = flag.Int("localworkers", 0, "coordinator mode: also spawn this many in-process workers over the loopback transport")
		lease       = flag.Duration("lease", cluster.DefaultLease, "coordinator mode: per-job lease; a job unheartbeated this long is re-dispatched")
	)
	flag.Parse()

	if *workFile != "" {
		names, err := trace.LoadWorkloadFile(*workFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuseserve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("fuseserve: registered workloads from %s: %s", *workFile, strings.Join(names, ", "))
	}

	if *backend != "" {
		if _, err := dram.BackendByName(*backend); err != nil {
			fmt.Fprintf(os.Stderr, "fuseserve: %v\n", err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale
	case "bench":
		scale = experiments.BenchScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "fuseserve: unknown scale %q (want quick, bench or full)\n", *scaleName)
		os.Exit(1)
	}

	// The memory tier (LRU-bounded) serves repeat requests within this
	// process; the disk tier (when configured) makes results outlive it and
	// shares them with the CLI tools. A failed disk open degrades to
	// memory-only with a warning: a serving process with a broken store
	// directory still serves.
	tiers := []store.Cache{store.NewMemoryLRU(*memCap)}
	if *storeDir != "" {
		disk, err := store.Open(*storeDir)
		if err != nil {
			log.Printf("fuseserve: warning: %v; continuing with the in-memory cache only", err)
		} else {
			tiers = append(tiers, disk)
		}
	}
	cache := store.NewTiered(tiers...)

	// In coordinator mode the Runner's executor fans out to the fleet: the
	// Runner still deduplicates, probes the cache and writes results
	// through, but the simulation itself runs on whichever worker owns the
	// job's store key. While no worker is registered the coordinator falls
	// back to local execution, so a lone coordinator serves exactly like a
	// single-process fuseserve.
	engCfg := engine.Config{Workers: *parallel, Cache: cache, Retries: *retries}
	var coord *cluster.Coordinator
	if *coordMode {
		coord = cluster.New(cluster.Config{Lease: *lease, Cache: cache, LocalExec: engine.Execute})
		engCfg.Exec = coord.Execute
	}
	runner := engine.New(engCfg)
	app := newServer(serverConfig{
		scale:       scale,
		runner:      runner,
		results:     cache,
		health:      cache,
		timeout:     *timeout,
		backend:     *backend,
		simWorkers:  *simCap,
		maxInflight: *maxInflight,
		coord:       coord,
	})

	if *storeDir != "" {
		log.Printf("fuseserve: store %s, scale %s, %d workers, listening on %s",
			*storeDir, *scaleName, runner.Workers(), *addr)
	} else {
		log.Printf("fuseserve: in-memory store only, scale %s, %d workers, listening on %s",
			*scaleName, runner.Workers(), *addr)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: app,
		// Transport-level guards: the per-request -timeout only bounds the
		// simulation work after a request is parsed, so slow-sending and
		// idle clients are bounded here instead of pinning goroutines.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM starts a graceful drain: the listener closes, new
	// simulation requests are refused (503 via the draining flag), in-flight
	// ones get the drain deadline to finish, and a clean drain exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if coord != nil {
		defer coord.Close()
		if *localN > 0 {
			fleet, err := cluster.StartFleet(ctx, coord, *localN, engine.Execute)
			if err != nil {
				log.Fatalf("fuseserve: starting local workers: %v", err)
			}
			defer fleet.Stop()
			log.Printf("fuseserve: coordinator mode, %d in-process workers (lease %s)", *localN, *lease)
		} else {
			log.Printf("fuseserve: coordinator mode, waiting for fuseworkers (lease %s)", *lease)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// The listener failed before any signal (port in use, bad address).
		log.Fatalf("fuseserve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("fuseserve: shutdown signal received, draining (deadline %s)", *drain)
		app.beginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("fuseserve: drain deadline exceeded: %v", err)
			os.Exit(1)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("fuseserve: %v", err)
		}
		log.Printf("fuseserve: drained cleanly, exiting")
	}
}
