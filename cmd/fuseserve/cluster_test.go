package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fuse/internal/cluster"
	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/store"
)

// newClusterServer builds a coordinator-mode server with n in-process
// loopback workers — the httptest analogue of
// `fuseserve -coordinator -localworkers n`.
func newClusterServer(t *testing.T, n int) (*httptest.Server, *cluster.Coordinator) {
	t.Helper()
	cache := store.NewTiered(store.NewMemory())
	coord := cluster.New(cluster.Config{Cache: cache, LocalExec: engine.Execute})
	t.Cleanup(coord.Close)
	runner := engine.New(engine.Config{Cache: cache, Retries: 1, Exec: coord.Execute})
	ts := httptest.NewServer(newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		health: cache, timeout: time.Minute, simWorkers: 8, coord: coord,
	}))
	t.Cleanup(ts.Close)
	if n > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		fleet, err := cluster.StartFleet(ctx, coord, n, engine.Execute)
		if err != nil {
			cancel()
			t.Fatalf("starting fleet: %v", err)
		}
		t.Cleanup(func() { fleet.Stop(); cancel() })
	}
	return ts, coord
}

// getFigure fetches a figure table as text.
func getFigure(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, data)
	}
	return string(data)
}

// TestCoordinatorModeFigureByteIdentical: the figure endpoint served through
// a coordinator + 2 workers returns exactly the bytes of a single-process
// server, and the jobs really travelled through the fleet.
func TestCoordinatorModeFigureByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick-scale simulations")
	}
	const fig = "/v1/figures/13?workloads=ATAX,GEMM"

	// Single-process reference.
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{Cache: cache})
	ref := httptest.NewServer(newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		health: cache, timeout: time.Minute, simWorkers: 8,
	}))
	defer ref.Close()
	want := getFigure(t, ref, fig)

	ts, coord := newClusterServer(t, 2)
	got := getFigure(t, ts, fig)
	if got != want {
		t.Errorf("coordinator-mode figure differs from single-process figure\nwant:\n%s\ngot:\n%s", want, got)
	}
	if s := coord.Stats(); s.Dispatched == 0 {
		t.Errorf("no dispatches recorded — figure did not fan out to the fleet")
	}
}

// TestCoordinatorModeBatchFallsBackLocally: with zero workers registered,
// coordinator mode still serves batches (local fallback), so bringing up a
// coordinator never requires a worker to exist first.
func TestCoordinatorModeBatchFallsBackLocally(t *testing.T) {
	ts, coord := newClusterServer(t, 0)
	resp, br := postBatch(t, ts, `{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(br.Results) != 1 || br.Results[0].Error != "" {
		t.Fatalf("unexpected batch response: %+v", br.Results)
	}
	if s := coord.Stats(); s.LocalRuns == 0 {
		t.Errorf("LocalRuns = 0, want ≥ 1 (job should have used the local fallback)")
	}
}

// TestHealthzClusterFields: /healthz carries the fleet snapshot in
// coordinator mode — workers registered, in-flight jobs, re-dispatch and
// remote-store counters — and omits it otherwise.
func TestHealthzClusterFields(t *testing.T) {
	ts, _ := newClusterServer(t, 2)

	// Run one batch through the fleet so the counters move.
	resp, _ := postBatch(t, ts, `{"jobs":[{"kind":"L1-SRAM","workload":"ATAX"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil {
		t.Fatalf("healthz has no cluster block in coordinator mode")
	}
	if h.Cluster.Workers != 2 {
		t.Errorf("cluster.workers = %d, want 2", h.Cluster.Workers)
	}
	if h.Cluster.Dispatched == 0 && h.Cluster.LocalRuns == 0 {
		t.Errorf("cluster counters all zero after a batch: %+v", h.Cluster)
	}

	// And the raw JSON carries the documented field names.
	hr2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	raw, _ := io.ReadAll(hr2.Body)
	for _, field := range []string{"workers", "inFlight", "redispatched", "remoteStoreHits", "remoteStoreMisses"} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("healthz JSON missing cluster field %q:\n%s", field, raw)
		}
	}

	// A single-process server has no cluster block.
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{Cache: cache})
	plain := httptest.NewServer(newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache, health: cache,
	}))
	defer plain.Close()
	pr, err := http.Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var ph healthResponse
	if err := json.NewDecoder(pr.Body).Decode(&ph); err != nil {
		t.Fatal(err)
	}
	if ph.Cluster != nil {
		t.Errorf("single-process healthz unexpectedly has a cluster block")
	}
}
