package main

// The chaos suite: the serving stack under deterministic fault injection.
// Every fault decision is a pure function of the seeded fault.Plan, so these
// runs are reproducible — CI runs them under -race with the same seeds and
// must see byte-identical output on every run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/fault"
	"fuse/internal/sim"
	"fuse/internal/store"
)

// chaosPlan is the seeded fault plan the whole suite (and the CI chaos-smoke
// job) runs under: store faults on every operation, transient execution
// failures below the retry budget, and one injected panic.
func chaosPlan() fault.Plan {
	return fault.Plan{
		Seed:           42,
		GetFailProb:    0.2,
		PutDropProb:    0.2,
		PutCorruptProb: 0.2,
		ExecFailProb:   0.3,
		ExecFailLimit:  2, // < retries below: injected failures always recoverable
		PanicOn:        "Dy-FUSE/ATAX",
	}
}

// newChaosServer builds a fuseserve stack with the plan's faults injected
// into both the cache path and the executor: an LRU-bounded memory tier over
// a real disk tier, both behind a fault.Cache, and the real simulator behind
// a fault.Injector, with retries budgeted above the injected failure limit.
func newChaosServer(t *testing.T, plan fault.Plan) (*httptest.Server, *engine.Runner, *fault.Cache, *fault.Injector[engine.Job]) {
	t.Helper()
	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := store.NewTiered(store.NewMemoryLRU(8), disk)
	faultCache := fault.WrapCache(plan, tiered, disk)
	injector := fault.NewInjector(plan, engine.Execute)
	runner := engine.New(engine.Config{
		Workers:         4,
		Retries:         4,
		RetryBackoff:    time.Millisecond,
		RetryMaxBackoff: 5 * time.Millisecond,
		Cache:           faultCache,
		Exec:            injector.Exec,
	})
	app := newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: faultCache,
		health: tiered, timeout: 5 * time.Minute, simWorkers: 1,
	})
	ts := httptest.NewServer(app)
	t.Cleanup(ts.Close)
	return ts, runner, faultCache, injector
}

// fetchFigure renders one figure through the server.
func fetchFigure(t *testing.T, ts *httptest.Server, fig string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/figures/" + fig)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure %s: status %d: %s", fig, resp.StatusCode, body)
	}
	return body
}

func TestChaosFig13ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig13 matrix in -short mode")
	}
	// Clean reference: the same stack with a zero (inject-nothing) plan.
	cleanTS, _, _, _ := newChaosServer(t, fault.Plan{})
	clean := fetchFigure(t, cleanTS, "13")

	// Chaos run: seeded faults on the store and the executor, one panic.
	chaosTS, runner, faultCache, injector := newChaosServer(t, chaosPlan())
	chaos := fetchFigure(t, chaosTS, "13")

	if !bytes.Equal(clean, chaos) {
		t.Errorf("chaos Fig13 differs from the fault-free run:\n--- clean ---\n%s\n--- chaos ---\n%s", clean, chaos)
	}
	// The faults really fired: the run recovered them, it did not dodge them.
	if runner.Panics() != 1 {
		t.Errorf("Panics = %d, want exactly the one injected panic", runner.Panics())
	}
	if runner.Retried() == 0 {
		t.Errorf("no retries recorded under a 0.3 exec-failure plan")
	}
	cs, is := faultCache.Stats(), injector.Stats()
	if cs.GetsFailed == 0 || cs.PutsDropped == 0 || cs.PutsCorrupt == 0 {
		t.Errorf("store faults did not fire: %+v", cs)
	}
	if is.Failures == 0 || is.Panics != 1 {
		t.Errorf("executor faults did not fire: %+v", is)
	}
	if store.SchemaVersion != 2 {
		t.Errorf("SchemaVersion = %d, chaos hardening must not bump it", store.SchemaVersion)
	}

	// Reproducibility: an identical chaos run (same plan, fresh process
	// state) renders the identical table with identical fault decisions.
	chaosTS2, runner2, faultCache2, _ := newChaosServer(t, chaosPlan())
	chaos2 := fetchFigure(t, chaosTS2, "13")
	if !bytes.Equal(chaos, chaos2) {
		t.Errorf("two chaos runs with the same plan diverged")
	}
	if runner2.Panics() != 1 {
		t.Errorf("second chaos run panics = %d, want 1", runner2.Panics())
	}
	cs2 := faultCache2.Stats()
	if cs2.PutsDropped != cs.PutsDropped || cs2.PutsCorrupt != cs.PutsCorrupt {
		t.Errorf("fault decisions diverged across identical runs:\n%+v\n%+v", cs, cs2)
	}
}

func TestChaosBatchNoLostOrDoubledRequests(t *testing.T) {
	ts, runner, _, _ := newChaosServer(t, chaosPlan())
	body := `{"jobs":[
		{"kind":"Dy-FUSE","workload":"ATAX"},
		{"kind":"Dy-FUSE","workload":"GEMM"},
		{"kind":"L1-SRAM","workload":"ATAX"},
		{"kind":"L1-SRAM","workload":"GEMM"}]}`
	const clients = 8

	type outcome struct {
		status  int
		results []batchResult
		err     error
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := range outcomes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			var br batchResponse
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(data, &br); err != nil {
					outcomes[i] = outcome{err: fmt.Errorf("decoding: %w\n%s", err, data)}
					return
				}
			}
			outcomes[i] = outcome{status: resp.StatusCode, results: br.Results}
		}(i)
	}
	wg.Wait()

	// No request lost: every client got a complete, successful batch.
	var reference []byte
	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("client %d: %v", i, o.err)
		}
		if o.status != http.StatusOK {
			t.Fatalf("client %d: status %d", i, o.status)
		}
		if len(o.results) != 4 {
			t.Fatalf("client %d: %d results, want 4", i, len(o.results))
		}
		for j, res := range o.results {
			if res.Error != "" {
				t.Fatalf("client %d job %d failed under chaos: %s", i, j, res.Error)
			}
			if res.Result == nil {
				t.Fatalf("client %d job %d lost its result", i, j)
			}
		}
		enc, err := json.Marshal(o.results)
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = enc
		} else if !bytes.Equal(reference, enc) {
			t.Errorf("client %d saw different results than client 0", i)
		}
	}

	// No request doubled: the four distinct jobs executed exactly once each
	// despite eight concurrent clients, injected failures and retries.
	if got := runner.Executed(); got != 4 {
		t.Errorf("Executed = %d, want 4 (dedup must hold under chaos)", got)
	}
}

func TestGracefulShutdownDrainsInFlightBatch(t *testing.T) {
	// A gated executor keeps one batch in flight across the shutdown signal:
	// Shutdown must wait for it, the client must get its 200, and the server
	// loop must end with ErrServerClosed.
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{
		Cache: cache,
		Exec: func(ctx context.Context, job engine.Job) (sim.Result, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-gate:
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			}
			return sim.Result{Workload: job.Workload, Cycles: 1}, nil
		},
	})
	app := newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		timeout: time.Minute, simWorkers: 1,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: app}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	batchDone := make(chan outcomePair, 1)
	go func() {
		resp, err := http.Post(base+"/v1/batch", "application/json",
			strings.NewReader(`{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}]}`))
		if err != nil {
			batchDone <- outcomePair{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		batchDone <- outcomePair{status: resp.StatusCode, body: body}
	}()

	// Wait until the batch is genuinely executing, then begin the drain.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("batch never started executing")
	}
	app.beginDrain()
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The drain must not kill the in-flight batch: release the gate and the
	// client gets a complete 200.
	time.Sleep(50 * time.Millisecond) // let Shutdown close the listener first
	close(gate)
	select {
	case out := <-batchDone:
		if out.err != nil {
			t.Fatalf("in-flight batch dropped during drain: %v", out.err)
		}
		if out.status != http.StatusOK {
			t.Fatalf("in-flight batch status = %d during drain: %s", out.status, out.body)
		}
		if !strings.Contains(string(out.body), `"ATAX"`) {
			t.Errorf("drained batch body incomplete: %s", out.body)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("in-flight batch never completed")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}

	// New work arriving after the drain began is refused, not queued.
	// (The listener is closed, so this exercises the draining flag directly.)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/batch",
		strings.NewReader(`{"jobs":[{"kind":"Dy-FUSE","workload":"GEMM"}]}`))
	app.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain batch status = %d, want 503", rec.Code)
	}
}

// outcomePair carries one HTTP outcome across a goroutine boundary.
type outcomePair struct {
	status int
	body   []byte
	err    error
}
