package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"fuse/internal/cluster"
	"fuse/internal/config"
	"fuse/internal/dram"
	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/sim"
	"fuse/internal/store"
	"fuse/internal/trace"
)

// server is the HTTP front door over the engine Runner and the result store:
// batches execute concurrently on the shared worker pool, results persist in
// the content-addressed store, and the figure endpoints serve the experiment
// layer's tables. Handlers run concurrently (one goroutine per request,
// net/http's model); the Runner deduplicates identical simulations across
// requests that race.
//
// Known limitation: the Runner's dedup map and the memory cache tier retain
// every distinct result for the lifetime of the process, so a deployment
// facing untrusted clients (who can mint unlimited distinct keys through the
// batch options) needs an authentication or quota layer in front; the disk
// tier is the component designed to hold an unbounded result set.
type server struct {
	matrix  *experiments.Matrix
	runner  *engine.Runner
	results store.Cache
	timeout time.Duration
	// backend is the server-wide default memory backend ("" = each GPU
	// model's own); batch requests may override it per batch.
	backend string
	// simWorkers caps the per-simulation worker goroutines a batch may
	// request (0 = batches run sequential simulations regardless of what
	// they ask for). The Runner's own oversubscription clamp applies on
	// top, so pool × per-simulation workers never exceeds the core budget.
	simWorkers int
	// maxInflight bounds the simulation-bearing requests (batches and
	// figures) admitted at once; excess requests get 503 + Retry-After
	// instead of queueing without bound. 0 = unlimited.
	maxInflight int
	// health reports cache-tier health on /healthz (nil = no tiers wired).
	health *store.Tiered
	// coord, when non-nil, is the fleet coordinator this server fronts
	// (-coordinator mode): its protocol is mounted under /cluster/v1/ and
	// its stats appear on /healthz.
	coord *cluster.Coordinator

	mux      *http.ServeMux
	inflight atomic.Int64 // admitted simulation-bearing requests
	draining atomic.Bool  // set once shutdown begins; new work is refused
	panics   atomic.Int64 // handler panics converted to 500s
}

// serverConfig wires a server: the experiment scale, the shared Runner, the
// cache consulted by GET /v1/result (usually the same tiered cache the
// Runner writes through, also passed as health for /healthz), and the
// serving limits.
type serverConfig struct {
	scale       experiments.Scale
	runner      *engine.Runner
	results     store.Cache
	health      *store.Tiered
	timeout     time.Duration
	backend     string
	simWorkers  int
	maxInflight int
	// coord runs the server in coordinator mode (nil = single process).
	coord *cluster.Coordinator
}

// newServer wires the API routes behind the panic-recovery middleware.
func newServer(cfg serverConfig) *server {
	matrix := experiments.NewMatrixRunner(cfg.scale, cfg.runner)
	matrix.SetBackend(cfg.backend)
	s := &server{
		matrix:      matrix,
		runner:      cfg.runner,
		results:     cfg.results,
		timeout:     cfg.timeout,
		backend:     cfg.backend,
		simWorkers:  cfg.simWorkers,
		maxInflight: cfg.maxInflight,
		health:      cfg.health,
		coord:       cfg.coord,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/figures/{fig}", s.handleFigure)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.coord != nil {
		// The cluster protocol (register/pull/heartbeat/result/store) rides
		// on the same listener as the API, so a fleet needs exactly one
		// address and the store endpoint shares the server's tiered cache.
		mux.Handle("/cluster/v1/", s.coord.Handler())
	}
	s.mux = mux
	return s
}

// ServeHTTP dispatches through the panic-recovery middleware: a panic that
// escapes a handler (the engine already contains simulation panics) becomes
// a structured 500 instead of a torn connection, and is counted.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			httpError(w, http.StatusInternalServerError, "internal error: %v", v)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// beginDrain flips the server into draining mode: health turns not-ready and
// new simulation-bearing requests are refused, while admitted ones run to
// completion under http.Server.Shutdown.
func (s *server) beginDrain() { s.draining.Store(true) }

// admit gates a simulation-bearing request: draining and over-capacity
// requests are refused with 503 + Retry-After so clients back off instead of
// queueing. The caller must defer release() when admitted.
func (s *server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	if n := s.inflight.Add(1); s.maxInflight > 0 && n > int64(s.maxInflight) {
		s.inflight.Add(-1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			"at capacity (%d simulation requests in flight)", s.maxInflight)
		return nil, false
	}
	return func() { s.inflight.Add(-1) }, true
}

// healthResponse is the body of GET /healthz and GET /readyz.
type healthResponse struct {
	// Status is "ok", "degraded" (a store tier tripped its degraded flag)
	// or "draining" (shutdown in progress).
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	InFlight int64  `json:"inFlight"`
	// Runner counters (process-lifetime totals).
	Completed int `json:"completed"`
	Executed  int `json:"executed"`
	StoreHits int `json:"storeHits"`
	Retried   int `json:"retried"`
	Panics    int `json:"panics"`
	// HandlerPanics counts panics the HTTP middleware converted to 500s.
	HandlerPanics int64 `json:"handlerPanics"`
	// Store is the per-tier health of the result cache, fastest first.
	Store []store.Health `json:"store,omitempty"`
	// Cluster is the fleet snapshot in coordinator mode: registered
	// workers, queued/in-flight jobs, re-dispatch and steal counts, and the
	// remote-store endpoint's hit/miss traffic.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// snapshotHealth assembles the shared health body.
func (s *server) snapshotHealth() healthResponse {
	h := healthResponse{
		Status:        "ok",
		Draining:      s.draining.Load(),
		InFlight:      s.inflight.Load(),
		Completed:     s.runner.Completed(),
		Executed:      s.runner.Executed(),
		StoreHits:     s.runner.StoreHits(),
		Retried:       s.runner.Retried(),
		Panics:        s.runner.Panics(),
		HandlerPanics: s.panics.Load(),
	}
	if s.health != nil {
		h.Store = s.health.Health()
		if s.health.Degraded() {
			h.Status = "degraded"
		}
	}
	if s.coord != nil {
		st := s.coord.Stats()
		h.Cluster = &st
	}
	if h.Draining {
		h.Status = "draining"
	}
	return h
}

// handleHealthz reports liveness: always 200 while the process serves, with
// the degraded/draining detail in the body for operators and dashboards.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotHealth())
}

// handleReadyz reports readiness for load balancers: 503 while draining or
// while the store is degraded, 200 otherwise, same body as /healthz.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.snapshotHealth()
	status := http.StatusOK
	if h.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// workloadInfo is one entry of the GET /v1/workloads listing.
type workloadInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "profile" or "phased"
	Builtin bool   `json:"builtin"`
	Suite   string `json:"suite,omitempty"`
	// APKI is only meaningful for profile workloads.
	APKI        float64 `json:"apki,omitempty"`
	Description string  `json:"description,omitempty"`
	// Phases lists the phase profiles of a phased workload.
	Phases []string `json:"phases,omitempty"`
}

// handleWorkloads lists the workload registry: the 21 builtin benchmarks plus
// everything registered since (workload files, inline batch definitions).
func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, name := range trace.WorkloadNames() {
		wl, ok := trace.Lookup(name)
		if !ok {
			continue // unregistered between listing and lookup: impossible today
		}
		info := workloadInfo{Name: name, Builtin: trace.IsBuiltin(name)}
		switch wl := wl.(type) {
		case *trace.SyntheticWorkload:
			info.Kind = "profile"
			info.Suite = wl.Profile.Suite
			info.APKI = wl.Profile.APKI
			info.Description = wl.Profile.Description
		case *trace.PhasedWorkload:
			info.Kind = "phased"
			info.Description = wl.Description
			for _, ph := range wl.Phases {
				info.Phases = append(info.Phases, ph.Profile.Name)
			}
		default:
			info.Kind = "other"
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

// requestContext bounds one request by the server's per-request timeout.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// batchJob is one simulation point of a batch request.
type batchJob struct {
	// Kind is the L1D configuration name (config.ParseL1DKind).
	Kind string `json:"kind"`
	// Workload is the workload name, resolved through the trace registry:
	// a builtin benchmark, a workload the server loaded at startup, or one
	// defined inline in this request's "workloads" block.
	Workload string `json:"workload"`
}

// batchOptions overrides the server scale's simulation options per batch.
type batchOptions struct {
	InstructionsPerWarp uint64 `json:"instructionsPerWarp,omitempty"`
	SMs                 int    `json:"sms,omitempty"`
	Seed                uint64 `json:"seed,omitempty"`
	// Backend overrides the memory backend (see dram.Backends) for every
	// job of the batch; empty inherits the server's -backend default.
	Backend string `json:"backend,omitempty"`
	// SimWorkers requests parallel execution of each simulation in the
	// batch with this many worker goroutines. The value is clamped to the
	// server's -simworkers cap; results are byte-identical regardless.
	SimWorkers int `json:"simWorkers,omitempty"`
}

// batchRequest is the body of POST /v1/batch. Workloads, when present, is an
// inline workload definition block (the workload-file schema: custom
// profiles and phased composites); its entries are registered before the
// jobs resolve, so a batch can define a workload and run it in one request.
// Re-posting an identical definition is a no-op; redefining an existing name
// with different parameters is a 400.
type batchRequest struct {
	Jobs      []batchJob          `json:"jobs"`
	Options   *batchOptions       `json:"options,omitempty"`
	Workloads *trace.WorkloadFile `json:"workloads,omitempty"`
}

// batchResult is one per-job entry of a batch response, in submission order.
type batchResult struct {
	Kind     string `json:"kind"`
	Workload string `json:"workload"`
	// Key is the content-addressed store key; the result stays fetchable at
	// GET /v1/result/{key} after the batch returns.
	Key    string      `json:"key,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// batchResponse is the body of a POST /v1/batch response.
type batchResponse struct {
	Results []batchResult `json:"results"`
	// Executed, StoreHits, Retried and Panics snapshot the Runner counters
	// after the batch (process-lifetime totals, not per-batch deltas).
	Executed  int `json:"executed"`
	StoreHits int `json:"storeHits"`
	Retried   int `json:"retried"`
	Panics    int `json:"panics"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	var req batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if req.Workloads != nil {
		if _, err := req.Workloads.Register(); err != nil {
			httpError(w, http.StatusBadRequest, "workloads: %v", err)
			return
		}
	}

	opts := s.matrix.Scale().Options()
	backend := s.backend
	simWorkers := 1 // sequential unless the batch asks for more
	if o := req.Options; o != nil {
		if o.SimWorkers > 0 {
			simWorkers = max(1, min(o.SimWorkers, s.simWorkers))
		}
		if o.InstructionsPerWarp > 0 {
			opts.InstructionsPerWarp = o.InstructionsPerWarp
		}
		if o.SMs > 0 {
			opts.SMOverride = o.SMs
		}
		if o.Seed > 0 {
			opts.Seed = o.Seed
		}
		if o.Backend != "" {
			if _, err := dram.BackendByName(o.Backend); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			backend = o.Backend
		}
	}

	jobs := make([]engine.Job, 0, len(req.Jobs))
	for i, j := range req.Jobs {
		kind, err := config.ParseL1DKind(j.Kind)
		if err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		if _, err := trace.LookupWorkload(j.Workload); err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		job := engine.Job{Kind: kind, Workload: j.Workload, Opts: opts}
		if backend != "" {
			job = engine.BackendJob(kind, j.Workload, backend, opts)
		}
		job.SimWorkers = simWorkers
		jobs = append(jobs, job)
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	results, err := s.runner.RunBatch(ctx, jobs)
	// Classify timeouts by the request context itself, not by whichever job
	// happened to fail first inside the batch error: an expired deadline is
	// always a 504, regardless of submission order.
	if err != nil && ctx.Err() != nil {
		httpError(w, http.StatusGatewayTimeout, "batch timed out: %v", ctx.Err())
		return
	}
	// Per-job failures are reported in the body, not as a transport error:
	// the rest of the batch is still useful.
	perJob := map[int]string{}
	var be *engine.BatchError
	if errors.As(err, &be) {
		for _, je := range be.Errors {
			for i := range jobs {
				if jobs[i].Key() == je.Job.Key() {
					perJob[i] = je.Err.Error()
				}
			}
		}
	} else if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	resp := batchResponse{
		Results:   make([]batchResult, len(jobs)),
		Executed:  s.runner.Executed(),
		StoreHits: s.runner.StoreHits(),
		Retried:   s.runner.Retried(),
		Panics:    s.runner.Panics(),
	}
	for i := range jobs {
		entry := batchResult{Kind: req.Jobs[i].Kind, Workload: req.Jobs[i].Workload}
		if msg, failed := perJob[i]; failed {
			entry.Error = msg
		} else {
			res := results[i]
			entry.Result = &res
			if key, err := engine.StoreKey(jobs[i]); err == nil {
				entry.Key = key
			}
		}
		resp.Results[i] = entry
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		httpError(w, http.StatusBadRequest, "malformed key %q (want 64 hex digits)", key)
		return
	}
	res, ok := s.results.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for key %s", key)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// figureExperiments maps the servable figure numbers onto experiment names.
// Figures 13-17 are the evaluation matrix the store is built to serve; they
// share one six-kind job set, so any of them warms the others. "backends" is
// the repository's memory-technology sweep.
var figureExperiments = map[string]string{
	"13":       experiments.ExpFig13,
	"14":       experiments.ExpFig14,
	"15":       experiments.ExpFig15,
	"16":       experiments.ExpFig16,
	"17":       experiments.ExpFig17,
	"backends": experiments.ExpBackends,
}

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	fig := r.PathValue("fig")
	name, ok := figureExperiments[fig]
	if !ok {
		httpError(w, http.StatusNotFound, "figure %q not servable (want 13..17 or backends)", fig)
		return
	}
	var workloads []string // nil = the experiment's full set
	if wl := r.URL.Query().Get("workloads"); wl != "" {
		for _, workload := range strings.Split(wl, ",") {
			workload = strings.TrimSpace(workload)
			if workload == "" {
				continue
			}
			if _, err := trace.LookupWorkload(workload); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			workloads = append(workloads, workload)
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	table, err := experiments.RunContext(ctx, s.matrix, name, workloads)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			httpError(w, http.StatusGatewayTimeout, "figure %s timed out: %v", fig, err)
		} else {
			httpError(w, http.StatusInternalServerError, "figure %s: %v", fig, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, table.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
